// The read-rate model pi(r, r_bar) of Section 3.1: the probability that the
// reader at location r detects a tag whose true location is r_bar, per
// interrogation epoch.
//
// In deployments this table is measured with reference tags fixed at known
// locations (the paper cites [11, 16]); in this reproduction the simulator
// constructs it from its own parameters, so inference sees exactly what a
// calibrated deployment would see.
//
// The likelihood of a tag's readings at one epoch factorizes per reader
// (Eq 1). For the optimized inference path we precompute, per location a:
//
//   LogMissAll(a)      = sum_r log(1 - pi(r, a))     (no reader saw the tag)
//   LogReadAdjust(r,a) = log pi(r, a) - log(1 - pi(r, a))
//
// so that log p(readings | loc=a) = LogMissAll(a) + sum over actual reads of
// LogReadAdjust. This turns the O(R) per-epoch scan of Algorithm 1 into
// O(#reads), which is the Appendix A.3 optimization.
#ifndef RFID_MODEL_READ_RATE_H_
#define RFID_MODEL_READ_RATE_H_

#include <vector>

#include "common/log_space.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"

namespace rfid {

/// Dense R x R read-rate table with precomputed log-space kernels.
class ReadRateModel {
 public:
  /// Builds a model over `num_locations` readers where pi(r, r) = main_rate
  /// and all cross-reads are (floored) zero.
  static ReadRateModel Uniform(int num_locations, double main_rate);

  /// Builds a model from an explicit row-major R x R table.
  /// pi[r][rbar] = probability reader r reads a tag located at rbar.
  static Result<ReadRateModel> FromTable(
      const std::vector<std::vector<double>>& pi);

  int num_locations() const { return num_locations_; }

  /// pi(r, rbar); probabilities are clamped to [kProbFloor, 1-kProbFloor].
  double Rate(LocationId r, LocationId rbar) const {
    return pi_[Index(r, rbar)];
  }

  /// Overrides one entry (used to model shelf-reader overlap).
  void SetRate(LocationId r, LocationId rbar, double p);

  /// Must be called after the last SetRate and before any log-space lookup.
  void FinalizeLogTables();

  /// log p(read | reader r, tag at rbar) -- Eq (1), x=1 branch.
  double LogRead(LocationId r, LocationId rbar) const {
    return log_read_[Index(r, rbar)];
  }

  /// log p(miss | reader r, tag at rbar) -- Eq (1), x=0 branch.
  double LogMiss(LocationId r, LocationId rbar) const {
    return log_miss_[Index(r, rbar)];
  }

  /// sum_r log p(miss | r, a): likelihood of an epoch with zero readings.
  double LogMissAll(LocationId a) const {
    return log_miss_all_[static_cast<size_t>(a)];
  }

  /// LogRead(r,a) - LogMiss(r,a): the correction applied per actual read.
  double LogReadAdjust(LocationId r, LocationId a) const {
    return log_adjust_[Index(r, a)];
  }

  /// True if the table has been finalized.
  bool finalized() const { return finalized_; }

 private:
  ReadRateModel(int num_locations, double fill);

  size_t Index(LocationId r, LocationId rbar) const {
    return static_cast<size_t>(r) * static_cast<size_t>(num_locations_) +
           static_cast<size_t>(rbar);
  }

  int num_locations_;
  bool finalized_ = false;
  std::vector<double> pi_;
  std::vector<double> log_read_;
  std::vector<double> log_miss_;
  std::vector<double> log_adjust_;
  std::vector<double> log_miss_all_;
};

}  // namespace rfid

#endif  // RFID_MODEL_READ_RATE_H_
