#include "model/schedule.h"

#include <numeric>

namespace rfid {

namespace {
// Schedules whose lcm exceeds this are rejected at Finalize time by capping;
// in practice cycles are 1, 10, or one mobile sweep (<= a few thousand).
constexpr Epoch kMaxCycle = 1 << 20;

Epoch Lcm(Epoch a, Epoch b) {
  return a / std::gcd(a, b) * b;
}
}  // namespace

InterrogationSchedule::InterrogationSchedule(int num_locations)
    : num_locations_(num_locations),
      readers_(static_cast<size_t>(num_locations)) {}

InterrogationSchedule InterrogationSchedule::AlwaysOn(int num_locations) {
  InterrogationSchedule s(num_locations);
  return s;  // default ReaderSchedule{1, 0, 1} is always-on
}

void InterrogationSchedule::SetPeriodic(LocationId r, Epoch period,
                                        Epoch phase) {
  readers_[static_cast<size_t>(r)] = ReaderSchedule{period, phase, 1};
  finalized_ = false;
}

void InterrogationSchedule::SetWindowed(LocationId r, Epoch cycle, Epoch start,
                                        Epoch len) {
  readers_[static_cast<size_t>(r)] = ReaderSchedule{cycle, start, len};
  finalized_ = false;
}

bool InterrogationSchedule::ActiveAt(LocationId r, Epoch t) const {
  const ReaderSchedule& s = readers_[static_cast<size_t>(r)];
  Epoch m = ((t % s.cycle) + s.cycle) % s.cycle;
  // The active window may wrap around the cycle boundary.
  Epoch off = m - s.start;
  if (off < 0) off += s.cycle;
  return off < s.len;
}

void InterrogationSchedule::Finalize(const ReadRateModel& model) {
  cycle_ = 1;
  for (const ReaderSchedule& s : readers_) {
    cycle_ = Lcm(cycle_, s.cycle);
    if (cycle_ > kMaxCycle) {
      cycle_ = kMaxCycle;  // degrade gracefully; kept for safety, not hit
      break;
    }
  }
  log_miss_all_.assign(
      static_cast<size_t>(cycle_) * static_cast<size_t>(num_locations_), 0.0);
  for (Epoch cls = 0; cls < cycle_; ++cls) {
    double* row = &log_miss_all_[static_cast<size_t>(cls) *
                                 static_cast<size_t>(num_locations_)];
    for (LocationId r = 0; r < num_locations_; ++r) {
      if (!ActiveAt(r, cls)) continue;
      for (LocationId a = 0; a < num_locations_; ++a) {
        row[a] += model.LogMiss(r, a);
      }
    }
  }
  finalized_ = true;
}

int64_t InterrogationSchedule::CountClassInRange(int cls, Epoch begin,
                                                 Epoch end) const {
  if (end < begin) return 0;
  // Count t in [begin, end] with t % cycle_ == cls (cls in [0, cycle_)).
  auto count_below = [&](Epoch upper) -> int64_t {
    // #t in [0, upper) with t % cycle_ == cls; assumes upper >= 0.
    if (upper <= 0) return 0;
    return (upper - 1 - cls >= 0) ? (upper - 1 - cls) / cycle_ + 1 : 0;
  };
  return count_below(end + 1) - count_below(begin);
}

}  // namespace rfid
