#include "model/read_rate.h"

#include <algorithm>
#include <cmath>

namespace rfid {

ReadRateModel::ReadRateModel(int num_locations, double fill)
    : num_locations_(num_locations),
      pi_(static_cast<size_t>(num_locations) *
              static_cast<size_t>(num_locations),
          fill) {}

ReadRateModel ReadRateModel::Uniform(int num_locations, double main_rate) {
  ReadRateModel m(num_locations, 0.0);
  for (LocationId r = 0; r < num_locations; ++r) {
    m.pi_[m.Index(r, r)] = main_rate;
  }
  m.FinalizeLogTables();
  return m;
}

Result<ReadRateModel> ReadRateModel::FromTable(
    const std::vector<std::vector<double>>& pi) {
  const int n = static_cast<int>(pi.size());
  if (n == 0) return Status::InvalidArgument("empty read-rate table");
  ReadRateModel m(n, 0.0);
  for (int r = 0; r < n; ++r) {
    if (static_cast<int>(pi[r].size()) != n) {
      return Status::InvalidArgument("read-rate table is not square");
    }
    for (int a = 0; a < n; ++a) {
      if (pi[r][a] < 0.0 || pi[r][a] > 1.0) {
        return Status::InvalidArgument("read rate outside [0,1]");
      }
      m.pi_[m.Index(r, a)] = pi[r][a];
    }
  }
  m.FinalizeLogTables();
  return m;
}

void ReadRateModel::SetRate(LocationId r, LocationId rbar, double p) {
  pi_[Index(r, rbar)] = std::clamp(p, 0.0, 1.0);
  finalized_ = false;
}

void ReadRateModel::FinalizeLogTables() {
  const size_t n2 = pi_.size();
  log_read_.resize(n2);
  log_miss_.resize(n2);
  log_adjust_.resize(n2);
  log_miss_all_.assign(static_cast<size_t>(num_locations_), 0.0);
  for (LocationId r = 0; r < num_locations_; ++r) {
    for (LocationId a = 0; a < num_locations_; ++a) {
      const size_t i = Index(r, a);
      // Clamp so neither branch of Eq (1) is exactly zero: a single stray
      // read must not carry infinite evidence.
      const double p = std::clamp(pi_[i], kProbFloor, 1.0 - kProbFloor);
      log_read_[i] = std::log(p);
      log_miss_[i] = std::log1p(-p);
      log_adjust_[i] = log_read_[i] - log_miss_[i];
      log_miss_all_[static_cast<size_t>(a)] += log_miss_[i];
    }
  }
  finalized_ = true;
}

}  // namespace rfid
