// Interrogation schedules.
//
// Table 2 of the paper: non-shelf readers interrogate every second, shelf
// readers every 10 seconds, and the Section 5.3 mobile deployment replaces
// static shelf readers with a mobile reader that spends 10 seconds per shelf
// sweeping an aisle. A reader that did not interrogate during an epoch gives
// no evidence, so the likelihood of "no reading" (Eq 1, x=0) must only be
// charged for readers that actually scanned. This class tracks, per epoch,
// which readers are active, and exposes the schedule-aware variant of the
// ReadRateModel's LogMissAll kernel.
//
// Epochs are grouped into a small number of *classes*: two readers schedules
// with the same cycle produce a periodic pattern of active-reader sets, and
// all per-epoch quantities that do not depend on actual readings are
// constant within a class. The inference engine exploits this to fold idle
// epochs (no readings for a container group) into per-class constants.
#ifndef RFID_MODEL_SCHEDULE_H_
#define RFID_MODEL_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "model/read_rate.h"

namespace rfid {

/// Periodic interrogation schedule over a fixed set of reader locations.
class InterrogationSchedule {
 public:
  /// Schedule where every reader interrogates every epoch (the textbook
  /// model of Section 3.1).
  static InterrogationSchedule AlwaysOn(int num_locations);

  explicit InterrogationSchedule(int num_locations);

  /// Reader `r` interrogates at epochs t with t % period == phase.
  /// period >= 1, 0 <= phase < period.
  void SetPeriodic(LocationId r, Epoch period, Epoch phase);

  /// Reader `r` interrogates at epochs t with (t % cycle) in
  /// [start, start+len) -- the mobile-reader pattern (dwell `len` at this
  /// shelf once per sweep of length `cycle`).
  void SetWindowed(LocationId r, Epoch cycle, Epoch start, Epoch len);

  /// Recomputes the epoch-class decomposition. Must be called after the last
  /// SetPeriodic/SetWindowed and before any query below.
  void Finalize(const ReadRateModel& model);

  int num_locations() const { return num_locations_; }

  /// True if reader `r` interrogates during epoch `t`.
  bool ActiveAt(LocationId r, Epoch t) const;

  /// The overall schedule cycle (lcm of reader cycles, capped).
  Epoch cycle() const { return cycle_; }

  /// Number of distinct epoch classes (== cycle, with classes indexed by
  /// t % cycle).
  int num_classes() const { return static_cast<int>(cycle_); }

  /// Class of an epoch.
  int ClassOf(Epoch t) const {
    return static_cast<int>(((t % cycle_) + cycle_) % cycle_);
  }

  /// Schedule-aware LogMissAll: sum over readers active at epochs of class
  /// `cls` of log(1 - pi(r, a)). Precondition: Finalize() called.
  double LogMissAllClass(LocationId a, int cls) const {
    return log_miss_all_[static_cast<size_t>(cls) *
                             static_cast<size_t>(num_locations_) +
                         static_cast<size_t>(a)];
  }

  /// Convenience: LogMissAllClass at the class of epoch t.
  double LogMissAllAt(LocationId a, Epoch t) const {
    return LogMissAllClass(a, ClassOf(t));
  }

  /// Number of epochs with class `cls` in the inclusive range [begin, end].
  int64_t CountClassInRange(int cls, Epoch begin, Epoch end) const;

 private:
  struct ReaderSchedule {
    Epoch cycle = 1;
    Epoch start = 0;  ///< active iff (t % cycle) in [start, start+len)
    Epoch len = 1;
  };

  int num_locations_;
  Epoch cycle_ = 1;
  std::vector<ReaderSchedule> readers_;
  /// [cls * R + a] -> sum of log-miss over active readers.
  std::vector<double> log_miss_all_;
  bool finalized_ = false;
};

}  // namespace rfid

#endif  // RFID_MODEL_SCHEDULE_H_
