// Forward sampling from the graphical model of Section 3.1.
//
// Two uses in the paper:
//  1. Threshold calibration for change-point detection (Section 3.3):
//     hypothetical no-change observation sequences are sampled from the
//     model, and the detection threshold delta is set above the largest
//     Delta statistic any of them produces.
//  2. Validating that inference recovers planted structure (our tests).
#ifndef RFID_MODEL_GENERATIVE_H_
#define RFID_MODEL_GENERATIVE_H_

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "model/read_rate.h"
#include "trace/trace.h"

namespace rfid {

/// A synthetic world with one container of `num_objects` objects whose true
/// location follows `location_path[t]` for t in [0, T).
struct GenerativeScenario {
  TagId container = TagId::Case(0);
  std::vector<TagId> objects;
  /// True location at each epoch; size defines the horizon T.
  std::vector<LocationId> location_path;
};

/// Samples RFID readings for the scenario exactly as the model describes:
/// every reader independently interrogates every tag each epoch and detects
/// it with probability pi(r, true location). Appends to `trace`.
void SampleReadings(const ReadRateModel& model,
                    const GenerativeScenario& scenario, Rng& rng,
                    Trace* trace);

/// Builds a random-walk location path of length T over the model's location
/// set, with probability `move_prob` of moving per epoch.
std::vector<LocationId> RandomLocationPath(int num_locations, Epoch horizon,
                                           double move_prob, Rng& rng);

}  // namespace rfid

#endif  // RFID_MODEL_GENERATIVE_H_
