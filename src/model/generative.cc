#include "model/generative.h"

namespace rfid {

void SampleReadings(const ReadRateModel& model,
                    const GenerativeScenario& scenario, Rng& rng,
                    Trace* trace) {
  const int R = model.num_locations();
  const Epoch horizon = static_cast<Epoch>(scenario.location_path.size());
  for (Epoch t = 0; t < horizon; ++t) {
    const LocationId truth = scenario.location_path[static_cast<size_t>(t)];
    if (truth == kNoLocation) continue;
    for (LocationId r = 0; r < R; ++r) {
      const double p = model.Rate(r, truth);
      if (rng.NextBernoulli(p)) {
        trace->Add(RawReading{t, scenario.container, r});
      }
      for (TagId obj : scenario.objects) {
        if (rng.NextBernoulli(p)) {
          trace->Add(RawReading{t, obj, r});
        }
      }
    }
  }
}

std::vector<LocationId> RandomLocationPath(int num_locations, Epoch horizon,
                                           double move_prob, Rng& rng) {
  std::vector<LocationId> path(static_cast<size_t>(horizon));
  LocationId cur =
      static_cast<LocationId>(rng.NextBounded(
          static_cast<uint64_t>(num_locations)));
  for (Epoch t = 0; t < horizon; ++t) {
    if (t > 0 && rng.NextBernoulli(move_prob)) {
      cur = static_cast<LocationId>(
          rng.NextBounded(static_cast<uint64_t>(num_locations)));
    }
    path[static_cast<size_t>(t)] = cur;
  }
  return path;
}

}  // namespace rfid
