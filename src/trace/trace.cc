#include "trace/trace.h"

#include <algorithm>

namespace rfid {

Trace::Trace(const Trace& other)
    : readings_(other.readings_),
      sealed_(other.sealed_),
      columns_enabled_(other.columns_enabled_) {
  // The copy never shares the source's arena: a bound arena is rewound by
  // every Seal, so sharing one across live traces would corrupt the source.
  if (sealed_) BuildIndex();
}

Trace& Trace::operator=(const Trace& other) {
  if (this == &other) return *this;
  readings_ = other.readings_;
  sealed_ = other.sealed_;
  columns_enabled_ = other.columns_enabled_;
  if (sealed_) {
    BuildIndex();
  } else {
    InvalidateIndex();
  }
  return *this;
}

// Moving a vector transfers its heap buffer, so CSR pointers into the own_*
// vectors (or into the arena, which is unaffected) stay valid in the
// destination.
Trace::Trace(Trace&& other) noexcept
    : readings_(std::move(other.readings_)),
      sealed_(other.sealed_),
      arena_(other.arena_),
      columns_enabled_(other.columns_enabled_),
      keys_(other.keys_),
      offsets_(other.offsets_),
      flat_(other.flat_),
      key_count_(other.key_count_),
      own_keys_(std::move(other.own_keys_)),
      own_offsets_(std::move(other.own_offsets_)),
      own_flat_(std::move(other.own_flat_)),
      col_time_(std::move(other.col_time_)),
      col_tag_(std::move(other.col_tag_)),
      col_reader_(std::move(other.col_reader_)) {
  other.readings_.clear();
  other.InvalidateIndex();
  other.sealed_ = true;
  other.arena_ = nullptr;
}

Trace& Trace::operator=(Trace&& other) noexcept {
  if (this == &other) return *this;
  readings_ = std::move(other.readings_);
  sealed_ = other.sealed_;
  arena_ = other.arena_;
  columns_enabled_ = other.columns_enabled_;
  keys_ = other.keys_;
  offsets_ = other.offsets_;
  flat_ = other.flat_;
  key_count_ = other.key_count_;
  own_keys_ = std::move(other.own_keys_);
  own_offsets_ = std::move(other.own_offsets_);
  own_flat_ = std::move(other.own_flat_);
  col_time_ = std::move(other.col_time_);
  col_tag_ = std::move(other.col_tag_);
  col_reader_ = std::move(other.col_reader_);
  other.readings_.clear();
  other.InvalidateIndex();
  other.sealed_ = true;
  other.arena_ = nullptr;
  return *this;
}

void Trace::Append(const ReadingColumnsView& view) {
  readings_.reserve(readings_.size() + view.size);
  for (size_t i = 0; i < view.size; ++i) {
    readings_.push_back(
        RawReading{view.time[i], view.tag[i], view.reader[i]});
  }
  sealed_ = false;
}

std::vector<RawReading> Trace::TakeReadings() {
  std::vector<RawReading> out = std::move(readings_);
  readings_.clear();
  InvalidateIndex();
  sealed_ = false;
  return out;
}

void Trace::Seal() {
  std::sort(readings_.begin(), readings_.end(), RawReadingOrder{});
  readings_.erase(std::unique(readings_.begin(), readings_.end()),
                  readings_.end());
  BuildIndex();
  sealed_ = true;
}

void Trace::InvalidateIndex() {
  keys_ = nullptr;
  offsets_ = nullptr;
  flat_ = nullptr;
  key_count_ = 0;
  own_keys_.clear();
  own_offsets_.clear();
  own_flat_.clear();
  col_time_.clear();
  col_tag_.clear();
  col_reader_.clear();
}

// Precondition: readings_ is in canonical order. Three allocation-free
// passes (after the arrays are carved out): collect+sort tags into
// key runs, prefix-sum the offsets, then scatter TagReads into the flat
// array. Per-tag entries land in (time, reader) order because the global
// scan order is (time, reader, tag) -- identical to the old per-tag
// push_back index.
void Trace::BuildIndex() {
  const size_t n = readings_.size();
  std::vector<TagId> heap_scratch;
  std::vector<uint32_t> heap_cursor;
  TagId* all = nullptr;
  if (arena_ != nullptr) {
    // Rewinding here is what makes the window cycle heap-free: every Seal
    // reuses the same blocks. All spans from the previous Seal die now.
    arena_->Reset();
    all = arena_->AllocateArray<TagId>(n);
  } else {
    heap_scratch.resize(n);
    all = heap_scratch.data();
  }
  for (size_t i = 0; i < n; ++i) all[i] = readings_[i].tag;
  std::sort(all, all + n);
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i == 0 || all[i] != all[i - 1]) ++k;
  }

  TagId* keys = nullptr;
  uint32_t* offsets = nullptr;
  TagRead* flat = nullptr;
  uint32_t* cursor = nullptr;
  if (arena_ != nullptr) {
    keys = arena_->AllocateArray<TagId>(k);
    offsets = arena_->AllocateArray<uint32_t>(k + 1);
    flat = arena_->AllocateArray<TagRead>(n);
    cursor = arena_->AllocateArray<uint32_t>(k);
  } else {
    own_keys_.resize(k);
    own_offsets_.resize(k + 1);
    own_flat_.resize(n);
    heap_cursor.resize(k);
    keys = own_keys_.data();
    offsets = own_offsets_.data();
    flat = own_flat_.data();
    cursor = heap_cursor.data();
  }

  // lint:hot-loop-begin(index-scatter)
  offsets[0] = 0;
  size_t ki = 0;
  for (size_t i = 0; i < n;) {
    size_t j = i;
    while (j < n && all[j] == all[i]) ++j;
    keys[ki] = all[i];
    offsets[ki + 1] = offsets[ki] + static_cast<uint32_t>(j - i);
    ++ki;
    i = j;
  }
  std::copy(offsets, offsets + k, cursor);
  for (size_t i = 0; i < n; ++i) {
    const RawReading& r = readings_[i];
    const size_t idx = static_cast<size_t>(
        std::lower_bound(keys, keys + k, r.tag) - keys);
    flat[cursor[idx]++] = TagRead{r.time, r.reader};
  }
  // lint:hot-loop-end

  keys_ = keys;
  offsets_ = offsets;
  flat_ = flat;
  key_count_ = k;

  if (columns_enabled_) {
    col_time_.resize(n);
    col_tag_.resize(n);
    col_reader_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      col_time_[i] = readings_[i].time;
      col_tag_[i] = readings_[i].tag;
      col_reader_[i] = readings_[i].reader;
    }
  } else {
    col_time_.clear();
    col_tag_.clear();
    col_reader_.clear();
  }
}

TagReadSpan Trace::HistoryOf(TagId tag) const {
  const TagId* it = std::lower_bound(keys_, keys_ + key_count_, tag);
  if (it == keys_ + key_count_ || *it != tag) return TagReadSpan{};
  const size_t i = static_cast<size_t>(it - keys_);
  return TagReadSpan{flat_ + offsets_[i], offsets_[i + 1] - offsets_[i]};
}

Trace Trace::Slice(Epoch begin, Epoch end) const {
  Trace out;
  for (const RawReading& r : readings_) {
    if (r.time >= begin && r.time <= end) out.Add(r);
  }
  out.Seal();
  return out;
}

}  // namespace rfid
