#include "trace/trace.h"

#include <algorithm>

namespace rfid {

void Trace::Seal() {
  std::sort(readings_.begin(), readings_.end(), RawReadingOrder{});
  readings_.erase(std::unique(readings_.begin(), readings_.end()),
                  readings_.end());
  by_tag_.clear();
  for (const RawReading& r : readings_) {
    by_tag_[r.tag].push_back(TagRead{r.time, r.reader});
  }
  sealed_ = true;
}

const std::vector<TagRead>& Trace::HistoryOf(TagId tag) const {
  static const std::vector<TagRead> kEmpty;
  auto it = by_tag_.find(tag);
  return it == by_tag_.end() ? kEmpty : it->second;
}

std::vector<TagId> Trace::Tags() const {
  std::vector<TagId> tags;
  tags.reserve(by_tag_.size());
  for (const auto& [tag, unused] : by_tag_) tags.push_back(tag);
  std::sort(tags.begin(), tags.end());
  return tags;
}

Trace Trace::Slice(Epoch begin, Epoch end) const {
  Trace out;
  for (const RawReading& r : readings_) {
    if (r.time >= begin && r.time <= end) out.Add(r);
  }
  out.Seal();
  return out;
}

}  // namespace rfid
