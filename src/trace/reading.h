// The two record schemas the paper distinguishes (Section 2):
//  - raw RFID readings (time, tag id, reader id) produced by readers, and
//  - object events (time, tag id, location, container) produced by the
//    inference module and consumed by query processing.
// Plus auxiliary sensor readings (temperature) for hybrid queries.
#ifndef RFID_TRACE_READING_H_
#define RFID_TRACE_READING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace rfid {

/// One raw RFID observation: reader `reader` interrogated and received tag
/// `tag` during epoch `time`.
struct RawReading {
  Epoch time = 0;
  TagId tag;
  LocationId reader = kNoLocation;

  friend bool operator==(const RawReading&, const RawReading&) = default;
};

/// Orders readings by (time, reader, tag); the canonical stream order.
struct RawReadingOrder {
  bool operator()(const RawReading& a, const RawReading& b) const {
    if (a.time != b.time) return a.time < b.time;
    if (a.reader != b.reader) return a.reader < b.reader;
    return a.tag < b.tag;
  }
};

/// One inferred object event, the input schema for query processing.
struct ObjectEvent {
  Epoch time = 0;
  TagId tag;
  LocationId loc = kNoLocation;
  /// Inferred container; kNoTag when the object is believed uncontained.
  TagId container;

  friend bool operator==(const ObjectEvent&, const ObjectEvent&) = default;
};

/// One environmental sensor sample (e.g. temperature at a location), used by
/// hybrid queries such as Q1.
struct SensorReading {
  Epoch time = 0;
  LocationId loc = kNoLocation;
  double value = 0.0;

  friend bool operator==(const SensorReading&, const SensorReading&) = default;
};

/// A (epoch, reader) pair in a tag's sparse read history.
struct TagRead {
  Epoch time = 0;
  LocationId reader = kNoLocation;

  friend bool operator==(const TagRead&, const TagRead&) = default;
  friend bool operator<(const TagRead& a, const TagRead& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.reader < b.reader;
  }
};

/// Non-owning view of one tag's time-ordered history inside a sealed
/// trace's flat index. Valid until the owning trace is resealed,
/// compacted, or destroyed.
class TagReadSpan {
 public:
  constexpr TagReadSpan() = default;
  constexpr TagReadSpan(const TagRead* data, size_t size)
      : data_(data), size_(size) {}
  // Implicit on purpose: lets vector-holding callers (tests, baselines)
  // pass straight into span-taking APIs.
  TagReadSpan(const std::vector<TagRead>& v)  // NOLINT(runtime/explicit)
      : data_(v.data()), size_(v.size()) {}

  constexpr const TagRead* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const TagRead* begin() const { return data_; }
  constexpr const TagRead* end() const { return data_ + size_; }
  constexpr const TagRead& operator[](size_t i) const { return data_[i]; }
  constexpr const TagRead& front() const { return data_[0]; }
  constexpr const TagRead& back() const { return data_[size_ - 1]; }

 private:
  const TagRead* data_ = nullptr;
  size_t size_ = 0;
};

/// Struct-of-arrays view over a sealed trace's readings: three parallel
/// columns in canonical (time, reader, tag) order, so inner inference
/// scans run over contiguous same-typed memory. Row i of the trace is
/// (time[i], tag[i], reader[i]). Non-owning; valid until the trace is
/// resealed, mutated, or destroyed.
struct ReadingColumnsView {
  const Epoch* time = nullptr;
  const TagId* tag = nullptr;
  const LocationId* reader = nullptr;
  size_t size = 0;

  bool empty() const { return size == 0; }
  RawReading Row(size_t i) const { return RawReading{time[i], tag[i], reader[i]}; }
};

std::string ToString(const RawReading& r);
std::string ToString(const ObjectEvent& e);

}  // namespace rfid

#endif  // RFID_TRACE_READING_H_
