// In-memory trace containers: a time-ordered raw stream plus a per-tag
// sparse index, which is the representation RFINFER consumes (Appendix A.3:
// "many of these tables, especially the history tables, are sparse").
#ifndef RFID_TRACE_TRACE_H_
#define RFID_TRACE_TRACE_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "trace/reading.h"

namespace rfid {

/// A raw RFID trace: readings in canonical (time, reader, tag) order with a
/// per-tag sparse history index built lazily.
class Trace {
 public:
  Trace() = default;

  /// Appends one reading. Readings may arrive unsorted; call Seal() before
  /// reading per-tag histories.
  void Add(const RawReading& r) {
    readings_.push_back(r);
    sealed_ = false;
  }

  void Append(const std::vector<RawReading>& rs) {
    Append(rs.data(), rs.size());
  }

  void Append(const RawReading* rs, size_t n) {
    readings_.insert(readings_.end(), rs, rs + n);
    sealed_ = false;
  }

  /// Sorts readings into canonical order, removes exact duplicates, and
  /// rebuilds the per-tag index.
  void Seal();

  bool sealed() const { return sealed_; }
  size_t size() const { return readings_.size(); }
  bool empty() const { return readings_.empty(); }

  /// All readings in canonical order. Precondition: sealed().
  const std::vector<RawReading>& readings() const { return readings_; }

  /// Sparse history of one tag (time-ordered). Empty if the tag was never
  /// read. Precondition: sealed().
  const std::vector<TagRead>& HistoryOf(TagId tag) const;

  /// All tags that appear in the trace. Precondition: sealed().
  std::vector<TagId> Tags() const;

  /// First/last epoch present; [0, -1] when empty. Precondition: sealed().
  Epoch MinEpoch() const { return readings_.empty() ? 0 : readings_.front().time; }
  Epoch MaxEpoch() const { return readings_.empty() ? -1 : readings_.back().time; }

  /// Copies the readings with time in [begin, end] into a new trace.
  Trace Slice(Epoch begin, Epoch end) const;

 private:
  std::vector<RawReading> readings_;
  std::unordered_map<TagId, std::vector<TagRead>> by_tag_;
  bool sealed_ = true;
};

}  // namespace rfid

#endif  // RFID_TRACE_TRACE_H_
