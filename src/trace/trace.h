// In-memory trace containers: a time-ordered raw stream plus a per-tag
// sparse index, which is the representation RFINFER consumes (Appendix A.3:
// "many of these tables, especially the history tables, are sparse").
//
// Seal() builds the per-tag index as a compressed-sparse-row (CSR) layout:
// one sorted key array, one offset array, one flat TagRead array -- no
// per-tag heap nodes. When an Arena is bound (SetArena) those three arrays
// live in the arena and the arena is rewound at the start of every Seal, so
// the steady-state window cycle performs zero per-reading heap traffic.
// Optionally (EnableColumns) Seal also materializes a struct-of-arrays copy
// of the readings for column scans.
#ifndef RFID_TRACE_TRACE_H_
#define RFID_TRACE_TRACE_H_

#include <algorithm>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "common/types.h"
#include "trace/reading.h"

namespace rfid {

/// A raw RFID trace: readings in canonical (time, reader, tag) order with a
/// per-tag sparse history index rebuilt by Seal().
class Trace {
 public:
  Trace() = default;

  // The CSR index holds raw pointers (into the bound arena or the owned
  // backing vectors); copies re-derive it and moves transfer the backing
  // storage, so the pointers stay valid in both cases.
  Trace(const Trace& other);
  Trace& operator=(const Trace& other);
  Trace(Trace&& other) noexcept;
  Trace& operator=(Trace&& other) noexcept;

  /// Appends one reading. Readings may arrive unsorted; call Seal() before
  /// reading per-tag histories.
  void Add(const RawReading& r) {
    readings_.push_back(r);
    sealed_ = false;
  }

  void Append(const std::vector<RawReading>& rs) {
    Append(rs.data(), rs.size());
  }

  void Append(const RawReading* rs, size_t n) {
    readings_.insert(readings_.end(), rs, rs + n);
    sealed_ = false;
  }

  /// Appends `view.size` readings from parallel columns.
  void Append(const ReadingColumnsView& view);

  /// Sorts readings into canonical order, removes exact duplicates, and
  /// rebuilds the per-tag index (plus the columns when enabled). When an
  /// arena is bound this rewinds it first: all spans handed out by previous
  /// Seals of this trace are invalidated.
  void Seal();

  bool sealed() const { return sealed_; }
  size_t size() const { return readings_.size(); }
  bool empty() const { return readings_.empty(); }

  /// All readings in canonical order. Precondition: sealed().
  const std::vector<RawReading>& readings() const { return readings_; }

  /// Moves the readings out (e.g. after decoding a wire batch), leaving the
  /// trace empty and unsealed.
  std::vector<RawReading> TakeReadings();

  /// Sparse history of one tag (time-ordered). Empty if the tag was never
  /// read. Precondition: sealed(). The span is valid until the next Seal
  /// (or mutation) of this trace.
  TagReadSpan HistoryOf(TagId tag) const;

  /// All tags that appear in the trace, sorted. Precondition: sealed().
  std::vector<TagId> Tags() const {
    return std::vector<TagId>(keys_, keys_ + key_count_);
  }

  /// First/last epoch present; [0, -1] when empty. Precondition: sealed().
  Epoch MinEpoch() const { return readings_.empty() ? 0 : readings_.front().time; }
  Epoch MaxEpoch() const { return readings_.empty() ? -1 : readings_.back().time; }

  /// Copies the readings with time in [begin, end] into a new trace.
  Trace Slice(Epoch begin, Epoch end) const;

  /// Drops every reading for which `pred` is false, in place (the relative
  /// order of survivors is preserved). Leaves the trace unsealed; arena and
  /// column bindings are untouched.
  template <typename Pred>
  void RetainIf(Pred pred) {
    readings_.erase(
        std::remove_if(readings_.begin(), readings_.end(),
                       [&](const RawReading& r) { return !pred(r); }),
        readings_.end());
    sealed_ = false;
  }

  /// Binds (or unbinds, with nullptr) a bump arena for the CSR index
  /// arrays. Non-owning: the arena must outlive the trace's last Seal.
  /// The arena is rewound by every Seal -- do not share one arena between
  /// traces that are alive at the same time. Takes effect at the next Seal.
  void SetArena(Arena* arena) { arena_ = arena; }
  bool arena_bound() const { return arena_ != nullptr; }

  /// Enables struct-of-arrays column materialization at Seal time.
  void EnableColumns(bool on) { columns_enabled_ = on; }
  bool has_columns() const { return columns_enabled_ && sealed_; }

  /// Parallel (time, tag, reader) columns in canonical order.
  /// Precondition: has_columns(). Valid until the next Seal or mutation.
  ReadingColumnsView columns() const {
    return ReadingColumnsView{col_time_.data(), col_tag_.data(),
                              col_reader_.data(), col_time_.size()};
  }

 private:
  void BuildIndex();
  void InvalidateIndex();

  std::vector<RawReading> readings_;
  bool sealed_ = true;
  Arena* arena_ = nullptr;
  bool columns_enabled_ = false;

  // CSR per-tag index: keys_[i] owns flat_[offsets_[i] .. offsets_[i+1]).
  // The arrays live in *arena_ when bound, else in the own_* vectors.
  const TagId* keys_ = nullptr;
  const uint32_t* offsets_ = nullptr;
  const TagRead* flat_ = nullptr;
  size_t key_count_ = 0;
  std::vector<TagId> own_keys_;
  std::vector<uint32_t> own_offsets_;
  std::vector<TagRead> own_flat_;

  // SoA columns (owned; capacity is reused across Seals).
  std::vector<Epoch> col_time_;
  std::vector<TagId> col_tag_;
  std::vector<LocationId> col_reader_;
};

}  // namespace rfid

#endif  // RFID_TRACE_TRACE_H_
