// Trace persistence: a compact binary format (delta-encoded varints) and a
// CSV form for interoperability. The binary encoder is also what the
// centralized baseline ships over the network before gzip (Table 5).
#ifndef RFID_TRACE_TRACE_IO_H_
#define RFID_TRACE_TRACE_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "trace/trace.h"

namespace rfid {

/// One reading of a delta stream: signed-varint time delta, varint reader,
/// signed-varint tag-raw delta (wrapping in uint64 space -- raw ids carry
/// the packaging kind in the top bits, so cross-kind deltas can exceed the
/// int64 range). Shared by the trace codec and the migration-state codec
/// (inference/state.cc); `prev_time`/`prev_tag` thread the delta context.
class BufferWriter;
class BufferReader;
void PutDeltaReading(BufferWriter& w, const RawReading& r, Epoch& prev_time,
                     uint64_t& prev_tag);
Status GetDeltaReading(BufferReader& r, RawReading* out, Epoch& prev_time,
                       uint64_t& prev_tag);

/// Serializes a sealed trace. Encoding: magic, count, then per reading
/// delta-varint time, varint reader, varint tag-raw delta (zigzag).
std::vector<uint8_t> EncodeTrace(const Trace& trace);

/// Parses bytes produced by EncodeTrace.
Result<Trace> DecodeTrace(const std::vector<uint8_t>& bytes);

/// Writes/reads the binary format to a file.
Status WriteTraceFile(const Trace& trace, const std::string& path);
Result<Trace> ReadTraceFile(const std::string& path);

/// CSV with header "time,tag,reader"; tag rendered as kind:serial.
Status WriteTraceCsv(const Trace& trace, const std::string& path);

}  // namespace rfid

#endif  // RFID_TRACE_TRACE_IO_H_
