// Static per-tag product attributes, standing in for the "manufacturer's
// database" the paper consults for optional event attributes (type of food,
// type of container). Queries like Q1 test `container IsA 'freezer'` and
// product properties like "frozen" against this catalog.
#ifndef RFID_TRACE_PRODUCT_CATALOG_H_
#define RFID_TRACE_PRODUCT_CATALOG_H_

#include <string>
#include <unordered_map>

#include "common/types.h"

namespace rfid {

/// Container classes relevant to the paper's example queries.
enum class ContainerClass : uint8_t {
  kPlain = 0,
  kFreezer = 1,
  kFireproof = 2,
};

std::string ToString(ContainerClass c);

/// Attributes of one product (item-level tag).
struct ProductInfo {
  std::string type;          ///< e.g. "frozen_food", "drug", "scalpel"
  bool frozen = false;       ///< requires cold chain (Q1/Q2)
  bool flammable = false;    ///< requires fireproof case
  bool has_peanuts = false;  ///< allergen example from Section 1
};

/// Attributes of one container (case/pallet-level tag).
struct ContainerInfo {
  ContainerClass klass = ContainerClass::kPlain;
};

/// In-memory manufacturer catalog: tag id -> attributes.
class ProductCatalog {
 public:
  void RegisterProduct(TagId tag, ProductInfo info) {
    products_[tag] = std::move(info);
  }
  void RegisterContainer(TagId tag, ContainerInfo info) {
    containers_[tag] = info;
  }

  /// Looks up a product; returns nullptr when unknown.
  const ProductInfo* FindProduct(TagId tag) const {
    auto it = products_.find(tag);
    return it == products_.end() ? nullptr : &it->second;
  }

  /// Looks up a container; returns nullptr when unknown.
  const ContainerInfo* FindContainer(TagId tag) const {
    auto it = containers_.find(tag);
    return it == containers_.end() ? nullptr : &it->second;
  }

  /// Q1's `container IsA 'freezer'` test; false for unknown/kNoTag.
  bool IsA(TagId container, ContainerClass klass) const {
    const ContainerInfo* info = FindContainer(container);
    return info != nullptr && info->klass == klass;
  }

  size_t num_products() const { return products_.size(); }
  size_t num_containers() const { return containers_.size(); }

 private:
  std::unordered_map<TagId, ProductInfo> products_;
  std::unordered_map<TagId, ContainerInfo> containers_;
};

}  // namespace rfid

#endif  // RFID_TRACE_PRODUCT_CATALOG_H_
