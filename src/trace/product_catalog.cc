#include "trace/product_catalog.h"

namespace rfid {

std::string ToString(ContainerClass c) {
  switch (c) {
    case ContainerClass::kPlain:
      return "plain";
    case ContainerClass::kFreezer:
      return "freezer";
    case ContainerClass::kFireproof:
      return "fireproof";
  }
  return "unknown";
}

}  // namespace rfid
