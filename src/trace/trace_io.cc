#include "trace/trace_io.h"

#include <cstdio>

#include "common/serde.h"

namespace rfid {

namespace {
constexpr uint32_t kTraceMagic = 0x52464454;  // "RFDT"
}  // namespace

std::vector<uint8_t> EncodeTrace(const Trace& trace) {
  BufferWriter w;
  w.PutU32(kTraceMagic);
  w.PutVarint(trace.size());
  Epoch prev_time = 0;
  uint64_t prev_tag = 0;
  for (const RawReading& r : trace.readings()) {
    w.PutSignedVarint(r.time - prev_time);
    w.PutVarint(static_cast<uint64_t>(r.reader));
    w.PutSignedVarint(static_cast<int64_t>(r.tag.raw()) -
                      static_cast<int64_t>(prev_tag));
    prev_time = r.time;
    prev_tag = r.tag.raw();
  }
  return w.Release();
}

Result<Trace> DecodeTrace(const std::vector<uint8_t>& bytes) {
  BufferReader reader(bytes);
  uint32_t magic;
  RFID_RETURN_NOT_OK(reader.GetU32(&magic));
  if (magic != kTraceMagic) {
    return Status::Corruption("bad trace magic");
  }
  uint64_t count;
  RFID_RETURN_NOT_OK(reader.GetVarint(&count));
  Trace trace;
  Epoch prev_time = 0;
  uint64_t prev_tag = 0;
  for (uint64_t i = 0; i < count; ++i) {
    int64_t dt, dtag;
    uint64_t rd;
    RFID_RETURN_NOT_OK(reader.GetSignedVarint(&dt));
    RFID_RETURN_NOT_OK(reader.GetVarint(&rd));
    RFID_RETURN_NOT_OK(reader.GetSignedVarint(&dtag));
    prev_time += dt;
    prev_tag = static_cast<uint64_t>(static_cast<int64_t>(prev_tag) + dtag);
    trace.Add(RawReading{prev_time, TagId::FromRaw(prev_tag),
                         static_cast<LocationId>(rd)});
  }
  trace.Seal();
  return trace;
}

Status WriteTraceFile(const Trace& trace, const std::string& path) {
  std::vector<uint8_t> bytes = EncodeTrace(trace);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) return Status::IOError("short write " + path);
  return Status::OK();
}

Result<Trace> ReadTraceFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::vector<uint8_t> bytes;
  uint8_t chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  std::fclose(f);
  return DecodeTrace(bytes);
}

Status WriteTraceCsv(const Trace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fputs("time,tag,reader\n", f);
  for (const RawReading& r : trace.readings()) {
    std::fprintf(f, "%lld,%s,%d\n", static_cast<long long>(r.time),
                 r.tag.ToString().c_str(), r.reader);
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace rfid
