#include "trace/trace_io.h"

#include <cstdio>
#include <limits>

#include "common/serde.h"

namespace rfid {

namespace {
constexpr uint32_t kTraceMagic = 0x52464454;  // "RFDT"
}  // namespace

void PutDeltaReading(BufferWriter& w, const RawReading& r, Epoch& prev_time,
                     uint64_t& prev_tag) {
  w.PutSignedVarint(r.time - prev_time);
  w.PutVarint(static_cast<uint64_t>(r.reader));
  // Tag deltas wrap in uint64 space (see the header comment).
  w.PutSignedVarint(static_cast<int64_t>(r.tag.raw() - prev_tag));
  prev_time = r.time;
  prev_tag = r.tag.raw();
}

Status GetDeltaReading(BufferReader& r, RawReading* out, Epoch& prev_time,
                       uint64_t& prev_tag) {
  int64_t dt = 0;
  int64_t dtag = 0;
  uint64_t rd = 0;
  RFID_RETURN_NOT_OK(r.GetSignedVarint(&dt));
  RFID_RETURN_NOT_OK(r.GetVarint(&rd));
  RFID_RETURN_NOT_OK(r.GetSignedVarint(&dtag));
  if (rd > static_cast<uint64_t>(std::numeric_limits<LocationId>::max())) {
    return Status::Corruption("reader id out of range");
  }
  // Both deltas are untrusted wire data: accumulate in uint64 space so a
  // corrupt payload yields a garbage value (caught by callers or harmless),
  // never signed-overflow UB.
  prev_time = static_cast<Epoch>(static_cast<uint64_t>(prev_time) +
                                 static_cast<uint64_t>(dt));
  prev_tag += static_cast<uint64_t>(dtag);
  *out = RawReading{prev_time, TagId::FromRaw(prev_tag),
                    static_cast<LocationId>(rd)};
  return Status::OK();
}

std::vector<uint8_t> EncodeTrace(const Trace& trace) {
  BufferWriter w;
  w.PutU32(kTraceMagic);
  w.PutVarint(trace.size());
  Epoch prev_time = 0;
  uint64_t prev_tag = 0;
  for (const RawReading& r : trace.readings()) {
    PutDeltaReading(w, r, prev_time, prev_tag);
  }
  return w.Release();
}

Result<Trace> DecodeTrace(const std::vector<uint8_t>& bytes) {
  BufferReader reader(bytes);
  uint32_t magic;
  RFID_RETURN_NOT_OK(reader.GetU32(&magic));
  if (magic != kTraceMagic) {
    return Status::Corruption("bad trace magic");
  }
  uint64_t count;
  RFID_RETURN_NOT_OK(reader.GetVarint(&count));
  Trace trace;
  Epoch prev_time = 0;
  uint64_t prev_tag = 0;
  for (uint64_t i = 0; i < count; ++i) {
    RawReading r;
    RFID_RETURN_NOT_OK(GetDeltaReading(reader, &r, prev_time, prev_tag));
    trace.Add(r);
  }
  trace.Seal();
  return trace;
}

Status WriteTraceFile(const Trace& trace, const std::string& path) {
  std::vector<uint8_t> bytes = EncodeTrace(trace);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) return Status::IOError("short write " + path);
  return Status::OK();
}

Result<Trace> ReadTraceFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::vector<uint8_t> bytes;
  uint8_t chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  std::fclose(f);
  return DecodeTrace(bytes);
}

Status WriteTraceCsv(const Trace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fputs("time,tag,reader\n", f);
  for (const RawReading& r : trace.readings()) {
    std::fprintf(f, "%lld,%s,%d\n", static_cast<long long>(r.time),
                 r.tag.ToString().c_str(), r.reader);
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace rfid
