#include "trace/ground_truth.h"

#include <algorithm>

namespace rfid {

void GroundTruth::Set(TagId tag, Epoch time, LocationId loc,
                      TagId container) {
  auto& runs = intervals_[tag];
  if (!runs.empty()) {
    TruthInterval& last = runs.back();
    if (last.loc == loc && last.container == container) {
      // State unchanged; the open interval simply continues.
      return;
    }
    // Close the previous interval the epoch before this change.
    last.end = time - 1;
    if (last.container != container) {
      changes_.push_back(TruthChange{time, tag, last.container, container});
    }
    if (last.end < last.begin) {
      // Zero-length run (two changes in one epoch): drop it.
      runs.pop_back();
    }
  }
  // `end` stays open until the next Set/Finish.
  runs.push_back(TruthInterval{time, time, loc, container});
}

void GroundTruth::Finish(Epoch end_epoch) {
  for (auto& [tag, runs] : intervals_) {
    if (!runs.empty() && runs.back().end <= runs.back().begin) {
      runs.back().end = std::max(runs.back().begin, end_epoch);
    }
  }
  std::sort(changes_.begin(), changes_.end(),
            [](const TruthChange& a, const TruthChange& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.tag < b.tag;
            });
  finished_ = true;
}

const TruthInterval* GroundTruth::FindInterval(TagId tag, Epoch t) const {
  auto it = intervals_.find(tag);
  if (it == intervals_.end()) return nullptr;
  const auto& runs = it->second;
  // Last interval whose begin <= t.
  auto pos = std::upper_bound(
      runs.begin(), runs.end(), t,
      [](Epoch t_, const TruthInterval& iv) { return t_ < iv.begin; });
  if (pos == runs.begin()) return nullptr;
  --pos;
  if (t > pos->end) return nullptr;
  return &*pos;
}

LocationId GroundTruth::LocationAt(TagId tag, Epoch t) const {
  const TruthInterval* iv = FindInterval(tag, t);
  return iv == nullptr ? kNoLocation : iv->loc;
}

TagId GroundTruth::ContainerAt(TagId tag, Epoch t) const {
  const TruthInterval* iv = FindInterval(tag, t);
  return iv == nullptr ? kNoTag : iv->container;
}

bool GroundTruth::PresentAt(TagId tag, Epoch t) const {
  const TruthInterval* iv = FindInterval(tag, t);
  if (iv == nullptr) return false;
  // A (no location, no container) interval is the departure tombstone
  // written when a tag leaves the tracked world.
  return !(iv->loc == kNoLocation && !iv->container.valid());
}

std::vector<TagId> GroundTruth::Tags() const {
  std::vector<TagId> tags;
  tags.reserve(intervals_.size());
  for (const auto& [tag, unused] : intervals_) tags.push_back(tag);
  std::sort(tags.begin(), tags.end());
  return tags;
}

const std::vector<TruthInterval>& GroundTruth::IntervalsOf(TagId tag) const {
  static const std::vector<TruthInterval> kEmpty;
  auto it = intervals_.find(tag);
  return it == intervals_.end() ? kEmpty : it->second;
}

}  // namespace rfid
