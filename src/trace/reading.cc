#include "trace/reading.h"

namespace rfid {

std::string ToString(const RawReading& r) {
  return "(" + std::to_string(r.time) + ", " + r.tag.ToString() + ", reader " +
         std::to_string(r.reader) + ")";
}

std::string ToString(const ObjectEvent& e) {
  return "(" + std::to_string(e.time) + ", " + e.tag.ToString() + ", loc " +
         std::to_string(e.loc) + ", container " + e.container.ToString() + ")";
}

}  // namespace rfid
