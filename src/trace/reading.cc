#include "trace/reading.h"

namespace rfid {

// Appends instead of operator+ chains: concatenating string literals with
// std::string temporaries trips GCC 12's -Wrestrict (PR105651) at -O2.
std::string ToString(const RawReading& r) {
  std::string out = "(";
  out += std::to_string(r.time);
  out += ", ";
  out += r.tag.ToString();
  out += ", reader ";
  out += std::to_string(r.reader);
  out += ")";
  return out;
}

std::string ToString(const ObjectEvent& e) {
  std::string out = "(";
  out += std::to_string(e.time);
  out += ", ";
  out += e.tag.ToString();
  out += ", loc ";
  out += std::to_string(e.loc);
  out += ", container ";
  out += e.container.ToString();
  out += ")";
  return out;
}

}  // namespace rfid
