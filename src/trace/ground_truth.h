// Ground-truth state of the simulated world, against which inference output
// is scored (Appendix C.1 "we compare the inference results with the ground
// truth and compute the error rate").
//
// Storage is interval-compressed: object state (location, container) changes
// rarely relative to the 1-second epoch grid, so each tag keeps a sorted run
// of constant-state intervals.
#ifndef RFID_TRACE_GROUND_TRUTH_H_
#define RFID_TRACE_GROUND_TRUTH_H_

#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace rfid {

/// A maximal run of epochs during which a tag's true state was constant.
struct TruthInterval {
  Epoch begin = 0;  ///< inclusive
  Epoch end = 0;    ///< inclusive
  LocationId loc = kNoLocation;
  TagId container;  ///< kNoTag when uncontained (e.g. a pallet)

  friend bool operator==(const TruthInterval&,
                         const TruthInterval&) = default;
};

/// A containment change event in the ground truth: at epoch `time`, `tag`
/// moved from `from` to `to` (either may be kNoTag).
struct TruthChange {
  Epoch time = 0;
  TagId tag;
  TagId from;
  TagId to;

  friend bool operator==(const TruthChange&, const TruthChange&) = default;
};

/// Append-only recorder + queryable store of true per-tag state over time.
class GroundTruth {
 public:
  GroundTruth() = default;

  /// Records that `tag` has state (loc, container) from `time` onward, until
  /// the next Set for the same tag (or Finish). Calls for one tag must have
  /// non-decreasing time.
  void Set(TagId tag, Epoch time, LocationId loc, TagId container);

  /// Closes all open intervals at `end_epoch` (inclusive).
  void Finish(Epoch end_epoch);

  /// True location of `tag` at epoch `t`; kNoLocation if unknown/absent.
  LocationId LocationAt(TagId tag, Epoch t) const;

  /// True container of `tag` at epoch `t`; kNoTag if uncontained/absent.
  TagId ContainerAt(TagId tag, Epoch t) const;

  /// True if the tag exists in the tracked world at epoch t. Departed tags
  /// (removed from the world; no location and no container) are absent.
  bool PresentAt(TagId tag, Epoch t) const;

  /// All recorded containment changes, time-ordered. A change is recorded
  /// whenever consecutive intervals of a tag have different containers.
  const std::vector<TruthChange>& changes() const { return changes_; }

  /// All tags ever recorded.
  std::vector<TagId> Tags() const;

  /// Intervals of one tag (time-ordered); empty if never recorded.
  const std::vector<TruthInterval>& IntervalsOf(TagId tag) const;

 private:
  const TruthInterval* FindInterval(TagId tag, Epoch t) const;

  std::unordered_map<TagId, std::vector<TruthInterval>> intervals_;
  std::vector<TruthChange> changes_;
  bool finished_ = false;
};

}  // namespace rfid

#endif  // RFID_TRACE_GROUND_TRUTH_H_
