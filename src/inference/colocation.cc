#include "inference/colocation.h"

#include <algorithm>
#include <unordered_set>

namespace rfid {

namespace {

// Scans canonical-ordered (time, tag, reader) columns; within one
// (epoch, reader) run, pairs every object with every container. Offered a
// struct-of-arrays view when the trace materialized one (so the inner loop
// touches two contiguous same-typed columns) and an array-of-structs view
// otherwise; both orders are the canonical order, so the counts are
// identical.
template <typename ContainerPred, typename ObjectPred>
void CountColumns(const Epoch* time, const TagId* tag,
                  const LocationId* reader, size_t n, Epoch begin, Epoch end,
                  ContainerPred is_container, ObjectPred is_object,
                  bool exclusivity_weighted,
                  std::unordered_map<TagId, std::unordered_map<TagId, double>>*
                      counts) {
  size_t i = 0;
  std::vector<TagId> run_containers;
  std::vector<TagId> run_objects;
  // lint:hot-loop-begin(colocation-count)
  while (i < n) {
    const Epoch t = time[i];
    const LocationId rd = reader[i];
    size_t j = i;
    run_containers.clear();
    run_objects.clear();
    while (j < n && time[j] == t && reader[j] == rd) {
      if (t >= begin && t <= end) {
        // lint:allow(hot-loop-alloc): cleared-and-reused across runs;
        // capacity hits the largest burst early, then pushes stop
        // allocating. A reserve would need a burst-size pre-scan.
        if (is_container(tag[j])) run_containers.push_back(tag[j]);
        // lint:allow(hot-loop-alloc): same steady-state capacity.
        if (is_object(tag[j])) run_objects.push_back(tag[j]);
      }
      ++j;
    }
    if (!run_containers.empty()) {
      // Exclusivity weight: a burst shared by k containers contributes 1/k
      // per pair, so isolated (belt-style) co-location dominates crowded
      // (shelf-style) co-location.
      const double weight =
          exclusivity_weighted
              ? 1.0 / static_cast<double>(run_containers.size())
              : 1.0;
      for (TagId o : run_objects) {
        auto& per_object = (*counts)[o];
        for (TagId c : run_containers) per_object[c] += weight;
      }
    }
    i = j;
  }
  // lint:hot-loop-end
}

template <typename ContainerPred, typename ObjectPred>
void CountRuns(const Trace& trace, Epoch begin, Epoch end,
               ContainerPred is_container, ObjectPred is_object,
               bool exclusivity_weighted,
               std::unordered_map<TagId, std::unordered_map<TagId, double>>*
                   counts) {
  if (trace.has_columns()) {
    const ReadingColumnsView cols = trace.columns();
    CountColumns(cols.time, cols.tag, cols.reader, cols.size, begin, end,
                 is_container, is_object, exclusivity_weighted, counts);
    return;
  }
  const auto& rs = trace.readings();
  size_t i = 0;
  std::vector<TagId> run_containers;
  std::vector<TagId> run_objects;
  while (i < rs.size()) {
    const Epoch t = rs[i].time;
    const LocationId reader = rs[i].reader;
    size_t j = i;
    run_containers.clear();
    run_objects.clear();
    while (j < rs.size() && rs[j].time == t && rs[j].reader == reader) {
      if (t >= begin && t <= end) {
        if (is_container(rs[j].tag)) run_containers.push_back(rs[j].tag);
        if (is_object(rs[j].tag)) run_objects.push_back(rs[j].tag);
      }
      ++j;
    }
    if (!run_containers.empty()) {
      const double weight =
          exclusivity_weighted
              ? 1.0 / static_cast<double>(run_containers.size())
              : 1.0;
      for (TagId o : run_objects) {
        auto& per_object = (*counts)[o];
        for (TagId c : run_containers) per_object[c] += weight;
      }
    }
    i = j;
  }
}

}  // namespace

CoLocationCounter CoLocationCounter::FromTrace(const Trace& trace, Epoch begin,
                                               Epoch end,
                                               bool exclusivity_weighted) {
  CoLocationCounter counter;
  CountRuns(
      trace, begin, end, [](TagId t) { return t.is_case(); },
      [](TagId t) { return t.is_item(); }, exclusivity_weighted,
      &counter.counts_);
  return counter;
}

CoLocationCounter CoLocationCounter::FromTraceWithRoles(
    const Trace& trace, Epoch begin, Epoch end,
    const std::vector<TagId>& containers, const std::vector<TagId>& objects,
    bool exclusivity_weighted) {
  std::unordered_set<TagId> cset(containers.begin(), containers.end());
  std::unordered_set<TagId> oset(objects.begin(), objects.end());
  CoLocationCounter counter;
  CountRuns(
      trace, begin, end, [&](TagId t) { return cset.contains(t); },
      [&](TagId t) { return oset.contains(t); }, exclusivity_weighted,
      &counter.counts_);
  return counter;
}

CandidateSet CoLocationCounter::TopCandidates(TagId object, int k) const {
  CandidateSet out;
  auto it = counts_.find(object);
  if (it == counts_.end()) return out;
  std::vector<std::pair<TagId, double>> pairs(it->second.begin(),
                                              it->second.end());
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  if (k > 0 && static_cast<size_t>(k) < pairs.size()) {
    pairs.resize(static_cast<size_t>(k));
  }
  for (const auto& [tag, count] : pairs) {
    out.containers.push_back(tag);
    out.counts.push_back(count);
  }
  return out;
}

std::vector<TagId> CoLocationCounter::Objects() const {
  std::vector<TagId> objects;
  objects.reserve(counts_.size());
  for (const auto& [tag, unused] : counts_) objects.push_back(tag);
  std::sort(objects.begin(), objects.end());
  return objects;
}

double CoLocationCounter::CountOf(TagId object, TagId container) const {
  auto it = counts_.find(object);
  if (it == counts_.end()) return 0.0;
  auto jt = it->second.find(container);
  return jt == it->second.end() ? 0.0 : jt->second;
}

void CoLocationCounter::Merge(const CoLocationCounter& other) {
  for (const auto& [object, per_container] : other.counts_) {
    auto& mine = counts_[object];
    for (const auto& [container, count] : per_container) {
      mine[container] += count;
    }
  }
}

}  // namespace rfid
