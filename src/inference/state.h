// Serializable inference state for cross-site migration (Section 4.1).
//
// Two payload shapes, matching the paper's two techniques:
//  * full     -- the readings of the object and its candidate containers
//                inside the critical region and recent history ("one
//                solution is simply shipping the inference state");
//  * collapsed -- one number per (container, object) pair, the co-location
//                weight w_co ("we employ a technique to collapse the
//                inference state to a single number for each
//                container-object pair").
//
// The distributed experiments charge exactly these encoded bytes to the
// network, so the encoding is the compact varint wire format of serde.h.
#ifndef RFID_INFERENCE_STATE_H_
#define RFID_INFERENCE_STATE_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "inference/rfinfer.h"
#include "trace/reading.h"

namespace rfid {

/// Migration payload for one object.
struct ObjectMigrationState {
  TagId object;
  /// Collapsed weights (always present; tiny).
  std::vector<std::pair<TagId, double>> weights;
  /// Optional full readings (object + candidate containers, CR + recent).
  std::vector<RawReading> readings;
  /// Critical region and change barrier carried to the next site.
  std::optional<EpochInterval> critical_region;
  Epoch barrier = -1;
  /// The container believed current at departure.
  TagId container;
};

/// Encodes/decodes a batch of object states (one transfer's worth).
std::vector<uint8_t> EncodeMigrationStates(
    const std::vector<ObjectMigrationState>& states);
Result<std::vector<ObjectMigrationState>> DecodeMigrationStates(
    const std::vector<uint8_t>& bytes);
/// Span form: decodes in place from a slice of a larger envelope.
Result<std::vector<ObjectMigrationState>> DecodeMigrationStates(
    const uint8_t* data, size_t size);

}  // namespace rfid

#endif  // RFID_INFERENCE_STATE_H_
