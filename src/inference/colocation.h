// Co-location counting: the bootstrap signal for containment inference.
//
// Section 3: "First, we start with the best available information about
// object locations and have a guess about containment relationships based on
// co-location." Appendix A.3 (candidate pruning): "we restrict the set of
// candidate containers to those that were most frequently co-located during
// the first several epochs ... we also include as candidates the most
// frequently co-located containers from recent epochs."
//
// Two tags are counted as co-located at epoch t when the same reader
// returned both of them during t.
#ifndef RFID_INFERENCE_COLOCATION_H_
#define RFID_INFERENCE_COLOCATION_H_

#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "trace/trace.h"

namespace rfid {

/// Per-object candidate containers ordered by decreasing co-location score.
struct CandidateSet {
  std::vector<TagId> containers;
  std::vector<double> counts;  ///< aligned with `containers`
};

/// Counts (object, container) co-locations in `trace` restricted to epochs
/// [begin, end].
///
/// Scores are *exclusivity-weighted*: a co-occurrence within one
/// (epoch, reader) burst adds 1/k when k containers appear in the burst.
/// Being read alone with a container at the belt is near-certain evidence
/// of containment; being read alongside 15 containers on a crowded shelf
/// says little. Weighting keeps the EM's initial guess from locking onto a
/// same-shelf confounder whose raw co-occurrence count rivals the true
/// container's.
class CoLocationCounter {
 public:
  /// Counts pairs where an item-kind tag and a case-kind tag were read by
  /// the same reader in the same epoch. `exclusivity_weighted` selects the
  /// 1/k weighting; false gives the paper's plain co-occurrence counts.
  static CoLocationCounter FromTrace(const Trace& trace, Epoch begin,
                                     Epoch end,
                                     bool exclusivity_weighted = true);

  /// As above with explicit roles: `containers` and `objects` are disjoint
  /// tag sets; other tags in the trace are ignored.
  static CoLocationCounter FromTraceWithRoles(
      const Trace& trace, Epoch begin, Epoch end,
      const std::vector<TagId>& containers, const std::vector<TagId>& objects,
      bool exclusivity_weighted = true);

  /// Top-k candidate containers for `object` (k <= 0 means all).
  CandidateSet TopCandidates(TagId object, int k) const;

  /// All objects with at least one co-location.
  std::vector<TagId> Objects() const;

  /// Weighted score for a pair (0 when never co-located).
  double CountOf(TagId object, TagId container) const;

  /// Merges counts from another counter (e.g. recent-epoch counts) in place.
  void Merge(const CoLocationCounter& other);

 private:
  // object -> (container -> weighted score)
  std::unordered_map<TagId, std::unordered_map<TagId, double>> counts_;
};

}  // namespace rfid

#endif  // RFID_INFERENCE_COLOCATION_H_
