// RFINFER: maximum-likelihood inference of containment relationships and
// object/container locations from noisy RFID readings (Section 3,
// Algorithm 1), with the Appendix A.3 optimizations:
//
//  * sparse histories     -- only (epoch, reader) pairs that produced a
//                            reading are stored or touched;
//  * candidate pruning    -- each object considers only the containers most
//                            frequently co-located with it during the first
//                            epochs of the window and during recent epochs;
//  * idle-epoch folding   -- epochs in which neither a container nor any of
//                            its assigned objects was read all share the
//                            same posterior (per interrogation-schedule
//                            class), so their contribution to weights and
//                            likelihood is a closed-form per-class constant;
//  * memoization          -- a container whose assigned object set did not
//                            change between EM iterations keeps its
//                            posterior and evidence untouched.
//
// The same engine exposes the evidence quantities of Section 4.1 (point and
// cumulative evidence of co-location, Eq 7), the change-point statistic
// Delta_o(T) of Section 3.3 (Eq 6), and the critical-region search used for
// history truncation.
#ifndef RFID_INFERENCE_RFINFER_H_
#define RFID_INFERENCE_RFINFER_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "model/read_rate.h"
#include "model/schedule.h"
#include "trace/reading.h"
#include "trace/trace.h"

namespace rfid {

/// Inclusive epoch interval.
struct EpochInterval {
  Epoch begin = 0;
  Epoch end = -1;  ///< end < begin denotes the empty interval

  bool empty() const { return end < begin; }
  int64_t length() const { return empty() ? 0 : end - begin + 1; }
  bool Contains(Epoch t) const { return t >= begin && t <= end; }

  friend bool operator==(const EpochInterval&, const EpochInterval&) = default;
};

/// Tuning knobs for the EM engine.
struct InferenceOptions {
  /// EM iteration cap; the algorithm usually converges in a few iterations
  /// (Appendix A.1).
  int max_iterations = 25;
  /// Candidate pruning K: containers kept per object (Appendix A.3).
  int max_candidates = 5;
  /// Length of the initial-epochs span used for candidate counting.
  Epoch candidate_init_window = 200;
  /// Length of the recent-epochs span used for candidate counting (change
  /// detection needs candidates that appeared only recently).
  Epoch candidate_recent_window = 300;
  /// Reuse posterior/evidence for containers whose object set is unchanged.
  bool memoize = true;
  /// Weight the co-location counts behind the EM's initial guess by
  /// exclusivity (1/k per k-container read burst). The paper's plain counts
  /// (false) let crowded-shelf co-occurrence rival the true container and
  /// occasionally lock whole groups into the wrong local optimum; weighting
  /// removes that failure mode (see EXPERIMENTS.md ablation).
  bool exclusivity_weighted_init = true;
};

/// One detected containment change (Section 3.3).
struct ChangePointResult {
  TagId object;
  Epoch time = 0;             ///< the maximizing split epoch t'
  TagId old_container;        ///< best container before the change
  TagId new_container;        ///< best container after the change
  double delta = 0.0;         ///< the statistic Delta_o(T)
};

/// One point of the co-location evidence series for a (object, candidate)
/// pair -- the quantities plotted in Figure 4.
struct EvidencePoint {
  Epoch time = 0;
  double point = 0.0;       ///< e_co(t), Eq (7)
  double cumulative = 0.0;  ///< E_co(t) = sum of e up to t
};

/// Result of the critical-region search for one object (Section 4.1).
struct CriticalRegion {
  EpochInterval window;
  double gap = 0.0;  ///< best-vs-second-best evidence gap in the window
};

/// Per-object context carried across inference runs: a critical region kept
/// from truncated history, a barrier epoch after a detected change point
/// ("we disregard the data from 0..t' in all subsequent calls"), and
/// collapsed prior weights imported from a previous site (Section 4.1).
struct ObjectContext {
  std::optional<EpochInterval> critical_region;
  /// Evidence gap of the stored critical region (0 when unknown, e.g.
  /// after migration); used for cross-run replacement hysteresis.
  double critical_region_gap = 0.0;
  Epoch barrier = -1;
  std::vector<std::pair<TagId, double>> prior_weights;
};

/// The inference engine. One instance is configured with a read-rate model
/// and interrogation schedule, then Run() any number of times over trace
/// windows; results refer to the most recent run.
class RFInfer {
 public:
  /// `model` and `schedule` must outlive the engine and agree on the number
  /// of locations.
  RFInfer(const ReadRateModel* model, const InterrogationSchedule* schedule,
          InferenceOptions options = {});

  /// Restricts the tag universe explicitly. By default every case-kind tag
  /// in the trace is a container and every item-kind tag an object; an
  /// explicit universe supports e.g. hierarchical inference (cases within
  /// pallets, Appendix A.4).
  void SetUniverse(std::vector<TagId> containers, std::vector<TagId> objects);

  /// Installs per-object contexts (critical regions, barriers, collapsed
  /// priors). Cleared by ClearObjectContexts, not by Run.
  void SetObjectContext(TagId object, ObjectContext context);
  void ClearObjectContexts();

  /// Runs EM over readings of `trace` with epochs in [window_begin,
  /// window_end], plus each object's critical region if one is installed.
  /// The trace must be sealed.
  Status Run(const Trace& trace, Epoch window_begin, Epoch window_end);

  // ---- Containment results ----

  /// Inferred container of `object` (kNoTag when it has no candidates).
  TagId ContainerOf(TagId object) const;

  /// All objects currently assigned to `container`.
  std::vector<TagId> ObjectsOf(TagId container) const;

  /// Candidate containers of `object` after pruning.
  std::vector<TagId> CandidatesOf(TagId object) const;

  /// Co-location weight w_co (Eq 5) including any imported prior; returns
  /// -infinity when `container` is not a candidate of `object`.
  double WeightOf(TagId object, TagId container) const;

  /// Exports all candidate weights for one object -- the collapsed
  /// inference state migrated between sites (Section 4.1).
  std::vector<std::pair<TagId, double>> ExportWeights(TagId object) const;

  /// One object's containment result, as persisted by a durable checkpoint
  /// (dist/durability.h): the pruned candidate weights of the last run and
  /// the resulting assignment (kNoTag when unassigned).
  struct RestoredObjectResult {
    TagId tag;
    std::vector<std::pair<TagId, double>> weights;
    TagId assigned = kNoTag;
  };

  /// Reinstates the containment results of a previous run from a durable
  /// checkpoint. Only the containment accessors (ContainerOf / ObjectsOf /
  /// CandidatesOf / WeightOf / ExportWeights) and the tag universe reflect
  /// the restored state; location estimates, evidence series, and EM
  /// internals are rebuilt from scratch by the next Run, exactly as they
  /// are after a live run's results have aged past its window.
  void RestoreResults(std::vector<TagId> container_tags,
                      const std::vector<RestoredObjectResult>& objects);

  /// Tag universe of the last run.
  const std::vector<TagId>& object_tags() const { return object_tags_; }
  const std::vector<TagId>& container_tags() const { return container_tags_; }

  // ---- Location results ----

  /// MAP location estimate at epoch `t` with carry-forward across epochs
  /// without evidence: containers use their posterior argmax at the latest
  /// active epoch <= t; objects inherit their container's estimate, falling
  /// back to their own last reading when unassigned.
  LocationId LocationOf(TagId tag, Epoch t) const;

  /// Materializes the inferred event stream (time, tag, location,
  /// container) for query processing, one event per container-active epoch
  /// within the run window, for the container and each assigned object.
  std::vector<ObjectEvent> EmitEvents() const;

  // ---- Evidence, change points, truncation ----

  /// Point/cumulative evidence series for a candidate pair (Figure 4).
  /// Series points are emitted at the object's event epochs (epochs where
  /// the pair's group had any reading); idle gaps accumulate into the
  /// cumulative value of the next point.
  std::vector<EvidencePoint> EvidenceSeries(TagId object,
                                            TagId container) const;

  /// Computes Delta_o(T) for every object (Eq 6) and reports those at or
  /// above `threshold`. The maximizing split epoch, the best container
  /// before and after it, and the statistic value are filled in.
  std::vector<ChangePointResult> DetectChangePoints(double threshold) const;

  /// Delta statistic for one object (for calibration); 0 when the object
  /// has fewer than one candidate or no events.
  double ChangeStatistic(TagId object) const;

  /// Critical-region search (Section 4.1): slides a window of `window`
  /// epochs over each object's evidence and keeps the most recent window
  /// where the best candidate out-scores the second best by at least
  /// `gap_threshold`. Objects with a single candidate use the window of
  /// their strongest point evidence.
  std::unordered_map<TagId, CriticalRegion> FindCriticalRegions(
      Epoch window, double gap_threshold) const;

  // ---- Diagnostics ----

  int iterations_used() const { return iterations_used_; }
  /// Log-likelihood L(C) of the final containment (Eq 3), up to the
  /// assignment-independent uniform-location-prior constant.
  double log_likelihood() const { return log_likelihood_; }
  /// L(C) after each E-step; non-decreasing by Theorem 1.
  const std::vector<double>& likelihood_history() const {
    return likelihood_history_;
  }
  EpochInterval window() const { return window_; }

 private:
  struct ContainerData {
    TagId tag;
    std::vector<int> objects;  ///< assigned object indices, sorted
    /// Epoch universe: run window plus candidate objects' critical regions.
    std::vector<EpochInterval> universe;
    /// (epoch, reader) reads of the container tag itself, within universe.
    std::vector<TagRead> own_reads;

    // E-step outputs.
    std::vector<Epoch> act_epochs;
    std::vector<double> q_act;        ///< |act| x R, row-major
    std::vector<LocationId> act_map;  ///< argmax location per active epoch
    std::vector<double> act_m;        ///< m_c(t) per active epoch
    /// Prefix sums of (act_m[i] - m_idle[class(act_epochs[i])]).
    std::vector<double> act_excess_prefix;
    std::vector<double> q_idle;  ///< n_classes x R
    std::vector<double> m_idle;  ///< n_classes
    std::vector<double> lz_idle; ///< n_classes; idle per-epoch log-likelihood
    double sum_act_lz = 0.0;
    uint64_t member_hash = 0;
    bool computed = false;
  };

  struct ObjectData {
    TagId tag;
    std::vector<int> candidates;  ///< container indices
    std::vector<double> weights;  ///< w_co, aligned with candidates
    std::vector<double> priors;   ///< imported collapsed weights, aligned
    std::vector<TagRead> reads;   ///< object reads within its universe
    std::vector<EpochInterval> universe;
    int assigned = -1;
  };

  // Setup.
  void BuildUniverse(const Trace& trace);
  void BuildCandidates(const Trace& trace);
  void BuildReadCaches(const Trace& trace);

  // EM steps.
  void EStep();
  void ComputeContainer(ContainerData& c);
  bool MStep();  ///< returns true if any assignment changed
  double ComputeWeight(const ObjectData& o, int container_index) const;
  double ComputeLogLikelihood() const;

  // Shared kernels.
  /// Sum of m_c over all epochs of `interval` (active + idle).
  double SumM(const ContainerData& c, const EpochInterval& interval) const;
  /// Posterior row of container c at epoch t (active row or idle class row).
  const double* PosteriorAt(const ContainerData& c, Epoch t) const;
  /// sum_a q(a) * LogReadAdjust(r, a).
  double DotAdjust(const double* q, LocationId r) const;

  /// Per-object detailed evidence scan; shared by EvidenceSeries,
  /// change-point detection, and the critical-region search.
  struct ScanResult {
    std::vector<Epoch> events;
    /// point[k*num_candidates + j]: e_co at events[k] for candidate j.
    std::vector<double> point;
    /// cum[k*num_candidates + j]: E_co including idle gaps up to events[k].
    std::vector<double> cum;
    /// total[j]: E_co over the full universe (== weight - prior).
    std::vector<double> total;
  };
  ScanResult ScanObject(const ObjectData& o) const;

  std::optional<ChangePointResult> ChangePointFor(const ObjectData& o,
                                                  double threshold) const;

  int ObjectIndexOf(TagId tag) const;
  int ContainerIndexOf(TagId tag) const;

  const ReadRateModel* model_;
  const InterrogationSchedule* schedule_;
  InferenceOptions options_;

  bool explicit_universe_ = false;
  std::vector<TagId> container_tags_;
  std::vector<TagId> object_tags_;
  std::unordered_map<TagId, ObjectContext> contexts_;

  const Trace* trace_ = nullptr;
  EpochInterval window_;
  std::vector<ContainerData> containers_;
  std::vector<ObjectData> objects_;
  std::unordered_map<TagId, int> container_index_;
  std::unordered_map<TagId, int> object_index_;
  int iterations_used_ = 0;
  double log_likelihood_ = 0.0;
  std::vector<double> likelihood_history_;
};

}  // namespace rfid

#endif  // RFID_INFERENCE_RFINFER_H_
