// Streaming inference driver: runs RFINFER periodically over an arriving
// RFID stream (the paper runs inference every 300 seconds by default,
// Section 5.1), applying one of the three history-management policies the
// evaluation compares:
//
//   kAll            -- use the entire history (the "Basic"/"All" lines);
//   kWindow         -- keep only the most recent W epochs ("W1200");
//   kCriticalRegion -- per-object critical regions plus a recent history
//                      H-bar (the paper's CR method, Section 4.1).
//
// The driver also owns the cross-run bookkeeping: detected change points
// install per-object barriers ("we disregard the data from 0..t' in all
// subsequent calls", Appendix A.2), critical regions persist across runs,
// and collapsed weights imported from other sites enter as priors.
#ifndef RFID_INFERENCE_STREAMING_H_
#define RFID_INFERENCE_STREAMING_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "common/types.h"
#include "inference/rfinfer.h"
#include "model/read_rate.h"
#include "model/schedule.h"
#include "trace/reading.h"
#include "trace/trace.h"

namespace rfid {

enum class TruncationMethod {
  kAll,
  kWindow,
  kCriticalRegion,
};

struct StreamingOptions {
  /// Seconds between inference runs (paper default: 300).
  Epoch inference_period = 300;
  TruncationMethod truncation = TruncationMethod::kCriticalRegion;
  /// Window size W for TruncationMethod::kWindow (paper: 1200).
  Epoch window_size = 1200;
  /// Recent history H-bar for kCriticalRegion (paper default: 600).
  Epoch recent_history = 600;
  /// Sliding-window length w of the critical-region search. Long enough to
  /// cover an object's whole pass through a discriminative reader (door
  /// dwell + belt transit).
  Epoch cr_window = 60;
  /// Evidence-gap threshold of the critical-region search (heuristic). Must
  /// sit above co-location evidence noise (a few log-units per window) yet
  /// below the gap a belt-style isolated scan produces even at low read
  /// rates (a 5-epoch belt pass at RR 0.6 yields a gap around 35-40).
  double cr_gap_threshold = 25.0;
  /// Run change-point detection after each inference run.
  bool detect_changes = false;
  /// Detection threshold delta; calibrate offline (calibration.h).
  double change_threshold = 25.0;
  /// Build the per-tag history index in a bump arena rewound every run
  /// (zero steady-state heap traffic). Results are bit-identical with the
  /// flag off; off exists for the determinism matrix and for debugging.
  bool arena_index = true;
  /// Materialize struct-of-arrays reading columns at Seal time so the
  /// inner inference scans run over contiguous columns. Bit-identical off.
  bool soa_columns = true;
  InferenceOptions inference;
};

/// Drives RFINFER over a stream. Typical use:
///
///   StreamingInference si(&model, &schedule, opts);
///   for each reading r: si.Observe(r);
///   ... once per epoch: si.AdvanceTo(t);   // runs inference when due
///   si.ContainerOf(tag), si.engine().LocationOf(tag, t), ...
class StreamingInference {
 public:
  StreamingInference(const ReadRateModel* model,
                     const InterrogationSchedule* schedule,
                     StreamingOptions options = {});

  /// Optional explicit container/object universe (see RFInfer::SetUniverse).
  void SetUniverse(std::vector<TagId> containers, std::vector<TagId> objects);

  /// Derives the universe per run from the buffered trace instead: every
  /// buffered tag of `container_kind` is a container and every tag of
  /// `object_kind` an object, passed to RFInfer::SetUniverse before each
  /// run. This is the hierarchical-inference hook (Appendix A.4): the
  /// case→pallet level runs with (kPallet, kCase) over the same stream the
  /// item→case level consumes with the default (kCase, kItem) roles.
  /// Mutually exclusive with an explicit SetUniverse.
  void SetUniverseKinds(TagKind container_kind, TagKind object_kind);

  /// Buffers one reading. Readings may arrive in any order within the
  /// current inference period.
  void Observe(const RawReading& reading);

  /// Buffers `n` readings in one append. Results are identical to n
  /// Observe calls: the history buffer is canonically re-sorted before
  /// every inference run, so ingest order never matters.
  void ObserveBatch(const RawReading* readings, size_t n);

  /// Buffers a struct-of-arrays batch (same contract as ObserveBatch).
  void ObserveBatch(const ReadingColumnsView& view);

  /// Advances stream time; runs inference whenever a period boundary is
  /// crossed. Returns the number of inference runs performed.
  int AdvanceTo(Epoch now);

  /// Forces an inference run over history up to `now`.
  Status RunNow(Epoch now);

  // ---- Results (valid after the first run) ----

  /// Current containment belief: the last run's assignment, overridden by
  /// any detected change point's post-change container.
  TagId ContainerOf(TagId object) const;

  /// Location estimate at epoch `t`, drawing on the accumulated per-run
  /// tracks (each run only covers its own window; the track preserves the
  /// monitoring system's historical view). Falls back to the container's
  /// track for objects.
  LocationId LocationOf(TagId tag, Epoch t) const;

  const RFInfer& engine() const { return *engine_; }

  /// Change points detected by the most recent run / across all runs.
  const std::vector<ChangePointResult>& last_changes() const {
    return last_changes_;
  }
  const std::vector<ChangePointResult>& all_changes() const {
    return all_changes_;
  }

  /// Wall-clock seconds spent inside inference (Appendix C "running cost").
  double total_inference_seconds() const { return total_seconds_; }
  double last_inference_seconds() const { return last_seconds_; }
  int runs() const { return runs_; }

  /// Number of readings currently retained in the history buffer -- the
  /// memory footprint the truncation methods bound.
  size_t buffered_readings() const { return buffer_.size(); }

  // ---- State migration hooks (Section 4.1) ----

  /// Installs imported collapsed weights (and optional critical region /
  /// barrier) for an object arriving from another site.
  void ImportObjectContext(TagId object, ObjectContext context);

  /// Installs the sending site's current belief so queries can be answered
  /// *before* the first local inference run covers the object ("querying
  /// instantly when a tag is in sight, with minimum delay", Section 4). A
  /// local run that assigns the object supersedes it.
  void SetImportedBelief(TagId object, TagId container);

  /// Exports the object's context: its critical region, barrier, and
  /// current collapsed weights.
  ObjectContext ExportObjectContext(TagId object) const;

  /// Readings retained for `tags` within the union of the object's critical
  /// region and the recent history -- the "full" (non-collapsed) migration
  /// payload for one object.
  std::vector<RawReading> ExportReadings(const std::vector<TagId>& tags,
                                         TagId object);

  // ---- Durable checkpoints (dist/durability.h) ----

  /// Serializes the complete cross-run state at full precision: the
  /// retained history buffer, per-object contexts (including the critical
  /// region gap the migration envelope drops), change overrides, imported
  /// beliefs, change-point history, location tracks, the run cursor, and
  /// the engine's last-run containment results. Unordered maps are encoded
  /// in sorted key order so identical state yields identical bytes. Seals
  /// the buffer if needed (canonical re-sort; observably idempotent).
  void EncodeSnapshot(BufferWriter* w);

  /// Restores state written by EncodeSnapshot into a freshly constructed
  /// driver (same model/schedule/options). Fails without partial effects
  /// on malformed input only insofar as the caller discards the driver;
  /// never trust a driver whose restore returned an error.
  Status RestoreSnapshot(BufferReader* r);

 private:
  void CompactBuffer(Epoch next_window_begin);

  const ReadRateModel* model_;
  const InterrogationSchedule* schedule_;
  StreamingOptions options_;
  std::unique_ptr<RFInfer> engine_;

  // Declared before buffer_: the buffer's index points into the arena, so
  // the arena must be the longer-lived of the two.
  Arena window_arena_;
  Trace buffer_;
  Epoch next_run_ = 0;
  Epoch last_run_at_ = -1;
  bool has_universe_ = false;
  std::vector<TagId> universe_containers_;
  std::vector<TagId> universe_objects_;
  bool has_universe_kinds_ = false;
  TagKind universe_container_kind_ = TagKind::kCase;
  TagKind universe_object_kind_ = TagKind::kItem;

  std::unordered_map<TagId, ObjectContext> contexts_;
  std::unordered_map<TagId, std::vector<TagRead>> location_track_;
  std::unordered_map<TagId, TagId> change_overrides_;
  std::unordered_map<TagId, TagId> imported_beliefs_;
  std::vector<ChangePointResult> last_changes_;
  std::vector<ChangePointResult> all_changes_;
  double total_seconds_ = 0.0;
  double last_seconds_ = 0.0;
  int runs_ = 0;
};

}  // namespace rfid

#endif  // RFID_INFERENCE_STREAMING_H_
