#include "inference/calibration.h"

#include <algorithm>

#include "inference/rfinfer.h"
#include "model/generative.h"
#include "trace/trace.h"

namespace rfid {

double CalibrateChangeThreshold(const ReadRateModel& model,
                                const InterrogationSchedule& schedule,
                                const CalibrationConfig& config, Rng& rng) {
  double max_delta = 0.0;
  uint64_t next_serial = 1u << 20;  // calibration-only tag serials
  for (int sample = 0; sample < config.num_samples; ++sample) {
    Trace trace;
    std::vector<TagId> containers;
    std::vector<TagId> objects;
    // Containers are sampled in co-located pairs: a false candidate sharing
    // the true container's path is the worst case for false positives, and
    // the threshold must cover it (shelf mates in a warehouse are exactly
    // this configuration).
    std::vector<LocationId> shared_path;
    for (int c = 0; c < config.num_containers; ++c) {
      GenerativeScenario scenario;
      scenario.container = TagId::Case(next_serial++);
      containers.push_back(scenario.container);
      for (int o = 0; o < config.objects_per_container; ++o) {
        TagId obj = TagId::Item(next_serial++);
        scenario.objects.push_back(obj);
        objects.push_back(obj);
      }
      if (c % 2 == 0 || shared_path.empty()) {
        shared_path = RandomLocationPath(model.num_locations(),
                                         config.horizon, config.move_prob,
                                         rng);
      }
      scenario.location_path = shared_path;
      // Respect the interrogation schedule: a reader that is not scanning
      // cannot produce a reading.
      const Epoch horizon =
          static_cast<Epoch>(scenario.location_path.size());
      for (Epoch t = 0; t < horizon; ++t) {
        const LocationId truth =
            scenario.location_path[static_cast<size_t>(t)];
        if (truth == kNoLocation) continue;
        for (LocationId r = 0; r < model.num_locations(); ++r) {
          if (!schedule.ActiveAt(r, t)) continue;
          const double p = model.Rate(r, truth);
          if (rng.NextBernoulli(p)) {
            trace.Add(RawReading{t, scenario.container, r});
          }
          for (TagId obj : scenario.objects) {
            if (rng.NextBernoulli(p)) {
              trace.Add(RawReading{t, obj, r});
            }
          }
        }
      }
    }
    trace.Seal();
    if (trace.empty()) continue;
    RFInfer engine(&model, &schedule);
    engine.SetUniverse(containers, objects);
    if (!engine.Run(trace, 0, config.horizon - 1).ok()) continue;
    for (TagId obj : objects) {
      max_delta = std::max(max_delta, engine.ChangeStatistic(obj));
    }
  }
  return max_delta * config.margin;
}

}  // namespace rfid
