#include "inference/rfinfer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/log_space.h"
#include "inference/colocation.h"

namespace rfid {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Sorts by begin and merges overlapping or adjacent intervals.
std::vector<EpochInterval> NormalizeIntervals(
    std::vector<EpochInterval> intervals) {
  std::vector<EpochInterval> kept;
  for (const EpochInterval& iv : intervals) {
    if (!iv.empty()) kept.push_back(iv);
  }
  std::sort(kept.begin(), kept.end(),
            [](const EpochInterval& a, const EpochInterval& b) {
              return a.begin < b.begin;
            });
  std::vector<EpochInterval> out;
  for (const EpochInterval& iv : kept) {
    if (!out.empty() && iv.begin <= out.back().end + 1) {
      out.back().end = std::max(out.back().end, iv.end);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

bool InIntervals(const std::vector<EpochInterval>& ivs, Epoch t) {
  for (const EpochInterval& iv : ivs) {
    if (t < iv.begin) return false;
    if (t <= iv.end) return true;
  }
  return false;
}

/// Intersects interval set with [from, +inf).
std::vector<EpochInterval> ClipFrom(std::vector<EpochInterval> ivs,
                                    Epoch from) {
  std::vector<EpochInterval> out;
  for (EpochInterval iv : ivs) {
    if (iv.end < from) continue;
    iv.begin = std::max(iv.begin, from);
    out.push_back(iv);
  }
  return out;
}

uint64_t HashIndices(const std::vector<int>& xs) {
  uint64_t h = 1469598103934665603ULL;
  for (int x : xs) {
    h ^= static_cast<uint64_t>(x) + 0x9e3779b97f4a7c15ULL;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

RFInfer::RFInfer(const ReadRateModel* model,
                 const InterrogationSchedule* schedule,
                 InferenceOptions options)
    : model_(model), schedule_(schedule), options_(options) {
  assert(model_->num_locations() == schedule_->num_locations());
}

void RFInfer::SetUniverse(std::vector<TagId> containers,
                          std::vector<TagId> objects) {
  explicit_universe_ = true;
  container_tags_ = std::move(containers);
  object_tags_ = std::move(objects);
  std::sort(container_tags_.begin(), container_tags_.end());
  std::sort(object_tags_.begin(), object_tags_.end());
}

void RFInfer::SetObjectContext(TagId object, ObjectContext context) {
  contexts_[object] = std::move(context);
}

void RFInfer::ClearObjectContexts() { contexts_.clear(); }

int RFInfer::ObjectIndexOf(TagId tag) const {
  auto it = object_index_.find(tag);
  return it == object_index_.end() ? -1 : it->second;
}

int RFInfer::ContainerIndexOf(TagId tag) const {
  auto it = container_index_.find(tag);
  return it == container_index_.end() ? -1 : it->second;
}

void RFInfer::BuildUniverse(const Trace& trace) {
  if (!explicit_universe_) {
    container_tags_.clear();
    object_tags_.clear();
    for (TagId tag : trace.Tags()) {
      if (tag.is_case()) container_tags_.push_back(tag);
      if (tag.is_item()) object_tags_.push_back(tag);
    }
  }
  containers_.clear();
  objects_.clear();
  container_index_.clear();
  object_index_.clear();
  containers_.resize(container_tags_.size());
  objects_.resize(object_tags_.size());
  for (size_t i = 0; i < container_tags_.size(); ++i) {
    containers_[i].tag = container_tags_[i];
    container_index_[container_tags_[i]] = static_cast<int>(i);
  }
  for (size_t i = 0; i < object_tags_.size(); ++i) {
    objects_[i].tag = object_tags_[i];
    object_index_[object_tags_[i]] = static_cast<int>(i);
  }

  // Per-object universe: the run window (clipped at the object's barrier)
  // plus the object's critical region.
  for (ObjectData& o : objects_) {
    Epoch barrier = -1;
    std::optional<EpochInterval> cr;
    auto it = contexts_.find(o.tag);
    if (it != contexts_.end()) {
      barrier = it->second.barrier;
      cr = it->second.critical_region;
    }
    std::vector<EpochInterval> ivs;
    ivs.push_back(window_);
    if (cr.has_value()) ivs.push_back(*cr);
    o.universe = ClipFrom(NormalizeIntervals(std::move(ivs)),
                          std::max<Epoch>(barrier, 0));
    // Epochs before the object's first reading carry no information about
    // its containment -- the tag did not exist in the reader field yet, and
    // counting "missed" interrogations from that era would bias weights
    // toward whichever candidate's idle posterior happens to be flatter.
    const auto& history = trace.HistoryOf(o.tag);
    if (history.empty()) {
      o.universe.clear();
    } else {
      o.universe = ClipFrom(std::move(o.universe), history.front().time);
    }
  }
}

void RFInfer::BuildCandidates(const Trace& trace) {
  // Candidate pruning (Appendix A.3): most co-located containers during the
  // first epochs, during recent epochs, and overall.
  const Epoch init_end =
      std::min(window_.end, window_.begin + options_.candidate_init_window);
  const Epoch recent_begin =
      std::max(window_.begin, window_.end - options_.candidate_recent_window);

  // Span count over everything available (window plus any critical region):
  // readings outside the caller-retained history are not in the trace.
  Epoch span_begin = window_.begin;
  for (const ObjectData& o : objects_) {
    for (const EpochInterval& iv : o.universe) {
      span_begin = std::min(span_begin, iv.begin);
    }
  }

  CoLocationCounter full;
  CoLocationCounter init;
  CoLocationCounter recent;
  const bool weighted = options_.exclusivity_weighted_init;
  if (explicit_universe_) {
    full = CoLocationCounter::FromTraceWithRoles(
        trace, span_begin, window_.end, container_tags_, object_tags_,
        weighted);
    init = CoLocationCounter::FromTraceWithRoles(
        trace, window_.begin, init_end, container_tags_, object_tags_,
        weighted);
    recent = CoLocationCounter::FromTraceWithRoles(
        trace, recent_begin, window_.end, container_tags_, object_tags_,
        weighted);
  } else {
    full = CoLocationCounter::FromTrace(trace, span_begin, window_.end,
                                        weighted);
    init = CoLocationCounter::FromTrace(trace, window_.begin, init_end,
                                        weighted);
    recent = CoLocationCounter::FromTrace(trace, recent_begin, window_.end,
                                          weighted);
  }

  const int k = options_.max_candidates;
  for (ObjectData& o : objects_) {
    std::vector<TagId> cand_tags;
    auto add_from = [&](const CandidateSet& set) {
      for (TagId c : set.containers) {
        if (std::find(cand_tags.begin(), cand_tags.end(), c) ==
            cand_tags.end()) {
          cand_tags.push_back(c);
        }
      }
    };
    add_from(full.TopCandidates(o.tag, k));
    add_from(init.TopCandidates(o.tag, k));
    add_from(recent.TopCandidates(o.tag, k));
    // Imported collapsed priors name containers that must stay candidates.
    auto ctx = contexts_.find(o.tag);
    if (ctx != contexts_.end()) {
      for (const auto& [ctag, unused] : ctx->second.prior_weights) {
        if (ContainerIndexOf(ctag) >= 0 &&
            std::find(cand_tags.begin(), cand_tags.end(), ctag) ==
                cand_tags.end()) {
          cand_tags.push_back(ctag);
        }
      }
    }
    o.candidates.clear();
    o.priors.clear();
    bool has_prior = false;
    for (TagId ctag : cand_tags) {
      int ci = ContainerIndexOf(ctag);
      if (ci < 0) continue;
      o.candidates.push_back(ci);
      double prior = 0.0;
      if (ctx != contexts_.end()) {
        for (const auto& [ptag, w] : ctx->second.prior_weights) {
          if (ptag == ctag) {
            prior = w;
            has_prior = true;
          }
        }
      }
      o.priors.push_back(prior);
    }
    if (has_prior) {
      // Transferred weights are relative log-evidence; a candidate absent
      // from the transferred list was *less* co-located over the old
      // period than every retained candidate, not neutrally so. Give the
      // absent ones a below-minimum prior, otherwise their implicit zero
      // out-bids the genuinely endorsed (large-negative) candidates.
      double min_prior = 0.0;
      bool first = true;
      for (size_t j = 0; j < o.priors.size(); ++j) {
        if (o.priors[j] == 0.0) continue;
        if (first || o.priors[j] < min_prior) min_prior = o.priors[j];
        first = false;
      }
      constexpr double kAbsentMargin = 20.0;
      for (size_t j = 0; j < o.priors.size(); ++j) {
        if (o.priors[j] == 0.0) o.priors[j] = min_prior - kAbsentMargin;
      }
    }
    o.weights.assign(o.candidates.size(), kNegInf);
    // Initial guess: the imported prior winner if present, else the most
    // co-located candidate (candidates are ordered by overall count first).
    o.assigned = o.candidates.empty() ? -1 : 0;
    if (ctx != contexts_.end() && !ctx->second.prior_weights.empty()) {
      double best = kNegInf;
      for (size_t j = 0; j < o.candidates.size(); ++j) {
        if (o.priors[j] != 0.0 && o.priors[j] > best) {
          best = o.priors[j];
          o.assigned = static_cast<int>(j);
        }
      }
    }
  }

  // Container universes: the window plus the critical regions of every
  // object that lists the container as a candidate.
  for (ContainerData& c : containers_) {
    c.universe.assign(1, window_);
  }
  for (const ObjectData& o : objects_) {
    for (const EpochInterval& iv : o.universe) {
      for (int ci : o.candidates) {
        containers_[static_cast<size_t>(ci)].universe.push_back(iv);
      }
    }
  }
  for (ContainerData& c : containers_) {
    c.universe = NormalizeIntervals(std::move(c.universe));
    c.computed = false;
    c.member_hash = 0;
    c.objects.clear();
  }
  // Install the initial assignment into the containers.
  for (size_t oi = 0; oi < objects_.size(); ++oi) {
    const ObjectData& o = objects_[oi];
    if (o.assigned >= 0) {
      containers_[static_cast<size_t>(o.candidates[static_cast<size_t>(
                      o.assigned)])]
          .objects.push_back(static_cast<int>(oi));
    }
  }
}

void RFInfer::BuildReadCaches(const Trace& trace) {
  for (ObjectData& o : objects_) {
    o.reads.clear();
    for (const TagRead& tr : trace.HistoryOf(o.tag)) {
      if (InIntervals(o.universe, tr.time)) o.reads.push_back(tr);
    }
  }
  for (ContainerData& c : containers_) {
    c.own_reads.clear();
    for (const TagRead& tr : trace.HistoryOf(c.tag)) {
      if (InIntervals(c.universe, tr.time)) c.own_reads.push_back(tr);
    }
  }
}

void RFInfer::ComputeContainer(ContainerData& c) {
  const uint64_t hash = HashIndices(c.objects);
  if (options_.memoize && c.computed && hash == c.member_hash) return;
  c.member_hash = hash;

  const int R = model_->num_locations();
  const int n_cls = schedule_->num_classes();
  const double group_size = 1.0 + static_cast<double>(c.objects.size());

  // Gather all reads of the container and its assigned objects, grouped by
  // epoch. Object reads are pre-filtered to the object universe, which is a
  // subset of the container universe for candidates; containment applies
  // only when the object lists c as candidate, which assignment guarantees.
  std::vector<TagRead> reads = c.own_reads;
  for (int oi : c.objects) {
    const auto& ors = objects_[static_cast<size_t>(oi)].reads;
    reads.insert(reads.end(), ors.begin(), ors.end());
  }
  std::sort(reads.begin(), reads.end());

  c.act_epochs.clear();
  c.q_act.clear();
  c.act_map.clear();
  c.act_m.clear();
  c.sum_act_lz = 0.0;

  std::vector<double> logw(static_cast<size_t>(R));
  size_t i = 0;
  while (i < reads.size()) {
    const Epoch t = reads[i].time;
    const int cls = schedule_->ClassOf(t);
    for (LocationId a = 0; a < R; ++a) {
      logw[static_cast<size_t>(a)] =
          group_size * schedule_->LogMissAllClass(a, cls);
    }
    size_t j = i;
    while (j < reads.size() && reads[j].time == t) {
      const LocationId r = reads[j].reader;
      for (LocationId a = 0; a < R; ++a) {
        logw[static_cast<size_t>(a)] += model_->LogReadAdjust(r, a);
      }
      ++j;
    }
    const double lz = NormalizeLogWeights(logw);
    c.sum_act_lz += lz;
    c.act_epochs.push_back(t);
    LocationId best = 0;
    double best_q = -1.0;
    double m = 0.0;
    for (LocationId a = 0; a < R; ++a) {
      const double q = logw[static_cast<size_t>(a)];
      c.q_act.push_back(q);
      m += q * schedule_->LogMissAllClass(a, cls);
      if (q > best_q) {
        best_q = q;
        best = a;
      }
    }
    c.act_m.push_back(m);
    c.act_map.push_back(best);
    i = j;
  }

  // Idle classes: the posterior of any epoch in which no group member was
  // read depends only on the schedule class.
  c.q_idle.assign(static_cast<size_t>(n_cls) * static_cast<size_t>(R), 0.0);
  c.m_idle.assign(static_cast<size_t>(n_cls), 0.0);
  c.lz_idle.assign(static_cast<size_t>(n_cls), 0.0);
  for (int cls = 0; cls < n_cls; ++cls) {
    for (LocationId a = 0; a < R; ++a) {
      logw[static_cast<size_t>(a)] =
          group_size * schedule_->LogMissAllClass(a, cls);
    }
    const double lz = NormalizeLogWeights(logw);
    c.lz_idle[static_cast<size_t>(cls)] = lz;
    double m = 0.0;
    for (LocationId a = 0; a < R; ++a) {
      const double q = logw[static_cast<size_t>(a)];
      c.q_idle[static_cast<size_t>(cls) * static_cast<size_t>(R) +
               static_cast<size_t>(a)] = q;
      m += q * schedule_->LogMissAllClass(a, cls);
    }
    c.m_idle[static_cast<size_t>(cls)] = m;
  }

  // Prefix sums of active-epoch excess over the idle constant, the kernel
  // behind O(1) interval sums in SumM.
  c.act_excess_prefix.assign(c.act_epochs.size() + 1, 0.0);
  for (size_t k = 0; k < c.act_epochs.size(); ++k) {
    const int cls = schedule_->ClassOf(c.act_epochs[k]);
    c.act_excess_prefix[k + 1] =
        c.act_excess_prefix[k] + c.act_m[k] -
        c.m_idle[static_cast<size_t>(cls)];
  }
  c.computed = true;
}

void RFInfer::EStep() {
  for (ContainerData& c : containers_) {
    ComputeContainer(c);
  }
}

double RFInfer::SumM(const ContainerData& c,
                     const EpochInterval& interval) const {
  if (interval.empty()) return 0.0;
  double total = 0.0;
  const int n_cls = schedule_->num_classes();
  for (int cls = 0; cls < n_cls; ++cls) {
    const int64_t count =
        schedule_->CountClassInRange(cls, interval.begin, interval.end);
    if (count > 0) {
      total += static_cast<double>(count) *
               c.m_idle[static_cast<size_t>(cls)];
    }
  }
  const auto lo = std::lower_bound(c.act_epochs.begin(), c.act_epochs.end(),
                                   interval.begin);
  const auto hi = std::upper_bound(c.act_epochs.begin(), c.act_epochs.end(),
                                   interval.end);
  const size_t lo_i = static_cast<size_t>(lo - c.act_epochs.begin());
  const size_t hi_i = static_cast<size_t>(hi - c.act_epochs.begin());
  total += c.act_excess_prefix[hi_i] - c.act_excess_prefix[lo_i];
  return total;
}

const double* RFInfer::PosteriorAt(const ContainerData& c, Epoch t) const {
  const int R = model_->num_locations();
  const auto it =
      std::lower_bound(c.act_epochs.begin(), c.act_epochs.end(), t);
  if (it != c.act_epochs.end() && *it == t) {
    const size_t idx = static_cast<size_t>(it - c.act_epochs.begin());
    return &c.q_act[idx * static_cast<size_t>(R)];
  }
  return &c.q_idle[static_cast<size_t>(schedule_->ClassOf(t)) *
                   static_cast<size_t>(R)];
}

double RFInfer::DotAdjust(const double* q, LocationId r) const {
  const int R = model_->num_locations();
  double dot = 0.0;
  for (LocationId a = 0; a < R; ++a) {
    dot += q[static_cast<size_t>(a)] * model_->LogReadAdjust(r, a);
  }
  return dot;
}

double RFInfer::ComputeWeight(const ObjectData& o, int container_index) const {
  const ContainerData& c = containers_[static_cast<size_t>(container_index)];
  double w = 0.0;
  for (const EpochInterval& iv : o.universe) {
    w += SumM(c, iv);
  }
  for (const TagRead& tr : o.reads) {
    w += DotAdjust(PosteriorAt(c, tr.time), tr.reader);
  }
  return w;
}

bool RFInfer::MStep() {
  bool changed = false;
  for (ObjectData& o : objects_) {
    double best = kNegInf;
    int best_j = -1;
    for (size_t j = 0; j < o.candidates.size(); ++j) {
      const double w =
          o.priors[j] + ComputeWeight(o, o.candidates[j]);
      o.weights[j] = w;
      if (w > best) {
        best = w;
        best_j = static_cast<int>(j);
      }
    }
    if (best_j != o.assigned) {
      o.assigned = best_j;
      changed = true;
    }
  }
  // Rebuild container membership from the new assignment.
  for (ContainerData& c : containers_) c.objects.clear();
  for (size_t oi = 0; oi < objects_.size(); ++oi) {
    const ObjectData& o = objects_[oi];
    if (o.assigned >= 0) {
      containers_[static_cast<size_t>(
                      o.candidates[static_cast<size_t>(o.assigned)])]
          .objects.push_back(static_cast<int>(oi));
    }
  }
  return changed;
}

double RFInfer::ComputeLogLikelihood() const {
  double total = 0.0;
  const int n_cls = schedule_->num_classes();
  for (const ContainerData& c : containers_) {
    total += c.sum_act_lz;
    // Idle epochs: per-class count over the container universe minus the
    // active epochs of that class.
    std::vector<int64_t> act_per_class(static_cast<size_t>(n_cls), 0);
    for (Epoch t : c.act_epochs) {
      ++act_per_class[static_cast<size_t>(schedule_->ClassOf(t))];
    }
    for (int cls = 0; cls < n_cls; ++cls) {
      int64_t count = 0;
      for (const EpochInterval& iv : c.universe) {
        count += schedule_->CountClassInRange(cls, iv.begin, iv.end);
      }
      count -= act_per_class[static_cast<size_t>(cls)];
      if (count > 0) {
        total += static_cast<double>(count) *
                 c.lz_idle[static_cast<size_t>(cls)];
      }
    }
  }
  return total;
}

Status RFInfer::Run(const Trace& trace, Epoch window_begin, Epoch window_end) {
  if (!trace.sealed()) {
    return Status::InvalidArgument("trace must be sealed before inference");
  }
  if (window_end < window_begin) {
    return Status::InvalidArgument("inference window is empty");
  }
  trace_ = &trace;
  window_ = EpochInterval{window_begin, window_end};
  iterations_used_ = 0;
  likelihood_history_.clear();

  BuildUniverse(trace);
  BuildCandidates(trace);
  BuildReadCaches(trace);

  bool changed = true;
  for (int iter = 0; iter < options_.max_iterations && changed; ++iter) {
    EStep();
    likelihood_history_.push_back(ComputeLogLikelihood());
    changed = MStep();
    ++iterations_used_;
  }
  if (changed) {
    // Hit the iteration cap with a fresh assignment: recompute posteriors
    // once so location estimates and evidence match the final containment.
    EStep();
    likelihood_history_.push_back(ComputeLogLikelihood());
  }
  log_likelihood_ = likelihood_history_.back();
  return Status::OK();
}

TagId RFInfer::ContainerOf(TagId object) const {
  const int oi = ObjectIndexOf(object);
  if (oi < 0) return kNoTag;
  const ObjectData& o = objects_[static_cast<size_t>(oi)];
  if (o.assigned < 0) return kNoTag;
  return containers_[static_cast<size_t>(
                         o.candidates[static_cast<size_t>(o.assigned)])]
      .tag;
}

std::vector<TagId> RFInfer::ObjectsOf(TagId container) const {
  std::vector<TagId> out;
  const int ci = ContainerIndexOf(container);
  if (ci < 0) return out;
  for (int oi : containers_[static_cast<size_t>(ci)].objects) {
    out.push_back(objects_[static_cast<size_t>(oi)].tag);
  }
  return out;
}

std::vector<TagId> RFInfer::CandidatesOf(TagId object) const {
  std::vector<TagId> out;
  const int oi = ObjectIndexOf(object);
  if (oi < 0) return out;
  for (int ci : objects_[static_cast<size_t>(oi)].candidates) {
    out.push_back(containers_[static_cast<size_t>(ci)].tag);
  }
  return out;
}

double RFInfer::WeightOf(TagId object, TagId container) const {
  const int oi = ObjectIndexOf(object);
  const int ci = ContainerIndexOf(container);
  if (oi < 0 || ci < 0) return kNegInf;
  const ObjectData& o = objects_[static_cast<size_t>(oi)];
  for (size_t j = 0; j < o.candidates.size(); ++j) {
    if (o.candidates[j] == ci) return o.weights[j];
  }
  return kNegInf;
}

std::vector<std::pair<TagId, double>> RFInfer::ExportWeights(
    TagId object) const {
  std::vector<std::pair<TagId, double>> out;
  const int oi = ObjectIndexOf(object);
  if (oi < 0) return out;
  const ObjectData& o = objects_[static_cast<size_t>(oi)];
  for (size_t j = 0; j < o.candidates.size(); ++j) {
    out.emplace_back(containers_[static_cast<size_t>(o.candidates[j])].tag,
                     o.weights[j]);
  }
  return out;
}

void RFInfer::RestoreResults(
    std::vector<TagId> container_tags,
    const std::vector<RestoredObjectResult>& objects) {
  trace_ = nullptr;
  window_ = EpochInterval{};
  iterations_used_ = 0;
  log_likelihood_ = 0.0;
  likelihood_history_.clear();
  container_tags_ = std::move(container_tags);
  containers_.clear();
  containers_.resize(container_tags_.size());
  container_index_.clear();
  for (size_t i = 0; i < container_tags_.size(); ++i) {
    containers_[i].tag = container_tags_[i];
    container_index_[container_tags_[i]] = static_cast<int>(i);
  }
  object_tags_.clear();
  object_tags_.reserve(objects.size());
  objects_.clear();
  objects_.reserve(objects.size());
  object_index_.clear();
  for (const RestoredObjectResult& ro : objects) {
    ObjectData o;
    o.tag = ro.tag;
    o.candidates.reserve(ro.weights.size());
    o.weights.reserve(ro.weights.size());
    for (const auto& [ctag, w] : ro.weights) {
      const int ci = ContainerIndexOf(ctag);
      if (ci < 0) continue;  // checkpoint invariant; tolerated, not trusted
      o.candidates.push_back(ci);
      o.weights.push_back(w);
    }
    if (ro.assigned.valid()) {
      const int ci = ContainerIndexOf(ro.assigned);
      for (size_t j = 0; j < o.candidates.size(); ++j) {
        if (o.candidates[j] == ci) {
          o.assigned = static_cast<int>(j);
          break;
        }
      }
    }
    const int oi = static_cast<int>(objects_.size());
    object_index_[o.tag] = oi;
    object_tags_.push_back(o.tag);
    if (o.assigned >= 0) {
      containers_[static_cast<size_t>(o.candidates[static_cast<size_t>(
                      o.assigned)])]
          .objects.push_back(oi);
    }
    objects_.push_back(std::move(o));
  }
}

LocationId RFInfer::LocationOf(TagId tag, Epoch t) const {
  const int ci = ContainerIndexOf(tag);
  if (ci >= 0) {
    const ContainerData& c = containers_[static_cast<size_t>(ci)];
    auto it = std::upper_bound(c.act_epochs.begin(), c.act_epochs.end(), t);
    if (it == c.act_epochs.begin()) return kNoLocation;
    const size_t idx = static_cast<size_t>(it - c.act_epochs.begin()) - 1;
    return c.act_map[idx];
  }
  const int oi = ObjectIndexOf(tag);
  if (oi < 0) return kNoLocation;
  const ObjectData& o = objects_[static_cast<size_t>(oi)];
  if (o.assigned >= 0) {
    return LocationOf(
        containers_[static_cast<size_t>(
                        o.candidates[static_cast<size_t>(o.assigned)])]
            .tag,
        t);
  }
  // Unassigned object: fall back to its own most recent reading.
  LocationId last = kNoLocation;
  for (const TagRead& tr : o.reads) {
    if (tr.time > t) break;
    last = tr.reader;
  }
  return last;
}

std::vector<ObjectEvent> RFInfer::EmitEvents() const {
  std::vector<ObjectEvent> events;
  for (const ContainerData& c : containers_) {
    for (size_t k = 0; k < c.act_epochs.size(); ++k) {
      const Epoch t = c.act_epochs[k];
      if (!window_.Contains(t)) continue;
      const LocationId loc = c.act_map[k];
      events.push_back(ObjectEvent{t, c.tag, loc, kNoTag});
      for (int oi : c.objects) {
        events.push_back(
            ObjectEvent{t, objects_[static_cast<size_t>(oi)].tag, loc, c.tag});
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const ObjectEvent& a, const ObjectEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.tag < b.tag;
            });
  return events;
}

RFInfer::ScanResult RFInfer::ScanObject(const ObjectData& o) const {
  ScanResult scan;
  const size_t n_cand = o.candidates.size();
  if (n_cand == 0) return scan;

  // Event epochs: any epoch in the object universe where the object or any
  // candidate container group had a reading.
  std::vector<Epoch> events;
  for (const TagRead& tr : o.reads) events.push_back(tr.time);
  for (int ci : o.candidates) {
    const ContainerData& c = containers_[static_cast<size_t>(ci)];
    for (Epoch t : c.act_epochs) {
      if (InIntervals(o.universe, t)) events.push_back(t);
    }
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  scan.events = events;
  scan.point.assign(events.size() * n_cand, 0.0);
  scan.cum.assign(events.size() * n_cand, 0.0);
  scan.total.assign(n_cand, 0.0);

  for (size_t j = 0; j < n_cand; ++j) {
    const ContainerData& c =
        containers_[static_cast<size_t>(o.candidates[j])];
    double cum = 0.0;
    size_t ev = 0;           // cursor into events
    size_t read_i = 0;       // cursor into o.reads
    for (const EpochInterval& iv : o.universe) {
      Epoch prev = iv.begin - 1;
      while (ev < events.size() && events[ev] <= iv.end) {
        const Epoch t = events[ev];
        if (t < iv.begin) {  // event belongs to an earlier interval gap
          ++ev;
          continue;
        }
        if (t > prev + 1) {
          cum += SumM(c, EpochInterval{prev + 1, t - 1});
        }
        // Point evidence at t: the miss term plus corrections for the
        // object's actual reads at t (Eq 7).
        double point;
        const auto it =
            std::lower_bound(c.act_epochs.begin(), c.act_epochs.end(), t);
        if (it != c.act_epochs.end() && *it == t) {
          point = c.act_m[static_cast<size_t>(it - c.act_epochs.begin())];
        } else {
          point = c.m_idle[static_cast<size_t>(schedule_->ClassOf(t))];
        }
        while (read_i < o.reads.size() && o.reads[read_i].time < t) ++read_i;
        size_t ri = read_i;
        const double* q = PosteriorAt(c, t);
        while (ri < o.reads.size() && o.reads[ri].time == t) {
          point += DotAdjust(q, o.reads[ri].reader);
          ++ri;
        }
        cum += point;
        scan.point[ev * n_cand + j] = point;
        scan.cum[ev * n_cand + j] = cum;
        prev = t;
        ++ev;
      }
      if (iv.end > prev) {
        cum += SumM(c, EpochInterval{prev + 1, iv.end});
      }
    }
    scan.total[j] = cum;
    // Reset the event cursor for the next candidate.
  }
  return scan;
}

std::vector<EvidencePoint> RFInfer::EvidenceSeries(TagId object,
                                                   TagId container) const {
  std::vector<EvidencePoint> series;
  const int oi = ObjectIndexOf(object);
  const int ci = ContainerIndexOf(container);
  if (oi < 0 || ci < 0) return series;
  const ObjectData& o = objects_[static_cast<size_t>(oi)];
  size_t j = o.candidates.size();
  for (size_t k = 0; k < o.candidates.size(); ++k) {
    if (o.candidates[k] == ci) j = k;
  }
  if (j == o.candidates.size()) return series;
  const ScanResult scan = ScanObject(o);
  const size_t n_cand = o.candidates.size();
  series.reserve(scan.events.size());
  for (size_t k = 0; k < scan.events.size(); ++k) {
    series.push_back(EvidencePoint{scan.events[k], scan.point[k * n_cand + j],
                                   scan.cum[k * n_cand + j]});
  }
  return series;
}

std::optional<ChangePointResult> RFInfer::ChangePointFor(
    const ObjectData& o, double threshold) const {
  const size_t n_cand = o.candidates.size();
  if (n_cand == 0) return std::nullopt;
  const ScanResult scan = ScanObject(o);
  if (scan.events.empty()) return std::nullopt;

  // Null hypothesis: one containment over the whole history.
  double null_ll = kNegInf;
  for (size_t j = 0; j < n_cand; ++j) {
    null_ll = std::max(null_ll, scan.total[j]);
  }
  // Alternative: the best prefix/suffix split at any event epoch. The
  // statistic is the likelihood-ratio improvement of the two-segment fit
  // (Eq 6, written as alternative minus null so Delta >= 0 and a change is
  // flagged when Delta >= delta).
  double best_alt = kNegInf;
  size_t best_k = 0;
  size_t best_pre = 0;
  size_t best_suf = 0;
  for (size_t k = 0; k + 1 < scan.events.size(); ++k) {
    double pre = kNegInf, suf = kNegInf;
    size_t pre_j = 0, suf_j = 0;
    for (size_t j = 0; j < n_cand; ++j) {
      const double p = scan.cum[k * n_cand + j];
      const double s = scan.total[j] - p;
      if (p > pre) {
        pre = p;
        pre_j = j;
      }
      if (s > suf) {
        suf = s;
        suf_j = j;
      }
    }
    if (pre + suf > best_alt) {
      best_alt = pre + suf;
      best_k = k;
      best_pre = pre_j;
      best_suf = suf_j;
    }
  }
  if (!std::isfinite(best_alt)) return std::nullopt;
  const double delta = best_alt - null_ll;
  if (delta < threshold) return std::nullopt;
  ChangePointResult result;
  result.object = o.tag;
  result.time = scan.events[best_k];
  result.old_container =
      containers_[static_cast<size_t>(o.candidates[best_pre])].tag;
  result.new_container =
      containers_[static_cast<size_t>(o.candidates[best_suf])].tag;
  result.delta = delta;
  return result;
}

std::vector<ChangePointResult> RFInfer::DetectChangePoints(
    double threshold) const {
  std::vector<ChangePointResult> results;
  for (const ObjectData& o : objects_) {
    auto cp = ChangePointFor(o, threshold);
    if (cp.has_value()) results.push_back(*cp);
  }
  return results;
}

double RFInfer::ChangeStatistic(TagId object) const {
  const int oi = ObjectIndexOf(object);
  if (oi < 0) return 0.0;
  auto cp = ChangePointFor(objects_[static_cast<size_t>(oi)],
                           -std::numeric_limits<double>::infinity());
  return cp.has_value() ? cp->delta : 0.0;
}

std::unordered_map<TagId, CriticalRegion> RFInfer::FindCriticalRegions(
    Epoch window, double gap_threshold) const {
  std::unordered_map<TagId, CriticalRegion> out;
  for (const ObjectData& o : objects_) {
    const size_t n_cand = o.candidates.size();
    if (n_cand == 0) continue;
    const ScanResult scan = ScanObject(o);
    const size_t n_ev = scan.events.size();
    if (n_ev == 0) continue;

    std::optional<CriticalRegion> cr;
    std::vector<double> win_sum(n_cand, 0.0);
    size_t lo = 0;  // first event inside the sliding window
    for (size_t k = 0; k < n_ev; ++k) {
      for (size_t j = 0; j < n_cand; ++j) {
        win_sum[j] += scan.point[k * n_cand + j];
      }
      const Epoch w_begin = scan.events[k] - window + 1;
      while (scan.events[lo] < w_begin) {
        for (size_t j = 0; j < n_cand; ++j) {
          win_sum[j] -= scan.point[lo * n_cand + j];
        }
        ++lo;
      }
      double best = kNegInf, second = kNegInf;
      for (size_t j = 0; j < n_cand; ++j) {
        if (win_sum[j] > best) {
          second = best;
          best = win_sum[j];
        } else if (win_sum[j] > second) {
          second = win_sum[j];
        }
      }
      // Single-candidate objects: keep the window with the strongest
      // evidence (gap is undefined; use the raw evidence as the score).
      // Multi-candidate objects: keep the maximum-gap window at or above
      // the threshold. Preferring the max over the most recent qualifying
      // window keeps belt-style discriminative spans from being displaced
      // by windows whose gap is co-location noise; recency is handled by
      // the change-point barrier, which invalidates pre-change regions.
      const double gap = n_cand == 1 ? best : best - second;
      const bool qualifies =
          (n_cand == 1 || gap >= gap_threshold) &&
          (!cr.has_value() || gap > cr->gap);
      if (qualifies) {
        cr = CriticalRegion{EpochInterval{w_begin, scan.events[k]}, gap};
      }
    }
    if (cr.has_value()) out[o.tag] = *cr;
  }
  return out;
}

}  // namespace rfid
