#include "inference/state.h"

#include "common/serde.h"
#include "trace/trace_io.h"

namespace rfid {

namespace {
constexpr uint32_t kStateMagic = 0x52464d53;  // "RFMS"
}  // namespace

std::vector<uint8_t> EncodeMigrationStates(
    const std::vector<ObjectMigrationState>& states) {
  BufferWriter w;
  w.PutU32(kStateMagic);
  w.PutVarint(states.size());
  for (const ObjectMigrationState& s : states) {
    w.PutCompactTag(s.object);
    w.PutCompactTag(s.container);
    w.PutSignedVarint(s.barrier);
    w.PutU8(s.critical_region.has_value() ? 1 : 0);
    if (s.critical_region.has_value()) {
      w.PutSignedVarint(s.critical_region->begin);
      w.PutSignedVarint(s.critical_region->end);
    }
    // "Collapse the inference state to a single number for each
    // container-object pair": float resolution is ample for weights whose
    // argmax decides containment.
    w.PutVarint(s.weights.size());
    for (const auto& [tag, weight] : s.weights) {
      w.PutCompactTag(tag);
      w.PutFloat(static_cast<float>(weight));
    }
    w.PutVarint(s.readings.size());
    Epoch prev_time = 0;
    uint64_t prev_tag = 0;
    for (const RawReading& r : s.readings) {
      PutDeltaReading(w, r, prev_time, prev_tag);
    }
  }
  return w.Release();
}

Result<std::vector<ObjectMigrationState>> DecodeMigrationStates(
    const std::vector<uint8_t>& bytes) {
  return DecodeMigrationStates(bytes.data(), bytes.size());
}

Result<std::vector<ObjectMigrationState>> DecodeMigrationStates(
    const uint8_t* data, size_t size) {
  BufferReader reader(data, size);
  uint32_t magic;
  RFID_RETURN_NOT_OK(reader.GetU32(&magic));
  if (magic != kStateMagic) {
    return Status::Corruption("bad migration-state magic");
  }
  uint64_t count;
  RFID_RETURN_NOT_OK(reader.GetVarint(&count));
  std::vector<ObjectMigrationState> states;
  // `count` is untrusted wire data: a corrupt payload must surface as a
  // Status below, not as a length_error/bad_alloc from reserve.
  for (uint64_t i = 0; i < count; ++i) {
    ObjectMigrationState s;
    RFID_RETURN_NOT_OK(reader.GetCompactTag(&s.object));
    RFID_RETURN_NOT_OK(reader.GetCompactTag(&s.container));
    RFID_RETURN_NOT_OK(reader.GetSignedVarint(&s.barrier));
    uint8_t has_cr = 0;
    RFID_RETURN_NOT_OK(reader.GetU8(&has_cr));
    if (has_cr != 0) {
      EpochInterval cr;
      RFID_RETURN_NOT_OK(reader.GetSignedVarint(&cr.begin));
      RFID_RETURN_NOT_OK(reader.GetSignedVarint(&cr.end));
      s.critical_region = cr;
    }
    uint64_t n_weights = 0;
    RFID_RETURN_NOT_OK(reader.GetVarint(&n_weights));
    for (uint64_t k = 0; k < n_weights; ++k) {
      TagId tag;
      float weight = 0;
      RFID_RETURN_NOT_OK(reader.GetCompactTag(&tag));
      RFID_RETURN_NOT_OK(reader.GetFloat(&weight));
      s.weights.emplace_back(tag, static_cast<double>(weight));
    }
    uint64_t n_readings;
    RFID_RETURN_NOT_OK(reader.GetVarint(&n_readings));
    Epoch prev_time = 0;
    uint64_t prev_tag = 0;
    for (uint64_t k = 0; k < n_readings; ++k) {
      RawReading r;
      RFID_RETURN_NOT_OK(GetDeltaReading(reader, &r, prev_time, prev_tag));
      s.readings.push_back(r);
    }
    states.push_back(std::move(s));
  }
  return states;
}

}  // namespace rfid
