// Scoring of inference output against simulator ground truth, implementing
// the metrics of Appendix C.1: error rate (containment and location) and
// precision/recall/F-measure for change-point detection.
#ifndef RFID_INFERENCE_EVALUATE_H_
#define RFID_INFERENCE_EVALUATE_H_

#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "inference/rfinfer.h"
#include "trace/ground_truth.h"

namespace rfid {

/// Fraction (in percent) of `objects` whose inferred container differs from
/// the true container at epoch `at`. Objects absent from the ground truth
/// at `at` (departed/removed) are skipped.
double ContainmentErrorPercent(const RFInfer& engine, const GroundTruth& truth,
                               const std::vector<TagId>& objects, Epoch at);

/// As above but against an arbitrary belief function (e.g. the streaming
/// driver's change-override view).
template <typename BeliefFn>
double ContainmentErrorPercentOf(BeliefFn&& believed_container,
                                 const GroundTruth& truth,
                                 const std::vector<TagId>& objects, Epoch at) {
  ErrorRate err;
  for (TagId o : objects) {
    if (!truth.PresentAt(o, at)) continue;
    TagId truth_container = truth.ContainerAt(o, at);
    err.Add(believed_container(o) == truth_container);
  }
  return err.Percent();
}

/// Location error (percent) of `tags`, sampled at `stride`-spaced epochs in
/// [begin, end]: the MAP location estimate (with carry-forward) versus the
/// true location. Epochs where the tag is absent or the engine has no
/// estimate yet are skipped.
double LocationErrorPercent(const RFInfer& engine, const GroundTruth& truth,
                            const std::vector<TagId>& tags, Epoch begin,
                            Epoch end, Epoch stride = 10);

/// As above against an arbitrary location estimator (e.g. the streaming
/// driver's cross-run track).
template <typename LocFn>
double LocationErrorPercentOf(LocFn&& location_at, const GroundTruth& truth,
                              const std::vector<TagId>& tags, Epoch begin,
                              Epoch end, Epoch stride = 10) {
  ErrorRate err;
  for (TagId tag : tags) {
    for (Epoch t = begin; t <= end; t += stride) {
      if (!truth.PresentAt(tag, t)) continue;
      const LocationId truth_loc = truth.LocationAt(tag, t);
      if (truth_loc == kNoLocation) continue;
      const LocationId est = location_at(tag, t);
      if (est == kNoLocation) continue;
      err.Add(est == truth_loc);
    }
  }
  return err.Percent();
}

/// One true containment change for F-measure scoring.
struct TrueChange {
  Epoch time = 0;
  TagId object;
  TagId to;  ///< new container (kNoTag for removals)
};

/// Matches reported change points to true changes: a report (o, t) matches
/// an unmatched truth record (o, t*) when |t - t*| <= tolerance. Reports
/// additionally require the post-change container to be correct when
/// `require_container` is set.
FMeasure ScoreChangeDetection(const std::vector<ChangePointResult>& reported,
                              const std::vector<TrueChange>& truth,
                              Epoch tolerance, bool require_container = false);

}  // namespace rfid

#endif  // RFID_INFERENCE_EVALUATE_H_
