// Offline calibration of the change-point detection threshold delta
// (Section 3.3): "we can obtain as much of this data as we want, simply by
// sampling hypothetical observation sequences from the model ... since none
// of the hypothetical sequences actually contain a change point, if our
// procedure signals a change point on one of them, it must be a false
// positive. In practice, all of the hypothetical Delta_o(T) values are
// quite small, so we choose delta to be their maximum. Furthermore, all of
// this computation can be done in advance before any RFID data is
// observed."
#ifndef RFID_INFERENCE_CALIBRATION_H_
#define RFID_INFERENCE_CALIBRATION_H_

#include "common/rng.h"
#include "common/types.h"
#include "model/read_rate.h"
#include "model/schedule.h"

namespace rfid {

struct CalibrationConfig {
  /// Number of hypothetical no-change worlds to sample.
  int num_samples = 16;
  /// Horizon of each sampled sequence; should match the history span the
  /// detector will see (critical region + recent history).
  Epoch horizon = 600;
  /// Containers per sampled world. Several containers moving independently
  /// create the co-location ambiguity that drives false positives.
  int num_containers = 4;
  /// Objects per container.
  int objects_per_container = 5;
  /// Per-epoch probability that a container relocates.
  double move_prob = 0.01;
  /// Safety margin multiplied into the returned threshold.
  double margin = 1.0;
};

/// Samples no-change observation sequences from the generative model, runs
/// RFINFER on each, and returns the largest change statistic observed
/// (times `margin`). Any threshold at or above the return value yields zero
/// false positives on the sampled worlds.
double CalibrateChangeThreshold(const ReadRateModel& model,
                                const InterrogationSchedule& schedule,
                                const CalibrationConfig& config, Rng& rng);

}  // namespace rfid

#endif  // RFID_INFERENCE_CALIBRATION_H_
