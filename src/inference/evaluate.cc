#include "inference/evaluate.h"

#include <algorithm>

namespace rfid {

double ContainmentErrorPercent(const RFInfer& engine, const GroundTruth& truth,
                               const std::vector<TagId>& objects, Epoch at) {
  return ContainmentErrorPercentOf(
      [&](TagId o) { return engine.ContainerOf(o); }, truth, objects, at);
}

double LocationErrorPercent(const RFInfer& engine, const GroundTruth& truth,
                            const std::vector<TagId>& tags, Epoch begin,
                            Epoch end, Epoch stride) {
  ErrorRate err;
  for (TagId tag : tags) {
    for (Epoch t = begin; t <= end; t += stride) {
      if (!truth.PresentAt(tag, t)) continue;
      const LocationId truth_loc = truth.LocationAt(tag, t);
      if (truth_loc == kNoLocation) continue;  // in transit
      const LocationId est = engine.LocationOf(tag, t);
      if (est == kNoLocation) continue;  // no estimate yet
      err.Add(est == truth_loc);
    }
  }
  return err.Percent();
}

FMeasure ScoreChangeDetection(const std::vector<ChangePointResult>& reported,
                              const std::vector<TrueChange>& truth,
                              Epoch tolerance, bool require_container) {
  FMeasure fm;
  std::vector<bool> matched(truth.size(), false);
  for (const ChangePointResult& cp : reported) {
    bool hit = false;
    for (size_t i = 0; i < truth.size(); ++i) {
      if (matched[i]) continue;
      if (truth[i].object != cp.object) continue;
      if (std::abs(truth[i].time - cp.time) > tolerance) continue;
      if (require_container && truth[i].to.valid() &&
          truth[i].to != cp.new_container) {
        continue;
      }
      matched[i] = true;
      hit = true;
      break;
    }
    if (hit) {
      fm.AddTruePositive();
    } else {
      fm.AddFalsePositive();
    }
  }
  for (size_t i = 0; i < truth.size(); ++i) {
    if (!matched[i]) fm.AddFalseNegative();
  }
  return fm;
}

}  // namespace rfid
