#include "inference/streaming.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "trace/trace_io.h"

namespace rfid {

StreamingInference::StreamingInference(const ReadRateModel* model,
                                       const InterrogationSchedule* schedule,
                                       StreamingOptions options)
    : model_(model), schedule_(schedule), options_(options) {
  engine_ = std::make_unique<RFInfer>(model_, schedule_, options_.inference);
  next_run_ = options_.inference_period;
  if (options_.arena_index) buffer_.SetArena(&window_arena_);
  buffer_.EnableColumns(options_.soa_columns);
}

void StreamingInference::SetUniverse(std::vector<TagId> containers,
                                     std::vector<TagId> objects) {
  has_universe_ = true;
  has_universe_kinds_ = false;
  universe_containers_ = std::move(containers);
  universe_objects_ = std::move(objects);
}

void StreamingInference::SetUniverseKinds(TagKind container_kind,
                                          TagKind object_kind) {
  has_universe_ = false;
  has_universe_kinds_ = true;
  universe_container_kind_ = container_kind;
  universe_object_kind_ = object_kind;
}

void StreamingInference::Observe(const RawReading& reading) {
  buffer_.Add(reading);
}

void StreamingInference::ObserveBatch(const RawReading* readings, size_t n) {
  buffer_.Append(readings, n);
}

void StreamingInference::ObserveBatch(const ReadingColumnsView& view) {
  buffer_.Append(view);
}

int StreamingInference::AdvanceTo(Epoch now) {
  int ran = 0;
  while (next_run_ <= now) {
    RFID_CHECK_OK(RunNow(next_run_));
    next_run_ += options_.inference_period;
    ++ran;
  }
  return ran;
}

Status StreamingInference::RunNow(Epoch now) {
  buffer_.Seal();
  Epoch window_begin = 0;
  switch (options_.truncation) {
    case TruncationMethod::kAll:
      window_begin = 0;
      break;
    case TruncationMethod::kWindow:
      window_begin = std::max<Epoch>(0, now - options_.window_size + 1);
      break;
    case TruncationMethod::kCriticalRegion:
      window_begin = std::max<Epoch>(0, now - options_.recent_history + 1);
      break;
  }

  if (has_universe_) {
    engine_->SetUniverse(universe_containers_, universe_objects_);
  } else if (has_universe_kinds_) {
    // Kind-derived universe: re-scanned before every run so tags that
    // appeared since the last run join their role immediately.
    std::vector<TagId> containers;
    std::vector<TagId> objects;
    for (TagId tag : buffer_.Tags()) {
      if (tag.kind() == universe_container_kind_) {
        containers.push_back(tag);
      } else if (tag.kind() == universe_object_kind_) {
        objects.push_back(tag);
      }
    }
    engine_->SetUniverse(std::move(containers), std::move(objects));
  }
  engine_->ClearObjectContexts();
  if (options_.truncation == TruncationMethod::kCriticalRegion) {
    for (const auto& [tag, ctx] : contexts_) {
      engine_->SetObjectContext(tag, ctx);
    }
  } else {
    // Barriers and priors still apply without CR truncation.
    for (const auto& [tag, ctx] : contexts_) {
      ObjectContext no_cr = ctx;
      no_cr.critical_region.reset();
      engine_->SetObjectContext(tag, no_cr);
    }
  }

  Stopwatch timer;
  RFID_RETURN_NOT_OK(engine_->Run(buffer_, window_begin, now));

  last_changes_.clear();
  if (options_.detect_changes) {
    last_changes_ = engine_->DetectChangePoints(options_.change_threshold);
    for (const ChangePointResult& cp : last_changes_) {
      all_changes_.push_back(cp);
      ObjectContext& ctx = contexts_[cp.object];
      ctx.barrier = std::max(ctx.barrier, cp.time);
      // The critical region preceding the change no longer describes the
      // object's containment.
      if (ctx.critical_region.has_value() &&
          ctx.critical_region->end <= cp.time) {
        ctx.critical_region.reset();
      }
      change_overrides_[cp.object] = cp.new_container;
    }
    // An object whose assignment now matches its override has "caught up".
    for (auto it = change_overrides_.begin();
         it != change_overrides_.end();) {
      if (engine_->ContainerOf(it->first) == it->second) {
        it = change_overrides_.erase(it);
      } else {
        ++it;
      }
    }
  }

  if (options_.truncation == TruncationMethod::kCriticalRegion) {
    auto crs = engine_->FindCriticalRegions(options_.cr_window,
                                            options_.cr_gap_threshold);
    for (const auto& [tag, cr] : crs) {
      ObjectContext& ctx = contexts_[tag];
      // Replace a stored region only when the new one's evidence gap is
      // comparable or better; co-location noise must not displace a
      // genuinely discriminative span.
      if (!ctx.critical_region.has_value() ||
          cr.gap >= 0.5 * ctx.critical_region_gap) {
        ctx.critical_region = cr.window;
        ctx.critical_region_gap = cr.gap;
      }
    }
  }

  // Accumulate the location track: the monitoring system's view of "the
  // latest estimate at or before t" must survive across runs even though
  // each run only covers its own window.
  for (TagId c : engine_->container_tags()) {
    auto& track = location_track_[c];
    for (Epoch t = std::max(window_begin, last_run_at_ + 1); t <= now; ++t) {
      const LocationId loc = engine_->LocationOf(c, t);
      if (loc == kNoLocation) continue;
      // Store change points of the estimate only (sparse).
      if (track.empty() || track.back().reader != loc) {
        track.push_back(TagRead{t, loc});
      }
    }
  }

  // Local evidence supersedes beliefs imported with migrated state.
  for (auto it = imported_beliefs_.begin(); it != imported_beliefs_.end();) {
    if (engine_->ContainerOf(it->first).valid()) {
      it = imported_beliefs_.erase(it);
    } else {
      ++it;
    }
  }

  last_seconds_ = timer.ElapsedSeconds();
  total_seconds_ += last_seconds_;
  ++runs_;
  last_run_at_ = now;

  // Shrink the buffer to what the next run can possibly need.
  const Epoch next_now = now + options_.inference_period;
  switch (options_.truncation) {
    case TruncationMethod::kAll:
      break;  // keep everything
    case TruncationMethod::kWindow:
      CompactBuffer(std::max<Epoch>(0, next_now - options_.window_size + 1));
      break;
    case TruncationMethod::kCriticalRegion:
      CompactBuffer(
          std::max<Epoch>(0, next_now - options_.recent_history + 1));
      break;
  }
  return Status::OK();
}

void StreamingInference::CompactBuffer(Epoch next_window_begin) {
  // Keep recent readings, plus -- per tag -- readings inside the tag's own
  // critical region (objects) or inside the critical region of an object
  // that lists the tag as a candidate container. "Readings of the object
  // and its possible containers outside the critical region will be all
  // ignored" (Section 4.1).
  std::unordered_map<TagId, std::vector<EpochInterval>> keep;
  for (const auto& [tag, ctx] : contexts_) {
    if (!ctx.critical_region.has_value()) continue;
    keep[tag].push_back(*ctx.critical_region);
    for (TagId container : engine_->CandidatesOf(tag)) {
      keep[container].push_back(*ctx.critical_region);
    }
  }
  // In place so the buffer keeps its arena binding and columns setting;
  // the trace is resealed (and the index rebuilt) at the next run.
  buffer_.RetainIf([&](const RawReading& r) {
    if (r.time >= next_window_begin) return true;
    auto it = keep.find(r.tag);
    if (it == keep.end()) return false;
    for (const EpochInterval& iv : it->second) {
      if (iv.Contains(r.time)) return true;
    }
    return false;
  });
}

TagId StreamingInference::ContainerOf(TagId object) const {
  auto it = change_overrides_.find(object);
  if (it != change_overrides_.end()) return it->second;
  TagId local = engine_->ContainerOf(object);
  if (local.valid()) return local;
  auto imported = imported_beliefs_.find(object);
  return imported == imported_beliefs_.end() ? kNoTag : imported->second;
}

void StreamingInference::SetImportedBelief(TagId object, TagId container) {
  if (container.valid()) imported_beliefs_[object] = container;
}

LocationId StreamingInference::LocationOf(TagId tag, Epoch t) const {
  auto it = location_track_.find(tag);
  if (it == location_track_.end()) {
    // Objects inherit their container's track.
    TagId container = ContainerOf(tag);
    if (container.valid() && container != tag) {
      return LocationOf(container, t);
    }
    return engine_->LocationOf(tag, t);
  }
  const auto& track = it->second;
  auto pos = std::upper_bound(
      track.begin(), track.end(), t,
      [](Epoch t_, const TagRead& tr) { return t_ < tr.time; });
  if (pos == track.begin()) return kNoLocation;
  return (pos - 1)->reader;
}

void StreamingInference::ImportObjectContext(TagId object,
                                             ObjectContext context) {
  ObjectContext& ctx = contexts_[object];
  ctx.barrier = std::max(ctx.barrier, context.barrier);
  if (context.critical_region.has_value()) {
    ctx.critical_region = context.critical_region;
  }
  // Imported collapsed weights add to any existing priors: "the inference
  // algorithm at a new location simply adds the old transferred weights to
  // the new weights" (Section 4.1).
  for (const auto& [tag, w] : context.prior_weights) {
    bool merged = false;
    for (auto& [etag, ew] : ctx.prior_weights) {
      if (etag == tag) {
        ew += w;
        merged = true;
        break;
      }
    }
    if (!merged) ctx.prior_weights.emplace_back(tag, w);
  }
}

ObjectContext StreamingInference::ExportObjectContext(TagId object) const {
  ObjectContext ctx;
  auto it = contexts_.find(object);
  if (it != contexts_.end()) ctx = it->second;
  if (runs_ > 0) {
    auto weights = engine_->ExportWeights(object);
    if (!weights.empty()) ctx.prior_weights = std::move(weights);
  }
  return ctx;
}

std::vector<RawReading> StreamingInference::ExportReadings(
    const std::vector<TagId>& tags, TagId object) {
  if (!buffer_.sealed()) buffer_.Seal();
  std::vector<EpochInterval> regions;
  auto it = contexts_.find(object);
  if (it != contexts_.end() && it->second.critical_region.has_value()) {
    regions.push_back(*it->second.critical_region);
  }
  if (last_run_at_ >= 0) {
    regions.push_back(EpochInterval{
        std::max<Epoch>(0, last_run_at_ - options_.recent_history + 1),
        last_run_at_});
  }
  std::vector<RawReading> out;
  for (TagId tag : tags) {
    for (const TagRead& tr : buffer_.HistoryOf(tag)) {
      for (const EpochInterval& iv : regions) {
        if (iv.Contains(tr.time)) {
          out.push_back(RawReading{tr.time, tag, tr.reader});
          break;
        }
      }
    }
  }
  std::sort(out.begin(), out.end(), RawReadingOrder{});
  return out;
}

namespace {

// Snapshot framing version; bump on layout changes so a stale checkpoint
// fails loudly instead of decoding garbage.
constexpr uint8_t kSnapshotVersion = 1;

template <typename Map>
std::vector<TagId> SortedKeys(const Map& map) {
  std::vector<TagId> keys;
  keys.reserve(map.size());
  // lint:allow(unordered-iter): keys are collected then sorted; the
  // serialized order is canonical regardless of map iteration order.
  for (const auto& [tag, value] : map) keys.push_back(tag);
  std::sort(keys.begin(), keys.end());
  return keys;
}

void PutChanges(BufferWriter* w, const std::vector<ChangePointResult>& cps) {
  w->PutVarint(cps.size());
  for (const ChangePointResult& cp : cps) {
    w->PutTagId(cp.object);
    w->PutSignedVarint(cp.time);
    w->PutTagId(cp.old_container);
    w->PutTagId(cp.new_container);
    w->PutDouble(cp.delta);
  }
}

Status GetChanges(BufferReader* r, std::vector<ChangePointResult>* out) {
  uint64_t n = 0;
  RFID_RETURN_NOT_OK(r->GetVarint(&n));
  out->clear();
  for (uint64_t i = 0; i < n; ++i) {
    ChangePointResult cp;
    RFID_RETURN_NOT_OK(r->GetTagId(&cp.object));
    RFID_RETURN_NOT_OK(r->GetSignedVarint(&cp.time));
    RFID_RETURN_NOT_OK(r->GetTagId(&cp.old_container));
    RFID_RETURN_NOT_OK(r->GetTagId(&cp.new_container));
    RFID_RETURN_NOT_OK(r->GetDouble(&cp.delta));
    out->push_back(cp);
  }
  return Status::OK();
}

}  // namespace

void StreamingInference::EncodeSnapshot(BufferWriter* w) {
  w->PutU8(kSnapshotVersion);

  // Retained history buffer (the migration codec's shared delta layout).
  if (!buffer_.sealed()) buffer_.Seal();
  const auto& readings = buffer_.readings();
  w->PutVarint(readings.size());
  Epoch prev_time = 0;
  uint64_t prev_tag = 0;
  for (const RawReading& r : readings) {
    PutDeltaReading(*w, r, prev_time, prev_tag);
  }

  // Run cursor.
  w->PutSignedVarint(next_run_);
  w->PutSignedVarint(last_run_at_);
  w->PutVarint(static_cast<uint64_t>(runs_));

  // Per-object contexts, at full double precision (the migration envelope
  // collapses weights to float and drops critical_region_gap; checkpoints
  // must restore the exact local state).
  const std::vector<TagId> ctx_keys = SortedKeys(contexts_);
  w->PutVarint(ctx_keys.size());
  for (TagId tag : ctx_keys) {
    const ObjectContext& ctx = contexts_.at(tag);
    w->PutTagId(tag);
    w->PutU8(ctx.critical_region.has_value() ? 1 : 0);
    if (ctx.critical_region.has_value()) {
      w->PutSignedVarint(ctx.critical_region->begin);
      w->PutSignedVarint(ctx.critical_region->end);
    }
    w->PutDouble(ctx.critical_region_gap);
    w->PutSignedVarint(ctx.barrier);
    w->PutVarint(ctx.prior_weights.size());
    for (const auto& [ctag, weight] : ctx.prior_weights) {
      w->PutTagId(ctag);
      w->PutDouble(weight);
    }
  }

  for (const auto* map : {&change_overrides_, &imported_beliefs_}) {
    const std::vector<TagId> keys = SortedKeys(*map);
    w->PutVarint(keys.size());
    for (TagId tag : keys) {
      w->PutTagId(tag);
      w->PutTagId(map->at(tag));
    }
  }

  PutChanges(w, last_changes_);
  PutChanges(w, all_changes_);

  const std::vector<TagId> track_keys = SortedKeys(location_track_);
  w->PutVarint(track_keys.size());
  for (TagId tag : track_keys) {
    const std::vector<TagRead>& track = location_track_.at(tag);
    w->PutTagId(tag);
    w->PutVarint(track.size());
    for (const TagRead& tr : track) {
      w->PutSignedVarint(tr.time);
      w->PutVarint(static_cast<uint64_t>(tr.reader));
    }
  }

  // Last-run containment results of the engine: universe, candidate
  // weights, assignment.
  w->PutVarint(engine_->container_tags().size());
  for (TagId c : engine_->container_tags()) w->PutTagId(c);
  w->PutVarint(engine_->object_tags().size());
  for (TagId o : engine_->object_tags()) {
    w->PutTagId(o);
    const auto weights = engine_->ExportWeights(o);
    w->PutVarint(weights.size());
    for (const auto& [ctag, weight] : weights) {
      w->PutTagId(ctag);
      w->PutDouble(weight);
    }
    w->PutTagId(engine_->ContainerOf(o));
  }
}

Status StreamingInference::RestoreSnapshot(BufferReader* r) {
  uint8_t version = 0;
  RFID_RETURN_NOT_OK(r->GetU8(&version));
  if (version != kSnapshotVersion) {
    return Status::Corruption("unsupported streaming snapshot version");
  }

  uint64_t n_readings = 0;
  RFID_RETURN_NOT_OK(r->GetVarint(&n_readings));
  Epoch prev_time = 0;
  uint64_t prev_tag = 0;
  for (uint64_t i = 0; i < n_readings; ++i) {
    RawReading reading;
    RFID_RETURN_NOT_OK(GetDeltaReading(*r, &reading, prev_time, prev_tag));
    buffer_.Add(reading);
  }

  RFID_RETURN_NOT_OK(r->GetSignedVarint(&next_run_));
  RFID_RETURN_NOT_OK(r->GetSignedVarint(&last_run_at_));
  uint64_t runs = 0;
  RFID_RETURN_NOT_OK(r->GetVarint(&runs));
  runs_ = static_cast<int>(runs);

  uint64_t n_contexts = 0;
  RFID_RETURN_NOT_OK(r->GetVarint(&n_contexts));
  contexts_.clear();
  for (uint64_t i = 0; i < n_contexts; ++i) {
    TagId tag;
    RFID_RETURN_NOT_OK(r->GetTagId(&tag));
    ObjectContext ctx;
    uint8_t has_cr = 0;
    RFID_RETURN_NOT_OK(r->GetU8(&has_cr));
    if (has_cr != 0) {
      EpochInterval cr;
      RFID_RETURN_NOT_OK(r->GetSignedVarint(&cr.begin));
      RFID_RETURN_NOT_OK(r->GetSignedVarint(&cr.end));
      ctx.critical_region = cr;
    }
    RFID_RETURN_NOT_OK(r->GetDouble(&ctx.critical_region_gap));
    RFID_RETURN_NOT_OK(r->GetSignedVarint(&ctx.barrier));
    uint64_t n_weights = 0;
    RFID_RETURN_NOT_OK(r->GetVarint(&n_weights));
    for (uint64_t j = 0; j < n_weights; ++j) {
      TagId ctag;
      double weight = 0.0;
      RFID_RETURN_NOT_OK(r->GetTagId(&ctag));
      RFID_RETURN_NOT_OK(r->GetDouble(&weight));
      ctx.prior_weights.emplace_back(ctag, weight);
    }
    contexts_[tag] = std::move(ctx);
  }

  for (auto* map : {&change_overrides_, &imported_beliefs_}) {
    uint64_t n = 0;
    RFID_RETURN_NOT_OK(r->GetVarint(&n));
    map->clear();
    for (uint64_t i = 0; i < n; ++i) {
      TagId object;
      TagId container;
      RFID_RETURN_NOT_OK(r->GetTagId(&object));
      RFID_RETURN_NOT_OK(r->GetTagId(&container));
      (*map)[object] = container;
    }
  }

  RFID_RETURN_NOT_OK(GetChanges(r, &last_changes_));
  RFID_RETURN_NOT_OK(GetChanges(r, &all_changes_));

  uint64_t n_tracks = 0;
  RFID_RETURN_NOT_OK(r->GetVarint(&n_tracks));
  location_track_.clear();
  for (uint64_t i = 0; i < n_tracks; ++i) {
    TagId tag;
    RFID_RETURN_NOT_OK(r->GetTagId(&tag));
    uint64_t n = 0;
    RFID_RETURN_NOT_OK(r->GetVarint(&n));
    std::vector<TagRead>& track = location_track_[tag];
    for (uint64_t j = 0; j < n; ++j) {
      TagRead tr;
      RFID_RETURN_NOT_OK(r->GetSignedVarint(&tr.time));
      uint64_t reader = 0;
      RFID_RETURN_NOT_OK(r->GetVarint(&reader));
      tr.reader = static_cast<LocationId>(reader);
      track.push_back(tr);
    }
  }

  uint64_t n_containers = 0;
  RFID_RETURN_NOT_OK(r->GetVarint(&n_containers));
  std::vector<TagId> container_tags;
  for (uint64_t i = 0; i < n_containers; ++i) {
    TagId tag;
    RFID_RETURN_NOT_OK(r->GetTagId(&tag));
    container_tags.push_back(tag);
  }
  uint64_t n_objects = 0;
  RFID_RETURN_NOT_OK(r->GetVarint(&n_objects));
  std::vector<RFInfer::RestoredObjectResult> objects;
  for (uint64_t i = 0; i < n_objects; ++i) {
    RFInfer::RestoredObjectResult ro;
    RFID_RETURN_NOT_OK(r->GetTagId(&ro.tag));
    uint64_t n_weights = 0;
    RFID_RETURN_NOT_OK(r->GetVarint(&n_weights));
    for (uint64_t j = 0; j < n_weights; ++j) {
      TagId ctag;
      double weight = 0.0;
      RFID_RETURN_NOT_OK(r->GetTagId(&ctag));
      RFID_RETURN_NOT_OK(r->GetDouble(&weight));
      ro.weights.emplace_back(ctag, weight);
    }
    RFID_RETURN_NOT_OK(r->GetTagId(&ro.assigned));
    objects.push_back(std::move(ro));
  }
  engine_->RestoreResults(std::move(container_tags), objects);
  return Status::OK();
}

}  // namespace rfid
