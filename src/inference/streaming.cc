#include "inference/streaming.h"

#include <algorithm>

#include "common/stopwatch.h"

namespace rfid {

StreamingInference::StreamingInference(const ReadRateModel* model,
                                       const InterrogationSchedule* schedule,
                                       StreamingOptions options)
    : model_(model), schedule_(schedule), options_(options) {
  engine_ = std::make_unique<RFInfer>(model_, schedule_, options_.inference);
  next_run_ = options_.inference_period;
  if (options_.arena_index) buffer_.SetArena(&window_arena_);
  buffer_.EnableColumns(options_.soa_columns);
}

void StreamingInference::SetUniverse(std::vector<TagId> containers,
                                     std::vector<TagId> objects) {
  has_universe_ = true;
  has_universe_kinds_ = false;
  universe_containers_ = std::move(containers);
  universe_objects_ = std::move(objects);
}

void StreamingInference::SetUniverseKinds(TagKind container_kind,
                                          TagKind object_kind) {
  has_universe_ = false;
  has_universe_kinds_ = true;
  universe_container_kind_ = container_kind;
  universe_object_kind_ = object_kind;
}

void StreamingInference::Observe(const RawReading& reading) {
  buffer_.Add(reading);
}

void StreamingInference::ObserveBatch(const RawReading* readings, size_t n) {
  buffer_.Append(readings, n);
}

void StreamingInference::ObserveBatch(const ReadingColumnsView& view) {
  buffer_.Append(view);
}

int StreamingInference::AdvanceTo(Epoch now) {
  int ran = 0;
  while (next_run_ <= now) {
    RFID_CHECK_OK(RunNow(next_run_));
    next_run_ += options_.inference_period;
    ++ran;
  }
  return ran;
}

Status StreamingInference::RunNow(Epoch now) {
  buffer_.Seal();
  Epoch window_begin = 0;
  switch (options_.truncation) {
    case TruncationMethod::kAll:
      window_begin = 0;
      break;
    case TruncationMethod::kWindow:
      window_begin = std::max<Epoch>(0, now - options_.window_size + 1);
      break;
    case TruncationMethod::kCriticalRegion:
      window_begin = std::max<Epoch>(0, now - options_.recent_history + 1);
      break;
  }

  if (has_universe_) {
    engine_->SetUniverse(universe_containers_, universe_objects_);
  } else if (has_universe_kinds_) {
    // Kind-derived universe: re-scanned before every run so tags that
    // appeared since the last run join their role immediately.
    std::vector<TagId> containers;
    std::vector<TagId> objects;
    for (TagId tag : buffer_.Tags()) {
      if (tag.kind() == universe_container_kind_) {
        containers.push_back(tag);
      } else if (tag.kind() == universe_object_kind_) {
        objects.push_back(tag);
      }
    }
    engine_->SetUniverse(std::move(containers), std::move(objects));
  }
  engine_->ClearObjectContexts();
  if (options_.truncation == TruncationMethod::kCriticalRegion) {
    for (const auto& [tag, ctx] : contexts_) {
      engine_->SetObjectContext(tag, ctx);
    }
  } else {
    // Barriers and priors still apply without CR truncation.
    for (const auto& [tag, ctx] : contexts_) {
      ObjectContext no_cr = ctx;
      no_cr.critical_region.reset();
      engine_->SetObjectContext(tag, no_cr);
    }
  }

  Stopwatch timer;
  RFID_RETURN_NOT_OK(engine_->Run(buffer_, window_begin, now));

  last_changes_.clear();
  if (options_.detect_changes) {
    last_changes_ = engine_->DetectChangePoints(options_.change_threshold);
    for (const ChangePointResult& cp : last_changes_) {
      all_changes_.push_back(cp);
      ObjectContext& ctx = contexts_[cp.object];
      ctx.barrier = std::max(ctx.barrier, cp.time);
      // The critical region preceding the change no longer describes the
      // object's containment.
      if (ctx.critical_region.has_value() &&
          ctx.critical_region->end <= cp.time) {
        ctx.critical_region.reset();
      }
      change_overrides_[cp.object] = cp.new_container;
    }
    // An object whose assignment now matches its override has "caught up".
    for (auto it = change_overrides_.begin();
         it != change_overrides_.end();) {
      if (engine_->ContainerOf(it->first) == it->second) {
        it = change_overrides_.erase(it);
      } else {
        ++it;
      }
    }
  }

  if (options_.truncation == TruncationMethod::kCriticalRegion) {
    auto crs = engine_->FindCriticalRegions(options_.cr_window,
                                            options_.cr_gap_threshold);
    for (const auto& [tag, cr] : crs) {
      ObjectContext& ctx = contexts_[tag];
      // Replace a stored region only when the new one's evidence gap is
      // comparable or better; co-location noise must not displace a
      // genuinely discriminative span.
      if (!ctx.critical_region.has_value() ||
          cr.gap >= 0.5 * ctx.critical_region_gap) {
        ctx.critical_region = cr.window;
        ctx.critical_region_gap = cr.gap;
      }
    }
  }

  // Accumulate the location track: the monitoring system's view of "the
  // latest estimate at or before t" must survive across runs even though
  // each run only covers its own window.
  for (TagId c : engine_->container_tags()) {
    auto& track = location_track_[c];
    for (Epoch t = std::max(window_begin, last_run_at_ + 1); t <= now; ++t) {
      const LocationId loc = engine_->LocationOf(c, t);
      if (loc == kNoLocation) continue;
      // Store change points of the estimate only (sparse).
      if (track.empty() || track.back().reader != loc) {
        track.push_back(TagRead{t, loc});
      }
    }
  }

  // Local evidence supersedes beliefs imported with migrated state.
  for (auto it = imported_beliefs_.begin(); it != imported_beliefs_.end();) {
    if (engine_->ContainerOf(it->first).valid()) {
      it = imported_beliefs_.erase(it);
    } else {
      ++it;
    }
  }

  last_seconds_ = timer.ElapsedSeconds();
  total_seconds_ += last_seconds_;
  ++runs_;
  last_run_at_ = now;

  // Shrink the buffer to what the next run can possibly need.
  const Epoch next_now = now + options_.inference_period;
  switch (options_.truncation) {
    case TruncationMethod::kAll:
      break;  // keep everything
    case TruncationMethod::kWindow:
      CompactBuffer(std::max<Epoch>(0, next_now - options_.window_size + 1));
      break;
    case TruncationMethod::kCriticalRegion:
      CompactBuffer(
          std::max<Epoch>(0, next_now - options_.recent_history + 1));
      break;
  }
  return Status::OK();
}

void StreamingInference::CompactBuffer(Epoch next_window_begin) {
  // Keep recent readings, plus -- per tag -- readings inside the tag's own
  // critical region (objects) or inside the critical region of an object
  // that lists the tag as a candidate container. "Readings of the object
  // and its possible containers outside the critical region will be all
  // ignored" (Section 4.1).
  std::unordered_map<TagId, std::vector<EpochInterval>> keep;
  for (const auto& [tag, ctx] : contexts_) {
    if (!ctx.critical_region.has_value()) continue;
    keep[tag].push_back(*ctx.critical_region);
    for (TagId container : engine_->CandidatesOf(tag)) {
      keep[container].push_back(*ctx.critical_region);
    }
  }
  // In place so the buffer keeps its arena binding and columns setting;
  // the trace is resealed (and the index rebuilt) at the next run.
  buffer_.RetainIf([&](const RawReading& r) {
    if (r.time >= next_window_begin) return true;
    auto it = keep.find(r.tag);
    if (it == keep.end()) return false;
    for (const EpochInterval& iv : it->second) {
      if (iv.Contains(r.time)) return true;
    }
    return false;
  });
}

TagId StreamingInference::ContainerOf(TagId object) const {
  auto it = change_overrides_.find(object);
  if (it != change_overrides_.end()) return it->second;
  TagId local = engine_->ContainerOf(object);
  if (local.valid()) return local;
  auto imported = imported_beliefs_.find(object);
  return imported == imported_beliefs_.end() ? kNoTag : imported->second;
}

void StreamingInference::SetImportedBelief(TagId object, TagId container) {
  if (container.valid()) imported_beliefs_[object] = container;
}

LocationId StreamingInference::LocationOf(TagId tag, Epoch t) const {
  auto it = location_track_.find(tag);
  if (it == location_track_.end()) {
    // Objects inherit their container's track.
    TagId container = ContainerOf(tag);
    if (container.valid() && container != tag) {
      return LocationOf(container, t);
    }
    return engine_->LocationOf(tag, t);
  }
  const auto& track = it->second;
  auto pos = std::upper_bound(
      track.begin(), track.end(), t,
      [](Epoch t_, const TagRead& tr) { return t_ < tr.time; });
  if (pos == track.begin()) return kNoLocation;
  return (pos - 1)->reader;
}

void StreamingInference::ImportObjectContext(TagId object,
                                             ObjectContext context) {
  ObjectContext& ctx = contexts_[object];
  ctx.barrier = std::max(ctx.barrier, context.barrier);
  if (context.critical_region.has_value()) {
    ctx.critical_region = context.critical_region;
  }
  // Imported collapsed weights add to any existing priors: "the inference
  // algorithm at a new location simply adds the old transferred weights to
  // the new weights" (Section 4.1).
  for (const auto& [tag, w] : context.prior_weights) {
    bool merged = false;
    for (auto& [etag, ew] : ctx.prior_weights) {
      if (etag == tag) {
        ew += w;
        merged = true;
        break;
      }
    }
    if (!merged) ctx.prior_weights.emplace_back(tag, w);
  }
}

ObjectContext StreamingInference::ExportObjectContext(TagId object) const {
  ObjectContext ctx;
  auto it = contexts_.find(object);
  if (it != contexts_.end()) ctx = it->second;
  if (runs_ > 0) {
    auto weights = engine_->ExportWeights(object);
    if (!weights.empty()) ctx.prior_weights = std::move(weights);
  }
  return ctx;
}

std::vector<RawReading> StreamingInference::ExportReadings(
    const std::vector<TagId>& tags, TagId object) {
  if (!buffer_.sealed()) buffer_.Seal();
  std::vector<EpochInterval> regions;
  auto it = contexts_.find(object);
  if (it != contexts_.end() && it->second.critical_region.has_value()) {
    regions.push_back(*it->second.critical_region);
  }
  if (last_run_at_ >= 0) {
    regions.push_back(EpochInterval{
        std::max<Epoch>(0, last_run_at_ - options_.recent_history + 1),
        last_run_at_});
  }
  std::vector<RawReading> out;
  for (TagId tag : tags) {
    for (const TagRead& tr : buffer_.HistoryOf(tag)) {
      for (const EpochInterval& iv : regions) {
        if (iv.Contains(tr.time)) {
          out.push_back(RawReading{tr.time, tag, tr.reader});
          break;
        }
      }
    }
  }
  std::sort(out.begin(), out.end(), RawReadingOrder{});
  return out;
}

}  // namespace rfid
