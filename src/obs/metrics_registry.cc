#include "obs/metrics_registry.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/status.h"

namespace rfid {
namespace obs {

double HistogramSnapshot::nan_() {
  return std::numeric_limits<double>::quiet_NaN();
}

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return nan_();
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, nearest-rank with interpolation
  // inside the bucket that holds it).
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  int64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const int64_t in_bucket = buckets[b];
    if (static_cast<double>(seen + in_bucket) < rank) {
      seen += in_bucket;
      continue;
    }
    // Interpolate linearly across the bucket's value range [lo, hi).
    const double lo = b == 0 ? 0.0 : static_cast<double>(int64_t{1}
                                                         << (b - 1));
    const double hi = b == 0 ? 1.0
                             : (b >= 63 ? static_cast<double>(max)
                                        : static_cast<double>(int64_t{1}
                                                              << b));
    // A fractional rank can sit between the previous bucket's last sample
    // (rank == seen) and this bucket's first (rank == seen + 1), making
    // the raw fraction negative; clamp so the value stays inside this
    // bucket and quantiles stay monotone in q.
    const double within =
        in_bucket <= 1
            ? 0.0
            : std::clamp((rank - static_cast<double>(seen) - 1.0) /
                             static_cast<double>(in_bucket - 1),
                         0.0, 1.0);
    const double v = lo + within * (hi - lo);
    // The exact min/max are tracked; clamp so single-bucket histograms
    // report real observed bounds instead of bucket edges.
    return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
  }
  return static_cast<double>(max);
}

int Histogram::BucketOf(int64_t value) {
  if (value <= 0) return 0;
  // bit_width of a positive int64 is in [1, 63]: always a valid bucket.
  return static_cast<int>(std::bit_width(static_cast<uint64_t>(value)));
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // Racy min/max update: a lost race between two concurrent records can
  // only leave a value that some thread genuinely observed.
  int64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.buckets.resize(kNumBuckets);
  for (int b = 0; b < kNumBuckets; ++b) {
    const int64_t n = buckets_[b].load(std::memory_order_relaxed);
    s.buckets[static_cast<size_t>(b)] = n;
    s.count += n;
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  return s;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  for (auto& [n, inst] : instruments_) {
    if (n == name) {
      RFID_CHECK_OK(inst.counter != nullptr
                        ? Status::OK()
                        : Status::InvalidArgument(
                              "metric '" + name +
                              "' already registered with another type"));
      return inst.counter.get();
    }
  }
  Instrument inst;
  inst.counter = std::make_unique<Counter>();
  Counter* out = inst.counter.get();
  instruments_.emplace_back(name, std::move(inst));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  for (auto& [n, inst] : instruments_) {
    if (n == name) {
      RFID_CHECK_OK(inst.gauge != nullptr
                        ? Status::OK()
                        : Status::InvalidArgument(
                              "metric '" + name +
                              "' already registered with another type"));
      return inst.gauge.get();
    }
  }
  Instrument inst;
  inst.gauge = std::make_unique<Gauge>();
  Gauge* out = inst.gauge.get();
  instruments_.emplace_back(name, std::move(inst));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  for (auto& [n, inst] : instruments_) {
    if (n == name) {
      RFID_CHECK_OK(inst.histogram != nullptr
                        ? Status::OK()
                        : Status::InvalidArgument(
                              "metric '" + name +
                              "' already registered with another type"));
      return inst.histogram.get();
    }
  }
  Instrument inst;
  inst.histogram = std::make_unique<Histogram>();
  Histogram* out = inst.histogram.get();
  instruments_.emplace_back(name, std::move(inst));
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Entries() const {
  std::vector<Entry> out;
  {
    MutexLock lock(&mu_);
    out.reserve(instruments_.size());
    for (const auto& [name, inst] : instruments_) {
      Entry e;
      e.name = name;
      e.counter = inst.counter.get();
      e.gauge = inst.gauge.get();
      e.histogram = inst.histogram.get();
      out.push_back(std::move(e));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

}  // namespace obs
}  // namespace rfid
