// Minimal JSON document model for the telemetry layer: RunReport files
// (BENCH_*.json) and Chrome trace_event exports are built as JsonValue
// trees and serialized with Dump; tests (and the CI validator) re-parse
// the emitted files with Parse to prove well-formedness and schema
// round-trips without an external dependency.
//
// Scope is deliberately small -- exactly the JSON the repo emits and
// validates: null/bool/int64/double/string/array/object, UTF-8 passed
// through verbatim, \uXXXX emitted for control characters only. Non-finite
// doubles serialize as null (JSON has no NaN; the accuracy accessors'
// NaN-when-unmeasured convention maps onto null fields).
#ifndef RFID_OBS_JSON_H_
#define RFID_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace rfid {
namespace obs {

/// One JSON value. Objects preserve insertion order (reports should diff
/// stably across runs), so members live in a vector, not a map.
class JsonValue {
 public:
  enum class Kind : uint8_t {
    kNull = 0,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;  // null
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(int64_t i) : kind_(Kind::kInt), int_(i) {}
  JsonValue(int i) : kind_(Kind::kInt), int_(i) {}
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}

  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool AsBool() const { return bool_; }
  int64_t AsInt() const { return int_; }
  /// Numeric view: ints widen to double.
  double AsDouble() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return string_; }

  // ---- Array ----
  void Append(JsonValue v) { items_.push_back(std::move(v)); }
  const std::vector<JsonValue>& items() const { return items_; }

  // ---- Object ----
  /// Sets (or replaces) a member, preserving first-insertion order.
  void Set(const std::string& key, JsonValue v);
  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Serializes the tree. `indent` > 0 pretty-prints (2-space style);
  /// 0 emits the compact single-line form.
  std::string Dump(int indent = 2) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Numbers with a '.', exponent, or out-of-int64 magnitude parse as
/// doubles; everything else integral parses as kInt.
Result<JsonValue> ParseJson(const std::string& text);

/// Writes `Dump(indent)` plus a trailing newline to `path`.
Status WriteJsonFile(const JsonValue& value, const std::string& path,
                     int indent = 2);

}  // namespace obs
}  // namespace rfid

#endif  // RFID_OBS_JSON_H_
