#include "obs/telemetry.h"

#include <chrono>
#include <cstdlib>

namespace rfid {
namespace obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kQueueDrain:
      return "queue_drain";
    case Phase::kDirectory:
      return "directory";
    case Phase::kFlushEncode:
      return "flush_encode";
    case Phase::kSnapshotScan:
      return "snapshot_scan";
    case Phase::kWindowCompute:
      return "window_compute";
    case Phase::kInference:
      return "inference";
    case Phase::kMigrateEncode:
      return "migrate_encode";
    case Phase::kTransportSend:
      return "transport_send";
    case Phase::kFrameEncode:
      return "frame_encode";
    case Phase::kKernelWrite:
      return "kernel_write";
    case Phase::kKernelRead:
      return "kernel_read";
    case Phase::kCrashRecovery:
      return "crash_recovery";
    case Phase::kFlushOverlap:
      return "flush_overlap";
    case Phase::kWalAppend:
      return "wal_append";
    case Phase::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

int PhaseDefaultTrack(Phase phase) {
  switch (phase) {
    case Phase::kTransportSend:
    case Phase::kFrameEncode:
    case Phase::kKernelWrite:
    case Phase::kKernelRead:
      return kTransportTrack;
    default:
      return kDriverTrack;
  }
}

std::string TracePathFromEnv() {
  const char* env = std::getenv("RFID_TRACE");
  return env == nullptr ? std::string() : std::string(env);
}

Telemetry::Telemetry(std::string trace_path)
    : trace_path_(std::move(trace_path)) {
  for (int p = 0; p < kNumPhases; ++p) {
    phase_histograms_[p] = registry_.GetHistogram(
        std::string("phase/") + PhaseName(static_cast<Phase>(p)));
  }
  if (!trace_path_.empty()) sink_ = std::make_unique<TraceSink>();
}

void Telemetry::AddWireBytes(int kind_index, const std::string& kind_name,
                             int64_t bytes) {
  const size_t i = static_cast<size_t>(kind_index);
  if (i >= sizeof(kind_bytes_) / sizeof(kind_bytes_[0])) return;
  // Lazily resolved once per kind, then lock-free; Send runs only in the
  // replay's serial phases, so the lazy fill is single-threaded.
  if (kind_bytes_[i] == nullptr) {
    kind_bytes_[i] = registry_.GetCounter("net/bytes/kind=" + kind_name);
    kind_messages_[i] =
        registry_.GetCounter("net/messages/kind=" + kind_name);
  }
  kind_bytes_[i]->Add(bytes);
  kind_messages_[i]->Add(1);
}

int64_t PhaseTimer::Now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace obs
}  // namespace rfid
