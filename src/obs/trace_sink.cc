#include "obs/trace_sink.h"

#include <cstdio>

#include "obs/json.h"

namespace rfid {
namespace obs {

void TraceSink::Add(const TraceEvent& event) {
  MutexLock lock(&mu_);
  events_.push_back(event);
}

size_t TraceSink::size() const {
  MutexLock lock(&mu_);
  return events_.size();
}

namespace {

/// Chrome metadata record naming a track ("thread_name").
JsonValue TrackName(int tid, const std::string& name) {
  JsonValue m = JsonValue::Object();
  m.Set("name", "thread_name");
  m.Set("ph", "M");
  m.Set("pid", 1);
  m.Set("tid", tid);
  JsonValue args = JsonValue::Object();
  args.Set("name", name);
  m.Set("args", std::move(args));
  return m;
}

}  // namespace

std::string TraceSink::ToJson(int num_sites) const {
  std::vector<TraceEvent> events;
  {
    MutexLock lock(&mu_);
    events = events_;
  }
  JsonValue trace_events = JsonValue::Array();
  trace_events.Append(TrackName(kDriverTrack, "driver (serial phases)"));
  trace_events.Append(TrackName(kTransportTrack, "transport"));
  for (int s = 0; s < num_sites; ++s) {
    trace_events.Append(
        TrackName(kFirstSiteTrack + s, "site " + std::to_string(s)));
  }
  for (const TraceEvent& e : events) {
    JsonValue slice = JsonValue::Object();
    slice.Set("name", e.name);
    slice.Set("ph", "X");
    slice.Set("pid", 1);
    slice.Set("tid", e.track);
    // Trace Event ts/dur are microseconds; fractional values keep the
    // nanosecond resolution.
    slice.Set("ts", static_cast<double>(e.start_ns) / 1e3);
    slice.Set("dur", static_cast<double>(e.dur_ns) / 1e3);
    JsonValue args = JsonValue::Object();
    args.Set("epoch", static_cast<int64_t>(e.epoch));
    slice.Set("args", std::move(args));
    trace_events.Append(std::move(slice));
  }
  JsonValue root = JsonValue::Object();
  root.Set("traceEvents", std::move(trace_events));
  root.Set("displayTimeUnit", "ms");
  // Compact form: trace files are large and tooling-consumed; humans read
  // them through Perfetto, not an editor.
  return root.Dump(/*indent=*/0);
}

Status TraceSink::WriteJson(const std::string& path, int num_sites) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file " + path);
  }
  const std::string text = ToJson(num_sites);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool nl = std::fputc('\n', f) != EOF;
  if (std::fclose(f) != 0 || written != text.size() || !nl) {
    return Status::IOError("short write to trace file " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace rfid
