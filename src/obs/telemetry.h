// The telemetry bundle one replay (or bench) carries: a MetricsRegistry,
// pre-registered per-phase latency histograms, per-message-kind byte/count
// counters, and an optional Chrome-trace sink. DistributedSystem owns one
// and hands the pointer down to Network / SocketTransport / Site; a null
// Telemetry* (DistributedOptions::collect_metrics = false) turns every
// instrumentation site into a branch-on-null no-op, which is how the
// "<2% when off" hot-path budget is enforced and measured
// (bench_scalability, EXPERIMENTS.md).
//
// Phases are a closed enum rather than strings so the hot path indexes a
// histogram array instead of hashing names under a lock; the registry
// still carries the same instruments under "phase/<name>" names, so
// reports and ad-hoc registry users see one namespace.
#ifndef RFID_OBS_TELEMETRY_H_
#define RFID_OBS_TELEMETRY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.h"
#include "obs/metrics_registry.h"
#include "obs/trace_sink.h"

namespace rfid {
namespace obs {

/// Every instrumented span of the replay. Serial driver phases, per-site
/// parallel phases, and transport-level spans share the enum: one
/// "phase/<name>" histogram each, keyed into the trace by track.
enum class Phase : uint8_t {
  // Serial driver phases (DistributedSystem::Run, kDriverTrack).
  kQueueDrain = 0,    ///< Network::DeliverDue sweep at each event epoch
  kDirectory,         ///< injections/arrivals/departures ONS bookkeeping
  kFlushEncode,       ///< centralized: serial batch encode + Send
  kSnapshotScan,      ///< boundary accuracy sampling (RecordSnapshot)
  // Per-site parallel phases (SiteExecutor workers, per-site tracks).
  kWindowCompute,     ///< DeliverArrivals + ObserveBatch window
  kInference,         ///< AdvanceTo at an inference boundary
  kMigrateEncode,     ///< ExportTransfer state collect + encode + Send
  // Transport-level spans (kTransportTrack).
  kTransportSend,     ///< Network::Send through the backend
  kFrameEncode,       ///< socket backend: frame serialization
  kKernelWrite,       ///< socket backend: write(2) loop
  kKernelRead,        ///< socket backend: accept/read/decode pump
  // Fault-tolerance phases (kDriverTrack; appended to keep values stable).
  kCrashRecovery,     ///< rebuild of a crashed site from its raw trace
  // Pipelined-flush overlap (appended to keep values stable). Runs on a
  // per-site track: the flush encode of a remote site's batch overlapping
  // the server's window compute on the executor.
  kFlushOverlap,      ///< centralized: batch encode overlapped on workers
  // Durability phases (dist/durability.h; appended to keep values stable).
  // kWalAppend runs on the driver track (the WAL absorbs inbound frames
  // during the serial drain sweep); kCheckpoint likewise (checkpoints cut
  // in the serial boundary phase, after exports).
  kWalAppend,         ///< durable sites: frame WAL append + batched fsync
  kCheckpoint,        ///< durable sites: checkpoint encode + atomic install
};

inline constexpr int kNumPhases = 15;

/// Stable lowercase name ("window_compute"); the registry key is
/// "phase/" + PhaseName.
const char* PhaseName(Phase phase);

/// Trace track a phase's slices belong on when no site track applies.
int PhaseDefaultTrack(Phase phase);

/// Trace path selected by the RFID_TRACE environment variable; empty when
/// unset. DistributedOptions::trace_path overrides it.
std::string TracePathFromEnv();

class Telemetry {
 public:
  /// `trace_path` empty = metrics only, no trace collection.
  explicit Telemetry(std::string trace_path = "");

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  bool tracing() const { return sink_ != nullptr; }
  TraceSink* sink() { return sink_.get(); }
  const TraceSink* sink() const { return sink_.get(); }
  const std::string& trace_path() const { return trace_path_; }

  /// Lock-free: the phase histogram array is filled at construction.
  void RecordPhase(Phase phase, int64_t dur_ns) {
    phase_histograms_[static_cast<size_t>(phase)]->Record(dur_ns);
  }
  const Histogram& phase_histogram(Phase phase) const {
    return *phase_histograms_[static_cast<size_t>(phase)];
  }

  /// Byte/message accounting mirror per MessageKind index (the Network
  /// keeps the authoritative totals; these make the per-kind breakdown a
  /// registry citizen so WriteReport exports it uniformly). `kind_index`
  /// is the MessageKind cast to int; `kind_name` its ToString.
  void AddWireBytes(int kind_index, const std::string& kind_name,
                    int64_t bytes);

  /// Wall-clock in the trace sink's time base (0 when not tracing; phase
  /// timing uses its own clock so histograms work without a sink).
  int64_t TraceNowNanos() const {
    return sink_ != nullptr ? sink_->NowNanos() : 0;
  }

 private:
  MetricsRegistry registry_;
  Histogram* phase_histograms_[kNumPhases] = {};
  Counter* kind_bytes_[8] = {};
  Counter* kind_messages_[8] = {};
  std::string trace_path_;
  std::unique_ptr<TraceSink> sink_;
};

/// RAII span: times a phase into its histogram and, when tracing, emits a
/// Chrome slice on `track` tagged with the replay `epoch`. A null
/// telemetry pointer reduces the whole scope to two null checks.
class PhaseTimer {
 public:
  /// `track` < 0 uses the phase's default track. Site phases pass
  /// kFirstSiteTrack + site.
  PhaseTimer(Telemetry* telemetry, Phase phase, Epoch epoch, int track = -1)
      : telemetry_(telemetry), phase_(phase), epoch_(epoch), track_(track) {
    if (telemetry_ == nullptr) return;
    start_ = Now();
    if (telemetry_->tracing()) trace_start_ = telemetry_->TraceNowNanos();
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  ~PhaseTimer() {
    if (telemetry_ == nullptr) return;
    const int64_t dur = Now() - start_;
    telemetry_->RecordPhase(phase_, dur);
    if (telemetry_->tracing()) {
      TraceEvent e;
      e.name = PhaseName(phase_);
      e.track = track_ >= 0 ? track_ : PhaseDefaultTrack(phase_);
      e.start_ns = trace_start_;
      e.dur_ns = dur;
      e.epoch = epoch_;
      telemetry_->sink()->Add(e);
    }
  }

 private:
  static int64_t Now();

  Telemetry* telemetry_;
  Phase phase_;
  Epoch epoch_;
  int track_;
  int64_t start_ = 0;
  int64_t trace_start_ = 0;
};

}  // namespace obs
}  // namespace rfid

#endif  // RFID_OBS_TELEMETRY_H_
