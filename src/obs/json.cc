#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace rfid {
namespace obs {

void JsonValue::Set(const std::string& key, JsonValue v) {
  kind_ = Kind::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(double d, std::string* out) {
  if (!std::isfinite(d)) {
    *out += "null";  // JSON has no NaN/inf; null = "not measured"
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // Keep a numeric marker so the value re-parses as a double, not an int.
  if (std::strpbrk(buf, ".eE") == nullptr) {
    std::snprintf(buf, sizeof(buf), "%.1f", d);
  }
  *out += buf;
}

void Newline(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      *out += std::to_string(int_);
      return;
    case Kind::kDouble:
      AppendDouble(double_, out);
      return;
    case Kind::kString:
      AppendEscaped(string_, out);
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Newline(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Newline(out, indent, depth + 1);
        AppendEscaped(members_[i].first, out);
        *out += indent > 0 ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// ---- Parser ----

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<JsonValue> Parse() {
    SkipSpace();
    JsonValue v;
    RFID_RETURN_NOT_OK(ParseValue(&v, /*depth=*/0));
    SkipSpace();
    if (pos_ != s_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const std::string& what) const {
    return Status::Corruption("JSON parse error at offset " +
                              std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Fail(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseLiteral(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) {
      return Fail(std::string("expected '") + lit + "'");
    }
    pos_ += n;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    RFID_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // The emitter only writes \u00XX (control bytes); decode the
          // BMP code point as UTF-8 so round-trips are exact.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t begin = pos_;
    if (Consume('-')) {
    }
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = s_.substr(begin, pos_ - begin);
    if (token.empty() || token == "-") return Fail("bad number");
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = JsonValue(static_cast<int64_t>(v));
        return Status::OK();
      }
      // Out-of-range integer literal: fall through to double.
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    *out = JsonValue(d);
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipSpace();
    if (pos_ >= s_.size()) return Fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      *out = JsonValue::Object();
      SkipSpace();
      if (Consume('}')) return Status::OK();
      while (true) {
        SkipSpace();
        std::string key;
        RFID_RETURN_NOT_OK(ParseString(&key));
        SkipSpace();
        RFID_RETURN_NOT_OK(Expect(':'));
        JsonValue v;
        RFID_RETURN_NOT_OK(ParseValue(&v, depth + 1));
        out->Set(key, std::move(v));
        SkipSpace();
        if (Consume('}')) return Status::OK();
        RFID_RETURN_NOT_OK(Expect(','));
      }
    }
    if (c == '[') {
      ++pos_;
      *out = JsonValue::Array();
      SkipSpace();
      if (Consume(']')) return Status::OK();
      while (true) {
        JsonValue v;
        RFID_RETURN_NOT_OK(ParseValue(&v, depth + 1));
        out->Append(std::move(v));
        SkipSpace();
        if (Consume(']')) return Status::OK();
        RFID_RETURN_NOT_OK(Expect(','));
      }
    }
    if (c == '"') {
      std::string s;
      RFID_RETURN_NOT_OK(ParseString(&s));
      *out = JsonValue(std::move(s));
      return Status::OK();
    }
    if (c == 't') {
      RFID_RETURN_NOT_OK(ParseLiteral("true"));
      *out = JsonValue(true);
      return Status::OK();
    }
    if (c == 'f') {
      RFID_RETURN_NOT_OK(ParseLiteral("false"));
      *out = JsonValue(false);
      return Status::OK();
    }
    if (c == 'n') {
      RFID_RETURN_NOT_OK(ParseLiteral("null"));
      *out = JsonValue();
      return Status::OK();
    }
    return ParseNumber(out);
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

Status WriteJsonFile(const JsonValue& value, const std::string& path,
                     int indent) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const std::string text = value.Dump(indent);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool nl = std::fputc('\n', f) != EOF;
  if (std::fclose(f) != 0 || written != text.size() || !nl) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace rfid
