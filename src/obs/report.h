// Machine-readable run reports: every bench (and any instrumented run)
// exports the same JSON schema, so BENCH_*.json files form a uniform,
// diffable trajectory instead of per-bench hand-rolled printf formats.
//
// Schema (report_version 1):
//   {
//     "report_version": 1,
//     "bench": "<name>",
//     ...caller Set() scalars (scale, transport, hardware_concurrency)...,
//     "rows": { "<section>": [ {..row..}, ... ], ... },
//     "metrics": {
//       "counters":   { "<name>": <int>, ... },
//       "gauges":     { "<name>": <int>, ... },
//       "histograms": { "<name>": {"count","sum","mean","min","max",
//                                   "p50","p95","p99"}, ... }
//     }
//   }
// Histogram quantiles use the registry's fixed log2 buckets; NaN (empty
// histogram) serializes as JSON null. Keys are emitted in insertion order
// and metrics sorted by name, so two runs of the same bench diff cleanly.
#ifndef RFID_OBS_REPORT_H_
#define RFID_OBS_REPORT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"

namespace rfid {
namespace obs {

inline constexpr int kReportVersion = 1;

class RunReport {
 public:
  explicit RunReport(const std::string& bench_name);

  /// Top-level scalar fields (after the fixed header).
  void Set(const std::string& key, JsonValue value);

  /// Appends one row object to the named section under "rows".
  void AddRow(const std::string& section, JsonValue row);

  /// Dumps `registry` under "metrics" (counters/gauges/histograms with
  /// p50/p95/p99). Replaces any previous dump.
  void AddMetrics(const MetricsRegistry& registry);

  const JsonValue& root() const { return root_; }
  std::string ToJson(int indent = 2) const { return root_.Dump(indent); }

  /// Writes the report to `path` ("BENCH_<bench>.json" by convention).
  Status Write(const std::string& path) const;

 private:
  JsonValue root_ = JsonValue::Object();
};

/// One histogram snapshot as a report object (exposed for tests).
JsonValue HistogramToJson(const HistogramSnapshot& snapshot);

/// Convenience: `report` written to "BENCH_<bench>.json" in the working
/// directory (the convention every bench follows).
Status WriteReport(const RunReport& report, const std::string& bench_name);

}  // namespace obs
}  // namespace rfid

#endif  // RFID_OBS_REPORT_H_
