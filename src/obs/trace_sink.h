// Chrome trace_event sink: collects duration slices during a replay and
// writes the JSON Trace Event Format that chrome://tracing and Perfetto
// load directly, so "where did this run's time go" is a picture instead of
// a guess. One track (tid) per site plus dedicated driver/transport
// tracks; every slice carries the replay epoch it served as an argument,
// so wall-clock slices line up with simulated time.
//
// Thread safety: Add appends under a mutex (slices are phase-granular --
// thousands per run, not millions -- so contention is negligible against
// the work being timed); WriteJson is called once, after the replay.
#ifndef RFID_OBS_TRACE_SINK_H_
#define RFID_OBS_TRACE_SINK_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace rfid {
namespace obs {

/// Reserved track ids (Chrome tid values). Site s uses track
/// kFirstSiteTrack + s.
inline constexpr int kDriverTrack = 0;     ///< serial replay phases
inline constexpr int kTransportTrack = 1;  ///< frame codec + kernel I/O
inline constexpr int kFirstSiteTrack = 2;

/// One completed duration slice ("ph":"X").
struct TraceEvent {
  const char* name = "";  ///< must outlive the sink (string literals)
  int track = kDriverTrack;
  int64_t start_ns = 0;  ///< relative to the sink's epoch
  int64_t dur_ns = 0;
  Epoch epoch = 0;  ///< replay epoch the slice served
};

class TraceSink {
 public:
  TraceSink() : origin_(std::chrono::steady_clock::now()) {}
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Nanoseconds since the sink was created (the trace time base).
  int64_t NowNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  void Add(const TraceEvent& event);

  size_t size() const;

  /// Serializes every slice as Chrome trace JSON:
  ///   {"traceEvents": [...], "displayTimeUnit": "ms"}
  /// with one metadata record naming each track. `num_sites` labels the
  /// per-site tracks ("site 0" ... "site N-1").
  std::string ToJson(int num_sites) const;

  /// ToJson written to `path`.
  Status WriteJson(const std::string& path, int num_sites) const;

 private:
  const std::chrono::steady_clock::time_point origin_;
  mutable Mutex mu_;
  std::vector<TraceEvent> events_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace rfid

#endif  // RFID_OBS_TRACE_SINK_H_
