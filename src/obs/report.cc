#include "obs/report.h"

#include <utility>

namespace rfid {
namespace obs {

RunReport::RunReport(const std::string& bench_name) {
  root_.Set("report_version", kReportVersion);
  root_.Set("bench", bench_name);
}

void RunReport::Set(const std::string& key, JsonValue value) {
  root_.Set(key, std::move(value));
}

void RunReport::AddRow(const std::string& section, JsonValue row) {
  const JsonValue* rows = root_.Find("rows");
  if (rows == nullptr) {
    root_.Set("rows", JsonValue::Object());
    rows = root_.Find("rows");
  }
  // Find returns a const view; Set-with-move below rebuilds the member, so
  // copy out, mutate, write back (reports are built once, size is small).
  JsonValue rows_copy = *rows;
  const JsonValue* section_array = rows_copy.Find(section);
  JsonValue arr =
      section_array == nullptr ? JsonValue::Array() : *section_array;
  arr.Append(std::move(row));
  rows_copy.Set(section, std::move(arr));
  root_.Set("rows", std::move(rows_copy));
}

JsonValue HistogramToJson(const HistogramSnapshot& snapshot) {
  JsonValue h = JsonValue::Object();
  h.Set("count", snapshot.count);
  h.Set("sum", snapshot.sum);
  h.Set("mean", snapshot.Mean());
  h.Set("min", snapshot.count == 0 ? JsonValue() : JsonValue(snapshot.min));
  h.Set("max", snapshot.count == 0 ? JsonValue() : JsonValue(snapshot.max));
  h.Set("p50", snapshot.P50());
  h.Set("p95", snapshot.P95());
  h.Set("p99", snapshot.P99());
  return h;
}

void RunReport::AddMetrics(const MetricsRegistry& registry) {
  JsonValue counters = JsonValue::Object();
  JsonValue gauges = JsonValue::Object();
  JsonValue histograms = JsonValue::Object();
  for (const MetricsRegistry::Entry& e : registry.Entries()) {
    if (e.counter != nullptr) {
      counters.Set(e.name, e.counter->value());
    } else if (e.gauge != nullptr) {
      gauges.Set(e.name, e.gauge->value());
    } else if (e.histogram != nullptr) {
      histograms.Set(e.name, HistogramToJson(e.histogram->Snapshot()));
    }
  }
  JsonValue metrics = JsonValue::Object();
  metrics.Set("counters", std::move(counters));
  metrics.Set("gauges", std::move(gauges));
  metrics.Set("histograms", std::move(histograms));
  root_.Set("metrics", std::move(metrics));
}

Status RunReport::Write(const std::string& path) const {
  return WriteJsonFile(root_, path, /*indent=*/2);
}

Status WriteReport(const RunReport& report, const std::string& bench_name) {
  return report.Write("BENCH_" + bench_name + ".json");
}

}  // namespace obs
}  // namespace rfid
