// Process-wide metrics primitives for the telemetry layer (the
// per-message-kind and per-window breakdowns Section 5 / Table 5 of the
// paper argues from, made first-class instead of re-derived per bench):
// named counters, gauges, and fixed-bucket latency histograms collected in
// a MetricsRegistry and exported into RunReport JSON (obs/report.h).
//
// Concurrency contract: registration (GetCounter/GetHistogram/GetGauge)
// takes a mutex and returns a pointer that stays valid for the registry's
// lifetime; the hot path -- Counter::Add, Histogram::Record, Gauge::Set --
// is lock-free (relaxed atomics). Instruments are therefore safe to hit
// from SiteExecutor worker threads while the registry is concurrently
// handing out instruments to others, which the TSan CI pass exercises
// (tests/obs_test.cc). Telemetry never feeds back into results: every
// value is derived from wall clocks or event counts that the replay
// already performs, so determinism matrices stay bit-identical with
// collection on or off.
#ifndef RFID_OBS_METRICS_REGISTRY_H_
#define RFID_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace rfid {
namespace obs {

/// Monotonic event/byte counter. Lock-free.
class Counter {
 public:
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, in-flight bytes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of a histogram (reads are torn-free per bucket but
/// not across buckets; quantiles over a live histogram are approximate by
/// nature, which is fine for latency reporting).
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;  ///< sum of recorded values (same unit as records)
  int64_t min = 0;  ///< 0 when empty
  int64_t max = 0;
  std::vector<int64_t> buckets;  ///< per-bucket counts (kNumBuckets)

  double Mean() const {
    return count == 0 ? nan_() : static_cast<double>(sum) /
                                     static_cast<double>(count);
  }
  /// Value at quantile q in [0, 1], interpolated within the holding
  /// bucket's range (clamped to the observed min/max). NaN when empty.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

 private:
  static double nan_();
};

/// Fixed-bucket histogram of non-negative int64 samples (the telemetry
/// layer records nanoseconds). Bucket b holds values in [2^(b-1), 2^b)
/// (bucket 0 holds {0}), so 64 buckets cover the full range with ~2x
/// relative quantile error -- the standard log2 latency layout. Record is
/// lock-free.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(int64_t value);
  HistogramSnapshot Snapshot() const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Bucket index holding `value` (exposed for tests).
  static int BucketOf(int64_t value);

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

/// Named instrument directory. Names are flat strings with '/'-separated
/// structure and 'key=value' label segments by convention, e.g.
/// "phase/window_compute", "net/bytes/kind=inference_state",
/// "ons/shard=3/lookups". First Get* with a name creates the instrument;
/// later calls (any thread) return the same pointer. A name denotes one
/// instrument type for the registry's lifetime (checked).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// The process-wide default registry, for contexts without their own
  /// (DistributedSystem runs carry a per-run registry so reports are
  /// isolated).
  static MetricsRegistry& Global();

  struct Entry {
    std::string name;
    const Counter* counter = nullptr;      ///< set for counters
    const Gauge* gauge = nullptr;          ///< set for gauges
    const Histogram* histogram = nullptr;  ///< set for histograms
  };
  /// Every registered instrument, sorted by name (stable report diffs).
  std::vector<Entry> Entries() const;

 private:
  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable Mutex mu_;
  std::vector<std::pair<std::string, Instrument>> instruments_
      GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace rfid

#endif  // RFID_OBS_METRICS_REGISTRY_H_
