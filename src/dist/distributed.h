// The distributed-processing driver (Section 5.2, Figure 3): replays a
// completed SupplyChainSim epoch by epoch against a set of per-site
// processors connected by the byte-accounted Network and coordinated by the
// ONS, or against a single centralized server that every remote site ships
// its raw readings to.
//
//   kDistributed -- one Site per warehouse consumes its own trace; when a
//                   pallet group crosses sites, the departing site
//                   serializes inference/query state (per MigrationMode)
//                   and the destination installs it on arrival; the ONS is
//                   kept current so any object can be located.
//   kCentralized -- the Table 5 baseline: remote sites batch their raw
//                   readings per inference period, delta-encode and gzip
//                   them, and ship them to site 0, which runs one global
//                   inference engine (and the queries, when attached).
//
// Accuracy is surfaced the way the paper plots it: containment error
// against trace/ground_truth sampled at every inference boundary
// (Figures 5(e)/5(f)) -- per containment level when the sites run the
// Appendix A.4 hierarchy (snapshots() for items, case_snapshots() for
// cases) -- plus the merged per-site query alerts (Section 5.4).
//
// Execution model: the replay is event-driven and bulk-synchronous. The
// driver precomputes every epoch at which anything can happen (injections,
// transfer departures/arrivals, inference boundaries, flushes) and walks
// only those events; between events each site's window of readings is
// ingested in one batched call. At each event the driver first advances
// the Network/ONS clocks and serially drains every site's delivery queue
// of frames whose arrival epoch has passed (Network::DeliverDue --
// messages sent at earlier events are in flight until this point, however
// the transport backend carried them). Per-site work (DeliverArrivals +
// ObserveBatch, then AdvanceTo at boundaries) then fans out across a
// SiteExecutor worker pool and joins before the serial boundary phase (ONS
// shard updates/resolves, ExportTransfer, Network::Send, accuracy
// snapshots). Because parallel work touches only site-local state and all
// cross-site effects -- including every sharded-directory mutation, cache
// fill, and frame drain -- are serial, results are bit-identical for every
// num_threads (and directory_shards, and transport backend) value.
#ifndef RFID_DIST_DISTRIBUTED_H_
#define RFID_DIST_DISTRIBUTED_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "dist/executor.h"
#include "dist/network.h"
#include "dist/ons.h"
#include "dist/site.h"
#include "obs/telemetry.h"
#include "query/queries.h"
#include "sim/supply_chain.h"
#include "trace/product_catalog.h"

namespace rfid {

enum class ProcessingMode : uint8_t {
  kDistributed = 0,
  kCentralized = 1,
};

std::string ToString(ProcessingMode mode);

struct DistributedOptions {
  ProcessingMode mode = ProcessingMode::kDistributed;
  SiteOptions site;
  /// Transport backend carrying every framed message: the in-process
  /// fabric or real loopback sockets (dist/transport_socket.h). Defaults
  /// to the RFID_TRANSPORT environment variable ("socket" selects the
  /// socket backend), so whole test binaries can be re-run against real
  /// sockets. Results are bit-identical across backends.
  TransportKind transport = TransportKindFromEnv();
  /// Per-link latency model (arrival epoch = send epoch + latency).
  /// Default all-zero: messages are deliverable at the boundary of the
  /// epoch they were sent, the pre-transport synchronous semantics.
  NetworkOptions network;
  /// Instantiate Q1/Q2 at every site (requires a catalog and sensor stream
  /// at construction).
  bool attach_queries = false;
  ExposureQueryConfig q1 = ExposureQuery::Q1Config();
  ExposureQueryConfig q2 = ExposureQuery::Q2Config();
  /// Threads executing per-site windows: 0 (or 1) = serial on the replay
  /// thread, kAutoThreads = hardware concurrency. Alerts, accuracy
  /// snapshots, and byte counts are bit-identical across all values.
  int num_threads = kAutoThreads;
  /// ONS directory shards (hash partition of the tag->site map, each shard
  /// hosted by a real site); 0 = one shard per site. Shard count changes
  /// only which links carry the directory bytes, never the totals.
  int directory_shards = 0;
  /// Per-site resolver caching of directory lookups (invalidated on
  /// moves); repeat resolutions of an unmoved object cost zero wire bytes.
  bool directory_cache = true;
  /// TTL-based resolver-cache expiry in epochs (OnsOptions::cache_ttl);
  /// 0 = exact invalidation. Nonzero values trade staleness for DNS
  /// fidelity; the replay tolerates it because exports are driven by the
  /// transfer record (a stale directory answer costs the same wire bytes
  /// but never mis-routes the state).
  Epoch directory_cache_ttl = 0;
  /// Collect phase histograms and per-kind wire counters during Run
  /// (obs/telemetry.h). Off = no Telemetry is constructed and every
  /// instrumentation point reduces to a null check -- the configuration
  /// the <2% overhead budget is measured against. Telemetry never feeds
  /// back into results either way (executor_test proves bit-identity).
  bool collect_metrics = true;
  /// Also record a Chrome trace (chrome://tracing / Perfetto) and write it
  /// here at the end of Run. Empty = consult the RFID_TRACE environment
  /// variable; set `trace` to false to ignore both (benches that construct
  /// many systems trace only one representative run).
  std::string trace_path;
  bool trace = true;
};

/// Drives a finished simulation through the distributed (or centralized)
/// pipeline. The sim must outlive the system and have been Run() without an
/// external sink (per-site traces materialized).
class DistributedSystem {
 public:
  /// `catalog` and `sensors` are only consulted when
  /// `options.attach_queries` is set; both must outlive the system.
  /// `sensors` must be time-ordered (as GenerateSensorStream produces).
  DistributedSystem(const SupplyChainSim* sim, DistributedOptions options,
                    const ProductCatalog* catalog = nullptr,
                    const std::vector<SensorReading>* sensors = nullptr);
  ~DistributedSystem();

  DistributedSystem(const DistributedSystem&) = delete;
  DistributedSystem& operator=(const DistributedSystem&) = delete;

  /// Replays the whole horizon. Calling Run a second time is a no-op.
  void Run();

  const Network& network() const { return network_; }
  const Ons& ons() const { return ons_; }
  const DistributedOptions& options() const { return options_; }

  /// This run's telemetry bundle (phase histograms, per-kind wire
  /// counters, optional trace sink); nullptr when collect_metrics is off.
  const obs::Telemetry* telemetry() const { return telemetry_.get(); }

  /// Number of site processors (1 in centralized mode).
  int num_processors() const { return static_cast<int>(sites_.size()); }
  const Site& site(SiteId s) const { return *sites_[static_cast<size_t>(s)]; }

  /// The owning processor's current belief about an object's container
  /// (kNoTag for unknown or departed objects). Items answer at the
  /// item→case level; cases at the case→pallet level when
  /// SiteOptions::hierarchical is set.
  TagId BelievedContainer(TagId object) const;

  /// Two-level containment answer (Appendix A.4): the believed pallet of a
  /// case, or of an item resolved transitively through its believed case
  /// (following the case to *its* owning processor, which can differ from
  /// the item's mid-handoff). kNoTag when the hierarchy is disabled or
  /// either hop is unresolved.
  TagId BelievedPallet(TagId object) const;

  struct ErrorSnapshot {
    Epoch epoch = 0;
    double error_percent = 0.0;
    bool operator==(const ErrorSnapshot&) const = default;
  };

  /// Containment error (percent, vs ground truth over items present) at the
  /// accuracy sample nearest to `at`. Valid after Run; NaN when no samples
  /// were recorded (an empty run is not a perfect one).
  double ContainmentErrorPercent(Epoch at) const;

  /// Every accuracy sample recorded during Run (one per inference boundary
  /// that ran, plus a forced sample at the horizon so the final stretch is
  /// always measured), in epoch order -- the raw series behind the error
  /// accessors (and the serial-vs-parallel determinism contract).
  const std::vector<ErrorSnapshot>& snapshots() const { return snapshots_; }

  /// Mean containment error over all accuracy samples at or after `warmup`
  /// -- the continuous-monitoring view of Figures 5(e)/5(f). NaN when no
  /// sample falls in the range.
  double AverageContainmentErrorPercent(Epoch warmup = 0) const;

  /// Case→pallet accuracy series, sampled at the same boundaries as
  /// `snapshots()` when the hierarchy is enabled (always empty otherwise).
  /// A sample scores only cases the ground truth has contained in a pallet
  /// at that epoch -- an unpacked case sitting on a shelf is uncontained
  /// by construction, and counting it would measure shelving, not
  /// inference -- and boundaries where no case is contained record no
  /// sample rather than a fake-perfect one.
  const std::vector<ErrorSnapshot>& case_snapshots() const {
    return case_snapshots_;
  }

  /// Case-level error at the case sample nearest to `at`; NaN when none.
  double CaseContainmentErrorPercent(Epoch at) const;

  /// Mean case-level error over case samples at or after `warmup`; NaN
  /// when none fall in the range.
  double AverageCaseContainmentErrorPercent(Epoch warmup = 0) const;

  /// All alerts of query `query_index` (0 = Q1, 1 = Q2) merged across
  /// sites, ordered by completion time. Empty when queries not attached.
  std::vector<ExposureAlert> AllAlerts(int query_index) const;

  /// Wall-clock seconds spent inside inference, summed over processors.
  double TotalInferenceSeconds() const;

 private:
  bool centralized() const {
    return options_.mode == ProcessingMode::kCentralized;
  }
  Site* OwnerSite(TagId object) const;
  /// Samples containment accuracy at `t`, per level when hierarchical.
  /// The per-tag scans fan out across `executor` (read-only against site
  /// state; integer error counts merge associatively, so results stay
  /// bit-identical at any thread count).
  void RecordSnapshot(Epoch t, SiteExecutor* executor);
  /// One level's containment scan at `t`: tags are scored against their
  /// ground-truth container; with `contained_only`, tags the truth holds
  /// uncontained at `t` are skipped instead of scored.
  ErrorRate ScanContainment(const std::vector<TagId>& tags, Epoch t,
                            SiteExecutor* executor,
                            bool contained_only) const;

  const SupplyChainSim* sim_;
  DistributedOptions options_;
  const ProductCatalog* catalog_;
  const std::vector<SensorReading>* sensors_;

  /// Owned per-run telemetry; constructed before the network so transport
  /// instrumentation is live from the first frame. Null when disabled.
  std::unique_ptr<obs::Telemetry> telemetry_;
  Network network_;
  Ons ons_;
  std::vector<std::unique_ptr<Site>> sites_;

  /// Current owning processor per tag (tracks transfers as they arrive).
  std::unordered_map<TagId, SiteId> owner_;
  std::vector<ErrorSnapshot> snapshots_;
  /// Case→pallet samples (hierarchical runs only; see case_snapshots()).
  std::vector<ErrorSnapshot> case_snapshots_;
  bool ran_ = false;
};

}  // namespace rfid

#endif  // RFID_DIST_DISTRIBUTED_H_
