// The distributed-processing driver (Section 5.2, Figure 3): replays a
// completed SupplyChainSim epoch by epoch against a set of per-site
// processors connected by the byte-accounted Network and coordinated by the
// ONS, or against a single centralized server that every remote site ships
// its raw readings to.
//
//   kDistributed -- one Site per warehouse consumes its own trace; when a
//                   pallet group crosses sites, the departing site
//                   serializes inference/query state (per MigrationMode)
//                   and the destination installs it on arrival; the ONS is
//                   kept current so any object can be located.
//   kCentralized -- the Table 5 baseline: remote sites batch their raw
//                   readings per inference period, delta-encode and gzip
//                   them, and ship them to site 0, which runs one global
//                   inference engine (and the queries, when attached).
//
// Accuracy is surfaced the way the paper plots it: containment error
// against trace/ground_truth sampled at every inference boundary
// (Figures 5(e)/5(f)) -- per containment level when the sites run the
// Appendix A.4 hierarchy (snapshots() for items, case_snapshots() for
// cases) -- plus the merged per-site query alerts (Section 5.4).
//
// Execution model: the replay is event-driven and bulk-synchronous. The
// driver precomputes every epoch at which anything can happen (injections,
// transfer departures/arrivals, inference boundaries, flushes) and walks
// only those events; between events each site's window of readings is
// ingested in one batched call. At each event the driver first advances
// the Network/ONS clocks and serially drains every site's delivery queue
// of frames whose arrival epoch has passed (Network::DeliverDue --
// messages sent at earlier events are in flight until this point, however
// the transport backend carried them). Per-site work (DeliverArrivals +
// ObserveBatch, then AdvanceTo at boundaries) then fans out across a
// SiteExecutor worker pool and joins before the serial boundary phase (ONS
// shard updates/resolves, ExportTransfer, Network::Send, accuracy
// snapshots). Because parallel work touches only site-local state and all
// cross-site effects -- including every sharded-directory mutation, cache
// fill, and frame drain -- are serial, results are bit-identical for every
// num_threads (and directory_shards, and transport backend) value.
#ifndef RFID_DIST_DISTRIBUTED_H_
#define RFID_DIST_DISTRIBUTED_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "dist/executor.h"
#include "dist/network.h"
#include "dist/ons.h"
#include "dist/site.h"
#include "obs/telemetry.h"
#include "query/queries.h"
#include "sim/supply_chain.h"
#include "trace/product_catalog.h"

namespace rfid {

enum class ProcessingMode : uint8_t {
  kDistributed = 0,
  kCentralized = 1,
};

std::string ToString(ProcessingMode mode);

/// Where within the crash epoch the process dies. Only the default
/// mid-window kill is legal without durability; the other two probe the
/// durable-site guarantee at finer kill points (tests/durability_test.cc
/// sweeps all three at every boundary).
enum class CrashPhase : uint8_t {
  /// Before the epoch's delivery drain: the site never sees this epoch's
  /// frames (they wait in the fabric when durability retains them).
  kMidWindow = 0,
  /// After the drain and its WAL flush, before the window compute: the
  /// site consumed and durably logged the epoch's frames, then died.
  kPostDrain = 1,
  /// Partway through the drain: the WAL holds a flushed prefix of the
  /// epoch's frames and the fabric still queues the unconsumed suffix
  /// (append-before-apply -- a frame leaves the fabric only once its
  /// record is durable).
  kMidFlush = 2,
};

/// One scheduled site failure: the site's process dies at `at` (losing all
/// in-memory inference/query state) and a replacement process comes up at
/// `recover_at`. Without durability the replacement rebuilds from the
/// site's durable raw trace plus the migration state its peers retained
/// and re-send on request (MessageKind::kRecoveryRequest), and every
/// queued frame addressed to the site dies with it. With
/// DistributedOptions::durability the replacement restores its own
/// checkpoint + frame WAL from disk instead -- no peer traffic, nothing
/// purged from the fabric -- and `recover_at == at` (an immediate
/// restart) becomes legal.
struct CrashEvent {
  SiteId site = kNoSite;
  Epoch at = 0;
  Epoch recover_at = 0;
  CrashPhase phase = CrashPhase::kMidWindow;
};

/// Deterministic crash schedule: `count` crashes at seeded sites/epochs in
/// the middle half of the horizon, each lasting `outage` epochs (clamped to
/// the horizon). Crashes that would overlap an earlier outage of the same
/// site are dropped, so the result is always a valid schedule.
std::vector<CrashEvent> SeededCrashSchedule(uint64_t seed, int num_sites,
                                            Epoch horizon, int count,
                                            Epoch outage);

struct DistributedOptions {
  ProcessingMode mode = ProcessingMode::kDistributed;
  SiteOptions site;
  /// Transport backend carrying every framed message: the in-process
  /// fabric or real loopback sockets (dist/transport_socket.h). Defaults
  /// to the RFID_TRANSPORT environment variable ("socket" selects the
  /// socket backend), so whole test binaries can be re-run against real
  /// sockets. Results are bit-identical across backends.
  TransportKind transport = TransportKindFromEnv();
  /// Per-link latency model (arrival epoch = send epoch + latency).
  /// Default all-zero: messages are deliverable at the boundary of the
  /// epoch they were sent, the pre-transport synchronous semantics.
  NetworkOptions network;
  /// Instantiate Q1/Q2 at every site (requires a catalog and sensor stream
  /// at construction).
  bool attach_queries = false;
  ExposureQueryConfig q1 = ExposureQuery::Q1Config();
  ExposureQueryConfig q2 = ExposureQuery::Q2Config();
  /// Threads executing per-site windows: 0 (or 1) = serial on the replay
  /// thread, kAutoThreads = hardware concurrency. Alerts, accuracy
  /// snapshots, and byte counts are bit-identical across all values.
  int num_threads = kAutoThreads;
  /// ONS directory shards (hash partition of the tag->site map, each shard
  /// hosted by a real site); 0 = one shard per site. Shard count changes
  /// only which links carry the directory bytes, never the totals.
  int directory_shards = 0;
  /// Per-site resolver caching of directory lookups (invalidated on
  /// moves); repeat resolutions of an unmoved object cost zero wire bytes.
  bool directory_cache = true;
  /// Centralized mode: overlap the boundary flush encode (delta + gzip of
  /// each remote site's pending readings) with the server's own window
  /// compute on the executor pool, instead of encoding serially after it.
  /// Payload bytes, send order, and seq numbers are unchanged, so results
  /// are bit-identical either way (executor_test proves it); off exists
  /// for the determinism matrix and for isolating the serial baseline.
  bool pipeline_flush = true;
  /// TTL-based resolver-cache expiry in epochs (OnsOptions::cache_ttl);
  /// 0 = exact invalidation. Nonzero values trade staleness for DNS
  /// fidelity; the replay tolerates it because exports are driven by the
  /// transfer record (a stale directory answer costs the same wire bytes
  /// but never mis-routes the state).
  Epoch directory_cache_ttl = 0;
  /// Collect phase histograms and per-kind wire counters during Run
  /// (obs/telemetry.h). Off = no Telemetry is constructed and every
  /// instrumentation point reduces to a null check -- the configuration
  /// the <2% overhead budget is measured against. Telemetry never feeds
  /// back into results either way (executor_test proves bit-identity).
  bool collect_metrics = true;
  /// Also record a Chrome trace (chrome://tracing / Perfetto) and write it
  /// here at the end of Run. Empty = consult the RFID_TRACE environment
  /// variable; set `trace` to false to ignore both (benches that construct
  /// many systems trace only one representative run).
  std::string trace_path;
  bool trace = true;
  /// Scheduled site failures (distributed mode only; must be sorted by
  /// `at`, with 0 < at < recover_at -- or recover_at == at under
  /// durability -- and non-overlapping outages per site). Without
  /// durability, non-empty schedules enable SiteOptions::retain_exports
  /// so peers can answer the recovering site's kRecoveryRequest. With an
  /// all-zero FaultModel a crashed-and-recovered run ends bit-identical
  /// to the uncrashed run; the non-durable path additionally requires
  /// that no transfer depart the crashed site during its outage (that
  /// state died with the process and is honestly lost).
  std::vector<CrashEvent> crashes;
  /// Per-site durable storage (dist/durability.h): checkpoints every
  /// SiteOptions::checkpoint_every boundaries, a frame WAL fsynced per
  /// delivery drain, and the tamper-evident audit log. Defaults read
  /// RFID_DURABILITY_DIR / RFID_DURABILITY_FSYNC; disabled when the
  /// directory is empty. A durable crashed site recovers from its own
  /// disk (checkpoint + WAL replay + trace replay) with zero
  /// kRecoveryRequest traffic, and transfers that departed during the
  /// outage are exported during the catch-up replay instead of being
  /// lost -- the departed-transfer caveat above disappears.
  DurabilityOptions durability;
};

/// Drives a finished simulation through the distributed (or centralized)
/// pipeline. The sim must outlive the system and have been Run() without an
/// external sink (per-site traces materialized).
class DistributedSystem {
 public:
  /// `catalog` and `sensors` are only consulted when
  /// `options.attach_queries` is set; both must outlive the system.
  /// `sensors` must be time-ordered (as GenerateSensorStream produces).
  DistributedSystem(const SupplyChainSim* sim, DistributedOptions options,
                    const ProductCatalog* catalog = nullptr,
                    const std::vector<SensorReading>* sensors = nullptr);
  ~DistributedSystem();

  DistributedSystem(const DistributedSystem&) = delete;
  DistributedSystem& operator=(const DistributedSystem&) = delete;

  /// Replays the whole horizon. Calling Run a second time is a no-op.
  void Run();

  const Network& network() const { return network_; }
  const Ons& ons() const { return ons_; }
  const DistributedOptions& options() const { return options_; }

  /// This run's telemetry bundle (phase histograms, per-kind wire
  /// counters, optional trace sink); nullptr when collect_metrics is off.
  const obs::Telemetry* telemetry() const { return telemetry_.get(); }

  /// Number of site processors (1 in centralized mode).
  int num_processors() const { return static_cast<int>(sites_.size()); }
  const Site& site(SiteId s) const { return *sites_[static_cast<size_t>(s)]; }

  /// The owning processor's current belief about an object's container
  /// (kNoTag for unknown or departed objects). Items answer at the
  /// item→case level; cases at the case→pallet level when
  /// SiteOptions::hierarchical is set.
  TagId BelievedContainer(TagId object) const;

  /// Two-level containment answer (Appendix A.4): the believed pallet of a
  /// case, or of an item resolved transitively through its believed case
  /// (following the case to *its* owning processor, which can differ from
  /// the item's mid-handoff). kNoTag when the hierarchy is disabled or
  /// either hop is unresolved.
  TagId BelievedPallet(TagId object) const;

  struct ErrorSnapshot {
    Epoch epoch = 0;
    double error_percent = 0.0;
    bool operator==(const ErrorSnapshot&) const = default;
  };

  /// Containment error (percent, vs ground truth over items present) at the
  /// accuracy sample nearest to `at`. Valid after Run; NaN when no samples
  /// were recorded (an empty run is not a perfect one).
  double ContainmentErrorPercent(Epoch at) const;

  /// Every accuracy sample recorded during Run (one per inference boundary
  /// that ran, plus a forced sample at the horizon so the final stretch is
  /// always measured), in epoch order -- the raw series behind the error
  /// accessors (and the serial-vs-parallel determinism contract).
  const std::vector<ErrorSnapshot>& snapshots() const { return snapshots_; }

  /// Mean containment error over all accuracy samples at or after `warmup`
  /// -- the continuous-monitoring view of Figures 5(e)/5(f). NaN when no
  /// sample falls in the range.
  double AverageContainmentErrorPercent(Epoch warmup = 0) const;

  /// Case→pallet accuracy series, sampled at the same boundaries as
  /// `snapshots()` when the hierarchy is enabled (always empty otherwise).
  /// A sample scores only cases the ground truth has contained in a pallet
  /// at that epoch -- an unpacked case sitting on a shelf is uncontained
  /// by construction, and counting it would measure shelving, not
  /// inference -- and boundaries where no case is contained record no
  /// sample rather than a fake-perfect one.
  const std::vector<ErrorSnapshot>& case_snapshots() const {
    return case_snapshots_;
  }

  /// Case-level error at the case sample nearest to `at`; NaN when none.
  double CaseContainmentErrorPercent(Epoch at) const;

  /// Mean case-level error over case samples at or after `warmup`; NaN
  /// when none fall in the range.
  double AverageCaseContainmentErrorPercent(Epoch warmup = 0) const;

  /// All alerts of query `query_index` (0 = Q1, 1 = Q2) merged across
  /// sites, ordered by completion time. Empty when queries not attached.
  std::vector<ExposureAlert> AllAlerts(int query_index) const;

  /// Wall-clock seconds spent inside inference, summed over processors.
  double TotalInferenceSeconds() const;

  /// Epochs the run kept ticking past the horizon to let the reliability
  /// layer finish retransmitting (0 when reliable delivery is off or
  /// everything drained at the horizon).
  Epoch reliability_flush_epochs() const { return reliability_flush_epochs_; }

  /// Whether per-site durable storage is attached (durability.dir set).
  bool durable() const { return !durabilities_.empty(); }

  /// Site `s`'s durable store; nullptr when durability is disabled.
  const SiteDurability* durability(SiteId s) const {
    return durable() ? durabilities_[static_cast<size_t>(s)].get() : nullptr;
  }

  /// Sum of every site's DurabilityStats (all-zero when disabled).
  DurabilityStats DurabilityTotals() const;

 private:
  bool centralized() const {
    return options_.mode == ProcessingMode::kCentralized;
  }
  Site* OwnerSite(TagId object) const;
  /// Samples containment accuracy at `t`, per level when hierarchical.
  /// The per-tag scans fan out across `executor` (read-only against site
  /// state; integer error counts merge associatively, so results stay
  /// bit-identical at any thread count).
  void RecordSnapshot(Epoch t, SiteExecutor* executor);
  /// One level's containment scan at `t`: tags are scored against their
  /// ground-truth container; with `contained_only`, tags the truth holds
  /// uncontained at `t` are skipped instead of scored.
  ErrorRate ScanContainment(const std::vector<TagId>& tags, Epoch t,
                            SiteExecutor* executor,
                            bool contained_only) const;
  /// Builds a fully wired site processor for `s`: telemetry, the network
  /// handler (re-registered, replacing any dead predecessor's), queries,
  /// and the site's sensor slice. Used at construction and when a crashed
  /// site is replaced by a fresh process.
  std::unique_ptr<Site> MakeSite(SiteId s);
  /// Kills site `s` at epoch `at`: snapshots its current containment
  /// answers into degraded_beliefs_ (the last-known view queries fall back
  /// to during the outage), purges every frame queued for it, and swaps in
  /// a pristine replacement that stays isolated until recovery.
  void CrashSite(SiteId s, Epoch at) REQUIRES(phase_);
  /// Brings site `s` back at epoch `t`: requests retained state from every
  /// peer, then replays the site's own raw trace through every inference
  /// boundary before `t` so its engines converge to the pre-crash state.
  void RecoverSite(SiteId s, Epoch t) REQUIRES(phase_);
  /// Durable variant: restores the newest valid checkpoint from disk,
  /// re-feeds the frame-WAL tail through the handler, drains the outage
  /// backlog the fabric retained, then replays the site's own trace
  /// boundaries after the checkpoint cut -- exporting for real any
  /// transfer that departed while the process was down. Zero peer
  /// traffic.
  void RecoverSiteDurable(SiteId s, Epoch t) REQUIRES(phase_);

  const SupplyChainSim* sim_;
  DistributedOptions options_;
  const ProductCatalog* catalog_;
  const std::vector<SensorReading>* sensors_;

  /// Owned per-run telemetry; constructed before the network so transport
  /// instrumentation is live from the first frame. Null when disabled.
  std::unique_ptr<obs::Telemetry> telemetry_;
  Network network_;
  Ons ons_;
  std::vector<std::unique_ptr<Site>> sites_;
  /// Per-site durable stores (empty when durability is disabled). Owned
  /// here -- not by the Site -- so the WAL/audit state survives a crashed
  /// site's teardown and the replacement process reopens the same files.
  std::vector<std::unique_ptr<SiteDurability>> durabilities_;

  /// Serial-phase capability over the crash/recovery and ownership
  /// bookkeeping: written only in Run's serial phases (exclusive), read
  /// concurrently by ScanContainment's workers through BelievedContainer
  /// (shared). Same discipline as Network::phase_.
  SerialPhase phase_;

  /// Current owning processor per tag (tracks transfers as they arrive).
  std::unordered_map<TagId, SiteId> owner_ GUARDED_BY(phase_);
  std::vector<ErrorSnapshot> snapshots_;
  /// Case→pallet samples (hierarchical runs only; see case_snapshots()).
  std::vector<ErrorSnapshot> case_snapshots_;
  /// Per-site read cursor into the raw trace (member so a crashed site's
  /// rebuild can rewind and re-consume its own readings). Partitioned by
  /// site index: window workers write disjoint elements, which GUARDED_BY
  /// cannot express -- keep it that way.
  std::vector<size_t> cursors_;
  /// Last-known containment answer per tag owned by a currently-down site;
  /// queries during the outage answer from this snapshot.
  std::unordered_map<TagId, TagId> degraded_beliefs_ GUARDED_BY(phase_);
  /// Crash epoch of each currently-down site (the kRecoveryRequest
  /// payload: peers re-send only state sent strictly before it).
  std::unordered_map<SiteId, Epoch> crash_at_ GUARDED_BY(phase_);
  Epoch reliability_flush_epochs_ = 0;
  bool ran_ = false;
};

}  // namespace rfid

#endif  // RFID_DIST_DISTRIBUTED_H_
