// The message fabric connecting site processors (Section 5.2's deployment):
// a pluggable Transport carrying framed wire messages (dist/frame.h) into
// per-destination delivery queues, plus the byte/message accounting behind
// Table 5 and Figures 5(e)/5(f).
//
// Every Send frames its payload and charges the *framed* wire size -- per
// (from, to) link, per message kind, and in total -- whether or not the
// destination registered a handler, because the paper's communication-cost
// numbers count bytes put on the wire, not bytes usefully consumed.
// Delivery is asynchronous: a sent frame is in flight until the replay's
// serial boundary phase drains it with DeliverDue, at the arrival epoch the
// link latency model assigns (send epoch + latency; zero latency by
// default, i.e. deliverable at the boundary of the epoch it was sent).
//
// Two backends implement Transport:
//   - the in-process fabric (default): frames queue in memory;
//   - SocketTransport (dist/transport_socket.h): each site owns a loopback
//     listener and encoded frames actually cross the kernel.
// Both charge identically (the frame header is fixed-width, so wire size
// depends only on payload length) and both deliver in (arrival epoch,
// global send sequence) order, so alerts, accuracy, and byte totals are
// bit-identical across backends -- enforced by executor_test's
// DeterminismTest and frame_test's cross-backend accounting check.
#ifndef RFID_DIST_NETWORK_H_
#define RFID_DIST_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "dist/frame.h"

namespace rfid {

namespace obs {
class Telemetry;
}  // namespace obs

/// Synthetic node id hosting ONS directory shards when the Ons knows no
/// hosting sites (OnsOptions::num_sites == 0, e.g. standalone unit tests).
/// No site registers a handler for it, so such directory messages are
/// charged (bytes on the wire) but consumed by the in-process Ons
/// directly. A configured deployment instead hosts shard s at real site
/// s % num_sites and charges that link.
inline constexpr SiteId kDirectorySite = -2;

/// Delivery callback: (sender, kind, payload).
using MessageHandler =
    std::function<void(SiteId from, MessageKind kind,
                       const std::vector<uint8_t>& payload)>;

/// Which Transport backend a Network (or a DistributedSystem) uses.
enum class TransportKind : uint8_t {
  kInProcess = 0,
  kSocket = 1,
};

std::string ToString(TransportKind kind);

/// Backend selected by the RFID_TRANSPORT environment variable ("socket"
/// -> kSocket; anything else, or unset -> kInProcess). The default for
/// DistributedOptions::transport, so CI can flip whole test binaries onto
/// the socket backend without code changes.
TransportKind TransportKindFromEnv();

/// A message transport: accepts frames for queued delivery and hands back
/// every frame addressed to a site on request. Implementations need no
/// internal ordering guarantees beyond per-(from, to) FIFO; the Network
/// restores a deterministic total order from the frames' global sequence
/// numbers. All calls happen from the replay's serial phases -- transports
/// are single-threaded by contract.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues `frame` for delivery to `frame.to` (taken by value so
  /// backends can move it straight into their queues). Returns the
  /// frame's wire size (must equal FrameWireSize(frame.payload.size())).
  virtual size_t Send(Frame frame) = 0;

  /// Appends every frame currently deliverable to `site` onto `*out`
  /// (in unspecified order) and removes them from the transport.
  virtual void Drain(SiteId site, std::vector<Frame>* out) = 0;

  virtual std::string name() const = 0;
};

/// The default backend: frames queue in per-destination in-memory FIFOs.
/// No bytes cross the kernel, but the accounting and delivery semantics
/// are identical to the socket backend's.
class InProcessTransport : public Transport {
 public:
  size_t Send(Frame frame) override;
  void Drain(SiteId site, std::vector<Frame>* out) override;
  std::string name() const override { return "in_process"; }

 private:
  std::unordered_map<SiteId, std::vector<Frame>> queues_;
};

/// Per-link latency model assigning arrival epochs: a frame sent at epoch
/// t over link (from, to) with wire size b arrives at
///   t + base(from, to) + per_kib * ceil(b / 1024)
/// where base is `link_base(from, to)` when set, else `latency_base`.
/// The default (all zero) makes every frame deliverable at the boundary of
/// the epoch it was sent -- the pre-transport synchronous semantics.
struct NetworkOptions {
  Epoch latency_base = 0;
  Epoch latency_per_kib = 0;
  /// Optional per-link override of latency_base. Must be deterministic:
  /// arrival epochs feed the bit-identical replay contract.
  std::function<Epoch(SiteId from, SiteId to)> link_base;
};

/// The byte-accounted message fabric. Owns a Transport backend and the
/// per-destination arrival queues. Unsynchronized by design: under the
/// bulk-synchronous executor (dist/executor.h) every Send and DeliverDue
/// happens in a serial boundary phase -- never concurrently with per-site
/// parallel work -- which keeps the per-link/per-kind accounting race-free
/// without locks.
class Network {
 public:
  /// In-process backend, zero-latency links.
  Network();
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Swaps in a backend. `num_sites` is how many destinations need
  /// listeners (the socket backend binds one per site). Must not be
  /// called while frames are in flight -- they would be stranded in the
  /// old backend (checked).
  void ConfigureTransport(TransportKind kind, int num_sites);

  /// Attaches the run's telemetry (send-phase timers, per-kind wire
  /// counters; obs/telemetry.h) to this network and its socket backend,
  /// current or future. Null detaches. Observation only -- accounting and
  /// delivery are identical with or without it.
  void SetTelemetry(obs::Telemetry* telemetry);

  /// Sets the link latency model. Arrival epochs are computed as frames
  /// are drained from the transport, so the model must be in place before
  /// anything is in flight (checked): reconfiguring mid-flight would
  /// retroactively reschedule already-sent frames.
  void Configure(NetworkOptions options);

  /// Advances the send clock: subsequent Sends carry `now` as their send
  /// epoch. The replay calls this once per event epoch.
  void AdvanceClock(Epoch now) { now_ = now; }
  Epoch now() const { return now_; }

  /// Installs the handler for messages addressed to `site`, replacing any
  /// existing one. Handlers run inside DeliverDue, not inside Send.
  void RegisterHandler(SiteId site, MessageHandler handler);

  /// Frames `payload` and queues it from `from` to `to` with the current
  /// clock as send epoch. The framed wire size (header + payload +
  /// checksum) is charged to the (from, to) link and the kind counter even
  /// when `to` has no handler. Returns the wire bytes charged.
  size_t Send(SiteId from, SiteId to, MessageKind kind,
              const std::vector<uint8_t>& payload);

  /// Drains every frame addressed to `site` whose arrival epoch is <= now
  /// into `site`'s handler, in (arrival epoch, send sequence) order.
  /// Frames not yet due stay queued (in flight). Returns frames delivered.
  int DeliverDue(SiteId site, Epoch now);

  int64_t total_bytes() const { return total_bytes_; }
  int64_t total_messages() const { return total_messages_; }

  /// Frames sent but not yet delivered to a handler (still inside the
  /// transport or queued with a future arrival epoch) -- the
  /// transfers-in-flight state of the replay. Live state, not history:
  /// unlike the byte/message totals, ResetCounters leaves it intact.
  int64_t in_flight_messages() const { return in_flight_messages_; }
  int64_t in_flight_bytes() const { return in_flight_bytes_; }

  /// Bytes sent over the directed link from -> to.
  int64_t BytesOnLink(SiteId from, SiteId to) const;
  /// Messages sent over the directed link from -> to.
  int64_t MessagesOnLink(SiteId from, SiteId to) const;

  /// Bytes sent with the given message kind.
  int64_t BytesOfKind(MessageKind kind) const {
    return kind_bytes_[static_cast<size_t>(kind)];
  }
  int64_t MessagesOfKind(MessageKind kind) const {
    return kind_messages_[static_cast<size_t>(kind)];
  }

  TransportKind transport_kind() const { return transport_kind_; }
  const Transport& transport() const { return *transport_; }

  /// Zeroes every traffic counter; handlers, queued frames, the clock,
  /// and the in-flight gauges (which describe live queue state) stay.
  void ResetCounters();

 private:
  struct QueuedFrame {
    Epoch arrive = 0;
    Frame frame;
  };
  struct LaterArrival {
    bool operator()(const QueuedFrame& a, const QueuedFrame& b) const {
      if (a.arrive != b.arrive) return a.arrive > b.arrive;
      return a.frame.seq > b.frame.seq;
    }
  };
  using ArrivalQueue =
      std::priority_queue<QueuedFrame, std::vector<QueuedFrame>,
                          LaterArrival>;

  static uint64_t LinkKey(SiteId from, SiteId to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }

  Epoch LatencyOf(SiteId from, SiteId to, size_t wire_bytes) const;

  std::unique_ptr<Transport> transport_;
  TransportKind transport_kind_ = TransportKind::kInProcess;
  obs::Telemetry* telemetry_ = nullptr;
  NetworkOptions options_;
  Epoch now_ = 0;
  uint64_t next_seq_ = 0;

  std::unordered_map<SiteId, MessageHandler> handlers_;
  /// Frames drained from the transport but not yet due for delivery.
  std::unordered_map<SiteId, ArrivalQueue> pending_;

  std::unordered_map<uint64_t, int64_t> link_bytes_;
  std::unordered_map<uint64_t, int64_t> link_messages_;
  int64_t kind_bytes_[kNumMessageKinds] = {};
  int64_t kind_messages_[kNumMessageKinds] = {};
  int64_t total_bytes_ = 0;
  int64_t total_messages_ = 0;
  int64_t in_flight_bytes_ = 0;
  int64_t in_flight_messages_ = 0;
};

}  // namespace rfid

#endif  // RFID_DIST_NETWORK_H_
