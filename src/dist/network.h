// In-process message fabric connecting site processors (Section 5.2's
// emulated deployment): synchronous delivery to per-site handlers plus the
// byte/message accounting behind Table 5 and Figures 5(e)/5(f).
//
// Every Send is charged -- per (from, to) link, per message kind, and in
// total -- whether or not the destination registered a handler, because the
// paper's communication-cost numbers count bytes put on the wire, not bytes
// usefully consumed. The fabric itself is transport-only; payload encodings
// live with the senders (dist/site.h).
#ifndef RFID_DIST_NETWORK_H_
#define RFID_DIST_NETWORK_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace rfid {

/// Message classes the distributed experiments account separately: raw
/// readings (the centralized baseline), collapsed/full inference state
/// (Section 4.1), per-object query state (Section 4.2), and ONS directory
/// traffic (registrations, moves, and lookups -- the "similar to a DNS
/// service" load of Section 5.2, charged per (site, shard host) link since
/// the directory was sharded across sites; see dist/ons.h).
enum class MessageKind : uint8_t {
  kRawReadings = 0,
  kInferenceState = 1,
  kQueryState = 2,
  kDirectory = 3,
};

inline constexpr int kNumMessageKinds = 4;

/// Synthetic node id hosting ONS directory shards when the Ons knows no
/// hosting sites (OnsOptions::num_sites == 0, e.g. standalone unit tests).
/// No site registers a handler for it, so such directory messages are
/// charged (bytes on the wire) but consumed by the in-process Ons
/// directly. A configured deployment instead hosts shard s at real site
/// s % num_sites and charges that link.
inline constexpr SiteId kDirectorySite = -2;

/// Delivery callback: (sender, kind, payload).
using MessageHandler =
    std::function<void(SiteId from, MessageKind kind,
                       const std::vector<uint8_t>& payload)>;

/// The in-process network. Send delivers synchronously to the destination's
/// handler before returning. The fabric is unsynchronized by design: under
/// the bulk-synchronous executor (dist/executor.h) every Send happens in a
/// serial boundary phase -- never concurrently with per-site parallel work
/// -- which keeps the per-link/per-kind accounting race-free without locks.
class Network {
 public:
  Network() = default;

  /// Installs the handler for messages addressed to `site`, replacing any
  /// existing one.
  void RegisterHandler(SiteId site, MessageHandler handler);

  /// Transmits `payload` from `from` to `to`. The payload is charged to the
  /// (from, to) link and the kind counter even when `to` has no handler.
  /// Returns the number of bytes charged (the payload size).
  size_t Send(SiteId from, SiteId to, MessageKind kind,
              const std::vector<uint8_t>& payload);

  int64_t total_bytes() const { return total_bytes_; }
  int64_t total_messages() const { return total_messages_; }

  /// Bytes sent over the directed link from -> to.
  int64_t BytesOnLink(SiteId from, SiteId to) const;
  /// Messages sent over the directed link from -> to.
  int64_t MessagesOnLink(SiteId from, SiteId to) const;

  /// Bytes sent with the given message kind.
  int64_t BytesOfKind(MessageKind kind) const {
    return kind_bytes_[static_cast<size_t>(kind)];
  }
  int64_t MessagesOfKind(MessageKind kind) const {
    return kind_messages_[static_cast<size_t>(kind)];
  }

  /// Zeroes every counter; handlers stay registered.
  void ResetCounters();

 private:
  static uint64_t LinkKey(SiteId from, SiteId to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }

  std::unordered_map<SiteId, MessageHandler> handlers_;
  std::unordered_map<uint64_t, int64_t> link_bytes_;
  std::unordered_map<uint64_t, int64_t> link_messages_;
  int64_t kind_bytes_[kNumMessageKinds] = {};
  int64_t kind_messages_[kNumMessageKinds] = {};
  int64_t total_bytes_ = 0;
  int64_t total_messages_ = 0;
};

std::string ToString(MessageKind kind);

}  // namespace rfid

#endif  // RFID_DIST_NETWORK_H_
