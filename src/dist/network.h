// The message fabric connecting site processors (Section 5.2's deployment):
// a pluggable Transport carrying framed wire messages (dist/frame.h) into
// per-destination delivery queues, plus the byte/message accounting behind
// Table 5 and Figures 5(e)/5(f).
//
// Every Send frames its payload and charges the *framed* wire size -- per
// (from, to) link, per message kind, and in total -- whether or not the
// destination registered a handler, because the paper's communication-cost
// numbers count bytes put on the wire, not bytes usefully consumed.
// Delivery is asynchronous: a sent frame is in flight until the replay's
// serial boundary phase drains it with DeliverDue, at the arrival epoch the
// link latency model assigns (send epoch + latency; zero latency by
// default, i.e. deliverable at the boundary of the epoch it was sent).
//
// Two backends implement Transport:
//   - the in-process fabric (default): frames queue in memory;
//   - SocketTransport (dist/transport_socket.h): each site owns a loopback
//     listener and encoded frames actually cross the kernel.
// Both charge identically (the frame header is fixed-width, so wire size
// depends only on payload length) and both deliver in (arrival epoch,
// global send sequence) order, so alerts, accuracy, and byte totals are
// bit-identical across backends -- enforced by executor_test's
// DeterminismTest and frame_test's cross-backend accounting check.
//
// On top of the fabric sits an optional reliability layer (tests/
// fault_test.cc, docs/ARCHITECTURE.md "Reliability"): a seeded
// deterministic FaultModel injects per-link drop/duplicate/reorder/corrupt
// faults and epoch-windowed partitions, and a cumulative-ack ARQ protocol
// (per-link sequence numbers in Frame::link_seq, MessageKind::kAck
// carrying the receiver's cumulative ack, retransmit on epoch timeout with
// exponential backoff, bounded in-flight window, duplicate suppression)
// recovers exactly-once delivery. Fault fates are a pure function of
// (fault seed, global seq, attempt), so the same seed + fault config
// yields bit-identical runs on every backend at every thread count.
#ifndef RFID_DIST_NETWORK_H_
#define RFID_DIST_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"
#include "dist/frame.h"

namespace rfid {

namespace obs {
class Telemetry;
}  // namespace obs

/// Synthetic node id hosting ONS directory shards when the Ons knows no
/// hosting sites (OnsOptions::num_sites == 0, e.g. standalone unit tests).
/// No site registers a handler for it, so such directory messages are
/// charged (bytes on the wire) but consumed by the in-process Ons
/// directly. A configured deployment instead hosts shard s at real site
/// s % num_sites and charges that link.
inline constexpr SiteId kDirectorySite = -2;

/// Delivery callback: (sender, kind, payload).
using MessageHandler =
    std::function<void(SiteId from, MessageKind kind,
                       const std::vector<uint8_t>& payload)>;

/// Which Transport backend a Network (or a DistributedSystem) uses.
enum class TransportKind : uint8_t {
  kInProcess = 0,
  kSocket = 1,
};

std::string ToString(TransportKind kind);

/// Backend selected by the RFID_TRANSPORT environment variable ("socket"
/// -> kSocket; anything else, or unset -> kInProcess). The default for
/// DistributedOptions::transport, so CI can flip whole test binaries onto
/// the socket backend without code changes.
TransportKind TransportKindFromEnv();

/// A message transport: accepts frames for queued delivery and hands back
/// every frame addressed to a site on request. Implementations need no
/// internal ordering guarantees beyond per-(from, to) FIFO; the Network
/// restores a deterministic total order from the frames' global sequence
/// numbers. All calls happen from the replay's serial phases -- transports
/// are single-threaded by contract.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues `frame` for delivery to `frame.to` (taken by value so
  /// backends can move it straight into their queues). Returns the
  /// frame's wire size (must equal FrameWireSize(frame.payload.size())).
  virtual size_t Send(Frame frame) = 0;

  /// Transmits `frame` with one payload-region byte XORed by `mask`
  /// (the FaultModel's corruption fate). The wire carries the bytes, but
  /// the frame must never be delivered intact: the socket backend really
  /// writes the damaged encoding (the receiver's CRC check drops it and
  /// counts a crc_drop); the default in-process behavior charges nothing
  /// here and simply discards, which is observationally identical at the
  /// Network level. Returns the wire size, like Send.
  virtual size_t SendCorrupt(Frame frame, size_t offset, uint8_t mask) {
    (void)offset;
    (void)mask;
    return FrameWireSize(frame.payload.size());
  }

  /// Appends every frame currently deliverable to `site` onto `*out`
  /// (in unspecified order) and removes them from the transport.
  virtual void Drain(SiteId site, std::vector<Frame>* out) = 0;

  virtual std::string name() const = 0;
};

/// The default backend: frames queue in per-destination in-memory FIFOs.
/// No bytes cross the kernel, but the accounting and delivery semantics
/// are identical to the socket backend's.
class InProcessTransport : public Transport {
 public:
  size_t Send(Frame frame) override;
  void Drain(SiteId site, std::vector<Frame>* out) override;
  std::string name() const override { return "in_process"; }

 private:
  std::unordered_map<SiteId, std::vector<Frame>> queues_;
};

/// What the FaultModel decided for one transmission attempt: pure function
/// of (seed, global seq, attempt), so identical across backends, thread
/// counts, and runs.
struct FrameFate {
  bool drop = false;
  bool corrupt = false;
  bool duplicate = false;
  /// Extra epochs added to the copy's send epoch (reorder fate): the frame
  /// lingers in the fabric and arrives late, possibly after later sends.
  Epoch extra_delay = 0;
  /// Corruption parameters: payload-region byte offset and a nonzero XOR
  /// mask (XOR by nonzero always breaks the CRC -- linearity).
  size_t corrupt_offset = 0;
  uint8_t corrupt_mask = 1;
  /// The duplicate copy's own reorder delay.
  Epoch duplicate_delay = 0;
};

/// One scheduled link outage: frames over (a, b) -- and (b, a) when
/// bidirectional -- sent during [begin, end) are dropped (and counted as
/// partition_drops). kNoSite as an endpoint is a wildcard.
struct LinkPartition {
  SiteId a = kNoSite;
  SiteId b = kNoSite;
  Epoch begin = 0;
  Epoch end = 0;
  bool bidirectional = true;
};

/// Seeded deterministic fault injection, applied uniformly by every
/// backend at the Network layer (so in-process and socket runs inject the
/// identical fault sequence). All probabilities are per transmission
/// attempt -- a retransmit redraws its fate.
struct FaultModel {
  double drop = 0.0;       ///< P(frame silently lost)
  double duplicate = 0.0;  ///< P(frame transmitted twice)
  double reorder = 0.0;    ///< P(frame delayed by extra epochs)
  double corrupt = 0.0;    ///< P(one payload byte flipped on the wire)
  /// Reorder delay is uniform in [reorder_delay_min, reorder_delay_max].
  Epoch reorder_delay_min = 1;
  Epoch reorder_delay_max = 8;
  uint64_t seed = 0x52464944;  // "RFID"
  std::vector<LinkPartition> partitions;

  bool enabled() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0 ||
           !partitions.empty();
  }

  /// The fate of transmission attempt `attempt` (0 = first send) of the
  /// frame with global sequence `seq`.
  FrameFate FateOf(uint64_t seq, uint32_t attempt) const;

  /// True when link (from, to) is inside a partition window at `at`.
  bool Partitioned(SiteId from, SiteId to, Epoch at) const;
};

/// Fault config selected by the RFID_FAULTS environment variable, e.g.
/// RFID_FAULTS="drop=0.05,dup=0.01,reorder=0.02,corrupt=0.001,seed=7".
/// Unset or empty -> no faults. Unknown keys are ignored.
FaultModel FaultModelFromEnv();

/// Reliable-delivery (ARQ) configuration. kAuto enables the protocol
/// exactly when the fault model can lose or duplicate frames; kOff keeps
/// the pre-reliability fabric byte-for-byte (link_seq stays 0, no acks);
/// kOn forces it even on a perfect network (acks still flow -- the
/// reliability tax at fault rate 0).
struct ReliabilityOptions {
  enum class Mode : uint8_t { kAuto = 0, kOff = 1, kOn = 2 };
  Mode mode = Mode::kAuto;
  /// Max unacked frames per directed link; further sends queue in the
  /// sender until the window opens.
  int window = 64;
  /// Epochs before an unacked frame is retransmitted (then doubled per
  /// attempt up to << max_backoff_shift). Acks only flow when the replay
  /// drains a site, so the effective round trip is two event-epoch gaps
  /// (~120 epochs at the default 60-epoch injection cadence); the default
  /// sits above that to keep retransmits loss-driven rather than spurious.
  Epoch rto = 160;
  int max_backoff_shift = 6;
};

/// Per-link latency model assigning arrival epochs: a frame sent at epoch
/// t over link (from, to) with wire size b arrives at
///   t + base(from, to) + per_kib * ceil(b / 1024)
/// where base is `link_base(from, to)` when set, else `latency_base`.
/// The default (all zero) makes every frame deliverable at the boundary of
/// the epoch it was sent -- the pre-transport synchronous semantics.
struct NetworkOptions {
  Epoch latency_base = 0;
  Epoch latency_per_kib = 0;
  /// Optional per-link override of latency_base. Must be deterministic:
  /// arrival epochs feed the bit-identical replay contract.
  std::function<Epoch(SiteId from, SiteId to)> link_base;
  /// Seeded fault injection (defaults to RFID_FAULTS, i.e. no faults when
  /// the variable is unset).
  FaultModel faults;
  ReliabilityOptions reliability;

  NetworkOptions();
};

/// Injected-fault counters (every fault charged its wire bytes -- the
/// frame was transmitted; the fault happened to it afterwards).
struct FaultStats {
  int64_t drops = 0;
  int64_t duplicates = 0;
  int64_t reorders = 0;
  int64_t corrupts = 0;
  int64_t partition_drops = 0;
};

/// Reliability-protocol counters: the retransmission tax Table 5 reports,
/// plus receiver-side duplicate suppression and crash purges.
struct ReliableStats {
  int64_t retransmits = 0;
  int64_t retransmit_bytes = 0;
  int64_t dup_drops = 0;
  /// Frames discarded by SetSiteDown (in the transport, the pending
  /// queue, or unacked/deferred sender state) when a site crashed.
  int64_t crash_frames_lost = 0;
};

/// The byte-accounted message fabric. Owns a Transport backend and the
/// per-destination arrival queues. Unsynchronized by design: under the
/// bulk-synchronous executor (dist/executor.h) every Send and DeliverDue
/// happens in a serial boundary phase -- never concurrently with per-site
/// parallel work -- which keeps the per-link/per-kind accounting race-free
/// without locks. That contract is machine-checked: the fabric state is
/// GUARDED_BY(phase_), a zero-cost SerialPhase capability
/// (common/thread_annotations.h). Mutators assert exclusive access (debug
/// builds additionally pin them to the one serial thread); the accessors
/// that parallel window phases legitimately read -- IsSiteDown and the
/// counter getters -- assert shared access only.
class Network {
 public:
  /// In-process backend, zero-latency links.
  Network();
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Swaps in a backend. `num_sites` is how many destinations need
  /// listeners (the socket backend binds one per site). Must not be
  /// called while frames are in flight -- they would be stranded in the
  /// old backend (checked).
  void ConfigureTransport(TransportKind kind, int num_sites);

  /// Attaches the run's telemetry (send-phase timers, per-kind wire
  /// counters; obs/telemetry.h) to this network and its socket backend,
  /// current or future. Null detaches. Observation only -- accounting and
  /// delivery are identical with or without it.
  void SetTelemetry(obs::Telemetry* telemetry);

  /// Sets the link latency model, fault model, and reliability mode.
  /// Arrival epochs are computed as frames are drained from the transport,
  /// so the model must be in place before anything is in flight (checked):
  /// reconfiguring mid-flight would retroactively reschedule already-sent
  /// frames.
  void Configure(NetworkOptions options);

  /// Advances the send clock: subsequent Sends carry `now` as their send
  /// epoch. The replay calls this once per event epoch.
  void AdvanceClock(Epoch now) {
    phase_.AssertHeld();
    now_ = now;
  }
  Epoch now() const {
    phase_.AssertShared();
    return now_;
  }

  /// Installs the handler for messages addressed to `site`, replacing any
  /// existing one. Handlers run inside DeliverDue, not inside Send.
  void RegisterHandler(SiteId site, MessageHandler handler);

  /// Frames `payload` and queues it from `from` to `to` with the current
  /// clock as send epoch. The framed wire size (header + payload +
  /// checksum) is charged to the (from, to) link and the kind counter even
  /// when `to` has no handler. Returns the frame's wire size.
  ///
  /// Under the reliability protocol the frame is assigned the link's next
  /// link_seq and tracked for ack/retransmit; when the link's in-flight
  /// window is full it is deferred (charged when actually transmitted).
  /// Fault fates (drop/duplicate/reorder/corrupt/partition) apply per
  /// transmission attempt; every attempt that puts bytes on the wire is
  /// charged, including duplicates and retransmits.
  size_t Send(SiteId from, SiteId to, MessageKind kind,
              const std::vector<uint8_t>& payload);

  /// Drains every frame addressed to `site` whose arrival epoch is <= now
  /// into `site`'s handler, in (arrival epoch, send sequence) order.
  /// Frames not yet due stay queued (in flight). Returns frames popped
  /// from the arrival queue (kAck frames and suppressed duplicates count
  /// as popped but are consumed by the protocol, not the handler). A site
  /// marked down by SetSiteDown receives nothing. After the sweep the
  /// receiver sends one cumulative kAck per peer link that delivered.
  /// `max_frames` caps the frames popped this sweep (the crash model's
  /// mid-drain kill point: a durable site that dies partway through a
  /// drain leaves the unconsumed suffix queued in the fabric); negative
  /// means unlimited.
  int DeliverDue(SiteId site, Epoch now, int max_frames = -1);

  /// Retransmits every tracked frame whose retry timer expired at `now`
  /// (exponential backoff per attempt) and releases deferred frames into
  /// links with window room. Call once per event epoch, before draining.
  /// No-op when the reliability protocol is off.
  void TickReliability(Epoch now);

  /// Marks `site` crashed (down = true). With `purge` set (the
  /// non-durable crash model): every frame currently queued for it -- in
  /// the transport, in the pending arrival queue, or tracked/deferred
  /// toward it by the reliability layer -- is discarded, and both
  /// directions of every peer's link INTO the site reset to a fresh link
  /// epoch (link_seq restarts; the crashed receiver's dedup state is
  /// gone). The site's own outbound tracking survives -- the fabric, not
  /// the site, owns it. With `purge` false (durable sites): only the
  /// down mark is set; in-flight frames, pending arrivals, and link state
  /// are retained -- the process died, the fabric did not. While down,
  /// DeliverDue delivers nothing and TickReliability does not retransmit
  /// toward it; frames sent to it queue for delivery after recovery.
  /// Returns the number of frames discarded (also added to
  /// reliable_stats().crash_frames_lost).
  int64_t SetSiteDown(SiteId site, bool down, bool purge = true);
  /// Read concurrently by window/scan workers (BelievedContainer's
  /// degraded-mode check): shared access to serially-written state.
  bool IsSiteDown(SiteId site) const {
    phase_.AssertShared();
    return down_.count(site) > 0;
  }

  /// True when the reliability protocol still has undelivered work:
  /// unacked or deferred frames on any link whose destination is up.
  bool HasReliabilityWork() const;

  /// True when every tracked link is fully acked (cumulative ack == last
  /// link_seq assigned) with nothing deferred -- the exactly-once
  /// convergence condition fault_test asserts.
  bool AllReliableDelivered() const;

  /// Whether the reliability protocol is active (resolved from
  /// ReliabilityOptions::mode and the fault model at Configure time).
  bool reliable() const { return reliable_; }
  const FaultModel& faults() const { return options_.faults; }

  const FaultStats& fault_stats() const {
    phase_.AssertShared();
    return fault_stats_;
  }
  const ReliableStats& reliable_stats() const {
    phase_.AssertShared();
    return reliable_stats_;
  }

  int64_t total_bytes() const {
    phase_.AssertShared();
    return total_bytes_;
  }
  int64_t total_messages() const {
    phase_.AssertShared();
    return total_messages_;
  }

  /// Frames sent but not yet delivered to a handler (still inside the
  /// transport or queued with a future arrival epoch) -- the
  /// transfers-in-flight state of the replay. Live state, not history:
  /// unlike the byte/message totals, ResetCounters leaves it intact.
  int64_t in_flight_messages() const {
    phase_.AssertShared();
    return in_flight_messages_;
  }
  int64_t in_flight_bytes() const {
    phase_.AssertShared();
    return in_flight_bytes_;
  }

  /// Bytes sent over the directed link from -> to.
  int64_t BytesOnLink(SiteId from, SiteId to) const;
  /// Messages sent over the directed link from -> to.
  int64_t MessagesOnLink(SiteId from, SiteId to) const;

  /// Bytes sent with the given message kind.
  int64_t BytesOfKind(MessageKind kind) const {
    phase_.AssertShared();
    return kind_bytes_[static_cast<size_t>(kind)];
  }
  int64_t MessagesOfKind(MessageKind kind) const {
    phase_.AssertShared();
    return kind_messages_[static_cast<size_t>(kind)];
  }

  TransportKind transport_kind() const { return transport_kind_; }
  const Transport& transport() const { return *transport_; }

  /// Zeroes every traffic counter (including fault/reliability stats);
  /// handlers, queued frames, the clock, reliability protocol state, and
  /// the in-flight gauges (which describe live queue state) stay.
  void ResetCounters();

 private:
  struct QueuedFrame {
    Epoch arrive = 0;
    Frame frame;
  };
  struct LaterArrival {
    bool operator()(const QueuedFrame& a, const QueuedFrame& b) const {
      if (a.arrive != b.arrive) return a.arrive > b.arrive;
      return a.frame.seq > b.frame.seq;
    }
  };
  using ArrivalQueue =
      std::priority_queue<QueuedFrame, std::vector<QueuedFrame>,
                          LaterArrival>;

  /// Ack/retransmit state per transmitted-but-unacked frame.
  struct TrackedFrame {
    Frame frame;
    Epoch next_retry = 0;
    uint32_t attempts = 1;  ///< transmission attempts so far
  };
  /// Sender-side per-directed-link state.
  struct LinkSendState {
    uint64_t next_link_seq = 1;
    std::map<uint64_t, TrackedFrame> unacked;  ///< by link_seq, ordered
    std::deque<Frame> deferred;  ///< window overflow, not yet transmitted
  };
  /// Receiver-side per-directed-link state.
  struct LinkRecvState {
    uint64_t cum = 0;  ///< all link_seq <= cum delivered
    std::set<uint64_t> out_of_order;
    bool ack_pending = false;
  };

  static uint64_t LinkKey(SiteId from, SiteId to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }
  static SiteId LinkFrom(uint64_t key) {
    return static_cast<SiteId>(static_cast<int32_t>(key >> 32));
  }
  static SiteId LinkTo(uint64_t key) {
    return static_cast<SiteId>(static_cast<int32_t>(key & 0xffffffffu));
  }

  Epoch LatencyOf(SiteId from, SiteId to, size_t wire_bytes) const;

  /// Charges `frame`'s wire size and puts it on the wire, applying the
  /// fault model to this attempt. Enqueued copies raise the in-flight
  /// gauges; faulted-away copies (drop/corrupt/partition) are charged but
  /// never in flight.
  void Transmit(const Frame& frame, uint32_t attempt) REQUIRES(phase_);
  /// Assigns the link's next link_seq, transmits, and tracks for
  /// ack/retransmit.
  void TrackAndTransmit(LinkSendState* link, Frame frame) REQUIRES(phase_);
  /// Processes a received cumulative ack for link (frame.to is the ack's
  /// receiver = the original sender).
  void HandleAck(const Frame& ack) REQUIRES(phase_);
  /// Moves deferred frames into the window while there is room.
  void ReleaseDeferred(LinkSendState* link) REQUIRES(phase_);
  void ChargeCounters(const Frame& frame, size_t wire) REQUIRES(phase_);
  void BumpTelemetry(const char* name, int64_t n);

  /// Serial-phase capability: exclusive in boundary phases, shared from
  /// workers (IsSiteDown, counter reads). See class comment.
  SerialPhase phase_;

  // Configured once before the replay starts (ConfigureTransport /
  // Configure / SetTelemetry, all checked to run with nothing in flight);
  // read-only afterwards, so not phase-guarded.
  std::unique_ptr<Transport> transport_;
  TransportKind transport_kind_ = TransportKind::kInProcess;
  obs::Telemetry* telemetry_ = nullptr;
  NetworkOptions options_;
  bool reliable_ = false;

  Epoch now_ GUARDED_BY(phase_) = 0;
  uint64_t next_seq_ GUARDED_BY(phase_) = 0;

  std::unordered_map<SiteId, MessageHandler> handlers_ GUARDED_BY(phase_);
  /// Frames drained from the transport but not yet due for delivery.
  std::unordered_map<SiteId, ArrivalQueue> pending_ GUARDED_BY(phase_);

  /// Ordered maps: determinism (retransmit/release sweeps iterate them).
  std::map<uint64_t, LinkSendState> send_links_ GUARDED_BY(phase_);
  std::map<uint64_t, LinkRecvState> recv_links_ GUARDED_BY(phase_);
  std::unordered_set<SiteId> down_ GUARDED_BY(phase_);

  std::unordered_map<uint64_t, int64_t> link_bytes_ GUARDED_BY(phase_);
  std::unordered_map<uint64_t, int64_t> link_messages_ GUARDED_BY(phase_);
  int64_t kind_bytes_[kNumMessageKinds] GUARDED_BY(phase_) = {};
  int64_t kind_messages_[kNumMessageKinds] GUARDED_BY(phase_) = {};
  int64_t total_bytes_ GUARDED_BY(phase_) = 0;
  int64_t total_messages_ GUARDED_BY(phase_) = 0;
  int64_t in_flight_bytes_ GUARDED_BY(phase_) = 0;
  int64_t in_flight_messages_ GUARDED_BY(phase_) = 0;
  FaultStats fault_stats_ GUARDED_BY(phase_);
  ReliableStats reliable_stats_ GUARDED_BY(phase_);
};

}  // namespace rfid

#endif  // RFID_DIST_NETWORK_H_
