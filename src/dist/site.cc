#include "dist/site.h"

#include <algorithm>
#include <utility>

#include "common/compress.h"
#include "common/serde.h"
#include "obs/telemetry.h"
#include "query/state_sharing.h"
#include "trace/trace_io.h"

namespace rfid {

namespace {

/// Encoded form of an idle/default pattern state: objects that never
/// accumulated query state ship nothing.
const std::vector<uint8_t>& DefaultPatternStateBytes() {
  static const std::vector<uint8_t> kDefault = PatternState{}.Encode();
  return kDefault;
}

using TagStateList = std::vector<std::pair<TagId, std::vector<uint8_t>>>;

/// Splits a transfer's states into the paper's sharing groups: objects with
/// the same container at the exit point ("20-50 objects per case"), whose
/// query states are near-duplicates. `believed` maps object -> container.
std::vector<TagStateList> GroupByContainer(
    const TagStateList& states,
    const std::unordered_map<TagId, TagId>& believed) {
  std::vector<TagStateList> groups;
  std::unordered_map<TagId, size_t> group_of;
  for (const auto& entry : states) {
    auto bit = believed.find(entry.first);
    const TagId container = bit == believed.end() ? kNoTag : bit->second;
    auto [git, inserted] = group_of.emplace(container, groups.size());
    if (inserted) groups.emplace_back();
    groups[git->second].push_back(entry);
  }
  return groups;
}

void EncodeStateBlock(BufferWriter& w, const TagStateList& states,
                      const std::vector<TagStateList>& groups, bool share) {
  w.PutVarint(states.size());
  if (states.empty()) return;
  if (!share) {
    for (const auto& [tag, bytes] : states) {
      w.PutCompactTag(tag);
      w.PutVarint(bytes.size());
      w.PutBytes(bytes.data(), bytes.size());
    }
    return;
  }
  w.PutVarint(groups.size());
  for (const TagStateList& group : groups) {
    SharedStateBundle bundle = ShareStates(group);
    w.PutVarint(group.size());
    w.PutVarint(bundle.centroid_index);
    w.PutVarint(bundle.centroid_state.size());
    w.PutBytes(bundle.centroid_state.data(), bundle.centroid_state.size());
    for (size_t i = 0; i < bundle.tags.size(); ++i) {
      w.PutCompactTag(bundle.tags[i]);
      w.PutVarint(bundle.diffs[i].size());
      w.PutBytes(bundle.diffs[i].data(), bundle.diffs[i].size());
    }
  }
}

Status DecodeStateBlock(BufferReader& r, bool share, TagStateList* out) {
  uint64_t n = 0;
  RFID_RETURN_NOT_OK(r.GetVarint(&n));
  out->clear();
  if (n == 0) return Status::OK();
  auto read_blob = [&r](std::vector<uint8_t>* blob) -> Status {
    uint64_t len = 0;
    RFID_RETURN_NOT_OK(r.GetVarint(&len));
    if (len > r.remaining()) {
      return Status::Corruption("truncated state blob");
    }
    blob->resize(static_cast<size_t>(len));
    for (size_t i = 0; i < blob->size(); ++i) {
      RFID_RETURN_NOT_OK(r.GetU8(&(*blob)[i]));
    }
    return Status::OK();
  };
  if (!share) {
    for (uint64_t i = 0; i < n; ++i) {
      TagId tag;
      std::vector<uint8_t> bytes;
      RFID_RETURN_NOT_OK(r.GetCompactTag(&tag));
      RFID_RETURN_NOT_OK(read_blob(&bytes));
      out->emplace_back(tag, std::move(bytes));
    }
    return Status::OK();
  }
  uint64_t n_groups = 0;
  RFID_RETURN_NOT_OK(r.GetVarint(&n_groups));
  for (uint64_t g = 0; g < n_groups; ++g) {
    SharedStateBundle bundle;
    uint64_t n_tags = 0;
    uint64_t centroid_index = 0;
    RFID_RETURN_NOT_OK(r.GetVarint(&n_tags));
    RFID_RETURN_NOT_OK(r.GetVarint(&centroid_index));
    bundle.centroid_index = static_cast<size_t>(centroid_index);
    RFID_RETURN_NOT_OK(read_blob(&bundle.centroid_state));
    for (uint64_t i = 0; i < n_tags; ++i) {
      TagId tag;
      std::vector<uint8_t> diff;
      RFID_RETURN_NOT_OK(r.GetCompactTag(&tag));
      RFID_RETURN_NOT_OK(read_blob(&diff));
      bundle.tags.push_back(tag);
      bundle.diffs.push_back(std::move(diff));
    }
    if (bundle.centroid_index >= bundle.tags.size()) {
      return Status::Corruption("centroid index out of range");
    }
    RFID_ASSIGN_OR_RETURN(TagStateList group, UnshareStates(bundle));
    out->insert(out->end(), group.begin(), group.end());
  }
  if (out->size() != n) {
    return Status::Corruption("shared-state group count mismatch");
  }
  return Status::OK();
}

/// Audit-logs every alert `q` fired since index `from` (payload: query
/// index, tag, span, event count).
void AppendAlertAudit(SiteDurability* durability, int query_index,
                      const ExposureQuery& q, size_t from) {
  for (size_t i = from; i < q.alerts().size(); ++i) {
    const ExposureAlert& a = q.alerts()[i];
    BufferWriter w;
    w.PutU8(static_cast<uint8_t>(query_index));
    w.PutTagId(a.tag);
    w.PutSignedVarint(a.first_time);
    w.PutSignedVarint(a.last_time);
    w.PutVarint(static_cast<uint64_t>(a.n_events));
    RFID_CHECK_OK(durability->AppendAudit(AuditRecord::Kind::kAlert,
                                          a.last_time, w.Release()));
  }
}

}  // namespace

std::string ToString(MigrationMode mode) {
  switch (mode) {
    case MigrationMode::kNone:
      return "none";
    case MigrationMode::kCollapsed:
      return "collapsed";
    case MigrationMode::kFullReadings:
      return "full_readings";
  }
  return "unknown";
}

Site::Site(SiteId id, const ReadRateModel* model,
           const InterrogationSchedule* schedule, Network* network,
           SiteOptions options)
    : id_(id),
      network_(network),
      options_(std::move(options)),
      streaming_(model, schedule, options_.streaming) {
  if (options_.hierarchical) {
    pallet_streaming_ = std::make_unique<StreamingInference>(
        model, schedule, options_.streaming);
    pallet_streaming_->SetUniverseKinds(TagKind::kPallet, TagKind::kCase);
  }
}

Site::~Site() = default;

void Site::AttachQueries(const ProductCatalog* catalog,
                         const ExposureQueryConfig& q1,
                         const ExposureQueryConfig& q2) {
  catalog_ = catalog;
  q1_ = std::make_unique<ExposureQuery>(catalog, q1);
  q2_ = std::make_unique<ExposureQuery>(catalog, q2);
}

void Site::AddSensor(const SensorReading& reading) {
  sensors_.push_back(reading);
}

void Site::Observe(const RawReading& reading) {
  streaming_.Observe(reading);
  // The pallet level only reasons over case and pallet tags; item readings
  // (the overwhelming bulk of the stream) never enter its history buffer.
  if (pallet_streaming_ != nullptr && !reading.tag.is_item()) {
    pallet_streaming_->Observe(reading);
  }
}

void Site::ObserveBatch(const RawReading* readings, size_t n) {
  streaming_.ObserveBatch(readings, n);
  if (pallet_streaming_ == nullptr) return;
  size_t upper_count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!readings[i].tag.is_item()) ++upper_count;
  }
  // Item-only windows (the common case between door events) cost the
  // hierarchy nothing but the count scan; all-non-item batches (case-only
  // tracking) forward without a copy.
  if (upper_count == 0) return;
  if (upper_count == n) {
    pallet_streaming_->ObserveBatch(readings, n);
    return;
  }
  // Mixed batch: stage the non-item slice in the split arena (rewound per
  // batch) instead of a heap vector.
  // lint:hot-loop-begin(batch-split-rows)
  RawReading* upper = split_arena_.AllocateArray<RawReading>(upper_count);
  size_t m = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!readings[i].tag.is_item()) upper[m++] = readings[i];
  }
  // lint:hot-loop-end
  pallet_streaming_->ObserveBatch(upper, m);
  split_arena_.Reset();
}

void Site::ObserveBatch(const ReadingColumnsView& view) {
  streaming_.ObserveBatch(view);
  if (pallet_streaming_ == nullptr) return;
  size_t upper_count = 0;
  for (size_t i = 0; i < view.size; ++i) {
    if (!view.tag[i].is_item()) ++upper_count;
  }
  if (upper_count == 0) return;
  // The pallet level rebuilds row form for its own buffer either way, so
  // the split materializes rows in the arena (even in the all-non-item
  // case -- the column view has no row storage to forward).
  // lint:hot-loop-begin(batch-split-columns)
  RawReading* upper = split_arena_.AllocateArray<RawReading>(upper_count);
  size_t m = 0;
  for (size_t i = 0; i < view.size; ++i) {
    if (!view.tag[i].is_item()) upper[m++] = view.Row(i);
  }
  // lint:hot-loop-end
  pallet_streaming_->ObserveBatch(upper, m);
  split_arena_.Reset();
}

bool Site::HasArrivalsDue(Epoch now) const {
  for (const PendingArrival& p : pending_inference_) {
    if (p.arrive <= now) return true;
  }
  for (const PendingQueryState& p : pending_query_) {
    if (p.arrive <= now) return true;
  }
  return false;
}

int Site::AdvanceTo(Epoch now) {
  if (pallet_streaming_ != nullptr) pallet_streaming_->AdvanceTo(now);
  const int ran = streaming_.AdvanceTo(now);
  if (ran > 0 && queries_attached()) {
    // Consecutive run windows overlap (a run re-reads recent history), so
    // drop events at or before the previous run's boundary: the pattern
    // automaton requires per-partition event time to be monotone.
    std::vector<ObjectEvent> events;
    for (const ObjectEvent& e : streaming_.engine().EmitEvents()) {
      if (e.tag.is_item() && e.time > event_watermark_) events.push_back(e);
    }
    event_watermark_ = now;
    std::stable_sort(events.begin(), events.end(),
                     [](const ObjectEvent& a, const ObjectEvent& b) {
                       return a.time < b.time;
                     });
    FeedQueries(events);
  }
  return ran;
}

void Site::FeedQueries(const std::vector<ObjectEvent>& events) {
  const size_t q1_fired = q1_->alerts().size();
  const size_t q2_fired = q2_->alerts().size();
  for (const ObjectEvent& e : events) {
    // Temperature[Partition By sensor Rows 1]: each event joins with the
    // latest sample at or before its own epoch.
    while (sensor_cursor_ < sensors_.size() &&
           sensors_[sensor_cursor_].time <= e.time) {
      q1_->OnSensor(sensors_[sensor_cursor_]);
      q2_->OnSensor(sensors_[sensor_cursor_]);
      ++sensor_cursor_;
    }
    q1_->OnEvent(e);
    q2_->OnEvent(e);
  }
  if (durability_ != nullptr) {
    AppendAlertAudit(durability_, 0, *q1_, q1_fired);
    AppendAlertAudit(durability_, 1, *q2_, q2_fired);
  }
}

void Site::DeliverArrivals(Epoch now) {
  for (auto it = pending_inference_.begin(); it != pending_inference_.end();) {
    if (it->arrive <= now) {
      InstallInference(*it);
      it = pending_inference_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = pending_query_.begin(); it != pending_query_.end();) {
    if (it->arrive <= now) {
      InstallQueryState(*it);
      it = pending_query_.erase(it);
    } else {
      ++it;
    }
  }
}

namespace {

/// Installs one level's migrated states into the level's engine.
void InstallStates(StreamingInference& si,
                   const std::vector<ObjectMigrationState>& states) {
  for (const ObjectMigrationState& s : states) {
    ObjectContext ctx;
    ctx.critical_region = s.critical_region;
    ctx.barrier = s.barrier;
    ctx.prior_weights = s.weights;
    si.ImportObjectContext(s.object, ctx);
    // Queries can be answered before the first local run covers the object.
    si.SetImportedBelief(s.object, s.container);
    for (const RawReading& r : s.readings) {
      si.Observe(r);
    }
  }
}

}  // namespace

void Site::InstallInference(const PendingArrival& arrival) {
  InstallStates(streaming_, arrival.states);
  // Case→pallet states from a hierarchical sender are dropped when this
  // site does not run the second level (nothing could consume them).
  if (pallet_streaming_ != nullptr) {
    InstallStates(*pallet_streaming_, arrival.case_states);
  }
}

void Site::InstallQueryState(const PendingQueryState& pending) {
  if (!queries_attached()) return;
  for (const auto& [tag, bytes] : pending.q1_states) {
    RFID_CHECK_OK(q1_->ImportState(tag, bytes));
  }
  for (const auto& [tag, bytes] : pending.q2_states) {
    RFID_CHECK_OK(q2_->ImportState(tag, bytes));
  }
}

void Site::ExportTransfer(const ObjectTransfer& tr) {
  if (tr.to == kNoSite) {
    Retire(tr);
    return;
  }
  if (durability_ != nullptr) {
    // Movement audit record: where the group went and what it carried.
    BufferWriter w;
    w.PutSignedVarint(tr.to);
    w.PutSignedVarint(tr.depart);
    w.PutSignedVarint(tr.arrive);
    w.PutVarint(tr.items.size());
    for (TagId t : tr.items) w.PutTagId(t);
    w.PutVarint(tr.cases.size());
    for (TagId t : tr.cases) w.PutTagId(t);
    RFID_CHECK_OK(durability_->AppendAudit(AuditRecord::Kind::kMovement,
                                           tr.depart, w.Release()));
  }
  // A transfer with cases but no items (e.g. case-level-only tracking)
  // must still ship its case→pallet state when the hierarchy is on.
  const bool has_level_state =
      !tr.items.empty() ||
      (pallet_streaming_ != nullptr && !tr.cases.empty());
  if (options_.migration != MigrationMode::kNone && has_level_state) {
    // Spans the whole export -- state collect, envelope encode (deflate
    // inside), and the Send -- the serialization cost of a migration.
    obs::PhaseTimer span(telemetry_, obs::Phase::kMigrateEncode, tr.depart);
    // One level's departing state, from that level's engine: collapsed
    // weights + context always, plus the object's and its candidate
    // containers' retained readings under kFullReadings.
    auto collect = [&](StreamingInference& si,
                       const std::vector<TagId>& objects) {
      std::vector<ObjectMigrationState> states;
      states.reserve(objects.size());
      for (TagId object : objects) {
        ObjectMigrationState s;
        s.object = object;
        ObjectContext ctx = si.ExportObjectContext(object);
        s.weights = std::move(ctx.prior_weights);
        s.critical_region = ctx.critical_region;
        s.barrier = ctx.barrier;
        s.container = si.ContainerOf(object);
        if (options_.migration == MigrationMode::kFullReadings) {
          std::vector<TagId> tags;
          tags.push_back(object);
          for (TagId c : si.engine().CandidatesOf(object)) {
            tags.push_back(c);
          }
          s.readings = si.ExportReadings(tags, object);
        }
        states.push_back(std::move(s));
      }
      return states;
    };
    std::vector<ObjectMigrationState> states = collect(streaming_, tr.items);
    std::vector<ObjectMigrationState> case_states;
    if (pallet_streaming_ != nullptr) {
      case_states = collect(*pallet_streaming_, tr.cases);
    }
    SendRetained(tr.to, MessageKind::kInferenceState,
                 EncodeInferenceEnvelope(tr.arrive, states, case_states,
                                         options_.compress_level));
  }
  if (queries_attached() && !tr.items.empty()) {
    TagStateList q1_states;
    TagStateList q2_states;
    std::unordered_map<TagId, TagId> believed;
    for (TagId item : tr.items) {
      believed[item] = streaming_.ContainerOf(item);
      std::vector<uint8_t> s1 = q1_->TakeState(item);
      if (s1 != DefaultPatternStateBytes()) {
        q1_states.emplace_back(item, std::move(s1));
      }
      std::vector<uint8_t> s2 = q2_->TakeState(item);
      if (s2 != DefaultPatternStateBytes()) {
        q2_states.emplace_back(item, std::move(s2));
      }
    }
    if (!q1_states.empty() || !q2_states.empty()) {
      SendRetained(tr.to, MessageKind::kQueryState,
                   EncodeQueryEnvelope(tr.arrive, q1_states, q2_states,
                                       options_.share_query_state,
                                       believed));
    }
  }
}

size_t Site::SendRetained(SiteId to, MessageKind kind,
                          std::vector<uint8_t> payload) {
  const size_t wire = network_->Send(id_, to, kind, payload);
  if (options_.retain_exports) {
    RetainedSend rs;
    rs.to = to;
    rs.kind = kind;
    rs.sent_at = network_->now();
    rs.payload = std::move(payload);
    retained_.push_back(std::move(rs));
  }
  return wire;
}

void Site::DropTransferState(const ObjectTransfer& tr) {
  if (tr.to == kNoSite) {
    Retire(tr);
    return;
  }
  if (queries_attached()) {
    for (TagId item : tr.items) {
      q1_->TakeState(item);
      q2_->TakeState(item);
    }
  }
}

TagId Site::BelievedPallet(TagId tag) const {
  if (pallet_streaming_ == nullptr) return kNoTag;
  if (tag.is_pallet()) return tag;
  if (tag.is_case()) return pallet_streaming_->ContainerOf(tag);
  // Items resolve transitively: item -> believed case -> believed pallet.
  const TagId c = streaming_.ContainerOf(tag);
  if (!c.valid() || !c.is_case()) return kNoTag;
  return pallet_streaming_->ContainerOf(c);
}

void Site::Retire(const ObjectTransfer& tr) {
  if (!queries_attached()) return;
  for (TagId item : tr.items) {
    q1_->TakeState(item);
    q2_->TakeState(item);
  }
}

void Site::HandleMessage(SiteId from, MessageKind kind,
                         const std::vector<uint8_t>& payload) {
  // Append-before-apply: a state-bearing frame reaches the WAL before its
  // payload can mutate site state, so recovery replays exactly what the
  // live site consumed. (No-op during recovery replay -- the record is
  // already on disk.) The batch is fsynced once per delivery drain.
  if (durability_ != nullptr && (kind == MessageKind::kInferenceState ||
                                 kind == MessageKind::kQueryState ||
                                 kind == MessageKind::kRawReadings)) {
    RFID_CHECK_OK(
        durability_->AppendFrame(from, kind, payload, network_->now()));
  }
  switch (kind) {
    case MessageKind::kInferenceState: {
      Result<PendingArrival> arrival = DecodeInferenceEnvelope(payload);
      RFID_CHECK_OK(arrival.status());
      arrival->from = from;
      pending_inference_.push_back(std::move(*arrival));
      break;
    }
    case MessageKind::kQueryState: {
      Result<PendingQueryState> pending = DecodeQueryEnvelope(payload);
      RFID_CHECK_OK(pending.status());
      pending_query_.push_back(std::move(*pending));
      break;
    }
    case MessageKind::kRawReadings: {
      // The centralized server ingests remote readings in one batch --
      // through ObserveBatch so the non-item slice also reaches the
      // pallet-level engine when the hierarchy is on. Identical to the
      // per-reading Observe loop: the history buffer re-sorts at Seal and
      // the batch split selects the same non-item subset in order.
      Result<std::vector<RawReading>> batch = DecodeReadingBatch(payload);
      RFID_CHECK_OK(batch.status());
      ObserveBatch(batch->data(), batch->size());
      break;
    }
    case MessageKind::kDirectory:
      // Directory shards are hosted at sites for the byte accounting, and
      // their frames ride the same transport (and delivery queues) as
      // state migration -- but the payloads are consumed in-process by
      // the Ons; the site itself only carries the charge.
      break;
    case MessageKind::kAck:
      // Acks are consumed by the Network's reliability layer inside
      // DeliverDue and never reach a handler; tolerate one defensively.
      break;
    case MessageKind::kRecoveryRequest: {
      // A rebuilt peer lost every envelope delivered before its crash
      // epoch. Re-send the retained copies addressed to it that were sent
      // strictly before that epoch -- frames sent at or after the crash
      // were purged-then-requeued by the fabric and still deliver
      // normally, so resending them too would double-install state
      // (ImportObjectContext adds weights; each envelope must install
      // exactly once).
      BufferReader r(payload);
      uint64_t crash_at = 0;
      RFID_CHECK_OK(r.GetVarint(&crash_at));
      int64_t resent = 0;
      int64_t resent_bytes = 0;
      for (const RetainedSend& rs : retained_) {
        if (rs.to != from) continue;
        if (rs.sent_at >= static_cast<Epoch>(crash_at)) continue;
        resent_bytes += static_cast<int64_t>(
            network_->Send(id_, from, rs.kind, rs.payload));
        ++resent;
      }
      if (telemetry_ != nullptr && resent > 0) {
        telemetry_->registry()
            .GetCounter("recovery/envelopes_resent")
            ->Add(resent);
        telemetry_->registry()
            .GetCounter("recovery/resent_bytes")
            ->Add(resent_bytes);
      }
      break;
    }
    case MessageKind::kCheckpoint:
      // Disk-only record kind: the durable checkpoint envelope reuses the
      // frame codec as its storage format (dist/durability.cc) but never
      // crosses the network; tolerate one defensively.
      break;
  }
}

// ---- Durable checkpoints ----

namespace {

constexpr uint8_t kCheckpointVersion = 1;

void PutBlob(BufferWriter& w, const std::vector<uint8_t>& bytes) {
  w.PutVarint(bytes.size());
  w.PutBytes(bytes.data(), bytes.size());
}

Status GetBlob(BufferReader& r, std::vector<uint8_t>* out) {
  uint64_t len = 0;
  RFID_RETURN_NOT_OK(r.GetVarint(&len));
  if (len > r.remaining()) {
    return Status::Corruption("truncated checkpoint blob");
  }
  out->resize(static_cast<size_t>(len));
  for (size_t i = 0; i < out->size(); ++i) {
    RFID_RETURN_NOT_OK(r.GetU8(&(*out)[i]));
  }
  return Status::OK();
}

/// One query's durable state: pattern automata (sorted by tag for
/// canonical bytes) plus the alerts it has fired.
void EncodeQueryState(BufferWriter& w, const ExposureQuery& q) {
  std::vector<TagId> tags = q.StatefulObjects();
  std::sort(tags.begin(), tags.end());
  w.PutVarint(tags.size());
  for (TagId tag : tags) {
    w.PutTagId(tag);
    PutBlob(w, q.ExportState(tag));
  }
  w.PutVarint(q.alerts().size());
  for (const ExposureAlert& a : q.alerts()) {
    w.PutTagId(a.tag);
    w.PutSignedVarint(a.first_time);
    w.PutSignedVarint(a.last_time);
    w.PutVarint(static_cast<uint64_t>(a.n_events));
  }
}

Status RestoreQueryState(BufferReader& r, ExposureQuery* q) {
  uint64_t n = 0;
  RFID_RETURN_NOT_OK(r.GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    TagId tag;
    std::vector<uint8_t> bytes;
    RFID_RETURN_NOT_OK(r.GetTagId(&tag));
    RFID_RETURN_NOT_OK(GetBlob(r, &bytes));
    RFID_RETURN_NOT_OK(q->ImportState(tag, bytes));
  }
  uint64_t n_alerts = 0;
  RFID_RETURN_NOT_OK(r.GetVarint(&n_alerts));
  std::vector<ExposureAlert> alerts;
  alerts.reserve(static_cast<size_t>(n_alerts));
  for (uint64_t i = 0; i < n_alerts; ++i) {
    ExposureAlert a;
    uint64_t n_events = 0;
    RFID_RETURN_NOT_OK(r.GetTagId(&a.tag));
    RFID_RETURN_NOT_OK(r.GetSignedVarint(&a.first_time));
    RFID_RETURN_NOT_OK(r.GetSignedVarint(&a.last_time));
    RFID_RETURN_NOT_OK(r.GetVarint(&n_events));
    a.n_events = static_cast<int64_t>(n_events);
    alerts.push_back(a);
  }
  q->RestoreAlerts(alerts);
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> Site::EncodeCheckpoint(Epoch epoch) {
  BufferWriter w;
  w.PutU8(kCheckpointVersion);
  w.PutSignedVarint(id_);
  w.PutSignedVarint(epoch);
  w.PutU8(pallet_streaming_ != nullptr ? 1 : 0);
  streaming_.EncodeSnapshot(&w);
  if (pallet_streaming_ != nullptr) {
    pallet_streaming_->EncodeSnapshot(&w);
  }
  w.PutSignedVarint(event_watermark_);
  w.PutVarint(sensor_cursor_);
  // Pending arrivals (envelope arrival epoch > the cut). Their weights
  // came off the wire float-collapsed, so re-encoding through the
  // migration codec is lossless here.
  w.PutVarint(pending_inference_.size());
  for (const PendingArrival& p : pending_inference_) {
    w.PutSignedVarint(p.arrive);
    w.PutSignedVarint(p.from);
    PutBlob(w, EncodeMigrationStates(p.states));
    PutBlob(w, EncodeMigrationStates(p.case_states));
  }
  w.PutVarint(pending_query_.size());
  for (const PendingQueryState& p : pending_query_) {
    w.PutSignedVarint(p.arrive);
    for (const auto* states : {&p.q1_states, &p.q2_states}) {
      w.PutVarint(states->size());
      for (const auto& [tag, bytes] : *states) {
        w.PutTagId(tag);
        PutBlob(w, bytes);
      }
    }
  }
  w.PutU8(queries_attached() ? 1 : 0);
  if (queries_attached()) {
    EncodeQueryState(w, *q1_);
    EncodeQueryState(w, *q2_);
  }
  return w.Release();
}

Status Site::RestoreCheckpoint(Epoch epoch,
                               const std::vector<uint8_t>& bytes) {
  BufferReader r(bytes);
  uint8_t version = 0;
  RFID_RETURN_NOT_OK(r.GetU8(&version));
  if (version != kCheckpointVersion) {
    return Status::Corruption("unsupported checkpoint version");
  }
  int64_t site = 0, cut = 0;
  RFID_RETURN_NOT_OK(r.GetSignedVarint(&site));
  RFID_RETURN_NOT_OK(r.GetSignedVarint(&cut));
  if (site != id_ || cut != epoch) {
    return Status::Corruption("checkpoint identity mismatch");
  }
  uint8_t hierarchical = 0;
  RFID_RETURN_NOT_OK(r.GetU8(&hierarchical));
  if ((hierarchical != 0) != (pallet_streaming_ != nullptr)) {
    return Status::Corruption("checkpoint hierarchy mismatch");
  }
  RFID_RETURN_NOT_OK(streaming_.RestoreSnapshot(&r));
  if (pallet_streaming_ != nullptr) {
    RFID_RETURN_NOT_OK(pallet_streaming_->RestoreSnapshot(&r));
  }
  RFID_RETURN_NOT_OK(r.GetSignedVarint(&event_watermark_));
  uint64_t cursor = 0;
  RFID_RETURN_NOT_OK(r.GetVarint(&cursor));
  if (cursor > sensors_.size()) {
    return Status::Corruption("sensor cursor past re-added stream");
  }
  uint64_t n = 0;
  RFID_RETURN_NOT_OK(r.GetVarint(&n));
  pending_inference_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    PendingArrival p;
    RFID_RETURN_NOT_OK(r.GetSignedVarint(&p.arrive));
    int64_t from = 0;
    RFID_RETURN_NOT_OK(r.GetSignedVarint(&from));
    p.from = static_cast<SiteId>(from);
    for (auto* batch : {&p.states, &p.case_states}) {
      std::vector<uint8_t> blob;
      RFID_RETURN_NOT_OK(GetBlob(r, &blob));
      RFID_ASSIGN_OR_RETURN(*batch, DecodeMigrationStates(blob));
    }
    pending_inference_.push_back(std::move(p));
  }
  RFID_RETURN_NOT_OK(r.GetVarint(&n));
  pending_query_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    PendingQueryState p;
    RFID_RETURN_NOT_OK(r.GetSignedVarint(&p.arrive));
    for (auto* states : {&p.q1_states, &p.q2_states}) {
      uint64_t m = 0;
      RFID_RETURN_NOT_OK(r.GetVarint(&m));
      for (uint64_t j = 0; j < m; ++j) {
        TagId tag;
        std::vector<uint8_t> blob;
        RFID_RETURN_NOT_OK(r.GetTagId(&tag));
        RFID_RETURN_NOT_OK(GetBlob(r, &blob));
        states->emplace_back(tag, std::move(blob));
      }
    }
    pending_query_.push_back(std::move(p));
  }
  uint8_t had_queries = 0;
  RFID_RETURN_NOT_OK(r.GetU8(&had_queries));
  if ((had_queries != 0) != queries_attached()) {
    return Status::Corruption("checkpoint query attachment mismatch");
  }
  if (queries_attached()) {
    // Re-feed the consumed sensor prefix first: the query joins' latest
    // per-sensor row is a function of that prefix alone (sensor rows
    // never propagate downstream), restoring the join state the pattern
    // imports below continue from.
    for (size_t i = 0; i < cursor; ++i) {
      q1_->OnSensor(sensors_[i]);
      q2_->OnSensor(sensors_[i]);
    }
    RFID_RETURN_NOT_OK(RestoreQueryState(r, q1_.get()));
    RFID_RETURN_NOT_OK(RestoreQueryState(r, q2_.get()));
  }
  sensor_cursor_ = static_cast<size_t>(cursor);
  if (!r.exhausted()) {
    return Status::Corruption("trailing bytes after checkpoint");
  }
  return Status::OK();
}

// ---- Wire codecs ----

std::vector<uint8_t> EncodeInferenceEnvelope(
    Epoch arrive, const std::vector<ObjectMigrationState>& states,
    const std::vector<ObjectMigrationState>& case_states,
    int compress_level) {
  // Two length-prefixed level batches (item→case, then case→pallet) share
  // one deflate stream: the levels' states reference overlapping tags, so
  // compressing them together is strictly cheaper than two streams.
  BufferWriter inner;
  for (const auto* batch : {&states, &case_states}) {
    std::vector<uint8_t> encoded = EncodeMigrationStates(*batch);
    inner.PutVarint(encoded.size());
    inner.PutBytes(encoded.data(), encoded.size());
  }
  std::vector<uint8_t> compressed;
  RFID_CHECK_OK(Compress(inner.Release(), &compressed, compress_level));
  BufferWriter w;
  w.PutVarint(static_cast<uint64_t>(arrive));
  w.PutBytes(compressed.data(), compressed.size());
  return w.Release();
}

Result<PendingArrival> DecodeInferenceEnvelope(
    const std::vector<uint8_t>& payload) {
  BufferReader r(payload);
  uint64_t arrive = 0;
  RFID_RETURN_NOT_OK(r.GetVarint(&arrive));
  // The deflate stream and each inner batch decode straight from their
  // slices -- no tail or per-batch copies.
  std::vector<uint8_t> raw;
  RFID_RETURN_NOT_OK(Decompress(payload.data() + r.position(),
                                payload.size() - r.position(), &raw));
  PendingArrival arrival;
  arrival.arrive = static_cast<Epoch>(arrive);
  BufferReader inner(raw);
  for (auto* batch : {&arrival.states, &arrival.case_states}) {
    uint64_t len = 0;
    RFID_RETURN_NOT_OK(inner.GetVarint(&len));
    if (len > inner.remaining()) {
      return Status::Corruption("truncated migration-state batch");
    }
    const uint8_t* slice = raw.data() + inner.position();
    RFID_RETURN_NOT_OK(inner.Skip(len));
    RFID_ASSIGN_OR_RETURN(*batch, DecodeMigrationStates(slice, len));
  }
  return arrival;
}

std::vector<uint8_t> EncodeQueryEnvelope(
    Epoch arrive, const TagStateList& q1_states,
    const TagStateList& q2_states, bool share,
    const std::unordered_map<TagId, TagId>& believed_container) {
  BufferWriter w;
  w.PutVarint(static_cast<uint64_t>(arrive));
  w.PutU8(share ? 1 : 0);
  EncodeStateBlock(w, q1_states,
                   share ? GroupByContainer(q1_states, believed_container)
                         : std::vector<TagStateList>{},
                   share);
  EncodeStateBlock(w, q2_states,
                   share ? GroupByContainer(q2_states, believed_container)
                         : std::vector<TagStateList>{},
                   share);
  return w.Release();
}

Result<PendingQueryState> DecodeQueryEnvelope(
    const std::vector<uint8_t>& payload) {
  BufferReader r(payload);
  uint64_t arrive = 0;
  RFID_RETURN_NOT_OK(r.GetVarint(&arrive));
  uint8_t share = 0;
  RFID_RETURN_NOT_OK(r.GetU8(&share));
  PendingQueryState pending;
  pending.arrive = static_cast<Epoch>(arrive);
  RFID_RETURN_NOT_OK(DecodeStateBlock(r, share != 0, &pending.q1_states));
  RFID_RETURN_NOT_OK(DecodeStateBlock(r, share != 0, &pending.q2_states));
  return pending;
}

std::vector<uint8_t> EncodeReadingBatch(const std::vector<RawReading>& batch,
                                        int compress_level) {
  return EncodeReadingBatch(batch.data(), batch.size(), compress_level);
}

std::vector<uint8_t> EncodeReadingBatch(const RawReading* batch, size_t n,
                                        int compress_level) {
  Trace trace;
  trace.Append(batch, n);
  trace.Seal();
  std::vector<uint8_t> compressed;
  RFID_CHECK_OK(Compress(EncodeTrace(trace), &compressed, compress_level));
  return compressed;
}

Result<std::vector<RawReading>> DecodeReadingBatch(
    const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> raw;
  RFID_RETURN_NOT_OK(Decompress(payload, &raw));
  RFID_ASSIGN_OR_RETURN(Trace trace, DecodeTrace(raw));
  return trace.TakeReadings();
}

}  // namespace rfid
