#include "dist/frame.h"

#include <zlib.h>

#include <cstring>

namespace rfid {

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

uint32_t Crc32Of(const uint8_t* data, size_t size) {
  return static_cast<uint32_t>(
      crc32(crc32(0L, Z_NULL, 0), data, static_cast<uInt>(size)));
}

}  // namespace

std::string ToString(MessageKind kind) {
  switch (kind) {
    case MessageKind::kRawReadings:
      return "raw_readings";
    case MessageKind::kInferenceState:
      return "inference_state";
    case MessageKind::kQueryState:
      return "query_state";
    case MessageKind::kDirectory:
      return "directory";
    case MessageKind::kAck:
      return "ack";
    case MessageKind::kRecoveryRequest:
      return "recovery_request";
    case MessageKind::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out) {
  const size_t start = out->size();
  out->reserve(start + FrameWireSize(frame.payload.size()));
  PutU32(out, kFrameMagic);
  out->push_back(kFrameVersion);
  out->push_back(static_cast<uint8_t>(frame.kind));
  PutU32(out, static_cast<uint32_t>(frame.from));
  PutU32(out, static_cast<uint32_t>(frame.to));
  PutU64(out, static_cast<uint64_t>(frame.send_epoch));
  PutU64(out, frame.seq);
  PutU64(out, frame.link_seq);
  PutU32(out, static_cast<uint32_t>(frame.payload.size()));
  out->insert(out->end(), frame.payload.begin(), frame.payload.end());
  PutU32(out, Crc32Of(out->data() + start, out->size() - start));
}

std::vector<uint8_t> EncodeFrameToBytes(const Frame& frame) {
  std::vector<uint8_t> out;
  EncodeFrame(frame, &out);
  return out;
}

Status DecodeFrameView(const uint8_t* data, size_t size, FrameView* out,
                       size_t* consumed) {
  *consumed = 0;
  if (size < kFrameHeaderBytes) {
    return Status::ResourceExhausted("frame header incomplete");
  }
  if (ReadU32(data) != kFrameMagic) {
    return Status::Corruption("bad frame magic");
  }
  if (data[4] != kFrameVersion) {
    return Status::Corruption("unsupported frame version");
  }
  const uint32_t payload_len = ReadU32(data + 38);
  if (payload_len > kMaxFramePayloadBytes) {
    return Status::Corruption("frame payload length implausible");
  }
  const size_t wire = FrameWireSize(payload_len);
  if (size < wire) {
    return Status::ResourceExhausted("frame body incomplete");
  }
  // CRC before the kind check: a checksum failure (including a flipped
  // kind byte) is in-frame corruption with a trustworthy length, so the
  // caller can skip the frame and resynchronize -- signalled by
  // *consumed = wire size.
  const uint32_t stored_crc = ReadU32(data + kFrameHeaderBytes + payload_len);
  const uint32_t actual_crc =
      Crc32Of(data, kFrameHeaderBytes + payload_len);
  if (stored_crc != actual_crc) {
    *consumed = wire;
    return Status::Corruption("frame checksum mismatch");
  }
  if (data[5] >= static_cast<uint8_t>(kNumMessageKinds)) {
    *consumed = wire;
    return Status::Corruption("unknown message kind");
  }
  out->kind = static_cast<MessageKind>(data[5]);
  out->from = static_cast<SiteId>(ReadU32(data + 6));
  out->to = static_cast<SiteId>(ReadU32(data + 10));
  out->send_epoch = static_cast<Epoch>(ReadU64(data + 14));
  out->seq = ReadU64(data + 22);
  out->link_seq = ReadU64(data + 30);
  out->payload = data + kFrameHeaderBytes;
  out->payload_len = payload_len;
  *consumed = wire;
  return Status::OK();
}

Status DecodeFrame(const uint8_t* data, size_t size, Frame* out,
                   size_t* consumed) {
  FrameView view;
  RFID_RETURN_NOT_OK(DecodeFrameView(data, size, &view, consumed));
  *out = view.ToFrame();
  return Status::OK();
}

}  // namespace rfid
