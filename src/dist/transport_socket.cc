#include "dist/transport_socket.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <utility>

#include "common/status.h"
#include "obs/telemetry.h"

namespace rfid {

namespace {

/// Distinguishes concurrently-live transports within one process so their
/// abstract socket names never collide.
std::atomic<uint64_t> g_instance_counter{0};

[[noreturn]] void FatalErrno(const char* what) {
  RFID_CHECK_OK(Status::IOError(std::string(what) + ": " + strerror(errno)));
  // RFID_CHECK_OK aborts on non-OK; unreachable.
  std::abort();
}

/// Fills an abstract-namespace sockaddr_un ('\0' + name) and returns the
/// address length to pass to bind/connect.
socklen_t AbstractAddr(const std::string& name, sockaddr_un* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  // sun_path[0] stays '\0': Linux abstract namespace, auto-cleaned on
  // close, never touches the filesystem.
  const size_t n = std::min(name.size(), sizeof(addr->sun_path) - 1);
  memcpy(addr->sun_path + 1, name.data(), n);
  return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + 1 + n);
}

}  // namespace

SocketTransport::SocketTransport(int num_sites)
    : instance_(g_instance_counter.fetch_add(1)) {
  if (num_sites < 0) num_sites = 0;
  listeners_.reserve(static_cast<size_t>(num_sites));
  accepted_.resize(static_cast<size_t>(num_sites));
  parsed_.resize(static_cast<size_t>(num_sites));
  for (int site = 0; site < num_sites; ++site) {
    const int fd =
        socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) FatalErrno("socket(listener)");
    sockaddr_un addr;
    const socklen_t len = AbstractAddr(ListenerName(site), &addr);
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), len) != 0) {
      FatalErrno("bind(listener)");
    }
    if (listen(fd, 128) != 0) FatalErrno("listen");
    listeners_.push_back(fd);
  }
}

SocketTransport::~SocketTransport() {
  // lint:allow(unordered-iter): fd close-out at teardown; nothing
  // observable depends on close order.
  for (auto& [key, fd] : out_fds_) close(fd);
  for (auto& conns : accepted_) {
    for (Conn& c : conns) close(c.fd);
  }
  for (int fd : listeners_) close(fd);
}

std::string SocketTransport::ListenerName(int site) const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "rfid-net-%d-%llu-%d",
                static_cast<int>(getpid()),
                static_cast<unsigned long long>(instance_), site);
  return buf;
}

int SocketTransport::GetOrConnect(SiteId from, SiteId to) {
  auto it = out_fds_.find(LinkKey(from, to));
  if (it != out_fds_.end()) return it->second;
  const int fd =
      socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) FatalErrno("socket(out)");
  sockaddr_un addr;
  const socklen_t len = AbstractAddr(ListenerName(to), &addr);
  // AF_UNIX connect to a listening socket completes immediately (no
  // handshake); EAGAIN only when the backlog overflows, which 128 pending
  // connections from < 128 peer sites cannot.
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), len) != 0) {
    FatalErrno("connect");
  }
  out_fds_.emplace(LinkKey(from, to), fd);
  return fd;
}

size_t SocketTransport::Send(Frame frame) {
  phase_.AssertHeld();
  const size_t wire = FrameWireSize(frame.payload.size());
  if (frame.to < 0 || frame.to >= num_sites()) {
    local_[frame.to].push_back(std::move(frame));
    return wire;
  }
  {
    obs::PhaseTimer span(telemetry_, obs::Phase::kFrameEncode,
                         frame.send_epoch);
    encode_buf_.clear();
    EncodeFrame(frame, &encode_buf_);
  }
  WriteEncoded(frame.from, frame.to, frame.send_epoch);
  return wire;
}

size_t SocketTransport::SendCorrupt(Frame frame, size_t offset,
                                    uint8_t mask) {
  phase_.AssertHeld();
  const size_t wire = FrameWireSize(frame.payload.size());
  if (frame.to < 0 || frame.to >= num_sites()) {
    // No wire to damage for unhosted destinations; the corrupted frame is
    // simply lost, matching the in-process default.
    return wire;
  }
  {
    obs::PhaseTimer span(telemetry_, obs::Phase::kFrameEncode,
                         frame.send_epoch);
    encode_buf_.clear();
    EncodeFrame(frame, &encode_buf_);
  }
  if (offset < encode_buf_.size() && mask != 0) {
    encode_buf_[offset] ^= mask;
  }
  WriteEncoded(frame.from, frame.to, frame.send_epoch);
  return wire;
}

void SocketTransport::WriteEncoded(SiteId from, SiteId to, Epoch epoch) {
  const int fd = GetOrConnect(from, to);
  obs::PhaseTimer span(telemetry_, obs::Phase::kKernelWrite, epoch);
  size_t written = 0;
  while (written < encode_buf_.size()) {
    const ssize_t n = write(fd, encode_buf_.data() + written,
                            encode_buf_.size() - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Receive buffer full: play the remote reader ourselves -- drain the
      // destination's sockets into user-space frames, freeing kernel
      // buffer space, then finish the write.
      Pump(to);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    FatalErrno("write(frame)");
  }
}

void SocketTransport::Pump(int site) {
  // The transport has no replay clock; kernel-read slices carry epoch 0.
  obs::PhaseTimer span(telemetry_, obs::Phase::kKernelRead, /*epoch=*/0);
  // Accept every connection waiting on this site's listener...
  while (true) {
    const int fd = accept4(listeners_[static_cast<size_t>(site)], nullptr,
                           nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      FatalErrno("accept4");
    }
    accepted_[static_cast<size_t>(site)].push_back(Conn{fd, {}});
  }
  // ...then read everything available and decode complete frames.
  //
  // Complete frames are decoded as zero-copy FrameViews straight out of
  // whichever contiguous bytes hold them -- the fresh recv chunk when the
  // connection has no carry-over, else the reassembly buffer -- and only
  // the materialized frames and the trailing partial frame are copied.
  // Steady-state traffic (whole frames per read) thus never touches
  // conn.buf at all.
  uint8_t chunk[65536];
  std::vector<Frame>& out = parsed_[static_cast<size_t>(site)];
  // Drops a frame whose header parsed but whose checksum (or checksummed
  // kind byte) did not: recoverable wire damage -- count it and skip to
  // the next frame boundary. consumed == 0 means framing itself is gone
  // (bad magic/version/length); that is a codec or transport bug, never
  // recoverable input.
  const auto drop_corrupt = [&](const Status& st, size_t consumed) {
    RFID_CHECK_OK(consumed > 0 ? Status::OK() : st);
    ++crc_drops_;
    if (telemetry_ != nullptr) {
      telemetry_->registry().GetCounter("transport/crc_drops")->Add(1);
    }
  };
  // Decodes every complete frame in [data, data+size); returns the number
  // of bytes consumed (the remainder is an incomplete tail).
  const auto decode_all = [&](const uint8_t* data, size_t size) -> size_t {
    size_t pos = 0;
    while (pos < size) {
      FrameView view;
      size_t consumed = 0;
      const Status st =
          DecodeFrameView(data + pos, size - pos, &view, &consumed);
      if (FrameIncomplete(st)) break;
      if (!st.ok()) {
        drop_corrupt(st, consumed);
        pos += consumed;
        continue;
      }
      pos += consumed;
      out.push_back(view.ToFrame());
    }
    return pos;
  };
  for (Conn& conn : accepted_[static_cast<size_t>(site)]) {
    while (true) {
      const ssize_t n = read(conn.fd, chunk, sizeof(chunk));
      if (n > 0) {
        if (conn.buf.empty()) {
          // Fast path: decode in place from the recv chunk; buffer only
          // the partial tail.
          const size_t used = decode_all(chunk, static_cast<size_t>(n));
          if (used < static_cast<size_t>(n)) {
            conn.buf.insert(conn.buf.end(), chunk + used, chunk + n);
          }
        } else {
          conn.buf.insert(conn.buf.end(), chunk, chunk + n);
        }
        continue;
      }
      if (n == 0) break;  // peer closed; whole frames already buffered
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      FatalErrno("read(frame)");
    }
    if (!conn.buf.empty()) {
      const size_t pos = decode_all(conn.buf.data(), conn.buf.size());
      if (pos > 0) {
        conn.buf.erase(conn.buf.begin(),
                       conn.buf.begin() + static_cast<long>(pos));
      }
    }
  }
}

void SocketTransport::Drain(SiteId site, std::vector<Frame>* out) {
  phase_.AssertHeld();
  if (site >= 0 && site < num_sites()) {
    Pump(site);
    std::vector<Frame>& ready = parsed_[static_cast<size_t>(site)];
    out->insert(out->end(), std::make_move_iterator(ready.begin()),
                std::make_move_iterator(ready.end()));
    ready.clear();
  }
  auto it = local_.find(site);
  if (it != local_.end()) {
    out->insert(out->end(), std::make_move_iterator(it->second.begin()),
                std::make_move_iterator(it->second.end()));
    it->second.clear();
  }
}

}  // namespace rfid
