// Bulk-synchronous parallel executor for the distributed replay
// (Section 5.2's deployment, where "each warehouse is provisioned with a
// server" that computes independently between exchanges): a persistent
// worker pool that fans independent per-site work items across threads and
// joins before the caller proceeds to the next serial boundary phase (ONS
// updates, transfer exports, Network sends -- the cross-site effects of
// Section 4.1/5.2).
//
// The pool exists because inter-boundary site work is embarrassingly
// parallel -- sites only interact through Network::Send at transfer and
// flush epochs -- so DistributedSystem can run every site's
// Observe/AdvanceTo window (the Section 4.1 streaming inference, both
// containment levels under Appendix A.4 hierarchy) concurrently and still
// produce bit-identical results to the serial replay: each work item
// touches only one site's state, and every cross-site effect happens in
// the serial phase between Run() calls. The same pool fans out the
// read-only per-tag accuracy scans behind the Figures 5(e)/5(f) error
// sampling (exact integer count merging keeps them bit-identical too).
// The resulting phase structure is diagrammed in docs/ARCHITECTURE.md.
#ifndef RFID_DIST_EXECUTOR_H_
#define RFID_DIST_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace rfid {

/// Sentinel for "use std::thread::hardware_concurrency()".
inline constexpr int kAutoThreads = -1;

/// A fixed pool of worker threads executing indexed work items. One
/// executor drives one replay; Run() is not reentrant and must always be
/// called from the same (owning) thread.
class SiteExecutor {
 public:
  /// Maps a requested thread count to an effective one: negative values
  /// resolve to the hardware concurrency (at least 1); 0 and 1 mean serial
  /// in-line execution on the caller.
  static int ResolveThreads(int requested);

  /// Spawns `ResolveThreads(num_threads) - 1` workers; the caller thread is
  /// the remaining executor during Run().
  explicit SiteExecutor(int num_threads);
  ~SiteExecutor();

  SiteExecutor(const SiteExecutor&) = delete;
  SiteExecutor& operator=(const SiteExecutor&) = delete;

  /// Effective thread count (workers + caller); 1 means serial.
  int num_threads() const { return num_threads_; }
  bool serial() const { return workers_.empty(); }

  using Task = std::function<void(size_t)>;

  /// Invokes fn(i) exactly once for every i in [0, n), potentially
  /// concurrently, and returns when all invocations have completed. `fn`
  /// must confine each index to disjoint state (one site per index). With
  /// no workers the calls run in order on the caller.
  void Run(size_t n, const Task& fn);

 private:
  void WorkerLoop();

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  // All task state is guarded by mu_. Indices are claimed under the lock
  // and executed outside it; items are coarse (a whole site window), so
  // dispatch contention is negligible against inference cost.
  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  const Task* task_ GUARDED_BY(mu_) = nullptr;
  size_t next_ GUARDED_BY(mu_) = 0;
  size_t n_ GUARDED_BY(mu_) = 0;
  size_t done_ GUARDED_BY(mu_) = 0;
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace rfid

#endif  // RFID_DIST_EXECUTOR_H_
