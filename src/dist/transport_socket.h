// Loopback socket backend for the Network (ROADMAP "real socket backend"):
// every site owns a listening Unix-domain stream socket (Linux abstract
// namespace, so no filesystem paths to clean up), senders connect lazily
// -- one connection per directed (from, to) link, preserving per-link FIFO
// -- and every frame is encoded by dist/frame.h, written through the
// kernel, and re-decoded (checksum verified) on the receiving side.
//
// The backend is single-threaded by the Transport contract: Send and Drain
// only run in the replay's serial phases. Deadlock with full socket
// buffers is impossible because a blocked Send pumps the destination's
// receive side (accepting connections and buffering frames in user space)
// until the kernel accepts the rest of the write -- sender and receiver
// live in the same process, so the "remote" reader is always available.
//
// Frames addressed outside [0, num_sites) -- e.g. the synthetic
// kDirectorySite of an unhosted ONS -- fall back to an in-memory queue:
// there is no listener to carry them, but accounting and delivery must
// stay identical to the in-process backend.
#ifndef RFID_DIST_TRANSPORT_SOCKET_H_
#define RFID_DIST_TRANSPORT_SOCKET_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "dist/network.h"

namespace rfid {

class SocketTransport : public Transport {
 public:
  /// Binds one loopback listener per site in [0, num_sites). Aborts on
  /// socket setup failure (unrecoverable environment problem).
  explicit SocketTransport(int num_sites);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  size_t Send(Frame frame) override;
  /// Really writes the damaged encoding (one byte XORed by `mask` at
  /// `offset`) through the kernel; the receiving Pump's CRC check drops
  /// the frame and counts a crc_drop. The corruption the FaultModel
  /// injects thereby exercises the same code path a hostile wire would.
  size_t SendCorrupt(Frame frame, size_t offset, uint8_t mask) override;
  void Drain(SiteId site, std::vector<Frame>* out) override;
  std::string name() const override { return "socket"; }

  int num_sites() const { return static_cast<int>(listeners_.size()); }

  /// Reassembled frames dropped for a CRC mismatch (or an unknown kind
  /// under a valid CRC) -- the connection stays alive and later frames
  /// keep flowing. Mirrored to the "transport/crc_drops" counter.
  int64_t crc_drops() const {
    phase_.AssertShared();
    return crc_drops_;
  }

  /// The abstract-namespace listener address of `site`, for tests that
  /// connect their own socket and write raw (possibly corrupted) bytes.
  std::string ListenerAddressForTest(int site) const {
    return ListenerName(site);
  }

  /// Attaches the run's telemetry: frame encode / kernel write / kernel
  /// read spans (obs/telemetry.h). Null detaches. Observation only.
  void SetTelemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }

 private:
  struct Conn {
    int fd = -1;
    std::vector<uint8_t> buf;  ///< Reassembly buffer of partial frames.
  };

  /// Abstract-namespace address of `site`'s listener for this transport
  /// instance (unique per process + instance).
  std::string ListenerName(int site) const;
  /// Accepts pending connections on `site`'s listener and reads every
  /// available byte, decoding complete frames into parsed_[site].
  void Pump(int site) REQUIRES(phase_);
  int GetOrConnect(SiteId from, SiteId to) REQUIRES(phase_);
  /// Writes encode_buf_ over the (from, to) connection, pumping the
  /// destination on EAGAIN.
  void WriteEncoded(SiteId from, SiteId to, Epoch epoch) REQUIRES(phase_);

  static uint64_t LinkKey(SiteId from, SiteId to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }

  /// Single-threaded by the Transport contract (all calls from the
  /// replay's serial phases); machine-checked like Network::phase_.
  SerialPhase phase_;

  uint64_t instance_ = 0;
  std::vector<int> listeners_;
  std::vector<std::vector<Conn>> accepted_
      GUARDED_BY(phase_);  ///< Per destination site.
  std::vector<std::vector<Frame>> parsed_
      GUARDED_BY(phase_);  ///< Drained but unclaimed.
  std::unordered_map<uint64_t, int> out_fds_ GUARDED_BY(phase_);
  /// Destinations with no listener (kDirectorySite etc.).
  std::unordered_map<SiteId, std::vector<Frame>> local_ GUARDED_BY(phase_);
  std::vector<uint8_t> encode_buf_ GUARDED_BY(phase_);
  int64_t crc_drops_ GUARDED_BY(phase_) = 0;
  obs::Telemetry* telemetry_ = nullptr;
};

}  // namespace rfid

#endif  // RFID_DIST_TRANSPORT_SOCKET_H_
