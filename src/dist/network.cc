#include "dist/network.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "common/status.h"
#include "dist/transport_socket.h"
#include "obs/telemetry.h"

namespace rfid {

std::string ToString(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess:
      return "in_process";
    case TransportKind::kSocket:
      return "socket";
  }
  return "unknown";
}

TransportKind TransportKindFromEnv() {
  const char* env = std::getenv("RFID_TRANSPORT");
  if (env != nullptr && std::strcmp(env, "socket") == 0) {
    return TransportKind::kSocket;
  }
  return TransportKind::kInProcess;
}

// ---- InProcessTransport ----

size_t InProcessTransport::Send(Frame frame) {
  const size_t wire = FrameWireSize(frame.payload.size());
  queues_[frame.to].push_back(std::move(frame));
  return wire;
}

void InProcessTransport::Drain(SiteId site, std::vector<Frame>* out) {
  auto it = queues_.find(site);
  if (it == queues_.end()) return;
  out->insert(out->end(), std::make_move_iterator(it->second.begin()),
              std::make_move_iterator(it->second.end()));
  it->second.clear();
}

// ---- Network ----

Network::Network() : transport_(std::make_unique<InProcessTransport>()) {}

Network::~Network() = default;

void Network::ConfigureTransport(TransportKind kind, int num_sites) {
  RFID_CHECK_OK(in_flight_messages_ == 0
                    ? Status::OK()
                    : Status::Internal("ConfigureTransport with frames in "
                                       "flight would strand them"));
  transport_kind_ = kind;
  switch (kind) {
    case TransportKind::kInProcess:
      transport_ = std::make_unique<InProcessTransport>();
      break;
    case TransportKind::kSocket: {
      auto socket = std::make_unique<SocketTransport>(num_sites);
      socket->SetTelemetry(telemetry_);
      transport_ = std::move(socket);
      break;
    }
  }
}

void Network::SetTelemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (transport_kind_ == TransportKind::kSocket) {
    static_cast<SocketTransport*>(transport_.get())->SetTelemetry(telemetry);
  }
}

void Network::Configure(NetworkOptions options) {
  RFID_CHECK_OK(in_flight_messages_ == 0
                    ? Status::OK()
                    : Status::Internal("Configure with frames in flight "
                                       "would reschedule them"));
  options_ = std::move(options);
}

void Network::RegisterHandler(SiteId site, MessageHandler handler) {
  handlers_[site] = std::move(handler);
}

Epoch Network::LatencyOf(SiteId from, SiteId to, size_t wire_bytes) const {
  Epoch latency = options_.link_base ? options_.link_base(from, to)
                                     : options_.latency_base;
  if (options_.latency_per_kib > 0) {
    latency += options_.latency_per_kib *
               static_cast<Epoch>((wire_bytes + 1023) / 1024);
  }
  return latency < 0 ? 0 : latency;
}

size_t Network::Send(SiteId from, SiteId to, MessageKind kind,
                     const std::vector<uint8_t>& payload) {
  obs::PhaseTimer span(telemetry_, obs::Phase::kTransportSend, now_);
  Frame frame;
  frame.from = from;
  frame.to = to;
  frame.kind = kind;
  frame.send_epoch = now_;
  frame.seq = next_seq_++;
  frame.payload = payload;
  const size_t wire = transport_->Send(std::move(frame));
  RFID_CHECK_OK(wire == FrameWireSize(payload.size())
                    ? Status::OK()
                    : Status::Internal("transport wire size disagrees with "
                                       "the frame codec"));
  const int64_t n = static_cast<int64_t>(wire);
  link_bytes_[LinkKey(from, to)] += n;
  link_messages_[LinkKey(from, to)] += 1;
  kind_bytes_[static_cast<size_t>(kind)] += n;
  kind_messages_[static_cast<size_t>(kind)] += 1;
  total_bytes_ += n;
  total_messages_ += 1;
  in_flight_bytes_ += n;
  in_flight_messages_ += 1;
  if (telemetry_ != nullptr) {
    telemetry_->AddWireBytes(static_cast<int>(kind), ToString(kind), n);
  }
  return wire;
}

int Network::DeliverDue(SiteId site, Epoch now) {
  // Pull everything the transport has for this site, stamp arrival epochs,
  // and merge into the site's pending queue. The transport may hand frames
  // back in any order; (arrive, seq) restores the deterministic total
  // order.
  std::vector<Frame> drained;
  transport_->Drain(site, &drained);
  if (!drained.empty()) {
    ArrivalQueue& q = pending_[site];
    for (Frame& f : drained) {
      const Epoch arrive =
          f.send_epoch +
          LatencyOf(f.from, f.to, FrameWireSize(f.payload.size()));
      q.push(QueuedFrame{arrive, std::move(f)});
    }
  }
  auto it = pending_.find(site);
  if (it == pending_.end()) return 0;
  ArrivalQueue& q = it->second;
  int delivered = 0;
  auto handler_it = handlers_.find(site);
  MessageHandler* handler =
      handler_it != handlers_.end() && handler_it->second
          ? &handler_it->second
          : nullptr;
  while (!q.empty() && q.top().arrive <= now) {
    const QueuedFrame& top = q.top();
    in_flight_messages_ -= 1;
    in_flight_bytes_ -=
        static_cast<int64_t>(FrameWireSize(top.frame.payload.size()));
    if (handler != nullptr) {
      (*handler)(top.frame.from, top.frame.kind, top.frame.payload);
    }
    q.pop();
    ++delivered;
  }
  return delivered;
}

int64_t Network::BytesOnLink(SiteId from, SiteId to) const {
  auto it = link_bytes_.find(LinkKey(from, to));
  return it == link_bytes_.end() ? 0 : it->second;
}

int64_t Network::MessagesOnLink(SiteId from, SiteId to) const {
  auto it = link_messages_.find(LinkKey(from, to));
  return it == link_messages_.end() ? 0 : it->second;
}

void Network::ResetCounters() {
  link_bytes_.clear();
  link_messages_.clear();
  for (int64_t& b : kind_bytes_) b = 0;
  for (int64_t& m : kind_messages_) m = 0;
  total_bytes_ = 0;
  total_messages_ = 0;
  // in_flight_{bytes,messages}_ are live queue gauges, not history: a
  // frame still in the transport stays in flight across a counter reset.
}

}  // namespace rfid
