#include "dist/network.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"
#include "dist/transport_socket.h"
#include "obs/telemetry.h"

namespace rfid {

std::string ToString(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess:
      return "in_process";
    case TransportKind::kSocket:
      return "socket";
  }
  return "unknown";
}

TransportKind TransportKindFromEnv() {
  const char* env = std::getenv("RFID_TRANSPORT");
  if (env != nullptr && std::strcmp(env, "socket") == 0) {
    return TransportKind::kSocket;
  }
  return TransportKind::kInProcess;
}

// ---- FaultModel ----

FrameFate FaultModel::FateOf(uint64_t seq, uint32_t attempt) const {
  // A private SplitMix64 stream per (seed, seq, attempt): the fate of a
  // transmission attempt depends on nothing else -- not the backend, not
  // the thread count, not how many other frames were sent -- which is what
  // makes faulty runs bit-identical. A fixed draw schedule keeps the
  // stream layout stable regardless of which fates trigger.
  uint64_t state = seed;
  state += (seq + 1) * 0x9e3779b97f4a7c15ull;
  state += (static_cast<uint64_t>(attempt) + 1) * 0xbf58476d1ce4e5b9ull;
  auto unit = [&state]() {
    return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
  };
  const double u_drop = unit();
  const double u_corrupt = unit();
  const double u_dup = unit();
  const double u_reorder = unit();
  const uint64_t r_offset = SplitMix64(state);
  const uint64_t r_mask = SplitMix64(state);
  const uint64_t r_delay = SplitMix64(state);
  const uint64_t r_dup_delay = SplitMix64(state);

  FrameFate fate;
  if (u_drop < drop) {
    fate.drop = true;
    return fate;
  }
  if (u_corrupt < corrupt) {
    fate.corrupt = true;
    fate.corrupt_offset = static_cast<size_t>(r_offset);
    fate.corrupt_mask = static_cast<uint8_t>(r_mask) | 1;  // nonzero
    return fate;
  }
  const Epoch span = reorder_delay_max >= reorder_delay_min
                         ? reorder_delay_max - reorder_delay_min + 1
                         : 1;
  if (u_reorder < reorder) {
    fate.extra_delay =
        reorder_delay_min + static_cast<Epoch>(r_delay % span);
  }
  if (u_dup < duplicate) {
    fate.duplicate = true;
    fate.duplicate_delay =
        reorder_delay_min + static_cast<Epoch>(r_dup_delay % span);
  }
  return fate;
}

bool FaultModel::Partitioned(SiteId from, SiteId to, Epoch at) const {
  for (const LinkPartition& p : partitions) {
    if (at < p.begin || at >= p.end) continue;
    const bool fwd = (p.a == kNoSite || p.a == from) &&
                     (p.b == kNoSite || p.b == to);
    const bool rev = p.bidirectional && (p.a == kNoSite || p.a == to) &&
                     (p.b == kNoSite || p.b == from);
    if (fwd || rev) return true;
  }
  return false;
}

FaultModel FaultModelFromEnv() {
  FaultModel m;
  const char* env = std::getenv("RFID_FAULTS");
  if (env == nullptr || *env == '\0') return m;
  const std::string s(env);
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string kv = s.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t eq = kv.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    if (key == "drop") {
      m.drop = std::atof(val.c_str());
    } else if (key == "dup" || key == "duplicate") {
      m.duplicate = std::atof(val.c_str());
    } else if (key == "reorder") {
      m.reorder = std::atof(val.c_str());
    } else if (key == "corrupt") {
      m.corrupt = std::atof(val.c_str());
    } else if (key == "seed") {
      m.seed = std::strtoull(val.c_str(), nullptr, 10);
    } else if (key == "delay_min") {
      m.reorder_delay_min = static_cast<Epoch>(std::atoll(val.c_str()));
    } else if (key == "delay_max") {
      m.reorder_delay_max = static_cast<Epoch>(std::atoll(val.c_str()));
    }
  }
  return m;
}

NetworkOptions::NetworkOptions() : faults(FaultModelFromEnv()) {}

// ---- InProcessTransport ----

size_t InProcessTransport::Send(Frame frame) {
  const size_t wire = FrameWireSize(frame.payload.size());
  queues_[frame.to].push_back(std::move(frame));
  return wire;
}

void InProcessTransport::Drain(SiteId site, std::vector<Frame>* out) {
  auto it = queues_.find(site);
  if (it == queues_.end()) return;
  out->insert(out->end(), std::make_move_iterator(it->second.begin()),
              std::make_move_iterator(it->second.end()));
  it->second.clear();
}

// ---- Network ----

Network::Network() : transport_(std::make_unique<InProcessTransport>()) {}

Network::~Network() = default;

void Network::ConfigureTransport(TransportKind kind, int num_sites) {
  phase_.AssertHeld();
  RFID_CHECK_OK(in_flight_messages_ == 0
                    ? Status::OK()
                    : Status::Internal("ConfigureTransport with frames in "
                                       "flight would strand them"));
  transport_kind_ = kind;
  switch (kind) {
    case TransportKind::kInProcess:
      transport_ = std::make_unique<InProcessTransport>();
      break;
    case TransportKind::kSocket: {
      auto socket = std::make_unique<SocketTransport>(num_sites);
      socket->SetTelemetry(telemetry_);
      transport_ = std::move(socket);
      break;
    }
  }
}

void Network::SetTelemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (transport_kind_ == TransportKind::kSocket) {
    static_cast<SocketTransport*>(transport_.get())->SetTelemetry(telemetry);
  }
}

void Network::Configure(NetworkOptions options) {
  phase_.AssertHeld();
  RFID_CHECK_OK(in_flight_messages_ == 0
                    ? Status::OK()
                    : Status::Internal("Configure with frames in flight "
                                       "would reschedule them"));
  options_ = std::move(options);
  reliable_ =
      options_.reliability.mode == ReliabilityOptions::Mode::kOn ||
      (options_.reliability.mode == ReliabilityOptions::Mode::kAuto &&
       options_.faults.enabled());
}

void Network::RegisterHandler(SiteId site, MessageHandler handler) {
  phase_.AssertHeld();
  handlers_[site] = std::move(handler);
}

Epoch Network::LatencyOf(SiteId from, SiteId to, size_t wire_bytes) const {
  Epoch latency = options_.link_base ? options_.link_base(from, to)
                                     : options_.latency_base;
  if (options_.latency_per_kib > 0) {
    latency += options_.latency_per_kib *
               static_cast<Epoch>((wire_bytes + 1023) / 1024);
  }
  return latency < 0 ? 0 : latency;
}

void Network::BumpTelemetry(const char* name, int64_t n) {
  if (telemetry_ != nullptr) {
    telemetry_->registry().GetCounter(name)->Add(n);
  }
}

void Network::ChargeCounters(const Frame& frame, size_t wire) {
  const int64_t n = static_cast<int64_t>(wire);
  link_bytes_[LinkKey(frame.from, frame.to)] += n;
  link_messages_[LinkKey(frame.from, frame.to)] += 1;
  kind_bytes_[static_cast<size_t>(frame.kind)] += n;
  kind_messages_[static_cast<size_t>(frame.kind)] += 1;
  total_bytes_ += n;
  total_messages_ += 1;
  if (telemetry_ != nullptr) {
    telemetry_->AddWireBytes(static_cast<int>(frame.kind),
                             ToString(frame.kind), n);
  }
}

void Network::Transmit(const Frame& frame, uint32_t attempt) {
  const size_t wire = FrameWireSize(frame.payload.size());
  // Every transmission attempt is charged: bytes hit the wire whether or
  // not a fault eats them afterwards. Only copies that actually land in a
  // delivery queue count as in flight.
  ChargeCounters(frame, wire);
  if (options_.faults.Partitioned(frame.from, frame.to, now_)) {
    ++fault_stats_.partition_drops;
    BumpTelemetry("fault/partition_drops", 1);
    return;
  }
  const FrameFate fate = options_.faults.enabled()
                             ? options_.faults.FateOf(frame.seq, attempt)
                             : FrameFate{};
  if (fate.drop) {
    ++fault_stats_.drops;
    BumpTelemetry("fault/drops", 1);
    return;
  }
  if (fate.corrupt) {
    ++fault_stats_.corrupts;
    BumpTelemetry("fault/corrupts", 1);
    // Flip one byte past the header (payload or CRC region) so the frame
    // stays parseable but fails its checksum: the socket receiver drops
    // and counts it; the in-process default discards outright.
    const size_t region = frame.payload.size() + kFrameTrailerBytes;
    const size_t offset =
        kFrameHeaderBytes + (fate.corrupt_offset % region);
    const size_t got =
        transport_->SendCorrupt(frame, offset, fate.corrupt_mask);
    RFID_CHECK_OK(got == wire ? Status::OK()
                              : Status::Internal("corrupt wire size "
                                                 "disagrees with codec"));
    return;
  }
  Frame copy = frame;
  if (fate.extra_delay > 0) {
    ++fault_stats_.reorders;
    BumpTelemetry("fault/reorders", 1);
    copy.send_epoch += fate.extra_delay;
  }
  const size_t got = transport_->Send(std::move(copy));
  RFID_CHECK_OK(got == wire
                    ? Status::OK()
                    : Status::Internal("transport wire size disagrees with "
                                       "the frame codec"));
  in_flight_bytes_ += static_cast<int64_t>(wire);
  in_flight_messages_ += 1;
  if (fate.duplicate) {
    ++fault_stats_.duplicates;
    BumpTelemetry("fault/duplicates", 1);
    ChargeCounters(frame, wire);
    Frame dup = frame;
    dup.send_epoch += fate.duplicate_delay;
    transport_->Send(std::move(dup));
    in_flight_bytes_ += static_cast<int64_t>(wire);
    in_flight_messages_ += 1;
  }
}

void Network::TrackAndTransmit(LinkSendState* link, Frame frame) {
  frame.link_seq = link->next_link_seq++;
  Transmit(frame, 0);
  const uint64_t ls = frame.link_seq;
  TrackedFrame tf;
  tf.next_retry = now_ + options_.reliability.rto;
  tf.attempts = 1;
  tf.frame = std::move(frame);
  link->unacked.emplace(ls, std::move(tf));
}

void Network::ReleaseDeferred(LinkSendState* link) {
  while (!link->deferred.empty() &&
         static_cast<int>(link->unacked.size()) <
             options_.reliability.window) {
    Frame f = std::move(link->deferred.front());
    link->deferred.pop_front();
    f.send_epoch = now_;
    TrackAndTransmit(link, std::move(f));
  }
}

void Network::HandleAck(const Frame& ack) {
  // The ack travels receiver -> sender, so the link it acknowledges is
  // (ack.to -> ack.from).
  BufferReader r(ack.payload);
  uint64_t cum = 0;
  if (!r.GetVarint(&cum).ok()) return;
  auto it = send_links_.find(LinkKey(ack.to, ack.from));
  if (it == send_links_.end()) return;
  LinkSendState& link = it->second;
  while (!link.unacked.empty() && link.unacked.begin()->first <= cum) {
    link.unacked.erase(link.unacked.begin());
  }
  ReleaseDeferred(&link);
}

size_t Network::Send(SiteId from, SiteId to, MessageKind kind,
                     const std::vector<uint8_t>& payload) {
  phase_.AssertHeld();
  obs::PhaseTimer span(telemetry_, obs::Phase::kTransportSend, now_);
  Frame frame;
  frame.from = from;
  frame.to = to;
  frame.kind = kind;
  frame.send_epoch = now_;
  frame.seq = next_seq_++;
  frame.payload = payload;
  const size_t wire = FrameWireSize(payload.size());
  if (reliable_ && kind != MessageKind::kAck) {
    LinkSendState& link = send_links_[LinkKey(from, to)];
    if (static_cast<int>(link.unacked.size()) >=
        options_.reliability.window) {
      // Window full: the frame waits in the sender, uncharged until it is
      // actually transmitted (acks or retransmission ticks release it).
      link.deferred.push_back(std::move(frame));
    } else {
      TrackAndTransmit(&link, std::move(frame));
    }
  } else {
    Transmit(frame, 0);
  }
  return wire;
}

int Network::DeliverDue(SiteId site, Epoch now, int max_frames) {
  phase_.AssertHeld();
  // A crashed site receives nothing; its traffic backlog is purged by
  // SetSiteDown and anything sent during the outage waits in the
  // transport/pending queue for recovery.
  if (down_.count(site) > 0) return 0;
  // Pull everything the transport has for this site, stamp arrival epochs,
  // and merge into the site's pending queue. The transport may hand frames
  // back in any order; (arrive, seq) restores the deterministic total
  // order.
  std::vector<Frame> drained;
  transport_->Drain(site, &drained);
  if (!drained.empty()) {
    ArrivalQueue& q = pending_[site];
    for (Frame& f : drained) {
      const Epoch arrive =
          f.send_epoch +
          LatencyOf(f.from, f.to, FrameWireSize(f.payload.size()));
      q.push(QueuedFrame{arrive, std::move(f)});
    }
  }
  auto it = pending_.find(site);
  if (it == pending_.end()) return 0;
  ArrivalQueue& q = it->second;
  int delivered = 0;
  auto handler_it = handlers_.find(site);
  MessageHandler* handler =
      handler_it != handlers_.end() && handler_it->second
          ? &handler_it->second
          : nullptr;
  // Peers owed a cumulative ack, in first-delivery order (deduplicated by
  // the per-link ack_pending flag); one kAck per peer goes out after the
  // sweep with the final cumulative value.
  std::vector<SiteId> ack_peers;
  while (!q.empty() && q.top().arrive <= now &&
         (max_frames < 0 || delivered < max_frames)) {
    const QueuedFrame& top = q.top();
    const Frame& f = top.frame;
    in_flight_messages_ -= 1;
    in_flight_bytes_ -=
        static_cast<int64_t>(FrameWireSize(f.payload.size()));
    bool deliver = true;
    if (f.kind == MessageKind::kAck) {
      HandleAck(f);
      deliver = false;
    } else if (reliable_ && f.link_seq > 0) {
      LinkRecvState& rs = recv_links_[LinkKey(f.from, site)];
      if (f.link_seq <= rs.cum || rs.out_of_order.count(f.link_seq) > 0) {
        // Retransmitted or fault-duplicated copy of something already
        // delivered: suppress, but still re-ack (the sender clearly
        // missed our last ack).
        ++reliable_stats_.dup_drops;
        BumpTelemetry("reliable/dup_drops", 1);
        deliver = false;
      } else {
        rs.out_of_order.insert(f.link_seq);
        while (rs.out_of_order.count(rs.cum + 1) > 0) {
          rs.out_of_order.erase(rs.cum + 1);
          ++rs.cum;
        }
      }
      if (!rs.ack_pending) {
        rs.ack_pending = true;
        ack_peers.push_back(f.from);
      }
    }
    if (deliver && handler != nullptr) {
      (*handler)(f.from, f.kind, f.payload);
    }
    q.pop();
    ++delivered;
  }
  for (SiteId peer : ack_peers) {
    LinkRecvState& rs = recv_links_[LinkKey(peer, site)];
    rs.ack_pending = false;
    BufferWriter w;
    w.PutVarint(rs.cum);
    Send(site, peer, MessageKind::kAck, w.bytes());
  }
  return delivered;
}

void Network::TickReliability(Epoch now) {
  phase_.AssertHeld();
  if (!reliable_) return;
  // send_links_ is an ordered map, so the retransmission sweep visits
  // links in a deterministic order on every backend.
  for (auto& [key, link] : send_links_) {
    if (down_.count(LinkTo(key)) > 0) continue;
    for (auto& [ls, tf] : link.unacked) {
      if (tf.next_retry > now) continue;
      Frame copy = tf.frame;
      copy.send_epoch = now;
      const int64_t wire =
          static_cast<int64_t>(FrameWireSize(copy.payload.size()));
      ++reliable_stats_.retransmits;
      reliable_stats_.retransmit_bytes += wire;
      BumpTelemetry("reliable/retransmits", 1);
      BumpTelemetry("reliable/retransmit_bytes", wire);
      Transmit(copy, tf.attempts);
      ++tf.attempts;
      const int shift =
          std::min(static_cast<int>(tf.attempts) - 1,
                   options_.reliability.max_backoff_shift);
      tf.next_retry = now + (options_.reliability.rto << shift);
    }
    ReleaseDeferred(&link);
  }
}

int64_t Network::SetSiteDown(SiteId site, bool down, bool purge) {
  phase_.AssertHeld();
  if (!down) {
    down_.erase(site);
    return 0;
  }
  down_.insert(site);
  // Durable crash: the process lost its memory, but nothing in the fabric
  // is affected -- queued frames simply wait out the outage.
  if (!purge) return 0;
  int64_t lost = 0;
  // Purge every copy already queued for the site: in the transport and in
  // the stamped pending queue. Those copies were in flight.
  std::vector<Frame> purged;
  transport_->Drain(site, &purged);
  for (const Frame& f : purged) {
    in_flight_messages_ -= 1;
    in_flight_bytes_ -=
        static_cast<int64_t>(FrameWireSize(f.payload.size()));
    ++lost;
  }
  auto pit = pending_.find(site);
  if (pit != pending_.end()) {
    while (!pit->second.empty()) {
      in_flight_messages_ -= 1;
      in_flight_bytes_ -= static_cast<int64_t>(
          FrameWireSize(pit->second.top().frame.payload.size()));
      pit->second.pop();
      ++lost;
    }
  }
  // Both directions of every link INTO the crashed site reset to a fresh
  // link epoch: senders' unacked/deferred state toward it is discarded
  // (the retained-envelope recovery path replaces retransmission -- see
  // Site::HandleMessage kRecoveryRequest), and the site's own dedup state
  // dies with it. Outbound (site -> peer) tracking survives: the fabric,
  // not the crashed process, owns the reliability layer, and peers still
  // hold dedup state for that direction.
  for (auto sit = send_links_.begin(); sit != send_links_.end();) {
    if (LinkTo(sit->first) == site) {
      lost += static_cast<int64_t>(sit->second.deferred.size());
      sit = send_links_.erase(sit);
    } else {
      ++sit;
    }
  }
  for (auto rit = recv_links_.begin(); rit != recv_links_.end();) {
    if (LinkTo(rit->first) == site) {
      rit = recv_links_.erase(rit);
    } else {
      ++rit;
    }
  }
  reliable_stats_.crash_frames_lost += lost;
  BumpTelemetry("reliable/crash_frames_lost", lost);
  return lost;
}

bool Network::HasReliabilityWork() const {
  phase_.AssertShared();
  for (const auto& [key, link] : send_links_) {
    if (down_.count(LinkTo(key)) > 0) continue;
    if (!link.unacked.empty() || !link.deferred.empty()) return true;
  }
  return false;
}

bool Network::AllReliableDelivered() const {
  phase_.AssertShared();
  for (const auto& [key, link] : send_links_) {
    if (!link.unacked.empty() || !link.deferred.empty()) return false;
    auto rit = recv_links_.find(key);
    const uint64_t cum = rit == recv_links_.end() ? 0 : rit->second.cum;
    if (cum != link.next_link_seq - 1) return false;
  }
  return true;
}

int64_t Network::BytesOnLink(SiteId from, SiteId to) const {
  phase_.AssertShared();
  auto it = link_bytes_.find(LinkKey(from, to));
  return it == link_bytes_.end() ? 0 : it->second;
}

int64_t Network::MessagesOnLink(SiteId from, SiteId to) const {
  phase_.AssertShared();
  auto it = link_messages_.find(LinkKey(from, to));
  return it == link_messages_.end() ? 0 : it->second;
}

void Network::ResetCounters() {
  phase_.AssertHeld();
  link_bytes_.clear();
  link_messages_.clear();
  for (int64_t& b : kind_bytes_) b = 0;
  for (int64_t& m : kind_messages_) m = 0;
  total_bytes_ = 0;
  total_messages_ = 0;
  fault_stats_ = FaultStats{};
  reliable_stats_ = ReliableStats{};
  // in_flight_{bytes,messages}_ are live queue gauges, not history: a
  // frame still in the transport stays in flight across a counter reset.
}

}  // namespace rfid
