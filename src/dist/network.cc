#include "dist/network.h"

#include <string>

namespace rfid {

void Network::RegisterHandler(SiteId site, MessageHandler handler) {
  handlers_[site] = std::move(handler);
}

size_t Network::Send(SiteId from, SiteId to, MessageKind kind,
                     const std::vector<uint8_t>& payload) {
  const int64_t n = static_cast<int64_t>(payload.size());
  link_bytes_[LinkKey(from, to)] += n;
  link_messages_[LinkKey(from, to)] += 1;
  kind_bytes_[static_cast<size_t>(kind)] += n;
  kind_messages_[static_cast<size_t>(kind)] += 1;
  total_bytes_ += n;
  total_messages_ += 1;
  auto it = handlers_.find(to);
  if (it != handlers_.end() && it->second) {
    it->second(from, kind, payload);
  }
  return payload.size();
}

int64_t Network::BytesOnLink(SiteId from, SiteId to) const {
  auto it = link_bytes_.find(LinkKey(from, to));
  return it == link_bytes_.end() ? 0 : it->second;
}

int64_t Network::MessagesOnLink(SiteId from, SiteId to) const {
  auto it = link_messages_.find(LinkKey(from, to));
  return it == link_messages_.end() ? 0 : it->second;
}

void Network::ResetCounters() {
  link_bytes_.clear();
  link_messages_.clear();
  for (int64_t& b : kind_bytes_) b = 0;
  for (int64_t& m : kind_messages_) m = 0;
  total_bytes_ = 0;
  total_messages_ = 0;
}

std::string ToString(MessageKind kind) {
  switch (kind) {
    case MessageKind::kRawReadings:
      return "raw_readings";
    case MessageKind::kInferenceState:
      return "inference_state";
    case MessageKind::kQueryState:
      return "query_state";
    case MessageKind::kDirectory:
      return "directory";
  }
  return "unknown";
}

}  // namespace rfid
