#include "dist/durability.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/serde.h"

namespace rfid {
namespace {

namespace fs = std::filesystem;

constexpr char kCheckpointPrefix[] = "checkpoint_";
constexpr char kCheckpointSuffix[] = ".ckpt";
constexpr char kWalPrefix[] = "wal_";
constexpr char kWalSuffix[] = ".log";
constexpr char kAuditName[] = "audit.log";

/// Checkpoints kept on disk: the newest, plus one fallback the WAL
/// retention lags behind.
constexpr int kCheckpointsRetained = 2;

std::string EpochName(const char* prefix, Epoch epoch, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020" PRId64 "%s", prefix,
                static_cast<int64_t>(epoch), suffix);
  return std::string(buf);
}

/// Epochs of every `<prefix><epoch><suffix>` file in `dir`, ascending.
std::vector<Epoch> ListEpochs(const std::string& dir, const char* prefix,
                              const char* suffix) {
  std::vector<Epoch> epochs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const size_t np = std::strlen(prefix);
    const size_t ns = std::strlen(suffix);
    if (name.size() <= np + ns || name.compare(0, np, prefix) != 0 ||
        name.compare(name.size() - ns, ns, suffix) != 0) {
      continue;
    }
    errno = 0;
    char* end = nullptr;
    const long long v =
        std::strtoll(name.c_str() + np, &end, 10);
    if (errno != 0 || end != name.c_str() + (name.size() - ns)) continue;
    epochs.push_back(static_cast<Epoch>(v));
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  out->clear();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status::IOError("read " + path + ": " + std::strerror(err));
    }
    if (n == 0) break;
    out->insert(out->end(), buf, buf + n);
  }
  ::close(fd);
  return Status::OK();
}

// lint:durable-io-begin(durability-writers)
// The audited write path: every byte that reaches a WAL segment, a
// checkpoint file, or the audit log goes through these helpers, which the
// durability-fsync lint rule pairs with the fsync policy.

Status WriteAll(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("write: ") + std::strerror(errno));
    }
    data += static_cast<size_t>(w);
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status SyncFd(int fd, DurabilityOptions::FsyncPolicy policy) {
  if (policy == DurabilityOptions::FsyncPolicy::kOff) return Status::OK();
#if defined(__APPLE__)
  if (::fsync(fd) != 0) {
    return Status::IOError(std::string("fsync: ") + std::strerror(errno));
  }
#else
  if (::fdatasync(fd) != 0) {
    return Status::IOError(std::string("fdatasync: ") + std::strerror(errno));
  }
#endif
  return Status::OK();
}

/// Writes `bytes` to `path` via a temp file + fsync + atomic rename; a
/// crash never leaves a partially written file under the final name.
Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes,
                       DurabilityOptions::FsyncPolicy policy) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("open " + tmp + ": " + std::strerror(errno));
  }
  Status st = WriteAll(fd, bytes.data(), bytes.size());
  if (st.ok()) st = SyncFd(fd, policy);
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::IOError("rename " + path + ": " + std::strerror(err));
  }
  return Status::OK();
}
// lint:durable-io-end

}  // namespace

DurabilityOptions::DurabilityOptions() {
  if (const char* env = std::getenv("RFID_DURABILITY_DIR")) {
    dir = env;
  }
  if (const char* env = std::getenv("RFID_DURABILITY_FSYNC")) {
    const std::string v = env;
    if (v == "off" || v == "none" || v == "0") fsync = FsyncPolicy::kOff;
  }
}

SiteDurability::SiteDurability(const DurabilityOptions& options, SiteId site)
    : options_(options), site_(site) {
  site_dir_ = options_.dir + "/site_" + std::to_string(site);
  audit_key_ = SiteKey(site);
}

SiteDurability::~SiteDurability() {
  if (wal_fd_ >= 0) ::close(wal_fd_);
  if (audit_fd_ >= 0) ::close(audit_fd_);
}

std::string SiteDurability::audit_path() const {
  return site_dir_ + "/" + kAuditName;
}

std::vector<uint8_t> SiteDurability::SiteKey(SiteId site) {
  const std::string material = "rfid-site-key:" + std::to_string(site);
  const Sha256Digest d = Sha256::Of(
      reinterpret_cast<const uint8_t*>(material.data()), material.size());
  return std::vector<uint8_t>(d.begin(), d.end());
}

Status SiteDurability::Open() {
  if (opened_) return Status::OK();
  std::error_code ec;
  fs::create_directories(site_dir_, ec);
  if (ec) {
    return Status::IOError("mkdir " + site_dir_ + ": " + ec.message());
  }

  // Continue the newest existing WAL segment (a restarted incarnation
  // appends where the previous one stopped); otherwise start segment 0.
  const std::vector<Epoch> segments =
      ListEpochs(site_dir_, kWalPrefix, kWalSuffix);
  RFID_RETURN_NOT_OK(OpenSegment(segments.empty() ? 0 : segments.back()));

  // lint:durable-io-begin(audit-open)
  // Append-mode entry point of the audited audit-log path; bytes reach it
  // only via Flush's synced writer.
  const int fd = ::open(audit_path().c_str(),
                        O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  // lint:durable-io-end
  if (fd < 0) {
    return Status::IOError("open " + audit_path() + ": " +
                           std::strerror(errno));
  }
  audit_fd_ = fd;
  RFID_RETURN_NOT_OK(ScanAuditTail());
  opened_ = true;
  return Status::OK();
}

Status SiteDurability::OpenSegment(Epoch epoch) {
  if (wal_fd_ >= 0) {
    ::close(wal_fd_);
    wal_fd_ = -1;
  }
  const std::string path =
      site_dir_ + "/" + EpochName(kWalPrefix, epoch, kWalSuffix);
  // lint:durable-io-begin(wal-open)
  // Append-mode entry point of the audited WAL path; bytes reach it only
  // via Flush's synced writer.
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  // lint:durable-io-end
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  wal_fd_ = fd;
  wal_segment_ = epoch;
  return Status::OK();
}

Status SiteDurability::ScanAuditTail() {
  std::vector<AuditRecord> records;
  const Status st = ReadAuditLog(audit_path(), &records);
  // A garbled tail surfaces at verification; for append continuity the
  // readable prefix decides where the chain resumes.
  (void)st;
  if (!records.empty()) {
    audit_chain_ = records.back().chain;
    audit_seq_ = records.back().seq + 1;
  }
  return Status::OK();
}

Status SiteDurability::AppendFrame(SiteId from, MessageKind kind,
                                   const std::vector<uint8_t>& payload,
                                   Epoch delivery_epoch) {
  if (replaying_) return Status::OK();
  Frame f;
  f.from = from;
  f.to = site_;
  f.kind = kind;
  f.send_epoch = delivery_epoch;
  f.seq = ++wal_seq_;
  f.payload = payload;
  const size_t before = wal_pending_.size();
  EncodeFrame(f, &wal_pending_);
  ++stats_.wal_appends;
  stats_.wal_bytes += static_cast<int64_t>(wal_pending_.size() - before);
  return Status::OK();
}

Status SiteDurability::Flush() {
  bool wrote = false;
  // lint:durable-io-begin(wal-flush)
  if (!wal_pending_.empty()) {
    RFID_RETURN_NOT_OK(
        WriteAll(wal_fd_, wal_pending_.data(), wal_pending_.size()));
    wal_pending_.clear();
    wrote = true;
  }
  if (!audit_pending_.empty()) {
    RFID_RETURN_NOT_OK(
        WriteAll(audit_fd_, audit_pending_.data(), audit_pending_.size()));
    audit_pending_.clear();
    RFID_RETURN_NOT_OK(SyncFd(audit_fd_, options_.fsync));
  }
  if (wrote) {
    RFID_RETURN_NOT_OK(SyncFd(wal_fd_, options_.fsync));
    ++stats_.wal_fsyncs;
  }
  // lint:durable-io-end
  return Status::OK();
}

Status SiteDurability::WriteCheckpoint(Epoch epoch,
                                       const std::vector<uint8_t>& payload) {
  RFID_RETURN_NOT_OK(Flush());

  Frame f;
  f.from = site_;
  f.to = site_;
  f.kind = MessageKind::kCheckpoint;
  f.send_epoch = epoch;
  f.payload = payload;
  std::vector<uint8_t> bytes;
  EncodeFrame(f, &bytes);

  const std::string path =
      site_dir_ + "/" + EpochName(kCheckpointPrefix, epoch, kCheckpointSuffix);
  RFID_RETURN_NOT_OK(WriteFileAtomic(path, bytes, options_.fsync));
  ++stats_.checkpoints;
  stats_.checkpoint_bytes += static_cast<int64_t>(bytes.size());

  // Rotate the WAL: records logged from here on belong to this cut.
  RFID_RETURN_NOT_OK(OpenSegment(epoch));

  // Prune: keep the newest kCheckpointsRetained checkpoints, and every
  // WAL segment the oldest survivor still needs for its replay tail.
  std::vector<Epoch> ckpts =
      ListEpochs(site_dir_, kCheckpointPrefix, kCheckpointSuffix);
  const Epoch oldest_kept =
      ckpts.size() > static_cast<size_t>(kCheckpointsRetained)
          ? ckpts[ckpts.size() - kCheckpointsRetained]
          : (ckpts.empty() ? 0 : ckpts.front());
  for (Epoch e : ckpts) {
    if (e < oldest_kept) {
      const std::string stale =
          site_dir_ + "/" + EpochName(kCheckpointPrefix, e, kCheckpointSuffix);
      ::unlink(stale.c_str());
    }
  }
  const std::vector<Epoch> segments =
      ListEpochs(site_dir_, kWalPrefix, kWalSuffix);
  // Segment s covers records in (s, next cut]; the oldest kept checkpoint
  // replays from the newest segment at or before its cut.
  Epoch needed_from = 0;
  for (Epoch s : segments) {
    if (s <= oldest_kept) needed_from = s;
  }
  for (Epoch s : segments) {
    if (s < needed_from) {
      const std::string stale =
          site_dir_ + "/" + EpochName(kWalPrefix, s, kWalSuffix);
      ::unlink(stale.c_str());
    }
  }
  return Status::OK();
}

Status SiteDurability::LoadCheckpoint(Epoch* epoch,
                                      std::vector<uint8_t>* out) {
  *epoch = 0;
  out->clear();
  std::vector<Epoch> ckpts =
      ListEpochs(site_dir_, kCheckpointPrefix, kCheckpointSuffix);
  for (auto it = ckpts.rbegin(); it != ckpts.rend(); ++it) {
    const std::string path =
        site_dir_ + "/" + EpochName(kCheckpointPrefix, *it, kCheckpointSuffix);
    std::vector<uint8_t> bytes;
    Status st = ReadFileBytes(path, &bytes);
    Frame f;
    size_t consumed = 0;
    if (st.ok()) st = DecodeFrame(bytes.data(), bytes.size(), &f, &consumed);
    if (st.ok() && (f.kind != MessageKind::kCheckpoint ||
                    f.send_epoch != *it || consumed != bytes.size())) {
      st = Status::Corruption("checkpoint frame does not match its name");
    }
    if (!st.ok()) {
      // Newest-valid-wins: a corrupt checkpoint falls back one cut. The
      // WAL retains segments back to the fallback's cut, so recovery
      // stays exact -- just with a longer replay tail.
      ++stats_.checkpoint_fallbacks;
      continue;
    }
    *epoch = f.send_epoch;
    *out = std::move(f.payload);
    return Status::OK();
  }
  return Status::OK();
}

Status SiteDurability::ReadWalSince(Epoch since,
                                    std::vector<Frame>* frames) {
  frames->clear();
  const std::vector<Epoch> segments =
      ListEpochs(site_dir_, kWalPrefix, kWalSuffix);
  // The newest segment cut at or before `since` holds the first records
  // after that checkpoint; all newer segments follow.
  Epoch first = 0;
  for (Epoch s : segments) {
    if (s <= since) first = s;
  }
  for (size_t i = 0; i < segments.size(); ++i) {
    const Epoch seg = segments[i];
    if (seg < first) continue;
    const std::string path =
        site_dir_ + "/" + EpochName(kWalPrefix, seg, kWalSuffix);
    std::vector<uint8_t> bytes;
    RFID_RETURN_NOT_OK(ReadFileBytes(path, &bytes));
    size_t off = 0;
    while (off < bytes.size()) {
      Frame f;
      size_t consumed = 0;
      const Status st =
          DecodeFrame(bytes.data() + off, bytes.size() - off, &f, &consumed);
      if (FrameIncomplete(st)) {
        // Torn tail: the record's fsync never completed, so by
        // append-before-apply its frame was never consumed from the
        // fabric. Only legal in the final segment -- anywhere else the
        // log has a hole and replay cannot be trusted.
        if (i + 1 != segments.size()) {
          return Status::Corruption(
              "WAL segment " + path + " truncated mid-stream");
        }
        ++stats_.torn_tail_records;
        stats_.replayed_frames += static_cast<int64_t>(frames->size());
        return Status::OK();
      }
      if (!st.ok()) {
        return Status::Corruption("WAL record corrupt in " + path + ": " +
                                  st.ToString());
      }
      off += consumed;
      frames->push_back(std::move(f));
    }
  }
  stats_.replayed_frames += static_cast<int64_t>(frames->size());
  return Status::OK();
}

Status SiteDurability::AppendAudit(AuditRecord::Kind kind, Epoch epoch,
                                   const std::vector<uint8_t>& payload) {
  if (replaying_) return Status::OK();
  BufferWriter body;
  body.PutVarint(audit_seq_);
  body.PutSignedVarint(site_);
  body.PutU8(static_cast<uint8_t>(kind));
  body.PutSignedVarint(epoch);
  body.PutVarint(payload.size());
  body.PutBytes(payload.data(), payload.size());

  Sha256 h;
  h.Update(audit_chain_.data(), audit_chain_.size());
  h.Update(body.bytes());
  const Sha256Digest chain = h.Finish();
  const Sha256Digest mac =
      HmacSha256(audit_key_, chain.data(), chain.size());

  BufferWriter record;
  record.PutVarint(body.size());
  record.PutBytes(body.bytes().data(), body.size());
  record.PutBytes(chain.data(), chain.size());
  record.PutBytes(mac.data(), mac.size());
  audit_pending_.insert(audit_pending_.end(), record.bytes().begin(),
                        record.bytes().end());

  audit_chain_ = chain;
  ++audit_seq_;
  ++stats_.audit_records;
  return Status::OK();
}

void SiteDurability::DropPending() {
  wal_pending_.clear();
  if (!audit_pending_.empty()) {
    audit_pending_.clear();
    audit_chain_ = Sha256Digest{};
    audit_seq_ = 0;
    (void)ScanAuditTail();
  }
}

namespace {

/// Shared decode loop: calls `fn(index, body_begin, body_len, record)` for
/// each structurally valid record; stops and reports the index of the
/// first unreadable one.
template <typename Fn>
bool ForEachAuditRecord(const std::vector<uint8_t>& bytes, Fn&& fn,
                        int64_t* bad_index, std::string* error) {
  size_t off = 0;
  int64_t index = 0;
  while (off < bytes.size()) {
    BufferReader len_reader(bytes.data() + off, bytes.size() - off);
    uint64_t body_len = 0;
    if (!len_reader.GetVarint(&body_len).ok()) {
      *bad_index = index;
      *error = "unreadable record length";
      return false;
    }
    const size_t body_off = off + len_reader.position();
    if (body_len > bytes.size() - body_off ||
        bytes.size() - body_off - body_len < 64) {
      *bad_index = index;
      *error = "record extends past end of log";
      return false;
    }
    const uint8_t* body = bytes.data() + body_off;
    AuditRecord rec;
    BufferReader r(body, body_len);
    uint64_t seq = 0, payload_len = 0;
    int64_t site = 0, epoch = 0;
    uint8_t kind = 0;
    Status st = r.GetVarint(&seq);
    if (st.ok()) st = r.GetSignedVarint(&site);
    if (st.ok()) st = r.GetU8(&kind);
    if (st.ok()) st = r.GetSignedVarint(&epoch);
    if (st.ok()) st = r.GetVarint(&payload_len);
    if (!st.ok() || payload_len != r.remaining() || kind > 1) {
      *bad_index = index;
      *error = "garbled record body";
      return false;
    }
    rec.seq = seq;
    rec.site = static_cast<SiteId>(site);
    rec.kind = static_cast<AuditRecord::Kind>(kind);
    rec.epoch = epoch;
    rec.payload.assign(body + r.position(), body + body_len);
    const uint8_t* trailer = body + body_len;
    std::copy(trailer, trailer + 32, rec.chain.begin());
    std::copy(trailer + 32, trailer + 64, rec.mac.begin());
    if (!fn(index, body, static_cast<size_t>(body_len), rec)) {
      return false;
    }
    off = body_off + body_len + 64;
    ++index;
  }
  return true;
}

}  // namespace

Status ReadAuditLog(const std::string& path, std::vector<AuditRecord>* out) {
  out->clear();
  std::vector<uint8_t> bytes;
  RFID_RETURN_NOT_OK(ReadFileBytes(path, &bytes));
  int64_t bad = -1;
  std::string error;
  const bool clean = ForEachAuditRecord(
      bytes,
      [&](int64_t, const uint8_t*, size_t, const AuditRecord& rec) {
        out->push_back(rec);
        return true;
      },
      &bad, &error);
  if (!clean) {
    return Status::Corruption("audit log " + path + " record " +
                              std::to_string(bad) + ": " + error);
  }
  return Status::OK();
}

AuditVerifyResult VerifyAuditLog(const std::string& path,
                                 const std::vector<uint8_t>& key) {
  AuditVerifyResult result;
  std::vector<uint8_t> bytes;
  const Status read = ReadFileBytes(path, &bytes);
  if (!read.ok()) {
    result.error = read.ToString();
    return result;
  }
  Sha256Digest prev{};
  int64_t bad = -1;
  std::string error;
  const bool clean = ForEachAuditRecord(
      bytes,
      [&](int64_t index, const uint8_t* body, size_t body_len,
          const AuditRecord& rec) {
        Sha256 h;
        h.Update(prev.data(), prev.size());
        h.Update(body, body_len);
        const Sha256Digest chain = h.Finish();
        if (chain != rec.chain) {
          bad = index;
          error = "chain hash mismatch (edited, reordered, or dropped "
                  "predecessor)";
          return false;
        }
        const Sha256Digest mac = HmacSha256(key, chain.data(), chain.size());
        if (mac != rec.mac) {
          bad = index;
          error = "MAC mismatch (record not signed by this site's key)";
          return false;
        }
        prev = chain;
        ++result.records;
        result.final_chain = chain;
        return true;
      },
      &bad, &error);
  if (!clean || bad >= 0) {
    result.first_bad_record = bad;
    result.error = error;
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace rfid
