// Per-site durability: checkpoints, a frame write-ahead log, and a
// tamper-evident audit log (the ROADMAP's "Durability, recovery, and a
// tamper-evident event log" pillar).
//
// A durable site owns one directory, <dir>/site_<id>/, holding three
// kinds of files:
//
//   checkpoint_<epoch>.ckpt   full site state cut at boundary <epoch>,
//                             stored as one v2 frame (dist/frame.h) of
//                             MessageKind::kCheckpoint -- length-prefixed
//                             header, CRC-32 trailer -- written to a temp
//                             file, fsynced, and renamed into place. The
//                             newest two are kept so a corrupt latest
//                             checkpoint falls back one cut.
//   wal_<epoch>.log           frame WAL segment opened by the checkpoint
//                             cut at <epoch> (segment 0 covers everything
//                             before the first checkpoint). Every inbound
//                             state-bearing frame is appended *before* it
//                             is applied, and the append batch is fsynced
//                             once per delivery drain; a frame is only
//                             consumed from the fabric once its record is
//                             durable, so a torn tail record never means
//                             lost state. Segments older than the
//                             previous retained checkpoint are deleted.
//   audit.log                 hash-chained, per-site-signed alert/movement
//                             records (see AuditRecord below), verified by
//                             tools/log_verify.
//
// Checkpoint-cut rule: a checkpoint is cut at an inference boundary C in
// the replay's serial phase, after the boundary's export phase. At that
// point the site's pending arrival queues hold exactly the envelopes with
// arrival epoch > C, and the WAL rotates to a fresh segment -- so
// recovery is: restore checkpoint C, re-feed the post-C WAL segments
// through HandleMessage, re-drain the fabric backlog, then replay the
// site's own trace boundaries in (C, now]. See docs/ARCHITECTURE.md
// "Durability" for the full recovery state machine.
//
// All raw file writes live inside the audited lint:durable-io regions in
// durability.cc; the rfid_lint `durability-fsync` rule flags any other
// write to WAL/checkpoint paths.
#ifndef RFID_DIST_DURABILITY_H_
#define RFID_DIST_DURABILITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sha256.h"
#include "common/status.h"
#include "common/types.h"
#include "dist/frame.h"

namespace rfid {

/// Durability configuration of one replay. Defaults read the environment
/// (like NetworkOptions does for faults): RFID_DURABILITY_DIR selects the
/// directory (unset = durability off) and RFID_DURABILITY_FSYNC=off
/// disables fsync batching for throughput experiments.
struct DurabilityOptions {
  /// Root directory for per-site state; empty = durability off.
  std::string dir;

  /// kData: fdatasync the WAL once per delivery drain and every
  /// checkpoint before rename (the durable default). kOff: no syncs --
  /// the on-disk layout is identical but a host crash may lose the page
  /// cache (process crashes, which our crash model simulates, lose
  /// nothing either way).
  enum class FsyncPolicy : uint8_t { kData = 0, kOff = 1 };
  FsyncPolicy fsync = FsyncPolicy::kData;

  DurabilityOptions();

  bool enabled() const { return !dir.empty(); }
};

/// Operation counters, aggregated into the run's metrics registry.
struct DurabilityStats {
  int64_t wal_appends = 0;
  int64_t wal_bytes = 0;
  int64_t wal_fsyncs = 0;
  int64_t checkpoints = 0;
  int64_t checkpoint_bytes = 0;
  int64_t replayed_frames = 0;      ///< WAL records re-fed at recovery
  int64_t torn_tail_records = 0;    ///< incomplete WAL tail records skipped
  int64_t checkpoint_fallbacks = 0; ///< corrupt checkpoints skipped
  int64_t audit_records = 0;
};

/// One tamper-evident audit record. On disk: a varint length prefix, the
/// body {seq, site, kind, epoch, payload}, the 32-byte chain hash
/// h_i = SHA256(h_{i-1} || body) (h_{-1} = 32 zero bytes), and the
/// 32-byte HMAC-SHA256 of h_i under the site's signing key. Editing,
/// reordering, or dropping an interior record breaks the chain at the
/// first affected link; forging a replacement requires the site key.
struct AuditRecord {
  enum class Kind : uint8_t { kAlert = 0, kMovement = 1 };

  uint64_t seq = 0;
  SiteId site = kNoSite;
  Kind kind = Kind::kAlert;
  Epoch epoch = 0;
  std::vector<uint8_t> payload;
  Sha256Digest chain{};
  Sha256Digest mac{};
};

/// Durable storage of one site. Owned by the replay driver (it outlives
/// crash/recovery site teardown, preserving audit-chain continuity) and
/// attached to the live Site for WAL/audit appends. All calls happen in
/// the replay's serial phases or from the owning site's handler, which
/// the driver only invokes serially -- no internal locking.
class SiteDurability {
 public:
  SiteDurability(const DurabilityOptions& options, SiteId site);
  ~SiteDurability();

  SiteDurability(const SiteDurability&) = delete;
  SiteDurability& operator=(const SiteDurability&) = delete;

  /// Creates the site directory and scans any existing state (checkpoint
  /// epochs, WAL segments, the audit chain tail) so appends continue
  /// where a previous incarnation stopped.
  Status Open();

  // ---- Frame WAL ----

  /// Buffers one inbound frame record (append-before-apply: call this
  /// before the frame's payload mutates site state). `delivery_epoch` is
  /// the drain epoch, recorded for diagnostics. No-op while replaying().
  Status AppendFrame(SiteId from, MessageKind kind,
                     const std::vector<uint8_t>& payload,
                     Epoch delivery_epoch);

  /// Writes buffered appends to the current segment and fsyncs once
  /// (policy permitting). The driver calls this at the end of each
  /// delivery drain -- fsync cost is batched per drain, not per frame.
  Status Flush();

  // ---- Checkpoints ----

  /// Persists `payload` (Site::EncodeCheckpoint bytes) as the checkpoint
  /// cut at `epoch`: temp file + fsync + atomic rename, prune to the
  /// newest two checkpoints, rotate the WAL to segment `epoch`, and
  /// delete segments older than the surviving older checkpoint.
  Status WriteCheckpoint(Epoch epoch, const std::vector<uint8_t>& payload);

  /// Loads the newest checkpoint whose frame decodes cleanly; corrupt
  /// ones are counted (checkpoint_fallbacks) and skipped. Returns OK with
  /// *epoch = 0 and an empty payload when no usable checkpoint exists
  /// (recovery then replays from scratch).
  Status LoadCheckpoint(Epoch* epoch, std::vector<uint8_t>* out);

  /// Appends every WAL record from segments at or after the cut `since`
  /// to `*frames` in append order. A torn (incomplete) tail record is
  /// skipped and counted -- append-before-apply guarantees its frame was
  /// never consumed from the fabric. A mid-stream CRC failure is real
  /// corruption and fails loudly with Status::Corruption.
  Status ReadWalSince(Epoch since, std::vector<Frame>* frames);

  // ---- Audit log ----

  /// During recovery replay the site re-executes work whose WAL/audit
  /// records already exist; replaying() suppresses both appends.
  void set_replaying(bool replaying) { replaying_ = replaying; }
  bool replaying() const { return replaying_; }

  /// Appends one hash-chained, MACed record. Flushed with the WAL batch.
  Status AppendAudit(AuditRecord::Kind kind, Epoch epoch,
                     const std::vector<uint8_t>& payload);

  /// Discards buffered, un-flushed appends -- what a process crash loses.
  /// The crash model calls this when a site goes down; the on-disk state
  /// then reflects exactly the completed flushes. The audit chain rewinds
  /// to the last record actually on disk.
  void DropPending();

  const DurabilityStats& stats() const { return stats_; }
  const std::string& site_dir() const { return site_dir_; }
  std::string audit_path() const;

  /// Deterministic per-site signing key: SHA256("rfid-site-key:<id>").
  /// A stand-in for real key provisioning -- the verification chain and
  /// tooling are agnostic to where the key comes from.
  static std::vector<uint8_t> SiteKey(SiteId site);

 private:
  Status OpenSegment(Epoch epoch);
  Status ScanAuditTail();

  DurabilityOptions options_;
  SiteId site_;
  std::string site_dir_;
  bool opened_ = false;
  bool replaying_ = false;

  int wal_fd_ = -1;
  Epoch wal_segment_ = 0;
  std::vector<uint8_t> wal_pending_;
  uint64_t wal_seq_ = 0;

  int audit_fd_ = -1;
  std::vector<uint8_t> audit_pending_;
  uint64_t audit_seq_ = 0;
  Sha256Digest audit_chain_{};  ///< chain hash of the last record
  std::vector<uint8_t> audit_key_;

  DurabilityStats stats_;
};

/// Result of verifying an audit log (tools/log_verify and tests).
struct AuditVerifyResult {
  bool ok = false;
  int64_t records = 0;
  /// 0-based index of the first record whose chain or MAC fails
  /// (-1 when the log verifies or is unreadable before any record).
  int64_t first_bad_record = -1;
  std::string error;
  Sha256Digest final_chain{};
};

/// Decodes an audit log without verifying (tooling; stops at the first
/// structurally unreadable record).
Status ReadAuditLog(const std::string& path, std::vector<AuditRecord>* out);

/// Full verification: structural decode, chain recomputation from
/// genesis, and per-record MAC check under `key`.
AuditVerifyResult VerifyAuditLog(const std::string& path,
                                 const std::vector<uint8_t>& key);

}  // namespace rfid

#endif  // RFID_DIST_DURABILITY_H_
