#include "dist/distributed.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "common/metrics.h"

namespace rfid {

std::string ToString(ProcessingMode mode) {
  switch (mode) {
    case ProcessingMode::kDistributed:
      return "distributed";
    case ProcessingMode::kCentralized:
      return "centralized";
  }
  return "unknown";
}

DistributedSystem::DistributedSystem(
    const SupplyChainSim* sim, DistributedOptions options,
    const ProductCatalog* catalog,
    const std::vector<SensorReading>* sensors)
    : sim_(sim),
      options_(std::move(options)),
      catalog_(catalog),
      sensors_(sensors) {
  const int num_processors =
      centralized() ? 1 : sim_->config().num_warehouses;
  // Telemetry before the transport, so the backend is instrumented from
  // the first frame. Disabled = null pointer everywhere downstream.
  if (options_.collect_metrics) {
    const std::string trace_path =
        !options_.trace ? std::string()
        : options_.trace_path.empty() ? obs::TracePathFromEnv()
                                      : options_.trace_path;
    telemetry_ = std::make_unique<obs::Telemetry>(trace_path);
  }
  network_.SetTelemetry(telemetry_.get());
  // Transport next: the backend must be in place before any frame is
  // sent. The socket backend binds one loopback listener per processor
  // (remote sites in centralized mode only ever send, so they need none).
  network_.ConfigureTransport(options_.transport, num_processors);
  network_.Configure(options_.network);
  // The centralized baseline has no directory to consult (everything lives
  // at the server), so only the distributed deployment pays ONS traffic.
  if (!centralized()) {
    OnsOptions ons_opts;
    ons_opts.num_shards = options_.directory_shards > 0
                              ? options_.directory_shards
                              : num_processors;
    ons_opts.num_sites = num_processors;
    ons_opts.resolver_cache = options_.directory_cache;
    ons_opts.cache_ttl = options_.directory_cache_ttl;
    ons_.Configure(ons_opts);
    ons_.AttachNetwork(&network_);
  }
  sites_.reserve(static_cast<size_t>(num_processors));
  for (SiteId s = 0; s < num_processors; ++s) {
    sites_.push_back(std::make_unique<Site>(
        s, &sim_->model(), &sim_->schedule(), &network_, options_.site));
    Site* site = sites_.back().get();
    site->SetTelemetry(telemetry_.get());
    network_.RegisterHandler(
        s, [site](SiteId from, MessageKind kind,
                  const std::vector<uint8_t>& payload) {
          site->HandleMessage(from, kind, payload);
        });
  }
  if (options_.attach_queries && catalog_ != nullptr) {
    for (auto& site : sites_) {
      site->AttachQueries(catalog_, options_.q1, options_.q2);
    }
    if (sensors_ != nullptr) {
      for (const SensorReading& r : *sensors_) {
        if (centralized()) {
          sites_[0]->AddSensor(r);
        } else {
          const SiteId s = sim_->layout().SiteOfLocation(r.loc);
          if (s >= 0 && s < static_cast<SiteId>(sites_.size())) {
            sites_[static_cast<size_t>(s)]->AddSensor(r);
          }
        }
      }
    }
  }
}

DistributedSystem::~DistributedSystem() = default;

void DistributedSystem::Run() {
  if (ran_) return;
  ran_ = true;

  const Epoch horizon = sim_->config().horizon;
  const Epoch period = options_.site.streaming.inference_period;
  const GroundTruth& truth = sim_->truth();
  const int num_warehouses = sim_->config().num_warehouses;

  // Objects enter the directory when they enter the world (all pallets are
  // injected at the source warehouse, site 0).
  std::vector<std::pair<Epoch, TagId>> injections;
  auto add_tags = [&](const std::vector<TagId>& tags) {
    for (TagId tag : tags) {
      const auto& ivs = truth.IntervalsOf(tag);
      if (!ivs.empty()) injections.emplace_back(ivs.front().begin, tag);
    }
  };
  add_tags(sim_->all_pallets());
  add_tags(sim_->all_cases());
  add_tags(sim_->all_items());
  std::stable_sort(injections.begin(), injections.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  // Transfers indexed by arrival and by departure epoch.
  const std::vector<ObjectTransfer>& transfers = sim_->transfers();
  std::vector<size_t> by_arrive(transfers.size());
  std::vector<size_t> by_depart(transfers.size());
  std::iota(by_arrive.begin(), by_arrive.end(), size_t{0});
  std::iota(by_depart.begin(), by_depart.end(), size_t{0});
  std::stable_sort(by_arrive.begin(), by_arrive.end(),
                   [&](size_t a, size_t b) {
                     return transfers[a].arrive < transfers[b].arrive;
                   });
  std::stable_sort(by_depart.begin(), by_depart.end(),
                   [&](size_t a, size_t b) {
                     return transfers[a].depart < transfers[b].depart;
                   });

  // ---- Event schedule: the only epochs at which anything can happen ----
  // Injections, transfer departures/arrivals (ownership, exports,
  // deliveries), inference-period boundaries (runs and centralized
  // flushes), and the horizon itself. Epochs in between only carry raw
  // readings, which are ingested as whole batched windows at the next
  // event, so idle epochs -- and idle sites -- cost nothing.
  std::vector<Epoch> events;
  events.reserve(injections.size() + 2 * transfers.size() +
                 static_cast<size_t>(horizon / std::max<Epoch>(1, period)) +
                 2);
  for (const auto& [epoch, tag] : injections) {
    if (epoch <= horizon) events.push_back(epoch);
  }
  for (const ObjectTransfer& tr : transfers) {
    if (tr.depart <= horizon) events.push_back(tr.depart);
    if (tr.arrive <= horizon) events.push_back(tr.arrive);
  }
  for (Epoch b = period; b > 0 && b <= horizon; b += period) {
    events.push_back(b);
  }
  events.push_back(horizon);
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());

  // At most one thread per site can ever be useful: each work item owns a
  // whole site, so a wider pool (e.g. kAutoThreads on a many-core box
  // driving a 1-site centralized replay) only adds wakeup contention.
  SiteExecutor executor(
      std::min(SiteExecutor::ResolveThreads(options_.num_threads),
               static_cast<int>(sites_.size())));
  std::vector<size_t> cursor(static_cast<size_t>(num_warehouses), 0);
  std::vector<std::vector<RawReading>> batch(
      static_cast<size_t>(num_warehouses));
  std::vector<size_t> ready;
  ready.reserve(sites_.size());
  std::vector<int> ran(sites_.size(), 0);

  size_t inj = 0;
  size_t arr = 0;
  size_t dep = 0;
  for (Epoch t : events) {
    // -- Serial: advance the wall clocks (send epochs, TTL expiry), then
    // drain every processor's delivery queue of frames whose arrival
    // epoch has passed. Messages sent at earlier events were in flight
    // until now; handlers (HandleMessage) run here, serially, so the
    // parallel phases below only ever see site-local pending queues.
    network_.AdvanceClock(t);
    ons_.AdvanceClock(t);
    {
      obs::PhaseTimer span(telemetry_.get(), obs::Phase::kQueueDrain, t);
      for (SiteId s = 0; s < static_cast<SiteId>(sites_.size()); ++s) {
        network_.DeliverDue(s, t);
      }
    }

    // -- Serial: ownership + directory bookkeeping due at t.
    {
      obs::PhaseTimer span(telemetry_.get(), obs::Phase::kDirectory, t);
      while (inj < injections.size() && injections[inj].first <= t) {
        owner_[injections[inj].second] = 0;
        ons_.Register(injections[inj].second, 0);
        ++inj;
      }

      while (arr < by_arrive.size() &&
             transfers[by_arrive[arr]].arrive <= t) {
        const ObjectTransfer& tr = transfers[by_arrive[arr]];
        ++arr;
        if (tr.to == kNoSite) continue;
        // The destination locates the group's previous owner before taking
        // over (the handoff's "who do I pull stragglers from" resolution).
        // Nothing moved since the departure-time resolution, so with the
        // resolver cache enabled this repeat costs zero wire bytes.
        if (!centralized()) ons_.Resolve(tr.pallet, tr.to);
        auto reassign = [&](TagId tag) {
          owner_[tag] = tr.to;
          ons_.Register(tag, tr.to);
        };
        reassign(tr.pallet);
        for (TagId c : tr.cases) reassign(c);
        for (TagId o : tr.items) reassign(o);
      }
    }

    const bool boundary = period > 0 && t > 0 && t % period == 0;

    // -- Parallel window phase: install due arrivals, then ingest the
    // whole window of readings since the previous event. Each work item
    // touches exactly one site, so the fan-out is race-free.
    if (!centralized()) {
      ready.clear();
      for (size_t s = 0; s < sites_.size(); ++s) {
        const std::vector<RawReading>& rs = sim_->site_trace(
            static_cast<SiteId>(s)).readings();
        if (sites_[s]->HasArrivalsDue(t) ||
            (cursor[s] < rs.size() && rs[cursor[s]].time <= t)) {
          ready.push_back(s);
        }
      }
      executor.Run(ready.size(), [&](size_t i) {
        const size_t s = ready[i];
        obs::PhaseTimer span(telemetry_.get(), obs::Phase::kWindowCompute,
                             t, obs::kFirstSiteTrack + static_cast<int>(s));
        sites_[s]->DeliverArrivals(t);
        const std::vector<RawReading>& rs = sim_->site_trace(
            static_cast<SiteId>(s)).readings();
        size_t& c = cursor[s];
        const size_t begin = c;
        while (c < rs.size() && rs[c].time <= t) ++c;
        sites_[s]->ObserveBatch(rs.data() + begin, c - begin);
      });
    } else {
      {
        // One real processor: the window phase stays on the replay thread.
        obs::PhaseTimer span(telemetry_.get(), obs::Phase::kWindowCompute,
                             t, obs::kFirstSiteTrack);
        sites_[0]->DeliverArrivals(t);
        for (SiteId s = 0; s < num_warehouses; ++s) {
          const std::vector<RawReading>& rs =
              sim_->site_trace(s).readings();
          size_t& c = cursor[static_cast<size_t>(s)];
          const size_t begin = c;
          while (c < rs.size() && rs[c].time <= t) ++c;
          if (c == begin) continue;
          if (s == 0) {
            // Site 0 hosts the central server; its readings stay local.
            sites_[0]->ObserveBatch(rs.data() + begin, c - begin);
          } else {
            batch[static_cast<size_t>(s)].insert(
                batch[static_cast<size_t>(s)].end(), rs.begin() + begin,
                rs.begin() + c);
          }
        }
      }
      if (boundary || t == horizon) {
        obs::PhaseTimer span(telemetry_.get(), obs::Phase::kFlushEncode, t);
        for (SiteId s = 1; s < num_warehouses; ++s) {
          std::vector<RawReading>& b = batch[static_cast<size_t>(s)];
          if (b.empty()) continue;
          network_.Send(s, 0, MessageKind::kRawReadings,
                        EncodeReadingBatch(b, options_.site.compress_level));
          b.clear();
        }
        // With zero link latency the flushed readings are due now; the
        // server must ingest them before this boundary's inference run
        // (nonzero latency legitimately defers them to a later drain).
        network_.DeliverDue(0, t);
      }
    }

    // -- Parallel inference phase: every site runs at period boundaries
    // (AdvanceTo is a no-op elsewhere, so the fan-out is skipped).
    bool any_ran = false;
    if (boundary) {
      executor.Run(sites_.size(), [&](size_t s) {
        obs::PhaseTimer span(telemetry_.get(), obs::Phase::kInference, t,
                             obs::kFirstSiteTrack + static_cast<int>(s));
        ran[s] = sites_[s]->AdvanceTo(t);
      });
      for (int r : ran) any_ran = any_ran || r > 0;
    }

    // -- Serial boundary phase: exports, directory updates, accounting.
    {
      obs::PhaseTimer span(telemetry_.get(), obs::Phase::kDirectory, t);
      while (dep < by_depart.size() &&
             transfers[by_depart[dep]].depart <= t) {
        const ObjectTransfer& tr = transfers[by_depart[dep]];
        ++dep;
        if (centralized()) {
          if (tr.to == kNoSite) sites_[0]->Retire(tr);
        } else {
          // Locate the exporting site through the directory, the way a
          // real deployment resolves an object's current owner; the
          // destination (or, for supply-chain exits, the departing site)
          // is the charged requester. The Resolve is wire traffic; the
          // export itself is driven by the transfer record: with exact
          // invalidation the two always agree, while a TTL-stale answer
          // may name a *previous* owner -- which a real deployment handles
          // by chasing that site's redirect. Either way the state leaves
          // the site that holds it.
          ons_.Resolve(tr.pallet, tr.to != kNoSite ? tr.to : tr.from);
          const SiteId from = tr.from;
          if (from >= 0 && from < static_cast<SiteId>(sites_.size())) {
            sites_[static_cast<size_t>(from)]->ExportTransfer(tr);
          }
        }
        if (tr.to == kNoSite) {
          auto drop = [&](TagId tag) {
            owner_.erase(tag);
            ons_.Unregister(tag);
          };
          drop(tr.pallet);
          for (TagId c : tr.cases) drop(c);
          for (TagId o : tr.items) drop(o);
        }
      }
    }

    // Sample accuracy whenever inference ran, and always at the horizon:
    // when the horizon is not a multiple of the inference period the final
    // stretch of the run would otherwise never be measured.
    if (any_ran || t == horizon) {
      obs::PhaseTimer span(telemetry_.get(), obs::Phase::kSnapshotScan, t);
      RecordSnapshot(t, &executor);
    }
  }

  if (telemetry_ != nullptr && telemetry_->tracing()) {
    const Status st = telemetry_->sink()->WriteJson(
        telemetry_->trace_path(), num_processors());
    if (!st.ok()) {
      // A bad trace path should cost the diagnostics, not the replay.
      std::fprintf(stderr, "rfid: trace not written: %s\n",
                   st.ToString().c_str());
    }
  }
}

Site* DistributedSystem::OwnerSite(TagId object) const {
  if (centralized()) return sites_[0].get();
  auto it = owner_.find(object);
  if (it == owner_.end() || it->second < 0 ||
      it->second >= static_cast<SiteId>(sites_.size())) {
    return nullptr;
  }
  return sites_[static_cast<size_t>(it->second)].get();
}

TagId DistributedSystem::BelievedContainer(TagId object) const {
  Site* site = OwnerSite(object);
  return site == nullptr ? kNoTag : site->BelievedContainer(object);
}

TagId DistributedSystem::BelievedPallet(TagId object) const {
  Site* site = OwnerSite(object);
  if (site == nullptr) return kNoTag;
  if (!object.is_item()) return site->BelievedPallet(object);
  // Resolve the item's case at the item's owner, then the case's pallet at
  // the *case's* owner: mid-handoff the two can momentarily differ.
  const TagId c = site->BelievedContainer(object);
  if (!c.valid() || !c.is_case()) return kNoTag;
  Site* case_site = OwnerSite(c);
  return case_site == nullptr ? kNoTag : case_site->BelievedPallet(c);
}

ErrorRate DistributedSystem::ScanContainment(const std::vector<TagId>& tags,
                                             Epoch t, SiteExecutor* executor,
                                             bool contained_only) const {
  const GroundTruth& truth = sim_->truth();
  // Fan the per-tag scan across the executor pool: every evaluation is
  // read-only (ground-truth intervals, owner map, site beliefs), and the
  // per-chunk integer counts sum exactly, so the sampled percentage is
  // bit-identical to the serial scan for any thread or chunk count.
  const size_t n = tags.size();
  const size_t num_chunks =
      executor == nullptr || executor->serial() || n == 0
          ? 1
          : std::min(n, static_cast<size_t>(executor->num_threads()) * 4);
  auto scan_range = [&](size_t begin, size_t end, ErrorRate& out) {
    for (size_t i = begin; i < end; ++i) {
      const TagId tag = tags[i];
      if (!truth.PresentAt(tag, t)) continue;
      const TagId want = truth.ContainerAt(tag, t);
      if (contained_only && !want.valid()) continue;
      out.Add(BelievedContainer(tag) == want);
    }
  };
  ErrorRate err;
  if (num_chunks <= 1) {
    scan_range(0, n, err);
  } else {
    std::vector<ErrorRate> partial(num_chunks);
    executor->Run(num_chunks, [&](size_t chunk) {
      scan_range(chunk * n / num_chunks, (chunk + 1) * n / num_chunks,
                 partial[chunk]);
    });
    for (const ErrorRate& p : partial) err.AddCounts(p.errors(), p.total());
  }
  return err;
}

void DistributedSystem::RecordSnapshot(Epoch t, SiteExecutor* executor) {
  // A boundary with no items present records no sample: Percent() is NaN
  // when unmeasured, and NaN samples would poison the snapshot series
  // (NaN != NaN breaks the bit-identity comparisons; a mean over them is
  // meaningless).
  const ErrorRate item_err = ScanContainment(sim_->all_items(), t, executor,
                                             /*contained_only=*/false);
  if (item_err.total() > 0) {
    snapshots_.push_back(ErrorSnapshot{t, item_err.Percent()});
  }
  if (options_.site.hierarchical) {
    // The case level scores only truly contained cases (see
    // case_snapshots()); a boundary with none records no sample.
    const ErrorRate err = ScanContainment(sim_->all_cases(), t, executor,
                                          /*contained_only=*/true);
    if (err.total() > 0) {
      case_snapshots_.push_back(ErrorSnapshot{t, err.Percent()});
    }
  }
}

namespace {

/// Sample nearest to `at`; NaN when the series is empty. No samples means
/// "not measured", never "perfect": NaN keeps an empty run from
/// masquerading as a flawless one (benches print n/a).
double NearestSample(const std::vector<DistributedSystem::ErrorSnapshot>& xs,
                     Epoch at) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  const DistributedSystem::ErrorSnapshot* best = &xs.front();
  for (const DistributedSystem::ErrorSnapshot& s : xs) {
    if (std::abs(s.epoch - at) < std::abs(best->epoch - at)) best = &s;
  }
  return best->error_percent;
}

double MeanSince(const std::vector<DistributedSystem::ErrorSnapshot>& xs,
                 Epoch warmup) {
  OnlineStats stats;
  for (const DistributedSystem::ErrorSnapshot& s : xs) {
    if (s.epoch >= warmup) stats.Add(s.error_percent);
  }
  return stats.count() == 0 ? std::numeric_limits<double>::quiet_NaN()
                            : stats.Mean();
}

}  // namespace

double DistributedSystem::ContainmentErrorPercent(Epoch at) const {
  return NearestSample(snapshots_, at);
}

double DistributedSystem::AverageContainmentErrorPercent(Epoch warmup) const {
  return MeanSince(snapshots_, warmup);
}

double DistributedSystem::CaseContainmentErrorPercent(Epoch at) const {
  return NearestSample(case_snapshots_, at);
}

double DistributedSystem::AverageCaseContainmentErrorPercent(
    Epoch warmup) const {
  return MeanSince(case_snapshots_, warmup);
}

std::vector<ExposureAlert> DistributedSystem::AllAlerts(
    int query_index) const {
  std::vector<ExposureAlert> merged;
  for (const auto& site : sites_) {
    const ExposureQuery* q = site->query(query_index);
    if (q == nullptr) continue;
    merged.insert(merged.end(), q->alerts().begin(), q->alerts().end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const ExposureAlert& a, const ExposureAlert& b) {
                     if (a.last_time != b.last_time) {
                       return a.last_time < b.last_time;
                     }
                     return a.tag < b.tag;
                   });
  return merged;
}

double DistributedSystem::TotalInferenceSeconds() const {
  double total = 0.0;
  for (const auto& site : sites_) {
    total += site->streaming().total_inference_seconds();
  }
  return total;
}

}  // namespace rfid
