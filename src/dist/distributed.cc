#include "dist/distributed.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"

namespace rfid {

std::string ToString(ProcessingMode mode) {
  switch (mode) {
    case ProcessingMode::kDistributed:
      return "distributed";
    case ProcessingMode::kCentralized:
      return "centralized";
  }
  return "unknown";
}

std::vector<CrashEvent> SeededCrashSchedule(uint64_t seed, int num_sites,
                                            Epoch horizon, int count,
                                            Epoch outage) {
  std::vector<CrashEvent> out;
  if (num_sites <= 0 || horizon <= 2 || count <= 0) return out;
  Rng rng(seed);
  // Crashes land in the middle half of the horizon: early enough that
  // recovery traffic shows up in the run, late enough that there is
  // pre-crash state worth losing.
  const Epoch lo = std::max<Epoch>(1, horizon / 4);
  const Epoch span = std::max<Epoch>(1, horizon / 2);
  for (int i = 0; i < count; ++i) {
    CrashEvent c;
    c.site = static_cast<SiteId>(
        rng.NextBounded(static_cast<uint64_t>(num_sites)));
    c.at = lo + static_cast<Epoch>(
        rng.NextBounded(static_cast<uint64_t>(span)));
    c.recover_at =
        std::min<Epoch>(horizon, c.at + std::max<Epoch>(1, outage));
    if (c.recover_at > c.at) out.push_back(c);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CrashEvent& a, const CrashEvent& b) {
                     return a.at < b.at;
                   });
  // Drop crashes that overlap (or abut) an earlier outage of the same
  // site; the survivors always form a valid schedule.
  std::vector<CrashEvent> valid;
  for (const CrashEvent& c : out) {
    bool overlap = false;
    for (const CrashEvent& v : valid) {
      if (v.site == c.site && c.at <= v.recover_at) overlap = true;
    }
    if (!overlap) valid.push_back(c);
  }
  return valid;
}

DistributedSystem::DistributedSystem(
    const SupplyChainSim* sim, DistributedOptions options,
    const ProductCatalog* catalog,
    const std::vector<SensorReading>* sensors)
    : sim_(sim),
      options_(std::move(options)),
      catalog_(catalog),
      sensors_(sensors) {
  const int num_processors =
      centralized() ? 1 : sim_->config().num_warehouses;
  // Telemetry before the transport, so the backend is instrumented from
  // the first frame. Disabled = null pointer everywhere downstream.
  if (options_.collect_metrics) {
    const std::string trace_path =
        !options_.trace ? std::string()
        : options_.trace_path.empty() ? obs::TracePathFromEnv()
                                      : options_.trace_path;
    telemetry_ = std::make_unique<obs::Telemetry>(trace_path);
  }
  network_.SetTelemetry(telemetry_.get());
  // Transport next: the backend must be in place before any frame is
  // sent. The socket backend binds one loopback listener per processor
  // (remote sites in centralized mode only ever send, so they need none).
  network_.ConfigureTransport(options_.transport, num_processors);
  network_.Configure(options_.network);
  // The centralized baseline has no directory to consult (everything lives
  // at the server), so only the distributed deployment pays ONS traffic.
  if (!centralized()) {
    OnsOptions ons_opts;
    ons_opts.num_shards = options_.directory_shards > 0
                              ? options_.directory_shards
                              : num_processors;
    ons_opts.num_sites = num_processors;
    ons_opts.resolver_cache = options_.directory_cache;
    ons_opts.cache_ttl = options_.directory_cache_ttl;
    ons_.Configure(ons_opts);
    ons_.AttachNetwork(&network_);
  }
  // Crash schedules only make sense against the distributed deployment
  // (the centralized server has no peer to recover from). Without
  // durability they switch every site into retain-exports mode so peers
  // can answer a recovering site's kRecoveryRequest; a durable site
  // recovers from its own disk instead, needs no retained copies, and may
  // restart within the crash epoch (recover_at == at) at any CrashPhase.
  const bool durable_storage = options_.durability.enabled();
  if (!options_.crashes.empty()) {
    RFID_CHECK_OK(centralized()
                      ? Status::InvalidArgument(
                            "crash schedule requires distributed mode")
                      : Status::OK());
    Epoch prev_at = 0;
    for (const CrashEvent& c : options_.crashes) {
      const bool ok = c.site >= 0 && c.site < num_processors && c.at > 0 &&
                      (durable_storage ? c.recover_at >= c.at
                                       : c.recover_at > c.at) &&
                      c.at >= prev_at &&
                      (durable_storage || c.phase == CrashPhase::kMidWindow);
      RFID_CHECK_OK(ok ? Status::OK()
                       : Status::InvalidArgument("invalid crash schedule"));
      prev_at = c.at;
    }
    for (size_t i = 0; i < options_.crashes.size(); ++i) {
      for (size_t j = i + 1; j < options_.crashes.size(); ++j) {
        const CrashEvent& a = options_.crashes[i];
        const CrashEvent& b = options_.crashes[j];
        RFID_CHECK_OK(a.site == b.site && b.at <= a.recover_at
                          ? Status::InvalidArgument(
                                "overlapping crash windows for one site")
                          : Status::OK());
      }
    }
    if (!durable_storage) options_.site.retain_exports = true;
  }
  // Durable stores open before the sites so MakeSite can attach them; the
  // stores outlive any individual Site object (a crashed site's
  // replacement reopens the same on-disk state).
  if (durable_storage) {
    durabilities_.reserve(static_cast<size_t>(num_processors));
    for (SiteId s = 0; s < num_processors; ++s) {
      auto d = std::make_unique<SiteDurability>(options_.durability, s);
      RFID_CHECK_OK(d->Open());
      durabilities_.push_back(std::move(d));
    }
  }
  sites_.reserve(static_cast<size_t>(num_processors));
  for (SiteId s = 0; s < num_processors; ++s) {
    sites_.push_back(MakeSite(s));
  }
  cursors_.assign(static_cast<size_t>(sim_->config().num_warehouses), 0);
}

std::unique_ptr<Site> DistributedSystem::MakeSite(SiteId s) {
  auto site = std::make_unique<Site>(s, &sim_->model(), &sim_->schedule(),
                                     &network_, options_.site);
  Site* raw = site.get();
  raw->SetTelemetry(telemetry_.get());
  if (!durabilities_.empty()) {
    raw->AttachDurability(durabilities_[static_cast<size_t>(s)].get());
  }
  network_.RegisterHandler(
      s, [raw](SiteId from, MessageKind kind,
               const std::vector<uint8_t>& payload) {
        raw->HandleMessage(from, kind, payload);
      });
  if (options_.attach_queries && catalog_ != nullptr) {
    raw->AttachQueries(catalog_, options_.q1, options_.q2);
    if (sensors_ != nullptr) {
      for (const SensorReading& r : *sensors_) {
        if (centralized()) {
          if (s == 0) raw->AddSensor(r);
        } else if (sim_->layout().SiteOfLocation(r.loc) == s) {
          raw->AddSensor(r);
        }
      }
    }
  }
  return site;
}

DistributedSystem::~DistributedSystem() = default;

void DistributedSystem::Run() {
  if (ran_) return;
  ran_ = true;
  // Run's body IS the serial phase; workers it fans out only take shared
  // reads (BelievedContainer, IsSiteDown).
  phase_.AssertHeld();

  const Epoch horizon = sim_->config().horizon;
  const Epoch period = options_.site.streaming.inference_period;
  const GroundTruth& truth = sim_->truth();
  const int num_warehouses = sim_->config().num_warehouses;

  // Objects enter the directory when they enter the world (all pallets are
  // injected at the source warehouse, site 0).
  std::vector<std::pair<Epoch, TagId>> injections;
  auto add_tags = [&](const std::vector<TagId>& tags) {
    for (TagId tag : tags) {
      const auto& ivs = truth.IntervalsOf(tag);
      if (!ivs.empty()) injections.emplace_back(ivs.front().begin, tag);
    }
  };
  add_tags(sim_->all_pallets());
  add_tags(sim_->all_cases());
  add_tags(sim_->all_items());
  std::stable_sort(injections.begin(), injections.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  // Transfers indexed by arrival and by departure epoch.
  const std::vector<ObjectTransfer>& transfers = sim_->transfers();
  std::vector<size_t> by_arrive(transfers.size());
  std::vector<size_t> by_depart(transfers.size());
  std::iota(by_arrive.begin(), by_arrive.end(), size_t{0});
  std::iota(by_depart.begin(), by_depart.end(), size_t{0});
  std::stable_sort(by_arrive.begin(), by_arrive.end(),
                   [&](size_t a, size_t b) {
                     return transfers[a].arrive < transfers[b].arrive;
                   });
  std::stable_sort(by_depart.begin(), by_depart.end(),
                   [&](size_t a, size_t b) {
                     return transfers[a].depart < transfers[b].depart;
                   });

  // ---- Event schedule: the only epochs at which anything can happen ----
  // Injections, transfer departures/arrivals (ownership, exports,
  // deliveries), inference-period boundaries (runs and centralized
  // flushes), and the horizon itself. Epochs in between only carry raw
  // readings, which are ingested as whole batched windows at the next
  // event, so idle epochs -- and idle sites -- cost nothing.
  std::vector<Epoch> events;
  events.reserve(injections.size() + 2 * transfers.size() +
                 static_cast<size_t>(horizon / std::max<Epoch>(1, period)) +
                 2);
  for (const auto& [epoch, tag] : injections) {
    if (epoch <= horizon) events.push_back(epoch);
  }
  for (const ObjectTransfer& tr : transfers) {
    if (tr.depart <= horizon) events.push_back(tr.depart);
    if (tr.arrive <= horizon) events.push_back(tr.arrive);
  }
  for (Epoch b = period; b > 0 && b <= horizon; b += period) {
    events.push_back(b);
  }
  for (const CrashEvent& c : options_.crashes) {
    if (c.at <= horizon) events.push_back(c.at);
    if (c.recover_at <= horizon) events.push_back(c.recover_at);
  }
  events.push_back(horizon);
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());

  // At most one thread per work item can ever be useful: in distributed
  // mode each item owns a whole site; in centralized mode the only
  // fan-out is the pipelined boundary flush, whose items are the remote
  // sites' batch encodes (plus the server's window). A wider pool (e.g.
  // kAutoThreads on a many-core box driving a 1-site serial centralized
  // replay) only adds wakeup contention.
  const int useful_threads =
      centralized() ? (options_.pipeline_flush
                           ? static_cast<int>(num_warehouses)
                           : 1)
                    : static_cast<int>(sites_.size());
  SiteExecutor executor(std::min(
      SiteExecutor::ResolveThreads(options_.num_threads), useful_threads));
  std::vector<size_t>& cursor = cursors_;
  // Centralized mode: a remote site's un-flushed readings pend as the
  // range [flush_begin[s], cursor[s]) of its immutable simulator trace --
  // the boundary flush encodes straight from that span, so no reading is
  // ever staged through an intermediate copy. encoded[] holds the
  // pipelined flush's per-site payloads between the fan-out and the
  // serial sends.
  std::vector<size_t> flush_begin(static_cast<size_t>(num_warehouses), 0);
  std::vector<std::vector<uint8_t>> encoded(
      static_cast<size_t>(num_warehouses));
  std::vector<size_t> ready;
  ready.reserve(sites_.size());
  std::vector<int> ran(sites_.size(), 0);

  size_t inj = 0;
  size_t arr = 0;
  size_t dep = 0;
  size_t crash_idx = 0;
  std::vector<CrashEvent> outstanding;  // crashed, not yet recovered
  std::vector<SiteId> recovered;        // recovered at this event
  std::vector<CrashEvent> deferred;     // this event's post-drain kills
  for (Epoch t : events) {
    // -- Serial: advance the wall clocks (send epochs, TTL expiry), then
    // drain every processor's delivery queue of frames whose arrival
    // epoch has passed. Messages sent at earlier events were in flight
    // until now; handlers (HandleMessage) run here, serially, so the
    // parallel phases below only ever see site-local pending queues.
    network_.AdvanceClock(t);
    ons_.AdvanceClock(t);

    // -- Serial: scheduled failures. Non-durable recoveries mark the site
    // up before the drain (so the frames that queued up during the outage
    // deliver into the replacement process this very event); durable
    // recoveries stay marked down through the drain -- the replacement
    // must restore its checkpoint and WAL before any backlog applies, so
    // RecoverSiteDurable drains the fabric itself afterwards. Mid-window
    // crashes strike before the drain (the dead process never sees this
    // epoch's frames); post-drain and mid-flush kills defer until after
    // the sweep and its WAL flush.
    recovered.clear();
    for (auto it = outstanding.begin(); it != outstanding.end();) {
      if (it->recover_at <= t) {
        if (!durable()) network_.SetSiteDown(it->site, false);
        recovered.push_back(it->site);
        it = outstanding.erase(it);
      } else {
        ++it;
      }
    }
    deferred.clear();
    while (crash_idx < options_.crashes.size() &&
           options_.crashes[crash_idx].at <= t) {
      const CrashEvent& c = options_.crashes[crash_idx];
      if (c.phase == CrashPhase::kMidWindow) {
        CrashSite(c.site, c.at);
        if (c.recover_at <= t) {
          recovered.push_back(c.site);  // immediate restart (durable only)
        } else {
          outstanding.push_back(c);
        }
      } else {
        deferred.push_back(c);
      }
      ++crash_idx;
    }
    network_.TickReliability(t);
    {
      obs::PhaseTimer span(telemetry_.get(), obs::Phase::kQueueDrain, t);
      for (SiteId s = 0; s < static_cast<SiteId>(sites_.size()); ++s) {
        // A mid-flush kill caps this site's drain at one frame: the WAL
        // flush below makes that prefix durable, the crash strikes, and
        // the unconsumed suffix waits in the fabric (append-before-apply:
        // no frame is both lost from disk and popped from the network).
        int max_frames = -1;
        for (const CrashEvent& c : deferred) {
          if (c.site == s && c.phase == CrashPhase::kMidFlush) max_frames = 1;
        }
        network_.DeliverDue(s, t, max_frames);
      }
    }
    // -- Serial: make this drain's WAL appends (and any audit records
    // pending since the previous event) durable, one batched fsync per
    // site per event.
    if (durable()) {
      obs::PhaseTimer span(telemetry_.get(), obs::Phase::kWalAppend, t);
      for (SiteId s = 0; s < static_cast<SiteId>(sites_.size()); ++s) {
        if (network_.IsSiteDown(s)) continue;
        RFID_CHECK_OK(durabilities_[static_cast<size_t>(s)]->Flush());
      }
    }
    for (const CrashEvent& c : deferred) {
      CrashSite(c.site, c.at);
      if (c.recover_at <= t) {
        recovered.push_back(c.site);
      } else {
        outstanding.push_back(c);
      }
    }
    for (SiteId s : recovered) {
      if (durable()) {
        network_.SetSiteDown(s, false);
        RecoverSiteDurable(s, t);
      } else {
        RecoverSite(s, t);
      }
    }

    // -- Serial: ownership + directory bookkeeping due at t.
    {
      obs::PhaseTimer span(telemetry_.get(), obs::Phase::kDirectory, t);
      while (inj < injections.size() && injections[inj].first <= t) {
        owner_[injections[inj].second] = 0;
        ons_.Register(injections[inj].second, 0);
        ++inj;
      }

      while (arr < by_arrive.size() &&
             transfers[by_arrive[arr]].arrive <= t) {
        const ObjectTransfer& tr = transfers[by_arrive[arr]];
        ++arr;
        if (tr.to == kNoSite) continue;
        // The destination locates the group's previous owner before taking
        // over (the handoff's "who do I pull stragglers from" resolution).
        // Nothing moved since the departure-time resolution, so with the
        // resolver cache enabled this repeat costs zero wire bytes.
        if (!centralized()) ons_.Resolve(tr.pallet, tr.to);
        auto reassign = [&](TagId tag) {
          phase_.AssertHeld();  // lambda body: re-establish for analysis
          owner_[tag] = tr.to;
          ons_.Register(tag, tr.to);
        };
        reassign(tr.pallet);
        for (TagId c : tr.cases) reassign(c);
        for (TagId o : tr.items) reassign(o);
      }
    }

    const bool boundary = period > 0 && t > 0 && t % period == 0;

    // -- Parallel window phase: install due arrivals, then ingest the
    // whole window of readings since the previous event. Each work item
    // touches exactly one site, so the fan-out is race-free.
    if (!centralized()) {
      ready.clear();
      for (size_t s = 0; s < sites_.size(); ++s) {
        // A down site's process is gone: its readings stay in the durable
        // trace (cursor frozen) until the recovery rebuild replays them.
        if (network_.IsSiteDown(static_cast<SiteId>(s))) continue;
        const std::vector<RawReading>& rs = sim_->site_trace(
            static_cast<SiteId>(s)).readings();
        if (sites_[s]->HasArrivalsDue(t) ||
            (cursor[s] < rs.size() && rs[cursor[s]].time <= t)) {
          ready.push_back(s);
        }
      }
      executor.Run(ready.size(), [&](size_t i) {
        const size_t s = ready[i];
        obs::PhaseTimer span(telemetry_.get(), obs::Phase::kWindowCompute,
                             t, obs::kFirstSiteTrack + static_cast<int>(s));
        sites_[s]->DeliverArrivals(t);
        const std::vector<RawReading>& rs = sim_->site_trace(
            static_cast<SiteId>(s)).readings();
        size_t& c = cursor[s];
        const size_t begin = c;
        while (c < rs.size() && rs[c].time <= t) ++c;
        sites_[s]->ObserveBatch(rs.data() + begin, c - begin);
      });
    } else {
      const bool flush_now = boundary || t == horizon;
      const size_t begin0 = cursor[0];
      {
        // Advance every cursor on the replay thread (a cheap scan over
        // the trace); remote readings stay pending as trace ranges until
        // the flush below ships them.
        for (SiteId s = 0; s < num_warehouses; ++s) {
          const std::vector<RawReading>& rs =
              sim_->site_trace(s).readings();
          size_t& c = cursor[static_cast<size_t>(s)];
          while (c < rs.size() && rs[c].time <= t) ++c;
        }
      }
      if (flush_now && options_.pipeline_flush) {
        // Pipelined boundary: the server's window compute and the remote
        // sites' batch encodes (the expensive delta + gzip) fan out
        // together. The encodes read only the immutable simulator trace
        // and write disjoint encoded[] slots; the server job touches only
        // site 0 -- race-free. The sends stay serial below in ascending
        // site order, so payload bytes, seq numbers, and the server's
        // ingest-before-inference ordering are all unchanged: the overlap
        // is bit-identical to the serial path by construction.
        ready.clear();
        for (size_t s = 1; s < static_cast<size_t>(num_warehouses); ++s) {
          if (flush_begin[s] < cursor[s]) ready.push_back(s);
        }
        executor.Run(ready.size() + 1, [&](size_t i) {
          if (i == 0) {
            obs::PhaseTimer span(telemetry_.get(),
                                 obs::Phase::kWindowCompute, t,
                                 obs::kFirstSiteTrack);
            sites_[0]->DeliverArrivals(t);
            const std::vector<RawReading>& rs =
                sim_->site_trace(0).readings();
            if (cursor[0] > begin0) {
              sites_[0]->ObserveBatch(rs.data() + begin0,
                                      cursor[0] - begin0);
            }
            return;
          }
          const size_t s = ready[i - 1];
          obs::PhaseTimer span(telemetry_.get(), obs::Phase::kFlushOverlap,
                               t, obs::kFirstSiteTrack + static_cast<int>(s));
          const std::vector<RawReading>& rs =
              sim_->site_trace(static_cast<SiteId>(s)).readings();
          encoded[s] = EncodeReadingBatch(rs.data() + flush_begin[s],
                                          cursor[s] - flush_begin[s],
                                          options_.site.compress_level);
        });
      } else {
        // One real processor: the window phase stays on the replay thread.
        obs::PhaseTimer span(telemetry_.get(), obs::Phase::kWindowCompute,
                             t, obs::kFirstSiteTrack);
        sites_[0]->DeliverArrivals(t);
        const std::vector<RawReading>& rs = sim_->site_trace(0).readings();
        if (cursor[0] > begin0) {
          // Site 0 hosts the central server; its readings stay local.
          sites_[0]->ObserveBatch(rs.data() + begin0, cursor[0] - begin0);
        }
      }
      if (flush_now) {
        obs::PhaseTimer span(telemetry_.get(), obs::Phase::kFlushEncode, t);
        for (SiteId s = 1; s < num_warehouses; ++s) {
          const size_t si = static_cast<size_t>(s);
          if (flush_begin[si] == cursor[si]) continue;
          if (!options_.pipeline_flush) {
            const std::vector<RawReading>& rs =
                sim_->site_trace(s).readings();
            encoded[si] = EncodeReadingBatch(rs.data() + flush_begin[si],
                                             cursor[si] - flush_begin[si],
                                             options_.site.compress_level);
          }
          network_.Send(s, 0, MessageKind::kRawReadings, encoded[si]);
          encoded[si].clear();
          flush_begin[si] = cursor[si];
        }
        // With zero link latency the flushed readings are due now; the
        // server must ingest them before this boundary's inference run
        // (nonzero latency legitimately defers them to a later drain).
        network_.DeliverDue(0, t);
      }
    }

    // -- Parallel inference phase: every site runs at period boundaries
    // (AdvanceTo is a no-op elsewhere, so the fan-out is skipped).
    bool any_ran = false;
    if (boundary) {
      executor.Run(sites_.size(), [&](size_t s) {
        if (network_.IsSiteDown(static_cast<SiteId>(s))) {
          ran[s] = 0;
          return;
        }
        obs::PhaseTimer span(telemetry_.get(), obs::Phase::kInference, t,
                             obs::kFirstSiteTrack + static_cast<int>(s));
        ran[s] = sites_[s]->AdvanceTo(t);
      });
      for (int r : ran) any_ran = any_ran || r > 0;
    }

    // -- Serial boundary phase: exports, directory updates, accounting.
    {
      obs::PhaseTimer span(telemetry_.get(), obs::Phase::kDirectory, t);
      while (dep < by_depart.size() &&
             transfers[by_depart[dep]].depart <= t) {
        const ObjectTransfer& tr = transfers[by_depart[dep]];
        ++dep;
        if (centralized()) {
          if (tr.to == kNoSite) sites_[0]->Retire(tr);
        } else {
          // Locate the exporting site through the directory, the way a
          // real deployment resolves an object's current owner; the
          // destination (or, for supply-chain exits, the departing site)
          // is the charged requester. The Resolve is wire traffic; the
          // export itself is driven by the transfer record: with exact
          // invalidation the two always agree, while a TTL-stale answer
          // may name a *previous* owner -- which a real deployment handles
          // by chasing that site's redirect. Either way the state leaves
          // the site that holds it.
          ons_.Resolve(tr.pallet, tr.to != kNoSite ? tr.to : tr.from);
          const SiteId from = tr.from;
          // A transfer departing a crashed site exports nothing: the state
          // died with the process, and the destination honestly starts
          // cold for that group.
          if (from >= 0 && from < static_cast<SiteId>(sites_.size()) &&
              !network_.IsSiteDown(from)) {
            sites_[static_cast<size_t>(from)]->ExportTransfer(tr);
          }
        }
        if (tr.to == kNoSite) {
          auto drop = [&](TagId tag) {
            phase_.AssertHeld();  // lambda body: re-establish for analysis
            owner_.erase(tag);
            ons_.Unregister(tag);
          };
          drop(tr.pallet);
          for (TagId c : tr.cases) drop(c);
          for (TagId o : tr.items) drop(o);
        }
      }
    }

    // Sample accuracy whenever inference ran, and always at the horizon:
    // when the horizon is not a multiple of the inference period the final
    // stretch of the run would otherwise never be measured.
    if (any_ran || t == horizon) {
      obs::PhaseTimer span(telemetry_.get(), obs::Phase::kSnapshotScan, t);
      RecordSnapshot(t, &executor);
    }

    // -- Serial: durable checkpoints at the cadence boundaries. The cut
    // point matters: every arrival due at t has installed, every export
    // departing at t has been taken, so "state at the end of boundary t"
    // is exactly what the encoder captures -- and WAL segments after this
    // cut contain precisely the frames drained after it.
    if (durable() && boundary && options_.site.checkpoint_every > 0 &&
        (t / period) % options_.site.checkpoint_every == 0) {
      obs::PhaseTimer span(telemetry_.get(), obs::Phase::kCheckpoint, t);
      for (SiteId s = 0; s < static_cast<SiteId>(sites_.size()); ++s) {
        if (network_.IsSiteDown(s)) continue;
        const size_t si = static_cast<size_t>(s);
        RFID_CHECK_OK(durabilities_[si]->WriteCheckpoint(
            t, sites_[si]->EncodeCheckpoint(t)));
      }
    }
  }

  // -- Reliability flush: with faults on, the last window's frames (or
  // their retransmissions) can still be unacked at the horizon. Keep the
  // clock ticking in RTO steps until the protocol drains -- deliveries
  // after the horizon only top up pending queues (no inference boundary
  // runs anymore), so results are unaffected, but the byte accounting ends
  // complete and AllReliableDelivered() can hold.
  if (network_.reliable()) {
    const Epoch step =
        std::max<Epoch>(1, options_.network.reliability.rto);
    Epoch t = horizon;
    int idle = 0;
    for (int guard = 0; idle < 3 && guard < 10000; ++guard) {
      t += step;
      network_.AdvanceClock(t);
      network_.TickReliability(t);
      int delivered = 0;
      for (SiteId s = 0; s < static_cast<SiteId>(sites_.size()); ++s) {
        delivered += network_.DeliverDue(s, t);
      }
      idle = delivered == 0 && !network_.HasReliabilityWork() ? idle + 1 : 0;
    }
    reliability_flush_epochs_ = t - horizon;
  }

  // Final durability flush (audit records from the last window pend until
  // here), then surface the counters alongside the run's other metrics.
  if (durable()) {
    for (auto& d : durabilities_) RFID_CHECK_OK(d->Flush());
    if (telemetry_ != nullptr) {
      const DurabilityStats totals = DurabilityTotals();
      auto& reg = telemetry_->registry();
      reg.GetCounter("durability/wal_appends")->Add(totals.wal_appends);
      reg.GetCounter("durability/wal_bytes")->Add(totals.wal_bytes);
      reg.GetCounter("durability/wal_fsyncs")->Add(totals.wal_fsyncs);
      reg.GetCounter("durability/checkpoints")->Add(totals.checkpoints);
      reg.GetCounter("durability/checkpoint_bytes")
          ->Add(totals.checkpoint_bytes);
      reg.GetCounter("durability/replayed_frames")
          ->Add(totals.replayed_frames);
      reg.GetCounter("durability/audit_records")->Add(totals.audit_records);
    }
  }

  if (telemetry_ != nullptr && telemetry_->tracing()) {
    const Status st = telemetry_->sink()->WriteJson(
        telemetry_->trace_path(), num_processors());
    if (!st.ok()) {
      // A bad trace path should cost the diagnostics, not the replay.
      std::fprintf(stderr, "rfid: trace not written: %s\n",
                   st.ToString().c_str());
    }
  }
}

void DistributedSystem::CrashSite(SiteId s, Epoch at) {
  // Freeze the dead site's current containment answers: queries during
  // the outage degrade to this last-known view instead of failing.
  // lint:allow(unordered-iter): keyed writes into degraded_beliefs_; no
  // accumulation or send depends on visit order.
  for (const auto& [tag, site] : owner_) {
    if (site != s) continue;
    degraded_beliefs_[tag] =
        sites_[static_cast<size_t>(s)]->BelievedContainer(tag);
  }
  crash_at_[s] = at;
  // Without durability the fabric purges every frame addressed to the
  // dead process (they had nowhere durable to land). With it, only the
  // process died: in-flight frames wait out the outage and deliver into
  // the replacement after its restore -- and any WAL/audit bytes the dead
  // process had buffered but not fsynced are honestly lost.
  network_.SetSiteDown(s, true, /*purge=*/!durable());
  if (durable()) durabilities_[static_cast<size_t>(s)]->DropPending();
  if (telemetry_ != nullptr) {
    telemetry_->registry().GetCounter("crash/crashes")->Add(1);
  }
  // Swap in a pristine replacement process. It receives nothing while the
  // site is down; RecoverSite rebuilds its state at recover_at.
  sites_[static_cast<size_t>(s)] = MakeSite(s);
}

void DistributedSystem::RecoverSite(SiteId s, Epoch t) {
  obs::PhaseTimer span(telemetry_.get(), obs::Phase::kCrashRecovery, t);
  auto cit = crash_at_.find(s);
  const Epoch crashed_at = cit == crash_at_.end() ? t : cit->second;
  if (cit != crash_at_.end()) crash_at_.erase(cit);

  // Ask every live peer for the migration state it sent us strictly
  // before the crash (what queued during the outage survived in the
  // fabric and needs no resend). With zero link latency the round trip
  // completes inside this event: the requests deliver, the peers re-send,
  // and the envelopes land in the replacement's pending queues before the
  // trace replay below installs them at their original arrival boundaries.
  // Lossy links may defer parts of the round trip to later drains -- the
  // site converges as the retransmissions land.
  BufferWriter w;
  w.PutVarint(static_cast<uint64_t>(crashed_at));
  const std::vector<uint8_t> request = w.Release();
  for (SiteId p = 0; p < static_cast<SiteId>(sites_.size()); ++p) {
    if (p == s || network_.IsSiteDown(p)) continue;
    network_.Send(s, p, MessageKind::kRecoveryRequest, request);
  }
  for (SiteId p = 0; p < static_cast<SiteId>(sites_.size()); ++p) {
    if (p == s || network_.IsSiteDown(p)) continue;
    network_.DeliverDue(p, t);
  }
  network_.DeliverDue(s, t);

  // Replay the site's own durable inputs through every inference boundary
  // before t, interleaving the local side effects of the exports the dead
  // process already sent (DropTransferState) at their original positions.
  // The engines re-run the same boundaries over the same (re-sorted)
  // readings with the same imports installed at the same boundaries, so
  // at fault rate 0 the rebuilt state is bit-identical to the pre-crash
  // process's. The current event t itself is handled by the normal window
  // and inference phases that follow this call.
  const Epoch period = options_.site.streaming.inference_period;
  std::vector<const ObjectTransfer*> departs;
  for (const ObjectTransfer& tr : sim_->transfers()) {
    if (tr.from == s && tr.depart < t) departs.push_back(&tr);
  }
  std::stable_sort(departs.begin(), departs.end(),
                   [](const ObjectTransfer* a, const ObjectTransfer* b) {
                     return a->depart < b->depart;
                   });
  Site* site = sites_[static_cast<size_t>(s)].get();
  const std::vector<RawReading>& rs = sim_->site_trace(s).readings();
  size_t cur = 0;
  size_t di = 0;
  auto observe_to = [&](Epoch b) {
    const size_t begin = cur;
    while (cur < rs.size() && rs[cur].time <= b) ++cur;
    site->ObserveBatch(rs.data() + begin, cur - begin);
  };
  auto departs_to = [&](Epoch b, bool inclusive) {
    while (di < departs.size() &&
           (inclusive ? departs[di]->depart <= b : departs[di]->depart < b)) {
      site->DropTransferState(*departs[di]);
      ++di;
    }
  };
  if (period > 0) {
    for (Epoch b = period; b < t; b += period) {
      // Departures strictly before a boundary precede its run; departures
      // exactly at it follow the run (the live serial-phase ordering).
      departs_to(b, /*inclusive=*/false);
      site->DeliverArrivals(b);
      observe_to(b);
      site->AdvanceTo(b);
      departs_to(b, /*inclusive=*/true);
    }
  }
  departs_to(t - 1, /*inclusive=*/true);
  site->DeliverArrivals(t - 1);
  observe_to(t - 1);
  cursors_[static_cast<size_t>(s)] = cur;

  // The site answers live again: drop every degraded entry whose owner is
  // back up (entries for tags owned by a still-down site stay).
  // lint:allow(unordered-iter): pure per-key filter; surviving set is
  // independent of visit order.
  for (auto it = degraded_beliefs_.begin(); it != degraded_beliefs_.end();) {
    auto o = owner_.find(it->first);
    const bool keep = o != owner_.end() && o->second >= 0 &&
                      o->second < static_cast<SiteId>(sites_.size()) &&
                      network_.IsSiteDown(o->second);
    it = keep ? std::next(it) : degraded_beliefs_.erase(it);
  }
}

void DistributedSystem::RecoverSiteDurable(SiteId s, Epoch t) {
  obs::PhaseTimer span(telemetry_.get(), obs::Phase::kCrashRecovery, t);
  auto cit = crash_at_.find(s);
  const Epoch crashed_at = cit == crash_at_.end() ? t : cit->second;
  if (cit != crash_at_.end()) crash_at_.erase(cit);

  SiteDurability* d = durabilities_[static_cast<size_t>(s)].get();
  Site* site = sites_[static_cast<size_t>(s)].get();

  // 1. Restore the newest valid checkpoint cut C (C = 0, empty state,
  // when none exists) and re-feed the post-C WAL tail through the
  // handler in append order. Both are re-executions of already-durable
  // work, so WAL/audit appends stay suppressed.
  d->set_replaying(true);
  Epoch cut = 0;
  std::vector<uint8_t> payload;
  RFID_CHECK_OK(d->LoadCheckpoint(&cut, &payload));
  if (!payload.empty()) {
    RFID_CHECK_OK(site->RestoreCheckpoint(cut, payload));
  }
  std::vector<Frame> wal;
  RFID_CHECK_OK(d->ReadWalSince(cut, &wal));
  for (const Frame& f : wal) {
    site->HandleMessage(f.from, f.kind, f.payload);
  }
  d->set_replaying(false);

  // 2. Drain the outage backlog the fabric retained (and, after a
  // mid-flush kill, the unconsumed suffix of the crash epoch's drain).
  // These frames are new to the WAL and log normally. Because a frame's
  // drain epoch is monotone in its arrival epoch, checkpoint-pending +
  // WAL tail + backlog lands in the pending queues in exactly the order
  // the uncrashed site would have accumulated.
  network_.DeliverDue(s, t);

  // 3. Replay the site's own trace boundaries in (C, t), the same
  // interleave as the non-durable rebuild -- except that a transfer that
  // departed while the process was down was never exported at all, so
  // the catch-up exports it for real: the destination installs from the
  // envelope's arrival boundary, and with an all-zero FaultModel the run
  // stays bit-identical to the uncrashed one even for departures during
  // the outage. Departures the dead process already exported re-drop
  // locally (DropTransferState), never re-send.
  d->set_replaying(true);
  const Epoch period = options_.site.streaming.inference_period;
  std::vector<const ObjectTransfer*> departs;
  for (const ObjectTransfer& tr : sim_->transfers()) {
    if (tr.from == s && tr.depart > cut && tr.depart < t) {
      departs.push_back(&tr);
    }
  }
  std::stable_sort(departs.begin(), departs.end(),
                   [](const ObjectTransfer* a, const ObjectTransfer* b) {
                     return a->depart < b->depart;
                   });
  const std::vector<RawReading>& rs = sim_->site_trace(s).readings();
  size_t cur = 0;
  while (cur < rs.size() && rs[cur].time <= cut) ++cur;
  size_t di = 0;
  auto observe_to = [&](Epoch b) {
    const size_t begin = cur;
    while (cur < rs.size() && rs[cur].time <= b) ++cur;
    site->ObserveBatch(rs.data() + begin, cur - begin);
  };
  auto departs_to = [&](Epoch b, bool inclusive) {
    while (di < departs.size() &&
           (inclusive ? departs[di]->depart <= b : departs[di]->depart < b)) {
      const ObjectTransfer& tr = *departs[di];
      if (tr.depart >= crashed_at) {
        // The live departure event ran its window phase (arrivals, then
        // readings up to the departure epoch) before the export snapshot
        // the migrating tags' histories; the catch-up export must too, or
        // the envelope comes up short the readings since the last
        // boundary.
        site->DeliverArrivals(tr.depart);
        observe_to(tr.depart);
        site->ExportTransfer(tr);
      } else {
        site->DropTransferState(tr);
      }
      ++di;
    }
  };
  if (period > 0) {
    for (Epoch b = cut + period; b < t; b += period) {
      departs_to(b, /*inclusive=*/false);
      site->DeliverArrivals(b);
      observe_to(b);
      site->AdvanceTo(b);
      departs_to(b, /*inclusive=*/true);
    }
  }
  departs_to(t - 1, /*inclusive=*/true);
  site->DeliverArrivals(t - 1);
  observe_to(t - 1);
  cursors_[static_cast<size_t>(s)] = cur;
  d->set_replaying(false);
  // The backlog drain's WAL records become durable now rather than at the
  // next event's sweep: recovery ends with disk and state in agreement.
  RFID_CHECK_OK(d->Flush());
  if (telemetry_ != nullptr) {
    telemetry_->registry().GetCounter("crash/durable_recoveries")->Add(1);
  }

  // The site answers live again (same cleanup as the peer-assisted path).
  // lint:allow(unordered-iter): pure per-key filter; surviving set is
  // independent of visit order.
  for (auto it = degraded_beliefs_.begin(); it != degraded_beliefs_.end();) {
    auto o = owner_.find(it->first);
    const bool keep = o != owner_.end() && o->second >= 0 &&
                      o->second < static_cast<SiteId>(sites_.size()) &&
                      network_.IsSiteDown(o->second);
    it = keep ? std::next(it) : degraded_beliefs_.erase(it);
  }
}

DurabilityStats DistributedSystem::DurabilityTotals() const {
  DurabilityStats total;
  for (const auto& d : durabilities_) {
    const DurabilityStats& s = d->stats();
    total.wal_appends += s.wal_appends;
    total.wal_bytes += s.wal_bytes;
    total.wal_fsyncs += s.wal_fsyncs;
    total.checkpoints += s.checkpoints;
    total.checkpoint_bytes += s.checkpoint_bytes;
    total.replayed_frames += s.replayed_frames;
    total.torn_tail_records += s.torn_tail_records;
    total.checkpoint_fallbacks += s.checkpoint_fallbacks;
    total.audit_records += s.audit_records;
  }
  return total;
}

Site* DistributedSystem::OwnerSite(TagId object) const {
  phase_.AssertShared();
  if (centralized()) return sites_[0].get();
  auto it = owner_.find(object);
  if (it == owner_.end() || it->second < 0 ||
      it->second >= static_cast<SiteId>(sites_.size())) {
    return nullptr;
  }
  return sites_[static_cast<size_t>(it->second)].get();
}

TagId DistributedSystem::BelievedContainer(TagId object) const {
  phase_.AssertShared();
  if (!centralized()) {
    auto it = owner_.find(object);
    if (it != owner_.end() && it->second >= 0 &&
        it->second < static_cast<SiteId>(sites_.size()) &&
        network_.IsSiteDown(it->second)) {
      // The owner is mid-outage: answer from its last-known view.
      auto d = degraded_beliefs_.find(object);
      return d == degraded_beliefs_.end() ? kNoTag : d->second;
    }
  }
  Site* site = OwnerSite(object);
  return site == nullptr ? kNoTag : site->BelievedContainer(object);
}

TagId DistributedSystem::BelievedPallet(TagId object) const {
  phase_.AssertShared();
  if (centralized()) return sites_[0]->BelievedPallet(object);
  if (!options_.site.hierarchical) return kNoTag;
  auto owned = [&](TagId tag) {
    phase_.AssertShared();  // lambda body: re-establish for analysis
    auto it = owner_.find(tag);
    return it != owner_.end() && it->second >= 0 &&
           it->second < static_cast<SiteId>(sites_.size());
  };
  if (!object.is_item()) {
    if (!owned(object)) return kNoTag;
    // A pallet is its own pallet; a case's pallet is its believed
    // container (which already falls back to the degraded view when the
    // case's owner is down).
    return object.is_pallet() ? object : BelievedContainer(object);
  }
  // Resolve the item's case at the item's owner, then the case's pallet at
  // the *case's* owner: mid-handoff the two can momentarily differ.
  const TagId c = BelievedContainer(object);
  if (!c.valid() || !c.is_case() || !owned(c)) return kNoTag;
  return BelievedContainer(c);
}

ErrorRate DistributedSystem::ScanContainment(const std::vector<TagId>& tags,
                                             Epoch t, SiteExecutor* executor,
                                             bool contained_only) const {
  const GroundTruth& truth = sim_->truth();
  // Fan the per-tag scan across the executor pool: every evaluation is
  // read-only (ground-truth intervals, owner map, site beliefs), and the
  // per-chunk integer counts sum exactly, so the sampled percentage is
  // bit-identical to the serial scan for any thread or chunk count.
  const size_t n = tags.size();
  const size_t num_chunks =
      executor == nullptr || executor->serial() || n == 0
          ? 1
          : std::min(n, static_cast<size_t>(executor->num_threads()) * 4);
  auto scan_range = [&](size_t begin, size_t end, ErrorRate& out) {
    for (size_t i = begin; i < end; ++i) {
      const TagId tag = tags[i];
      if (!truth.PresentAt(tag, t)) continue;
      const TagId want = truth.ContainerAt(tag, t);
      if (contained_only && !want.valid()) continue;
      out.Add(BelievedContainer(tag) == want);
    }
  };
  ErrorRate err;
  if (num_chunks <= 1) {
    scan_range(0, n, err);
  } else {
    std::vector<ErrorRate> partial(num_chunks);
    executor->Run(num_chunks, [&](size_t chunk) {
      scan_range(chunk * n / num_chunks, (chunk + 1) * n / num_chunks,
                 partial[chunk]);
    });
    for (const ErrorRate& p : partial) err.AddCounts(p.errors(), p.total());
  }
  return err;
}

void DistributedSystem::RecordSnapshot(Epoch t, SiteExecutor* executor) {
  // A boundary with no items present records no sample: Percent() is NaN
  // when unmeasured, and NaN samples would poison the snapshot series
  // (NaN != NaN breaks the bit-identity comparisons; a mean over them is
  // meaningless).
  const ErrorRate item_err = ScanContainment(sim_->all_items(), t, executor,
                                             /*contained_only=*/false);
  if (item_err.total() > 0) {
    snapshots_.push_back(ErrorSnapshot{t, item_err.Percent()});
  }
  if (options_.site.hierarchical) {
    // The case level scores only truly contained cases (see
    // case_snapshots()); a boundary with none records no sample.
    const ErrorRate err = ScanContainment(sim_->all_cases(), t, executor,
                                          /*contained_only=*/true);
    if (err.total() > 0) {
      case_snapshots_.push_back(ErrorSnapshot{t, err.Percent()});
    }
  }
}

namespace {

/// Sample nearest to `at`; NaN when the series is empty. No samples means
/// "not measured", never "perfect": NaN keeps an empty run from
/// masquerading as a flawless one (benches print n/a).
double NearestSample(const std::vector<DistributedSystem::ErrorSnapshot>& xs,
                     Epoch at) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  const DistributedSystem::ErrorSnapshot* best = &xs.front();
  for (const DistributedSystem::ErrorSnapshot& s : xs) {
    if (std::abs(s.epoch - at) < std::abs(best->epoch - at)) best = &s;
  }
  return best->error_percent;
}

double MeanSince(const std::vector<DistributedSystem::ErrorSnapshot>& xs,
                 Epoch warmup) {
  OnlineStats stats;
  for (const DistributedSystem::ErrorSnapshot& s : xs) {
    if (s.epoch >= warmup) stats.Add(s.error_percent);
  }
  return stats.count() == 0 ? std::numeric_limits<double>::quiet_NaN()
                            : stats.Mean();
}

}  // namespace

double DistributedSystem::ContainmentErrorPercent(Epoch at) const {
  return NearestSample(snapshots_, at);
}

double DistributedSystem::AverageContainmentErrorPercent(Epoch warmup) const {
  return MeanSince(snapshots_, warmup);
}

double DistributedSystem::CaseContainmentErrorPercent(Epoch at) const {
  return NearestSample(case_snapshots_, at);
}

double DistributedSystem::AverageCaseContainmentErrorPercent(
    Epoch warmup) const {
  return MeanSince(case_snapshots_, warmup);
}

std::vector<ExposureAlert> DistributedSystem::AllAlerts(
    int query_index) const {
  std::vector<ExposureAlert> merged;
  for (const auto& site : sites_) {
    const ExposureQuery* q = site->query(query_index);
    if (q == nullptr) continue;
    merged.insert(merged.end(), q->alerts().begin(), q->alerts().end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const ExposureAlert& a, const ExposureAlert& b) {
                     if (a.last_time != b.last_time) {
                       return a.last_time < b.last_time;
                     }
                     return a.tag < b.tag;
                   });
  return merged;
}

double DistributedSystem::TotalInferenceSeconds() const {
  double total = 0.0;
  for (const auto& site : sites_) {
    total += site->streaming().total_inference_seconds();
  }
  return total;
}

}  // namespace rfid
