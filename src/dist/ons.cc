#include "dist/ons.h"

namespace rfid {

void Ons::Register(TagId tag, SiteId site) {
  directory_[tag] = site;
  ++updates_;
}

void Ons::Unregister(TagId tag) {
  if (directory_.erase(tag) > 0) ++unregisters_;
}

SiteId Ons::Lookup(TagId tag) const {
  ++lookups_;
  auto it = directory_.find(tag);
  return it == directory_.end() ? kNoSite : it->second;
}

}  // namespace rfid
