#include "dist/ons.h"

#include "common/serde.h"

namespace rfid {

namespace {

/// Wire form of a directory record: compact tag plus the site id biased by
/// one so kNoSite encodes as 0. The responses and requests below are what a
/// real ONS deployment would put on the wire, minus transport framing.
std::vector<uint8_t> EncodeDirectoryRecord(TagId tag, SiteId site) {
  BufferWriter w;
  w.PutCompactTag(tag);
  w.PutVarint(static_cast<uint64_t>(static_cast<int64_t>(site) + 1));
  return w.Release();
}

std::vector<uint8_t> EncodeDirectoryKey(TagId tag) {
  BufferWriter w;
  w.PutCompactTag(tag);
  return w.Release();
}

std::vector<uint8_t> EncodeDirectorySite(SiteId site) {
  BufferWriter w;
  w.PutVarint(static_cast<uint64_t>(static_cast<int64_t>(site) + 1));
  return w.Release();
}

}  // namespace

void Ons::AttachNetwork(Network* network, SiteId directory_site) {
  network_ = network;
  directory_site_ = directory_site;
}

void Ons::Register(TagId tag, SiteId site) {
  directory_[tag] = site;
  ++updates_;
  if (network_ != nullptr) {
    network_->Send(site, directory_site_, MessageKind::kDirectory,
                   EncodeDirectoryRecord(tag, site));
  }
}

void Ons::Unregister(TagId tag) {
  auto it = directory_.find(tag);
  if (it == directory_.end()) return;
  const SiteId owner = it->second;
  directory_.erase(it);
  ++unregisters_;
  if (network_ != nullptr) {
    network_->Send(owner, directory_site_, MessageKind::kDirectory,
                   EncodeDirectoryKey(tag));
  }
}

SiteId Ons::Resolve(TagId tag, SiteId requester) {
  ++lookups_;
  auto it = directory_.find(tag);
  const SiteId site = it == directory_.end() ? kNoSite : it->second;
  if (network_ != nullptr) {
    network_->Send(requester, directory_site_, MessageKind::kDirectory,
                   EncodeDirectoryKey(tag));
    network_->Send(directory_site_, requester, MessageKind::kDirectory,
                   EncodeDirectorySite(site));
  }
  return site;
}

SiteId Ons::Lookup(TagId tag) const {
  ++lookups_;
  auto it = directory_.find(tag);
  return it == directory_.end() ? kNoSite : it->second;
}

}  // namespace rfid
