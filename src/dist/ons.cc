#include "dist/ons.h"

#include "common/serde.h"

namespace rfid {

namespace {

/// Wire form of a directory record: compact tag plus the site id biased by
/// one so kNoSite encodes as 0. The responses and requests below are what a
/// real ONS deployment would put on the wire, minus transport framing.
std::vector<uint8_t> EncodeDirectoryRecord(TagId tag, SiteId site) {
  BufferWriter w;
  w.PutCompactTag(tag);
  w.PutVarint(static_cast<uint64_t>(static_cast<int64_t>(site) + 1));
  return w.Release();
}

std::vector<uint8_t> EncodeDirectoryKey(TagId tag) {
  BufferWriter w;
  w.PutCompactTag(tag);
  return w.Release();
}

std::vector<uint8_t> EncodeDirectorySite(SiteId site) {
  BufferWriter w;
  w.PutVarint(static_cast<uint64_t>(static_cast<int64_t>(site) + 1));
  return w.Release();
}

}  // namespace

void Ons::Configure(OnsOptions options) {
  if (options.num_shards < 1) options.num_shards = 1;
  if (options.num_sites < 0) options.num_sites = 0;
  options_ = options;
  directory_.clear();
  shards_.assign(static_cast<size_t>(options_.num_shards), OnsShardStats{});
  caches_.assign(
      options_.resolver_cache ? static_cast<size_t>(options_.num_sites) : 0,
      {});
  now_ = 0;
  diagnostic_lookups_ = 0;
}

int Ons::ShardOfTag(TagId tag, int num_shards) {
  if (num_shards <= 1) return 0;
  // splitmix64 finalizer (TagIdHash): sequential serials spread evenly.
  return static_cast<int>(TagIdHash{}(tag) %
                          static_cast<uint64_t>(num_shards));
}

SiteId Ons::ShardHost(int shard) const {
  if (options_.num_sites <= 0) return kDirectorySite;
  return static_cast<SiteId>(shard % options_.num_sites);
}

void Ons::Register(TagId tag, SiteId site) {
  const int shard = ShardOf(tag);
  OnsShardStats& st = shards_[static_cast<size_t>(shard)];
  auto it = directory_.find(tag);
  const bool changed = it == directory_.end() || it->second != site;
  if (it == directory_.end()) {
    directory_.emplace(tag, site);
  } else {
    it->second = site;
  }
  ++st.updates;
  // A first registration also invalidates: caches may hold a negative
  // (kNoSite) answer from a pre-registration Resolve.
  if (changed) InvalidateCaches(tag);
  if (network_ != nullptr) {
    st.bytes += static_cast<int64_t>(
        network_->Send(site, ShardHost(shard), MessageKind::kDirectory,
                       EncodeDirectoryRecord(tag, site)));
  }
}

void Ons::Unregister(TagId tag) {
  auto it = directory_.find(tag);
  if (it == directory_.end()) return;
  const SiteId owner = it->second;
  directory_.erase(it);
  const int shard = ShardOf(tag);
  OnsShardStats& st = shards_[static_cast<size_t>(shard)];
  ++st.unregisters;
  InvalidateCaches(tag);
  if (network_ != nullptr) {
    st.bytes += static_cast<int64_t>(
        network_->Send(owner, ShardHost(shard), MessageKind::kDirectory,
                       EncodeDirectoryKey(tag)));
  }
}

SiteId Ons::Resolve(TagId tag, SiteId requester) {
  const int shard = ShardOf(tag);
  OnsShardStats& st = shards_[static_cast<size_t>(shard)];
  if (CacheableRequester(requester)) {
    auto& cache = caches_[static_cast<size_t>(requester)];
    auto hit = cache.find(tag);
    if (hit != cache.end()) {
      // TTL mode serves whatever was cached -- stale or not -- until the
      // entry expires; exact mode (ttl == 0) never holds a stale entry.
      if (options_.cache_ttl <= 0 ||
          now_ - hit->second.cached_at < options_.cache_ttl) {
        ++st.cache_hits;
        return hit->second.site;
      }
      cache.erase(hit);  // expired: fall through to a charged re-fetch
    }
  }
  ++st.charged_lookups;
  auto it = directory_.find(tag);
  const SiteId site = it == directory_.end() ? kNoSite : it->second;
  if (network_ != nullptr) {
    const SiteId host = ShardHost(shard);
    st.bytes += static_cast<int64_t>(network_->Send(
        requester, host, MessageKind::kDirectory, EncodeDirectoryKey(tag)));
    st.bytes += static_cast<int64_t>(
        network_->Send(host, requester, MessageKind::kDirectory,
                       EncodeDirectorySite(site)));
  }
  if (CacheableRequester(requester)) {
    caches_[static_cast<size_t>(requester)][tag] = CacheEntry{site, now_};
  }
  return site;
}

SiteId Ons::Lookup(TagId tag) const {
  ++diagnostic_lookups_;
  auto it = directory_.find(tag);
  return it == directory_.end() ? kNoSite : it->second;
}

void Ons::InvalidateCaches(TagId tag) {
  // DNS fidelity: a TTL-governed cache is never proactively invalidated;
  // consumers tolerate staleness until the record expires.
  if (options_.cache_ttl > 0) return;
  // lint:allow(unordered-iter): iterates the outer per-site vector (in
  // site order); each step is a keyed erase on the inner map.
  for (auto& cache : caches_) cache.erase(tag);
}

int64_t Ons::charged_lookups() const {
  int64_t sum = 0;
  for (const OnsShardStats& st : shards_) sum += st.charged_lookups;
  return sum;
}

int64_t Ons::cache_hits() const {
  int64_t sum = 0;
  for (const OnsShardStats& st : shards_) sum += st.cache_hits;
  return sum;
}

int64_t Ons::updates() const {
  int64_t sum = 0;
  for (const OnsShardStats& st : shards_) sum += st.updates;
  return sum;
}

int64_t Ons::unregisters() const {
  int64_t sum = 0;
  for (const OnsShardStats& st : shards_) sum += st.unregisters;
  return sum;
}

void Ons::ResetCounters() {
  for (OnsShardStats& st : shards_) st = OnsShardStats{};
  diagnostic_lookups_ = 0;
}

}  // namespace rfid
