#include "dist/executor.h"

namespace rfid {

int SiteExecutor::ResolveThreads(int requested) {
  if (requested >= 0) return requested < 1 ? 1 : requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

SiteExecutor::SiteExecutor(int num_threads)
    : num_threads_(ResolveThreads(num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SiteExecutor::~SiteExecutor() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void SiteExecutor::Run(size_t n, const Task& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  mu_.Lock();
  task_ = &fn;
  next_ = 0;
  n_ = n;
  done_ = 0;
  ++generation_;
  work_cv_.NotifyAll();
  // The caller is one of the executors: claim under the lock, run outside.
  while (next_ < n_) {
    const size_t i = next_++;
    mu_.Unlock();
    fn(i);
    mu_.Lock();
    ++done_;
  }
  while (done_ != n_) done_cv_.Wait(&mu_);
  task_ = nullptr;
  mu_.Unlock();
}

void SiteExecutor::WorkerLoop() {
  mu_.Lock();
  uint64_t seen = 0;
  while (true) {
    while (!(stop_ ||
             (generation_ != seen && task_ != nullptr && next_ < n_))) {
      work_cv_.Wait(&mu_);
    }
    if (stop_) break;
    seen = generation_;
    while (task_ != nullptr && next_ < n_) {
      const size_t i = next_++;
      const Task* fn = task_;
      mu_.Unlock();
      (*fn)(i);
      mu_.Lock();
      ++done_;
      if (done_ == n_) done_cv_.NotifyAll();
    }
  }
  mu_.Unlock();
}

}  // namespace rfid
