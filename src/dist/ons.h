// Object Name Service (Section 5.2): the directory mapping each tracked
// tag to the site currently processing it, "similar to a DNS service"
// resolving an EPC to the authoritative site.
//
// The distributed driver registers objects on arrival, re-registers them as
// they move, and unregisters them when they leave the tracked supply chain;
// query routing and state-migration use Resolve to find the owning site.
// When a Network is attached, every directory operation is charged to it as
// MessageKind::kDirectory traffic (request -- and, for Resolve, response --
// bytes between the acting site and kDirectorySite), so the Table 5
// communication accounting includes directory load. Lookup stays uncharged
// for out-of-band diagnostics (tests, drivers inspecting final state).
#ifndef RFID_DIST_ONS_H_
#define RFID_DIST_ONS_H_

#include <cstdint>
#include <unordered_map>

#include "common/types.h"
#include "dist/network.h"

namespace rfid {

/// The object directory. Single-writer (the distributed driver): all
/// charged operations happen in the replay's serial boundary phases, never
/// concurrently with per-site parallel work.
class Ons {
 public:
  Ons() = default;

  /// Routes directory traffic accounting to `network` (must outlive the
  /// Ons); `directory_site` is the charged peer of every operation.
  void AttachNetwork(Network* network, SiteId directory_site = kDirectorySite);

  /// Points `tag` at `site`, replacing any existing registration. Charged
  /// as one kDirectory message from `site`.
  void Register(TagId tag, SiteId site);

  /// Removes `tag` from the directory (object left the tracked world).
  /// Charged from the site that owned the tag.
  void Unregister(TagId tag);

  /// Site currently owning `tag`; kNoSite when unregistered. Charged as a
  /// request from `requester` plus the directory's response.
  SiteId Resolve(TagId tag, SiteId requester);

  /// Uncharged lookup for diagnostics; kNoSite when unregistered.
  SiteId Lookup(TagId tag) const;

  /// Number of lookups served (charged and diagnostic, hits and misses).
  int64_t lookups() const { return lookups_; }
  /// Number of Register calls (initial registrations and moves).
  int64_t updates() const { return updates_; }
  /// Number of Unregister calls that removed an entry.
  int64_t unregisters() const { return unregisters_; }

  /// Live registrations.
  size_t size() const { return directory_.size(); }

  void ResetCounters() {
    lookups_ = 0;
    updates_ = 0;
    unregisters_ = 0;
  }

 private:
  std::unordered_map<TagId, SiteId> directory_;
  Network* network_ = nullptr;
  SiteId directory_site_ = kDirectorySite;
  mutable int64_t lookups_ = 0;
  int64_t updates_ = 0;
  int64_t unregisters_ = 0;
};

}  // namespace rfid

#endif  // RFID_DIST_ONS_H_
