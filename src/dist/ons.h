// Object Name Service (Section 5.2): the directory mapping each tracked
// tag to the site currently processing it, "similar to a DNS service"
// resolving an EPC to the authoritative site.
//
// The distributed driver registers objects on arrival, re-registers them as
// they move, and unregisters them when they leave the tracked supply chain;
// query routing and state-migration use Lookup to find the owning site.
// Lookup/update counters surface the directory load the paper discusses
// (ONS traffic is metadata, not payload, so it is counted here rather than
// charged to the byte-accounted Network).
#ifndef RFID_DIST_ONS_H_
#define RFID_DIST_ONS_H_

#include <cstdint>
#include <unordered_map>

#include "common/types.h"

namespace rfid {

/// The object directory. Single-writer (the distributed driver); Lookup is
/// const and merely counts.
class Ons {
 public:
  Ons() = default;

  /// Points `tag` at `site`, replacing any existing registration.
  void Register(TagId tag, SiteId site);

  /// Removes `tag` from the directory (object left the tracked world).
  void Unregister(TagId tag);

  /// Site currently owning `tag`; kNoSite when unregistered.
  SiteId Lookup(TagId tag) const;

  /// Number of Lookup calls served (hits and misses).
  int64_t lookups() const { return lookups_; }
  /// Number of Register calls (initial registrations and moves).
  int64_t updates() const { return updates_; }
  /// Number of Unregister calls that removed an entry.
  int64_t unregisters() const { return unregisters_; }

  /// Live registrations.
  size_t size() const { return directory_.size(); }

  void ResetCounters() {
    lookups_ = 0;
    updates_ = 0;
    unregisters_ = 0;
  }

 private:
  std::unordered_map<TagId, SiteId> directory_;
  mutable int64_t lookups_ = 0;
  int64_t updates_ = 0;
  int64_t unregisters_ = 0;
};

}  // namespace rfid

#endif  // RFID_DIST_ONS_H_
