// Object Name Service (Section 5.2): the directory mapping each tracked
// tag to the site currently processing it, "similar to a DNS service"
// resolving an EPC to the authoritative site.
//
// Like DNS, the directory is not one node: the tag->site map is hash
// partitioned across `num_shards` shards, each hosted by a real site
// (shard s lives at site s % num_sites), and every Register / Unregister /
// Resolve is routed to the owning shard. When a Network is attached each
// operation is charged to it as MessageKind::kDirectory traffic on the
// (acting site, shard host) link -- request plus, for Resolve, response
// bytes -- so the Table 5 communication accounting sees per-link directory
// load instead of a single synthetic hotspot. A per-site resolver cache
// (invalidated whenever a mapping changes) makes repeat resolutions of an
// unmoved object free of wire bytes, the way a DNS resolver caches records
// until they change; OnsOptions::cache_ttl instead ages entries out like
// real DNS TTLs (stale answers served until expiry, no invalidation).
//
// The distributed driver registers objects on arrival, re-registers them as
// they move, and unregisters them when they leave the tracked supply chain;
// query routing and state-migration use Resolve to find the owning site.
// Lookup stays uncharged for out-of-band diagnostics (tests, drivers
// inspecting final state) and is counted separately from charged Resolves.
#ifndef RFID_DIST_ONS_H_
#define RFID_DIST_ONS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "dist/network.h"

namespace rfid {

/// Directory deployment knobs.
struct OnsOptions {
  /// Shards the tag->site map is hash partitioned across (>= 1).
  int num_shards = 1;
  /// Sites hosting the shards (shard s is hosted at site s % num_sites).
  /// 0 means no hosting sites are known: every shard is charged against
  /// the synthetic kDirectorySite node and resolver caches are disabled
  /// (there is no site to cache at).
  int num_sites = 0;
  /// Per-site resolver caching: a Resolve whose requester already holds
  /// the current mapping costs zero wire bytes. Caches are invalidated
  /// exactly when a mapping changes, so results never go stale.
  bool resolver_cache = true;
  /// TTL-based cache expiry (DNS fidelity). 0 = exact invalidation as
  /// above. When > 0, cached answers live for `cache_ttl` epochs of the
  /// clock advanced via AdvanceClock and are NOT invalidated on moves --
  /// like a DNS record, a stale answer is served until it expires, then
  /// the next Resolve is charged and re-fetches the current mapping.
  Epoch cache_ttl = 0;
};

/// Load counters of one directory shard. `bytes` is the wire traffic
/// charged on this shard's links (zero when no Network is attached).
struct OnsShardStats {
  int64_t updates = 0;          ///< Register calls routed here.
  int64_t unregisters = 0;      ///< Unregister calls that removed an entry.
  int64_t charged_lookups = 0;  ///< Resolves that reached the shard.
  int64_t cache_hits = 0;       ///< Resolves served from a site-local cache.
  int64_t bytes = 0;            ///< Wire bytes charged on this shard's links.
};

/// The sharded object directory. Single-writer (the distributed driver):
/// all charged operations happen in the replay's serial boundary phases,
/// never concurrently with per-site parallel work, so shard state and the
/// per-site caches need no locks and stay bit-deterministic at any thread
/// count.
class Ons {
 public:
  /// Single shard, no hosting sites: behaves like the pre-sharding
  /// single-node directory (charged against kDirectorySite).
  Ons() { Configure(OnsOptions{}); }
  explicit Ons(OnsOptions options) { Configure(options); }

  /// (Re)configures the shard layout. Drops every registration, cache
  /// entry, and counter; keeps the attached Network.
  void Configure(OnsOptions options);

  /// Routes directory traffic accounting to `network` (must outlive the
  /// Ons).
  void AttachNetwork(Network* network) { network_ = network; }

  /// Advances the directory clock (drives TTL cache expiry; the replay
  /// calls this once per event epoch, in step with Network::AdvanceClock).
  void AdvanceClock(Epoch now) { now_ = now; }
  Epoch now() const { return now_; }

  /// Points `tag` at `site`, replacing any existing registration. Charged
  /// as one kDirectory message from `site` to the owning shard's host;
  /// invalidates cached resolutions of `tag` when the mapping changed.
  void Register(TagId tag, SiteId site);

  /// Removes `tag` from the directory (object left the tracked world).
  /// Charged from the site that owned the tag to the shard host.
  void Unregister(TagId tag);

  /// Site currently owning `tag`; kNoSite when unregistered. Served from
  /// `requester`'s resolver cache when possible (a cache hit, zero bytes);
  /// otherwise charged as a request from `requester` to the shard host
  /// plus the shard's response.
  SiteId Resolve(TagId tag, SiteId requester);

  /// Uncharged, uncounted-as-load lookup for diagnostics; kNoSite when
  /// unregistered.
  SiteId Lookup(TagId tag) const;

  /// Shard owning `tag` under a `num_shards`-way hash partition.
  static int ShardOfTag(TagId tag, int num_shards);
  int ShardOf(TagId tag) const { return ShardOfTag(tag, num_shards()); }
  /// Site hosting `shard` (kDirectorySite when num_sites == 0).
  SiteId ShardHost(int shard) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const OnsShardStats& shard_stats(int shard) const {
    return shards_[static_cast<size_t>(shard)];
  }

  /// Resolves that reached a shard (cache misses), summed over shards.
  int64_t charged_lookups() const;
  /// Resolves answered from a site-local cache, summed over shards.
  int64_t cache_hits() const;
  /// Uncharged Lookup calls (diagnostics only; not directory load).
  int64_t diagnostic_lookups() const { return diagnostic_lookups_; }
  /// Register calls (initial registrations and moves), summed over shards.
  int64_t updates() const;
  /// Unregister calls that removed an entry, summed over shards.
  int64_t unregisters() const;

  /// Live registrations across all shards.
  size_t size() const { return directory_.size(); }

  /// Zeroes every per-shard and diagnostic counter; registrations and
  /// caches are kept.
  void ResetCounters();

 private:
  /// One cached resolver answer: the resolved owner (possibly a negative
  /// kNoSite answer) and the clock epoch it was fetched at (TTL mode).
  struct CacheEntry {
    SiteId site = kNoSite;
    Epoch cached_at = 0;
  };

  /// Drops cached resolutions of `tag` at every site (mapping changed).
  /// No-op in TTL mode: stale answers live until they expire.
  void InvalidateCaches(TagId tag);
  bool CacheableRequester(SiteId requester) const {
    return options_.resolver_cache && requester >= 0 &&
           requester < static_cast<SiteId>(caches_.size());
  }

  OnsOptions options_;
  std::unordered_map<TagId, SiteId> directory_;
  std::vector<OnsShardStats> shards_;
  /// caches_[site]: that site's resolver cache (tag -> last resolved
  /// owner, including negative kNoSite answers).
  std::vector<std::unordered_map<TagId, CacheEntry>> caches_;
  Network* network_ = nullptr;
  Epoch now_ = 0;
  mutable int64_t diagnostic_lookups_ = 0;
};

}  // namespace rfid

#endif  // RFID_DIST_ONS_H_
