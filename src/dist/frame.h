// Framed wire protocol for inter-site messages (Section 5.2's real
// message-passing deployment): every payload the sites or the ONS exchange
// travels inside one self-describing frame, whether the transport is the
// in-process fabric or a real socket.
//
// Frame layout (little-endian, fixed-width header so the wire size of a
// message depends only on its payload length -- the property that makes
// byte accounting backend-invariant):
//
//   offset  size  field
//   0       4     magic      0x44494652 ("RFID")
//   4       1     version    kFrameVersion
//   5       1     kind       MessageKind
//   6       4     from       SiteId (int32)
//   10      4     to         SiteId (int32)
//   14      8     send_epoch Epoch (int64) -- when the frame was put on
//                            the wire; arrival = send + link latency
//   22      8     seq        global send sequence; total order across
//                            senders, so queued delivery is deterministic
//   30      8     link_seq   per-(from,to)-link sequence, 1-based, assigned
//                            by the reliability layer; 0 = unreliable send
//                            (no ack/retransmit tracking)
//   38      4     payload_len (uint32)
//   42      N     payload
//   42+N    4     crc32      zlib CRC-32 over bytes [0, 42+N)
//
// Table 5's communication-cost accounting charges these framed bytes
// (header + payload + checksum), i.e. real wire overhead, not bare
// payloads.
#ifndef RFID_DIST_FRAME_H_
#define RFID_DIST_FRAME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace rfid {

/// Message classes the distributed experiments account separately: raw
/// readings (the centralized baseline), collapsed/full inference state
/// (Section 4.1), per-object query state (Section 4.2), ONS directory
/// traffic (registrations, moves, and lookups -- the "similar to a DNS
/// service" load of Section 5.2, charged per (site, shard host) link since
/// the directory is sharded across sites; see dist/ons.h), cumulative
/// per-link acknowledgements (the reliability tax), and crash-recovery
/// state re-requests. kCheckpoint never crosses the network: it is the
/// on-disk record kind of a durable site checkpoint (dist/durability.h),
/// which reuses the v2 frame encoder as its CRC-framed storage envelope.
enum class MessageKind : uint8_t {
  kRawReadings = 0,
  kInferenceState = 1,
  kQueryState = 2,
  kDirectory = 3,
  kAck = 4,
  kRecoveryRequest = 5,
  kCheckpoint = 6,
};

inline constexpr int kNumMessageKinds = 7;

std::string ToString(MessageKind kind);

inline constexpr uint32_t kFrameMagic = 0x44494652;  // "RFID" little-endian
inline constexpr uint8_t kFrameVersion = 2;
inline constexpr size_t kFrameHeaderBytes = 42;
inline constexpr size_t kFrameTrailerBytes = 4;  // crc32
inline constexpr size_t kFrameOverheadBytes =
    kFrameHeaderBytes + kFrameTrailerBytes;
/// Sanity cap on payload_len while decoding: a corrupt length field must
/// not make a reader allocate gigabytes.
inline constexpr uint32_t kMaxFramePayloadBytes = 1u << 30;

/// One wire message. `seq` is assigned by the sending Network in global
/// send order; receivers deliver queued frames in (arrival epoch, seq)
/// order so every backend processes messages identically. `link_seq` is
/// the per-link contiguous sequence the reliability layer acks/dedups by
/// (0 when the send is untracked).
struct Frame {
  SiteId from = kNoSite;
  SiteId to = kNoSite;
  MessageKind kind = MessageKind::kRawReadings;
  Epoch send_epoch = 0;
  uint64_t seq = 0;
  uint64_t link_seq = 0;
  std::vector<uint8_t> payload;

  bool operator==(const Frame&) const = default;
};

/// Bytes `frame` occupies on the wire: header + payload + checksum.
inline constexpr size_t FrameWireSize(size_t payload_size) {
  return kFrameOverheadBytes + payload_size;
}

/// Appends the framed encoding of `frame` to `*out`. Always writes exactly
/// FrameWireSize(frame.payload.size()) bytes.
void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out);

/// Convenience: the framed encoding alone.
std::vector<uint8_t> EncodeFrameToBytes(const Frame& frame);

/// Non-owning decode result: header fields plus a span over the payload
/// bytes *inside the caller's buffer*. Valid only while that buffer is
/// alive and unmodified -- transports decode a view per frame, then
/// materialize (ToFrame) only the frames they must queue, skipping the
/// payload copy into an intermediate decode buffer. The CRC has already
/// been verified over the viewed bytes.
struct FrameView {
  SiteId from = kNoSite;
  SiteId to = kNoSite;
  MessageKind kind = MessageKind::kRawReadings;
  Epoch send_epoch = 0;
  uint64_t seq = 0;
  uint64_t link_seq = 0;
  const uint8_t* payload = nullptr;
  uint32_t payload_len = 0;

  /// Materializes an owning Frame (copies the payload once).
  Frame ToFrame() const {
    Frame f;
    f.from = from;
    f.to = to;
    f.kind = kind;
    f.send_epoch = send_epoch;
    f.seq = seq;
    f.link_seq = link_seq;
    f.payload.assign(payload, payload + payload_len);
    return f;
  }
};

/// Decodes one frame from the front of [data, data+size).
///
/// Returns OK with `*consumed` = the frame's wire size when a complete,
/// checksum-valid frame was decoded; ResourceExhausted (and *consumed = 0)
/// when the buffer holds only a prefix of a frame (read more bytes and
/// retry -- the streaming-socket case); Corruption otherwise. Two
/// Corruption classes differ by `*consumed`:
///   - *consumed = 0: the header itself is untrustworthy (bad magic,
///     unsupported version, implausible payload length) -- the stream has
///     lost framing and cannot be resynchronized.
///   - *consumed = wire size: the header parsed but the CRC-32 failed (or
///     the checksummed kind byte is unknown) -- in-frame corruption; the
///     caller may skip `*consumed` bytes, count the drop, and continue
///     decoding at the next frame boundary.
Status DecodeFrame(const uint8_t* data, size_t size, Frame* out,
                   size_t* consumed);

/// Zero-copy variant of DecodeFrame: identical validation, status, and
/// `*consumed` semantics, but `out->payload` points into [data, data+size)
/// instead of copying. DecodeFrame is implemented on top of this.
Status DecodeFrameView(const uint8_t* data, size_t size, FrameView* out,
                       size_t* consumed);

/// True when `status` is DecodeFrame's "need more bytes" condition rather
/// than a real error.
inline bool FrameIncomplete(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted;
}

}  // namespace rfid

#endif  // RFID_DIST_FRAME_H_
