// One site of the distributed deployment (Figure 3): a warehouse-local
// processor that runs streaming inference over the site's own RFID stream,
// optionally evaluates the Q1/Q2 continuous queries against it, and
// exchanges state with peer sites over the byte-accounted Network when
// objects cross site boundaries.
//
// Migration implements Section 4's three techniques:
//   kNone         -- no state transfer; the receiving site starts cold;
//   kCollapsed    -- ship one number per (container, object) pair (the
//                    collapsed co-location weights), plus the critical
//                    region, change barrier, and current belief;
//   kFullReadings -- additionally ship the raw readings of the object and
//                    its candidate containers inside the critical region
//                    and recent history ("simply shipping the inference
//                    state").
// Inference payloads travel as delta-varint batches (common/serde,
// inference/state) deflated with common/compress; query state migrates per
// object, optionally compressed with the centroid-based sharing of
// Section 4.2 (query/state_sharing).
//
// With SiteOptions::hierarchical set, the site additionally runs the
// Appendix A.4 second containment level: a dedicated StreamingInference
// whose universe is (pallet containers, case objects), fed the non-item
// slice of the same stream. A departing transfer then ships case→pallet
// state (collapsed weights, contexts, and -- under kFullReadings -- the
// case/candidate-pallet readings) alongside the item→case states in the
// same kInferenceState envelope, and containment answers resolve an item's
// pallet transitively (BelievedPallet).
#ifndef RFID_DIST_SITE_H_
#define RFID_DIST_SITE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "common/types.h"
#include "dist/durability.h"
#include "dist/network.h"
#include "inference/state.h"
#include "inference/streaming.h"
#include "query/queries.h"
#include "sim/supply_chain.h"
#include "trace/product_catalog.h"
#include "trace/reading.h"

namespace rfid {

/// How inference state follows an object to its next site (Section 4.1).
enum class MigrationMode : uint8_t {
  kNone = 0,
  kCollapsed = 1,
  kFullReadings = 2,
};

std::string ToString(MigrationMode mode);

/// Per-site processing knobs.
struct SiteOptions {
  MigrationMode migration = MigrationMode::kCollapsed;
  StreamingOptions streaming;
  /// Compress migrated query state with centroid-based sharing
  /// (Section 4.2) instead of shipping each object's state raw.
  bool share_query_state = false;
  /// zlib level for migration payload compression (Table 5's "simple gzip
  /// compression").
  int compress_level = 6;
  /// Run the second containment level (cases within pallets, Appendix
  /// A.4): a per-site pallet-level engine whose state also migrates on
  /// transfers and whose answers back BelievedPallet.
  bool hierarchical = false;
  /// Keep a copy of every exported envelope so a crashed-and-rebuilt peer
  /// can re-request the state it lost (MessageKind::kRecoveryRequest).
  /// Enabled by DistributedSystem when a crash schedule is configured
  /// *without* durability; a durable site recovers from its own disk and
  /// never asks peers to re-send.
  bool retain_exports = false;
  /// Cut a durable checkpoint every this many inference boundaries when
  /// durability is attached (dist/durability.h); 0 = WAL-only recovery
  /// (replay the full frame WAL and site trace from scratch).
  int checkpoint_every = 1;
};

/// A decoded inbound state transfer waiting for its arrival epoch. `states`
/// carries the item→case level; `case_states` the case→pallet level (empty
/// unless the sender ran hierarchical inference).
struct PendingArrival {
  Epoch arrive = 0;
  SiteId from = kNoSite;
  std::vector<ObjectMigrationState> states;
  std::vector<ObjectMigrationState> case_states;
};

/// Pending inbound query state for one object: (query index, state bytes).
struct PendingQueryState {
  Epoch arrive = 0;
  std::vector<std::pair<TagId, std::vector<uint8_t>>> q1_states;
  std::vector<std::pair<TagId, std::vector<uint8_t>>> q2_states;
};

/// One site's processor. Owned and driven by DistributedSystem in epoch
/// order. The site itself is unsynchronized: under the bulk-synchronous
/// executor, Observe/ObserveBatch/AdvanceTo/DeliverArrivals run inside
/// parallel windows (at most one thread per site at a time), while every
/// method that crosses sites -- ExportTransfer, Retire, and HandleMessage
/// (invoked by Network::DeliverDue when a queued frame's arrival epoch
/// passes) -- only runs from the serial phases between windows.
class Site {
 public:
  /// `model`, `schedule`, and `network` must outlive the site. The model
  /// and schedule are the *global* ones: locations are globally numbered,
  /// so a site simply never sees readings outside its own range, and
  /// full-readings imports from other sites stay interpretable.
  Site(SiteId id, const ReadRateModel* model,
       const InterrogationSchedule* schedule, Network* network,
       SiteOptions options);
  ~Site();

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  /// Instantiates Q1/Q2 against `catalog` (must outlive the site).
  void AttachQueries(const ProductCatalog* catalog,
                     const ExposureQueryConfig& q1,
                     const ExposureQueryConfig& q2);

  /// Appends one site-local sensor sample; must arrive time-ordered.
  void AddSensor(const SensorReading& reading);

  /// Buffers one raw reading into the streaming engine.
  void Observe(const RawReading& reading);

  /// Buffers a whole window of raw readings in one call -- the hot path of
  /// the event-driven replay, which batches every reading between two
  /// scheduling events instead of delivering one reading per epoch.
  void ObserveBatch(const RawReading* readings, size_t n);

  /// Struct-of-arrays form of ObserveBatch (same contract and results).
  void ObserveBatch(const ReadingColumnsView& view);

  /// Advances local time, running inference at period boundaries and
  /// feeding any attached queries with the newly inferred events (sensor
  /// samples interleaved in time order). Returns inference runs performed.
  int AdvanceTo(Epoch now);

  /// Installs every inbound transfer whose arrival epoch has been reached.
  void DeliverArrivals(Epoch now);

  /// True when an inbound transfer is waiting with arrival epoch <= now --
  /// the scheduler's cheap test for whether the site needs a delivery pass.
  bool HasArrivalsDue(Epoch now) const;

  /// Attaches the run's telemetry (migration encode spans; obs/telemetry.h).
  /// Null detaches. Observation only -- results are identical either way.
  void SetTelemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }

  /// Serializes and transmits the state of a departing transfer group to
  /// `tr.to` (inference state per the migration mode; query state when
  /// queries are attached). No-op for inference when mode is kNone.
  void ExportTransfer(const ObjectTransfer& tr);

  /// Drops local query state of objects leaving the tracked supply chain.
  void Retire(const ObjectTransfer& tr);

  /// Replays ExportTransfer's *local* side effects without sending
  /// anything: retires exits and consumes (TakeState) the query state of
  /// departing items. Used when rebuilding a crashed site from the raw
  /// trace -- the live sends already happened before the crash, but the
  /// fresh engine must not keep state the live one gave away.
  void DropTransferState(const ObjectTransfer& tr);

  /// Inbound message entry point (registered with the Network).
  void HandleMessage(SiteId from, MessageKind kind,
                     const std::vector<uint8_t>& payload);

  // ---- Durability (dist/durability.h) ----

  /// Attaches the site's durable storage (driver-owned, outlives the
  /// site across crash rebuilds; null detaches). With storage attached,
  /// HandleMessage WAL-logs every state-bearing inbound frame before
  /// applying it, and fired alerts / outbound transfers append to the
  /// tamper-evident audit log.
  void AttachDurability(SiteDurability* durability) {
    durability_ = durability;
  }
  SiteDurability* durability() const { return durability_; }

  /// Serializes the complete site state as of the boundary cut `epoch`:
  /// both inference levels' snapshots, the pending arrival queues, query
  /// pattern states and fired alerts, the sensor cursor, and the event
  /// watermark. Same envelope discipline as the migration codecs; the
  /// caller wraps the bytes in a kCheckpoint frame for storage.
  std::vector<uint8_t> EncodeCheckpoint(Epoch epoch);

  /// Restores EncodeCheckpoint bytes into this freshly built site. The
  /// site must be constructed with the same options, have its queries
  /// attached, and have its sensor stream re-added (AddSensor) first --
  /// restore re-feeds the consumed sensor prefix into the query joins.
  /// `epoch` must equal the encoding cut.
  Status RestoreCheckpoint(Epoch epoch, const std::vector<uint8_t>& bytes);

  /// The site's current belief about an object's container (local
  /// inference, change overrides, or imported belief). Items answer from
  /// the item→case engine; cases answer from the pallet-level engine when
  /// the hierarchy is enabled (kNoTag otherwise -- the flat engine never
  /// assigns a case).
  TagId BelievedContainer(TagId object) const {
    if (object.is_case() && pallet_streaming_ != nullptr) {
      return pallet_streaming_->ContainerOf(object);
    }
    return streaming_.ContainerOf(object);
  }

  /// Two-level containment answer (Appendix A.4): a case's believed pallet
  /// directly, an item's pallet transitively through its believed case.
  /// kNoTag when the hierarchy is disabled or either hop is unresolved.
  /// Resolution is *site-local*: both hops answer from this site's
  /// engines, which is the right view for a processor answering queries
  /// over its own population. Mid-handoff an item and its case can be
  /// owned by different processors; DistributedSystem::BelievedPallet is
  /// the deployment-wide answer that routes each hop to its owner.
  TagId BelievedPallet(TagId tag) const;

  SiteId id() const { return id_; }
  const StreamingInference& streaming() const { return streaming_; }
  StreamingInference& streaming() { return streaming_; }
  /// The case→pallet engine; nullptr unless SiteOptions::hierarchical.
  const StreamingInference* pallet_streaming() const {
    return pallet_streaming_.get();
  }
  bool queries_attached() const { return q1_ != nullptr; }
  /// Query 0 (Q1) / 1 (Q2); nullptr when queries are not attached.
  const ExposureQuery* query(int index) const {
    return index == 0 ? q1_.get() : q2_.get();
  }

 private:
  /// One envelope this site sent, kept (under SiteOptions::retain_exports)
  /// so a recovering peer can ask for it again.
  struct RetainedSend {
    SiteId to = kNoSite;
    MessageKind kind = MessageKind::kInferenceState;
    Epoch sent_at = 0;
    std::vector<uint8_t> payload;
  };

  void FeedQueries(const std::vector<ObjectEvent>& events);
  void InstallInference(const PendingArrival& arrival);
  void InstallQueryState(const PendingQueryState& pending);
  size_t SendRetained(SiteId to, MessageKind kind,
                      std::vector<uint8_t> payload);

  SiteId id_;
  Network* network_;
  obs::Telemetry* telemetry_ = nullptr;
  SiteDurability* durability_ = nullptr;
  SiteOptions options_;
  /// Scratch for the per-batch non-item split feeding the pallet level;
  /// rewound at the end of every ObserveBatch, so steady-state batches
  /// allocate nothing.
  Arena split_arena_;
  StreamingInference streaming_;
  /// Second inference level (pallet containers, case objects); null unless
  /// options_.hierarchical.
  std::unique_ptr<StreamingInference> pallet_streaming_;

  const ProductCatalog* catalog_ = nullptr;
  std::unique_ptr<ExposureQuery> q1_;
  std::unique_ptr<ExposureQuery> q2_;
  std::vector<SensorReading> sensors_;
  size_t sensor_cursor_ = 0;
  /// Newest event epoch already fed to the queries (run windows overlap).
  Epoch event_watermark_ = -1;

  std::vector<PendingArrival> pending_inference_;
  std::vector<PendingQueryState> pending_query_;
  std::vector<RetainedSend> retained_;
};

// ---- Wire codecs shared by sites and the centralized driver ----

/// Inference-state envelope: varint arrival epoch, then one deflated block
/// of two length-prefixed EncodeMigrationStates batches -- the item→case
/// states and the case→pallet states (the latter empty unless the sender
/// runs hierarchical inference).
std::vector<uint8_t> EncodeInferenceEnvelope(
    Epoch arrive, const std::vector<ObjectMigrationState>& states,
    const std::vector<ObjectMigrationState>& case_states, int compress_level);
Result<PendingArrival> DecodeInferenceEnvelope(
    const std::vector<uint8_t>& payload);

/// Query-state envelope: varint arrival epoch, shared flag, then one block
/// per query -- raw per-object states, or (when shared) one centroid bundle
/// per same-container group (Section 4.2's "20-50 objects per case"), built
/// from `believed_container` (object -> container at the exit point).
std::vector<uint8_t> EncodeQueryEnvelope(
    Epoch arrive,
    const std::vector<std::pair<TagId, std::vector<uint8_t>>>& q1_states,
    const std::vector<std::pair<TagId, std::vector<uint8_t>>>& q2_states,
    bool share,
    const std::unordered_map<TagId, TagId>& believed_container = {});
Result<PendingQueryState> DecodeQueryEnvelope(
    const std::vector<uint8_t>& payload);

/// Raw-readings batch for the centralized baseline: the trace_io
/// delta-varint encoding "with simple gzip compression" (Table 5). The
/// span form encodes straight out of a larger buffer (e.g. a site trace
/// slice) without an intermediate copy.
std::vector<uint8_t> EncodeReadingBatch(const std::vector<RawReading>& batch,
                                        int compress_level);
std::vector<uint8_t> EncodeReadingBatch(const RawReading* batch, size_t n,
                                        int compress_level);
Result<std::vector<RawReading>> DecodeReadingBatch(
    const std::vector<uint8_t>& payload);

}  // namespace rfid

#endif  // RFID_DIST_SITE_H_
