#include "baseline/smurf_star.h"

#include <algorithm>

namespace rfid {

namespace {

/// Top-k keys of a count map, ordered by decreasing count (ties by tag id
/// for determinism).
std::vector<TagId> TopK(const std::unordered_map<TagId, double>& counts,
                        int k) {
  std::vector<std::pair<TagId, double>> pairs(counts.begin(), counts.end());
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<TagId> out;
  for (int i = 0; i < k && i < static_cast<int>(pairs.size()); ++i) {
    out.push_back(pairs[static_cast<size_t>(i)].first);
  }
  return out;
}

bool Disjoint(const std::vector<TagId>& a, const std::vector<TagId>& b) {
  for (TagId x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) return false;
  }
  return true;
}

}  // namespace

SmurfStar::SmurfStar(const InterrogationSchedule* schedule,
                     SmurfStarOptions options)
    : schedule_(schedule), options_(options) {}

Status SmurfStar::Run(const Trace& trace, Epoch begin, Epoch end) {
  if (!trace.sealed()) {
    return Status::InvalidArgument("trace must be sealed");
  }
  if (end < begin) {
    return Status::InvalidArgument("empty window");
  }
  tracks_.clear();
  containers_.clear();
  changes_.clear();

  std::vector<TagId> items, cases;
  for (TagId tag : trace.Tags()) {
    if (tag.is_item()) items.push_back(tag);
    if (tag.is_case()) cases.push_back(tag);
    tracks_.emplace(tag, SmurfSmooth(trace.HistoryOf(tag), *schedule_, begin,
                                     end, options_.smurf));
  }

  // Invert case tracks into per-epoch location buckets so each item only
  // meets the cases at its own location.
  const size_t span = static_cast<size_t>(end - begin + 1);
  std::vector<std::unordered_map<LocationId, std::vector<TagId>>> cases_at(
      span);
  for (TagId c : cases) {
    const SmoothedTrack& track = tracks_.at(c);
    for (size_t k = 0; k < span; ++k) {
      const LocationId where = track.locs[k];
      if (where != kNoLocation) cases_at[k][where].push_back(c);
    }
  }

  for (TagId item : items) {
    const SmoothedTrack& it = tracks_.at(item);
    // Co-location counts per case, cumulative over time, sampled so prefix
    // counts at candidate change epochs are available.
    std::unordered_map<TagId, double> total;
    std::unordered_map<TagId, std::vector<double>> prefix;
    std::vector<Epoch> checkpoints;
    for (Epoch t = begin; t <= end; t += options_.change_check_stride) {
      checkpoints.push_back(t);
    }
    size_t next_cp = 0;
    for (size_t k = 0; k < span; ++k) {
      const Epoch t = begin + static_cast<Epoch>(k);
      const LocationId where = it.locs[k];
      if (where != kNoLocation) {
        auto bucket = cases_at[k].find(where);
        if (bucket != cases_at[k].end()) {
          // Crowding-corrected count (1/k per k co-located cases), so that
          // exclusive co-location (belt) is not drowned out by shelf
          // epochs where several cases tie. Without this the "most
          // frequently co-located case" degenerates to a 1-in-k guess
          // among shelf mates.
          const double w =
              1.0 / static_cast<double>(bucket->second.size());
          for (TagId c : bucket->second) total[c] += w;
        }
      }
      while (next_cp < checkpoints.size() && checkpoints[next_cp] == t) {
        for (const auto& [c, count] : total) {
          auto& vec = prefix[c];
          vec.resize(checkpoints.size(), 0);
          vec[next_cp] = count;
        }
        ++next_cp;
      }
    }
    if (total.empty()) {
      containers_[item] = kNoTag;
      continue;
    }

    // Change check at every checkpoint: top-k before vs after t.
    Epoch change_at = -1;
    for (size_t cp = 1; cp + 1 < checkpoints.size(); ++cp) {
      std::unordered_map<TagId, double> before, after;
      for (const auto& [c, count] : total) {
        auto pit = prefix.find(c);
        double upto = 0;
        if (pit != prefix.end() && cp < pit->second.size()) {
          upto = pit->second[cp];
          // A checkpoint before any co-location leaves zeros; prefix is
          // cumulative so missing means 0.
        }
        if (upto > 0) before[c] = upto;
        if (count - upto > 0) after[c] = count - upto;
      }
      if (before.empty() || after.empty()) continue;
      TagId best_before = TopK(before, 1)[0];
      TagId best_after = TopK(after, 1)[0];
      if (best_before == best_after) continue;
      if (Disjoint(TopK(before, options_.top_k),
                   TopK(after, options_.top_k))) {
        change_at = checkpoints[cp];
        break;
      }
    }

    if (change_at >= 0) {
      // Most co-located case from the change to the present.
      size_t cp = 0;
      while (cp < checkpoints.size() && checkpoints[cp] < change_at) ++cp;
      std::unordered_map<TagId, double> after;
      for (const auto& [c, count] : total) {
        auto pit = prefix.find(c);
        double upto = (pit != prefix.end() && cp < pit->second.size())
                          ? pit->second[cp]
                          : 0;
        if (count - upto > 0) after[c] = count - upto;
      }
      TagId chosen = after.empty() ? TopK(total, 1)[0] : TopK(after, 1)[0];
      containers_[item] = chosen;
      changes_.push_back(SmurfStarChange{item, change_at, chosen});
    } else {
      containers_[item] = TopK(total, 1)[0];
    }
  }
  return Status::OK();
}

TagId SmurfStar::ContainerOf(TagId item) const {
  auto it = containers_.find(item);
  return it == containers_.end() ? kNoTag : it->second;
}

LocationId SmurfStar::LocationOf(TagId tag, Epoch t) const {
  auto it = tracks_.find(tag);
  if (it == tracks_.end()) return kNoLocation;
  const SmoothedTrack& track = it->second;
  // Carry forward the latest non-absent estimate at or before t.
  const int64_t max_idx =
      std::min<int64_t>(t - track.begin,
                        static_cast<int64_t>(track.locs.size()) - 1);
  for (int64_t k = max_idx; k >= 0; --k) {
    if (track.locs[static_cast<size_t>(k)] != kNoLocation) {
      return track.locs[static_cast<size_t>(k)];
    }
  }
  return kNoLocation;
}

}  // namespace rfid
