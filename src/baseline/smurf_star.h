// SMURF*: the comparison baseline of Appendix C.3.
//
// "This method first uses SMURF to smooth raw readings of objects to
// estimate their locations individually. The adaptive window used in SMURF
// is further stored for containment inference and change detection: Within
// the adaptive window for each item, at a particular time t, if the most
// frequently co-located case before time t is the same as that after time
// t, then there is no containment change, and the most frequently co-located
// case is chosen to be the true container. Otherwise, we further check if
// none of the top-k co-located cases before time t is in the set of top-k
// co-located cases after t. If so, we report a containment change for this
// item at time t, and pick the case that is most co-located with the item in
// the period from t to the present."
//
// Co-location here is between *smoothed* per-epoch locations: an item and a
// case are co-located at t when both are estimated present at the same
// location.
#ifndef RFID_BASELINE_SMURF_STAR_H_
#define RFID_BASELINE_SMURF_STAR_H_

#include <unordered_map>
#include <vector>

#include "baseline/smurf.h"
#include "common/status.h"
#include "common/types.h"
#include "model/schedule.h"
#include "trace/trace.h"

namespace rfid {

struct SmurfStarOptions {
  SmurfOptions smurf;
  /// Top-k set size for the containment-change check.
  int top_k = 3;
  /// Epoch stride at which candidate change times t are evaluated.
  Epoch change_check_stride = 10;
};

/// A containment change reported by SMURF*.
struct SmurfStarChange {
  TagId item;
  Epoch time = 0;
  TagId new_container;
};

/// Runs SMURF smoothing on every tag and heuristic containment inference on
/// top (case-kind tags are containers, item-kind tags objects).
class SmurfStar {
 public:
  SmurfStar(const InterrogationSchedule* schedule,
            SmurfStarOptions options = {});

  /// Processes readings with epochs in [begin, end]. Trace must be sealed.
  Status Run(const Trace& trace, Epoch begin, Epoch end);

  /// Inferred container of an item (kNoTag when never co-located).
  TagId ContainerOf(TagId item) const;

  /// Smoothed location of any tag at epoch t (carry-forward: latest
  /// non-absent estimate at or before t).
  LocationId LocationOf(TagId tag, Epoch t) const;

  const std::vector<SmurfStarChange>& changes() const { return changes_; }

 private:
  const InterrogationSchedule* schedule_;
  SmurfStarOptions options_;
  std::unordered_map<TagId, SmoothedTrack> tracks_;
  std::unordered_map<TagId, TagId> containers_;
  std::vector<SmurfStarChange> changes_;
};

}  // namespace rfid

#endif  // RFID_BASELINE_SMURF_STAR_H_
