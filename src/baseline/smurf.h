// SMURF: per-tag adaptive-window smoothing of RFID streams (Jeffery et al.,
// "An adaptive RFID middleware for supporting metaphysical data
// independence", VLDB Journal 2007 -- reference [11] of the paper).
//
// SMURF views each tag's readings as a random sample of its true presence:
// with per-epoch read probability p, a window of w interrogation cycles
// misses a present tag with probability (1-p)^w. It sizes the window just
// large enough for completeness, w* = ln(1/delta)/p, and shrinks it when a
// binomial test on the window's two halves signals that the tag has
// transitioned (left the reader's range), trading completeness against
// responsiveness.
//
// This is the temporal-smoothing comparator the paper contrasts with
// RFINFER's smoothing over containment relations.
#ifndef RFID_BASELINE_SMURF_H_
#define RFID_BASELINE_SMURF_H_

#include <vector>

#include "common/types.h"
#include "model/schedule.h"
#include "trace/trace.h"

namespace rfid {

struct SmurfOptions {
  /// Acceptable probability of a false "absent" within a full window.
  double delta = 0.05;
  Epoch min_window = 2;
  Epoch max_window = 150;
};

/// Smoothed per-epoch location track of one tag.
struct SmoothedTrack {
  Epoch begin = 0;
  /// locs[t - begin]: estimated location at epoch t, kNoLocation when the
  /// tag is deemed absent everywhere.
  std::vector<LocationId> locs;
  /// Adaptive window size used at each epoch (for SMURF* change checks).
  std::vector<Epoch> windows;

  LocationId At(Epoch t) const {
    const int64_t idx = t - begin;
    if (idx < 0 || idx >= static_cast<int64_t>(locs.size())) {
      return kNoLocation;
    }
    return locs[static_cast<size_t>(idx)];
  }
};

/// Smooths one tag's read history over [begin, end].
///
/// Per epoch, the estimate is the plurality reader among the readings inside
/// the current adaptive window (ties to the more recent reader); the tag is
/// absent when the window holds no readings. The window grows toward the
/// completeness size derived from the observed read rate and shrinks on a
/// detected transition.
SmoothedTrack SmurfSmooth(TagReadSpan history,
                          const InterrogationSchedule& schedule, Epoch begin,
                          Epoch end, const SmurfOptions& options = {});

}  // namespace rfid

#endif  // RFID_BASELINE_SMURF_H_
