#include "baseline/smurf.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace rfid {

namespace {

/// Interrogation cycles any reader performed in (from, to]; SMURF sizes its
/// window in cycles, not wall-clock epochs.
int64_t CyclesIn(const InterrogationSchedule& schedule, Epoch from, Epoch to) {
  // All deployments in this codebase have at least the non-shelf readers
  // scanning every epoch, so epochs are a faithful cycle count.
  (void)schedule;
  return std::max<int64_t>(0, to - from);
}

}  // namespace

SmoothedTrack SmurfSmooth(TagReadSpan history,
                          const InterrogationSchedule& schedule, Epoch begin,
                          Epoch end, const SmurfOptions& options) {
  SmoothedTrack track;
  track.begin = begin;
  if (end < begin) return track;
  track.locs.assign(static_cast<size_t>(end - begin + 1), kNoLocation);
  track.windows.assign(static_cast<size_t>(end - begin + 1),
                       options.min_window);

  Epoch window = options.min_window;
  size_t lo = 0;  // first read inside the window
  size_t hi = 0;  // first read after the current epoch
  for (Epoch t = begin; t <= end; ++t) {
    while (hi < history.size() && history[hi].time <= t) ++hi;
    const Epoch w_begin = t - window + 1;
    while (lo < hi && history[lo].time < w_begin) ++lo;
    const int64_t reads_in_window = static_cast<int64_t>(hi - lo);

    // Estimate the per-cycle read rate within the window.
    const int64_t cycles = std::max<int64_t>(
        1, CyclesIn(schedule, w_begin - 1, t));
    const double p_avg =
        std::min(0.95, static_cast<double>(reads_in_window) /
                           static_cast<double>(cycles));

    if (reads_in_window > 0) {
      // Completeness-driven window size: (1-p)^w* <= delta.
      const double target =
          p_avg > 1e-6 ? std::log(1.0 / options.delta) /
                             -std::log1p(-std::min(p_avg, 0.95))
                       : static_cast<double>(options.max_window);
      Epoch w_star = static_cast<Epoch>(std::ceil(target));
      w_star = std::clamp(w_star, options.min_window, options.max_window);

      // Transition detection: compare the second half of the window to the
      // binomial expectation; a significant deficit means the tag left.
      const Epoch half = window / 2;
      if (half >= 1) {
        int64_t recent = 0;
        for (size_t i = lo; i < hi; ++i) {
          if (history[i].time > t - half) ++recent;
        }
        const double expected = p_avg * static_cast<double>(half);
        const double stddev = std::sqrt(
            std::max(1e-9, static_cast<double>(half) * p_avg * (1 - p_avg)));
        if (static_cast<double>(recent) < expected - 2.0 * stddev) {
          window = std::max(options.min_window, window / 2);
        } else if (window < w_star) {
          window = std::min(options.max_window, window + 1);
        } else {
          window = w_star;
        }
      } else {
        window = w_star;
      }

      // Location estimate: plurality reader inside the window, ties to the
      // most recently seen reader.
      std::unordered_map<LocationId, int> votes;
      for (size_t i = lo; i < hi; ++i) ++votes[history[i].reader];
      LocationId best = kNoLocation;
      int best_votes = 0;
      for (size_t i = lo; i < hi; ++i) {
        const int v = votes[history[i].reader];
        if (v >= best_votes) {
          best_votes = v;
          best = history[i].reader;
        }
      }
      track.locs[static_cast<size_t>(t - begin)] = best;
    }
    track.windows[static_cast<size_t>(t - begin)] = window;
  }
  return track;
}

}  // namespace rfid
