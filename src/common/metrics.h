// Evaluation metrics used throughout Section 5 / Appendix C.1 of the paper:
// error rate (vs. ground truth), and precision/recall/F-measure for
// change-point detection.
#ifndef RFID_COMMON_METRICS_H_
#define RFID_COMMON_METRICS_H_

#include <cstdint>

namespace rfid {

/// Accumulates right/wrong decisions and reports the error rate in percent,
/// as plotted on the paper's y-axes.
class ErrorRate {
 public:
  void Add(bool correct) {
    ++total_;
    if (!correct) ++errors_;
  }
  void AddCounts(int64_t errors, int64_t total) {
    errors_ += errors;
    total_ += total;
  }

  int64_t errors() const { return errors_; }
  int64_t total() const { return total_; }

  /// Error rate in percent; 0 when empty.
  double Percent() const {
    return total_ == 0 ? 0.0 : 100.0 * static_cast<double>(errors_) /
                                   static_cast<double>(total_);
  }

 private:
  int64_t errors_ = 0;
  int64_t total_ = 0;
};

/// Precision / recall / F-measure accumulator. The paper combines them as
/// F = 2*P*R/(P+R) (Appendix C.1).
class FMeasure {
 public:
  void AddTruePositive(int64_t n = 1) { tp_ += n; }
  void AddFalsePositive(int64_t n = 1) { fp_ += n; }
  void AddFalseNegative(int64_t n = 1) { fn_ += n; }

  int64_t tp() const { return tp_; }
  int64_t fp() const { return fp_; }
  int64_t fn() const { return fn_; }

  double Precision() const {
    return (tp_ + fp_) == 0 ? 0.0
                            : static_cast<double>(tp_) /
                                  static_cast<double>(tp_ + fp_);
  }
  double Recall() const {
    return (tp_ + fn_) == 0 ? 0.0
                            : static_cast<double>(tp_) /
                                  static_cast<double>(tp_ + fn_);
  }
  /// F-measure in percent (paper reports percentages).
  double Percent() const {
    double p = Precision();
    double r = Recall();
    return (p + r) == 0.0 ? 0.0 : 100.0 * 2.0 * p * r / (p + r);
  }

 private:
  int64_t tp_ = 0;
  int64_t fp_ = 0;
  int64_t fn_ = 0;
};

/// Welford online mean/variance, for timing summaries in benches.
class OnlineStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }
  int64_t count() const { return n_; }
  double Mean() const { return mean_; }
  double Variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace rfid

#endif  // RFID_COMMON_METRICS_H_
