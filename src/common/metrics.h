// Evaluation metrics used throughout Section 5 / Appendix C.1 of the paper:
// error rate (vs. ground truth), and precision/recall/F-measure for
// change-point detection.
//
// Empty accumulators answer NaN, never 0: "no decisions scored" must not
// print as a perfect score (the repo-wide NaN-when-unmeasured convention --
// TablePrinter renders non-finite as "n/a", the JSON emitter as null).
#ifndef RFID_COMMON_METRICS_H_
#define RFID_COMMON_METRICS_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace rfid {

/// Accumulates right/wrong decisions and reports the error rate in percent,
/// as plotted on the paper's y-axes.
class ErrorRate {
 public:
  void Add(bool correct) {
    ++total_;
    if (!correct) ++errors_;
  }
  void AddCounts(int64_t errors, int64_t total) {
    errors_ += errors;
    total_ += total;
  }

  int64_t errors() const { return errors_; }
  int64_t total() const { return total_; }

  /// Error rate in percent; NaN when nothing has been scored.
  double Percent() const {
    return total_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                       : 100.0 * static_cast<double>(errors_) /
                             static_cast<double>(total_);
  }

 private:
  int64_t errors_ = 0;
  int64_t total_ = 0;
};

/// Precision / recall / F-measure accumulator. The paper combines them as
/// F = 2*P*R/(P+R) (Appendix C.1).
class FMeasure {
 public:
  void AddTruePositive(int64_t n = 1) { tp_ += n; }
  void AddFalsePositive(int64_t n = 1) { fp_ += n; }
  void AddFalseNegative(int64_t n = 1) { fn_ += n; }

  int64_t tp() const { return tp_; }
  int64_t fp() const { return fp_; }
  int64_t fn() const { return fn_; }

  /// NaN when no positive was ever predicted (unmeasured, not perfect).
  double Precision() const {
    return (tp_ + fp_) == 0 ? std::numeric_limits<double>::quiet_NaN()
                            : static_cast<double>(tp_) /
                                  static_cast<double>(tp_ + fp_);
  }
  /// NaN when no positive ever existed to recall.
  double Recall() const {
    return (tp_ + fn_) == 0 ? std::numeric_limits<double>::quiet_NaN()
                            : static_cast<double>(tp_) /
                                  static_cast<double>(tp_ + fn_);
  }
  /// F-measure in percent (paper reports percentages). NaN only when no
  /// count was ever recorded; measured-but-zero (tp == 0 with fp or fn
  /// present) is a real 0, so it is computed from the counts directly
  /// rather than letting a NaN precision or recall leak through.
  double Percent() const {
    if (tp_ + fp_ + fn_ == 0) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    // F = 2*P*R/(P+R) rewritten on raw counts: 2tp / (2tp + fp + fn).
    const double denom = static_cast<double>(2 * tp_ + fp_ + fn_);
    return denom == 0.0 ? 0.0
                        : 100.0 * 2.0 * static_cast<double>(tp_) / denom;
  }

 private:
  int64_t tp_ = 0;
  int64_t fp_ = 0;
  int64_t fn_ = 0;
};

/// Welford online mean/variance (plus range), for timing summaries in
/// benches and the telemetry layer's report prose.
class OnlineStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  int64_t count() const { return n_; }
  double Mean() const { return mean_; }
  double Variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double Stddev() const { return std::sqrt(Variance()); }
  /// Smallest / largest sample; NaN when empty.
  double Min() const {
    return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  double Max() const {
    return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }

  /// One-line digest for logs: "n=5 mean=1.200 min=1.000 max=1.500".
  std::string Summary() const;

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace rfid

#endif  // RFID_COMMON_METRICS_H_
