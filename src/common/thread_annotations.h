#ifndef RFID_COMMON_THREAD_ANNOTATIONS_H_
#define RFID_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis annotations plus the annotated
// synchronization primitives the repo uses instead of raw std::mutex.
//
// The macros expand to Clang `thread_safety` attributes when compiling
// with Clang and to nothing otherwise, so GCC builds see plain code.
// Under Clang the build enables `-Wthread-safety -Werror=thread-safety`
// (see CMakeLists.txt), which statically proves that every access to a
// GUARDED_BY member happens with its mutex held.
//
// Conventions (see docs/ARCHITECTURE.md, "Static analysis"):
//  * Mutex-guarded state uses rfid::Mutex + GUARDED_BY. std::mutex and
//    std::lock_guard carry no annotations in libstdc++, so the wrappers
//    here are required for the analysis to see lock scopes.
//  * Serial-by-contract state (Network, Site, DistributedSystem's
//    boundary-phase bookkeeping) uses rfid::SerialPhase + GUARDED_BY.
//    SerialPhase is a zero-cost capability: no lock exists at runtime;
//    the BSP driver asserts the capability at serial-phase entry and
//    worker read paths assert shared access. Debug builds additionally
//    bind the capability to the first asserting thread and abort on a
//    cross-thread exclusive assert.
//  * Per-index partitioned state (e.g. DistributedSystem::cursors_,
//    written element-wise by workers with disjoint indices) cannot be
//    expressed by GUARDED_BY; such members carry a
//    "partitioned by site index" comment instead of an annotation.

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#if defined(__clang__)
#define RFID_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RFID_THREAD_ANNOTATION(x)
#endif

#define CAPABILITY(x) RFID_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY RFID_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) RFID_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) RFID_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) \
  RFID_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  RFID_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) RFID_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  RFID_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) RFID_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  RFID_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  RFID_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) RFID_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) RFID_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  RFID_THREAD_ANNOTATION(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) RFID_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  RFID_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace rfid {

// Annotated wrapper over std::mutex. Lock/Unlock for annotated code;
// lowercase lock/unlock keep the BasicLockable interface so the mutex
// still composes with std::condition_variable_any (see CondVar).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable; intentionally unannotated so CondVar::Wait can
  // release/reacquire inside a REQUIRES(mu) scope.
  void lock() NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
  void unlock() NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII lock with a scoped capability, replacing std::lock_guard /
// std::unique_lock over annotated mutexes.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Condition variable usable with rfid::Mutex. Wait requires the mutex
// capability: the analysis treats the wait as happening with the lock
// held, matching the std::condition_variable_any contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) { cv_.wait(*mu); }

  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) REQUIRES(mu) {
    cv_.wait(*mu, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

// Zero-cost capability for serial-by-contract state in the BSP replay.
//
// The replay alternates serial boundary phases (one thread mutates
// Network/Site/DistributedSystem state) with parallel window phases
// (workers only read a vetted subset: Network::IsSiteDown, the
// ownership/belief maps behind BelievedContainer). No lock exists;
// instead mutating entry points call AssertHeld() and worker read
// paths call AssertShared(), which (a) inform the static analysis and
// (b) in debug builds bind the exclusive capability to one thread and
// abort if another thread ever asserts it.
class CAPABILITY("serial_phase") SerialPhase {
 public:
  SerialPhase() = default;
  SerialPhase(const SerialPhase&) = delete;
  SerialPhase& operator=(const SerialPhase&) = delete;

  // Asserts exclusive access: caller is the single serial-phase thread.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
#if !defined(NDEBUG)
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id bound = owner_.load(std::memory_order_acquire);
    if (bound == std::thread::id()) {
      // Bind on first use. If we lose the race, fall through to check.
      if (owner_.compare_exchange_strong(bound, self,
                                         std::memory_order_acq_rel)) {
        return;
      }
    }
    if (bound != self) std::abort();
#endif
  }

  // Asserts shared (read-only) access from a worker during a parallel
  // phase. Any thread may read; no dynamic check is possible without
  // a phase registry, so this only informs the static analysis.
  void AssertShared() const ASSERT_SHARED_CAPABILITY(this) {}

  // The executor reuses the driving thread across runs, but tests may
  // drive one system from several threads sequentially; they can
  // rebind explicitly between runs.
  void ResetOwnerForTesting() {
#if !defined(NDEBUG)
    owner_.store(std::thread::id(), std::memory_order_release);
#endif
  }

 private:
#if !defined(NDEBUG)
  mutable std::atomic<std::thread::id> owner_{};
#endif
};

}  // namespace rfid

#endif  // RFID_COMMON_THREAD_ANNOTATIONS_H_
