#include "common/arena.h"

#include <algorithm>

namespace rfid {

Arena::Arena(size_t min_block_bytes)
    : min_block_bytes_(std::max<size_t>(min_block_bytes, 64)) {}

void* Arena::AllocateSlow(size_t bytes, size_t align) {
  // A request that cannot fit even in a fresh block of the next geometric
  // size gets its own dedicated block, released at the next Reset so one
  // huge window cannot pin memory forever.
  const size_t next_size =
      blocks_.empty() ? min_block_bytes_
                      : std::max(min_block_bytes_, blocks_.back().size * 2);
  if (bytes + align > next_size) {
    Block b{std::make_unique<uint8_t[]>(bytes + align), bytes + align};
    const uintptr_t base = reinterpret_cast<uintptr_t>(b.data.get());
    const uintptr_t aligned = (base + (align - 1)) & ~uintptr_t{align - 1};
    large_.push_back(std::move(b));
    bytes_allocated_ += bytes;
    return reinterpret_cast<void*>(aligned);
  }
  // Advance through retained blocks before growing. Blocks are tried in
  // order; a block too small for this request is skipped (its remainder is
  // wasted, bounded by geometric growth).
  while (current_ + 1 < blocks_.size()) {
    ++current_;
    head_ = blocks_[current_].data.get();
    end_ = head_ + blocks_[current_].size;
    const uintptr_t head = reinterpret_cast<uintptr_t>(head_);
    const uintptr_t aligned = (head + (align - 1)) & ~uintptr_t{align - 1};
    if (aligned + bytes <= reinterpret_cast<uintptr_t>(end_)) {
      head_ = reinterpret_cast<uint8_t*>(aligned + bytes);
      bytes_allocated_ += bytes;
      return reinterpret_cast<void*>(aligned);
    }
  }
  blocks_.push_back(Block{std::make_unique<uint8_t[]>(next_size), next_size});
  current_ = blocks_.size() - 1;
  head_ = blocks_[current_].data.get();
  end_ = head_ + blocks_[current_].size;
  const uintptr_t head = reinterpret_cast<uintptr_t>(head_);
  const uintptr_t aligned = (head + (align - 1)) & ~uintptr_t{align - 1};
  head_ = reinterpret_cast<uint8_t*>(aligned + bytes);
  bytes_allocated_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

void Arena::Reset() {
  large_.clear();
  current_ = 0;
  if (blocks_.empty()) {
    head_ = end_ = nullptr;
  } else {
    head_ = blocks_[0].data.get();
    end_ = head_ + blocks_[0].size;
  }
  bytes_allocated_ = 0;
}

size_t Arena::bytes_reserved() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  for (const Block& b : large_) total += b.size;
  return total;
}

}  // namespace rfid
