// zlib compression wrapper.
//
// Table 5 of the paper compares distributed state migration against a
// centralized baseline that ships all raw readings "with simple gzip
// compression of data"; this wrapper provides that baseline's compressor.
#ifndef RFID_COMMON_COMPRESS_H_
#define RFID_COMMON_COMPRESS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace rfid {

/// Deflates `input` at the given zlib level (1..9). Output replaces `*out`.
Status Compress(const std::vector<uint8_t>& input, std::vector<uint8_t>* out,
                int level = 6);

/// Inflates `input` produced by Compress. Output replaces `*out`.
Status Decompress(const std::vector<uint8_t>& input,
                  std::vector<uint8_t>* out);

/// Span form: inflates `size` bytes at `data` without requiring the caller
/// to copy a payload tail into its own vector first.
Status Decompress(const uint8_t* data, size_t size, std::vector<uint8_t>* out);

}  // namespace rfid

#endif  // RFID_COMMON_COMPRESS_H_
