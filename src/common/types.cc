#include "common/types.h"

namespace rfid {

std::string ToString(TagKind kind) {
  switch (kind) {
    case TagKind::kItem:
      return "item";
    case TagKind::kCase:
      return "case";
    case TagKind::kPallet:
      return "pallet";
  }
  return "unknown";
}

std::string TagId::ToString() const {
  if (!valid()) return "invalid";
  return rfid::ToString(kind()) + ":" + std::to_string(serial());
}

}  // namespace rfid
