// A self-contained SHA-256 + HMAC-SHA256 implementation (FIPS 180-4 /
// RFC 2104) for the tamper-evident site audit log (dist/durability.h).
//
// The repo links no crypto library and CI forbids adding one, so the
// digest is implemented here. It is used for integrity chaining and
// keyed authentication of locally written log records -- a few dozen
// records per run -- so the scalar implementation is plenty; nothing on
// the replay hot path hashes.
#ifndef RFID_COMMON_SHA256_H_
#define RFID_COMMON_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rfid {

/// A 256-bit digest. Comparable byte-wise; hex-printable for diagnostics.
using Sha256Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256: Update in any chunking, Finish once.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const uint8_t* data, size_t len);
  void Update(const std::vector<uint8_t>& data) {
    Update(data.data(), data.size());
  }
  /// Finalizes and returns the digest; the hasher must be Reset before
  /// further use.
  Sha256Digest Finish();

  /// One-shot convenience.
  static Sha256Digest Of(const uint8_t* data, size_t len);
  static Sha256Digest Of(const std::vector<uint8_t>& data) {
    return Of(data.data(), data.size());
  }

 private:
  void Compress(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t length_ = 0;  ///< total message bytes absorbed
  uint8_t buffer_[64];
  size_t buffered_ = 0;
};

/// HMAC-SHA256 over `data` with `key` (RFC 2104).
Sha256Digest HmacSha256(const std::vector<uint8_t>& key, const uint8_t* data,
                        size_t len);
inline Sha256Digest HmacSha256(const std::vector<uint8_t>& key,
                               const std::vector<uint8_t>& data) {
  return HmacSha256(key, data.data(), data.size());
}

/// Lowercase hex of a digest, for messages and the log_verify CLI.
std::string ToHex(const Sha256Digest& digest);

}  // namespace rfid

#endif  // RFID_COMMON_SHA256_H_
