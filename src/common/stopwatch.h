// Wall-clock stopwatch for "running cost" measurements (Appendix C.1).
#ifndef RFID_COMMON_STOPWATCH_H_
#define RFID_COMMON_STOPWATCH_H_

#include <chrono>

namespace rfid {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rfid

#endif  // RFID_COMMON_STOPWATCH_H_
