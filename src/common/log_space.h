// Log-space probability helpers.
//
// All likelihood and evidence computation in the inference engine (Eqs. 3-7
// of the paper) is carried out in natural-log space to avoid underflow over
// long traces. Zero probabilities are floored at kLogFloor, matching the
// implicit smoothing any real deployment needs: a reader has a tiny but
// nonzero chance of reading a tag that is "out of range", so one stray read
// must not veto a location outright.
#ifndef RFID_COMMON_LOG_SPACE_H_
#define RFID_COMMON_LOG_SPACE_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

namespace rfid {

/// Floor for log-probabilities; exp(kLogFloor) ~ 1e-8.
inline constexpr double kLogFloor = -18.420680743952367;  // log(1e-8)

/// Probability floor corresponding to kLogFloor.
inline constexpr double kProbFloor = 1e-8;

/// log(p) with flooring so that SafeLog(0) == kLogFloor.
inline double SafeLog(double p) {
  return std::log(std::max(p, kProbFloor));
}

/// log(1-p) with the same floor.
inline double SafeLog1m(double p) {
  return std::log(std::max(1.0 - p, kProbFloor));
}

/// Numerically stable log(sum_i exp(xs[i])). Returns -inf for empty input.
inline double LogSumExp(std::span<const double> xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  double mx = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(mx)) return mx;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - mx);
  return mx + std::log(sum);
}

/// Normalizes log-weights in place into a probability distribution.
/// Returns the normalizing constant log Z. Inputs of -inf get probability 0.
inline double NormalizeLogWeights(std::span<double> log_w) {
  double lz = LogSumExp(log_w);
  for (double& w : log_w) {
    w = std::isfinite(lz) ? std::exp(w - lz) : 0.0;
  }
  return lz;
}

}  // namespace rfid

#endif  // RFID_COMMON_LOG_SPACE_H_
