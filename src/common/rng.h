// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (simulator, reader noise,
// threshold calibration sampling) takes an explicit seed so experiments are
// reproducible bit-for-bit. No global RNG state exists anywhere.
#ifndef RFID_COMMON_RNG_H_
#define RFID_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rfid {

/// splitmix64: used to expand a single 64-bit seed into generator state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator. Small, fast, and high quality; deterministic
/// across platforms (unlike std::mt19937 distributions, whose outputs are
/// implementation-defined for e.g. std::uniform_int_distribution).
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce the
  /// same sequence on every platform.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  /// Next raw 64-bit output.
  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless method.
    __uint128_t m = static_cast<__uint128_t>(NextU64()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (-bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(NextU64()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Exponential inter-arrival draw with the given mean (mean > 0).
  double NextExponential(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each simulated
  /// component (reader, warehouse) its own stream.
  Rng Fork() { return Rng(NextU64() ^ 0x6a09e667f3bcc909ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace rfid

#endif  // RFID_COMMON_RNG_H_
