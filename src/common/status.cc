#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace rfid {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kInternal:
      return "Internal error";
  }
  return "Unknown code";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

namespace internal {
void FatalStatus(const char* file, int line, const Status& st) {
  std::fprintf(stderr, "[%s:%d] fatal status: %s\n", file, line,
               st.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace rfid
