// Result<T>: value-or-Status, the return type for fallible constructors and
// parsers (Arrow's arrow::Result idiom).
#ifndef RFID_COMMON_RESULT_H_
#define RFID_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/status.h"

namespace rfid {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// could not be produced.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : status_;
  }

  /// Precondition: ok().
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Moves the value out, or returns `fallback` when holding an error.
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Unwraps a Result into `lhs`, propagating errors.
#define RFID_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto RFID_CONCAT_(_res_, __LINE__) = (rexpr);    \
  if (!RFID_CONCAT_(_res_, __LINE__).ok())         \
    return RFID_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(RFID_CONCAT_(_res_, __LINE__)).value()

#define RFID_CONCAT_(a, b) RFID_CONCAT_IMPL_(a, b)
#define RFID_CONCAT_IMPL_(a, b) a##b

}  // namespace rfid

#endif  // RFID_COMMON_RESULT_H_
