// Bump (arena) allocator for per-window scratch data on the replay hot
// path: trace index arrays, observe-batch splits, decoded-frame staging.
// Allocation is a pointer bump; Reset() rewinds the whole arena in O(large
// blocks), so steady-state windows perform zero general-heap traffic.
#ifndef RFID_COMMON_ARENA_H_
#define RFID_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace rfid {

/// A growable bump allocator. Normal requests are carved out of
/// geometrically-growing blocks that are retained across Reset() (so a
/// steady-state window cycle stops touching the heap after warmup);
/// oversize requests get dedicated blocks that are released on Reset().
///
/// Lifetime rules: every pointer returned by Allocate/AllocateArray is
/// valid until the next Reset() (or destruction). The arena never runs
/// constructors or destructors -- only trivially-destructible element
/// types may live in it. Not thread-safe.
class Arena {
 public:
  static constexpr size_t kDefaultMinBlockBytes = size_t{64} << 10;

  explicit Arena(size_t min_block_bytes = kDefaultMinBlockBytes);
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized storage aligned to `align` (a power
  /// of two). Never returns nullptr; zero-byte requests yield a valid,
  /// aligned pointer.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    const uintptr_t head = reinterpret_cast<uintptr_t>(head_);
    const uintptr_t aligned = (head + (align - 1)) & ~uintptr_t{align - 1};
    if (head_ != nullptr && aligned >= head &&
        aligned + bytes <= reinterpret_cast<uintptr_t>(end_)) {
      head_ = reinterpret_cast<uint8_t*>(aligned + bytes);
      bytes_allocated_ += bytes;
      return reinterpret_cast<void*>(aligned);
    }
    return AllocateSlow(bytes, align);
  }

  /// Uninitialized storage for `n` elements of trivial type T.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewinds all bump pointers and releases dedicated oversize blocks.
  /// Invalidates every pointer previously returned; retains (and reuses)
  /// all normal blocks.
  void Reset();

  /// Bytes handed out since the last Reset (excludes alignment padding).
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total block capacity currently held, retained and oversize.
  size_t bytes_reserved() const;
  size_t block_count() const { return blocks_.size() + large_.size(); }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  void* AllocateSlow(size_t bytes, size_t align);

  size_t min_block_bytes_;
  std::vector<Block> blocks_;  ///< retained across Reset, geometric sizes
  std::vector<Block> large_;   ///< one-request blocks, freed by Reset
  size_t current_ = 0;         ///< active index into blocks_
  uint8_t* head_ = nullptr;
  uint8_t* end_ = nullptr;
  size_t bytes_allocated_ = 0;
};

}  // namespace rfid

#endif  // RFID_COMMON_ARENA_H_
