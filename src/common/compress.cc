#include "common/compress.h"

#include <zlib.h>

#include <limits>

namespace rfid {

Status Compress(const std::vector<uint8_t>& input, std::vector<uint8_t>* out,
                int level) {
  if (level < 1 || level > 9) {
    return Status::InvalidArgument("zlib level must be in [1,9]");
  }
  uLong bound = compressBound(static_cast<uLong>(input.size()));
  out->resize(bound);
  uLongf dest_len = bound;
  int rc = compress2(out->data(), &dest_len,
                     input.empty() ? reinterpret_cast<const Bytef*>("")
                                   : input.data(),
                     static_cast<uLong>(input.size()), level);
  if (rc != Z_OK) {
    return Status::Internal("zlib compress2 failed with code " +
                            std::to_string(rc));
  }
  out->resize(dest_len);
  return Status::OK();
}

Status Decompress(const std::vector<uint8_t>& input,
                  std::vector<uint8_t>* out) {
  return Decompress(input.data(), input.size(), out);
}

Status Decompress(const uint8_t* data, size_t size,
                  std::vector<uint8_t>* out) {
  // Grow the output buffer geometrically until inflate succeeds.
  uLongf dest_len = static_cast<uLongf>(std::max<size_t>(size * 4, 64));
  for (int attempt = 0; attempt < 16; ++attempt) {
    out->resize(dest_len);
    uLongf actual = dest_len;
    int rc = uncompress(out->data(), &actual, data,
                        static_cast<uLong>(size));
    if (rc == Z_OK) {
      out->resize(actual);
      return Status::OK();
    }
    if (rc == Z_BUF_ERROR) {
      if (dest_len > std::numeric_limits<uLongf>::max() / 2) break;
      dest_len *= 2;
      continue;
    }
    return Status::Corruption("zlib uncompress failed with code " +
                              std::to_string(rc));
  }
  return Status::ResourceExhausted("decompressed output too large");
}

}  // namespace rfid
