#include "common/table_printer.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace rfid {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  // NaN/inf mean "not measured" (e.g. an accuracy accessor with no
  // samples); print n/a rather than a number that looks like data.
  if (!std::isfinite(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace rfid
