// Console table formatting for bench binaries, so each bench prints the same
// rows/series the paper's tables and figures report.
#ifndef RFID_COMMON_TABLE_PRINTER_H_
#define RFID_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace rfid {

/// Collects rows of string cells and prints them column-aligned.
///
/// Usage:
///   TablePrinter t({"RR", "Containment(%)", "Location(%)"});
///   t.AddRow({"0.6", "6.8", "0.4"});
///   t.Print();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Formats a double with the given precision.
  static std::string Fmt(double v, int precision = 2);

  /// Writes the table to stdout with a separator line under the header.
  void Print() const;

  /// Renders the table to a string (used by tests).
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rfid

#endif  // RFID_COMMON_TABLE_PRINTER_H_
