// Status and error-code plumbing, modeled on the RocksDB / Arrow convention:
// library code on hot paths reports failure through Status/Result rather than
// exceptions, and callers propagate with RFID_RETURN_NOT_OK.
#ifndef RFID_COMMON_STATUS_H_
#define RFID_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace rfid {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kIOError = 4,
  kCorruption = 5,
  kNotSupported = 6,
  kAlreadyExists = 7,
  kResourceExhausted = 8,
  kInternal = 9,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. Use the static constructors (`Status::InvalidArgument(...)`) to
/// build errors and `ok()` to test for success.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Propagates a non-OK Status from the enclosing function.
#define RFID_RETURN_NOT_OK(expr)        \
  do {                                  \
    ::rfid::Status _st = (expr);        \
    if (!_st.ok()) return _st;          \
  } while (0)

/// Aborts the process if `expr` is not OK. Reserved for unrecoverable
/// initialization failures in tools, benches, and examples.
#define RFID_CHECK_OK(expr)                                           \
  do {                                                                \
    ::rfid::Status _st = (expr);                                      \
    if (!_st.ok()) {                                                  \
      ::rfid::internal::FatalStatus(__FILE__, __LINE__, _st);         \
    }                                                                 \
  } while (0)

namespace internal {
[[noreturn]] void FatalStatus(const char* file, int line, const Status& st);
}  // namespace internal

}  // namespace rfid

#endif  // RFID_COMMON_STATUS_H_
