#include "common/sha256.h"

#include <cstring>

namespace rfid {

namespace {

// FIPS 180-4 section 4.2.2: the first 32 bits of the fractional parts of
// the cube roots of the first 64 primes.
constexpr uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t RotR(uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

void Sha256::Reset() {
  // Square-root constants, FIPS 180-4 section 5.3.3.
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  length_ = 0;
  buffered_ = 0;
}

void Sha256::Compress(const uint8_t block[64]) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const uint32_t s0 =
        RotR(w[i - 15], 7) ^ RotR(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const uint32_t s1 =
        RotR(w[i - 2], 17) ^ RotR(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    const uint32_t s1 = RotR(e, 6) ^ RotR(e, 11) ^ RotR(e, 25);
    const uint32_t ch = (e & f) ^ (~e & g);
    const uint32_t t1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const uint32_t s0 = RotR(a, 2) ^ RotR(a, 13) ^ RotR(a, 22);
    const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(const uint8_t* data, size_t len) {
  length_ += len;
  if (buffered_ > 0) {
    const size_t take = std::min(len, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, data, take);
    buffered_ += take;
    data += take;
    len -= take;
    if (buffered_ == sizeof(buffer_)) {
      Compress(buffer_);
      buffered_ = 0;
    }
  }
  while (len >= 64) {
    Compress(data);
    data += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, data, len);
    buffered_ = len;
  }
}

Sha256Digest Sha256::Finish() {
  // Pad: 0x80, zeros, then the 64-bit big-endian bit length.
  const uint64_t bit_length = length_ * 8;
  uint8_t pad[72];
  size_t pad_len = 0;
  pad[pad_len++] = 0x80;
  while ((buffered_ + pad_len) % 64 != 56) pad[pad_len++] = 0;
  for (int i = 7; i >= 0; --i) {
    pad[pad_len++] = static_cast<uint8_t>(bit_length >> (8 * i));
  }
  Update(pad, pad_len);
  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

Sha256Digest Sha256::Of(const uint8_t* data, size_t len) {
  Sha256 h;
  h.Update(data, len);
  return h.Finish();
}

Sha256Digest HmacSha256(const std::vector<uint8_t>& key, const uint8_t* data,
                        size_t len) {
  uint8_t block[64] = {};
  if (key.size() > sizeof(block)) {
    const Sha256Digest hashed = Sha256::Of(key);
    std::memcpy(block, hashed.data(), hashed.size());
  } else {
    std::memcpy(block, key.data(), key.size());
  }

  uint8_t ipad[64];
  uint8_t opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad, sizeof(ipad));
  inner.Update(data, len);
  const Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad, sizeof(opad));
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

std::string ToHex(const Sha256Digest& digest) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(digest.size() * 2);
  for (uint8_t b : digest) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

}  // namespace rfid
