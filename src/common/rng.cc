#include "common/rng.h"

#include <cmath>

namespace rfid {

double Rng::NextExponential(double mean) {
  // Inverse CDF on (0,1]; 1 - NextDouble() avoids log(0).
  return -mean * std::log(1.0 - NextDouble());
}

}  // namespace rfid
