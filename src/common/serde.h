// Byte-level serialization used for inference-state and query-state
// migration between sites (Section 4 of the paper).
//
// The distributed experiments account communication cost in bytes of
// *actually serialized* payloads, so the wire format matters: fixed-width
// little-endian primitives plus LEB128 varints for counts and deltas.
#ifndef RFID_COMMON_SERDE_H_
#define RFID_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace rfid {

/// Append-only binary encoder.
class BufferWriter {
 public:
  BufferWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI32(int32_t v) { PutFixed(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }

  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed(bits);
  }

  /// Single-precision float; used where 4 bytes of resolution suffice
  /// (e.g. migrated co-location weights).
  void PutFloat(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed(bits);
  }

  /// LEB128 unsigned varint (1 byte for values < 128).
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  /// Zigzag-encoded signed varint.
  void PutSignedVarint(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }

  void PutTagId(TagId id) { PutU64(id.raw()); }

  /// Varint tag encoding: (serial << 2) | kind, with 3 in the low bits
  /// reserved for the invalid tag. 1-3 bytes for ordinary serials.
  void PutCompactTag(TagId id) {
    if (!id.valid()) {
      PutVarint(3);
    } else {
      PutVarint((id.serial() << 2) | static_cast<uint64_t>(id.kind()));
    }
  }

  /// Length-prefixed string.
  void PutString(std::string_view s) {
    PutVarint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Raw bytes, no length prefix.
  void PutBytes(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }

 private:
  template <typename T>
  void PutFixed(T v) {
    // Little-endian, byte by byte, portable regardless of host endianness.
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
};

/// Sequential binary decoder over a borrowed byte span. All getters report
/// truncation/corruption through Status rather than UB.
class BufferReader {
 public:
  BufferReader(const uint8_t* data, size_t size)
      : data_(data), size_(size) {}
  explicit BufferReader(const std::vector<uint8_t>& buf)
      : BufferReader(buf.data(), buf.size()) {}

  Status GetU8(uint8_t* out) { return GetFixed(out); }
  Status GetU16(uint16_t* out) { return GetFixed(out); }
  Status GetU32(uint32_t* out) { return GetFixed(out); }
  Status GetU64(uint64_t* out) { return GetFixed(out); }

  Status GetI32(int32_t* out) {
    uint32_t v = 0;
    RFID_RETURN_NOT_OK(GetFixed(&v));
    *out = static_cast<int32_t>(v);
    return Status::OK();
  }
  Status GetI64(int64_t* out) {
    uint64_t v = 0;
    RFID_RETURN_NOT_OK(GetFixed(&v));
    *out = static_cast<int64_t>(v);
    return Status::OK();
  }

  Status GetDouble(double* out) {
    uint64_t bits = 0;
    RFID_RETURN_NOT_OK(GetFixed(&bits));
    std::memcpy(out, &bits, sizeof(bits));
    return Status::OK();
  }

  Status GetFloat(float* out) {
    uint32_t bits = 0;
    RFID_RETURN_NOT_OK(GetFixed(&bits));
    std::memcpy(out, &bits, sizeof(bits));
    return Status::OK();
  }

  Status GetVarint(uint64_t* out) {
    uint64_t result = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= size_) {
        return Status::Corruption("truncated varint");
      }
      uint8_t byte = data_[pos_++];
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *out = result;
        return Status::OK();
      }
    }
    return Status::Corruption("varint too long");
  }

  Status GetSignedVarint(int64_t* out) {
    uint64_t z = 0;
    RFID_RETURN_NOT_OK(GetVarint(&z));
    *out = static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
    return Status::OK();
  }

  Status GetTagId(TagId* out) {
    uint64_t raw = 0;
    RFID_RETURN_NOT_OK(GetU64(&raw));
    *out = TagId::FromRaw(raw);
    return Status::OK();
  }

  Status GetCompactTag(TagId* out) {
    uint64_t v = 0;
    RFID_RETURN_NOT_OK(GetVarint(&v));
    if ((v & 3) == 3) {
      *out = kNoTag;
    } else {
      *out = TagId::Make(static_cast<TagKind>(v & 3), v >> 2);
    }
    return Status::OK();
  }

  Status GetString(std::string* out) {
    uint64_t n = 0;
    RFID_RETURN_NOT_OK(GetVarint(&n));
    if (n > remaining()) return Status::Corruption("truncated string");
    out->assign(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return Status::OK();
  }

  Status Skip(size_t n) {
    if (n > remaining()) return Status::Corruption("skip past end");
    pos_ += n;
    return Status::OK();
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ >= size_; }

 private:
  template <typename T>
  Status GetFixed(T* out) {
    if (remaining() < sizeof(T)) {
      return Status::Corruption("truncated fixed-width field");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    *out = v;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace rfid

#endif  // RFID_COMMON_SERDE_H_
