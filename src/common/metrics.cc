#include "common/metrics.h"

#include <cstdio>

namespace rfid {

std::string OnlineStats::Summary() const {
  if (n_ == 0) return "n=0";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "n=%lld mean=%.3f min=%.3f max=%.3f",
                static_cast<long long>(n_), mean_, min_, max_);
  return buf;
}

}  // namespace rfid
