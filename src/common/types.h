// Core identifier and time types shared by every module.
//
// The paper's data model (Section 2): tags identify pallets, cases, and
// items; the tag id encodes the packaging level (EPC tag data standard).
// Time is discretized into epochs (Section 3.1), and locations are the
// discrete set of reader positions.
#ifndef RFID_COMMON_TYPES_H_
#define RFID_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace rfid {

/// One discrete time epoch (the paper uses 1-second epochs). Epoch 0 is the
/// start of a trace.
using Epoch = int64_t;

/// Index of a reader location in the discrete location set R.
using LocationId = int32_t;

/// Index of a site (warehouse / hospital wing) in the distributed deployment.
using SiteId = int32_t;

/// Sentinel for "location unknown / not applicable".
inline constexpr LocationId kNoLocation = -1;

/// Sentinel for "no site".
inline constexpr SiteId kNoSite = -1;

/// Packaging level encoded in a tag id, mirroring the EPC tag data standard
/// the paper relies on ("the tag id can also indicate the level of
/// packaging, e.g., a pallet, a case, or an item").
enum class TagKind : uint8_t {
  kItem = 0,
  kCase = 1,
  kPallet = 2,
};

std::string ToString(TagKind kind);

/// A 64-bit tag identity. The top 2 bits carry the TagKind; the remaining 62
/// bits are the serial number. Value-semantic and hashable.
class TagId {
 public:
  constexpr TagId() : raw_(kInvalidRaw) {}

  /// Builds a tag id from a packaging level and serial number.
  static constexpr TagId Make(TagKind kind, uint64_t serial) {
    return TagId((static_cast<uint64_t>(kind) << kKindShift) |
                 (serial & kSerialMask));
  }

  static constexpr TagId Item(uint64_t serial) {
    return Make(TagKind::kItem, serial);
  }
  static constexpr TagId Case(uint64_t serial) {
    return Make(TagKind::kCase, serial);
  }
  static constexpr TagId Pallet(uint64_t serial) {
    return Make(TagKind::kPallet, serial);
  }

  /// Reconstructs a tag id from its raw 64-bit encoding (serialization).
  static constexpr TagId FromRaw(uint64_t raw) { return TagId(raw); }

  constexpr bool valid() const { return raw_ != kInvalidRaw; }
  constexpr uint64_t raw() const { return raw_; }
  constexpr uint64_t serial() const { return raw_ & kSerialMask; }
  constexpr TagKind kind() const {
    return static_cast<TagKind>((raw_ >> kKindShift) & 0x3);
  }
  constexpr bool is_item() const { return kind() == TagKind::kItem; }
  constexpr bool is_case() const { return kind() == TagKind::kCase; }
  constexpr bool is_pallet() const { return kind() == TagKind::kPallet; }

  /// "item:42", "case:7", "pallet:3", or "invalid".
  std::string ToString() const;

  friend constexpr bool operator==(TagId a, TagId b) {
    return a.raw_ == b.raw_;
  }
  friend constexpr bool operator!=(TagId a, TagId b) {
    return a.raw_ != b.raw_;
  }
  friend constexpr bool operator<(TagId a, TagId b) { return a.raw_ < b.raw_; }

 private:
  static constexpr int kKindShift = 62;
  static constexpr uint64_t kSerialMask = (uint64_t{1} << kKindShift) - 1;
  static constexpr uint64_t kInvalidRaw =
      std::numeric_limits<uint64_t>::max();

  explicit constexpr TagId(uint64_t raw) : raw_(raw) {}

  uint64_t raw_;
};

/// Sentinel tag id ("no container", "unknown object").
inline constexpr TagId kNoTag{};

struct TagIdHash {
  size_t operator()(TagId id) const noexcept {
    // splitmix64 finalizer: cheap and well distributed for sequential serials.
    uint64_t x = id.raw();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

}  // namespace rfid

template <>
struct std::hash<rfid::TagId> {
  size_t operator()(rfid::TagId id) const noexcept {
    return rfid::TagIdHash{}(id);
  }
};

#endif  // RFID_COMMON_TYPES_H_
