// Relational stream operators: selection, projection, and the
// [Now] x [Partition By k Rows 1] stream join Query 1 uses.
#ifndef RFID_STREAM_OPERATORS_H_
#define RFID_STREAM_OPERATORS_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "stream/operator.h"
#include "stream/tuple.h"

namespace rfid {

/// Selection: forwards tuples satisfying the predicate.
class FilterOp final : public Operator {
 public:
  explicit FilterOp(std::function<bool(const Tuple&)> pred)
      : pred_(std::move(pred)) {}
  void Push(const Tuple& tuple) override {
    if (pred_(tuple)) Emit(tuple);
  }

 private:
  std::function<bool(const Tuple&)> pred_;
};

/// Projection / arbitrary per-tuple mapping.
class MapOp final : public Operator {
 public:
  explicit MapOp(std::function<Tuple(const Tuple&)> fn) : fn_(std::move(fn)) {}
  void Push(const Tuple& tuple) override { Emit(fn_(tuple)); }

 private:
  std::function<Tuple(const Tuple&)> fn_;
};

/// The Query-1 join: a [Now]-windowed left stream joined against the most
/// recent tuple per partition of the right stream ([Partition By key
/// Rows 1]). Left tuples probe; right tuples only update partition state.
/// The Rstream of the join is emitted (each left arrival produces at most
/// one output now-tuple), matching CQL's Rstream(...) over a Now window.
class JoinLatestOp final : public Operator {
 public:
  /// `left_key` / `right_key`: column index of the join key on each side.
  /// The output tuple is left values followed by right values.
  JoinLatestOp(int left_key, int right_key)
      : left_key_(left_key), right_key_(right_key) {}

  /// Input port for the right (state) stream.
  class RightPort final : public Operator {
   public:
    explicit RightPort(JoinLatestOp* parent) : parent_(parent) {}
    void Push(const Tuple& tuple) override { parent_->PushRight(tuple); }

   private:
    JoinLatestOp* parent_;
  };

  /// Left input: probe and emit.
  void Push(const Tuple& tuple) override {
    auto it = latest_.find(KeyOf(tuple, left_key_));
    if (it == latest_.end()) return;
    Tuple joined;
    joined.time = tuple.time;
    joined.values = tuple.values;
    joined.values.insert(joined.values.end(), it->second.values.begin(),
                         it->second.values.end());
    Emit(joined);
  }

  void PushRight(const Tuple& tuple) {
    latest_[KeyOf(tuple, right_key_)] = tuple;
  }

  RightPort* right_port() { return &right_port_; }

  size_t partitions() const { return latest_.size(); }

 private:
  static std::string KeyOf(const Tuple& t, int idx) {
    return ToString(t.at(idx));
  }

  int left_key_;
  int right_key_;
  RightPort right_port_{this};
  std::unordered_map<std::string, Tuple> latest_;
};

}  // namespace rfid

#endif  // RFID_STREAM_OPERATORS_H_
