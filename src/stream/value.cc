#include "stream/value.h"

namespace rfid {

std::string ToString(const Value& v) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "null"; }
    std::string operator()(int64_t x) const { return std::to_string(x); }
    std::string operator()(double x) const { return std::to_string(x); }
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(TagId t) const { return t.ToString(); }
    std::string operator()(bool b) const { return b ? "true" : "false"; }
  };
  return std::visit(Visitor{}, v);
}

namespace {
enum : uint8_t {
  kNullTag = 0,
  kIntTag = 1,
  kDoubleTag = 2,
  kStringTag = 3,
  kTagIdTag = 4,
  kBoolTag = 5,
};
}  // namespace

void EncodeValue(const Value& v, BufferWriter* w) {
  struct Visitor {
    BufferWriter* w;
    void operator()(std::monostate) const { w->PutU8(kNullTag); }
    void operator()(int64_t x) const {
      w->PutU8(kIntTag);
      w->PutSignedVarint(x);
    }
    void operator()(double x) const {
      w->PutU8(kDoubleTag);
      w->PutDouble(x);
    }
    void operator()(const std::string& s) const {
      w->PutU8(kStringTag);
      w->PutString(s);
    }
    void operator()(TagId t) const {
      w->PutU8(kTagIdTag);
      w->PutTagId(t);
    }
    void operator()(bool b) const {
      w->PutU8(kBoolTag);
      w->PutU8(b ? 1 : 0);
    }
  };
  std::visit(Visitor{w}, v);
}

Status DecodeValue(BufferReader* r, Value* out) {
  uint8_t tag = 0;
  RFID_RETURN_NOT_OK(r->GetU8(&tag));
  switch (tag) {
    case kNullTag:
      *out = std::monostate{};
      return Status::OK();
    case kIntTag: {
      int64_t x = 0;
      RFID_RETURN_NOT_OK(r->GetSignedVarint(&x));
      *out = x;
      return Status::OK();
    }
    case kDoubleTag: {
      double x = 0;
      RFID_RETURN_NOT_OK(r->GetDouble(&x));
      *out = x;
      return Status::OK();
    }
    case kStringTag: {
      std::string s;
      RFID_RETURN_NOT_OK(r->GetString(&s));
      *out = std::move(s);
      return Status::OK();
    }
    case kTagIdTag: {
      TagId t;
      RFID_RETURN_NOT_OK(r->GetTagId(&t));
      *out = t;
      return Status::OK();
    }
    case kBoolTag: {
      uint8_t b = 0;
      RFID_RETURN_NOT_OK(r->GetU8(&b));
      *out = (b != 0);
      return Status::OK();
    }
    default:
      return Status::Corruption("unknown value type tag");
  }
}

bool ValueEquals(const Value& a, const Value& b) { return a == b; }

}  // namespace rfid
