// Schema'd stream tuples.
#ifndef RFID_STREAM_TUPLE_H_
#define RFID_STREAM_TUPLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "stream/value.h"

namespace rfid {

/// Attribute names of a stream; shared by all its tuples.
class Schema {
 public:
  explicit Schema(std::vector<std::string> names) : names_(std::move(names)) {}

  int IndexOf(const std::string& name) const {
    for (size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

/// One stream element: a timestamp plus attribute values positioned per the
/// stream's schema.
struct Tuple {
  Epoch time = 0;
  std::vector<Value> values;

  const Value& at(int idx) const { return values[static_cast<size_t>(idx)]; }
};

}  // namespace rfid

#endif  // RFID_STREAM_TUPLE_H_
