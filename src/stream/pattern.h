// Automaton-based SEQ(A+) pattern matching over partitioned streams, the
// extension of [1] (SASE-style NFA) that Query 1 uses:
//
//   [ Pattern SEQ(A+)
//     Where A[i].tag_id = A[1].tag_id and
//           A[A.len].time > A[1].time + 6 hrs ]
//
// Each partition (tag id) runs one automaton: Idle -> Accumulating on the
// first matching event, stays Accumulating while matching events keep
// arriving contiguously, and fires when the run's span exceeds the duration
// bound. Contiguity on a sampled stream means "no gap larger than max_gap":
// an object that stops matching (back inside a freezer) stops producing
// events, and its run must lapse rather than bridge to a later exposure.
//
// The per-partition state is exactly the query state of Appendix B: (i) the
// automaton state, (ii) the minimum values needed for future evaluation
// (first/last event time), and (iii) the values the query returns (the
// logged readings). It serializes to a compact byte string -- the unit of
// query-state migration and of centroid-based sharing (Section 4.2).
#ifndef RFID_STREAM_PATTERN_H_
#define RFID_STREAM_PATTERN_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "stream/operator.h"

namespace rfid {

struct PatternOptions {
  /// Column holding the partition key; must be a TagId value.
  int partition_col = 0;
  /// Column whose double value is logged with each event (-1: log nothing).
  int value_col = -1;
  /// Fire when last.time - first.time exceeds this span.
  Epoch min_duration = 6 * 3600;
  /// A gap above this between consecutive events lapses the run.
  Epoch max_gap = 120;
  /// Fire at most once per run (re-arm after the run lapses).
  bool emit_once_per_run = true;
};

/// Automaton phase of one partition.
enum class RunPhase : uint8_t { kIdle = 0, kAccumulating = 1, kAlerted = 2 };

/// Serializable per-partition query state.
struct PatternState {
  RunPhase phase = RunPhase::kIdle;
  Epoch first_time = 0;
  Epoch last_time = 0;
  /// Logged (time, value) pairs of the current run (A[].temp in Q1).
  std::vector<std::pair<Epoch, double>> value_log;

  std::vector<uint8_t> Encode() const;
  static Result<PatternState> Decode(const std::vector<uint8_t>& bytes);

  friend bool operator==(const PatternState&, const PatternState&) = default;
};

/// The pattern operator. Emits one alert tuple per completed match with
/// schema [tag, first_time, last_time, n_events].
class PatternSeqOp final : public Operator {
 public:
  explicit PatternSeqOp(PatternOptions options) : options_(options) {}

  void Push(const Tuple& tuple) override;

  /// Current state of one partition (default state when absent).
  PatternState StateOf(TagId tag) const;

  /// Installs (migrated) state for a partition, replacing any existing.
  void SetState(TagId tag, PatternState state);

  /// Removes a partition's state (object departed) and returns it.
  PatternState TakeState(TagId tag);

  /// All partitions with live state.
  std::vector<TagId> Partitions() const;

  int64_t alerts_emitted() const { return alerts_emitted_; }

 private:
  PatternOptions options_;
  std::unordered_map<TagId, PatternState> states_;
  int64_t alerts_emitted_ = 0;
};

}  // namespace rfid

#endif  // RFID_STREAM_PATTERN_H_
