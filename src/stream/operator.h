// Push-based operator pipeline for continuous queries (CQL [2] subset).
//
// Operators form a DAG: each operator receives tuples via Push and forwards
// derived tuples to its downstream. All operators are single-threaded, as
// in the paper's prototype; state is explicit and, where per-object,
// exportable for migration.
#ifndef RFID_STREAM_OPERATOR_H_
#define RFID_STREAM_OPERATOR_H_

#include <functional>
#include <vector>

#include "stream/tuple.h"

namespace rfid {

/// Base class of pipeline stages.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Consumes one input tuple.
  virtual void Push(const Tuple& tuple) = 0;

  /// Sets the next stage; not owned, must outlive this operator.
  void SetDownstream(Operator* next) { downstream_ = next; }

 protected:
  void Emit(const Tuple& tuple) {
    if (downstream_ != nullptr) downstream_->Push(tuple);
  }

 private:
  Operator* downstream_ = nullptr;
};

/// Terminal stage that materializes results.
class CollectSink final : public Operator {
 public:
  void Push(const Tuple& tuple) override { results_.push_back(tuple); }
  const std::vector<Tuple>& results() const { return results_; }
  void Clear() { results_.clear(); }

 private:
  std::vector<Tuple> results_;
};

/// Terminal stage invoking a callback.
class CallbackOperator final : public Operator {
 public:
  explicit CallbackOperator(std::function<void(const Tuple&)> fn)
      : fn_(std::move(fn)) {}
  void Push(const Tuple& tuple) override { fn_(tuple); }

 private:
  std::function<void(const Tuple&)> fn_;
};

}  // namespace rfid

#endif  // RFID_STREAM_OPERATOR_H_
