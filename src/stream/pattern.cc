#include "stream/pattern.h"

#include <algorithm>

#include "common/serde.h"

namespace rfid {

std::vector<uint8_t> PatternState::Encode() const {
  BufferWriter w;
  w.PutU8(static_cast<uint8_t>(phase));
  w.PutSignedVarint(first_time);
  w.PutSignedVarint(last_time);
  w.PutVarint(value_log.size());
  Epoch prev = 0;
  for (const auto& [t, v] : value_log) {
    w.PutSignedVarint(t - prev);
    w.PutDouble(v);
    prev = t;
  }
  return w.Release();
}

Result<PatternState> PatternState::Decode(const std::vector<uint8_t>& bytes) {
  BufferReader r(bytes);
  PatternState s;
  uint8_t phase = 0;
  RFID_RETURN_NOT_OK(r.GetU8(&phase));
  if (phase > static_cast<uint8_t>(RunPhase::kAlerted)) {
    return Status::Corruption("bad pattern phase");
  }
  s.phase = static_cast<RunPhase>(phase);
  RFID_RETURN_NOT_OK(r.GetSignedVarint(&s.first_time));
  RFID_RETURN_NOT_OK(r.GetSignedVarint(&s.last_time));
  uint64_t n = 0;
  RFID_RETURN_NOT_OK(r.GetVarint(&n));
  Epoch prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    int64_t dt = 0;
    double v = 0;
    RFID_RETURN_NOT_OK(r.GetSignedVarint(&dt));
    RFID_RETURN_NOT_OK(r.GetDouble(&v));
    prev += dt;
    s.value_log.emplace_back(prev, v);
  }
  return s;
}

void PatternSeqOp::Push(const Tuple& tuple) {
  const Value& key_val = tuple.at(options_.partition_col);
  if (!std::holds_alternative<TagId>(key_val)) return;
  const TagId tag = std::get<TagId>(key_val);
  PatternState& s = states_[tag];

  // Lapse the run if the event stream for this partition went quiet.
  if (s.phase != RunPhase::kIdle &&
      tuple.time - s.last_time > options_.max_gap) {
    s = PatternState{};
  }

  double logged = 0.0;
  bool has_value = false;
  if (options_.value_col >= 0) {
    const Value& v = tuple.at(options_.value_col);
    if (std::holds_alternative<double>(v)) {
      logged = std::get<double>(v);
      has_value = true;
    } else if (std::holds_alternative<int64_t>(v)) {
      logged = static_cast<double>(std::get<int64_t>(v));
      has_value = true;
    }
  }

  switch (s.phase) {
    case RunPhase::kIdle:
      s.phase = RunPhase::kAccumulating;
      s.first_time = tuple.time;
      s.last_time = tuple.time;
      s.value_log.clear();
      if (has_value) s.value_log.emplace_back(tuple.time, logged);
      break;
    case RunPhase::kAccumulating:
    case RunPhase::kAlerted:
      s.last_time = tuple.time;
      if (has_value) s.value_log.emplace_back(tuple.time, logged);
      break;
  }

  if (s.phase == RunPhase::kAccumulating &&
      s.last_time > s.first_time + options_.min_duration) {
    Tuple alert;
    alert.time = tuple.time;
    alert.values = {Value{tag}, Value{s.first_time}, Value{s.last_time},
                    Value{static_cast<int64_t>(
                        std::max<size_t>(1, s.value_log.size()))}};
    Emit(alert);
    ++alerts_emitted_;
    s.phase = options_.emit_once_per_run ? RunPhase::kAlerted
                                         : RunPhase::kAccumulating;
  }
}

PatternState PatternSeqOp::StateOf(TagId tag) const {
  auto it = states_.find(tag);
  return it == states_.end() ? PatternState{} : it->second;
}

void PatternSeqOp::SetState(TagId tag, PatternState state) {
  states_[tag] = std::move(state);
}

PatternState PatternSeqOp::TakeState(TagId tag) {
  auto it = states_.find(tag);
  if (it == states_.end()) return PatternState{};
  PatternState out = std::move(it->second);
  states_.erase(it);
  return out;
}

std::vector<TagId> PatternSeqOp::Partitions() const {
  std::vector<TagId> tags;
  tags.reserve(states_.size());
  for (const auto& [tag, unused] : states_) tags.push_back(tag);
  std::sort(tags.begin(), tags.end());
  return tags;
}

}  // namespace rfid
