// Typed attribute values for stream tuples.
//
// The CQL-subset processor (Section 2 / Appendix B) carries object events,
// sensor readings, and derived tuples through a uniform schema'd tuple
// format; Value is the cell type.
#ifndef RFID_STREAM_VALUE_H_
#define RFID_STREAM_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/serde.h"
#include "common/status.h"
#include "common/types.h"

namespace rfid {

/// One attribute value. Monostate denotes SQL NULL (e.g. "container =
/// NULL" in Query 1).
using Value = std::variant<std::monostate, int64_t, double, std::string,
                           TagId, bool>;

/// True when the value is NULL.
inline bool IsNull(const Value& v) {
  return std::holds_alternative<std::monostate>(v);
}

/// Renders for debugging/CSV ("null", "3.5", "item:7", "true", ...).
std::string ToString(const Value& v);

/// Serializes with a one-byte type tag.
void EncodeValue(const Value& v, BufferWriter* w);
Status DecodeValue(BufferReader* r, Value* out);

/// Equality that treats NULL == NULL as true (needed for state diffing).
bool ValueEquals(const Value& a, const Value& b);

}  // namespace rfid

#endif  // RFID_STREAM_VALUE_H_
