// The paper's example continuous queries, wired as operator pipelines.
//
// Q1 (Section 2): raise an alert when a frozen product is outside a freezer
// container (or uncontained) at an above-freezing location for 6 hours.
// The inner CQL block joins Products[Now] with Temperature[Partition By
// sensor Rows 1] under the container/temperature predicates; the outer
// block pattern-matches SEQ(A+) per tag over the 6-hour span.
//
// Q2 (Section 5.4): report frozen food exposed to a temperature over 10
// degrees for 10 hours -- the location-only variant (no containment
// predicate), which the paper uses to isolate the effect of containment
// accuracy on query quality.
#ifndef RFID_QUERY_QUERIES_H_
#define RFID_QUERY_QUERIES_H_

#include <memory>
#include <vector>

#include "common/types.h"
#include "stream/operator.h"
#include "stream/operators.h"
#include "stream/pattern.h"
#include "trace/product_catalog.h"
#include "trace/reading.h"

namespace rfid {

struct ExposureQueryConfig {
  /// Alert when exposed above this temperature...
  double temp_threshold = 0.0;
  /// ...for longer than this span (Q1: 6 hrs; benches scale it down).
  Epoch duration = 6 * 3600;
  /// Contiguity bound of the SEQ(A+) run.
  Epoch max_gap = 120;
  /// Apply Q1's containment predicate (container not a freezer / NULL).
  bool check_container = true;
};

/// One fired alert.
struct ExposureAlert {
  TagId tag;
  Epoch first_time = 0;
  Epoch last_time = 0;
  int64_t n_events = 0;
};

/// A continuous query instance over one site's event + sensor streams.
class ExposureQuery {
 public:
  /// `catalog` must outlive the query.
  ExposureQuery(const ProductCatalog* catalog, ExposureQueryConfig config);

  /// Q1 with the paper's predicates.
  static ExposureQueryConfig Q1Config(Epoch duration = 6 * 3600) {
    ExposureQueryConfig cfg;
    cfg.temp_threshold = 0.0;
    cfg.duration = duration;
    cfg.check_container = true;
    return cfg;
  }
  /// Q2: location-only, 10 degrees / 10 hours.
  static ExposureQueryConfig Q2Config(Epoch duration = 10 * 3600) {
    ExposureQueryConfig cfg;
    cfg.temp_threshold = 10.0;
    cfg.duration = duration;
    cfg.check_container = false;
    return cfg;
  }

  /// Feeds one inferred object event (the Products stream).
  void OnEvent(const ObjectEvent& event);

  /// Feeds one sensor sample (the Temperature stream).
  void OnSensor(const SensorReading& reading);

  const std::vector<ExposureAlert>& alerts() const { return alerts_; }

  /// Reinstates previously fired alerts (durable checkpoint restore,
  /// dist/durability.h). Output-only: the pattern automata are restored
  /// separately via ImportState.
  void RestoreAlerts(const std::vector<ExposureAlert>& alerts) {
    alerts_.insert(alerts_.end(), alerts.begin(), alerts.end());
  }

  // ---- Per-object query state (Section 4.2) ----

  /// Serialized pattern state of one object; the migration payload.
  std::vector<uint8_t> ExportState(TagId tag) const;

  /// Installs migrated state, replacing any existing.
  Status ImportState(TagId tag, const std::vector<uint8_t>& bytes);

  /// Removes and returns the state of a departing object.
  std::vector<uint8_t> TakeState(TagId tag);

  /// Objects with live pattern state.
  std::vector<TagId> StatefulObjects() const;

 private:
  const ProductCatalog* catalog_;
  ExposureQueryConfig config_;
  std::unique_ptr<FilterOp> product_filter_;
  std::unique_ptr<JoinLatestOp> join_;
  std::unique_ptr<FilterOp> temp_filter_;
  std::unique_ptr<PatternSeqOp> pattern_;
  std::unique_ptr<CallbackOperator> sink_;
  std::vector<ExposureAlert> alerts_;
};

}  // namespace rfid

#endif  // RFID_QUERY_QUERIES_H_
