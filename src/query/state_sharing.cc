#include "query/state_sharing.h"

#include <algorithm>

#include "common/serde.h"

namespace rfid {

size_t ByteDistance(const std::vector<uint8_t>& a,
                    const std::vector<uint8_t>& b) {
  const size_t common = std::min(a.size(), b.size());
  size_t diff = std::max(a.size(), b.size()) - common;
  for (size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) ++diff;
  }
  return diff;
}

std::vector<uint8_t> DiffEncode(const std::vector<uint8_t>& base,
                                const std::vector<uint8_t>& target) {
  BufferWriter w;
  w.PutVarint(target.size());
  size_t pos = 0;
  size_t last_emitted = 0;
  while (pos < target.size()) {
    // Find the next differing byte.
    while (pos < target.size() && pos < base.size() &&
           base[pos] == target[pos]) {
      ++pos;
    }
    if (pos >= target.size()) break;
    // Extend the differing run (allow short equal gaps to merge runs and
    // save per-run overhead).
    size_t run_end = pos;
    size_t equal_streak = 0;
    size_t scan = pos;
    while (scan < target.size()) {
      const bool same = scan < base.size() && base[scan] == target[scan];
      if (same) {
        ++equal_streak;
        if (equal_streak > 3) break;
      } else {
        equal_streak = 0;
        run_end = scan + 1;
      }
      ++scan;
    }
    w.PutVarint(pos - last_emitted);      // skip from previous run end
    w.PutVarint(run_end - pos);           // literal length
    w.PutBytes(target.data() + pos, run_end - pos);
    last_emitted = run_end;
    pos = run_end;
  }
  return w.Release();
}

Result<std::vector<uint8_t>> DiffApply(const std::vector<uint8_t>& base,
                                       const std::vector<uint8_t>& diff) {
  BufferReader r(diff);
  uint64_t target_len = 0;
  RFID_RETURN_NOT_OK(r.GetVarint(&target_len));
  std::vector<uint8_t> out;
  out.reserve(target_len);
  // Start from the base truncated/extended to the target length.
  out.assign(base.begin(),
             base.begin() + static_cast<int64_t>(
                                std::min<uint64_t>(base.size(), target_len)));
  out.resize(target_len, 0);
  size_t pos = 0;
  while (!r.exhausted()) {
    uint64_t skip = 0, len = 0;
    RFID_RETURN_NOT_OK(r.GetVarint(&skip));
    RFID_RETURN_NOT_OK(r.GetVarint(&len));
    pos += skip;
    if (pos + len > out.size() || len > r.remaining()) {
      return Status::Corruption("diff run out of bounds");
    }
    for (uint64_t i = 0; i < len; ++i) {
      uint8_t b = 0;
      RFID_RETURN_NOT_OK(r.GetU8(&b));
      out[pos++] = b;
    }
  }
  return out;
}

size_t SharedStateBundle::TotalBytes() const {
  size_t total = centroid_state.size();
  total += tags.size() * sizeof(uint64_t);  // tag ids
  for (const auto& d : diffs) total += d.size();
  return total;
}

SharedStateBundle ShareStates(
    const std::vector<std::pair<TagId, std::vector<uint8_t>>>& states) {
  SharedStateBundle bundle;
  if (states.empty()) return bundle;

  // Medoid selection: minimize the total byte distance to the others.
  size_t best = 0;
  size_t best_cost = SIZE_MAX;
  for (size_t i = 0; i < states.size(); ++i) {
    size_t cost = 0;
    for (size_t j = 0; j < states.size(); ++j) {
      if (i != j) cost += ByteDistance(states[i].second, states[j].second);
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }

  bundle.centroid_index = best;
  bundle.centroid_state = states[best].second;
  for (size_t i = 0; i < states.size(); ++i) {
    bundle.tags.push_back(states[i].first);
    if (i == best) {
      bundle.diffs.emplace_back();
    } else {
      bundle.diffs.push_back(
          DiffEncode(bundle.centroid_state, states[i].second));
    }
  }
  return bundle;
}

Result<std::vector<std::pair<TagId, std::vector<uint8_t>>>> UnshareStates(
    const SharedStateBundle& bundle) {
  if (bundle.tags.size() != bundle.diffs.size()) {
    return Status::InvalidArgument("bundle tag/diff size mismatch");
  }
  std::vector<std::pair<TagId, std::vector<uint8_t>>> out;
  for (size_t i = 0; i < bundle.tags.size(); ++i) {
    if (i == bundle.centroid_index) {
      out.emplace_back(bundle.tags[i], bundle.centroid_state);
    } else {
      Result<std::vector<uint8_t>> restored =
          DiffApply(bundle.centroid_state, bundle.diffs[i]);
      RFID_RETURN_NOT_OK(restored.status());
      out.emplace_back(bundle.tags[i], std::move(restored).value());
    }
  }
  return out;
}

}  // namespace rfid
