// Centroid-based query-state sharing (Section 4.2, Appendix B): when a
// departing transfer group's per-object SEQ(A+) pattern states migrate to
// the next site, objects that share a container ship one representative
// state plus per-object byte diffs instead of full copies.
//
// "These objects have the same container and location at present (but
// possibly different histories). The query states for these objects are
// likely to have commonalities. Hence, we propose a centroid-based sharing
// technique that finds the most representative query state and compresses
// other similar query states by storing only the differences."
//
// The pieces, in paper order:
//   * ByteDistance        -- Section 4.2's distance function ("counts the
//                            number of bytes that differ in the query
//                            state of two objects");
//   * DiffEncode/DiffApply -- the difference encoding shipped per object;
//   * ShareStates          -- centroid selection, the O(n^2) medoid scan
//                            Appendix B deems affordable for the "20-50
//                            objects per case" sharing groups;
//   * UnshareStates        -- reconstruction at the receiving site.
//
// dist/site.cc's query-state envelope (MessageKind::kQueryState) invokes
// these per same-container group, using the exporting site's believed
// containment at the exit point; Table 5 charges the shared bytes.
#ifndef RFID_QUERY_STATE_SHARING_H_
#define RFID_QUERY_STATE_SHARING_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace rfid {

/// Number of differing bytes between two byte strings (positions beyond the
/// shorter one all count as differing).
size_t ByteDistance(const std::vector<uint8_t>& a,
                    const std::vector<uint8_t>& b);

/// Encodes `target` as a delta against `base`: varint target length, then
/// (skip, literal-run) pairs covering every differing byte.
std::vector<uint8_t> DiffEncode(const std::vector<uint8_t>& base,
                                const std::vector<uint8_t>& target);

/// Reconstructs the target from `base` and a DiffEncode payload.
Result<std::vector<uint8_t>> DiffApply(const std::vector<uint8_t>& base,
                                       const std::vector<uint8_t>& diff);

/// A group of query states compressed against their medoid.
struct SharedStateBundle {
  /// Index into `tags` of the centroid (its state is stored raw).
  size_t centroid_index = 0;
  std::vector<uint8_t> centroid_state;
  std::vector<TagId> tags;
  /// diffs[i] reconstructs tags[i]'s state from the centroid;
  /// diffs[centroid_index] is empty.
  std::vector<std::vector<uint8_t>> diffs;

  /// Bytes the bundle occupies on the wire (centroid + diffs + tag ids).
  size_t TotalBytes() const;
};

/// Compresses a group of per-object states (same container at the exit
/// point). Requires at least one entry.
SharedStateBundle ShareStates(
    const std::vector<std::pair<TagId, std::vector<uint8_t>>>& states);

/// Expands a bundle back to per-object states.
Result<std::vector<std::pair<TagId, std::vector<uint8_t>>>> UnshareStates(
    const SharedStateBundle& bundle);

}  // namespace rfid

#endif  // RFID_QUERY_STATE_SHARING_H_
