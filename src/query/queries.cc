#include "query/queries.h"

namespace rfid {

namespace {
// Tuple layout of the Products stream: [tag, loc, container].
constexpr int kTagCol = 0;
constexpr int kLocCol = 1;
constexpr int kContainerCol = 2;
// After the join, the Temperature values [loc, temp] are appended.
constexpr int kTempCol = 4;
// Sensor stream layout: [loc, temp].
constexpr int kSensorLocCol = 0;
}  // namespace

ExposureQuery::ExposureQuery(const ProductCatalog* catalog,
                             ExposureQueryConfig config)
    : catalog_(catalog), config_(config) {
  // Inner block, stream R: frozen products whose container fails the
  // freezer test (or is NULL) -- or all frozen products for Q2.
  product_filter_ = std::make_unique<FilterOp>([this](const Tuple& t) {
    const Value& tag_v = t.at(kTagCol);
    if (!std::holds_alternative<TagId>(tag_v)) return false;
    const ProductInfo* info = catalog_->FindProduct(std::get<TagId>(tag_v));
    if (info == nullptr || !info->frozen) return false;
    if (!config_.check_container) return true;
    const Value& cont_v = t.at(kContainerCol);
    if (IsNull(cont_v)) return true;  // "or R.container = NULL"
    if (!std::holds_alternative<TagId>(cont_v)) return true;
    return !catalog_->IsA(std::get<TagId>(cont_v), ContainerClass::kFreezer);
  });

  // Join R[Now] with Temperature[Partition By sensor Rows 1] on location.
  join_ = std::make_unique<JoinLatestOp>(kLocCol, kSensorLocCol);

  // "T.temp > threshold".
  temp_filter_ = std::make_unique<FilterOp>([this](const Tuple& t) {
    const Value& temp_v = t.at(kTempCol);
    return std::holds_alternative<double>(temp_v) &&
           std::get<double>(temp_v) > config_.temp_threshold;
  });

  // Outer block: SEQ(A+) per tag spanning `duration`.
  PatternOptions popts;
  popts.partition_col = kTagCol;
  popts.value_col = kTempCol;
  popts.min_duration = config_.duration;
  popts.max_gap = config_.max_gap;
  pattern_ = std::make_unique<PatternSeqOp>(popts);

  sink_ = std::make_unique<CallbackOperator>([this](const Tuple& t) {
    ExposureAlert alert;
    alert.tag = std::get<TagId>(t.at(0));
    alert.first_time = std::get<int64_t>(t.at(1));
    alert.last_time = std::get<int64_t>(t.at(2));
    alert.n_events = std::get<int64_t>(t.at(3));
    alerts_.push_back(alert);
  });

  product_filter_->SetDownstream(join_.get());
  join_->SetDownstream(temp_filter_.get());
  temp_filter_->SetDownstream(pattern_.get());
  pattern_->SetDownstream(sink_.get());
}

void ExposureQuery::OnEvent(const ObjectEvent& event) {
  Tuple t;
  t.time = event.time;
  // Built element-wise: the initializer-list form trips GCC 12's
  // -Wmaybe-uninitialized on the temporary variant array at -O2.
  t.values.reserve(3);
  t.values.emplace_back(event.tag);
  t.values.emplace_back(static_cast<int64_t>(event.loc));
  if (event.container.valid()) {
    t.values.emplace_back(event.container);
  } else {
    t.values.emplace_back(std::monostate{});
  }
  product_filter_->Push(t);
}

void ExposureQuery::OnSensor(const SensorReading& reading) {
  Tuple t;
  t.time = reading.time;
  t.values = {Value{static_cast<int64_t>(reading.loc)}, Value{reading.value}};
  join_->right_port()->Push(t);
}

std::vector<uint8_t> ExposureQuery::ExportState(TagId tag) const {
  return pattern_->StateOf(tag).Encode();
}

Status ExposureQuery::ImportState(TagId tag,
                                  const std::vector<uint8_t>& bytes) {
  Result<PatternState> state = PatternState::Decode(bytes);
  RFID_RETURN_NOT_OK(state.status());
  pattern_->SetState(tag, std::move(state).value());
  return Status::OK();
}

std::vector<uint8_t> ExposureQuery::TakeState(TagId tag) {
  return pattern_->TakeState(tag).Encode();
}

std::vector<TagId> ExposureQuery::StatefulObjects() const {
  return pattern_->Partitions();
}

}  // namespace rfid
