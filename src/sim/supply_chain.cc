#include "sim/supply_chain.h"

#include <algorithm>
#include <cassert>

namespace rfid {

namespace {

std::vector<std::vector<SiteId>> BuildDag(int num_warehouses,
                                          const std::vector<int>& layers) {
  std::vector<std::vector<SiteId>> successors(
      static_cast<size_t>(num_warehouses));
  if (num_warehouses <= 1) return successors;
  std::vector<int> shape = layers;
  if (shape.empty()) {
    // Linear chain.
    for (SiteId s = 0; s + 1 < num_warehouses; ++s) {
      successors[static_cast<size_t>(s)].push_back(s + 1);
    }
    return successors;
  }
  // Layered DAG: every node in layer i feeds every node in layer i+1.
  std::vector<std::vector<SiteId>> layer_nodes;
  SiteId next = 0;
  for (int size : shape) {
    std::vector<SiteId> nodes;
    for (int i = 0; i < size && next < num_warehouses; ++i) {
      nodes.push_back(next++);
    }
    if (!nodes.empty()) layer_nodes.push_back(std::move(nodes));
  }
  for (size_t l = 0; l + 1 < layer_nodes.size(); ++l) {
    for (SiteId from : layer_nodes[l]) {
      successors[static_cast<size_t>(from)] = layer_nodes[l + 1];
    }
  }
  return successors;
}

}  // namespace

SupplyChainSim::SupplyChainSim(SupplyChainConfig config)
    : config_(std::move(config)),
      layout_(config_.num_warehouses, config_.shelves_per_warehouse),
      model_(ReadRateModel::Uniform(1, 0.5)),  // replaced below
      schedule_(1),                            // replaced below
      rng_(config_.seed) {
  model_ = layout_.BuildReadRateModel(config_.read_rate, rng_);
  schedule_ = layout_.BuildSchedule(config_.schedule, model_);
  reader_sim_ = std::make_unique<ReaderSim>(&model_, &schedule_, rng_.NextU64());
  successors_ = BuildDag(config_.num_warehouses, config_.dag_layers);
  dispatch_rr_.assign(static_cast<size_t>(config_.num_warehouses), 0);
  site_traces_.resize(static_cast<size_t>(config_.num_warehouses));
}

void SupplyChainSim::ScheduleInjection(Epoch t) {
  queue_.Schedule(t, [this] {
    for (int i = 0; i < config_.pallets_per_injection; ++i) {
      if (config_.max_pallets >= 0 &&
          pallets_created_ >= config_.max_pallets) {
        return;
      }
      ++pallets_created_;
      auto plan = std::make_shared<PalletPlan>();
      plan->pallet = world_.NewPallet();
      all_pallets_.push_back(plan->pallet);
      const Epoch now = queue_.now();
      for (int c = 0; c < config_.cases_per_pallet; ++c) {
        TagId case_tag = world_.NewCase();
        all_cases_.push_back(case_tag);
        world_.SetContainer(case_tag, plan->pallet, now);
        plan->cases.push_back(case_tag);
        for (int k = 0; k < config_.items_per_case; ++k) {
          TagId item = world_.NewItem();
          all_items_.push_back(item);
          world_.SetContainer(item, case_tag, now);
        }
      }
      ArriveAtWarehouse(plan, /*site=*/0);
    }
    ScheduleInjection(queue_.now() + config_.pallet_injection_interval);
  });
}

void SupplyChainSim::ArriveAtWarehouse(std::shared_ptr<PalletPlan> plan,
                                       SiteId site) {
  plan->site = site;
  plan->cases_done = 0;
  const Epoch now = queue_.now();
  world_.PlaceGroup(plan->pallet, layout_.site(site).entry, now);
  queue_.ScheduleAfter(config_.entry_dwell,
                       [this, plan] { Unpack(plan); });
}

void SupplyChainSim::Unpack(std::shared_ptr<PalletPlan> plan) {
  const SiteLayout& site = layout_.site(plan->site);
  const Epoch now = queue_.now();
  // The pallet tag stays near the belt while its cases circulate.
  // Detach cases first so moving the pallet does not drag them along.
  for (TagId case_tag : plan->cases) {
    world_.SetContainer(case_tag, kNoTag, now);
  }
  world_.Place(plan->pallet, site.belt, now);
  // Cases ride the belt one at a time, then go to a random shelf.
  for (size_t i = 0; i < plan->cases.size(); ++i) {
    TagId case_tag = plan->cases[i];
    const Epoch belt_at =
        now + static_cast<Epoch>(i) * config_.belt_time_per_case;
    queue_.Schedule(belt_at, [this, case_tag, site] {
      world_.PlaceGroup(case_tag, site.belt, queue_.now());
    });
    const Epoch shelf_at = belt_at + config_.belt_time_per_case;
    queue_.Schedule(shelf_at, [this, plan, case_tag, site] {
      const auto& shelves = site.shelves;
      LocationId shelf = shelves[static_cast<size_t>(
          rng_.NextBounded(shelves.size()))];
      world_.PlaceGroup(case_tag, shelf, queue_.now());
      queue_.ScheduleAfter(config_.shelf_stay, [this, plan, case_tag] {
        CaseDoneOnShelf(plan, case_tag);
      });
    });
  }
}

void SupplyChainSim::CaseDoneOnShelf(std::shared_ptr<PalletPlan> plan,
                                     TagId /*case_tag*/) {
  ++plan->cases_done;
  if (plan->cases_done == static_cast<int>(plan->cases.size())) {
    Repack(plan);
  }
}

void SupplyChainSim::Repack(std::shared_ptr<PalletPlan> plan) {
  const SiteLayout& site = layout_.site(plan->site);
  const Epoch now = queue_.now();
  // Reassemble: cases rejoin the pallet and everything moves to the exit.
  world_.Place(plan->pallet, site.exit, now);
  for (TagId case_tag : plan->cases) {
    world_.SetContainer(case_tag, plan->pallet, now);
    world_.PlaceGroup(case_tag, site.exit, now);
  }
  queue_.ScheduleAfter(config_.exit_dwell, [this, plan] { Dispatch(plan); });
}

void SupplyChainSim::Dispatch(std::shared_ptr<PalletPlan> plan) {
  const Epoch now = queue_.now();
  const auto& succ = successors_[static_cast<size_t>(plan->site)];
  ObjectTransfer transfer;
  transfer.depart = now;
  transfer.from = plan->site;
  transfer.pallet = plan->pallet;
  transfer.cases = plan->cases;
  for (TagId case_tag : plan->cases) {
    const auto& contents = world_.ContentsOf(case_tag);
    transfer.items.insert(transfer.items.end(), contents.begin(),
                          contents.end());
  }
  if (succ.empty()) {
    // Final destination: the group leaves the tracked supply chain.
    transfer.to = kNoSite;
    transfer.arrive = now;
    transfers_.push_back(std::move(transfer));
    world_.RemoveGroup(plan->pallet, now);
    return;
  }
  size_t& cursor = dispatch_rr_[static_cast<size_t>(plan->site)];
  SiteId next_site = succ[cursor % succ.size()];
  ++cursor;
  transfer.to = next_site;
  transfer.arrive = now + config_.transit_time;
  transfers_.push_back(std::move(transfer));
  // In transit: tags are out of range of every reader.
  world_.PlaceGroup(plan->pallet, kNoLocation, now);
  queue_.ScheduleAfter(config_.transit_time, [this, plan, next_site] {
    ArriveAtWarehouse(plan, next_site);
  });
}

void SupplyChainSim::ScheduleAnomaly(SiteId site, Epoch t) {
  queue_.Schedule(t, [this, site] {
    InjectAnomaly(site);
    ScheduleAnomaly(site, queue_.now() + config_.anomaly_interval);
  });
}

void SupplyChainSim::InjectAnomaly(SiteId site) {
  // Collect (item, case) pairs currently on shelves of this site, and the
  // set of candidate destination cases.
  const SiteLayout& sl = layout_.site(site);
  std::vector<TagId> shelf_cases;
  std::vector<TagId> shelf_items;
  for (LocationId shelf : sl.shelves) {
    for (TagId tag : world_.TagsAt(shelf)) {
      if (tag.is_case()) shelf_cases.push_back(tag);
      if (tag.is_item()) shelf_items.push_back(tag);
    }
  }
  if (shelf_items.empty() || shelf_cases.size() < 2) return;
  const Epoch now = queue_.now();
  for (int attempt = 0; attempt < 16; ++attempt) {
    TagId item =
        shelf_items[static_cast<size_t>(rng_.NextBounded(shelf_items.size()))];
    TagId from_case = world_.ContainerOf(item);
    TagId to_case =
        shelf_cases[static_cast<size_t>(rng_.NextBounded(shelf_cases.size()))];
    if (to_case == from_case) continue;
    world_.SetContainer(item, to_case, now);
    world_.Place(item, world_.LocationOf(to_case), now);
    anomalies_.push_back(AnomalyRecord{now, item, from_case, to_case});
    return;
  }
}

void SupplyChainSim::Run(ReadingSink* sink) {
  assert(!ran_);
  ran_ = true;
  // Default sink: materialize readings into per-site traces.
  CallbackSink materialize([this](const RawReading& r) {
    SiteId s = layout_.SiteOfLocation(r.reader);
    site_traces_[static_cast<size_t>(s)].Add(r);
  });
  ReadingSink* out = sink != nullptr ? sink : &materialize;

  ScheduleInjection(0);
  if (config_.anomaly_interval > 0) {
    for (SiteId s = 0; s < config_.num_warehouses; ++s) {
      ScheduleAnomaly(s, config_.anomaly_interval);
    }
  }
  for (Epoch t = 0; t <= config_.horizon; ++t) {
    queue_.RunUntil(t);
    total_readings_ += reader_sim_->ScanEpoch(world_, t, out);
  }
  world_.Finish(config_.horizon);
  for (Trace& trace : site_traces_) trace.Seal();
}

Trace SupplyChainSim::MergedTrace() const {
  Trace merged;
  for (const Trace& t : site_traces_) {
    merged.Append(t.readings());
  }
  merged.Seal();
  return merged;
}

}  // namespace rfid
