#include "sim/lab.h"

#include <cassert>

#include "sim/des.h"

namespace rfid {

LabTraceSpec LabSpecFor(int trace_index) {
  // T1..T4 stable containment; T5..T8 repeat the grid with changes.
  LabTraceSpec spec;
  int base = (trace_index - 1) % 4;           // 0..3
  spec.with_changes = trace_index >= 5;
  spec.read_rate = (base == 0 || base == 1) ? 0.85 : 0.70;
  spec.overlap = (base == 0 || base == 2) ? 0.25 : 0.50;
  return spec;
}

LabDeployment::LabDeployment(LabConfig config)
    : config_(config),
      layout_(/*num_sites=*/1, /*shelves_per_site=*/4),
      model_(ReadRateModel::Uniform(1, 0.5)),  // replaced below
      schedule_(1),                            // replaced below
      rng_(config_.seed) {
  ReadRateParams rr;
  rr.main = config_.spec.read_rate;
  rr.overlap = config_.spec.overlap;
  model_ = layout_.BuildReadRateModel(rr, rng_);
  ScheduleParams sp;  // defaults: nonshelf every 1 s, shelf every 10 s
  schedule_ = layout_.BuildSchedule(sp, model_);
}

void LabDeployment::Run() {
  assert(!ran_);
  ran_ = true;
  EventQueue queue;
  ReaderSim reader_sim(&model_, &schedule_, rng_.NextU64());
  const SiteLayout& site = layout_.site(0);

  // Create the 20 cases x 5 items and schedule their staggered entries.
  Epoch all_shelved_by = 0;
  for (int c = 0; c < config_.num_cases; ++c) {
    TagId case_tag = world_.NewCase();
    cases_.push_back(case_tag);
    for (int k = 0; k < config_.items_per_case; ++k) {
      TagId item = world_.NewItem();
      items_.push_back(item);
      world_.SetContainer(item, case_tag, 0);
    }
    const Epoch enter = static_cast<Epoch>(c) * config_.case_arrival_spacing;
    const Epoch to_belt = enter + config_.entry_dwell;
    const Epoch to_shelf = to_belt + config_.belt_dwell;
    all_shelved_by = std::max(all_shelved_by, to_shelf);
    queue.Schedule(enter, [this, case_tag, site] {
      world_.PlaceGroup(case_tag, site.entry, 0);
    });
    queue.Schedule(to_belt, [this, case_tag, site, to_belt] {
      world_.PlaceGroup(case_tag, site.belt, to_belt);
    });
    queue.Schedule(to_shelf, [this, case_tag, site, to_shelf] {
      LocationId shelf = site.shelves[static_cast<size_t>(
          rng_.NextBounded(site.shelves.size()))];
      world_.PlaceGroup(case_tag, shelf, to_shelf);
    });
  }

  // T5..T8: "when all 20 cases were placed on shelves, 3 items were moved
  // from one case to another and 1 item was simply removed".
  if (config_.spec.with_changes) {
    const Epoch change_at = all_shelved_by + 60;
    queue.Schedule(change_at, [this, change_at] {
      std::vector<TagId> pool = items_;
      rng_.Shuffle(pool);
      int moved = 0;
      size_t cursor = 0;
      while (moved < 3 && cursor < pool.size()) {
        TagId item = pool[cursor++];
        TagId from_case = world_.ContainerOf(item);
        TagId to_case = cases_[static_cast<size_t>(
            rng_.NextBounded(cases_.size()))];
        if (to_case == from_case) continue;
        world_.SetContainer(item, to_case, change_at);
        world_.Place(item, world_.LocationOf(to_case), change_at);
        changes_.push_back(LabChange{change_at, item, from_case, to_case});
        ++moved;
      }
      if (cursor < pool.size()) {
        TagId removed = pool[cursor];
        TagId from_case = world_.ContainerOf(removed);
        changes_.push_back(LabChange{change_at, removed, from_case, kNoTag});
        world_.RemoveGroup(removed, change_at);
      }
    });
  }

  // Near the end of the trace, cases file out through the exit reader.
  const Epoch exit_start = config_.horizon - 60;
  for (int c = 0; c < config_.num_cases; ++c) {
    TagId case_tag = cases_[static_cast<size_t>(c)];
    const Epoch at = exit_start + c % 50;
    queue.Schedule(at, [this, case_tag, site, at] {
      world_.PlaceGroup(case_tag, site.exit, at);
    });
  }

  CallbackSink sink([this](const RawReading& r) { trace_.Add(r); });
  for (Epoch t = 0; t <= config_.horizon; ++t) {
    queue.RunUntil(t);
    reader_sim.ScanEpoch(world_, t, &sink);
  }
  world_.Finish(config_.horizon);
  trace_.Seal();
}

}  // namespace rfid
