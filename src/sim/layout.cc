#include "sim/layout.h"

namespace rfid {

std::vector<LocationId> SiteLayout::AllLocations() const {
  std::vector<LocationId> locs;
  locs.reserve(shelves.size() + 3);
  locs.push_back(entry);
  locs.push_back(belt);
  for (LocationId s : shelves) locs.push_back(s);
  locs.push_back(exit);
  return locs;
}

Layout::Layout(int num_sites, int shelves_per_site) {
  LocationId next = 0;
  sites_.reserve(static_cast<size_t>(num_sites));
  for (SiteId s = 0; s < num_sites; ++s) {
    SiteLayout sl;
    sl.site = s;
    sl.entry = next++;
    sl.belt = next++;
    for (int i = 0; i < shelves_per_site; ++i) sl.shelves.push_back(next++);
    sl.exit = next++;
    sites_.push_back(std::move(sl));
  }
  num_locations_ = next;
  site_of_.resize(static_cast<size_t>(num_locations_));
  role_of_.resize(static_cast<size_t>(num_locations_));
  local_index_.resize(static_cast<size_t>(num_locations_));
  for (const SiteLayout& sl : sites_) {
    LocationId local = 0;
    for (LocationId loc : sl.AllLocations()) {
      site_of_[static_cast<size_t>(loc)] = sl.site;
      local_index_[static_cast<size_t>(loc)] = local++;
    }
    role_of_[static_cast<size_t>(sl.entry)] = ReaderRole::kEntry;
    role_of_[static_cast<size_t>(sl.belt)] = ReaderRole::kBelt;
    role_of_[static_cast<size_t>(sl.exit)] = ReaderRole::kExit;
    for (LocationId sh : sl.shelves) {
      role_of_[static_cast<size_t>(sh)] = ReaderRole::kShelf;
    }
  }
}

ReadRateModel Layout::BuildReadRateModel(const ReadRateParams& p,
                                         Rng& rng) const {
  ReadRateModel model = ReadRateModel::Uniform(num_locations_, p.main);
  for (const SiteLayout& sl : sites_) {
    for (LocationId loc : sl.AllLocations()) {
      double main =
          p.sample_main ? rng.NextUniform(p.main_lo, p.main_hi) : p.main;
      model.SetRate(loc, loc, main);
    }
    // "There is significant overlap between adjacent shelf readers: a shelf
    // reader can read objects in a nearby location with probability OR"
    // (Appendix C.1). Overlap applies in both directions per adjacent pair.
    for (size_t i = 0; i + 1 < sl.shelves.size(); ++i) {
      double fwd = p.sample_overlap
                       ? rng.NextUniform(p.overlap_lo, p.overlap_hi)
                       : p.overlap;
      double bwd = p.sample_overlap
                       ? rng.NextUniform(p.overlap_lo, p.overlap_hi)
                       : p.overlap;
      model.SetRate(sl.shelves[i], sl.shelves[i + 1], fwd);
      model.SetRate(sl.shelves[i + 1], sl.shelves[i], bwd);
    }
  }
  model.FinalizeLogTables();
  return model;
}

InterrogationSchedule Layout::BuildSchedule(const ScheduleParams& p,
                                            const ReadRateModel& model) const {
  InterrogationSchedule sched(num_locations_);
  for (const SiteLayout& sl : sites_) {
    sched.SetPeriodic(sl.entry, p.nonshelf_period, 0);
    sched.SetPeriodic(sl.belt, p.nonshelf_period, 0);
    sched.SetPeriodic(sl.exit, p.nonshelf_period, 0);
    if (p.mobile_dwell > 0) {
      // One mobile reader sweeps the aisle: shelf i is scanned during
      // [i*dwell, (i+1)*dwell) of every sweep cycle. The mobile reader
      // "reads every second and spends 10 seconds scanning each shelf"
      // (Section 5.3).
      const Epoch cycle =
          p.mobile_dwell * static_cast<Epoch>(sl.shelves.size());
      for (size_t i = 0; i < sl.shelves.size(); ++i) {
        sched.SetWindowed(sl.shelves[i], cycle,
                          p.mobile_dwell * static_cast<Epoch>(i),
                          p.mobile_dwell);
      }
    } else {
      for (LocationId sh : sl.shelves) {
        sched.SetPeriodic(sh, p.shelf_period, 0);
      }
    }
  }
  sched.Finalize(model);
  return sched;
}

ReadRateModel Layout::SiteModel(SiteId s, const ReadRateModel& global) const {
  const std::vector<LocationId> locs =
      sites_[static_cast<size_t>(s)].AllLocations();
  const int n = static_cast<int>(locs.size());
  std::vector<std::vector<double>> pi(static_cast<size_t>(n),
                                      std::vector<double>(
                                          static_cast<size_t>(n), 0.0));
  for (int r = 0; r < n; ++r) {
    for (int a = 0; a < n; ++a) {
      pi[static_cast<size_t>(r)][static_cast<size_t>(a)] = global.Rate(
          locs[static_cast<size_t>(r)], locs[static_cast<size_t>(a)]);
    }
  }
  Result<ReadRateModel> local = ReadRateModel::FromTable(pi);
  // FromTable only fails on malformed input, which cannot happen here.
  return std::move(local).value();
}

InterrogationSchedule Layout::SiteSchedule(
    SiteId s, const InterrogationSchedule& global,
    const ReadRateModel& local_model) const {
  const std::vector<LocationId> locs =
      sites_[static_cast<size_t>(s)].AllLocations();
  InterrogationSchedule local(static_cast<int>(locs.size()));
  // Recover each reader's pattern by probing one global cycle.
  const Epoch cycle = global.cycle();
  for (size_t i = 0; i < locs.size(); ++i) {
    // Find the active window within the cycle.
    Epoch start = -1, len = 0;
    for (Epoch t = 0; t < cycle; ++t) {
      if (global.ActiveAt(locs[i], t)) {
        if (start < 0) start = t;
        ++len;
      }
    }
    if (start < 0) continue;  // never active (not expected)
    if (len == cycle) {
      local.SetPeriodic(static_cast<LocationId>(i), 1, 0);
    } else {
      // Detect a short period (e.g. every 10) vs. a windowed schedule.
      bool contiguous = true;
      for (Epoch t = start; t < start + len; ++t) {
        if (!global.ActiveAt(locs[i], t)) {
          contiguous = false;
          break;
        }
      }
      if (contiguous && len > 1) {
        local.SetWindowed(static_cast<LocationId>(i), cycle, start, len);
      } else {
        // Periodic with period = cycle / number of active epochs.
        Epoch active = 0;
        for (Epoch t = 0; t < cycle; ++t) {
          if (global.ActiveAt(locs[i], t)) ++active;
        }
        local.SetPeriodic(static_cast<LocationId>(i),
                          active > 0 ? cycle / active : 1, start);
      }
    }
  }
  local.Finalize(local_model);
  return local;
}

}  // namespace rfid
