// A minimal discrete-event simulation engine.
//
// The paper's experimental workloads are produced "using CSIM to emulate an
// RFID-based enterprise supply chain" (Appendix C.1). CSIM is a commercial
// library; this engine is the from-scratch replacement. It provides exactly
// what the workload generator needs: a monotone event calendar with
// deterministic FIFO ordering among simultaneous events.
#ifndef RFID_SIM_DES_H_
#define RFID_SIM_DES_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace rfid {

/// Event calendar. Events fire in (time, insertion order). Callbacks may
/// schedule further events, including at the current time.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute epoch `t`. `t` must be >= now().
  void Schedule(Epoch t, Callback cb);

  /// Schedules `cb` at now() + delay (delay >= 0).
  void ScheduleAfter(Epoch delay, Callback cb) {
    Schedule(now_ + delay, std::move(cb));
  }

  /// Runs events with time <= horizon, in order. Returns the number of
  /// events executed. After the call, now() == horizon.
  int64_t RunUntil(Epoch horizon);

  /// Current simulation time.
  Epoch now() const { return now_; }

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    Epoch time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Epoch now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace rfid

#endif  // RFID_SIM_DES_H_
