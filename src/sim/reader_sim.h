// Reading generation: each epoch, every reader that is due per the
// interrogation schedule scans every tag in its read range and detects it
// with probability pi(reader, tag location) -- exactly the generative
// process of Section 3.1, driven by the simulated world state.
#ifndef RFID_SIM_READER_SIM_H_
#define RFID_SIM_READER_SIM_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "model/read_rate.h"
#include "model/schedule.h"
#include "sim/world.h"
#include "trace/reading.h"

namespace rfid {

/// Consumer of generated readings. Implementations materialize traces,
/// feed streaming pipelines, or route to per-site inference.
class ReadingSink {
 public:
  virtual ~ReadingSink() = default;
  virtual void OnReading(const RawReading& reading) = 0;
};

/// ReadingSink adapter around a callable.
class CallbackSink final : public ReadingSink {
 public:
  explicit CallbackSink(std::function<void(const RawReading&)> fn)
      : fn_(std::move(fn)) {}
  void OnReading(const RawReading& reading) override { fn_(reading); }

 private:
  std::function<void(const RawReading&)> fn_;
};

/// Generates readings for one epoch at a time.
class ReaderSim {
 public:
  /// `model` and `schedule` must outlive the ReaderSim.
  ReaderSim(const ReadRateModel* model, const InterrogationSchedule* schedule,
            uint64_t seed);

  /// Scans the world at epoch `t`, emitting readings to `sink`.
  /// Returns the number of readings generated.
  int64_t ScanEpoch(const World& world, Epoch t, ReadingSink* sink);

 private:
  const ReadRateModel* model_;
  const InterrogationSchedule* schedule_;
  /// Per reader: locations it can detect (rate above the floor), with rate.
  struct Coverage {
    LocationId loc;
    double rate;
  };
  std::vector<std::vector<Coverage>> coverage_;
  Rng rng_;
};

}  // namespace rfid

#endif  // RFID_SIM_READER_SIM_H_
