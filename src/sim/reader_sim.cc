#include "sim/reader_sim.h"

#include "common/log_space.h"

namespace rfid {

ReaderSim::ReaderSim(const ReadRateModel* model,
                     const InterrogationSchedule* schedule, uint64_t seed)
    : model_(model), schedule_(schedule), rng_(seed) {
  const int R = model_->num_locations();
  coverage_.resize(static_cast<size_t>(R));
  for (LocationId r = 0; r < R; ++r) {
    for (LocationId a = 0; a < R; ++a) {
      const double p = model_->Rate(r, a);
      if (p > kProbFloor * 2) {
        coverage_[static_cast<size_t>(r)].push_back(Coverage{a, p});
      }
    }
  }
}

int64_t ReaderSim::ScanEpoch(const World& world, Epoch t, ReadingSink* sink) {
  int64_t produced = 0;
  const int R = model_->num_locations();
  for (LocationId r = 0; r < R; ++r) {
    if (!schedule_->ActiveAt(r, t)) continue;
    for (const Coverage& cov : coverage_[static_cast<size_t>(r)]) {
      for (TagId tag : world.TagsAt(cov.loc)) {
        if (rng_.NextBernoulli(cov.rate)) {
          sink->OnReading(RawReading{t, tag, r});
          ++produced;
        }
      }
    }
  }
  return produced;
}

}  // namespace rfid
