#include "sim/world.h"

#include <algorithm>

namespace rfid {

namespace {
const std::vector<TagId> kEmptyTags;
}  // namespace

void World::DetachFromLocation(TagId tag) {
  TagState& st = state_.at(tag);
  if (st.loc == kNoLocation) return;
  auto& vec = at_location_[st.loc];
  vec.erase(std::remove(vec.begin(), vec.end(), tag), vec.end());
}

void World::AttachToLocation(TagId tag, LocationId loc) {
  TagState& st = state_.at(tag);
  st.loc = loc;
  if (loc != kNoLocation) at_location_[loc].push_back(tag);
}

void World::RecordTruth(TagId tag, Epoch t) {
  const TagState& st = state_.at(tag);
  truth_.Set(tag, t, st.loc, st.container);
}

void World::Place(TagId tag, LocationId loc, Epoch t) {
  DetachFromLocation(tag);
  AttachToLocation(tag, loc);
  RecordTruth(tag, t);
}

void World::PlaceGroup(TagId tag, LocationId loc, Epoch t) {
  Place(tag, loc, t);
  // Contents move with their container, recursively.
  for (TagId child : state_.at(tag).contents) {
    PlaceGroup(child, loc, t);
  }
}

void World::SetContainer(TagId child, TagId parent, Epoch t) {
  TagState& cs = state_.at(child);
  if (cs.container.valid()) {
    auto& siblings = state_.at(cs.container).contents;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), child),
                   siblings.end());
  }
  cs.container = parent;
  if (parent.valid()) state_.at(parent).contents.push_back(child);
  RecordTruth(child, t);
}

void World::RemoveGroup(TagId tag, Epoch t) {
  // Remove children first (copy: recursion mutates contents).
  std::vector<TagId> children = state_.at(tag).contents;
  for (TagId child : children) RemoveGroup(child, t);
  SetContainer(tag, kNoTag, t);
  DetachFromLocation(tag);
  TagState& st = state_.at(tag);
  st.loc = kNoLocation;
  truth_.Set(tag, t, kNoLocation, kNoTag);
  state_.erase(tag);
}

const std::vector<TagId>& World::TagsAt(LocationId loc) const {
  auto it = at_location_.find(loc);
  return it == at_location_.end() ? kEmptyTags : it->second;
}

LocationId World::LocationOf(TagId tag) const {
  auto it = state_.find(tag);
  return it == state_.end() ? kNoLocation : it->second.loc;
}

TagId World::ContainerOf(TagId tag) const {
  auto it = state_.find(tag);
  return it == state_.end() ? kNoTag : it->second.container;
}

const std::vector<TagId>& World::ContentsOf(TagId tag) const {
  auto it = state_.find(tag);
  return it == state_.end() ? kEmptyTags : it->second.contents;
}

std::vector<TagId> World::LiveTags() const {
  std::vector<TagId> tags;
  tags.reserve(state_.size());
  for (const auto& [tag, unused] : state_) tags.push_back(tag);
  std::sort(tags.begin(), tags.end());
  return tags;
}

}  // namespace rfid
