// The RFID-enabled supply-chain workload generator (Appendix C.1).
//
// Reproduces the paper's CSIM emulation: N warehouses arranged in a
// single-source DAG; pallets of cases of items injected at the source; per
// warehouse the flow entry door -> unpack -> conveyor belt (cases scanned
// one at a time) -> shelves (periodic scans, overlapping readers) -> repack
// -> exit door -> transit to a successor warehouse chosen round-robin.
// Anomalies move a random item to a different case at a configurable
// frequency (Table 2's FA parameter).
#ifndef RFID_SIM_SUPPLY_CHAIN_H_
#define RFID_SIM_SUPPLY_CHAIN_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/des.h"
#include "sim/layout.h"
#include "sim/reader_sim.h"
#include "sim/world.h"
#include "trace/trace.h"

namespace rfid {

/// All Table 2 parameters plus flow timings.
struct SupplyChainConfig {
  // Topology.
  int num_warehouses = 1;
  int shelves_per_warehouse = 8;
  /// DAG layer sizes; empty means a linear chain. Sum must equal
  /// num_warehouses and the first layer must be 1 (single source).
  std::vector<int> dag_layers;

  // Packaging (Table 2: fixed).
  int cases_per_pallet = 5;
  int items_per_case = 20;

  // Flow timings.
  Epoch pallet_injection_interval = 60;  ///< 1 pallet every 60 s (Table 2)
  int pallets_per_injection = 1;
  Epoch entry_dwell = 10;
  Epoch belt_time_per_case = 5;
  Epoch shelf_stay = 600;
  Epoch exit_dwell = 10;
  Epoch transit_time = 60;
  /// Stop creating new pallets after this many (-1 = unlimited).
  int max_pallets = -1;

  // Readers.
  ReadRateParams read_rate;
  ScheduleParams schedule;

  // Anomalies: every `anomaly_interval` epochs per warehouse, one random
  // item is moved into a different case (0 disables).
  Epoch anomaly_interval = 0;

  // Run control.
  Epoch horizon = 1500;
  uint64_t seed = 1;
};

/// A pallet group crossing from one warehouse to another; the trigger for
/// inference/query state migration in the distributed system.
struct ObjectTransfer {
  Epoch depart = 0;
  Epoch arrive = 0;
  SiteId from = kNoSite;
  SiteId to = kNoSite;  ///< kNoSite when leaving the supply chain
  TagId pallet;
  std::vector<TagId> cases;
  std::vector<TagId> items;
};

/// A ground-truth anomaly (item moved between cases), for scoring
/// change-point detection.
struct AnomalyRecord {
  Epoch time = 0;
  TagId item;
  TagId from_case;
  TagId to_case;
};

/// Runs the workload and materializes per-site traces, ground truth,
/// transfers, and anomalies.
class SupplyChainSim {
 public:
  explicit SupplyChainSim(SupplyChainConfig config);

  /// Runs the full simulation. If `sink` is null, readings are materialized
  /// into per-site traces (see site_trace). Calling Run twice is an error.
  void Run(ReadingSink* sink = nullptr);

  const SupplyChainConfig& config() const { return config_; }
  const Layout& layout() const { return layout_; }
  const ReadRateModel& model() const { return model_; }
  const InterrogationSchedule& schedule() const { return schedule_; }
  const World& world() const { return world_; }
  const GroundTruth& truth() const { return world_.truth(); }
  const std::vector<ObjectTransfer>& transfers() const { return transfers_; }
  const std::vector<AnomalyRecord>& anomalies() const { return anomalies_; }

  /// Materialized trace of one site (sealed). Only valid when Run was called
  /// without an external sink.
  const Trace& site_trace(SiteId s) const {
    return site_traces_[static_cast<size_t>(s)];
  }

  /// Union of all site traces (sealed), for centralized processing.
  Trace MergedTrace() const;

  /// All case / item tags ever created, the containment-inference partition.
  const std::vector<TagId>& all_cases() const { return all_cases_; }
  const std::vector<TagId>& all_items() const { return all_items_; }
  const std::vector<TagId>& all_pallets() const { return all_pallets_; }

  int64_t total_readings() const { return total_readings_; }

 private:
  struct PalletPlan {
    TagId pallet;
    std::vector<TagId> cases;
    SiteId site = 0;
    int cases_done = 0;
    Epoch repack_ready = 0;
  };

  void ScheduleInjection(Epoch t);
  void ArriveAtWarehouse(std::shared_ptr<PalletPlan> plan, SiteId site);
  void Unpack(std::shared_ptr<PalletPlan> plan);
  void CaseDoneOnShelf(std::shared_ptr<PalletPlan> plan, TagId case_tag);
  void Repack(std::shared_ptr<PalletPlan> plan);
  void Dispatch(std::shared_ptr<PalletPlan> plan);
  void ScheduleAnomaly(SiteId site, Epoch t);
  void InjectAnomaly(SiteId site);

  SupplyChainConfig config_;
  Layout layout_;
  ReadRateModel model_;
  InterrogationSchedule schedule_;
  World world_;
  EventQueue queue_;
  Rng rng_;
  std::unique_ptr<ReaderSim> reader_sim_;

  std::vector<std::vector<SiteId>> successors_;
  std::vector<size_t> dispatch_rr_;  ///< round-robin cursor per site

  std::vector<Trace> site_traces_;
  std::vector<ObjectTransfer> transfers_;
  std::vector<AnomalyRecord> anomalies_;
  std::vector<TagId> all_cases_;
  std::vector<TagId> all_items_;
  std::vector<TagId> all_pallets_;
  int pallets_created_ = 0;
  int64_t total_readings_ = 0;
  bool ran_ = false;
};

}  // namespace rfid

#endif  // RFID_SIM_SUPPLY_CHAIN_H_
