// Mutable state of the simulated physical world: which tags exist, where
// each one is, and what contains what. Every mutation is recorded into the
// GroundTruth store so inference output can be scored.
#ifndef RFID_SIM_WORLD_H_
#define RFID_SIM_WORLD_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "trace/ground_truth.h"

namespace rfid {

/// World state. Containment is a forest: item -> case -> pallet.
class World {
 public:
  World() = default;

  /// Creates fresh tags with globally unique serials.
  TagId NewPallet() { return Register(TagId::Pallet(next_pallet_++)); }
  TagId NewCase() { return Register(TagId::Case(next_case_++)); }
  TagId NewItem() { return Register(TagId::Item(next_item_++)); }

  /// Moves a single tag to `loc` at epoch `t` (contents do not follow).
  void Place(TagId tag, LocationId loc, Epoch t);

  /// Moves `tag` and everything transitively inside it to `loc`.
  void PlaceGroup(TagId tag, LocationId loc, Epoch t);

  /// Reparents `child` into `parent` (kNoTag to un-contain) at epoch `t`.
  /// The child's location is unchanged; call PlaceGroup/Place separately if
  /// it physically moves.
  void SetContainer(TagId child, TagId parent, Epoch t);

  /// Removes `tag` (and its contents) from the world at epoch `t`; its
  /// ground-truth intervals are closed.
  void RemoveGroup(TagId tag, Epoch t);

  /// Tags physically at `loc` (including contained tags).
  const std::vector<TagId>& TagsAt(LocationId loc) const;

  LocationId LocationOf(TagId tag) const;
  TagId ContainerOf(TagId tag) const;
  const std::vector<TagId>& ContentsOf(TagId tag) const;
  bool Exists(TagId tag) const { return state_.contains(tag); }

  /// All live tags.
  std::vector<TagId> LiveTags() const;

  GroundTruth& truth() { return truth_; }
  const GroundTruth& truth() const { return truth_; }

  /// Closes ground-truth intervals at the end of the simulation.
  void Finish(Epoch end) { truth_.Finish(end); }

 private:
  struct TagState {
    LocationId loc = kNoLocation;
    TagId container;
    std::vector<TagId> contents;
  };

  TagId Register(TagId tag) {
    state_.emplace(tag, TagState{});
    return tag;
  }

  void DetachFromLocation(TagId tag);
  void AttachToLocation(TagId tag, LocationId loc);
  void RecordTruth(TagId tag, Epoch t);

  std::unordered_map<TagId, TagState> state_;
  std::unordered_map<LocationId, std::vector<TagId>> at_location_;
  GroundTruth truth_;
  uint64_t next_pallet_ = 0;
  uint64_t next_case_ = 0;
  uint64_t next_item_ = 0;
};

}  // namespace rfid

#endif  // RFID_SIM_WORLD_H_
