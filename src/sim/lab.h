// Emulation of the paper's physical lab RFID deployment (Section 5.2,
// Appendix C.2): 7 readers (1 entry, 1 belt, 4 shelf, 1 exit), 20 cases of
// 5 items each, and the eight traces T1..T8 with varied read rates (metal
// bar noise lowers RR to 0.7), shelf-reader overlap, and containment
// changes ("3 items moved from one case to another and 1 item removed",
// affecting 35% of the cases).
//
// Substitution note (DESIGN.md section 4): we do not have the ThingMagic /
// Alien hardware; the traces are regenerated from the same statistical
// characteristics Appendix C.2 specifies. The authors verified tag
// orientation had no effect with their antennas, so RR/OR capture the
// trace-relevant physics.
#ifndef RFID_SIM_LAB_H_
#define RFID_SIM_LAB_H_

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/layout.h"
#include "sim/reader_sim.h"
#include "sim/world.h"
#include "trace/trace.h"

namespace rfid {

/// Parameters of one lab trace.
struct LabTraceSpec {
  double read_rate = 0.85;   ///< average RR across readers
  double overlap = 0.25;     ///< OR between adjacent shelf readers
  bool with_changes = false; ///< T5..T8 inject containment changes
};

/// The Appendix C.2 definition of T1..T8 (index 1-based).
LabTraceSpec LabSpecFor(int trace_index);

/// Fixed flow timings of the lab run.
struct LabConfig {
  int num_cases = 20;
  int items_per_case = 5;
  Epoch case_arrival_spacing = 15;  ///< cases enter the dock staggered
  Epoch entry_dwell = 5;   ///< "5 interrogations from each nonshelf reader"
  Epoch belt_dwell = 5;
  Epoch horizon = 1500;    ///< covers "inference every 5 min, 10-min history"
  uint64_t seed = 7;
  LabTraceSpec spec;
};

/// An injected containment change (ground truth for scoring T5..T8).
struct LabChange {
  Epoch time = 0;
  TagId item;
  TagId from_case;
  TagId to_case;  ///< kNoTag when the item was removed outright
};

/// Generates one lab trace.
class LabDeployment {
 public:
  explicit LabDeployment(LabConfig config);

  void Run();

  const Layout& layout() const { return layout_; }
  const ReadRateModel& model() const { return model_; }
  const InterrogationSchedule& schedule() const { return schedule_; }
  const Trace& trace() const { return trace_; }
  const GroundTruth& truth() const { return world_.truth(); }
  const std::vector<LabChange>& changes() const { return changes_; }
  const std::vector<TagId>& cases() const { return cases_; }
  const std::vector<TagId>& items() const { return items_; }

 private:
  LabConfig config_;
  Layout layout_;
  ReadRateModel model_;
  InterrogationSchedule schedule_;
  World world_;
  Rng rng_;
  Trace trace_;
  std::vector<LabChange> changes_;
  std::vector<TagId> cases_;
  std::vector<TagId> items_;
  bool ran_ = false;
};

}  // namespace rfid

#endif  // RFID_SIM_LAB_H_
