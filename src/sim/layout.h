// Physical layout of a multi-site deployment: reader locations per site
// (entry door, conveyor belt, shelves, exit door) with a global numbering,
// and factory methods for the matching read-rate model and interrogation
// schedule (Table 2 parameters).
#ifndef RFID_SIM_LAYOUT_H_
#define RFID_SIM_LAYOUT_H_

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "model/read_rate.h"
#include "model/schedule.h"

namespace rfid {

/// Reader roles within a site; belt/entry/exit are "non-shelf" readers.
enum class ReaderRole : uint8_t { kEntry, kBelt, kShelf, kExit };

/// One site's reader locations (global LocationIds).
struct SiteLayout {
  SiteId site = 0;
  LocationId entry = kNoLocation;
  LocationId belt = kNoLocation;
  LocationId exit = kNoLocation;
  std::vector<LocationId> shelves;

  /// All locations of the site in id order.
  std::vector<LocationId> AllLocations() const;
};

/// Read-rate parameters used when building a model from a layout.
struct ReadRateParams {
  /// Main read rate RR: probability a reader detects a tag at its own
  /// location. If `sample_main` is set, each reader's rate is drawn
  /// uniformly from [main_lo, main_hi] instead (paper default [0.6, 1]).
  double main = 0.8;
  bool sample_main = false;
  double main_lo = 0.6;
  double main_hi = 1.0;

  /// Overlap rate OR: probability a shelf reader detects a tag at an
  /// adjacent shelf. If `sample_overlap`, drawn from [overlap_lo,
  /// overlap_hi] per reader pair (paper default [0.2, 0.8]).
  double overlap = 0.5;
  bool sample_overlap = false;
  double overlap_lo = 0.2;
  double overlap_hi = 0.8;
};

/// Interrogation-frequency parameters (Table 2).
struct ScheduleParams {
  Epoch nonshelf_period = 1;  ///< entry/belt/exit read every second
  Epoch shelf_period = 10;    ///< shelf readers read every 10 seconds
  /// Mobile deployment (Section 5.3): one mobile reader per site sweeps the
  /// shelves, spending `mobile_dwell` epochs at each; static shelf readers
  /// are replaced. 0 disables.
  Epoch mobile_dwell = 0;
};

/// Global layout over `num_sites` sites, each with `shelves_per_site`
/// shelves. Locations are numbered contiguously site by site.
class Layout {
 public:
  Layout(int num_sites, int shelves_per_site);

  int num_sites() const { return static_cast<int>(sites_.size()); }
  int num_locations() const { return num_locations_; }
  const SiteLayout& site(SiteId s) const {
    return sites_[static_cast<size_t>(s)];
  }

  SiteId SiteOfLocation(LocationId loc) const {
    return site_of_[static_cast<size_t>(loc)];
  }
  ReaderRole RoleOfLocation(LocationId loc) const {
    return role_of_[static_cast<size_t>(loc)];
  }

  /// Builds the global read-rate table. Deterministic given `rng` state.
  ReadRateModel BuildReadRateModel(const ReadRateParams& p, Rng& rng) const;

  /// Builds the global interrogation schedule.
  InterrogationSchedule BuildSchedule(const ScheduleParams& p,
                                      const ReadRateModel& model) const;

  /// Extracts the site-local read-rate model: rows/cols restricted to the
  /// site's locations (cross-site rates are zero by construction). Local
  /// location i corresponds to global id site(s).AllLocations()[i].
  ReadRateModel SiteModel(SiteId s, const ReadRateModel& global) const;

  /// Extracts the matching site-local schedule.
  InterrogationSchedule SiteSchedule(SiteId s,
                                     const InterrogationSchedule& global,
                                     const ReadRateModel& local_model) const;

  /// Maps a global location id to the site-local index used by SiteModel.
  LocationId GlobalToLocal(LocationId global_loc) const {
    return local_index_[static_cast<size_t>(global_loc)];
  }
  /// Maps (site, local index) back to the global location id.
  LocationId LocalToGlobal(SiteId s, LocationId local) const {
    return sites_[static_cast<size_t>(s)]
        .AllLocations()[static_cast<size_t>(local)];
  }

 private:
  std::vector<SiteLayout> sites_;
  std::vector<SiteId> site_of_;
  std::vector<ReaderRole> role_of_;
  std::vector<LocationId> local_index_;
  int num_locations_ = 0;
};

}  // namespace rfid

#endif  // RFID_SIM_LAYOUT_H_
