#include "sim/des.h"

namespace rfid {

void EventQueue::Schedule(Epoch t, Callback cb) {
  if (t < now_) t = now_;  // clamp: the past is immutable
  heap_.push(Entry{t, next_seq_++, std::move(cb)});
}

int64_t EventQueue::RunUntil(Epoch horizon) {
  int64_t executed = 0;
  while (!heap_.empty() && heap_.top().time <= horizon) {
    // Copy out before pop so the callback may schedule new events.
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.time;
    e.cb();
    ++executed;
  }
  now_ = horizon;
  return executed;
}

}  // namespace rfid
