// Environmental sensor simulation: a temperature stream per reader
// location, the second input of hybrid queries like Q1 ("combines sensor
// streams (e.g., temperature) and RFID streams").
#ifndef RFID_SIM_SENSORS_H_
#define RFID_SIM_SENSORS_H_

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "trace/reading.h"

namespace rfid {

struct SensorConfig {
  /// One sample per location every `period` epochs.
  Epoch period = 10;
  /// Room temperature at ordinary locations (deg C).
  double ambient = 20.0;
  /// Temperature inside cold rooms.
  double cold_temp = -10.0;
  /// Gaussian-ish jitter amplitude (uniform +/- noise).
  double noise = 0.5;
  /// Locations that are cold rooms (e.g. refrigerated shelves).
  std::vector<LocationId> cold_locations;
};

/// Generates the full sensor stream for [0, horizon], time-ordered.
std::vector<SensorReading> GenerateSensorStream(const SensorConfig& config,
                                                int num_locations,
                                                Epoch horizon, Rng& rng);

}  // namespace rfid

#endif  // RFID_SIM_SENSORS_H_
