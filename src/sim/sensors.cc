#include "sim/sensors.h"

#include <algorithm>

namespace rfid {

std::vector<SensorReading> GenerateSensorStream(const SensorConfig& config,
                                                int num_locations,
                                                Epoch horizon, Rng& rng) {
  std::vector<SensorReading> out;
  std::vector<bool> cold(static_cast<size_t>(num_locations), false);
  for (LocationId loc : config.cold_locations) {
    if (loc >= 0 && loc < num_locations) {
      cold[static_cast<size_t>(loc)] = true;
    }
  }
  for (Epoch t = 0; t <= horizon; t += config.period) {
    for (LocationId loc = 0; loc < num_locations; ++loc) {
      const double base =
          cold[static_cast<size_t>(loc)] ? config.cold_temp : config.ambient;
      const double jitter = rng.NextUniform(-config.noise, config.noise);
      out.push_back(SensorReading{t, loc, base + jitter});
    }
  }
  return out;
}

}  // namespace rfid
