// Tests for the fault-injection + reliability layer (dist/network.h) and
// the crash/recovery path of the distributed replay (dist/distributed.h):
// seeded deterministic fault fates, exactly-once delivery under drop/
// duplicate/reorder/corrupt faults, partition healing, wire-level CRC
// drops on the socket backend, bit-identical faulty replays across
// backends and thread counts, and a mid-window site crash whose recovery
// converges back to the uncrashed run at fault rate 0.
#include <gtest/gtest.h>

#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/serde.h"
#include "dist/distributed.h"
#include "dist/frame.h"
#include "dist/network.h"
#include "dist/transport_socket.h"
#include "sim/sensors.h"
#include "sim/supply_chain.h"

namespace rfid {
namespace {

// ---- FaultModel ----

TEST(FaultModelTest, FateIsAPureFunctionOfSeedSeqAttempt) {
  FaultModel m;
  m.drop = 0.2;
  m.duplicate = 0.1;
  m.reorder = 0.3;
  m.corrupt = 0.05;
  m.seed = 99;
  for (uint64_t seq = 0; seq < 64; ++seq) {
    for (uint32_t attempt = 0; attempt < 4; ++attempt) {
      const FrameFate a = m.FateOf(seq, attempt);
      const FrameFate b = m.FateOf(seq, attempt);
      EXPECT_EQ(a.drop, b.drop);
      EXPECT_EQ(a.corrupt, b.corrupt);
      EXPECT_EQ(a.duplicate, b.duplicate);
      EXPECT_EQ(a.extra_delay, b.extra_delay);
      EXPECT_EQ(a.corrupt_offset, b.corrupt_offset);
      EXPECT_EQ(a.corrupt_mask, b.corrupt_mask);
    }
  }
  // The empirical drop rate over many sequences tracks the probability
  // (loose bounds; the point is the stream is not degenerate).
  int drops = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (m.FateOf(static_cast<uint64_t>(i), 0).drop) ++drops;
  }
  const double rate = static_cast<double>(drops) / kN;
  EXPECT_GT(rate, 0.15);
  EXPECT_LT(rate, 0.25);
  // A retransmission attempt redraws an independent fate.
  bool any_differs = false;
  for (uint64_t seq = 0; seq < 256 && !any_differs; ++seq) {
    any_differs = m.FateOf(seq, 0).drop != m.FateOf(seq, 1).drop;
  }
  EXPECT_TRUE(any_differs);
}

TEST(FaultModelTest, PartitionWindowsAndWildcards) {
  FaultModel m;
  m.partitions.push_back(LinkPartition{0, 1, 100, 200, true});
  EXPECT_FALSE(m.Partitioned(0, 1, 99));
  EXPECT_TRUE(m.Partitioned(0, 1, 100));
  EXPECT_TRUE(m.Partitioned(1, 0, 150));  // bidirectional
  EXPECT_FALSE(m.Partitioned(0, 1, 200));  // half-open window
  EXPECT_FALSE(m.Partitioned(0, 2, 150));
  EXPECT_TRUE(m.enabled());

  FaultModel iso;  // wildcard: isolate site 2 from everyone
  iso.partitions.push_back(LinkPartition{2, kNoSite, 0, 50, true});
  EXPECT_TRUE(iso.Partitioned(2, 0, 10));
  EXPECT_TRUE(iso.Partitioned(1, 2, 10));
  EXPECT_FALSE(iso.Partitioned(0, 1, 10));
}

TEST(FaultModelTest, FromEnvParsesKnobs) {
  setenv("RFID_FAULTS", "drop=0.05,dup=0.01,reorder=0.02,corrupt=0.001,"
                        "seed=7,delay_min=2,delay_max=5",
         /*overwrite=*/1);
  const FaultModel m = FaultModelFromEnv();
  unsetenv("RFID_FAULTS");
  EXPECT_DOUBLE_EQ(m.drop, 0.05);
  EXPECT_DOUBLE_EQ(m.duplicate, 0.01);
  EXPECT_DOUBLE_EQ(m.reorder, 0.02);
  EXPECT_DOUBLE_EQ(m.corrupt, 0.001);
  EXPECT_EQ(m.seed, 7u);
  EXPECT_EQ(m.reorder_delay_min, 2);
  EXPECT_EQ(m.reorder_delay_max, 5);
  EXPECT_TRUE(m.enabled());
  EXPECT_FALSE(FaultModelFromEnv().enabled());  // unset -> no faults
}

// ---- Reliability protocol, driven directly against a Network ----

/// Delivery log for one receiving site: payload index -> times delivered.
struct DeliveryLog {
  std::map<int, int> count;
  void Attach(Network* net, SiteId site) {
    net->RegisterHandler(site, [this](SiteId, MessageKind,
                                      const std::vector<uint8_t>& payload) {
      BufferReader r(payload);
      uint64_t idx = 0;
      ASSERT_TRUE(r.GetVarint(&idx).ok());
      ++count[static_cast<int>(idx)];
    });
  }
};

std::vector<uint8_t> IndexedPayload(int i) {
  BufferWriter w;
  w.PutVarint(static_cast<uint64_t>(i));
  // Pad so frames are non-trivial on the wire.
  for (int b = 0; b < 16; ++b) w.PutU8(static_cast<uint8_t>(b));
  return w.Release();
}

/// Ticks the reliability layer and drains every site until the protocol
/// reports no outstanding work (or the iteration bound trips).
void PumpUntilQuiet(Network* net, SiteId num_sites, Epoch start, Epoch step,
                    int max_iters = 4000) {
  Epoch t = start;
  int idle = 0;
  for (int i = 0; i < max_iters && idle < 3; ++i) {
    t += step;
    net->AdvanceClock(t);
    net->TickReliability(t);
    int delivered = 0;
    for (SiteId s = 0; s < num_sites; ++s) {
      delivered += net->DeliverDue(s, t);
    }
    idle = delivered == 0 && !net->HasReliabilityWork() ? idle + 1 : 0;
  }
}

NetworkOptions QuietFaultOptions() {
  NetworkOptions o;
  o.faults = FaultModel{};  // ignore any ambient RFID_FAULTS
  return o;
}

TEST(ReliabilityTest, ExactlyOnceUnderHeavyDropAndReorder) {
  Network net;
  NetworkOptions o = QuietFaultOptions();
  o.faults.drop = 0.3;
  o.faults.duplicate = 0.05;
  o.faults.reorder = 0.2;
  o.faults.seed = 4242;
  o.reliability.rto = 4;
  net.Configure(o);
  EXPECT_TRUE(net.reliable());  // kAuto + lossy faults -> protocol on

  DeliveryLog log;
  log.Attach(&net, 1);
  const int kN = 200;
  for (int i = 0; i < kN; ++i) {
    net.AdvanceClock(i / 4);
    net.Send(0, 1, MessageKind::kInferenceState, IndexedPayload(i));
  }
  PumpUntilQuiet(&net, 2, kN / 4, o.reliability.rto);

  ASSERT_EQ(log.count.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(log.count[i], 1) << "payload " << i;
  }
  EXPECT_TRUE(net.AllReliableDelivered());
  EXPECT_GT(net.fault_stats().drops, 0);
  EXPECT_GT(net.reliable_stats().retransmits, 0);
  EXPECT_GT(net.BytesOfKind(MessageKind::kAck), 0);
  // The reliability tax is visible in the accounting: more wire bytes than
  // the kN clean transmissions alone.
  EXPECT_GT(net.reliable_stats().retransmit_bytes, 0);
}

TEST(ReliabilityTest, DuplicatesAreSuppressed) {
  Network net;
  NetworkOptions o = QuietFaultOptions();
  o.faults.duplicate = 1.0;
  o.faults.reorder_delay_min = 0;
  o.faults.reorder_delay_max = 0;
  o.faults.seed = 7;
  net.Configure(o);

  DeliveryLog log;
  log.Attach(&net, 1);
  const int kN = 50;
  net.AdvanceClock(0);
  for (int i = 0; i < kN; ++i) {
    net.Send(0, 1, MessageKind::kQueryState, IndexedPayload(i));
  }
  net.DeliverDue(1, 0);
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(log.count[i], 1) << "payload " << i;
  }
  // Every data frame was transmitted twice (acks draw duplicate fates too,
  // so the fate counter can exceed kN); exactly the kN redundant data
  // copies were suppressed by the receiver's dedup state.
  EXPECT_GE(net.fault_stats().duplicates, kN);
  EXPECT_EQ(net.reliable_stats().dup_drops, kN);
  PumpUntilQuiet(&net, 2, 0, o.reliability.rto);
  EXPECT_TRUE(net.AllReliableDelivered());
}

TEST(ReliabilityTest, ReorderedFramesDeliverExactlyOnce) {
  Network net;
  NetworkOptions o = QuietFaultOptions();
  o.faults.reorder = 1.0;
  o.faults.reorder_delay_min = 1;
  o.faults.reorder_delay_max = 8;
  o.faults.seed = 11;
  o.reliability.rto = 16;  // roomy: late frames are not lost frames
  net.Configure(o);

  DeliveryLog log;
  log.Attach(&net, 1);
  const int kN = 80;
  net.AdvanceClock(0);
  for (int i = 0; i < kN; ++i) {
    net.Send(0, 1, MessageKind::kInferenceState, IndexedPayload(i));
  }
  PumpUntilQuiet(&net, 2, 0, 1);
  ASSERT_EQ(log.count.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(log.count[i], 1) << "payload " << i;
  }
  EXPECT_GE(net.fault_stats().reorders, kN);
  EXPECT_TRUE(net.AllReliableDelivered());
}

TEST(ReliabilityTest, CorruptFramesAreDroppedAndRetransmitted) {
  for (const TransportKind kind :
       {TransportKind::kInProcess, TransportKind::kSocket}) {
    Network net;
    net.ConfigureTransport(kind, 2);
    NetworkOptions o = QuietFaultOptions();
    o.faults.corrupt = 0.5;
    o.faults.seed = 31;
    o.reliability.rto = 4;
    net.Configure(o);

    DeliveryLog log;
    log.Attach(&net, 1);
    const int kN = 60;
    net.AdvanceClock(0);
    for (int i = 0; i < kN; ++i) {
      net.Send(0, 1, MessageKind::kInferenceState, IndexedPayload(i));
    }
    PumpUntilQuiet(&net, 2, 0, o.reliability.rto);
    ASSERT_EQ(log.count.size(), static_cast<size_t>(kN)) << ToString(kind);
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(log.count[i], 1) << ToString(kind) << " payload " << i;
    }
    EXPECT_GT(net.fault_stats().corrupts, 0) << ToString(kind);
    EXPECT_GT(net.reliable_stats().retransmits, 0) << ToString(kind);
    EXPECT_TRUE(net.AllReliableDelivered()) << ToString(kind);
    if (kind == TransportKind::kSocket) {
      // The socket backend really wrote the damaged bytes; the receiving
      // pump's CRC check dropped them and kept the connection alive.
      const auto& st = static_cast<const SocketTransport&>(net.transport());
      EXPECT_GT(st.crc_drops(), 0);
    }
  }
}

TEST(ReliabilityTest, PartitionHealsAndBackloggedFramesDeliver) {
  Network net;
  NetworkOptions o = QuietFaultOptions();
  o.faults.partitions.push_back(LinkPartition{0, 1, 0, 50, true});
  o.reliability.rto = 8;
  net.Configure(o);
  EXPECT_TRUE(net.reliable());  // a partition alone can lose frames

  DeliveryLog log;
  log.Attach(&net, 1);
  const int kN = 30;
  net.AdvanceClock(10);  // inside the partition window
  for (int i = 0; i < kN; ++i) {
    net.Send(0, 1, MessageKind::kInferenceState, IndexedPayload(i));
  }
  net.DeliverDue(1, 10);
  EXPECT_TRUE(log.count.empty());
  EXPECT_GT(net.fault_stats().partition_drops, 0);

  PumpUntilQuiet(&net, 2, 50, o.reliability.rto);  // after the heal
  ASSERT_EQ(log.count.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(log.count[i], 1) << "payload " << i;
  }
  EXPECT_TRUE(net.AllReliableDelivered());
}

TEST(ReliabilityTest, WindowBoundsInFlightFrames) {
  Network net;
  NetworkOptions o = QuietFaultOptions();
  o.reliability.mode = ReliabilityOptions::Mode::kOn;
  o.reliability.window = 4;
  o.reliability.rto = 8;
  net.Configure(o);
  EXPECT_TRUE(net.reliable());

  DeliveryLog log;
  log.Attach(&net, 1);
  const int kN = 10;
  net.AdvanceClock(0);
  for (int i = 0; i < kN; ++i) {
    net.Send(0, 1, MessageKind::kInferenceState, IndexedPayload(i));
  }
  // Only a window's worth hit the wire; the rest wait in the sender.
  EXPECT_EQ(net.in_flight_messages(), 4);
  PumpUntilQuiet(&net, 2, 0, 1);
  ASSERT_EQ(log.count.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(log.count[i], 1) << "payload " << i;
  }
  EXPECT_TRUE(net.AllReliableDelivered());
}

TEST(ReliabilityTest, ModeOffKeepsTheLossyFabric) {
  Network net;
  NetworkOptions o = QuietFaultOptions();
  o.faults.drop = 1.0;
  o.reliability.mode = ReliabilityOptions::Mode::kOff;
  net.Configure(o);
  EXPECT_FALSE(net.reliable());

  DeliveryLog log;
  log.Attach(&net, 1);
  net.AdvanceClock(0);
  for (int i = 0; i < 20; ++i) {
    net.Send(0, 1, MessageKind::kInferenceState, IndexedPayload(i));
  }
  PumpUntilQuiet(&net, 2, 0, 4);
  EXPECT_TRUE(log.count.empty());  // everything lost, nothing recovered
  EXPECT_EQ(net.fault_stats().drops, 20);
  EXPECT_EQ(net.reliable_stats().retransmits, 0);
  EXPECT_EQ(net.BytesOfKind(MessageKind::kAck), 0);
}

// ---- Wire-level corruption against the socket backend ----

TEST(SocketWireTest, CrcMismatchDropsFrameAndKeepsConnectionAlive) {
  SocketTransport transport(2);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  const std::string name = transport.ListenerAddressForTest(1);
  memcpy(addr.sun_path + 1, name.data(), name.size());
  const socklen_t len = static_cast<socklen_t>(
      offsetof(sockaddr_un, sun_path) + 1 + name.size());
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), len), 0);

  auto frame = [](uint64_t seq) {
    Frame f;
    f.kind = MessageKind::kInferenceState;
    f.from = 0;
    f.to = 1;
    f.send_epoch = 5;
    f.seq = seq;
    f.link_seq = seq;
    f.payload = {10, 20, 30, 40, 50};
    return f;
  };
  // Three frames on one connection; the middle one's payload is flipped on
  // the wire, exactly what a hostile link would do.
  std::vector<uint8_t> wire = EncodeFrameToBytes(frame(1));
  std::vector<uint8_t> bad = EncodeFrameToBytes(frame(2));
  bad[kFrameHeaderBytes + 2] ^= 0x40;
  wire.insert(wire.end(), bad.begin(), bad.end());
  const std::vector<uint8_t> good = EncodeFrameToBytes(frame(3));
  wire.insert(wire.end(), good.begin(), good.end());
  ASSERT_EQ(write(fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));

  std::vector<Frame> out;
  transport.Drain(1, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[1].seq, 3u);
  EXPECT_EQ(transport.crc_drops(), 1);

  // The connection survived: later frames keep flowing.
  const std::vector<uint8_t> more = EncodeFrameToBytes(frame(4));
  ASSERT_EQ(write(fd, more.data(), more.size()),
            static_cast<ssize_t>(more.size()));
  out.clear();
  transport.Drain(1, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 4u);
  EXPECT_EQ(transport.crc_drops(), 1);
  close(fd);
}

// ---- Faulty replays: determinism and crash/recovery ----

SupplyChainConfig ReplayConfig() {
  SupplyChainConfig cfg;
  cfg.num_warehouses = 4;
  cfg.shelves_per_warehouse = 4;
  cfg.cases_per_pallet = 2;
  cfg.items_per_case = 6;
  cfg.shelf_stay = 300;
  cfg.transit_time = 30;
  cfg.horizon = 1500;
  cfg.seed = 33;
  return cfg;
}

DistributedOptions ReplayOptions(int num_threads) {
  DistributedOptions opts;
  opts.site.migration = MigrationMode::kFullReadings;
  opts.site.streaming.inference_period = 300;
  opts.site.streaming.recent_history = 400;
  opts.attach_queries = true;
  opts.q1 = ExposureQuery::Q1Config(/*duration=*/300);
  opts.q1.max_gap = 400;
  opts.q2 = ExposureQuery::Q2Config(/*duration=*/300);
  opts.q2.max_gap = 400;
  opts.num_threads = num_threads;
  opts.network.faults = FaultModel{};  // explicit; never ambient env
  return opts;
}

FaultModel ReplayFaults() {
  FaultModel f;
  f.drop = 0.05;
  f.duplicate = 0.01;
  f.reorder = 0.02;
  f.corrupt = 0.002;
  f.seed = 1234;
  return f;
}

struct ReplayFixture {
  ReplayFixture() : sim(ReplayConfig()) {
    sim.Run();
    for (TagId item : sim.all_items()) {
      catalog.RegisterProduct(item,
                              ProductInfo{"frozen_food", true, false, false});
    }
    for (TagId c : sim.all_cases()) {
      catalog.RegisterContainer(c, ContainerInfo{ContainerClass::kPlain});
    }
    SensorConfig scfg;
    Rng rng(5);
    sensors = GenerateSensorStream(scfg, sim.layout().num_locations(),
                                   sim.config().horizon, rng);
  }
  SupplyChainSim sim;
  ProductCatalog catalog;
  std::vector<SensorReading> sensors;
};

void ExpectSameAlerts(const std::vector<ExposureAlert>& a,
                      const std::vector<ExposureAlert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tag, b[i].tag) << "alert " << i;
    EXPECT_EQ(a[i].first_time, b[i].first_time) << "alert " << i;
    EXPECT_EQ(a[i].last_time, b[i].last_time) << "alert " << i;
    EXPECT_EQ(a[i].n_events, b[i].n_events) << "alert " << i;
  }
}

/// Results + accounting bit-identity (the executor_test contract, extended
/// with the fault/reliability counters).
void ExpectBitIdentical(const DistributedSystem& reference,
                        const DistributedSystem& candidate,
                        const SupplyChainSim& sim) {
  EXPECT_EQ(reference.snapshots(), candidate.snapshots());
  ExpectSameAlerts(reference.AllAlerts(0), candidate.AllAlerts(0));
  ExpectSameAlerts(reference.AllAlerts(1), candidate.AllAlerts(1));
  EXPECT_EQ(reference.network().total_bytes(),
            candidate.network().total_bytes());
  EXPECT_EQ(reference.network().total_messages(),
            candidate.network().total_messages());
  for (int k = 0; k < kNumMessageKinds; ++k) {
    const MessageKind kind = static_cast<MessageKind>(k);
    EXPECT_EQ(reference.network().BytesOfKind(kind),
              candidate.network().BytesOfKind(kind))
        << ToString(kind);
  }
  EXPECT_EQ(reference.network().fault_stats().drops,
            candidate.network().fault_stats().drops);
  EXPECT_EQ(reference.network().fault_stats().duplicates,
            candidate.network().fault_stats().duplicates);
  EXPECT_EQ(reference.network().fault_stats().reorders,
            candidate.network().fault_stats().reorders);
  EXPECT_EQ(reference.network().fault_stats().corrupts,
            candidate.network().fault_stats().corrupts);
  EXPECT_EQ(reference.network().reliable_stats().retransmits,
            candidate.network().reliable_stats().retransmits);
  EXPECT_EQ(reference.network().reliable_stats().retransmit_bytes,
            candidate.network().reliable_stats().retransmit_bytes);
  EXPECT_EQ(reference.network().reliable_stats().dup_drops,
            candidate.network().reliable_stats().dup_drops);
  for (TagId item : sim.all_items()) {
    EXPECT_EQ(reference.BelievedContainer(item),
              candidate.BelievedContainer(item));
  }
  for (TagId c : sim.all_cases()) {
    EXPECT_EQ(reference.BelievedContainer(c), candidate.BelievedContainer(c));
  }
}

TEST(FaultyReplayTest, SeededFaultsAreBitIdenticalAcrossBackendsAndThreads) {
  ReplayFixture fx;
  ASSERT_FALSE(fx.sim.transfers().empty());

  auto run = [&](TransportKind transport, int threads) {
    DistributedOptions opts = ReplayOptions(threads);
    opts.transport = transport;
    opts.network.faults = ReplayFaults();
    auto system = std::make_unique<DistributedSystem>(&fx.sim, opts,
                                                      &fx.catalog,
                                                      &fx.sensors);
    system->Run();
    return system;
  };

  const auto reference = run(TransportKind::kInProcess, 0);
  EXPECT_GT(reference->network().fault_stats().drops, 0);
  EXPECT_GT(reference->network().reliable_stats().retransmits, 0);
  EXPECT_GT(reference->network().BytesOfKind(MessageKind::kAck), 0);
  EXPECT_TRUE(reference->network().AllReliableDelivered());
  EXPECT_FALSE(std::isnan(reference->AverageContainmentErrorPercent(300)));

  ExpectBitIdentical(*reference, *run(TransportKind::kInProcess, 0), fx.sim);
  ExpectBitIdentical(*reference, *run(TransportKind::kInProcess, 4), fx.sim);
  ExpectBitIdentical(*reference, *run(TransportKind::kSocket, 0), fx.sim);
  ExpectBitIdentical(*reference, *run(TransportKind::kSocket, 4), fx.sim);
}

TEST(FaultyReplayTest, FaultsOffMatchesTheSeedFabricByteForByte) {
  ReplayFixture fx;
  // With no faults configured, kAuto must keep the reliability protocol
  // off entirely: zero acks, zero retransmits, link_seq never assigned.
  DistributedOptions opts = ReplayOptions(0);
  DistributedSystem system(&fx.sim, opts, &fx.catalog, &fx.sensors);
  system.Run();
  EXPECT_FALSE(system.network().reliable());
  EXPECT_EQ(system.network().BytesOfKind(MessageKind::kAck), 0);
  EXPECT_EQ(system.network().reliable_stats().retransmits, 0);
  EXPECT_EQ(system.network().fault_stats().drops, 0);
  EXPECT_EQ(system.reliability_flush_epochs(), 0);
}

/// A crash window for `site` during which no transfer departs it: the only
/// state a crash irrecoverably loses is an outage-window export, so this
/// is the window shape under which recovery can be exact.
bool FindQuietCrashWindow(const SupplyChainSim& sim, SiteId site,
                          Epoch outage, Epoch* at, Epoch* recover_at) {
  const Epoch horizon = sim.config().horizon;
  for (Epoch start = 310; start + outage < horizon - 100; start += 10) {
    bool quiet = true;
    for (const ObjectTransfer& tr : sim.transfers()) {
      if (tr.from == site && tr.depart >= start &&
          tr.depart < start + outage) {
        quiet = false;
        break;
      }
    }
    if (quiet) {
      *at = start;
      *recover_at = start + outage;
      return true;
    }
  }
  return false;
}

TEST(CrashRecoveryTest, RecoveryIsBitIdenticalAtZeroFaults) {
  ReplayFixture fx;
  Epoch at = 0;
  Epoch recover_at = 0;
  ASSERT_TRUE(FindQuietCrashWindow(fx.sim, /*site=*/1, /*outage=*/150, &at,
                                   &recover_at));

  DistributedOptions base = ReplayOptions(0);
  DistributedSystem reference(&fx.sim, base, &fx.catalog, &fx.sensors);
  reference.Run();

  DistributedOptions crashed_opts = ReplayOptions(0);
  crashed_opts.crashes.push_back(CrashEvent{1, at, recover_at});
  DistributedSystem crashed(&fx.sim, crashed_opts, &fx.catalog, &fx.sensors);
  crashed.Run();

  // Results converge exactly: accuracy series, alerts, and final beliefs.
  // Byte totals legitimately differ (the recovery request and the re-sent
  // envelopes are extra traffic) -- assert they exist instead.
  EXPECT_EQ(reference.snapshots(), crashed.snapshots());
  ExpectSameAlerts(reference.AllAlerts(0), crashed.AllAlerts(0));
  ExpectSameAlerts(reference.AllAlerts(1), crashed.AllAlerts(1));
  for (TagId item : fx.sim.all_items()) {
    EXPECT_EQ(reference.BelievedContainer(item),
              crashed.BelievedContainer(item));
  }
  for (TagId c : fx.sim.all_cases()) {
    EXPECT_EQ(reference.BelievedContainer(c), crashed.BelievedContainer(c));
  }
  EXPECT_GT(crashed.network().BytesOfKind(MessageKind::kRecoveryRequest), 0);
  EXPECT_EQ(reference.network().BytesOfKind(MessageKind::kRecoveryRequest),
            0);
}

TEST(CrashRecoveryTest, CrashUnderFaultsCompletesAndIsDeterministic) {
  ReplayFixture fx;
  auto run = [&](int threads) {
    DistributedOptions opts = ReplayOptions(threads);
    opts.network.faults = ReplayFaults();
    opts.crashes = SeededCrashSchedule(/*seed=*/5, fx.sim.config().num_warehouses,
                                       fx.sim.config().horizon, /*count=*/1,
                                       /*outage=*/200);
    auto system = std::make_unique<DistributedSystem>(&fx.sim, opts,
                                                      &fx.catalog,
                                                      &fx.sensors);
    system->Run();
    return system;
  };
  const auto a = run(0);
  ASSERT_FALSE(a->snapshots().empty());
  EXPECT_FALSE(std::isnan(a->AverageContainmentErrorPercent(300)));
  EXPECT_GT(a->network().reliable_stats().retransmits, 0);
  EXPECT_GT(a->network().BytesOfKind(MessageKind::kRecoveryRequest), 0);

  // Same seed, same crash schedule, different thread count: identical.
  const auto b = run(4);
  EXPECT_EQ(a->snapshots(), b->snapshots());
  ExpectSameAlerts(a->AllAlerts(0), b->AllAlerts(0));
  ExpectSameAlerts(a->AllAlerts(1), b->AllAlerts(1));
  EXPECT_EQ(a->network().total_bytes(), b->network().total_bytes());
}

TEST(CrashRecoveryTest, SeededScheduleIsValidAndDeterministic) {
  const auto a = SeededCrashSchedule(9, 4, 2000, 3, 100);
  const auto b = SeededCrashSchedule(9, 4, 2000, 3, 100);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  Epoch prev = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site, b[i].site);
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].recover_at, b[i].recover_at);
    EXPECT_GT(a[i].at, 0);
    EXPECT_GT(a[i].recover_at, a[i].at);
    EXPECT_LE(a[i].recover_at, 2000);
    EXPECT_GE(a[i].at, prev);
    prev = a[i].at;
  }
  EXPECT_TRUE(SeededCrashSchedule(9, 0, 2000, 3, 100).empty());
}

// Pinned regression for the peer-assisted recovery's documented gap: a
// transfer that departs WHILE its source site is down is never exported
// (the dead process can't send, and the restarted one no longer owns the
// state), so the non-durable run provably diverges from the uncrashed
// run in wire bytes. The durable path (tests/durability_test.cc) closes
// exactly this gap: its catch-up replay exports the envelope from
// checkpoint + WAL state, bit-identically and with zero recovery
// traffic.
TEST(CrashRecoveryTest, DepartureDuringOutageIsLostWithoutDurability) {
  ReplayFixture fx;
  const ObjectTransfer* victim = nullptr;
  for (const ObjectTransfer& tr : fx.sim.transfers()) {
    if (tr.from > 0 && tr.to != kNoSite && tr.depart >= 400 &&
        tr.arrive > tr.depart + 20 && tr.arrive <= 1400) {
      victim = &tr;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  const Epoch at = victim->depart - 5;
  const Epoch recover_at = victim->depart + 15;
  ASSERT_LT(recover_at, victim->arrive);

  DistributedOptions base = ReplayOptions(0);
  DistributedSystem reference(&fx.sim, base, &fx.catalog, &fx.sensors);
  reference.Run();

  DistributedOptions crashed_opts = ReplayOptions(0);
  crashed_opts.crashes.push_back(CrashEvent{victim->from, at, recover_at});
  DistributedSystem crashed(&fx.sim, crashed_opts, &fx.catalog, &fx.sensors);
  crashed.Run();

  // The replacement process asked its peers for help...
  EXPECT_GT(crashed.network().BytesOfKind(MessageKind::kRecoveryRequest), 0);
  // ...but the departed envelope never crossed the wire, and with it the
  // migrated tags' reading histories: the destination cannot merge each
  // item's pre-move exposure with its post-move exposure, so every
  // migrated item's alert splits in two and the alert sets diverge. This
  // inequality is the contract the durable path's bit-identity suite
  // (tests/durability_test.cc) tightens to equality.
  EXPECT_NE(reference.AllAlerts(0).size(), crashed.AllAlerts(0).size());
  EXPECT_NE(reference.AllAlerts(1).size(), crashed.AllAlerts(1).size());
}

}  // namespace
}  // namespace rfid
