// Tests for the RFINFER core: containment recovery, EM monotonicity,
// location estimates, evidence accounting, change-point detection,
// critical regions, collapsed priors, and the co-location counter.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "inference/calibration.h"
#include "inference/colocation.h"
#include "inference/evaluate.h"
#include "inference/rfinfer.h"
#include "inference/state.h"
#include "model/generative.h"
#include "model/read_rate.h"
#include "model/schedule.h"
#include "sim/supply_chain.h"
#include "trace/trace.h"

namespace rfid {
namespace {

// Samples readings of one tag along a location path, honoring the schedule.
void SampleTag(const ReadRateModel& model, const InterrogationSchedule& sched,
               TagId tag, const std::vector<LocationId>& path, Rng& rng,
               Trace* trace) {
  for (Epoch t = 0; t < static_cast<Epoch>(path.size()); ++t) {
    LocationId truth = path[static_cast<size_t>(t)];
    if (truth == kNoLocation) continue;
    for (LocationId r = 0; r < model.num_locations(); ++r) {
      if (!sched.ActiveAt(r, t)) continue;
      if (rng.NextBernoulli(model.Rate(r, truth))) {
        trace->Add(RawReading{t, tag, r});
      }
    }
  }
}

std::vector<LocationId> ConstantPath(Epoch horizon, LocationId loc) {
  return std::vector<LocationId>(static_cast<size_t>(horizon), loc);
}

// A world with two containers at different locations, each with `k` objects.
struct TwoContainerWorld {
  ReadRateModel model = ReadRateModel::Uniform(4, 0.8);
  InterrogationSchedule sched = InterrogationSchedule::AlwaysOn(4);
  Trace trace;
  TagId c1 = TagId::Case(1);
  TagId c2 = TagId::Case(2);
  std::vector<TagId> objs1, objs2;
  Epoch horizon = 200;

  explicit TwoContainerWorld(double rr = 0.8, int k = 3, Epoch T = 200,
                             uint64_t seed = 99) {
    horizon = T;
    model = ReadRateModel::Uniform(4, rr);
    sched = InterrogationSchedule::AlwaysOn(4);
    sched.Finalize(model);
    Rng rng(seed);
    auto p1 = ConstantPath(T, 0);
    auto p2 = ConstantPath(T, 2);
    SampleTag(model, sched, c1, p1, rng, &trace);
    SampleTag(model, sched, c2, p2, rng, &trace);
    for (int i = 0; i < k; ++i) {
      TagId o1 = TagId::Item(100 + static_cast<uint64_t>(i));
      TagId o2 = TagId::Item(200 + static_cast<uint64_t>(i));
      objs1.push_back(o1);
      objs2.push_back(o2);
      SampleTag(model, sched, o1, p1, rng, &trace);
      SampleTag(model, sched, o2, p2, rng, &trace);
    }
    trace.Seal();
  }
};

TEST(RFInferTest, RecoversStableContainment) {
  TwoContainerWorld w;
  RFInfer engine(&w.model, &w.sched);
  ASSERT_TRUE(engine.Run(w.trace, 0, w.horizon - 1).ok());
  for (TagId o : w.objs1) EXPECT_EQ(engine.ContainerOf(o), w.c1);
  for (TagId o : w.objs2) EXPECT_EQ(engine.ContainerOf(o), w.c2);
}

TEST(RFInferTest, ObjectsOfListsAssignment) {
  TwoContainerWorld w;
  RFInfer engine(&w.model, &w.sched);
  ASSERT_TRUE(engine.Run(w.trace, 0, w.horizon - 1).ok());
  auto objs = engine.ObjectsOf(w.c1);
  EXPECT_EQ(objs.size(), w.objs1.size());
}

TEST(RFInferTest, TrueContainerHasHigherWeight) {
  TwoContainerWorld w;
  RFInfer engine(&w.model, &w.sched);
  ASSERT_TRUE(engine.Run(w.trace, 0, w.horizon - 1).ok());
  for (TagId o : w.objs1) {
    double w_true = engine.WeightOf(o, w.c1);
    double w_false = engine.WeightOf(o, w.c2);
    if (std::isfinite(w_false)) {
      EXPECT_GT(w_true, w_false) << o.ToString();
    }
  }
}

TEST(RFInferTest, LikelihoodNonDecreasing) {
  TwoContainerWorld w(0.6, 4, 300);
  RFInfer engine(&w.model, &w.sched);
  ASSERT_TRUE(engine.Run(w.trace, 0, w.horizon - 1).ok());
  const auto& history = engine.likelihood_history();
  ASSERT_GE(history.size(), 1u);
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_GE(history[i], history[i - 1] - 1e-6)
        << "EM likelihood decreased at iteration " << i;
  }
}

TEST(RFInferTest, ConvergesWithinFewIterations) {
  TwoContainerWorld w;
  RFInfer engine(&w.model, &w.sched);
  ASSERT_TRUE(engine.Run(w.trace, 0, w.horizon - 1).ok());
  EXPECT_LE(engine.iterations_used(), 10);
}

TEST(RFInferTest, LocationEstimatesMatchTruth) {
  TwoContainerWorld w;
  RFInfer engine(&w.model, &w.sched);
  ASSERT_TRUE(engine.Run(w.trace, 0, w.horizon - 1).ok());
  int correct = 0, total = 0;
  for (Epoch t = 10; t < w.horizon; t += 10) {
    ++total;
    if (engine.LocationOf(w.c1, t) == 0) ++correct;
  }
  EXPECT_GE(correct, total - 1);
  // Objects inherit the container's location ("smoothing over containment").
  EXPECT_EQ(engine.LocationOf(w.objs1[0], w.horizon - 1), 0);
  EXPECT_EQ(engine.LocationOf(w.objs2[0], w.horizon - 1), 2);
}

TEST(RFInferTest, SmoothingOverContainmentLocalizesUnreadObject) {
  // An object read only rarely still gets located through its container.
  auto model = ReadRateModel::Uniform(3, 0.9);
  auto sched = InterrogationSchedule::AlwaysOn(3);
  sched.Finalize(model);
  Rng rng(5);
  Trace trace;
  TagId c = TagId::Case(1);
  TagId o = TagId::Item(1);
  SampleTag(model, sched, c, ConstantPath(100, 1), rng, &trace);
  // Object read just twice, both with the container at location 1.
  trace.Add(RawReading{3, o, 1});
  trace.Add(RawReading{4, o, 1});
  trace.Seal();
  RFInfer engine(&model, &sched);
  ASSERT_TRUE(engine.Run(trace, 0, 99).ok());
  EXPECT_EQ(engine.ContainerOf(o), c);
  // Location known at epoch 90 even though the object was last read at 4.
  EXPECT_EQ(engine.LocationOf(o, 90), 1);
}

TEST(RFInferTest, EmitEventsCoversAssignedObjects) {
  TwoContainerWorld w;
  RFInfer engine(&w.model, &w.sched);
  ASSERT_TRUE(engine.Run(w.trace, 0, w.horizon - 1).ok());
  auto events = engine.EmitEvents();
  ASSERT_FALSE(events.empty());
  bool saw_obj = false;
  for (const ObjectEvent& e : events) {
    EXPECT_GE(e.time, 0);
    EXPECT_LT(e.time, w.horizon);
    if (e.tag == w.objs1[0]) {
      saw_obj = true;
      EXPECT_EQ(e.container, w.c1);
    }
  }
  EXPECT_TRUE(saw_obj);
  // Sorted by time.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
}

TEST(RFInferTest, EvidenceSeriesConsistentWithWeights) {
  TwoContainerWorld w;
  RFInfer engine(&w.model, &w.sched);
  ASSERT_TRUE(engine.Run(w.trace, 0, w.horizon - 1).ok());
  // The cumulative evidence at the last event plus trailing idle gaps must
  // equal the reported weight (no priors installed here). The series ends
  // at the last event; WeightOf includes the tail, so cumulative <= weight
  // within the tail's idle contribution (which is <= 0).
  for (TagId o : w.objs1) {
    auto series = engine.EvidenceSeries(o, w.c1);
    ASSERT_FALSE(series.empty());
    double weight = engine.WeightOf(o, w.c1);
    EXPECT_GE(series.back().cumulative, weight - 1e-6);
    // Cumulative is the running sum of point evidence plus idle gaps, so it
    // must be non-increasing in expectation; check internal consistency:
    double prev = 0.0;
    for (const auto& pt : series) {
      EXPECT_LE(pt.cumulative, prev + 1e-9 + pt.point - pt.point);
      prev = pt.cumulative;
    }
  }
}

TEST(RFInferTest, RealContainerDominatesEvidence) {
  // Figure 4's qualitative claim: the real container's cumulative evidence
  // stays above a never-co-located container's.
  TwoContainerWorld w(0.8, 3, 300);
  RFInfer engine(&w.model, &w.sched);
  ASSERT_TRUE(engine.Run(w.trace, 0, w.horizon - 1).ok());
  TagId o = w.objs1[0];
  auto real = engine.EvidenceSeries(o, w.c1);
  auto fake = engine.EvidenceSeries(o, w.c2);
  ASSERT_FALSE(real.empty());
  if (!fake.empty()) {
    EXPECT_GT(real.back().cumulative, fake.back().cumulative);
  }
}

TEST(RFInferTest, DetectsPlantedContainmentChange) {
  // Object follows c1 for 150 epochs, then moves to c2.
  auto model = ReadRateModel::Uniform(4, 0.8);
  auto sched = InterrogationSchedule::AlwaysOn(4);
  sched.Finalize(model);
  Rng rng(17);
  Trace trace;
  TagId c1 = TagId::Case(1), c2 = TagId::Case(2);
  TagId mover = TagId::Item(1);
  const Epoch T = 300, change_at = 150;
  SampleTag(model, sched, c1, ConstantPath(T, 0), rng, &trace);
  SampleTag(model, sched, c2, ConstantPath(T, 2), rng, &trace);
  for (int i = 0; i < 3; ++i) {
    SampleTag(model, sched, TagId::Item(10 + static_cast<uint64_t>(i)),
              ConstantPath(T, 0), rng, &trace);
    SampleTag(model, sched, TagId::Item(20 + static_cast<uint64_t>(i)),
              ConstantPath(T, 2), rng, &trace);
  }
  std::vector<LocationId> mover_path = ConstantPath(T, 0);
  for (Epoch t = change_at; t < T; ++t) {
    mover_path[static_cast<size_t>(t)] = 2;
  }
  SampleTag(model, sched, mover, mover_path, rng, &trace);
  trace.Seal();

  RFInfer engine(&model, &sched);
  ASSERT_TRUE(engine.Run(trace, 0, T - 1).ok());
  double delta = engine.ChangeStatistic(mover);
  EXPECT_GT(delta, 20.0);
  // Objects that never moved have much smaller statistics.
  EXPECT_LT(engine.ChangeStatistic(TagId::Item(10)), delta / 2);

  auto changes = engine.DetectChangePoints(delta / 2);
  bool found = false;
  for (const ChangePointResult& cp : changes) {
    if (cp.object == mover) {
      found = true;
      EXPECT_NEAR(static_cast<double>(cp.time), change_at, 30.0);
      EXPECT_EQ(cp.old_container, c1);
      EXPECT_EQ(cp.new_container, c2);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RFInferTest, NoChangeYieldsSmallStatistic) {
  TwoContainerWorld w(0.8, 3, 300);
  RFInfer engine(&w.model, &w.sched);
  ASSERT_TRUE(engine.Run(w.trace, 0, w.horizon - 1).ok());
  for (TagId o : w.objs1) {
    EXPECT_LT(engine.ChangeStatistic(o), 15.0) << o.ToString();
  }
}

TEST(RFInferTest, CriticalRegionFindsDiscriminativeSpan) {
  // Belt-style scenario: c1 and c2 co-located with the object at location 0
  // (the "door"), then only c1 travels with it through location 1 (the
  // "belt"), then both co-located again at location 2 (the "shelf"). The CR
  // must cover the belt period.
  auto model = ReadRateModel::Uniform(3, 0.9);
  auto sched = InterrogationSchedule::AlwaysOn(3);
  sched.Finalize(model);
  Rng rng(23);
  Trace trace;
  TagId c1 = TagId::Case(1), c2 = TagId::Case(2);
  TagId o = TagId::Item(1);
  const Epoch T = 300;
  std::vector<LocationId> path_with(T), path_other(T);
  for (Epoch t = 0; t < T; ++t) {
    LocationId with = t < 100 ? 0 : (t < 150 ? 1 : 2);
    LocationId other = t < 100 ? 0 : 2;  // skips the belt
    path_with[static_cast<size_t>(t)] = with;
    path_other[static_cast<size_t>(t)] = other;
  }
  SampleTag(model, sched, c1, path_with, rng, &trace);
  SampleTag(model, sched, c2, path_other, rng, &trace);
  SampleTag(model, sched, o, path_with, rng, &trace);
  trace.Seal();

  RFInfer engine(&model, &sched);
  ASSERT_TRUE(engine.Run(trace, 0, T - 1).ok());
  EXPECT_EQ(engine.ContainerOf(o), c1);
  // The gap threshold must exceed co-location noise (both containers read
  // with p<1 produce fluctuating per-epoch evidence differences); the belt
  // span delivers a gap an order of magnitude above it.
  auto crs = engine.FindCriticalRegions(30, 100.0);
  ASSERT_TRUE(crs.contains(o));
  const CriticalRegion& cr = crs.at(o);
  // The discriminative window overlaps the belt period [100, 150).
  EXPECT_LT(cr.window.begin, 150);
  EXPECT_GT(cr.window.end, 100);
  EXPECT_GT(cr.gap, 100.0);
}

TEST(RFInferTest, CollapsedPriorsSteerAssignment) {
  // Locally ambiguous data (object co-located with both containers), but an
  // imported prior strongly favors c2.
  auto model = ReadRateModel::Uniform(2, 0.8);
  auto sched = InterrogationSchedule::AlwaysOn(2);
  sched.Finalize(model);
  Rng rng(31);
  Trace trace;
  TagId c1 = TagId::Case(1), c2 = TagId::Case(2);
  TagId o = TagId::Item(1);
  const Epoch T = 60;
  // Everything at location 0: perfectly ambiguous co-location.
  SampleTag(model, sched, c1, ConstantPath(T, 0), rng, &trace);
  SampleTag(model, sched, c2, ConstantPath(T, 0), rng, &trace);
  SampleTag(model, sched, o, ConstantPath(T, 0), rng, &trace);
  trace.Seal();

  // The data is symmetric between c1 and c2, so both assignments are local
  // maxima of the likelihood (EM self-reinforces whichever container's
  // posterior is sharpened by the object's reads). The imported collapsed
  // prior decides which optimum the algorithm lands in -- exactly how
  // migrated state seeds inference at a new site (Section 4.1).
  RFInfer engine(&model, &sched);
  ObjectContext ctx;
  ctx.prior_weights = {{c2, 50.0}};
  engine.SetObjectContext(o, ctx);
  ASSERT_TRUE(engine.Run(trace, 0, T - 1).ok());
  EXPECT_EQ(engine.ContainerOf(o), c2);

  RFInfer opposite(&model, &sched);
  ObjectContext ctx1;
  ctx1.prior_weights = {{c1, 50.0}};
  opposite.SetObjectContext(o, ctx1);
  ASSERT_TRUE(opposite.Run(trace, 0, T - 1).ok());
  EXPECT_EQ(opposite.ContainerOf(o), c1);
}

TEST(RFInferTest, BarrierDiscardsOldEvidence) {
  // Object co-located with c1 for [0,150), then c2 for [150,300). With a
  // barrier at 150, only the c2 epochs count.
  auto model = ReadRateModel::Uniform(4, 0.8);
  auto sched = InterrogationSchedule::AlwaysOn(4);
  sched.Finalize(model);
  Rng rng(37);
  Trace trace;
  TagId c1 = TagId::Case(1), c2 = TagId::Case(2);
  TagId o = TagId::Item(1);
  const Epoch T = 300;
  SampleTag(model, sched, c1, ConstantPath(T, 0), rng, &trace);
  SampleTag(model, sched, c2, ConstantPath(T, 2), rng, &trace);
  std::vector<LocationId> path(T);
  for (Epoch t = 0; t < T; ++t) {
    path[static_cast<size_t>(t)] = t < 150 ? 0 : 2;
  }
  SampleTag(model, sched, o, path, rng, &trace);
  trace.Seal();

  RFInfer engine(&model, &sched);
  ObjectContext ctx;
  ctx.barrier = 150;
  engine.SetObjectContext(o, ctx);
  ASSERT_TRUE(engine.Run(trace, 0, T - 1).ok());
  EXPECT_EQ(engine.ContainerOf(o), c2);
}

TEST(RFInferTest, ExplicitUniverseHierarchical) {
  // Cases inside pallets: treat pallets as containers and cases as objects
  // (Appendix A.4 hierarchical containment via a second instance).
  auto model = ReadRateModel::Uniform(4, 0.85);
  auto sched = InterrogationSchedule::AlwaysOn(4);
  sched.Finalize(model);
  Rng rng(41);
  Trace trace;
  TagId p1 = TagId::Pallet(1), p2 = TagId::Pallet(2);
  TagId k1 = TagId::Case(1), k2 = TagId::Case(2);
  const Epoch T = 150;
  SampleTag(model, sched, p1, ConstantPath(T, 0), rng, &trace);
  SampleTag(model, sched, p2, ConstantPath(T, 3), rng, &trace);
  SampleTag(model, sched, k1, ConstantPath(T, 0), rng, &trace);
  SampleTag(model, sched, k2, ConstantPath(T, 3), rng, &trace);
  trace.Seal();

  RFInfer engine(&model, &sched);
  engine.SetUniverse({p1, p2}, {k1, k2});
  ASSERT_TRUE(engine.Run(trace, 0, T - 1).ok());
  EXPECT_EQ(engine.ContainerOf(k1), p1);
  EXPECT_EQ(engine.ContainerOf(k2), p2);
}

TEST(RFInferTest, RejectsUnsealedTraceAndBadWindow) {
  auto model = ReadRateModel::Uniform(2, 0.8);
  auto sched = InterrogationSchedule::AlwaysOn(2);
  sched.Finalize(model);
  RFInfer engine(&model, &sched);
  Trace unsealed;
  unsealed.Add(RawReading{0, TagId::Item(1), 0});
  EXPECT_TRUE(engine.Run(unsealed, 0, 10).IsInvalidArgument());
  Trace sealed;
  sealed.Seal();
  EXPECT_TRUE(engine.Run(sealed, 10, 0).IsInvalidArgument());
}

TEST(RFInferTest, EmptyTraceYieldsNoAssignments) {
  auto model = ReadRateModel::Uniform(2, 0.8);
  auto sched = InterrogationSchedule::AlwaysOn(2);
  sched.Finalize(model);
  RFInfer engine(&model, &sched);
  Trace empty;
  empty.Seal();
  ASSERT_TRUE(engine.Run(empty, 0, 10).ok());
  EXPECT_EQ(engine.ContainerOf(TagId::Item(1)), kNoTag);
  EXPECT_TRUE(engine.object_tags().empty());
}

TEST(RFInferTest, UnknownTagQueriesAreSafe) {
  TwoContainerWorld w;
  RFInfer engine(&w.model, &w.sched);
  ASSERT_TRUE(engine.Run(w.trace, 0, w.horizon - 1).ok());
  EXPECT_EQ(engine.ContainerOf(TagId::Item(9999)), kNoTag);
  EXPECT_EQ(engine.LocationOf(TagId::Item(9999), 10), kNoLocation);
  EXPECT_TRUE(engine.CandidatesOf(TagId::Item(9999)).empty());
  EXPECT_TRUE(engine.EvidenceSeries(TagId::Item(9999), w.c1).empty());
  EXPECT_TRUE(std::isinf(engine.WeightOf(TagId::Item(9999), w.c1)));
}

TEST(RFInferTest, PeriodicScheduleStillRecovers) {
  // Shelf-style schedule: readers scan every 10 epochs; containment must
  // still be recovered from the sparser evidence.
  auto model = ReadRateModel::Uniform(4, 0.9);
  InterrogationSchedule sched(4);
  for (LocationId r = 0; r < 4; ++r) sched.SetPeriodic(r, 10, 0);
  sched.Finalize(model);
  Rng rng(43);
  Trace trace;
  TagId c1 = TagId::Case(1), c2 = TagId::Case(2);
  const Epoch T = 600;
  SampleTag(model, sched, c1, ConstantPath(T, 0), rng, &trace);
  SampleTag(model, sched, c2, ConstantPath(T, 2), rng, &trace);
  std::vector<TagId> objs1, objs2;
  for (int i = 0; i < 3; ++i) {
    TagId o1 = TagId::Item(10 + static_cast<uint64_t>(i));
    TagId o2 = TagId::Item(20 + static_cast<uint64_t>(i));
    objs1.push_back(o1);
    objs2.push_back(o2);
    SampleTag(model, sched, o1, ConstantPath(T, 0), rng, &trace);
    SampleTag(model, sched, o2, ConstantPath(T, 2), rng, &trace);
  }
  trace.Seal();
  RFInfer engine(&model, &sched);
  ASSERT_TRUE(engine.Run(trace, 0, T - 1).ok());
  for (TagId o : objs1) EXPECT_EQ(engine.ContainerOf(o), c1);
  for (TagId o : objs2) EXPECT_EQ(engine.ContainerOf(o), c2);
}

TEST(CoLocationTest, CountsSameReaderSameEpoch) {
  Trace t;
  t.Add(RawReading{1, TagId::Item(1), 0});
  t.Add(RawReading{1, TagId::Case(1), 0});
  t.Add(RawReading{1, TagId::Case(2), 1});  // different reader
  t.Add(RawReading{2, TagId::Item(1), 0});
  t.Add(RawReading{2, TagId::Case(1), 0});
  t.Seal();
  auto counter = CoLocationCounter::FromTrace(t, 0, 10);
  EXPECT_EQ(counter.CountOf(TagId::Item(1), TagId::Case(1)), 2);
  EXPECT_EQ(counter.CountOf(TagId::Item(1), TagId::Case(2)), 0);
}

TEST(CoLocationTest, TopCandidatesOrdered) {
  Trace t;
  for (int i = 0; i < 5; ++i) {
    t.Add(RawReading{i, TagId::Item(1), 0});
    t.Add(RawReading{i, TagId::Case(1), 0});
    if (i < 2) t.Add(RawReading{i, TagId::Case(2), 0});
  }
  t.Seal();
  auto counter = CoLocationCounter::FromTrace(t, 0, 10);
  auto top = counter.TopCandidates(TagId::Item(1), 2);
  ASSERT_EQ(top.containers.size(), 2u);
  EXPECT_EQ(top.containers[0], TagId::Case(1));
  // Exclusivity weighting: 3 exclusive epochs at weight 1 plus 2 shared
  // epochs at weight 1/2.
  EXPECT_DOUBLE_EQ(top.counts[0], 4.0);
  EXPECT_EQ(top.containers[1], TagId::Case(2));
  EXPECT_DOUBLE_EQ(top.counts[1], 1.0);
  auto top1 = counter.TopCandidates(TagId::Item(1), 1);
  EXPECT_EQ(top1.containers.size(), 1u);
}

TEST(CoLocationTest, UnweightedCountsMatchPaper) {
  Trace t;
  for (int i = 0; i < 5; ++i) {
    t.Add(RawReading{i, TagId::Item(1), 0});
    t.Add(RawReading{i, TagId::Case(1), 0});
    if (i < 2) t.Add(RawReading{i, TagId::Case(2), 0});
  }
  t.Seal();
  auto counter =
      CoLocationCounter::FromTrace(t, 0, 10, /*exclusivity_weighted=*/false);
  EXPECT_DOUBLE_EQ(counter.CountOf(TagId::Item(1), TagId::Case(1)), 5.0);
  EXPECT_DOUBLE_EQ(counter.CountOf(TagId::Item(1), TagId::Case(2)), 2.0);
}

TEST(CoLocationTest, WindowRestricts) {
  Trace t;
  for (int i = 0; i < 10; ++i) {
    t.Add(RawReading{i, TagId::Item(1), 0});
    t.Add(RawReading{i, TagId::Case(1), 0});
  }
  t.Seal();
  auto counter = CoLocationCounter::FromTrace(t, 3, 5);
  EXPECT_EQ(counter.CountOf(TagId::Item(1), TagId::Case(1)), 3);
}

TEST(CoLocationTest, MergeAddsCounts) {
  Trace t;
  t.Add(RawReading{1, TagId::Item(1), 0});
  t.Add(RawReading{1, TagId::Case(1), 0});
  t.Seal();
  auto a = CoLocationCounter::FromTrace(t, 0, 10);
  auto b = CoLocationCounter::FromTrace(t, 0, 10);
  a.Merge(b);
  EXPECT_EQ(a.CountOf(TagId::Item(1), TagId::Case(1)), 2);
}

TEST(CalibrationTest, ThresholdIsPositiveAndSuppressesFalsePositives) {
  auto model = ReadRateModel::Uniform(4, 0.8);
  auto sched = InterrogationSchedule::AlwaysOn(4);
  sched.Finalize(model);
  CalibrationConfig cfg;
  cfg.num_samples = 6;
  cfg.horizon = 200;
  Rng rng(47);
  double delta = CalibrateChangeThreshold(model, sched, cfg, rng);
  EXPECT_GT(delta, 0.0);

  // A fresh no-change world should produce no detections at this threshold.
  TwoContainerWorld w(0.8, 3, 200, /*seed=*/51);
  RFInfer engine(&model, &sched);
  ASSERT_TRUE(engine.Run(w.trace, 0, w.horizon - 1).ok());
  auto changes = engine.DetectChangePoints(delta);
  EXPECT_LE(changes.size(), 1u);  // at most a rare straggler
}

TEST(MigrationStateTest, EncodeDecodeRoundTrip) {
  std::vector<ObjectMigrationState> states(2);
  states[0].object = TagId::Item(1);
  states[0].container = TagId::Case(1);
  states[0].barrier = 42;
  states[0].critical_region = EpochInterval{10, 40};
  states[0].weights = {{TagId::Case(1), -12.5}, {TagId::Case(2), -99.25}};
  states[0].readings = {RawReading{5, TagId::Item(1), 3},
                        RawReading{7, TagId::Case(1), 3}};
  states[1].object = TagId::Item(2);
  states[1].container = kNoTag;
  auto bytes = EncodeMigrationStates(states);
  auto decoded = DecodeMigrationStates(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 2u);
  const auto& s0 = (*decoded)[0];
  EXPECT_EQ(s0.object, TagId::Item(1));
  EXPECT_EQ(s0.container, TagId::Case(1));
  EXPECT_EQ(s0.barrier, 42);
  ASSERT_TRUE(s0.critical_region.has_value());
  EXPECT_EQ(s0.critical_region->begin, 10);
  EXPECT_EQ(s0.critical_region->end, 40);
  ASSERT_EQ(s0.weights.size(), 2u);
  EXPECT_EQ(s0.weights[1].first, TagId::Case(2));
  EXPECT_DOUBLE_EQ(s0.weights[1].second, -99.25);
  EXPECT_EQ(s0.readings.size(), 2u);
  EXPECT_EQ(s0.readings[1].tag, TagId::Case(1));
  EXPECT_FALSE((*decoded)[1].critical_region.has_value());
  EXPECT_EQ((*decoded)[1].container, kNoTag);
}

TEST(MigrationStateTest, CorruptBytesRejected) {
  std::vector<uint8_t> garbage{9, 9, 9};
  EXPECT_FALSE(DecodeMigrationStates(garbage).ok());
}

TEST(EvaluateTest, ContainmentErrorAgainstTruth) {
  TwoContainerWorld w;
  RFInfer engine(&w.model, &w.sched);
  ASSERT_TRUE(engine.Run(w.trace, 0, w.horizon - 1).ok());
  GroundTruth truth;
  for (TagId o : w.objs1) truth.Set(o, 0, 0, w.c1);
  for (TagId o : w.objs2) truth.Set(o, 0, 2, w.c2);
  truth.Finish(w.horizon);
  std::vector<TagId> objects = w.objs1;
  objects.insert(objects.end(), w.objs2.begin(), w.objs2.end());
  EXPECT_DOUBLE_EQ(
      ContainmentErrorPercent(engine, truth, objects, w.horizon - 1), 0.0);
}

TEST(EvaluateTest, ChangeDetectionFMeasure) {
  std::vector<ChangePointResult> reported(2);
  reported[0] = {TagId::Item(1), 100, TagId::Case(1), TagId::Case(2), 50.0};
  reported[1] = {TagId::Item(9), 100, TagId::Case(1), TagId::Case(2), 50.0};
  std::vector<TrueChange> truth = {
      {105, TagId::Item(1), TagId::Case(2)},
      {200, TagId::Item(2), TagId::Case(3)},
  };
  FMeasure fm = ScoreChangeDetection(reported, truth, 30);
  EXPECT_EQ(fm.tp(), 1);
  EXPECT_EQ(fm.fp(), 1);
  EXPECT_EQ(fm.fn(), 1);
  EXPECT_DOUBLE_EQ(fm.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(fm.Recall(), 0.5);
}

TEST(EvaluateTest, ToleranceMatters) {
  std::vector<ChangePointResult> reported(1);
  reported[0] = {TagId::Item(1), 100, TagId::Case(1), TagId::Case(2), 50.0};
  std::vector<TrueChange> truth = {{160, TagId::Item(1), TagId::Case(2)}};
  EXPECT_EQ(ScoreChangeDetection(reported, truth, 30).tp(), 0);
  EXPECT_EQ(ScoreChangeDetection(reported, truth, 100).tp(), 1);
}

// Parameterized read-rate sweep: containment recovery must hold across the
// paper's RR range with stable containment (Figure 6(a) qualitatively).
class ReadRateSweepTest : public testing::TestWithParam<double> {};

TEST_P(ReadRateSweepTest, RecoversAcrossReadRates) {
  const double rr = GetParam();
  TwoContainerWorld w(rr, 4, 400, /*seed=*/1000 + static_cast<uint64_t>(
                                              rr * 100));
  RFInfer engine(&w.model, &w.sched);
  ASSERT_TRUE(engine.Run(w.trace, 0, w.horizon - 1).ok());
  int errors = 0;
  for (TagId o : w.objs1) {
    if (engine.ContainerOf(o) != w.c1) ++errors;
  }
  for (TagId o : w.objs2) {
    if (engine.ContainerOf(o) != w.c2) ++errors;
  }
  EXPECT_EQ(errors, 0) << "read rate " << rr;
}

INSTANTIATE_TEST_SUITE_P(ReadRates, ReadRateSweepTest,
                         testing::Values(0.6, 0.7, 0.8, 0.9, 1.0));

// Integration: full supply-chain trace, stable containment.
TEST(InferenceIntegrationTest, SupplyChainStableContainment) {
  SupplyChainConfig cfg;
  cfg.num_warehouses = 1;
  cfg.shelves_per_warehouse = 4;
  cfg.cases_per_pallet = 3;
  cfg.items_per_case = 10;
  cfg.shelf_stay = 400;
  cfg.horizon = 800;
  cfg.seed = 7;
  SupplyChainSim sim(cfg);
  sim.Run();
  auto trace = sim.site_trace(0);

  RFInfer engine(&sim.model(), &sim.schedule());
  ASSERT_TRUE(engine.Run(trace, 0, cfg.horizon).ok());
  double err = ContainmentErrorPercent(engine, sim.truth(), sim.all_items(),
                                       cfg.horizon - 1);
  EXPECT_LT(err, 10.0);
  double loc_err = LocationErrorPercent(engine, sim.truth(), sim.all_items(),
                                        cfg.horizon / 2, cfg.horizon - 1);
  EXPECT_LT(loc_err, 10.0);
}

}  // namespace
}  // namespace rfid
