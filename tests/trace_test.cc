// Unit tests for the trace data model: traces, ground truth, trace I/O,
// and the product catalog.
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>
#include <utility>

#include "common/serde.h"
#include "trace/ground_truth.h"
#include "trace/product_catalog.h"
#include "trace/reading.h"
#include "trace/trace.h"
#include "trace/trace_io.h"

namespace rfid {
namespace {

TEST(TraceTest, SealSortsAndDedups) {
  Trace t;
  t.Add(RawReading{5, TagId::Item(1), 0});
  t.Add(RawReading{3, TagId::Item(2), 1});
  t.Add(RawReading{5, TagId::Item(1), 0});  // duplicate
  t.Add(RawReading{3, TagId::Item(1), 1});
  t.Seal();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.readings()[0].time, 3);
  EXPECT_EQ(t.readings()[0].tag, TagId::Item(1));
  EXPECT_EQ(t.readings()[1].tag, TagId::Item(2));
  EXPECT_EQ(t.readings()[2].time, 5);
}

TEST(TraceTest, HistoryOfIsPerTagTimeOrdered) {
  Trace t;
  t.Add(RawReading{9, TagId::Item(1), 2});
  t.Add(RawReading{1, TagId::Item(1), 0});
  t.Add(RawReading{4, TagId::Item(2), 1});
  t.Seal();
  const auto& h = t.HistoryOf(TagId::Item(1));
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].time, 1);
  EXPECT_EQ(h[1].time, 9);
  EXPECT_TRUE(t.HistoryOf(TagId::Item(99)).empty());
}

TEST(TraceTest, MinMaxEpochAndEmpty) {
  Trace t;
  t.Seal();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.MinEpoch(), 0);
  EXPECT_EQ(t.MaxEpoch(), -1);
  t.Add(RawReading{7, TagId::Item(1), 0});
  t.Add(RawReading{2, TagId::Item(1), 0});
  t.Seal();
  EXPECT_EQ(t.MinEpoch(), 2);
  EXPECT_EQ(t.MaxEpoch(), 7);
}

TEST(TraceTest, SliceFiltersInclusive) {
  Trace t;
  for (Epoch e = 0; e < 10; ++e) {
    t.Add(RawReading{e, TagId::Item(1), 0});
  }
  t.Seal();
  Trace s = t.Slice(3, 6);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.MinEpoch(), 3);
  EXPECT_EQ(s.MaxEpoch(), 6);
}

TEST(TraceTest, TagsAreSorted) {
  Trace t;
  t.Add(RawReading{0, TagId::Case(5), 0});
  t.Add(RawReading{0, TagId::Item(9), 0});
  t.Add(RawReading{0, TagId::Item(2), 0});
  t.Seal();
  auto tags = t.Tags();
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0], TagId::Item(2));
  EXPECT_EQ(tags[1], TagId::Item(9));
  EXPECT_EQ(tags[2], TagId::Case(5));
}

TEST(GroundTruthTest, IntervalQueries) {
  GroundTruth gt;
  TagId item = TagId::Item(1);
  TagId case_a = TagId::Case(1);
  TagId case_b = TagId::Case(2);
  gt.Set(item, 0, 3, case_a);
  gt.Set(item, 100, 5, case_a);   // location change only
  gt.Set(item, 200, 5, case_b);   // containment change
  gt.Finish(300);

  EXPECT_EQ(gt.LocationAt(item, 0), 3);
  EXPECT_EQ(gt.LocationAt(item, 99), 3);
  EXPECT_EQ(gt.LocationAt(item, 100), 5);
  EXPECT_EQ(gt.ContainerAt(item, 150), case_a);
  EXPECT_EQ(gt.ContainerAt(item, 200), case_b);
  EXPECT_EQ(gt.ContainerAt(item, 300), case_b);
  EXPECT_FALSE(gt.PresentAt(item, 301));
  EXPECT_FALSE(gt.PresentAt(TagId::Item(9), 10));
}

TEST(GroundTruthTest, RecordsContainmentChanges) {
  GroundTruth gt;
  TagId item = TagId::Item(1);
  gt.Set(item, 0, 1, TagId::Case(1));
  gt.Set(item, 50, 1, TagId::Case(2));
  gt.Set(item, 80, 2, TagId::Case(2));  // move, not a containment change
  gt.Finish(100);
  ASSERT_EQ(gt.changes().size(), 1u);
  EXPECT_EQ(gt.changes()[0].time, 50);
  EXPECT_EQ(gt.changes()[0].from, TagId::Case(1));
  EXPECT_EQ(gt.changes()[0].to, TagId::Case(2));
}

TEST(GroundTruthTest, RedundantSetIsNoOp) {
  GroundTruth gt;
  TagId item = TagId::Item(1);
  gt.Set(item, 0, 1, TagId::Case(1));
  gt.Set(item, 10, 1, TagId::Case(1));  // identical state
  gt.Finish(20);
  EXPECT_EQ(gt.IntervalsOf(item).size(), 1u);
  EXPECT_TRUE(gt.changes().empty());
}

TEST(GroundTruthTest, SameEpochRewriteDropsZeroLengthRun) {
  GroundTruth gt;
  TagId item = TagId::Item(1);
  gt.Set(item, 5, 1, TagId::Case(1));
  gt.Set(item, 5, 2, TagId::Case(2));  // overwritten within the same epoch
  gt.Finish(10);
  EXPECT_EQ(gt.LocationAt(item, 5), 2);
  EXPECT_EQ(gt.ContainerAt(item, 7), TagId::Case(2));
}

TEST(TraceIoTest, BinaryRoundTrip) {
  Trace t;
  for (Epoch e = 0; e < 50; ++e) {
    t.Add(RawReading{e, TagId::Item(e % 7), static_cast<LocationId>(e % 3)});
    t.Add(RawReading{e, TagId::Case(e % 2), static_cast<LocationId>(e % 3)});
  }
  t.Seal();
  auto bytes = EncodeTrace(t);
  auto decoded = DecodeTrace(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->size(), t.size());
  EXPECT_EQ(decoded->readings(), t.readings());
}

TEST(TraceIoTest, EncodingIsCompact) {
  Trace t;
  for (Epoch e = 0; e < 1000; ++e) {
    t.Add(RawReading{e, TagId::Item(1), 0});
  }
  t.Seal();
  // Sequential epochs, one tag: deltas are tiny varints; expect well under
  // the 24-byte in-memory footprint per reading.
  EXPECT_LT(EncodeTrace(t).size(), t.size() * 5);
}

TEST(TraceIoTest, BadMagicRejected) {
  std::vector<uint8_t> bytes{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(DecodeTrace(bytes).ok());
}

TEST(TraceIoTest, MixedKindRoundTripCoversWrappingTagDeltas) {
  // Pallet raw ids have the top bit set; pallet->item steps exercise the
  // uint64-wrapping delta path that would overflow in signed arithmetic.
  Trace t;
  t.Add(RawReading{1, TagId::Pallet(3), 0});
  t.Add(RawReading{2, TagId::Item(5), 1});
  t.Add(RawReading{3, TagId::Pallet(4), 0});
  t.Add(RawReading{4, TagId::Case(9), 2});
  t.Seal();
  auto decoded = DecodeTrace(EncodeTrace(t));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->readings(), t.readings());
}

TEST(TraceIoTest, CorruptPayloadsAreDefinedBehavior) {
  constexpr uint32_t kMagic = 0x52464454;  // matches the encoder
  // Extreme time deltas: must decode without signed-overflow UB (values
  // wrap; no crash, no sanitizer abort).
  BufferWriter overflow;
  overflow.PutU32(kMagic);
  overflow.PutVarint(2);
  for (int i = 0; i < 2; ++i) {
    overflow.PutSignedVarint(std::numeric_limits<int64_t>::max());
    overflow.PutVarint(3);
    overflow.PutSignedVarint(0);
  }
  (void)DecodeTrace(overflow.Release());

  // Reader id beyond the LocationId range: rejected, not truncated.
  BufferWriter bad_reader;
  bad_reader.PutU32(kMagic);
  bad_reader.PutVarint(1);
  bad_reader.PutSignedVarint(1);
  bad_reader.PutVarint(uint64_t{1} << 40);
  bad_reader.PutSignedVarint(0);
  EXPECT_FALSE(DecodeTrace(bad_reader.Release()).ok());

  // Truncated stream: count promises more readings than the bytes hold.
  BufferWriter truncated;
  truncated.PutU32(kMagic);
  truncated.PutVarint(1000);
  truncated.PutSignedVarint(1);
  EXPECT_FALSE(DecodeTrace(truncated.Release()).ok());
}

TEST(TraceIoTest, FileRoundTrip) {
  Trace t;
  t.Add(RawReading{1, TagId::Item(1), 0});
  t.Add(RawReading{2, TagId::Case(1), 1});
  t.Seal();
  std::string path = testing::TempDir() + "/trace_io_test.bin";
  ASSERT_TRUE(WriteTraceFile(t, path).ok());
  auto back = ReadTraceFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->readings(), t.readings());
  std::remove(path.c_str());
}

TEST(TraceIoTest, CsvWrites) {
  Trace t;
  t.Add(RawReading{1, TagId::Item(1), 0});
  t.Seal();
  std::string path = testing::TempDir() + "/trace_io_test.csv";
  ASSERT_TRUE(WriteTraceCsv(t, path).ok());
  FILE* f = fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[128];
  ASSERT_NE(fgets(line, sizeof(line), f), nullptr);
  EXPECT_EQ(std::string(line), "time,tag,reader\n");
  fclose(f);
  std::remove(path.c_str());
}

TEST(ProductCatalogTest, LookupAndIsA) {
  ProductCatalog catalog;
  TagId frozen = TagId::Item(1);
  TagId freezer = TagId::Case(1);
  TagId plain = TagId::Case(2);
  catalog.RegisterProduct(frozen, ProductInfo{"frozen_food", true, false,
                                              false});
  catalog.RegisterContainer(freezer, ContainerInfo{ContainerClass::kFreezer});
  catalog.RegisterContainer(plain, ContainerInfo{ContainerClass::kPlain});

  ASSERT_NE(catalog.FindProduct(frozen), nullptr);
  EXPECT_TRUE(catalog.FindProduct(frozen)->frozen);
  EXPECT_EQ(catalog.FindProduct(TagId::Item(42)), nullptr);
  EXPECT_TRUE(catalog.IsA(freezer, ContainerClass::kFreezer));
  EXPECT_FALSE(catalog.IsA(plain, ContainerClass::kFreezer));
  EXPECT_FALSE(catalog.IsA(kNoTag, ContainerClass::kFreezer));
  EXPECT_EQ(ToString(ContainerClass::kFireproof), "fireproof");
}

TEST(ReadingTest, ToStringFormats) {
  EXPECT_EQ(ToString(RawReading{3, TagId::Item(1), 2}),
            "(3, item:1, reader 2)");
  EXPECT_EQ(ToString(ObjectEvent{3, TagId::Item(1), 2, TagId::Case(4)}),
            "(3, item:1, loc 2, container case:4)");
}

// ---- Arena-backed CSR index + SoA columns (the PR 9 window layout) ----

Trace ScrambledTrace(int tags, int epochs) {
  Trace t;
  for (int e = epochs - 1; e >= 0; --e) {
    for (int i = 0; i < tags; ++i) {
      if ((e + i) % 3 == 0) continue;  // sparse histories
      t.Add(RawReading{static_cast<Epoch>(e),
                       TagId::Item(static_cast<uint64_t>(i)),
                       static_cast<LocationId>(i % 4)});
    }
  }
  return t;
}

void ExpectSameIndex(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.Tags(), b.Tags());
  for (TagId tag : a.Tags()) {
    const TagReadSpan ha = a.HistoryOf(tag);
    const TagReadSpan hb = b.HistoryOf(tag);
    ASSERT_EQ(ha.size(), hb.size());
    for (size_t i = 0; i < ha.size(); ++i) EXPECT_EQ(ha[i], hb[i]);
  }
}

TEST(TraceArenaTest, ArenaIndexMatchesHeapIndex) {
  Trace heap = ScrambledTrace(12, 50);
  Trace arena_backed = heap;
  Arena arena;
  arena_backed.SetArena(&arena);
  arena_backed.EnableColumns(true);
  heap.Seal();
  arena_backed.Seal();
  EXPECT_GT(arena.bytes_allocated(), 0u);
  EXPECT_EQ(heap.readings(), arena_backed.readings());
  ExpectSameIndex(heap, arena_backed);
  // Columns mirror the canonical rows exactly.
  ASSERT_TRUE(arena_backed.has_columns());
  const ReadingColumnsView cols = arena_backed.columns();
  ASSERT_EQ(cols.size, arena_backed.size());
  for (size_t i = 0; i < cols.size; ++i) {
    EXPECT_EQ(cols.Row(i), arena_backed.readings()[i]) << i;
  }
  // Reseal after more readings: the arena is rewound and reused, and the
  // rebuilt index still matches a heap-indexed twin.
  const RawReading extra{999, TagId::Item(3), 2};
  heap.Add(extra);
  arena_backed.Add(extra);
  heap.Seal();
  arena_backed.Seal();
  ExpectSameIndex(heap, arena_backed);
}

TEST(TraceArenaTest, CopyDoesNotShareTheArena) {
  Arena arena;
  Trace original = ScrambledTrace(8, 30);
  original.SetArena(&arena);
  original.Seal();
  const Trace copy = original;  // re-derives its index off-arena
  ExpectSameIndex(original, copy);
  // Resealing the original rewinds the arena; the copy's index must
  // survive that (it owns its backing storage).
  original.Add(RawReading{500, TagId::Item(0), 1});
  original.Seal();
  const TagReadSpan h = copy.HistoryOf(TagId::Item(0));
  ASSERT_FALSE(h.empty());
  EXPECT_LT(h.back().time, 500);
}

TEST(TraceArenaTest, MoveTransfersTheIndexIntact) {
  Trace original = ScrambledTrace(8, 30);
  original.EnableColumns(true);
  original.Seal();
  const Trace reference = original;
  const Trace moved = std::move(original);
  EXPECT_TRUE(moved.sealed());
  ExpectSameIndex(reference, moved);
  ASSERT_TRUE(moved.has_columns());
  EXPECT_EQ(moved.columns().size, moved.size());
}

}  // namespace
}  // namespace rfid
