// Tests for the example continuous queries (Q1/Q2), sensor simulation, and
// centroid-based query-state sharing.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/queries.h"
#include "query/state_sharing.h"
#include "sim/sensors.h"

namespace rfid {
namespace {

ProductCatalog MakeCatalog() {
  ProductCatalog catalog;
  catalog.RegisterProduct(TagId::Item(1),
                          ProductInfo{"frozen_food", true, false, false});
  catalog.RegisterProduct(TagId::Item(2),
                          ProductInfo{"screwdriver", false, false, false});
  catalog.RegisterContainer(TagId::Case(1),
                            ContainerInfo{ContainerClass::kFreezer});
  catalog.RegisterContainer(TagId::Case(2),
                            ContainerInfo{ContainerClass::kPlain});
  return catalog;
}

ExposureQueryConfig ShortQ1() {
  ExposureQueryConfig cfg = ExposureQuery::Q1Config(/*duration=*/100);
  cfg.max_gap = 50;
  return cfg;
}

void WarmSensors(ExposureQuery& q, double temp, int n_locs = 4) {
  for (LocationId loc = 0; loc < n_locs; ++loc) {
    q.OnSensor(SensorReading{0, loc, temp});
  }
}

TEST(ExposureQueryTest, AlertsOnExposedFrozenProduct) {
  ProductCatalog catalog = MakeCatalog();
  ExposureQuery q(&catalog, ShortQ1());
  WarmSensors(q, 20.0);
  // Frozen item in a PLAIN case at 20 C for >100 epochs.
  for (Epoch t = 10; t <= 130; t += 10) {
    q.OnEvent(ObjectEvent{t, TagId::Item(1), 2, TagId::Case(2)});
  }
  ASSERT_EQ(q.alerts().size(), 1u);
  EXPECT_EQ(q.alerts()[0].tag, TagId::Item(1));
  EXPECT_EQ(q.alerts()[0].first_time, 10);
}

TEST(ExposureQueryTest, FreezerContainerSuppressesAlert) {
  ProductCatalog catalog = MakeCatalog();
  ExposureQuery q(&catalog, ShortQ1());
  WarmSensors(q, 20.0);
  for (Epoch t = 10; t <= 200; t += 10) {
    q.OnEvent(ObjectEvent{t, TagId::Item(1), 2, TagId::Case(1)});
  }
  EXPECT_TRUE(q.alerts().empty());
}

TEST(ExposureQueryTest, NullContainerCountsAsExposed) {
  // Q1's "or R.container = NULL" branch.
  ProductCatalog catalog = MakeCatalog();
  ExposureQuery q(&catalog, ShortQ1());
  WarmSensors(q, 20.0);
  for (Epoch t = 10; t <= 130; t += 10) {
    q.OnEvent(ObjectEvent{t, TagId::Item(1), 2, kNoTag});
  }
  EXPECT_EQ(q.alerts().size(), 1u);
}

TEST(ExposureQueryTest, ColdLocationSuppressesAlert) {
  ProductCatalog catalog = MakeCatalog();
  ExposureQuery q(&catalog, ShortQ1());
  WarmSensors(q, -15.0);  // everything is refrigerated
  for (Epoch t = 10; t <= 200; t += 10) {
    q.OnEvent(ObjectEvent{t, TagId::Item(1), 2, TagId::Case(2)});
  }
  EXPECT_TRUE(q.alerts().empty());
}

TEST(ExposureQueryTest, NonFrozenProductIgnored) {
  ProductCatalog catalog = MakeCatalog();
  ExposureQuery q(&catalog, ShortQ1());
  WarmSensors(q, 20.0);
  for (Epoch t = 10; t <= 200; t += 10) {
    q.OnEvent(ObjectEvent{t, TagId::Item(2), 2, TagId::Case(2)});
  }
  EXPECT_TRUE(q.alerts().empty());
}

TEST(ExposureQueryTest, Q2IgnoresContainment) {
  ProductCatalog catalog = MakeCatalog();
  ExposureQueryConfig cfg = ExposureQuery::Q2Config(/*duration=*/100);
  cfg.max_gap = 50;
  ExposureQuery q(&catalog, cfg);
  WarmSensors(q, 20.0);  // above Q2's 10-degree threshold
  // Even inside a freezer-class case, Q2 only checks location temperature.
  for (Epoch t = 10; t <= 130; t += 10) {
    q.OnEvent(ObjectEvent{t, TagId::Item(1), 2, TagId::Case(1)});
  }
  EXPECT_EQ(q.alerts().size(), 1u);
}

TEST(ExposureQueryTest, Q2TemperatureThreshold) {
  ProductCatalog catalog = MakeCatalog();
  ExposureQueryConfig cfg = ExposureQuery::Q2Config(/*duration=*/100);
  cfg.max_gap = 50;
  ExposureQuery q(&catalog, cfg);
  WarmSensors(q, 5.0);  // above freezing but below Q2's 10 degrees
  for (Epoch t = 10; t <= 200; t += 10) {
    q.OnEvent(ObjectEvent{t, TagId::Item(1), 2, TagId::Case(2)});
  }
  EXPECT_TRUE(q.alerts().empty());
}

TEST(ExposureQueryTest, SensorUpdateChangesJoin) {
  ProductCatalog catalog = MakeCatalog();
  ExposureQuery q(&catalog, ShortQ1());
  WarmSensors(q, 20.0);
  for (Epoch t = 10; t <= 60; t += 10) {
    q.OnEvent(ObjectEvent{t, TagId::Item(1), 2, TagId::Case(2)});
  }
  // The room cools below freezing: run lapses (no events pass the filter),
  // so no alert ever fires.
  q.OnSensor(SensorReading{65, 2, -5.0});
  for (Epoch t = 70; t <= 300; t += 10) {
    q.OnEvent(ObjectEvent{t, TagId::Item(1), 2, TagId::Case(2)});
  }
  EXPECT_TRUE(q.alerts().empty());
}

TEST(ExposureQueryTest, StateExportImportAcrossInstances) {
  ProductCatalog catalog = MakeCatalog();
  ExposureQuery site_a(&catalog, ShortQ1());
  WarmSensors(site_a, 20.0);
  for (Epoch t = 10; t <= 60; t += 10) {
    site_a.OnEvent(ObjectEvent{t, TagId::Item(1), 2, TagId::Case(2)});
  }
  auto bytes = site_a.TakeState(TagId::Item(1));

  ExposureQuery site_b(&catalog, ShortQ1());
  WarmSensors(site_b, 20.0);
  ASSERT_TRUE(site_b.ImportState(TagId::Item(1), bytes).ok());
  for (Epoch t = 70; t <= 120; t += 10) {
    site_b.OnEvent(ObjectEvent{t, TagId::Item(1), 2, TagId::Case(2)});
  }
  ASSERT_EQ(site_b.alerts().size(), 1u);
  EXPECT_EQ(site_b.alerts()[0].first_time, 10);  // run began on site A
}

TEST(SensorSimTest, ColdAndAmbientLocations) {
  SensorConfig cfg;
  cfg.period = 10;
  cfg.cold_locations = {1};
  cfg.noise = 0.0;
  Rng rng(3);
  auto stream = GenerateSensorStream(cfg, 3, 100, rng);
  ASSERT_FALSE(stream.empty());
  for (const SensorReading& s : stream) {
    if (s.loc == 1) {
      EXPECT_DOUBLE_EQ(s.value, cfg.cold_temp);
    } else {
      EXPECT_DOUBLE_EQ(s.value, cfg.ambient);
    }
  }
  // One sample per location per period.
  EXPECT_EQ(stream.size(), static_cast<size_t>(3 * 11));
}

TEST(StateSharingTest, ByteDistance) {
  std::vector<uint8_t> a{1, 2, 3, 4};
  std::vector<uint8_t> b{1, 9, 3};
  EXPECT_EQ(ByteDistance(a, b), 2u);  // differing byte + length excess
  EXPECT_EQ(ByteDistance(a, a), 0u);
  EXPECT_EQ(ByteDistance({}, a), 4u);
}

TEST(StateSharingTest, DiffRoundTrip) {
  std::vector<uint8_t> base{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<uint8_t> target{1, 2, 9, 4, 5, 6, 7, 8, 10, 11};
  auto diff = DiffEncode(base, target);
  auto restored = DiffApply(base, diff);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, target);
}

TEST(StateSharingTest, DiffOfIdenticalIsTiny) {
  std::vector<uint8_t> base(200, 7);
  auto diff = DiffEncode(base, base);
  EXPECT_LE(diff.size(), 3u);  // just the length header
  auto restored = DiffApply(base, diff);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, base);
}

TEST(StateSharingTest, DiffHandlesShrink) {
  std::vector<uint8_t> base{1, 2, 3, 4, 5};
  std::vector<uint8_t> target{1, 2};
  auto diff = DiffEncode(base, target);
  auto restored = DiffApply(base, diff);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, target);
}

TEST(StateSharingTest, ShareUnshareRoundTrip) {
  std::vector<std::pair<TagId, std::vector<uint8_t>>> states;
  std::vector<uint8_t> common(100, 42);
  for (uint64_t i = 0; i < 10; ++i) {
    auto s = common;
    s[5] = static_cast<uint8_t>(i);  // small per-object difference
    states.emplace_back(TagId::Item(i), s);
  }
  SharedStateBundle bundle = ShareStates(states);
  auto restored = UnshareStates(bundle);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    EXPECT_EQ((*restored)[i].first, states[i].first);
    EXPECT_EQ((*restored)[i].second, states[i].second);
  }
}

TEST(StateSharingTest, SharingCompressesSimilarStates) {
  // The paper reports ~10x reduction for similar query states (Sec 5.4).
  std::vector<std::pair<TagId, std::vector<uint8_t>>> states;
  std::vector<uint8_t> common(200, 9);
  size_t raw = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    auto s = common;
    s[3] = static_cast<uint8_t>(i);
    s[100] = static_cast<uint8_t>(i * 3);
    raw += s.size();
    states.emplace_back(TagId::Item(i), s);
  }
  SharedStateBundle bundle = ShareStates(states);
  EXPECT_LT(bundle.TotalBytes(), raw / 2);
}

TEST(StateSharingTest, SingleStateBundle) {
  std::vector<std::pair<TagId, std::vector<uint8_t>>> states;
  states.emplace_back(TagId::Item(1), std::vector<uint8_t>{1, 2, 3});
  SharedStateBundle bundle = ShareStates(states);
  auto restored = UnshareStates(bundle);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)[0].second, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(StateSharingTest, CentroidMinimizesDistance) {
  // Three similar states and one outlier: a similar one must be medoid.
  std::vector<std::pair<TagId, std::vector<uint8_t>>> states;
  std::vector<uint8_t> common(50, 1);
  for (uint64_t i = 0; i < 3; ++i) {
    auto s = common;
    s[i] = 99;
    states.emplace_back(TagId::Item(i), s);
  }
  states.emplace_back(TagId::Item(9), std::vector<uint8_t>(50, 200));
  SharedStateBundle bundle = ShareStates(states);
  EXPECT_LT(bundle.centroid_index, 3u);
}

}  // namespace
}  // namespace rfid
