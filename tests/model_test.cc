// Unit tests for the probabilistic model: read-rate tables, log kernels,
// interrogation schedules, and generative sampling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/log_space.h"
#include "common/rng.h"
#include "model/generative.h"
#include "model/read_rate.h"
#include "model/schedule.h"
#include "trace/trace.h"

namespace rfid {
namespace {

TEST(ReadRateModelTest, UniformDiagonal) {
  auto m = ReadRateModel::Uniform(4, 0.8);
  for (LocationId r = 0; r < 4; ++r) {
    for (LocationId a = 0; a < 4; ++a) {
      if (r == a) {
        EXPECT_DOUBLE_EQ(m.Rate(r, a), 0.8);
      } else {
        EXPECT_DOUBLE_EQ(m.Rate(r, a), 0.0);
      }
    }
  }
}

TEST(ReadRateModelTest, LogKernelsConsistent) {
  auto m = ReadRateModel::Uniform(3, 0.7);
  EXPECT_NEAR(m.LogRead(0, 0), std::log(0.7), 1e-12);
  EXPECT_NEAR(m.LogMiss(0, 0), std::log(0.3), 1e-12);
  EXPECT_NEAR(m.LogReadAdjust(0, 0), std::log(0.7) - std::log(0.3), 1e-12);
  // Off-diagonal rates are floored, not exactly zero, in log space.
  EXPECT_NEAR(m.LogRead(0, 1), std::log(kProbFloor), 1e-9);
}

TEST(ReadRateModelTest, LogMissAllSumsOverReaders) {
  auto m = ReadRateModel::Uniform(3, 0.7);
  double expected = std::log(0.3) + 2 * std::log1p(-kProbFloor);
  EXPECT_NEAR(m.LogMissAll(0), expected, 1e-9);
}

TEST(ReadRateModelTest, FromTableValidates) {
  EXPECT_FALSE(ReadRateModel::FromTable({}).ok());
  EXPECT_FALSE(ReadRateModel::FromTable({{0.5, 0.5}, {0.5}}).ok());
  EXPECT_FALSE(ReadRateModel::FromTable({{1.5}}).ok());
  auto ok = ReadRateModel::FromTable({{0.9, 0.1}, {0.0, 0.8}});
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok->Rate(0, 1), 0.1);
}

TEST(ReadRateModelTest, SetRateRequiresRefinalize) {
  auto m = ReadRateModel::Uniform(2, 0.5);
  EXPECT_TRUE(m.finalized());
  m.SetRate(0, 1, 0.3);
  EXPECT_FALSE(m.finalized());
  m.FinalizeLogTables();
  EXPECT_TRUE(m.finalized());
  EXPECT_NEAR(m.LogRead(0, 1), std::log(0.3), 1e-12);
}

TEST(ScheduleTest, AlwaysOnHasOneClass) {
  auto m = ReadRateModel::Uniform(3, 0.8);
  auto s = InterrogationSchedule::AlwaysOn(3);
  s.Finalize(m);
  EXPECT_EQ(s.num_classes(), 1);
  EXPECT_TRUE(s.ActiveAt(0, 0));
  EXPECT_TRUE(s.ActiveAt(2, 12345));
  EXPECT_NEAR(s.LogMissAllClass(0, 0), m.LogMissAll(0), 1e-12);
}

TEST(ScheduleTest, PeriodicActivePattern) {
  auto m = ReadRateModel::Uniform(2, 0.8);
  InterrogationSchedule s(2);
  s.SetPeriodic(0, 1, 0);
  s.SetPeriodic(1, 10, 0);
  s.Finalize(m);
  EXPECT_EQ(s.cycle(), 10);
  EXPECT_TRUE(s.ActiveAt(1, 0));
  EXPECT_FALSE(s.ActiveAt(1, 1));
  EXPECT_TRUE(s.ActiveAt(1, 10));
  EXPECT_TRUE(s.ActiveAt(0, 7));
}

TEST(ScheduleTest, LogMissAllExcludesInactiveReaders) {
  auto m = ReadRateModel::Uniform(2, 0.8);
  InterrogationSchedule s(2);
  s.SetPeriodic(0, 1, 0);
  s.SetPeriodic(1, 10, 0);
  s.Finalize(m);
  // At class 0 both readers scan; location 1's miss-all includes log(0.2).
  // At class 1 only reader 0 scans; location 1 sees only the floor term.
  double cls0 = s.LogMissAllClass(1, 0);
  double cls1 = s.LogMissAllClass(1, 1);
  EXPECT_LT(cls0, cls1);
  EXPECT_NEAR(cls1, std::log1p(-kProbFloor), 1e-9);
}

TEST(ScheduleTest, WindowedMobilePattern) {
  auto m = ReadRateModel::Uniform(3, 0.8);
  InterrogationSchedule s(3);
  // Mobile reader: 2 shelves, 5-epoch dwell each, 10-epoch sweep.
  s.SetWindowed(0, 10, 0, 5);
  s.SetWindowed(1, 10, 5, 5);
  s.SetPeriodic(2, 1, 0);
  s.Finalize(m);
  EXPECT_EQ(s.cycle(), 10);
  EXPECT_TRUE(s.ActiveAt(0, 3));
  EXPECT_FALSE(s.ActiveAt(0, 5));
  EXPECT_TRUE(s.ActiveAt(1, 5));
  EXPECT_FALSE(s.ActiveAt(1, 14));
  EXPECT_TRUE(s.ActiveAt(1, 15));
}

TEST(ScheduleTest, CountClassInRange) {
  auto m = ReadRateModel::Uniform(1, 0.8);
  InterrogationSchedule s(1);
  s.SetPeriodic(0, 10, 0);
  s.Finalize(m);
  // Class 3 epochs in [0, 99]: 3, 13, ..., 93 -> 10 epochs.
  EXPECT_EQ(s.CountClassInRange(3, 0, 99), 10);
  EXPECT_EQ(s.CountClassInRange(3, 4, 12), 0);
  EXPECT_EQ(s.CountClassInRange(3, 3, 3), 1);
  EXPECT_EQ(s.CountClassInRange(3, 5, 3), 0);
  // All classes partition the range.
  int64_t total = 0;
  for (int cls = 0; cls < s.num_classes(); ++cls) {
    total += s.CountClassInRange(cls, 17, 473);
  }
  EXPECT_EQ(total, 473 - 17 + 1);
}

TEST(GenerativeTest, ReadFrequencyMatchesRate) {
  auto m = ReadRateModel::Uniform(2, 0.6);
  GenerativeScenario scenario;
  scenario.container = TagId::Case(0);
  scenario.objects = {TagId::Item(0)};
  scenario.location_path.assign(2000, 1);  // parked at location 1
  Rng rng(5);
  Trace trace;
  SampleReadings(m, scenario, rng, &trace);
  trace.Seal();
  // Expected reads of the container by reader 1: ~0.6 * 2000.
  int64_t hits = 0;
  for (const TagRead& tr : trace.HistoryOf(scenario.container)) {
    EXPECT_EQ(tr.reader, 1);  // only reader 1 covers location 1
    ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 2000.0, 0.6, 0.05);
}

TEST(GenerativeTest, NoLocationEpochsProduceNothing) {
  auto m = ReadRateModel::Uniform(2, 1.0);
  GenerativeScenario scenario;
  scenario.container = TagId::Case(0);
  scenario.location_path.assign(10, kNoLocation);
  Rng rng(5);
  Trace trace;
  SampleReadings(m, scenario, rng, &trace);
  trace.Seal();
  EXPECT_TRUE(trace.empty());
}

TEST(GenerativeTest, RandomPathStaysInRange) {
  Rng rng(5);
  auto path = RandomLocationPath(5, 500, 0.1, rng);
  ASSERT_EQ(path.size(), 500u);
  int moves = 0;
  for (size_t i = 0; i < path.size(); ++i) {
    EXPECT_GE(path[i], 0);
    EXPECT_LT(path[i], 5);
    if (i > 0 && path[i] != path[i - 1]) ++moves;
  }
  EXPECT_GT(moves, 10);  // move_prob 0.1 over 500 epochs
}

}  // namespace
}  // namespace rfid
