// End-to-end integration tests: simulator -> inference -> event stream ->
// queries -> migration, plus cross-cutting invariants that only show up
// when the whole pipeline runs together.
#include <gtest/gtest.h>

#include <set>

#include "dist/distributed.h"
#include "inference/evaluate.h"
#include "inference/streaming.h"
#include "query/queries.h"
#include "sim/sensors.h"
#include "sim/supply_chain.h"

namespace rfid {
namespace {

SupplyChainConfig BaseConfig() {
  SupplyChainConfig cfg;
  cfg.num_warehouses = 1;
  cfg.shelves_per_warehouse = 4;
  cfg.cases_per_pallet = 3;
  cfg.items_per_case = 6;
  cfg.shelf_stay = 500;
  cfg.horizon = 800;
  cfg.seed = 71;
  return cfg;
}

TEST(IntegrationTest, EventStreamIsConsistentWithBeliefs) {
  SupplyChainSim sim(BaseConfig());
  sim.Run();
  RFInfer engine(&sim.model(), &sim.schedule());
  ASSERT_TRUE(engine.Run(sim.site_trace(0), 0, 800).ok());
  auto events = engine.EmitEvents();
  ASSERT_FALSE(events.empty());
  // Every object event's container matches the engine's assignment, and
  // every event's location matches the engine's estimate at that epoch.
  for (const ObjectEvent& e : events) {
    if (e.tag.is_item()) {
      EXPECT_EQ(e.container, engine.ContainerOf(e.tag));
    }
    EXPECT_EQ(e.loc, engine.LocationOf(e.tag, e.time));
  }
}

TEST(IntegrationTest, InferredEventsDriveQueriesLikeTruthEvents) {
  // Feeding the query processor inferred events must produce alerts close
  // to feeding it ground-truth events (high read rate -> near-identical).
  SupplyChainConfig cfg = BaseConfig();
  cfg.read_rate.main = 0.95;
  SupplyChainSim sim(cfg);
  sim.Run();

  ProductCatalog catalog;
  for (TagId item : sim.all_items()) {
    catalog.RegisterProduct(item,
                            ProductInfo{"frozen_food", true, false, false});
  }
  for (TagId c : sim.all_cases()) {
    catalog.RegisterContainer(c, ContainerInfo{ContainerClass::kPlain});
  }

  ExposureQueryConfig qcfg = ExposureQuery::Q1Config(/*duration=*/200);
  qcfg.max_gap = 400;

  RFInfer engine(&sim.model(), &sim.schedule());
  ASSERT_TRUE(engine.Run(sim.site_trace(0), 0, cfg.horizon).ok());

  ExposureQuery inferred_q(&catalog, qcfg);
  ExposureQuery truth_q(&catalog, qcfg);
  for (LocationId loc = 0; loc < sim.layout().num_locations(); ++loc) {
    inferred_q.OnSensor(SensorReading{0, loc, 20.0});
    truth_q.OnSensor(SensorReading{0, loc, 20.0});
  }
  for (const ObjectEvent& e : engine.EmitEvents()) {
    if (e.tag.is_item()) inferred_q.OnEvent(e);
  }
  for (Epoch t = 0; t <= cfg.horizon; t += 10) {
    for (TagId item : sim.all_items()) {
      if (!sim.truth().PresentAt(item, t)) continue;
      LocationId loc = sim.truth().LocationAt(item, t);
      if (loc == kNoLocation) continue;
      truth_q.OnEvent(ObjectEvent{t, item, loc,
                                  sim.truth().ContainerAt(item, t)});
    }
  }
  ASSERT_FALSE(truth_q.alerts().empty());
  std::set<TagId> truth_tags, inferred_tags;
  for (const auto& a : truth_q.alerts()) truth_tags.insert(a.tag);
  for (const auto& a : inferred_q.alerts()) inferred_tags.insert(a.tag);
  // Symmetric difference small relative to the alert population.
  int missing = 0;
  for (TagId t : truth_tags) {
    if (!inferred_tags.contains(t)) ++missing;
  }
  EXPECT_LT(static_cast<double>(missing) /
                static_cast<double>(truth_tags.size()),
            0.2);
}

TEST(IntegrationTest, StreamingLocationTrackSurvivesTruncation) {
  SupplyChainConfig cfg = BaseConfig();
  cfg.horizon = 1200;
  SupplyChainSim sim(cfg);
  sim.Run();
  StreamingOptions opts;
  opts.truncation = TruncationMethod::kCriticalRegion;
  opts.recent_history = 400;
  StreamingInference si(&sim.model(), &sim.schedule(), opts);
  for (const RawReading& r : sim.site_trace(0).readings()) si.Observe(r);
  si.AdvanceTo(1200);
  // A case that shelved early: its location at an epoch long before the
  // final window must still be answerable (and correct) via the track.
  TagId case_tag = sim.all_cases().front();
  LocationId est = si.LocationOf(case_tag, 400);
  LocationId truth = sim.truth().LocationAt(case_tag, 400);
  ASSERT_NE(est, kNoLocation);
  EXPECT_EQ(est, truth);
}

TEST(IntegrationTest, ImportedBeliefAnswersBeforeFirstLocalRun) {
  auto model = ReadRateModel::Uniform(2, 0.8);
  auto sched = InterrogationSchedule::AlwaysOn(2);
  sched.Finalize(model);
  StreamingInference si(&model, &sched, {});
  si.SetImportedBelief(TagId::Item(1), TagId::Case(9));
  EXPECT_EQ(si.ContainerOf(TagId::Item(1)), TagId::Case(9));
  // Invalid imports are ignored.
  si.SetImportedBelief(TagId::Item(2), kNoTag);
  EXPECT_EQ(si.ContainerOf(TagId::Item(2)), kNoTag);
}

TEST(IntegrationTest, HierarchicalContainmentTwoLevels) {
  // Run item->case inference and case->pallet inference on the same trace
  // (Appendix A.4): both levels recover, giving the full nesting.
  SupplyChainConfig cfg = BaseConfig();
  cfg.read_rate.main = 0.9;
  cfg.max_pallets = 3;
  SupplyChainSim sim(cfg);
  sim.Run();
  const Trace& trace = sim.site_trace(0);

  RFInfer item_level(&sim.model(), &sim.schedule());
  ASSERT_TRUE(item_level.Run(trace, 0, cfg.horizon).ok());

  RFInfer case_level(&sim.model(), &sim.schedule());
  case_level.SetUniverse(sim.all_pallets(), sim.all_cases());
  ASSERT_TRUE(case_level.Run(trace, 0, cfg.horizon).ok());

  // Pallets and cases are co-located only at the entry/exit; expect the
  // majority of cases to resolve to their true pallet.
  int correct = 0, total = 0;
  for (TagId case_tag : sim.all_cases()) {
    TagId inferred = case_level.ContainerOf(case_tag);
    if (!inferred.valid()) continue;
    ++total;
    // True pallet: the case's container at injection time.
    TagId truth = sim.truth().IntervalsOf(case_tag).front().container;
    if (inferred == truth) ++correct;
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(correct) / total, 0.6);
}

TEST(IntegrationTest, MigrationRoundTripPreservesDecision) {
  // Serialize a site's belief about an object, ship it through the real
  // encoder, and confirm the receiving side reconstructs the same belief.
  SupplyChainSim sim(BaseConfig());
  sim.Run();
  StreamingOptions opts;
  opts.truncation = TruncationMethod::kCriticalRegion;
  StreamingInference sender(&sim.model(), &sim.schedule(), opts);
  for (const RawReading& r : sim.site_trace(0).readings()) sender.Observe(r);
  sender.AdvanceTo(800);

  TagId item = sim.all_items().front();
  ObjectMigrationState state;
  state.object = item;
  state.container = sender.ContainerOf(item);
  ObjectContext ctx = sender.ExportObjectContext(item);
  state.weights = ctx.prior_weights;
  state.critical_region = ctx.critical_region;
  state.barrier = ctx.barrier;
  auto bytes = EncodeMigrationStates({state});

  auto decoded = DecodeMigrationStates(bytes);
  ASSERT_TRUE(decoded.ok());
  StreamingInference receiver(&sim.model(), &sim.schedule(), opts);
  const ObjectMigrationState& s = (*decoded)[0];
  ObjectContext rctx;
  rctx.prior_weights = s.weights;
  rctx.critical_region = s.critical_region;
  rctx.barrier = s.barrier;
  receiver.ImportObjectContext(item, rctx);
  receiver.SetImportedBelief(s.object, s.container);
  EXPECT_EQ(receiver.ContainerOf(item), sender.ContainerOf(item));
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  // The full pipeline is bit-for-bit reproducible for a fixed seed.
  auto run_once = [] {
    SupplyChainSim sim(BaseConfig());
    sim.Run();
    RFInfer engine(&sim.model(), &sim.schedule());
    RFID_CHECK_OK(engine.Run(sim.site_trace(0), 0, 800));
    std::vector<std::pair<TagId, TagId>> beliefs;
    for (TagId item : sim.all_items()) {
      beliefs.emplace_back(item, engine.ContainerOf(item));
    }
    return beliefs;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(IntegrationTest, MemoizationDoesNotChangeResults) {
  SupplyChainSim sim(BaseConfig());
  sim.Run();
  InferenceOptions with, without;
  with.memoize = true;
  without.memoize = false;
  RFInfer a(&sim.model(), &sim.schedule(), with);
  RFInfer b(&sim.model(), &sim.schedule(), without);
  ASSERT_TRUE(a.Run(sim.site_trace(0), 0, 800).ok());
  ASSERT_TRUE(b.Run(sim.site_trace(0), 0, 800).ok());
  for (TagId item : sim.all_items()) {
    EXPECT_EQ(a.ContainerOf(item), b.ContainerOf(item));
  }
  EXPECT_NEAR(a.log_likelihood(), b.log_likelihood(), 1e-6);
}

TEST(IntegrationTest, CandidatePruningKeepsAccuracy) {
  // Appendix A.3: candidate pruning is a cost optimization that must not
  // change containment results materially.
  SupplyChainSim sim(BaseConfig());
  sim.Run();
  InferenceOptions narrow;
  narrow.max_candidates = 3;
  InferenceOptions wide;
  wide.max_candidates = 12;
  RFInfer a(&sim.model(), &sim.schedule(), narrow);
  RFInfer b(&sim.model(), &sim.schedule(), wide);
  ASSERT_TRUE(a.Run(sim.site_trace(0), 0, 800).ok());
  ASSERT_TRUE(b.Run(sim.site_trace(0), 0, 800).ok());
  int agree = 0, total = 0;
  for (TagId item : sim.all_items()) {
    ++total;
    if (a.ContainerOf(item) == b.ContainerOf(item)) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.95);
}

// Property sweep: the full single-site pipeline across seeds and read
// rates upholds the paper's headline accuracy claim (stable containment).
class PipelineSweep
    : public testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(PipelineSweep, ContainmentErrorWithinPaperBound) {
  auto [seed, rr] = GetParam();
  SupplyChainConfig cfg = BaseConfig();
  cfg.seed = seed;
  cfg.read_rate.main = rr;
  SupplyChainSim sim(cfg);
  sim.Run();
  RFInfer engine(&sim.model(), &sim.schedule());
  ASSERT_TRUE(engine.Run(sim.site_trace(0), 0, cfg.horizon).ok());
  double err = ContainmentErrorPercent(engine, sim.truth(), sim.all_items(),
                                       cfg.horizon - 1);
  // Paper: < 7% containment error at RR 0.6 with stable containment; our
  // exclusivity-weighted init does better, but allow headroom across seeds.
  EXPECT_LT(err, 8.0) << "seed " << seed << " rr " << rr;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndRates, PipelineSweep,
    testing::Combine(testing::Values(1u, 2u, 3u),
                     testing::Values(0.6, 0.75, 0.9)));

}  // namespace
}  // namespace rfid
