// Tests for tools/lint/rfid_lint.py, the repo-invariant linter.
//
// Each test writes a synthetic mini-tree (the same src/dist + src/obs
// layout the linter expects) into a fresh temp directory, runs the
// linter over it, and asserts that each rule fires exactly where the
// planted defect is -- and nowhere else. A final test runs the linter
// over the live tree and requires it clean, so a defect introduced
// alongside a broken lint rule cannot hide.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

#ifndef RFID_SOURCE_DIR
#error "lint_test requires RFID_SOURCE_DIR (set by CMakeLists.txt)"
#endif

std::string LinterPath() {
  return std::string(RFID_SOURCE_DIR) + "/tools/lint/rfid_lint.py";
}

// Runs the linter over `root`; returns {exit_code, combined output}.
std::pair<int, std::string> RunLinter(const fs::path& root) {
  std::string cmd = "python3 '" + LinterPath() + "' --root '" +
                    root.string() + "' 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (pipe == nullptr) return {-1, ""};
  std::string out;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  int status = pclose(pipe);
  int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return {code, out};
}

class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("rfid_lint_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void WriteFile(const std::string& rel, const std::string& content) {
    fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << content;
  }

  // A minimal tree every rule accepts, so each test perturbs exactly one
  // thing and asserts exactly one finding.
  void WriteCleanTree() {
    WriteFile("src/dist/frame.h",
              "enum class MessageKind { kPing, kPong };\n"
              "inline constexpr int kNumMessageKinds = 2;\n");
    WriteFile("src/dist/frame.cc",
              "switch (k) {\n"
              "  case MessageKind::kPing: return \"ping\";\n"
              "  case MessageKind::kPong: return \"pong\";\n"
              "}\n");
    WriteFile("src/dist/use.cc",
              "void f() { Send(MessageKind::kPing); "
              "Handle(MessageKind::kPong); }\n");
    WriteFile("src/obs/telemetry.h",
              "enum class Phase { kAlpha, kBeta };\n"
              "inline constexpr int kNumPhases = 2;\n");
    WriteFile("src/obs/telemetry.cc",
              "switch (p) {\n"
              "  case Phase::kAlpha: return \"alpha\";\n"
              "  case Phase::kBeta: return \"beta\";\n"
              "}\n");
  }

  fs::path root_;
};

TEST_F(LintTest, CleanTreePasses) {
  WriteCleanTree();
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("rfid_lint: clean"), std::string::npos) << out;
}

TEST_F(LintTest, KindMissingToStringCase) {
  WriteCleanTree();
  WriteFile("src/dist/frame.cc",
            "switch (k) {\n"
            "  case MessageKind::kPing: return \"ping\";\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("[kind-coverage] MessageKind::kPong has no case"),
            std::string::npos)
      << out;
}

TEST_F(LintTest, KindNeverUsedOutsideFrame) {
  WriteCleanTree();
  WriteFile("src/dist/use.cc", "void f() { Send(MessageKind::kPing); }\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("MessageKind::kPong is never used"), std::string::npos)
      << out;
}

TEST_F(LintTest, KindCountMismatch) {
  WriteCleanTree();
  WriteFile("src/dist/frame.h",
            "enum class MessageKind { kPing, kPong };\n"
            "inline constexpr int kNumMessageKinds = 3;\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("kNumMessageKinds is 3 but MessageKind has 2"),
            std::string::npos)
      << out;
}

TEST_F(LintTest, PhaseMissingName) {
  WriteCleanTree();
  WriteFile("src/obs/telemetry.cc",
            "switch (p) {\n"
            "  case Phase::kAlpha: return \"alpha\";\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("[phase-coverage] Phase::kBeta has no case"),
            std::string::npos)
      << out;
}

TEST_F(LintTest, BannedRandFires) {
  WriteCleanTree();
  WriteFile("src/dist/fates.cc",
            "int f() { return rand(); }\n"
            "int g() { std::random_device rd; return rd(); }\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("fates.cc:1: [determinism-rand]"), std::string::npos)
      << out;
  EXPECT_NE(out.find("fates.cc:2: [determinism-rand]"), std::string::npos)
      << out;
}

TEST_F(LintTest, BannedWallClockFires) {
  WriteCleanTree();
  WriteFile("src/dist/clock.cc",
            "auto now() { return std::chrono::system_clock::now(); }\n"
            "long e() { return time(nullptr); }\n"
            "// steady_clock stays legal for telemetry:\n"
            "auto t() { return std::chrono::steady_clock::now(); }\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("clock.cc:1: [determinism-clock]"), std::string::npos)
      << out;
  EXPECT_NE(out.find("clock.cc:2: [determinism-clock]"), std::string::npos)
      << out;
  EXPECT_EQ(out.find("clock.cc:4"), std::string::npos) << out;
}

TEST_F(LintTest, CommentedBannedTokenDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/dist/doc.cc",
            "// Never call rand() here; fates are seeded.\n"
            "int f() { return 4; }\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintTest, UnorderedIterationFires) {
  WriteCleanTree();
  WriteFile("src/dist/iter.cc",
            "std::unordered_map<int, int> m_;\n"
            "void f() {\n"
            "  for (const auto& [k, v] : m_) { Send(k, v); }\n"
            "}\n"
            "void g() {\n"
            "  for (auto it = m_.begin(); it != m_.end(); ++it) {}\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("iter.cc:3: [unordered-iter]"), std::string::npos)
      << out;
  EXPECT_NE(out.find("iter.cc:6: [unordered-iter]"), std::string::npos)
      << out;
}

TEST_F(LintTest, SuppressionWithReasonSilencesUnorderedIteration) {
  WriteCleanTree();
  WriteFile("src/dist/iter.cc",
            "std::unordered_map<int, int> m_;\n"
            "void f() {\n"
            "  // lint:allow(unordered-iter): keyed erase, order-free.\n"
            "  for (const auto& [k, v] : m_) { m2_.erase(k); }\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintTest, MultiLineSuppressionCommentStillApplies) {
  WriteCleanTree();
  WriteFile("src/dist/iter.cc",
            "std::unordered_map<int, int> m_;\n"
            "void f() {\n"
            "  // lint:allow(unordered-iter): keyed erase into another\n"
            "  // map; the surviving set is order-independent.\n"
            "  for (const auto& [k, v] : m_) { m2_.erase(k); }\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintTest, ReasonlessSuppressionIsItselfAFinding) {
  WriteCleanTree();
  WriteFile("src/dist/iter.cc",
            "std::unordered_map<int, int> m_;\n"
            "void f() {\n"
            "  // lint:allow(unordered-iter)\n"
            "  for (const auto& [k, v] : m_) { m2_.erase(k); }\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("suppression without a reason"), std::string::npos)
      << out;
}

TEST_F(LintTest, WrongRuleSuppressionDoesNotApply) {
  WriteCleanTree();
  WriteFile("src/dist/iter.cc",
            "std::unordered_map<int, int> m_;\n"
            "void f() {\n"
            "  // lint:allow(determinism-rand): not the right rule.\n"
            "  for (const auto& [k, v] : m_) { Send(k, v); }\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("[unordered-iter]"), std::string::npos) << out;
}

TEST_F(LintTest, NanConventionFiresOnFakePerfectAccessor) {
  WriteCleanTree();
  WriteFile("src/metrics/acc.cc",
            "double FooErrorPercent() {\n"
            "  return 0.0;\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("acc.cc:1: [nan-convention] FooErrorPercent"),
            std::string::npos)
      << out;
}

TEST_F(LintTest, NanConventionAcceptsDirectNaN) {
  WriteCleanTree();
  WriteFile("src/metrics/acc.cc",
            "double FooErrorPercent() {\n"
            "  if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();\n"
            "  return 100.0 * err_ / n_;\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintTest, NanConventionAcceptsDelegationToNanHelper) {
  WriteCleanTree();
  WriteFile("src/metrics/acc.cc",
            "double Percentish() {\n"
            "  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN()\n"
            "                 : 100.0 * err_ / n_;\n"
            "}\n"
            "double FooErrorPercent() {\n"
            "  return Percentish();\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintTest, NanConventionFollowsTransitiveDelegation) {
  WriteCleanTree();
  WriteFile("src/metrics/acc.cc",
            "double Base() {\n"
            "  return std::numeric_limits<double>::quiet_NaN();\n"
            "}\n"
            "double Middle() { return Base(); }\n"
            "double FooErrorPercent() { return Middle(); }\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintTest, HotLoopAllocFiresOnNewMakeUniqueAndUnreservedPush) {
  WriteCleanTree();
  WriteFile("src/trace/hot.cc",
            "void f(std::vector<int>& out) {\n"
            "  // lint:hot-loop-begin(scatter)\n"
            "  for (int i = 0; i < n; ++i) {\n"
            "    auto* p = new Node(i);\n"
            "    auto q = std::make_unique<Node>(i);\n"
            "    out.push_back(i);\n"
            "  }\n"
            "  // lint:hot-loop-end\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("hot.cc:4: [hot-loop-alloc]"), std::string::npos) << out;
  EXPECT_NE(out.find("hot.cc:5: [hot-loop-alloc]"), std::string::npos) << out;
  EXPECT_NE(out.find("push into 'out' with no preceding reserve"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("inside hot loop 'scatter'"), std::string::npos) << out;
}

TEST_F(LintTest, HotLoopPushAfterReserveIsClean) {
  WriteCleanTree();
  WriteFile("src/trace/hot.cc",
            "void f(std::vector<int>& out) {\n"
            "  out.reserve(n);\n"
            "  // lint:hot-loop-begin(scatter)\n"
            "  for (int i = 0; i < n; ++i) out.push_back(i);\n"
            "  // lint:hot-loop-end\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintTest, AllocationOutsideMarkedRegionIsIgnored) {
  WriteCleanTree();
  WriteFile("src/trace/cold.cc",
            "void f(std::vector<int>& out) {\n"
            "  out.push_back(1);\n"
            "  auto* p = new Node(0);\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintTest, HotLoopAllowWithReasonSilences) {
  WriteCleanTree();
  WriteFile("src/trace/hot.cc",
            "void f(std::vector<int>& run) {\n"
            "  // lint:hot-loop-begin(count)\n"
            "  for (int i = 0; i < n; ++i) {\n"
            "    // lint:allow(hot-loop-alloc): reused; steady-state cap.\n"
            "    run.push_back(i);\n"
            "  }\n"
            "  // lint:hot-loop-end\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintTest, UnbalancedHotLoopMarkersAreFindings) {
  WriteCleanTree();
  WriteFile("src/trace/open.cc",
            "// lint:hot-loop-begin(never-closed)\n"
            "void f() {}\n");
  WriteFile("src/trace/stray.cc",
            "void g() {}\n"
            "// lint:hot-loop-end\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("open.cc:1: [hot-loop-alloc] "
                     "hot-loop-begin(never-closed) is never closed"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("stray.cc:2: [hot-loop-alloc] hot-loop-end without"),
            std::string::npos)
      << out;
}

TEST_F(LintTest, DurableIoOutsideAuditedRegionFires) {
  WriteCleanTree();
  WriteFile("src/dist/store.cc",
            "int Open(const char* p) {\n"
            "  return ::open(p, O_WRONLY | O_CREAT, 0644);\n"
            "}\n"
            "void Append(int fd, const uint8_t* d, size_t n) {\n"
            "  ::write(fd, d, n);\n"
            "}\n"
            "void Publish(const char* a, const char* b) {\n"
            "  ::rename(a, b);\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("store.cc:2: [durability-fsync]"), std::string::npos)
      << out;
  EXPECT_NE(out.find("store.cc:5: [durability-fsync]"), std::string::npos)
      << out;
  EXPECT_NE(out.find("store.cc:8: [durability-fsync]"), std::string::npos)
      << out;
}

TEST_F(LintTest, DurableIoInsideAuditedRegionIsClean) {
  WriteCleanTree();
  WriteFile("src/dist/store.cc",
            "// lint:durable-io-begin(store-writers)\n"
            "int Open(const char* p) {\n"
            "  return ::open(p, O_WRONLY | O_CREAT, 0644);\n"
            "}\n"
            "void Append(int fd, const uint8_t* d, size_t n) {\n"
            "  ::write(fd, d, n);\n"
            "  ::fdatasync(fd);\n"
            "}\n"
            "// lint:durable-io-end\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintTest, DurableIoAllowWithReasonSilences) {
  WriteCleanTree();
  WriteFile("src/dist/store.cc",
            "int Open(const char* p) {\n"
            "  // lint:allow(durability-fsync): one-shot debug dump, not\n"
            "  // a durable artifact.\n"
            "  return ::open(p, O_WRONLY | O_CREAT, 0644);\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintTest, SocketWritesWithoutFileOpensAreOutOfDurableIoScope) {
  WriteCleanTree();
  // A transport writes to connected fds but never opens a file for
  // writing: the durability-fsync gate must not drag it in.
  WriteFile("src/dist/wire.cc",
            "void Send(int fd, const uint8_t* d, size_t n) {\n"
            "  write(fd, d, n);\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 0) << out;
}

TEST_F(LintTest, UnbalancedDurableIoMarkersAreFindings) {
  WriteCleanTree();
  WriteFile("src/dist/store.cc",
            "// lint:durable-io-begin(never-closed)\n"
            "void f() {}\n");
  WriteFile("src/dist/stray.cc",
            "void g() {}\n"
            "// lint:durable-io-end\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("store.cc:1: [durability-fsync] "
                     "durable-io-begin(never-closed) is never closed"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("stray.cc:2: [durability-fsync] durable-io-end "
                     "without"),
            std::string::npos)
      << out;
}

TEST_F(LintTest, MultiLineOpenForWritingStillFires) {
  WriteCleanTree();
  WriteFile("src/dist/store.cc",
            "int Open(const std::string& p) {\n"
            "  return ::open(p.c_str(),\n"
            "                O_WRONLY | O_CREAT | O_APPEND, 0644);\n"
            "}\n");
  auto [code, out] = RunLinter(root_);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("store.cc:2: [durability-fsync]"), std::string::npos)
      << out;
}

// The linter must hold on the real tree: a regression in src/ or a broken
// rule shows up here even if the rfid_lint ctest is skipped.
TEST_F(LintTest, LiveTreeIsClean) {
  auto [code, out] = RunLinter(RFID_SOURCE_DIR);
  EXPECT_EQ(code, 0) << out;
}

}  // namespace
