// Tests for the stream processor: values, operators, the latest-partition
// join, and SEQ(A+) pattern matching with serializable state.
#include <gtest/gtest.h>

// GCC 12 emits a spurious maybe-uninitialized for std::variant-of-string
// copies under -O2 (PR105593); the pattern below is exercised heavily here.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

#include "stream/operator.h"
#include "stream/operators.h"
#include "stream/pattern.h"
#include "stream/tuple.h"
#include "stream/value.h"

namespace rfid {
namespace {

Tuple MakeTuple(Epoch t, std::vector<Value> vs) {
  Tuple tp;
  tp.time = t;
  tp.values = std::move(vs);
  return tp;
}

TEST(ValueTest, ToStringCoversAllTypes) {
  EXPECT_EQ(ToString(Value{std::monostate{}}), "null");
  EXPECT_EQ(ToString(Value{int64_t{42}}), "42");
  EXPECT_EQ(ToString(Value{std::string("x")}), "x");
  EXPECT_EQ(ToString(Value{TagId::Item(3)}), "item:3");
  EXPECT_EQ(ToString(Value{true}), "true");
  EXPECT_TRUE(IsNull(Value{std::monostate{}}));
  EXPECT_FALSE(IsNull(Value{int64_t{0}}));
}

TEST(ValueTest, EncodeDecodeRoundTrip) {
  std::vector<Value> values{std::monostate{}, int64_t{-7}, 3.25,
                            std::string("abc"), TagId::Case(9), true};
  BufferWriter w;
  for (const Value& v : values) EncodeValue(v, &w);
  auto bytes = w.Release();
  BufferReader r(bytes);
  for (const Value& expected : values) {
    Value v;
    ASSERT_TRUE(DecodeValue(&r, &v).ok());
    EXPECT_TRUE(ValueEquals(v, expected)) << ToString(v);
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(ValueTest, DecodeRejectsUnknownTag) {
  std::vector<uint8_t> bytes{0xee};
  BufferReader r(bytes);
  Value v;
  EXPECT_TRUE(DecodeValue(&r, &v).IsCorruption());
}

TEST(OperatorTest, FilterForwardsMatching) {
  FilterOp filter([](const Tuple& t) {
    return std::get<int64_t>(t.at(0)) % 2 == 0;
  });
  CollectSink sink;
  filter.SetDownstream(&sink);
  for (int64_t i = 0; i < 6; ++i) {
    filter.Push(MakeTuple(i, {Value{i}}));
  }
  ASSERT_EQ(sink.results().size(), 3u);
  EXPECT_EQ(std::get<int64_t>(sink.results()[1].at(0)), 2);
}

TEST(OperatorTest, MapTransforms) {
  MapOp map([](const Tuple& t) {
    Tuple out = t;
    out.values.push_back(Value{std::get<int64_t>(t.at(0)) * 10});
    return out;
  });
  CollectSink sink;
  map.SetDownstream(&sink);
  map.Push(MakeTuple(1, {Value{int64_t{4}}}));
  ASSERT_EQ(sink.results().size(), 1u);
  EXPECT_EQ(std::get<int64_t>(sink.results()[0].at(1)), 40);
}

TEST(SchemaTest, IndexLookup) {
  Schema s({"tag", "loc", "container"});
  EXPECT_EQ(s.IndexOf("loc"), 1);
  EXPECT_EQ(s.IndexOf("missing"), -1);
  EXPECT_EQ(s.size(), 3u);
}

TEST(JoinLatestTest, ProbesAgainstLatestPartitionValue) {
  JoinLatestOp join(/*left_key=*/0, /*right_key=*/0);
  CollectSink sink;
  join.SetDownstream(&sink);

  // No right state yet: left probe yields nothing.
  join.Push(MakeTuple(1, {Value{int64_t{7}}, Value{std::string("L1")}}));
  EXPECT_TRUE(sink.results().empty());

  join.right_port()->Push(MakeTuple(2, {Value{int64_t{7}}, Value{10.0}}));
  join.Push(MakeTuple(3, {Value{int64_t{7}}, Value{std::string("L2")}}));
  ASSERT_EQ(sink.results().size(), 1u);
  EXPECT_EQ(std::get<double>(sink.results()[0].at(3)), 10.0);

  // Rows-1 semantics: a newer right tuple replaces the old one.
  join.right_port()->Push(MakeTuple(4, {Value{int64_t{7}}, Value{-5.0}}));
  join.Push(MakeTuple(5, {Value{int64_t{7}}, Value{std::string("L3")}}));
  ASSERT_EQ(sink.results().size(), 2u);
  EXPECT_EQ(std::get<double>(sink.results()[1].at(3)), -5.0);
  EXPECT_EQ(join.partitions(), 1u);
}

TEST(JoinLatestTest, PartitionsAreIndependent) {
  JoinLatestOp join(0, 0);
  CollectSink sink;
  join.SetDownstream(&sink);
  join.right_port()->Push(MakeTuple(1, {Value{int64_t{1}}, Value{1.0}}));
  join.right_port()->Push(MakeTuple(1, {Value{int64_t{2}}, Value{2.0}}));
  join.Push(MakeTuple(2, {Value{int64_t{2}}}));
  ASSERT_EQ(sink.results().size(), 1u);
  EXPECT_EQ(std::get<double>(sink.results()[0].at(2)), 2.0);
}

PatternOptions ShortPattern() {
  PatternOptions opts;
  opts.partition_col = 0;
  opts.value_col = 1;
  opts.min_duration = 100;
  opts.max_gap = 30;
  return opts;
}

TEST(PatternTest, FiresAfterDuration) {
  PatternSeqOp pattern(ShortPattern());
  CollectSink sink;
  pattern.SetDownstream(&sink);
  TagId tag = TagId::Item(1);
  for (Epoch t = 0; t <= 120; t += 10) {
    pattern.Push(MakeTuple(t, {Value{tag}, Value{20.0}}));
  }
  ASSERT_EQ(sink.results().size(), 1u);
  EXPECT_EQ(std::get<TagId>(sink.results()[0].at(0)), tag);
  EXPECT_EQ(std::get<int64_t>(sink.results()[0].at(1)), 0);    // first
  EXPECT_EQ(std::get<int64_t>(sink.results()[0].at(2)), 110);  // last
  EXPECT_EQ(pattern.alerts_emitted(), 1);
}

TEST(PatternTest, EmitsOncePerRun) {
  PatternSeqOp pattern(ShortPattern());
  CollectSink sink;
  pattern.SetDownstream(&sink);
  TagId tag = TagId::Item(1);
  for (Epoch t = 0; t <= 300; t += 10) {
    pattern.Push(MakeTuple(t, {Value{tag}, Value{20.0}}));
  }
  EXPECT_EQ(sink.results().size(), 1u);
}

TEST(PatternTest, GapLapsesRun) {
  PatternSeqOp pattern(ShortPattern());
  CollectSink sink;
  pattern.SetDownstream(&sink);
  TagId tag = TagId::Item(1);
  // Two 60-epoch runs separated by a 100-epoch gap: neither reaches the
  // 100-epoch duration, so no alert fires.
  for (Epoch t = 0; t <= 60; t += 10) {
    pattern.Push(MakeTuple(t, {Value{tag}, Value{20.0}}));
  }
  for (Epoch t = 160; t <= 220; t += 10) {
    pattern.Push(MakeTuple(t, {Value{tag}, Value{20.0}}));
  }
  EXPECT_TRUE(sink.results().empty());
  // The lapsed run restarted: state shows the second run's origin.
  EXPECT_EQ(pattern.StateOf(tag).first_time, 160);
}

TEST(PatternTest, PartitionsIndependent) {
  PatternSeqOp pattern(ShortPattern());
  CollectSink sink;
  pattern.SetDownstream(&sink);
  for (Epoch t = 0; t <= 120; t += 10) {
    pattern.Push(MakeTuple(t, {Value{TagId::Item(1)}, Value{20.0}}));
    if (t <= 50) {
      pattern.Push(MakeTuple(t, {Value{TagId::Item(2)}, Value{20.0}}));
    }
  }
  ASSERT_EQ(sink.results().size(), 1u);
  EXPECT_EQ(std::get<TagId>(sink.results()[0].at(0)), TagId::Item(1));
  EXPECT_EQ(pattern.Partitions().size(), 2u);
}

TEST(PatternTest, ValueLogAccumulates) {
  PatternSeqOp pattern(ShortPattern());
  TagId tag = TagId::Item(1);
  pattern.Push(MakeTuple(0, {Value{tag}, Value{20.0}}));
  pattern.Push(MakeTuple(10, {Value{tag}, Value{21.0}}));
  PatternState s = pattern.StateOf(tag);
  EXPECT_EQ(s.phase, RunPhase::kAccumulating);
  ASSERT_EQ(s.value_log.size(), 2u);
  EXPECT_DOUBLE_EQ(s.value_log[1].second, 21.0);
}

TEST(PatternTest, StateEncodeDecodeRoundTrip) {
  PatternState s;
  s.phase = RunPhase::kAccumulating;
  s.first_time = 100;
  s.last_time = 250;
  s.value_log = {{100, 20.5}, {150, 21.0}, {250, 19.0}};
  auto bytes = s.Encode();
  auto back = PatternState::Decode(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, s);
}

TEST(PatternTest, StateMigrationResumesRun) {
  // Start a run on "site A", migrate the state, finish it on "site B".
  PatternSeqOp site_a(ShortPattern());
  TagId tag = TagId::Item(1);
  for (Epoch t = 0; t <= 60; t += 10) {
    site_a.Push(MakeTuple(t, {Value{tag}, Value{20.0}}));
  }
  auto bytes = site_a.TakeState(tag).Encode();
  EXPECT_EQ(site_a.Partitions().size(), 0u);

  PatternSeqOp site_b(ShortPattern());
  CollectSink sink;
  site_b.SetDownstream(&sink);
  auto state = PatternState::Decode(bytes);
  ASSERT_TRUE(state.ok());
  site_b.SetState(tag, *state);
  for (Epoch t = 70; t <= 120; t += 10) {
    site_b.Push(MakeTuple(t, {Value{tag}, Value{20.0}}));
  }
  ASSERT_EQ(sink.results().size(), 1u);
  // The run is credited from its origin on site A.
  EXPECT_EQ(std::get<int64_t>(sink.results()[0].at(1)), 0);
}

TEST(PatternTest, DecodeRejectsGarbage) {
  std::vector<uint8_t> garbage{0x7f, 0x01};
  EXPECT_FALSE(PatternState::Decode(garbage).ok());
}

TEST(PatternTest, NonTagPartitionIgnored) {
  PatternSeqOp pattern(ShortPattern());
  CollectSink sink;
  pattern.SetDownstream(&sink);
  pattern.Push(MakeTuple(0, {Value{int64_t{5}}, Value{1.0}}));
  EXPECT_TRUE(pattern.Partitions().empty());
}

}  // namespace
}  // namespace rfid
