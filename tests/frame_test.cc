// Tests for the framed wire protocol (dist/frame.h) and the transport
// backends behind Network: codec round-trip, rejection of truncated and
// corrupted frames, streaming (partial-buffer) decode, and byte-accounting
// equality between the in-process and socket backends.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "dist/frame.h"
#include "dist/network.h"
#include "dist/transport_socket.h"

namespace rfid {
namespace {

Frame SampleFrame() {
  Frame f;
  f.from = 3;
  f.to = 7;
  f.kind = MessageKind::kQueryState;
  f.send_epoch = 123456789;
  f.seq = 42;
  f.link_seq = 17;
  f.payload = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01};
  return f;
}

TEST(FrameTest, RoundTrip) {
  const Frame f = SampleFrame();
  const std::vector<uint8_t> wire = EncodeFrameToBytes(f);
  EXPECT_EQ(wire.size(), FrameWireSize(f.payload.size()));
  EXPECT_EQ(wire.size(), kFrameOverheadBytes + f.payload.size());

  Frame decoded;
  size_t consumed = 0;
  ASSERT_TRUE(DecodeFrame(wire.data(), wire.size(), &decoded, &consumed)
                  .ok());
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(decoded, f);
}

TEST(FrameTest, EmptyPayloadRoundTrip) {
  Frame f = SampleFrame();
  f.payload.clear();
  const std::vector<uint8_t> wire = EncodeFrameToBytes(f);
  EXPECT_EQ(wire.size(), kFrameOverheadBytes);
  Frame decoded;
  size_t consumed = 0;
  ASSERT_TRUE(DecodeFrame(wire.data(), wire.size(), &decoded, &consumed)
                  .ok());
  EXPECT_EQ(decoded, f);
}

TEST(FrameTest, TruncatedPrefixesAreIncompleteNeverDecoded) {
  const Frame f = SampleFrame();
  const std::vector<uint8_t> wire = EncodeFrameToBytes(f);
  for (size_t len = 0; len < wire.size(); ++len) {
    Frame decoded;
    size_t consumed = 1;
    const Status st = DecodeFrame(wire.data(), len, &decoded, &consumed);
    ASSERT_FALSE(st.ok()) << "prefix length " << len;
    EXPECT_TRUE(FrameIncomplete(st)) << "prefix length " << len;
    EXPECT_EQ(consumed, 0u) << "prefix length " << len;
  }
}

TEST(FrameTest, CorruptionIsRejected) {
  const Frame f = SampleFrame();
  const std::vector<uint8_t> wire = EncodeFrameToBytes(f);
  // Flipping any single byte must fail the decode (magic, version, kind,
  // ids, epoch, seq, length, payload, or checksum -- the CRC covers them
  // all), and never look like a short read.
  for (size_t i = 0; i < wire.size(); ++i) {
    std::vector<uint8_t> bad = wire;
    bad[i] ^= 0xff;
    Frame decoded;
    size_t consumed = 0;
    const Status st = DecodeFrame(bad.data(), bad.size(), &decoded,
                                  &consumed);
    // A corrupted length field may also read as "incomplete" (the frame
    // now claims to be longer); both rejections are acceptable, silent
    // success is not.
    EXPECT_FALSE(st.ok()) << "flipped byte " << i;
    if (!FrameIncomplete(st)) {
      EXPECT_EQ(st.code(), StatusCode::kCorruption) << "flipped byte " << i;
    }
  }
  // An implausible payload length is rejected before any allocation, and
  // marked unresynchronizable (consumed = 0): the length cannot be
  // trusted to skip the frame.
  std::vector<uint8_t> huge = wire;
  huge[38] = 0xff;
  huge[39] = 0xff;
  huge[40] = 0xff;
  huge[41] = 0xff;
  Frame decoded;
  size_t consumed = 0;
  const Status st = DecodeFrame(huge.data(), huge.size(), &decoded,
                                &consumed);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(consumed, 0u);
}

TEST(FrameTest, ChecksumMismatchIsResyncable) {
  // A payload flip keeps the header trustworthy: the decode must fail
  // with Corruption but report the full wire size so a streaming reader
  // can skip the frame and keep decoding at the next boundary.
  Frame a = SampleFrame();
  Frame b = SampleFrame();
  b.seq = 43;
  b.payload = {7, 8, 9, 10};
  std::vector<uint8_t> stream;
  EncodeFrame(a, &stream);
  const size_t a_wire = stream.size();
  EncodeFrame(b, &stream);
  stream[kFrameHeaderBytes + 2] ^= 0x5a;  // corrupt a's payload

  Frame decoded;
  size_t consumed = 0;
  const Status st =
      DecodeFrame(stream.data(), stream.size(), &decoded, &consumed);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  ASSERT_EQ(consumed, a_wire);

  size_t consumed2 = 0;
  ASSERT_TRUE(DecodeFrame(stream.data() + consumed, stream.size() - consumed,
                          &decoded, &consumed2)
                  .ok());
  EXPECT_EQ(decoded, b);
}

TEST(FrameTest, UnsupportedVersionIsFatal) {
  // A version-1 (or any non-current) frame is a framing-level failure:
  // the layout after the version byte is unknown, so no resync.
  std::vector<uint8_t> wire = EncodeFrameToBytes(SampleFrame());
  wire[4] = 1;
  Frame decoded;
  size_t consumed = 0;
  const Status st = DecodeFrame(wire.data(), wire.size(), &decoded,
                                &consumed);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(consumed, 0u);
}

// ---- FrameView: the zero-copy decode the transports use ----

TEST(FrameViewTest, ViewMatchesOwningDecodeAndPointsIntoBuffer) {
  for (const bool empty_payload : {false, true}) {
    Frame f = SampleFrame();
    if (empty_payload) f.payload.clear();
    const std::vector<uint8_t> wire = EncodeFrameToBytes(f);
    FrameView view;
    size_t consumed = 0;
    ASSERT_TRUE(
        DecodeFrameView(wire.data(), wire.size(), &view, &consumed).ok());
    EXPECT_EQ(consumed, wire.size());
    // The payload span aliases the wire buffer: zero-copy by
    // construction, not by measurement.
    EXPECT_EQ(view.payload, wire.data() + kFrameHeaderBytes);
    EXPECT_EQ(view.payload_len, f.payload.size());
    EXPECT_EQ(view.ToFrame(), f);
  }
}

TEST(FrameViewTest, StatusAndConsumedMatchOwningDecodeExhaustively) {
  // DecodeFrame is documented as DecodeFrameView + ToFrame; prove the
  // contract holds on every truncation and every single-byte flip, so
  // the socket pump's switch to views cannot have changed what gets
  // dropped, resynced, or aborted on.
  const std::vector<uint8_t> wire = EncodeFrameToBytes(SampleFrame());
  for (size_t len = 0; len <= wire.size(); ++len) {
    Frame owned;
    FrameView view;
    size_t consumed_f = 0;
    size_t consumed_v = 0;
    const Status sf = DecodeFrame(wire.data(), len, &owned, &consumed_f);
    const Status sv =
        DecodeFrameView(wire.data(), len, &view, &consumed_v);
    EXPECT_EQ(sf.code(), sv.code()) << "prefix " << len;
    EXPECT_EQ(consumed_f, consumed_v) << "prefix " << len;
  }
  for (size_t i = 0; i < wire.size(); ++i) {
    std::vector<uint8_t> bad = wire;
    bad[i] ^= 0xff;
    Frame owned;
    FrameView view;
    size_t consumed_f = 0;
    size_t consumed_v = 0;
    const Status sf =
        DecodeFrame(bad.data(), bad.size(), &owned, &consumed_f);
    const Status sv =
        DecodeFrameView(bad.data(), bad.size(), &view, &consumed_v);
    EXPECT_EQ(sf.code(), sv.code()) << "flipped byte " << i;
    EXPECT_EQ(consumed_f, consumed_v) << "flipped byte " << i;
  }
}

TEST(FrameTest, StreamingDecodeOfConcatenatedFrames) {
  Frame a = SampleFrame();
  Frame b = SampleFrame();
  b.seq = 43;
  b.payload = {1, 2, 3};
  std::vector<uint8_t> stream;
  EncodeFrame(a, &stream);
  EncodeFrame(b, &stream);

  size_t pos = 0;
  std::vector<Frame> decoded;
  while (pos < stream.size()) {
    Frame f;
    size_t consumed = 0;
    const Status st =
        DecodeFrame(stream.data() + pos, stream.size() - pos, &f, &consumed);
    ASSERT_TRUE(st.ok());
    pos += consumed;
    decoded.push_back(std::move(f));
  }
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], a);
  EXPECT_EQ(decoded[1], b);
}

// ---- Cross-backend equality ----

struct Delivered {
  SiteId to;
  SiteId from;
  MessageKind kind;
  std::vector<uint8_t> payload;
  bool operator==(const Delivered&) const = default;
};

/// Drives an identical message sequence through a Network on the given
/// backend and returns (deliveries in order, the network) for comparison.
std::vector<Delivered> DriveBackend(Network* net, int num_sites) {
  std::vector<Delivered> log;
  for (SiteId s = 0; s < num_sites; ++s) {
    net->RegisterHandler(s, [&log, s](SiteId from, MessageKind kind,
                                      const std::vector<uint8_t>& payload) {
      log.push_back(Delivered{s, from, kind, payload});
    });
  }
  std::vector<uint8_t> big(100000);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  net->AdvanceClock(0);
  net->Send(0, 1, MessageKind::kInferenceState, {1, 2, 3});
  net->Send(1, 2, MessageKind::kDirectory, {});
  net->Send(2, 0, MessageKind::kRawReadings, big);
  net->AdvanceClock(5);
  net->Send(0, 2, MessageKind::kQueryState, {9});
  net->Send(0, 1, MessageKind::kInferenceState, {4, 5});
  for (Epoch t : {0, 5, 10}) {
    for (SiteId s = 0; s < num_sites; ++s) net->DeliverDue(s, t);
  }
  return log;
}

TEST(TransportBackendTest, SocketMatchesInProcessBitForBit) {
  constexpr int kSites = 3;
  Network inproc;
  Network socket;
  socket.ConfigureTransport(TransportKind::kSocket, kSites);
  ASSERT_EQ(socket.transport_kind(), TransportKind::kSocket);
  ASSERT_EQ(socket.transport().name(), "socket");

  const std::vector<Delivered> a = DriveBackend(&inproc, kSites);
  const std::vector<Delivered> b = DriveBackend(&socket, kSites);

  // Identical deliveries in identical order (the 100 KB payload forces
  // multi-read reassembly on the socket side), and identical accounting:
  // framed wire size depends only on payload length, so every counter --
  // totals, per kind, per link, in flight -- matches exactly.
  EXPECT_EQ(a, b);
  EXPECT_EQ(inproc.total_bytes(), socket.total_bytes());
  EXPECT_EQ(inproc.total_messages(), socket.total_messages());
  EXPECT_EQ(inproc.in_flight_messages(), 0);
  EXPECT_EQ(socket.in_flight_messages(), 0);
  for (int k = 0; k < kNumMessageKinds; ++k) {
    const MessageKind kind = static_cast<MessageKind>(k);
    EXPECT_EQ(inproc.BytesOfKind(kind), socket.BytesOfKind(kind))
        << ToString(kind);
    EXPECT_EQ(inproc.MessagesOfKind(kind), socket.MessagesOfKind(kind))
        << ToString(kind);
  }
  for (SiteId x = 0; x < kSites; ++x) {
    for (SiteId y = 0; y < kSites; ++y) {
      EXPECT_EQ(inproc.BytesOnLink(x, y), socket.BytesOnLink(x, y))
          << x << "->" << y;
    }
  }
}

TEST(TransportBackendTest, SocketSurvivesPayloadsBeyondKernelBuffers) {
  // A payload far beyond the default AF_UNIX buffer (~200 KB) forces the
  // sender's write to hit EAGAIN mid-frame; the transport must pump the
  // receive side and finish, and the frame must reassemble intact.
  Network net;
  net.ConfigureTransport(TransportKind::kSocket, 2);
  std::vector<uint8_t> huge(2 * 1024 * 1024);
  for (size_t i = 0; i < huge.size(); ++i) {
    huge[i] = static_cast<uint8_t>((i >> 3) * 131 + i);
  }
  std::vector<uint8_t> got;
  net.RegisterHandler(1, [&](SiteId, MessageKind,
                             const std::vector<uint8_t>& payload) {
    got = payload;
  });
  net.Send(0, 1, MessageKind::kRawReadings, huge);
  EXPECT_EQ(net.DeliverDue(1, 0), 1);
  EXPECT_EQ(got, huge);
}

TEST(TransportBackendTest, SocketFallsBackForUnhostedDestinations) {
  // kDirectorySite has no listener; the socket backend must still queue,
  // charge, and deliver (to no handler) exactly like the in-process one.
  Network net;
  net.ConfigureTransport(TransportKind::kSocket, 2);
  net.Send(0, kDirectorySite, MessageKind::kDirectory, {1, 2, 3});
  EXPECT_EQ(net.total_bytes(), static_cast<int64_t>(FrameWireSize(3)));
  EXPECT_EQ(net.in_flight_messages(), 1);
  EXPECT_EQ(net.DeliverDue(kDirectorySite, 0), 1);
  EXPECT_EQ(net.in_flight_messages(), 0);
}

TEST(TransportBackendTest, TransportKindFromEnvParsesSocket) {
  // The test binary may itself run under RFID_TRANSPORT=socket (the CI
  // socket pass); assert consistency rather than a fixed value.
  const char* env = std::getenv("RFID_TRANSPORT");
  const TransportKind kind = TransportKindFromEnv();
  if (env != nullptr && std::string(env) == "socket") {
    EXPECT_EQ(kind, TransportKind::kSocket);
  } else {
    EXPECT_EQ(kind, TransportKind::kInProcess);
  }
  EXPECT_EQ(ToString(TransportKind::kSocket), "socket");
  EXPECT_EQ(ToString(TransportKind::kInProcess), "in_process");
}

}  // namespace
}  // namespace rfid
