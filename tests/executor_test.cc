// Tests for the bulk-synchronous site executor and the determinism
// contract of the parallel distributed replay: any num_threads value must
// produce bit-identical alerts, accuracy samples, and byte accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dist/distributed.h"
#include "dist/executor.h"
#include "sim/sensors.h"
#include "sim/supply_chain.h"

namespace rfid {
namespace {

TEST(SiteExecutorTest, ResolveThreads) {
  EXPECT_EQ(SiteExecutor::ResolveThreads(0), 1);
  EXPECT_EQ(SiteExecutor::ResolveThreads(1), 1);
  EXPECT_EQ(SiteExecutor::ResolveThreads(4), 4);
  EXPECT_GE(SiteExecutor::ResolveThreads(kAutoThreads), 1);
}

TEST(SiteExecutorTest, SerialModeRunsInline) {
  SiteExecutor exec(0);
  EXPECT_TRUE(exec.serial());
  EXPECT_EQ(exec.num_threads(), 1);
  std::vector<size_t> order;
  exec.Run(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(SiteExecutorTest, RunsEveryIndexExactlyOnce) {
  SiteExecutor exec(4);
  EXPECT_EQ(exec.num_threads(), 4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  exec.Run(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(SiteExecutorTest, ReusableAcrossManyRuns) {
  SiteExecutor exec(3);
  std::atomic<int64_t> sum{0};
  int64_t expected = 0;
  for (int round = 1; round <= 50; ++round) {
    const size_t n = static_cast<size_t>(round % 7);  // exercises n == 0
    exec.Run(n, [&](size_t i) {
      sum.fetch_add(static_cast<int64_t>(i) + 1);
    });
    expected += static_cast<int64_t>(n) * (static_cast<int64_t>(n) + 1) / 2;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(SiteExecutorTest, FewerItemsThanThreads) {
  SiteExecutor exec(8);
  std::atomic<int> count{0};
  exec.Run(2, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 2);
}

// ---- Determinism of the parallel replay ----

SupplyChainConfig DeterminismConfig() {
  SupplyChainConfig cfg;
  cfg.num_warehouses = 4;
  cfg.shelves_per_warehouse = 4;
  cfg.cases_per_pallet = 2;
  cfg.items_per_case = 6;
  cfg.shelf_stay = 300;
  cfg.transit_time = 30;
  cfg.horizon = 1500;
  cfg.seed = 33;
  return cfg;
}

DistributedOptions DeterminismOptions(int num_threads,
                                      int directory_shards = 0,
                                      bool hierarchical = false) {
  DistributedOptions opts;
  opts.site.migration = MigrationMode::kFullReadings;
  opts.site.hierarchical = hierarchical;
  opts.site.streaming.inference_period = 300;
  opts.site.streaming.recent_history = 400;
  opts.attach_queries = true;
  opts.q1 = ExposureQuery::Q1Config(/*duration=*/300);
  opts.q1.max_gap = 400;
  opts.q2 = ExposureQuery::Q2Config(/*duration=*/300);
  opts.q2.max_gap = 400;
  opts.num_threads = num_threads;
  opts.directory_shards = directory_shards;
  return opts;
}

void ExpectSameAlerts(const std::vector<ExposureAlert>& a,
                      const std::vector<ExposureAlert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tag, b[i].tag) << "alert " << i;
    EXPECT_EQ(a[i].first_time, b[i].first_time) << "alert " << i;
    EXPECT_EQ(a[i].last_time, b[i].last_time) << "alert " << i;
    EXPECT_EQ(a[i].n_events, b[i].n_events) << "alert " << i;
  }
}

/// The full bit-for-bit surface: accuracy samples, merged alerts, byte
/// accounting down to per-kind and per-link counters, directory state and
/// per-shard load, and every item's final believed container.
void ExpectBitIdentical(const DistributedSystem& reference,
                        const DistributedSystem& candidate,
                        const SupplyChainSim& sim) {
  EXPECT_EQ(reference.snapshots(), candidate.snapshots());
  EXPECT_EQ(reference.case_snapshots(), candidate.case_snapshots());

  ExpectSameAlerts(reference.AllAlerts(0), candidate.AllAlerts(0));
  ExpectSameAlerts(reference.AllAlerts(1), candidate.AllAlerts(1));

  EXPECT_EQ(reference.network().total_bytes(),
            candidate.network().total_bytes());
  EXPECT_EQ(reference.network().total_messages(),
            candidate.network().total_messages());
  for (int k = 0; k < kNumMessageKinds; ++k) {
    const MessageKind kind = static_cast<MessageKind>(k);
    EXPECT_EQ(reference.network().BytesOfKind(kind),
              candidate.network().BytesOfKind(kind))
        << ToString(kind);
    EXPECT_EQ(reference.network().MessagesOfKind(kind),
              candidate.network().MessagesOfKind(kind))
        << ToString(kind);
  }
  const SiteId sites = sim.config().num_warehouses;
  for (SiteId a = 0; a < sites; ++a) {
    for (SiteId b = 0; b < sites; ++b) {
      EXPECT_EQ(reference.network().BytesOnLink(a, b),
                candidate.network().BytesOnLink(a, b))
          << a << "->" << b;
    }
  }

  EXPECT_EQ(reference.ons().updates(), candidate.ons().updates());
  EXPECT_EQ(reference.ons().unregisters(), candidate.ons().unregisters());
  EXPECT_EQ(reference.ons().charged_lookups(),
            candidate.ons().charged_lookups());
  EXPECT_EQ(reference.ons().cache_hits(), candidate.ons().cache_hits());
  EXPECT_EQ(reference.ons().size(), candidate.ons().size());
  ASSERT_EQ(reference.ons().num_shards(), candidate.ons().num_shards());
  for (int s = 0; s < reference.ons().num_shards(); ++s) {
    EXPECT_EQ(reference.ons().shard_stats(s).bytes,
              candidate.ons().shard_stats(s).bytes)
        << "shard " << s;
    EXPECT_EQ(reference.ons().shard_stats(s).charged_lookups,
              candidate.ons().shard_stats(s).charged_lookups)
        << "shard " << s;
  }
  for (TagId item : sim.all_items()) {
    EXPECT_EQ(reference.BelievedContainer(item),
              candidate.BelievedContainer(item));
    EXPECT_EQ(reference.BelievedPallet(item), candidate.BelievedPallet(item));
  }
  for (TagId c : sim.all_cases()) {
    EXPECT_EQ(reference.BelievedContainer(c), candidate.BelievedContainer(c));
  }
}

// Runs the full thread x shard matrix: within a shard count, every
// num_threads value must be bit-identical down to per-link bytes; across
// shard counts, everything except the per-link distribution (which is the
// point of sharding) must also be identical -- totals, alerts, snapshots,
// directory counters, and beliefs.
TEST(DeterminismTest, ThreadAndShardMatrixMatchesBitForBit) {
  SupplyChainConfig cfg = DeterminismConfig();
  SupplyChainSim sim(cfg);
  sim.Run();
  ASSERT_FALSE(sim.transfers().empty());

  ProductCatalog catalog;
  for (TagId item : sim.all_items()) {
    catalog.RegisterProduct(item,
                            ProductInfo{"frozen_food", true, false, false});
  }
  for (TagId c : sim.all_cases()) {
    catalog.RegisterContainer(c, ContainerInfo{ContainerClass::kPlain});
  }
  SensorConfig scfg;
  Rng rng(5);
  auto sensors = GenerateSensorStream(scfg, sim.layout().num_locations(),
                                      cfg.horizon, rng);

  const std::vector<int> kThreads = {0, 1, 4};
  const std::vector<int> kShards = {1, 4};

  std::vector<std::unique_ptr<DistributedSystem>> references;
  for (int shards : kShards) {
    std::unique_ptr<DistributedSystem> reference;
    for (int threads : kThreads) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(shards));
      auto sys = std::make_unique<DistributedSystem>(
          &sim, DeterminismOptions(threads, shards), &catalog, &sensors);
      sys->Run();
      if (reference == nullptr) {
        ASSERT_FALSE(sys->snapshots().empty());
        EXPECT_FALSE(sys->AllAlerts(0).empty());
        EXPECT_GT(
            sys->network().BytesOfKind(MessageKind::kInferenceState), 0);
        EXPECT_GT(sys->network().BytesOfKind(MessageKind::kDirectory), 0);
        EXPECT_EQ(sys->ons().num_shards(), shards);
        reference = std::move(sys);
        continue;
      }
      ExpectBitIdentical(*reference, *sys, sim);
    }
    references.push_back(std::move(reference));
  }

  // ---- Transport matrix: {in-process, socket} x num_threads {0, 1, 4} ----
  // The socket backend pushes every frame through real loopback sockets
  // (encode, kernel, decode); alerts, accuracy, directory state, and byte
  // accounting must still match the in-process replay bit for bit. The
  // in-process half of the matrix is references[1] and the loop above
  // (same options: directory_shards = 4).
  for (int threads : kThreads) {
    SCOPED_TRACE("transport=socket threads=" + std::to_string(threads));
    DistributedOptions opts = DeterminismOptions(threads, /*shards=*/4);
    opts.transport = TransportKind::kSocket;
    auto sys = std::make_unique<DistributedSystem>(&sim, opts, &catalog,
                                                   &sensors);
    sys->Run();
    EXPECT_EQ(sys->network().transport_kind(), TransportKind::kSocket);
    ExpectBitIdentical(*references[1], *sys, sim);
  }

  // Across shard counts: routing must not change what happens, only where
  // the directory bytes land. Compare the shard-independent surface of
  // the serial runs.
  ASSERT_EQ(references.size(), 2u);
  const DistributedSystem* single = references[0].get();
  const DistributedSystem* sharded = references[1].get();
  EXPECT_EQ(single->snapshots(), sharded->snapshots());
  ExpectSameAlerts(single->AllAlerts(0), sharded->AllAlerts(0));
  ExpectSameAlerts(single->AllAlerts(1), sharded->AllAlerts(1));
  EXPECT_EQ(single->network().total_bytes(),
            sharded->network().total_bytes());
  for (int k = 0; k < kNumMessageKinds; ++k) {
    const MessageKind kind = static_cast<MessageKind>(k);
    EXPECT_EQ(single->network().BytesOfKind(kind),
              sharded->network().BytesOfKind(kind))
        << ToString(kind);
  }
  EXPECT_EQ(single->ons().updates(), sharded->ons().updates());
  EXPECT_EQ(single->ons().charged_lookups(),
            sharded->ons().charged_lookups());
  EXPECT_EQ(single->ons().cache_hits(), sharded->ons().cache_hits());
  for (TagId item : sim.all_items()) {
    EXPECT_EQ(single->BelievedContainer(item),
              sharded->BelievedContainer(item));
  }
}

// With the Appendix A.4 second level enabled, the determinism contract
// must extend to the case→pallet engine: case accuracy samples, the
// two-level migration payload bytes, and every transitive BelievedPallet
// answer are bit-identical across {in-process, socket} × num_threads
// {0, 1, 4}.
TEST(DeterminismTest, HierarchicalTransportThreadMatrixMatchesBitForBit) {
  SupplyChainConfig cfg = DeterminismConfig();
  SupplyChainSim sim(cfg);
  sim.Run();
  ASSERT_FALSE(sim.transfers().empty());

  ProductCatalog catalog;
  for (TagId item : sim.all_items()) {
    catalog.RegisterProduct(item,
                            ProductInfo{"frozen_food", true, false, false});
  }
  for (TagId c : sim.all_cases()) {
    catalog.RegisterContainer(c, ContainerInfo{ContainerClass::kPlain});
  }
  SensorConfig scfg;
  Rng rng(5);
  auto sensors = GenerateSensorStream(scfg, sim.layout().num_locations(),
                                      cfg.horizon, rng);

  std::unique_ptr<DistributedSystem> reference;
  for (TransportKind transport :
       {TransportKind::kInProcess, TransportKind::kSocket}) {
    for (int threads : {0, 1, 4}) {
      SCOPED_TRACE("transport=" + ToString(transport) +
                   " threads=" + std::to_string(threads));
      DistributedOptions opts = DeterminismOptions(threads, /*shards=*/4,
                                                   /*hierarchical=*/true);
      opts.transport = transport;
      auto sys = std::make_unique<DistributedSystem>(&sim, opts, &catalog,
                                                     &sensors);
      sys->Run();
      if (reference == nullptr) {
        ASSERT_FALSE(sys->snapshots().empty());
        ASSERT_FALSE(sys->case_snapshots().empty());
        EXPECT_GT(
            sys->network().BytesOfKind(MessageKind::kInferenceState), 0);
        reference = std::move(sys);
        continue;
      }
      ExpectBitIdentical(*reference, *sys, sim);
    }
  }
}

// Telemetry must observe, never perturb: the replay with collection
// disabled, metrics-only, and metrics + Chrome trace must be bit-identical
// across the full {transport} x {threads} matrix. Every value telemetry
// records derives from wall clocks or events the replay already performs,
// so this holds by construction -- this test keeps it that way.
TEST(DeterminismTest, TelemetryOnOffMatchesBitForBit) {
  SupplyChainConfig cfg = DeterminismConfig();
  SupplyChainSim sim(cfg);
  sim.Run();

  const std::string trace_path =
      ::testing::TempDir() + "/executor_test_trace.json";
  std::unique_ptr<DistributedSystem> reference;
  for (TransportKind transport :
       {TransportKind::kInProcess, TransportKind::kSocket}) {
    for (int threads : {0, 1, 4}) {
      for (int telemetry : {0, 1, 2}) {  // off / metrics / metrics+trace
        SCOPED_TRACE("transport=" + ToString(transport) +
                     " threads=" + std::to_string(threads) +
                     " telemetry=" + std::to_string(telemetry));
        DistributedOptions opts = DeterminismOptions(threads, /*shards=*/4,
                                                     /*hierarchical=*/true);
        opts.transport = transport;
        opts.collect_metrics = telemetry > 0;
        if (telemetry == 2) opts.trace_path = trace_path;
        auto sys = std::make_unique<DistributedSystem>(&sim, opts);
        sys->Run();
        if (telemetry == 2) {
          ASSERT_NE(sys->telemetry(), nullptr);
          EXPECT_TRUE(sys->telemetry()->tracing());
          EXPECT_GT(sys->telemetry()->sink()->size(), 0u);
          EXPECT_GT(
              sys->telemetry()->phase_histogram(obs::Phase::kInference)
                  .count(),
              0);
        } else if (telemetry == 0) {
          EXPECT_EQ(sys->telemetry(), nullptr);
        }
        if (reference == nullptr) {
          ASSERT_FALSE(sys->snapshots().empty());
          reference = std::move(sys);
          continue;
        }
        ExpectBitIdentical(*reference, *sys, sim);
      }
    }
  }
  std::remove(trace_path.c_str());
}

// PR 9 determinism matrix: the hot-path machinery -- the arena-backed
// window index (StreamingOptions::arena_index), SoA columns
// (soa_columns), and the pipelined centralized flush (pipeline_flush) --
// must be pure optimization. Every toggle combination, alone and
// together, across threads {0, 4} and both transports, in both
// processing modes, must match the everything-off serial replay bit for
// bit (alerts, accuracy samples, per-kind/per-link bytes, directory
// counters, beliefs). CI additionally re-runs this binary with
// RFID_TRANSPORT=socket and under ASan/TSan.
TEST(DeterminismTest, HotPathTogglesMatchBitForBit) {
  SupplyChainConfig cfg = DeterminismConfig();
  SupplyChainSim sim(cfg);
  sim.Run();
  ASSERT_FALSE(sim.transfers().empty());

  struct Toggles {
    bool arena;
    bool soa;
    bool pipeline;
    int threads;
    TransportKind transport;
  };
  const std::vector<Toggles> matrix = {
      {true, false, false, 0, TransportKind::kInProcess},
      {false, true, false, 0, TransportKind::kInProcess},
      {false, false, true, 0, TransportKind::kInProcess},
      {true, true, true, 0, TransportKind::kInProcess},
      {false, false, false, 4, TransportKind::kInProcess},
      {true, true, true, 4, TransportKind::kInProcess},
      {true, true, true, 0, TransportKind::kSocket},
      {true, true, true, 4, TransportKind::kSocket},
  };
  for (ProcessingMode mode :
       {ProcessingMode::kCentralized, ProcessingMode::kDistributed}) {
    auto run = [&](const Toggles& tg) {
      DistributedOptions opts = DeterminismOptions(tg.threads);
      opts.mode = mode;
      opts.transport = tg.transport;
      opts.site.streaming.arena_index = tg.arena;
      opts.site.streaming.soa_columns = tg.soa;
      opts.pipeline_flush = tg.pipeline;
      auto sys = std::make_unique<DistributedSystem>(&sim, opts);
      sys->Run();
      return sys;
    };
    const auto reference =
        run({false, false, false, 0, TransportKind::kInProcess});
    ASSERT_FALSE(reference->snapshots().empty());
    if (mode == ProcessingMode::kCentralized) {
      ASSERT_GT(reference->network().BytesOfKind(MessageKind::kRawReadings),
                0);
    }
    for (const Toggles& tg : matrix) {
      SCOPED_TRACE("mode=" + ToString(mode) +
                   " arena=" + std::to_string(tg.arena) +
                   " soa=" + std::to_string(tg.soa) +
                   " pipeline=" + std::to_string(tg.pipeline) +
                   " threads=" + std::to_string(tg.threads) +
                   " transport=" + ToString(tg.transport));
      ExpectBitIdentical(*reference, *run(tg), sim);
    }
  }
}

}  // namespace
}  // namespace rfid
