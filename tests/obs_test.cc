// Tests for the telemetry layer (src/obs): metrics registry correctness
// (histogram buckets and quantile edge cases, concurrent registration --
// the TSan CI target), JSON emit/parse round-trips, Chrome trace
// well-formedness, and the RunReport schema.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "obs/trace_sink.h"

namespace rfid {
namespace obs {
namespace {

// ---- Counters / gauges / registry ----

TEST(MetricsRegistryTest, CounterAccumulates) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("net/bytes/kind=raw");
  c->Add(10);
  c->Add(32);
  EXPECT_EQ(c->value(), 42);
}

TEST(MetricsRegistryTest, GaugeIsLastWriteWins) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("queue/depth");
  g->Set(7);
  g->Set(3);
  EXPECT_EQ(g->value(), 3);
}

TEST(MetricsRegistryTest, SameNameSameInstrument) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.GetCounter("a"), reg.GetCounter("a"));
  EXPECT_EQ(reg.GetHistogram("h"), reg.GetHistogram("h"));
  EXPECT_NE(static_cast<void*>(reg.GetCounter("a")),
            static_cast<void*>(reg.GetCounter("b")));
}

TEST(MetricsRegistryTest, EntriesSortedByName) {
  MetricsRegistry reg;
  reg.GetCounter("zeta");
  reg.GetHistogram("alpha");
  reg.GetGauge("mid");
  const std::vector<MetricsRegistry::Entry> entries = reg.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "alpha");
  EXPECT_NE(entries[0].histogram, nullptr);
  EXPECT_EQ(entries[1].name, "mid");
  EXPECT_NE(entries[1].gauge, nullptr);
  EXPECT_EQ(entries[2].name, "zeta");
  EXPECT_NE(entries[2].counter, nullptr);
}

TEST(MetricsRegistryTest, GlobalRegistryIsAProcessSingleton) {
  Counter* c = MetricsRegistry::Global().GetCounter("obs_test/global");
  EXPECT_EQ(c, MetricsRegistry::Global().GetCounter("obs_test/global"));
}

// Registration races against recording: many threads creating overlapping
// instrument names while hammering them. The TSan CI pass runs this test;
// the assertions double as a liveness check (every Add lands somewhere).
TEST(MetricsRegistryTest, ConcurrentRegistrationAndRecording) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&reg, i] {
      for (int j = 0; j < kIters; ++j) {
        // Names overlap across threads, so most Get*s race on the same
        // entries; each also keeps one private name alive.
        reg.GetCounter("shared/counter")->Add(1);
        reg.GetHistogram("shared/histogram")->Record(j);
        reg.GetCounter("private/" + std::to_string(i))->Add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("shared/counter")->value(), kThreads * kIters);
  EXPECT_EQ(reg.GetHistogram("shared/histogram")->count(),
            kThreads * kIters);
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(reg.GetCounter("private/" + std::to_string(i))->value(),
              kIters);
  }
}

// ---- Histogram ----

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(-5), 0);  // clamped, not UB
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(1023), 10);
  EXPECT_EQ(Histogram::BucketOf(1024), 11);
  EXPECT_EQ(Histogram::BucketOf(INT64_MAX), 63);
}

// Regression: BucketOf narrows std::bit_width's result to int. Pin the
// invariant that makes the narrowing safe -- every representable sample
// lands in [0, kNumBuckets), with one bucket per bit position.
TEST(HistogramTest, BucketOfCoversEveryBitPosition) {
  for (int bit = 0; bit < 63; ++bit) {
    const int64_t v = int64_t{1} << bit;
    const int b = Histogram::BucketOf(v);
    EXPECT_EQ(b, bit + 1) << "value 1<<" << bit;
    EXPECT_GE(b, 0);
    EXPECT_LT(b, Histogram::kNumBuckets);
    // The top value of the same bucket (next power of two minus one).
    EXPECT_EQ(Histogram::BucketOf(v + (v - 1)), b) << "value 2^" << bit + 1
                                                   << "-1";
  }
}

TEST(HistogramTest, SnapshotCountsSumMinMax) {
  Histogram h;
  for (int64_t v : {5, 9, 100, 0, 7}) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 5);
  EXPECT_EQ(s.sum, 121);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 100);
  EXPECT_DOUBLE_EQ(s.Mean(), 121.0 / 5.0);
}

TEST(HistogramTest, EmptyQuantilesAreNaN) {
  const HistogramSnapshot s = Histogram().Snapshot();
  EXPECT_TRUE(std::isnan(s.P50()));
  EXPECT_TRUE(std::isnan(s.P99()));
  EXPECT_TRUE(std::isnan(s.Mean()));
}

TEST(HistogramTest, SingleValueQuantilesClampToIt) {
  Histogram h;
  h.Record(1000);
  const HistogramSnapshot s = h.Snapshot();
  // Interpolation inside the holding bucket is clamped to the observed
  // range, so one sample answers itself at every quantile.
  EXPECT_DOUBLE_EQ(s.P50(), 1000.0);
  EXPECT_DOUBLE_EQ(s.P95(), 1000.0);
  EXPECT_DOUBLE_EQ(s.P99(), 1000.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1000.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, QuantilesOrderedAndWithinRange) {
  Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();
  const double p50 = s.P50();
  const double p95 = s.P95();
  const double p99 = s.P99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // Log2 buckets carry ~2x relative error; p50 of uniform 1..1000 must
  // land in the bucket holding 500 = [256, 512).
  EXPECT_GE(p50, 256.0);
  EXPECT_LT(p50, 1024.0);
}

// Regression: a fractional rank landing between two buckets (just past
// the cumulative count of one, before the first sample of the next) used
// to interpolate below the holding bucket's lower edge, making p99 < p95.
TEST(HistogramTest, QuantileMonotoneAcrossBucketBoundary) {
  Histogram h;
  // 162 samples through bucket 8, then 2 in bucket 9: the p99 rank
  // (0.99 * 163 + 1 = 162.37) falls in the inter-bucket gap.
  h.Record(0);
  for (int i = 0; i < 5; ++i) h.Record(5);     // bucket 3
  for (int i = 0; i < 4; ++i) h.Record(10);    // bucket 4
  for (int i = 0; i < 8; ++i) h.Record(20);    // bucket 5
  for (int i = 0; i < 14; ++i) h.Record(40);   // bucket 6
  for (int i = 0; i < 37; ++i) h.Record(80);   // bucket 7
  for (int i = 0; i < 93; ++i) h.Record(160);  // bucket 8
  for (int i = 0; i < 2; ++i) h.Record(256);   // bucket 9
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.count, 164);
  double prev = 0.0;
  for (double q : {0.0, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double v = s.Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 256.0);
    prev = v;
  }
}

TEST(HistogramTest, ZeroOnlyDistribution) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(0);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 0);
  EXPECT_DOUBLE_EQ(s.P50(), 0.0);
  EXPECT_DOUBLE_EQ(s.P99(), 0.0);
}

// ---- JSON ----

TEST(JsonTest, DumpAndParseRoundTrip) {
  JsonValue root = JsonValue::Object();
  root.Set("int", int64_t{42});
  root.Set("neg", int64_t{-7});
  root.Set("pi", 3.25);
  root.Set("s", "hello \"world\"\n");
  root.Set("t", true);
  root.Set("nothing", JsonValue());
  JsonValue arr = JsonValue::Array();
  arr.Append(int64_t{1});
  arr.Append("two");
  root.Set("arr", std::move(arr));

  for (int indent : {0, 2}) {
    Result<JsonValue> parsed = ParseJson(root.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Find("int")->AsInt(), 42);
    EXPECT_EQ(parsed->Find("neg")->AsInt(), -7);
    EXPECT_DOUBLE_EQ(parsed->Find("pi")->AsDouble(), 3.25);
    EXPECT_EQ(parsed->Find("s")->AsString(), "hello \"world\"\n");
    EXPECT_TRUE(parsed->Find("t")->AsBool());
    EXPECT_TRUE(parsed->Find("nothing")->is_null());
    ASSERT_EQ(parsed->Find("arr")->items().size(), 2u);
    EXPECT_EQ(parsed->Find("arr")->items()[1].AsString(), "two");
  }
}

TEST(JsonTest, NonFiniteDoublesSerializeAsNull) {
  JsonValue root = JsonValue::Object();
  root.Set("nan", std::numeric_limits<double>::quiet_NaN());
  root.Set("inf", std::numeric_limits<double>::infinity());
  Result<JsonValue> parsed = ParseJson(root.Dump(0));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Find("nan")->is_null());
  EXPECT_TRUE(parsed->Find("inf")->is_null());
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue root = JsonValue::Object();
  root.Set("z", 1);
  root.Set("a", 2);
  root.Set("m", 3);
  root.Set("z", 4);  // replace keeps first-insertion position
  ASSERT_EQ(root.members().size(), 3u);
  EXPECT_EQ(root.members()[0].first, "z");
  EXPECT_EQ(root.members()[0].second.AsInt(), 4);
  EXPECT_EQ(root.members()[1].first, "a");
  EXPECT_EQ(root.members()[2].first, "m");
}

TEST(JsonTest, MalformedInputRejected) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\": 1,}"}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << bad;
  }
}

TEST(JsonTest, UnicodeEscapeDecodesToUtf8) {
  Result<JsonValue> parsed = ParseJson("\"\\u00e9\\u0041\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "\xc3\xa9""A");
}

// ---- Trace sink ----

TEST(TraceSinkTest, ToJsonIsWellFormedChromeTrace) {
  TraceSink sink;
  sink.Add(TraceEvent{"window_compute", kFirstSiteTrack + 1, 1000, 500, 30});
  sink.Add(TraceEvent{"queue_drain", kDriverTrack, 2000, 250, 60});
  EXPECT_EQ(sink.size(), 2u);

  Result<JsonValue> parsed = ParseJson(sink.ToJson(/*num_sites=*/2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("displayTimeUnit")->AsString(), "ms");
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 4 thread_name metadata records (driver, transport, 2 sites) + 2 slices.
  ASSERT_EQ(events->items().size(), 6u);
  int slices = 0;
  int metadata = 0;
  for (const JsonValue& e : events->items()) {
    const std::string ph = e.Find("ph")->AsString();
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(e.Find("name")->AsString(), "thread_name");
    } else {
      ASSERT_EQ(ph, "X");
      ++slices;
      EXPECT_GE(e.Find("dur")->AsDouble(), 0.0);
      EXPECT_NE(e.Find("args")->Find("epoch"), nullptr);
    }
  }
  EXPECT_EQ(metadata, 4);
  EXPECT_EQ(slices, 2);
  // ts/dur are microseconds: 1000 ns -> 1.0 us.
  const JsonValue& first = events->items()[4];
  EXPECT_DOUBLE_EQ(first.Find("ts")->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(first.Find("dur")->AsDouble(), 0.5);
  EXPECT_EQ(first.Find("tid")->AsInt(), kFirstSiteTrack + 1);
}

// ---- Telemetry + PhaseTimer ----

TEST(TelemetryTest, PhaseTimerRecordsHistogramAndTrace) {
  Telemetry tel("unused_path.json");  // non-empty -> sink active
  ASSERT_TRUE(tel.tracing());
  { PhaseTimer t(&tel, Phase::kInference, /*epoch=*/300); }
  { PhaseTimer t(&tel, Phase::kInference, /*epoch=*/600); }
  EXPECT_EQ(tel.phase_histogram(Phase::kInference).count(), 2);
  EXPECT_EQ(tel.phase_histogram(Phase::kQueueDrain).count(), 0);
  EXPECT_EQ(tel.sink()->size(), 2u);
}

TEST(TelemetryTest, NullTelemetryIsANoOp) {
  // Must not crash or allocate; this is the collect_metrics=false path.
  PhaseTimer t(nullptr, Phase::kWindowCompute, 0);
}

TEST(TelemetryTest, WireBytesBecomeRegistryCounters) {
  Telemetry tel;
  EXPECT_FALSE(tel.tracing());
  tel.AddWireBytes(1, "inference_state", 100);
  tel.AddWireBytes(1, "inference_state", 50);
  tel.AddWireBytes(3, "directory", 38);
  EXPECT_EQ(
      tel.registry().GetCounter("net/bytes/kind=inference_state")->value(),
      150);
  EXPECT_EQ(
      tel.registry()
          .GetCounter("net/messages/kind=inference_state")
          ->value(),
      2);
  EXPECT_EQ(tel.registry().GetCounter("net/bytes/kind=directory")->value(),
            38);
}

TEST(TelemetryTest, PhaseNamesAreStableRegistryKeys) {
  Telemetry tel;
  EXPECT_STREQ(PhaseName(Phase::kWindowCompute), "window_compute");
  EXPECT_STREQ(PhaseName(Phase::kKernelRead), "kernel_read");
  // Every phase is pre-registered under phase/<name>.
  bool found = false;
  for (const MetricsRegistry::Entry& e : tel.registry().Entries()) {
    if (e.name == "phase/window_compute") found = e.histogram != nullptr;
  }
  EXPECT_TRUE(found);
}

// ---- RunReport ----

TEST(RunReportTest, SchemaRoundTrip) {
  MetricsRegistry reg;
  reg.GetCounter("net/bytes/kind=raw_readings")->Add(1234);
  reg.GetGauge("inflight")->Set(5);
  Histogram* h = reg.GetHistogram("phase/inference");
  for (int64_t v : {100, 200, 400}) h->Record(v);

  RunReport report("obs_test");
  report.Set("scale", 1);
  report.AddRow("rows_a", [] {
    JsonValue r = JsonValue::Object();
    r.Set("k", 1);
    return r;
  }());
  report.AddRow("rows_a", [] {
    JsonValue r = JsonValue::Object();
    r.Set("k", 2);
    return r;
  }());
  report.AddMetrics(reg);

  const std::string path = ::testing::TempDir() + "/obs_test_report.json";
  ASSERT_TRUE(report.Write(path).ok());
  std::string text;
  {
    FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, n);
    }
    std::fclose(f);
  }
  std::remove(path.c_str());

  Result<JsonValue> parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("report_version")->AsInt(), kReportVersion);
  EXPECT_EQ(parsed->Find("bench")->AsString(), "obs_test");
  EXPECT_EQ(parsed->Find("scale")->AsInt(), 1);
  const JsonValue* rows = parsed->Find("rows")->Find("rows_a");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->items().size(), 2u);
  EXPECT_EQ(rows->items()[1].Find("k")->AsInt(), 2);

  const JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->Find("counters")
                ->Find("net/bytes/kind=raw_readings")
                ->AsInt(),
            1234);
  EXPECT_EQ(metrics->Find("gauges")->Find("inflight")->AsInt(), 5);
  const JsonValue* hist =
      metrics->Find("histograms")->Find("phase/inference");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->AsInt(), 3);
  EXPECT_EQ(hist->Find("sum")->AsInt(), 700);
  EXPECT_EQ(hist->Find("min")->AsInt(), 100);
  EXPECT_EQ(hist->Find("max")->AsInt(), 400);
  const double p50 = hist->Find("p50")->AsDouble();
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p50, 400.0);
  EXPECT_LE(p50, hist->Find("p99")->AsDouble());
}

TEST(RunReportTest, EmptyHistogramExportsNullQuantiles) {
  MetricsRegistry reg;
  reg.GetHistogram("phase/idle");
  RunReport report("obs_test");
  report.AddMetrics(reg);
  Result<JsonValue> parsed = ParseJson(report.ToJson());
  ASSERT_TRUE(parsed.ok());
  const JsonValue* hist =
      parsed->Find("metrics")->Find("histograms")->Find("phase/idle");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->Find("count")->AsInt(), 0);
  EXPECT_TRUE(hist->Find("p50")->is_null());
  EXPECT_TRUE(hist->Find("min")->is_null());
  EXPECT_TRUE(hist->Find("mean")->is_null());
}

}  // namespace
}  // namespace obs
}  // namespace rfid
