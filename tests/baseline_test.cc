// Tests for the SMURF smoother and the SMURF* containment heuristic.
#include <gtest/gtest.h>

#include "baseline/smurf.h"
#include "baseline/smurf_star.h"
#include "common/rng.h"
#include "inference/evaluate.h"
#include "model/read_rate.h"
#include "model/schedule.h"
#include "sim/supply_chain.h"
#include "trace/trace.h"

namespace rfid {
namespace {

InterrogationSchedule AlwaysOn(int n) {
  auto model = ReadRateModel::Uniform(n, 0.8);
  auto s = InterrogationSchedule::AlwaysOn(n);
  s.Finalize(model);
  return s;
}

std::vector<TagRead> NoisyPresence(Epoch from, Epoch to, LocationId reader,
                                   double p, Rng& rng) {
  std::vector<TagRead> reads;
  for (Epoch t = from; t <= to; ++t) {
    if (rng.NextBernoulli(p)) reads.push_back(TagRead{t, reader});
  }
  return reads;
}

TEST(SmurfTest, FillsDropoutsWithinWindow) {
  auto sched = AlwaysOn(2);
  Rng rng(3);
  auto reads = NoisyPresence(0, 199, 1, 0.6, rng);
  SmoothedTrack track = SmurfSmooth(reads, sched, 0, 199);
  // After warm-up, dropout epochs should be smoothed over: count absents in
  // the steady-state region.
  int absents = 0;
  for (Epoch t = 20; t < 200; ++t) {
    if (track.At(t) == kNoLocation) ++absents;
  }
  EXPECT_LT(absents, 6);
  // Raw dropouts were ~40%; smoothing must fill most of them.
}

TEST(SmurfTest, AbsentBeforeFirstRead) {
  auto sched = AlwaysOn(2);
  std::vector<TagRead> reads{{50, 1}, {51, 1}};
  SmoothedTrack track = SmurfSmooth(reads, sched, 0, 100);
  EXPECT_EQ(track.At(10), kNoLocation);
  EXPECT_EQ(track.At(50), 1);
}

TEST(SmurfTest, PluralityLocationWins) {
  auto sched = AlwaysOn(3);
  std::vector<TagRead> reads;
  for (Epoch t = 0; t < 30; ++t) {
    reads.push_back(TagRead{t, 2});
    if (t % 3 == 0) reads.push_back(TagRead{t, 1});  // minority overlap
  }
  std::sort(reads.begin(), reads.end());
  SmoothedTrack track = SmurfSmooth(reads, sched, 0, 29);
  int loc2 = 0;
  for (Epoch t = 5; t < 30; ++t) {
    if (track.At(t) == 2) ++loc2;
  }
  EXPECT_GE(loc2, 23);
}

TEST(SmurfTest, WindowShrinksAfterDeparture) {
  auto sched = AlwaysOn(2);
  Rng rng(5);
  auto reads = NoisyPresence(0, 99, 1, 0.8, rng);
  SmoothedTrack track = SmurfSmooth(reads, sched, 0, 299);
  // Long after departure at t=100 the tag must be reported absent; the
  // adaptive window bounds the smoothing tail.
  for (Epoch t = 260; t <= 299; ++t) {
    EXPECT_EQ(track.At(t), kNoLocation) << t;
  }
}

TEST(SmurfTest, EmptyHistory) {
  auto sched = AlwaysOn(2);
  SmoothedTrack track = SmurfSmooth({}, sched, 0, 50);
  for (Epoch t = 0; t <= 50; ++t) EXPECT_EQ(track.At(t), kNoLocation);
  EXPECT_EQ(track.At(-5), kNoLocation);
  EXPECT_EQ(track.At(99), kNoLocation);
}

TEST(SmurfStarTest, InfersStableContainment) {
  // Item and case co-located at location 0; decoy case at location 1.
  auto model = ReadRateModel::Uniform(2, 0.8);
  auto sched = InterrogationSchedule::AlwaysOn(2);
  sched.Finalize(model);
  Rng rng(7);
  Trace trace;
  for (Epoch t = 0; t < 200; ++t) {
    if (rng.NextBernoulli(0.8)) trace.Add({t, TagId::Item(1), 0});
    if (rng.NextBernoulli(0.8)) trace.Add({t, TagId::Case(1), 0});
    if (rng.NextBernoulli(0.8)) trace.Add({t, TagId::Case(2), 1});
  }
  trace.Seal();
  SmurfStar star(&sched);
  ASSERT_TRUE(star.Run(trace, 0, 199).ok());
  EXPECT_EQ(star.ContainerOf(TagId::Item(1)), TagId::Case(1));
  EXPECT_TRUE(star.changes().empty());
  EXPECT_EQ(star.LocationOf(TagId::Item(1), 150), 0);
  EXPECT_EQ(star.LocationOf(TagId::Case(2), 150), 1);
}

TEST(SmurfStarTest, DetectsContainmentChange) {
  auto model = ReadRateModel::Uniform(2, 0.9);
  auto sched = InterrogationSchedule::AlwaysOn(2);
  sched.Finalize(model);
  Rng rng(11);
  Trace trace;
  // Item with case 1 at loc 0 until 150, then with case 2 at loc 1.
  for (Epoch t = 0; t < 300; ++t) {
    LocationId item_loc = t < 150 ? 0 : 1;
    if (rng.NextBernoulli(0.9)) trace.Add({t, TagId::Item(1), item_loc});
    if (rng.NextBernoulli(0.9)) trace.Add({t, TagId::Case(1), 0});
    if (rng.NextBernoulli(0.9)) trace.Add({t, TagId::Case(2), 1});
  }
  trace.Seal();
  SmurfStar star(&sched);
  ASSERT_TRUE(star.Run(trace, 0, 299).ok());
  EXPECT_EQ(star.ContainerOf(TagId::Item(1)), TagId::Case(2));
  ASSERT_FALSE(star.changes().empty());
  EXPECT_NEAR(static_cast<double>(star.changes()[0].time), 150.0, 60.0);
}

TEST(SmurfStarTest, UnknownTagsSafe) {
  auto sched = AlwaysOn(2);
  SmurfStar star(&sched);
  Trace empty;
  empty.Seal();
  ASSERT_TRUE(star.Run(empty, 0, 10).ok());
  EXPECT_EQ(star.ContainerOf(TagId::Item(5)), kNoTag);
  EXPECT_EQ(star.LocationOf(TagId::Item(5), 3), kNoLocation);
}

TEST(SmurfStarTest, RejectsBadInput) {
  auto sched = AlwaysOn(2);
  SmurfStar star(&sched);
  Trace unsealed;
  unsealed.Add({0, TagId::Item(1), 0});
  EXPECT_TRUE(star.Run(unsealed, 0, 10).IsInvalidArgument());
  Trace sealed;
  sealed.Seal();
  EXPECT_TRUE(star.Run(sealed, 10, 5).IsInvalidArgument());
}

TEST(SmurfStarTest, WorseThanRfinferOnSupplyChain) {
  // The paper's headline comparison: RFINFER's containment error is well
  // below SMURF*'s on the same trace (Figure 5(d)).
  SupplyChainConfig cfg;
  cfg.num_warehouses = 1;
  cfg.shelves_per_warehouse = 4;
  cfg.cases_per_pallet = 3;
  cfg.items_per_case = 8;
  cfg.shelf_stay = 400;
  cfg.horizon = 700;
  cfg.read_rate.main = 0.7;
  cfg.seed = 13;
  SupplyChainSim sim(cfg);
  sim.Run();
  const Trace& trace = sim.site_trace(0);

  SmurfStar star(&sim.schedule());
  ASSERT_TRUE(star.Run(trace, 0, cfg.horizon).ok());
  RFInfer engine(&sim.model(), &sim.schedule());
  ASSERT_TRUE(engine.Run(trace, 0, cfg.horizon).ok());

  ErrorRate star_err, rfinfer_err;
  for (TagId item : sim.all_items()) {
    if (!sim.truth().PresentAt(item, cfg.horizon - 1)) continue;
    TagId truth = sim.truth().ContainerAt(item, cfg.horizon - 1);
    star_err.Add(star.ContainerOf(item) == truth);
    rfinfer_err.Add(engine.ContainerOf(item) == truth);
  }
  EXPECT_LE(rfinfer_err.Percent(), star_err.Percent());
}

}  // namespace
}  // namespace rfid
