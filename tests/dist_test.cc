// Tests for the distributed layer: network accounting, ONS, site-to-site
// state migration, and the distributed-vs-centralized drivers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "dist/distributed.h"
#include "dist/frame.h"
#include "dist/network.h"
#include "dist/ons.h"
#include "dist/site.h"
#include "sim/sensors.h"
#include "sim/supply_chain.h"
#include "trace/reading.h"
#include "trace/trace.h"

namespace rfid {
namespace {

TEST(NetworkTest, AccountsFramedBytesPerLinkAndKind) {
  Network net;
  int received = 0;
  net.RegisterHandler(1, [&](SiteId from, MessageKind kind,
                             const std::vector<uint8_t>& payload) {
    ++received;
    EXPECT_EQ(from, 0);
    EXPECT_EQ(kind, MessageKind::kInferenceState);
    EXPECT_EQ(payload.size(), 3u);
  });
  // Every payload travels framed: the charge is header + payload + crc.
  const int64_t wire = static_cast<int64_t>(FrameWireSize(3));
  size_t n = net.Send(0, 1, MessageKind::kInferenceState, {1, 2, 3});
  EXPECT_EQ(n, FrameWireSize(3));
  // Delivery is queued, not synchronous: the handler runs at drain time.
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.in_flight_messages(), 1);
  EXPECT_EQ(net.in_flight_bytes(), wire);
  EXPECT_EQ(net.DeliverDue(1, net.now()), 1);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(net.in_flight_messages(), 0);
  EXPECT_EQ(net.in_flight_bytes(), 0);
  EXPECT_EQ(net.total_bytes(), wire);
  EXPECT_EQ(net.total_messages(), 1);
  EXPECT_EQ(net.BytesOnLink(0, 1), wire);
  EXPECT_EQ(net.BytesOnLink(1, 0), 0);
  EXPECT_EQ(net.BytesOfKind(MessageKind::kInferenceState), wire);
  EXPECT_EQ(net.BytesOfKind(MessageKind::kQueryState), 0);
  net.ResetCounters();
  EXPECT_EQ(net.total_bytes(), 0);
}

TEST(NetworkTest, UnregisteredDestinationStillCharged) {
  Network net;
  net.Send(0, 5, MessageKind::kRawReadings, {1, 2});
  EXPECT_EQ(net.total_bytes(), static_cast<int64_t>(FrameWireSize(2)));
}

TEST(NetworkTest, LatencyModelAssignsArrivalEpochs) {
  Network net;
  NetworkOptions opts;
  opts.latency_base = 5;
  net.Configure(opts);
  std::vector<SiteId> senders;
  net.RegisterHandler(1, [&](SiteId from, MessageKind,
                             const std::vector<uint8_t>&) {
    senders.push_back(from);
  });
  net.AdvanceClock(10);
  net.Send(0, 1, MessageKind::kQueryState, {1});
  net.AdvanceClock(12);
  net.Send(2, 1, MessageKind::kQueryState, {2});
  // Sent at 10 and 12 with base latency 5: due at 15 and 17.
  EXPECT_EQ(net.DeliverDue(1, 14), 0);
  EXPECT_EQ(net.in_flight_messages(), 2);
  EXPECT_EQ(net.DeliverDue(1, 15), 1);
  ASSERT_EQ(senders.size(), 1u);
  EXPECT_EQ(senders[0], 0);
  EXPECT_EQ(net.DeliverDue(1, 16), 0);
  EXPECT_EQ(net.DeliverDue(1, 17), 1);
  ASSERT_EQ(senders.size(), 2u);
  EXPECT_EQ(senders[1], 2);
  EXPECT_EQ(net.in_flight_messages(), 0);
  // A per-link override takes precedence over the base.
  NetworkOptions linkopts;
  linkopts.latency_base = 5;
  linkopts.link_base = [](SiteId from, SiteId) -> Epoch {
    return from == 0 ? 0 : 5;
  };
  Network net2;
  net2.Configure(linkopts);
  int delivered = 0;
  net2.RegisterHandler(1, [&](SiteId, MessageKind,
                              const std::vector<uint8_t>&) { ++delivered; });
  net2.AdvanceClock(10);
  net2.Send(0, 1, MessageKind::kQueryState, {1});
  net2.Send(2, 1, MessageKind::kQueryState, {2});
  EXPECT_EQ(net2.DeliverDue(1, 10), 1);
  EXPECT_EQ(net2.DeliverDue(1, 15), 1);
  EXPECT_EQ(delivered, 2);
}

TEST(WireTest, InferenceEnvelopeRoundTrip) {
  std::vector<ObjectMigrationState> states(2);
  states[0].object = TagId::Item(11);
  states[0].container = TagId::Case(3);
  states[0].weights = {{TagId::Case(3), -1.5}, {TagId::Case(4), -8.25}};
  states[0].critical_region = EpochInterval{50, 120};
  states[1].object = TagId::Item(12);
  states[1].container = kNoTag;
  states[1].barrier = 77;
  states[1].readings.push_back(RawReading{130, TagId::Item(12), 2});

  auto payload = EncodeInferenceEnvelope(/*arrive=*/900, states,
                                         /*case_states=*/{},
                                         /*compress_level=*/6);
  auto decoded = DecodeInferenceEnvelope(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->arrive, 900);
  ASSERT_EQ(decoded->states.size(), 2u);
  EXPECT_EQ(decoded->states[0].object, TagId::Item(11));
  EXPECT_EQ(decoded->states[0].weights, states[0].weights);
  EXPECT_EQ(decoded->states[0].critical_region, states[0].critical_region);
  EXPECT_EQ(decoded->states[1].barrier, 77);
  EXPECT_EQ(decoded->states[1].readings, states[1].readings);
  EXPECT_TRUE(decoded->case_states.empty());
}

TEST(WireTest, InferenceEnvelopeRoundTripTwoLevels) {
  // A hierarchical transfer ships both containment levels in one
  // envelope: item→case states plus case→pallet states with their own
  // collapsed weights, contexts, and (full mode) readings.
  std::vector<ObjectMigrationState> states(1);
  states[0].object = TagId::Item(11);
  states[0].container = TagId::Case(3);
  states[0].weights = {{TagId::Case(3), -1.5}};

  std::vector<ObjectMigrationState> case_states(2);
  case_states[0].object = TagId::Case(3);
  case_states[0].container = TagId::Pallet(1);
  case_states[0].weights = {{TagId::Pallet(1), -2.0},
                            {TagId::Pallet(2), -9.5}};
  case_states[0].critical_region = EpochInterval{10, 60};
  case_states[0].readings.push_back(RawReading{12, TagId::Case(3), 0});
  case_states[0].readings.push_back(RawReading{12, TagId::Pallet(1), 0});
  case_states[1].object = TagId::Case(4);
  case_states[1].container = kNoTag;
  case_states[1].barrier = 33;

  auto payload = EncodeInferenceEnvelope(/*arrive=*/450, states, case_states,
                                         /*compress_level=*/6);
  auto decoded = DecodeInferenceEnvelope(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->arrive, 450);
  ASSERT_EQ(decoded->states.size(), 1u);
  EXPECT_EQ(decoded->states[0].object, TagId::Item(11));
  EXPECT_EQ(decoded->states[0].container, TagId::Case(3));
  ASSERT_EQ(decoded->case_states.size(), 2u);
  EXPECT_EQ(decoded->case_states[0].object, TagId::Case(3));
  EXPECT_EQ(decoded->case_states[0].container, TagId::Pallet(1));
  EXPECT_EQ(decoded->case_states[0].weights, case_states[0].weights);
  EXPECT_EQ(decoded->case_states[0].critical_region,
            case_states[0].critical_region);
  EXPECT_EQ(decoded->case_states[0].readings, case_states[0].readings);
  EXPECT_EQ(decoded->case_states[1].object, TagId::Case(4));
  EXPECT_EQ(decoded->case_states[1].barrier, 33);

  // A truncated envelope surfaces as a Status, not a crash.
  payload.resize(payload.size() / 2);
  EXPECT_FALSE(DecodeInferenceEnvelope(payload).ok());
}

TEST(WireTest, QueryEnvelopeRoundTripRawAndShared) {
  // Three objects in case 1 with near-identical states, one in case 2.
  std::vector<std::pair<TagId, std::vector<uint8_t>>> q1_states;
  std::unordered_map<TagId, TagId> believed;
  for (uint64_t i = 0; i < 3; ++i) {
    std::vector<uint8_t> state{1, 2, 3, 4, 5, 6, 7, 8,
                               static_cast<uint8_t>(i)};
    q1_states.emplace_back(TagId::Item(i), std::move(state));
    believed[TagId::Item(i)] = TagId::Case(1);
  }
  q1_states.emplace_back(TagId::Item(9),
                         std::vector<uint8_t>{9, 9, 9, 9});
  believed[TagId::Item(9)] = TagId::Case(2);
  std::vector<std::pair<TagId, std::vector<uint8_t>>> q2_states;

  for (bool share : {false, true}) {
    auto payload =
        EncodeQueryEnvelope(/*arrive=*/450, q1_states, q2_states, share,
                            believed);
    auto decoded = DecodeQueryEnvelope(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->arrive, 450);
    EXPECT_TRUE(decoded->q2_states.empty());
    ASSERT_EQ(decoded->q1_states.size(), q1_states.size());
    // Order may change across sharing groups; compare as sets.
    auto sorted = [](auto v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    EXPECT_EQ(sorted(decoded->q1_states), sorted(q1_states));
  }
}

TEST(OnsTest, RegisterLookupUnregister) {
  Ons ons;
  EXPECT_EQ(ons.Lookup(TagId::Item(1)), kNoSite);
  ons.Register(TagId::Item(1), 3);
  EXPECT_EQ(ons.Lookup(TagId::Item(1)), 3);
  ons.Register(TagId::Item(1), 4);
  EXPECT_EQ(ons.Lookup(TagId::Item(1)), 4);
  ons.Unregister(TagId::Item(1));
  EXPECT_EQ(ons.Lookup(TagId::Item(1)), kNoSite);
  // Diagnostic Lookups are counted apart from charged Resolves: they are
  // out-of-band inspection, not directory load.
  EXPECT_EQ(ons.diagnostic_lookups(), 4);
  EXPECT_EQ(ons.charged_lookups(), 0);
  EXPECT_EQ(ons.updates(), 2);
  EXPECT_EQ(ons.unregisters(), 1);
}

SupplyChainConfig ChainConfig(int warehouses, Epoch horizon) {
  SupplyChainConfig cfg;
  cfg.num_warehouses = warehouses;
  cfg.shelves_per_warehouse = 4;
  cfg.cases_per_pallet = 2;
  cfg.items_per_case = 6;
  cfg.shelf_stay = 250;
  cfg.transit_time = 30;
  cfg.horizon = horizon;
  cfg.seed = 21;
  return cfg;
}

DistributedOptions DistOptions(MigrationMode mode) {
  DistributedOptions opts;
  opts.site.migration = mode;
  opts.site.streaming.inference_period = 300;
  opts.site.streaming.recent_history = 400;
  return opts;
}

TEST(DistributedTest, MigrationTransfersBytes) {
  SupplyChainSim sim(ChainConfig(3, 1200));
  sim.Run();
  ASSERT_FALSE(sim.transfers().empty());

  DistributedSystem none(&sim, DistOptions(MigrationMode::kNone));
  none.Run();
  // No migration payloads -- every byte on the wire is directory traffic.
  EXPECT_EQ(none.network().BytesOfKind(MessageKind::kInferenceState), 0);
  EXPECT_EQ(none.network().BytesOfKind(MessageKind::kQueryState), 0);
  EXPECT_EQ(none.network().BytesOfKind(MessageKind::kRawReadings), 0);
  EXPECT_GT(none.network().BytesOfKind(MessageKind::kDirectory), 0);
  EXPECT_EQ(none.network().total_bytes(),
            none.network().BytesOfKind(MessageKind::kDirectory));

  SupplyChainSim sim2(ChainConfig(3, 1200));
  sim2.Run();
  DistributedSystem collapsed(&sim2, DistOptions(MigrationMode::kCollapsed));
  collapsed.Run();
  EXPECT_GT(collapsed.network().total_bytes(), 0);
  EXPECT_GT(
      collapsed.network().BytesOfKind(MessageKind::kInferenceState), 0);
}

DistributedOptions HierOptions(MigrationMode mode) {
  DistributedOptions opts = DistOptions(mode);
  opts.site.hierarchical = true;
  return opts;
}

TEST(HierarchicalTest, CaseStateMigratesOnTransfers) {
  SupplyChainSim sim(ChainConfig(3, 1200));
  sim.Run();
  DistributedSystem flat(&sim, DistOptions(MigrationMode::kCollapsed));
  flat.Run();
  DistributedSystem hier(&sim, HierOptions(MigrationMode::kCollapsed));
  hier.Run();

  // The second level's collapsed state rides the same kInferenceState
  // envelopes, so hierarchical transfers put strictly more migration
  // bytes on the wire (the Table 5 accounting sees the overhead)...
  EXPECT_GT(hier.network().BytesOfKind(MessageKind::kInferenceState),
            flat.network().BytesOfKind(MessageKind::kInferenceState));
  // ...while directory traffic is level-independent (pallets and cases
  // were always registered/moved).
  EXPECT_EQ(hier.network().BytesOfKind(MessageKind::kDirectory),
            flat.network().BytesOfKind(MessageKind::kDirectory));

  // Per-level accuracy at boundaries: case samples exist only for the
  // hierarchical run, and the item level is untouched by the second
  // engine -- its samples must be bit-identical to the flat replay's.
  EXPECT_TRUE(flat.case_snapshots().empty());
  ASSERT_FALSE(hier.case_snapshots().empty());
  const double case_err = hier.AverageCaseContainmentErrorPercent();
  EXPECT_FALSE(std::isnan(case_err));
  EXPECT_GE(case_err, 0.0);
  EXPECT_LE(case_err, 100.0);
  EXPECT_EQ(flat.snapshots(), hier.snapshots());
  EXPECT_TRUE(std::isnan(flat.AverageCaseContainmentErrorPercent()));
}

TEST(HierarchicalTest, NoneModeShipsNothingAtEitherLevel) {
  SupplyChainSim sim(ChainConfig(3, 1200));
  sim.Run();
  DistributedSystem hier_none(&sim, HierOptions(MigrationMode::kNone));
  hier_none.Run();
  EXPECT_EQ(hier_none.network().BytesOfKind(MessageKind::kInferenceState),
            0);
  // The second level still runs locally: case accuracy is sampled even
  // though no state migrates.
  EXPECT_FALSE(hier_none.case_snapshots().empty());
}

TEST(HierarchicalTest, FullReadingsShipsCaseAndPalletHistories) {
  SupplyChainSim sim(ChainConfig(3, 1200));
  sim.Run();
  DistributedSystem collapsed(&sim, HierOptions(MigrationMode::kCollapsed));
  collapsed.Run();
  DistributedSystem full(&sim, HierOptions(MigrationMode::kFullReadings));
  full.Run();
  EXPECT_GT(full.network().BytesOfKind(MessageKind::kInferenceState),
            collapsed.network().BytesOfKind(MessageKind::kInferenceState));
}

TEST(HierarchicalTest, CasesOnlyTransfersStillShipCaseState) {
  // Case-level-only tracking (no item tags): flat migration has nothing
  // to ship, but the hierarchy's case→pallet state must still travel.
  auto cfg = ChainConfig(3, 1200);
  cfg.items_per_case = 0;
  SupplyChainSim sim(cfg);
  sim.Run();
  ASSERT_FALSE(sim.transfers().empty());

  DistributedSystem flat(&sim, DistOptions(MigrationMode::kCollapsed));
  flat.Run();
  EXPECT_EQ(flat.network().BytesOfKind(MessageKind::kInferenceState), 0);

  DistributedSystem hier(&sim, HierOptions(MigrationMode::kCollapsed));
  hier.Run();
  EXPECT_GT(hier.network().BytesOfKind(MessageKind::kInferenceState), 0);
  EXPECT_FALSE(hier.case_snapshots().empty());
}

TEST(HierarchicalTest, CentralizedServerRunsBothLevels) {
  // The centralized baseline's server receives remote readings as
  // kRawReadings batches; those must feed the pallet-level engine too, or
  // the hierarchy would silently cover only site 0's local stream.
  SupplyChainSim sim(ChainConfig(3, 1500));
  sim.Run();
  DistributedOptions opts = HierOptions(MigrationMode::kCollapsed);
  opts.mode = ProcessingMode::kCentralized;
  DistributedSystem central(&sim, opts);
  central.Run();
  ASSERT_FALSE(central.case_snapshots().empty());
  // Cases at *remote* warehouses resolve to a pallet: evidence for them
  // only ever arrives over the wire.
  int remote_resolved = 0;
  for (const ObjectTransfer& tr : sim.transfers()) {
    if (tr.to <= 0) continue;  // want groups that reached sites 1/2
    for (TagId c : tr.cases) {
      if (central.BelievedPallet(c).valid()) ++remote_resolved;
    }
  }
  EXPECT_GT(remote_resolved, 0);
}

TEST(HierarchicalTest, PalletResolvesTransitively) {
  SupplyChainSim sim(ChainConfig(3, 1500));
  sim.Run();
  DistributedSystem flat(&sim, DistOptions(MigrationMode::kCollapsed));
  flat.Run();
  DistributedSystem hier(&sim, HierOptions(MigrationMode::kCollapsed));
  hier.Run();

  int resolved = 0;
  for (TagId item : sim.all_items()) {
    // Without the hierarchy there is no pallet level to answer from.
    EXPECT_EQ(flat.BelievedPallet(item), kNoTag);
    const TagId pallet = hier.BelievedPallet(item);
    if (!pallet.valid()) continue;
    ++resolved;
    EXPECT_TRUE(pallet.is_pallet());
    // Transitivity: the item's pallet is exactly its believed case's
    // believed pallet.
    const TagId c = hier.BelievedContainer(item);
    ASSERT_TRUE(c.valid());
    EXPECT_EQ(hier.BelievedPallet(c), pallet);
  }
  EXPECT_GT(resolved, 0);
}

TEST(DistributedTest, DirectoryTrafficIsCharged) {
  SupplyChainSim sim(ChainConfig(3, 1200));
  sim.Run();
  DistributedSystem sys(&sim, DistOptions(MigrationMode::kCollapsed));
  sys.Run();
  // Every registration/move/unregister and every cache-missing Resolve
  // puts directory bytes on the wire; registrations land on the link from
  // the registering site to the owning shard's hosting site, and the
  // per-shard byte counters sum to the kDirectory total.
  const int64_t dir_bytes =
      sys.network().BytesOfKind(MessageKind::kDirectory);
  EXPECT_GT(dir_bytes, 0);
  EXPECT_GE(sys.network().MessagesOfKind(MessageKind::kDirectory),
            sys.ons().updates());
  EXPECT_EQ(sys.ons().num_shards(), 3);
  int64_t shard_bytes = 0;
  int64_t from_site0 = 0;
  for (int s = 0; s < sys.ons().num_shards(); ++s) {
    shard_bytes += sys.ons().shard_stats(s).bytes;
    from_site0 += sys.network().BytesOnLink(0, sys.ons().ShardHost(s));
  }
  EXPECT_EQ(shard_bytes, dir_bytes);
  // All injections register at site 0, so it talks to every shard host.
  EXPECT_GT(from_site0, 0);
  // The synthetic single-node id is no longer charged.
  EXPECT_EQ(sys.network().BytesOnLink(0, kDirectorySite), 0);

  // The centralized baseline has no directory service to talk to.
  SupplyChainSim sim2(ChainConfig(3, 1200));
  sim2.Run();
  DistributedOptions copts = DistOptions(MigrationMode::kCollapsed);
  copts.mode = ProcessingMode::kCentralized;
  DistributedSystem central(&sim2, copts);
  central.Run();
  EXPECT_EQ(central.network().BytesOfKind(MessageKind::kDirectory), 0);
}

TEST(DistributedTest, FullReadingsCostMoreThanCollapsed) {
  SupplyChainSim sim(ChainConfig(3, 1200));
  sim.Run();
  DistributedSystem collapsed(&sim, DistOptions(MigrationMode::kCollapsed));
  collapsed.Run();

  SupplyChainSim sim2(ChainConfig(3, 1200));
  sim2.Run();
  DistributedSystem full(&sim2, DistOptions(MigrationMode::kFullReadings));
  full.Run();
  EXPECT_GT(full.network().total_bytes(),
            collapsed.network().total_bytes());
}

TEST(DistributedTest, CentralizedShipsMoreThanCollapsed) {
  // Table 5's qualitative claim at unit-test scale: raw shipping costs
  // more than collapsed-state migration even over a short horizon with
  // rapid pallet turnover. (The orders-of-magnitude gap appears at bench
  // scale, where items reside for hours between transfers.) The claim is
  // about payload policy, so compare the migration traffic kinds: since
  // byte accounting moved onto framed wire bytes, CR's *total* also
  // carries the directory's per-op framing floor (~40 B per tiny
  // directory record), which is deployment overhead either approach's
  // real deployment would pay to some directory service, not migration
  // cost.
  SupplyChainSim sim(ChainConfig(3, 1200));
  sim.Run();
  DistributedSystem collapsed(&sim, DistOptions(MigrationMode::kCollapsed));
  collapsed.Run();

  SupplyChainSim sim2(ChainConfig(3, 1200));
  sim2.Run();
  DistributedOptions copts = DistOptions(MigrationMode::kCollapsed);
  copts.mode = ProcessingMode::kCentralized;
  DistributedSystem central(&sim2, copts);
  central.Run();
  EXPECT_GT(central.network().BytesOfKind(MessageKind::kRawReadings),
            collapsed.network().BytesOfKind(MessageKind::kInferenceState) +
                collapsed.network().BytesOfKind(MessageKind::kQueryState));
}

TEST(DistributedTest, CollapsedBeatsNoneOnAverageAccuracy) {
  // Averaged over inference boundaries (the continuous-monitoring view),
  // migrating collapsed state must not hurt and typically helps in the
  // just-after-arrival windows (Figure 5(e) qualitatively).
  OnlineStats none_err, collapsed_err;
  for (uint64_t seed : {21u, 22u, 23u}) {
    auto cfg = ChainConfig(3, 1500);
    cfg.seed = seed;
    SupplyChainSim sim(cfg);
    sim.Run();
    DistributedSystem none(&sim, DistOptions(MigrationMode::kNone));
    none.Run();
    DistributedSystem collapsed(&sim,
                                DistOptions(MigrationMode::kCollapsed));
    collapsed.Run();
    none_err.Add(none.AverageContainmentErrorPercent());
    collapsed_err.Add(collapsed.AverageContainmentErrorPercent());
  }
  EXPECT_LE(collapsed_err.Mean(), none_err.Mean() + 1.0);
}

TEST(DistributedTest, CentralizedIsAccurate) {
  SupplyChainSim sim(ChainConfig(2, 900));
  sim.Run();
  DistributedOptions copts = DistOptions(MigrationMode::kCollapsed);
  copts.mode = ProcessingMode::kCentralized;
  DistributedSystem central(&sim, copts);
  central.Run();
  EXPECT_LT(central.ContainmentErrorPercent(899), 25.0);
}

TEST(DistributedTest, OnsTracksObjectSites) {
  SupplyChainSim sim(ChainConfig(3, 1500));
  sim.Run();
  DistributedSystem sys(&sim, DistOptions(MigrationMode::kCollapsed));
  sys.Run();
  // Pick an item that crossed sites and check the ONS agrees with the last
  // recorded transfer destination.
  for (const ObjectTransfer& tr : sim.transfers()) {
    if (tr.to == kNoSite || tr.items.empty()) continue;
    TagId item = tr.items.front();
    SiteId registered = sys.ons().Lookup(item);
    // The item may have moved again after `tr`; just require a valid site
    // or departure.
    if (registered != kNoSite) {
      EXPECT_GE(registered, 0);
      EXPECT_LT(registered, 3);
    }
  }
  // The replay's transfer-time Resolves are directory load; the Lookup
  // calls in the loop above are diagnostics and counted separately.
  EXPECT_GT(sys.ons().charged_lookups(), 0);
  EXPECT_GT(sys.ons().diagnostic_lookups(), 0);
}

TEST(DistributedTest, HorizonSnapshotForcedWhenOffBoundary) {
  // horizon 1000 with inference period 300: boundaries at 300/600/900, so
  // without the forced horizon sample the final 100 epochs would never be
  // measured.
  SupplyChainSim sim(ChainConfig(3, 1000));
  sim.Run();
  DistributedSystem sys(&sim, DistOptions(MigrationMode::kCollapsed));
  sys.Run();
  ASSERT_FALSE(sys.snapshots().empty());
  EXPECT_EQ(sys.snapshots().back().epoch, 1000);
  // Exactly one sample per epoch: the forced horizon sample never doubles
  // an on-boundary one.
  SupplyChainSim sim2(ChainConfig(3, 1200));
  sim2.Run();
  DistributedSystem sys2(&sim2, DistOptions(MigrationMode::kCollapsed));
  sys2.Run();
  ASSERT_FALSE(sys2.snapshots().empty());
  EXPECT_EQ(sys2.snapshots().back().epoch, 1200);
  for (size_t i = 1; i < sys2.snapshots().size(); ++i) {
    EXPECT_LT(sys2.snapshots()[i - 1].epoch, sys2.snapshots()[i].epoch);
  }
}

TEST(DistributedTest, EmptyRunReportsNaNErrorNotPerfect) {
  SupplyChainSim sim(ChainConfig(2, 900));
  sim.Run();
  DistributedSystem sys(&sim, DistOptions(MigrationMode::kCollapsed));
  // Never Run: no accuracy samples exist, so the error accessors must not
  // claim a flawless 0.0%.
  EXPECT_TRUE(std::isnan(sys.ContainmentErrorPercent(100)));
  EXPECT_TRUE(std::isnan(sys.AverageContainmentErrorPercent()));
  // And a run whose warmup excludes every sample is equally "unmeasured".
  DistributedSystem ran(&sim, DistOptions(MigrationMode::kCollapsed));
  ran.Run();
  EXPECT_FALSE(std::isnan(ran.AverageContainmentErrorPercent()));
  EXPECT_TRUE(std::isnan(
      ran.AverageContainmentErrorPercent(sim.config().horizon + 1)));
}

TEST(DistributedTest, QueriesRunAtSites) {
  SupplyChainConfig cfg = ChainConfig(2, 1200);
  cfg.shelf_stay = 600;
  SupplyChainSim sim(cfg);
  sim.Run();

  // All items frozen; all cases plain: everything on a shelf is exposed.
  ProductCatalog catalog;
  for (TagId item : sim.all_items()) {
    catalog.RegisterProduct(item, ProductInfo{"frozen_food", true, false,
                                              false});
  }
  for (TagId c : sim.all_cases()) {
    catalog.RegisterContainer(c, ContainerInfo{ContainerClass::kPlain});
  }
  SensorConfig scfg;
  Rng rng(5);
  auto sensors = GenerateSensorStream(scfg, sim.layout().num_locations(),
                                      cfg.horizon, rng);

  DistributedOptions opts = DistOptions(MigrationMode::kCollapsed);
  opts.attach_queries = true;
  opts.q1 = ExposureQuery::Q1Config(/*duration=*/300);
  opts.q1.max_gap = 400;
  opts.q2 = ExposureQuery::Q2Config(/*duration=*/300);
  opts.q2.max_gap = 400;
  DistributedSystem sys(&sim, opts, &catalog, &sensors);
  sys.Run();
  // Items sit exposed on shelves for 600 epochs > 300: alerts must fire.
  EXPECT_FALSE(sys.AllAlerts(0).empty());
  EXPECT_FALSE(sys.AllAlerts(1).empty());
  EXPECT_GT(sys.network().BytesOfKind(MessageKind::kQueryState), 0);
}

TEST(DistributedTest, LinkLatencyKeepsWireBytesInvariant) {
  // The latency model shifts *when* frames are delivered: directory ops
  // and flush/export events are simulation-driven, so byte totals stay
  // put as long as the delay is well under an object's residence time.
  // (Latency comparable to shelf_stay would change *what* departing
  // sites export -- state that never arrived cannot be re-exported -- so
  // the invariance is scoped to this delay regime, not universal.)
  SupplyChainSim sim(ChainConfig(3, 1200));
  sim.Run();
  DistributedSystem instant(&sim, DistOptions(MigrationMode::kCollapsed));
  instant.Run();

  DistributedOptions slow = DistOptions(MigrationMode::kCollapsed);
  slow.network.latency_base = 50;
  slow.network.latency_per_kib = 1;
  DistributedSystem delayed(&sim, slow);
  delayed.Run();

  EXPECT_EQ(delayed.network().total_bytes(),
            instant.network().total_bytes());
  EXPECT_EQ(delayed.network().total_messages(),
            instant.network().total_messages());
  for (int k = 0; k < kNumMessageKinds; ++k) {
    const MessageKind kind = static_cast<MessageKind>(k);
    EXPECT_EQ(delayed.network().BytesOfKind(kind),
              instant.network().BytesOfKind(kind))
        << ToString(kind);
  }
  ASSERT_FALSE(delayed.snapshots().empty());
  // With zero latency nothing is left in flight mid-replay horizon except
  // frames sent at the final events; high latency strands at least as
  // much.
  EXPECT_GE(delayed.network().in_flight_messages(),
            instant.network().in_flight_messages());
}

// ---- Reading-batch codec + SoA column view (the PR 9 hot path) ----

std::vector<RawReading> SampleBatch() {
  std::vector<RawReading> rs;
  for (int t = 0; t < 50; ++t) {
    rs.push_back(RawReading{static_cast<Epoch>(t * 3),
                            TagId::Item(static_cast<uint64_t>(t % 7)),
                            static_cast<LocationId>(t % 5)});
    rs.push_back(RawReading{static_cast<Epoch>(t * 3 + 1),
                            TagId::Case(static_cast<uint64_t>(t % 3)),
                            static_cast<LocationId>(t % 4)});
  }
  return rs;
}

TEST(ReadingBatchTest, SpanAndVectorFormsEncodeIdentically) {
  const std::vector<RawReading> rs = SampleBatch();
  EXPECT_EQ(EncodeReadingBatch(rs, /*compress_level=*/6),
            EncodeReadingBatch(rs.data(), rs.size(), /*compress_level=*/6));
  // A sub-span of a larger buffer (how the centralized flush encodes a
  // pending trace range) matches encoding a copied-out window.
  const std::vector<RawReading> window(rs.begin() + 10, rs.end() - 5);
  EXPECT_EQ(EncodeReadingBatch(rs.data() + 10, rs.size() - 15, 6),
            EncodeReadingBatch(window, 6));
}

TEST(ReadingBatchTest, RoundTripsInSealCanonicalOrder) {
  std::vector<RawReading> rs = SampleBatch();
  auto decoded = DecodeReadingBatch(EncodeReadingBatch(rs, 6));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // The batch codec seals (sorts + dedups) before encoding, so the round
  // trip lands in canonical (time, reader, tag) order.
  std::sort(rs.begin(), rs.end(), RawReadingOrder());
  rs.erase(std::unique(rs.begin(), rs.end()), rs.end());
  EXPECT_EQ(decoded.value(), rs);
}

TEST(ReadingBatchTest, ColumnsViewMatchesRowIngest) {
  const std::vector<RawReading> rs = SampleBatch();
  std::vector<Epoch> time;
  std::vector<TagId> tag;
  std::vector<LocationId> reader;
  for (const RawReading& r : rs) {
    time.push_back(r.time);
    tag.push_back(r.tag);
    reader.push_back(r.reader);
  }
  const ReadingColumnsView view{time.data(), tag.data(), reader.data(),
                                rs.size()};
  for (size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(view.Row(i), rs[i]) << i;
  }
  // Column-view ingest and row ingest seal to the same readings and the
  // same per-tag histories.
  Trace by_rows;
  Trace by_view;
  by_rows.Append(rs.data(), rs.size());
  by_view.Append(view);
  by_rows.Seal();
  by_view.Seal();
  ASSERT_EQ(by_rows.readings(), by_view.readings());
  for (TagId t : by_rows.Tags()) {
    const TagReadSpan a = by_rows.HistoryOf(t);
    const TagReadSpan b = by_view.HistoryOf(t);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

}  // namespace
}  // namespace rfid
