// Unit tests for the common substrate: Status/Result, tag ids, RNG,
// log-space math, serialization, compression, metrics, table printing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/compress.h"
#include "common/log_space.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/types.h"
#include "inference/state.h"

namespace rfid {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_EQ(st.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad window");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.ToString(), "Invalid argument: bad window");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown code");
  }
}

TEST(StatusTest, ReturnNotOkPropagates) {
  auto inner = []() { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    RFID_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(TagIdTest, EncodesKindAndSerial) {
  TagId item = TagId::Item(123);
  TagId case_tag = TagId::Case(123);
  TagId pallet = TagId::Pallet(123);
  EXPECT_TRUE(item.is_item());
  EXPECT_TRUE(case_tag.is_case());
  EXPECT_TRUE(pallet.is_pallet());
  EXPECT_EQ(item.serial(), 123u);
  EXPECT_EQ(case_tag.serial(), 123u);
  EXPECT_NE(item, case_tag);
  EXPECT_EQ(item.ToString(), "item:123");
  EXPECT_EQ(pallet.ToString(), "pallet:123");
}

TEST(TagIdTest, InvalidByDefault) {
  TagId t;
  EXPECT_FALSE(t.valid());
  EXPECT_EQ(t, kNoTag);
  EXPECT_EQ(t.ToString(), "invalid");
}

TEST(TagIdTest, RawRoundTrip) {
  TagId t = TagId::Case(98765);
  EXPECT_EQ(TagId::FromRaw(t.raw()), t);
}

TEST(TagIdTest, OrderingIsStable) {
  EXPECT_LT(TagId::Item(1), TagId::Item(2));
  // Items sort before cases (kind is in the high bits).
  EXPECT_LT(TagId::Item(999), TagId::Case(0));
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedRespectsBound) {
  Rng rng(9);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_FALSE(rng.NextBernoulli(-1.0));
  EXPECT_TRUE(rng.NextBernoulli(2.0));
}

TEST(RngTest, NextIntCoversRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng b = a.Fork();
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(LogSpaceTest, SafeLogFloors) {
  EXPECT_DOUBLE_EQ(SafeLog(0.0), kLogFloor);
  EXPECT_DOUBLE_EQ(SafeLog(1.0), 0.0);
  EXPECT_DOUBLE_EQ(SafeLog1m(1.0), kLogFloor);
}

TEST(LogSpaceTest, LogSumExpMatchesDirect) {
  std::vector<double> xs{-1.0, -2.0, -3.0};
  double direct =
      std::log(std::exp(-1.0) + std::exp(-2.0) + std::exp(-3.0));
  EXPECT_NEAR(LogSumExp(xs), direct, 1e-12);
}

TEST(LogSpaceTest, LogSumExpHandlesExtremes) {
  std::vector<double> xs{-1000.0, -1001.0};
  EXPECT_NEAR(LogSumExp(xs), -1000.0 + std::log(1 + std::exp(-1.0)), 1e-9);
  std::vector<double> empty;
  EXPECT_TRUE(std::isinf(LogSumExp(empty)));
}

TEST(LogSpaceTest, NormalizeProducesDistribution) {
  std::vector<double> w{-5.0, -6.0, -7.0};
  NormalizeLogWeights(w);
  double sum = 0;
  for (double x : w) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(w[0], w[1]);
  EXPECT_GT(w[1], w[2]);
}

TEST(SerdeTest, FixedWidthRoundTrip) {
  BufferWriter w;
  w.PutU8(0xab);
  w.PutU16(0xbeef);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI32(-42);
  w.PutI64(-1234567890123LL);
  w.PutDouble(3.14159);
  auto bytes = w.Release();
  BufferReader r(bytes);
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  double d = 0;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU16(&u16).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI32(&i32).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0xbeef);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123LL);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdeTest, VarintRoundTrip) {
  BufferWriter w;
  std::vector<uint64_t> values{0, 1, 127, 128, 300, 1u << 20,
                               0xffffffffffffffffULL};
  for (uint64_t v : values) w.PutVarint(v);
  auto bytes = w.Release();
  BufferReader r(bytes);
  for (uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(r.GetVarint(&v).ok());
    EXPECT_EQ(v, expected);
  }
}

TEST(SerdeTest, SignedVarintRoundTrip) {
  BufferWriter w;
  std::vector<int64_t> values{0, -1, 1, -64, 64, -1000000, 1000000,
                              INT64_MIN, INT64_MAX};
  for (int64_t v : values) w.PutSignedVarint(v);
  auto bytes = w.Release();
  BufferReader r(bytes);
  for (int64_t expected : values) {
    int64_t v = 0;
    ASSERT_TRUE(r.GetSignedVarint(&v).ok());
    EXPECT_EQ(v, expected);
  }
}

TEST(SerdeTest, SmallVarintIsOneByte) {
  BufferWriter w;
  w.PutVarint(5);
  EXPECT_EQ(w.size(), 1u);
}

TEST(SerdeTest, StringAndTagRoundTrip) {
  BufferWriter w;
  w.PutString("hello rfid");
  w.PutTagId(TagId::Item(77));
  auto bytes = w.Release();
  BufferReader r(bytes);
  std::string s;
  TagId t;
  ASSERT_TRUE(r.GetString(&s).ok());
  ASSERT_TRUE(r.GetTagId(&t).ok());
  EXPECT_EQ(s, "hello rfid");
  EXPECT_EQ(t, TagId::Item(77));
}

TEST(SerdeTest, TruncationDetected) {
  BufferWriter w;
  w.PutU64(1);
  auto bytes = w.Release();
  bytes.resize(4);
  BufferReader r(bytes);
  uint64_t v = 0;
  EXPECT_TRUE(r.GetU64(&v).IsCorruption());
}

TEST(SerdeTest, TruncatedVarintDetected) {
  std::vector<uint8_t> bytes{0x80, 0x80};  // never terminates
  BufferReader r(bytes);
  uint64_t v = 0;
  EXPECT_TRUE(r.GetVarint(&v).IsCorruption());
}

TEST(CompressTest, RoundTrip) {
  std::vector<uint8_t> input;
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    input.push_back(static_cast<uint8_t>(rng.NextBounded(16)));
  }
  std::vector<uint8_t> compressed, restored;
  ASSERT_TRUE(Compress(input, &compressed).ok());
  EXPECT_LT(compressed.size(), input.size());
  ASSERT_TRUE(Decompress(compressed, &restored).ok());
  EXPECT_EQ(restored, input);
}

TEST(CompressTest, EmptyInput) {
  std::vector<uint8_t> input, compressed, restored;
  ASSERT_TRUE(Compress(input, &compressed).ok());
  ASSERT_TRUE(Decompress(compressed, &restored).ok());
  EXPECT_TRUE(restored.empty());
}

TEST(CompressTest, InvalidLevelRejected) {
  std::vector<uint8_t> input{1, 2, 3}, out;
  EXPECT_TRUE(Compress(input, &out, 0).IsInvalidArgument());
  EXPECT_TRUE(Compress(input, &out, 10).IsInvalidArgument());
}

TEST(CompressTest, GarbageFailsToDecompress) {
  std::vector<uint8_t> garbage{1, 2, 3, 4, 5}, out;
  EXPECT_FALSE(Decompress(garbage, &out).ok());
}

TEST(MetricsTest, ErrorRatePercent) {
  ErrorRate err;
  err.Add(true);
  err.Add(false);
  err.Add(true);
  err.Add(true);
  EXPECT_DOUBLE_EQ(err.Percent(), 25.0);
  EXPECT_EQ(err.errors(), 1);
  EXPECT_EQ(err.total(), 4);
}

TEST(MetricsTest, ErrorRateEmptyIsNaN) {
  // Unmeasured, not perfect: TablePrinter::Fmt renders it as "n/a".
  ErrorRate err;
  EXPECT_TRUE(std::isnan(err.Percent()));
  EXPECT_EQ(TablePrinter::Fmt(err.Percent(), 1), "n/a");
}

TEST(MetricsTest, FMeasureCombinesPrecisionRecall) {
  FMeasure fm;
  fm.AddTruePositive(8);
  fm.AddFalsePositive(2);
  fm.AddFalseNegative(2);
  EXPECT_DOUBLE_EQ(fm.Precision(), 0.8);
  EXPECT_DOUBLE_EQ(fm.Recall(), 0.8);
  EXPECT_NEAR(fm.Percent(), 80.0, 1e-9);
}

TEST(MetricsTest, FMeasureEmptyIsNaN) {
  FMeasure fm;
  EXPECT_TRUE(std::isnan(fm.Percent()));
  EXPECT_TRUE(std::isnan(fm.Precision()));
  EXPECT_TRUE(std::isnan(fm.Recall()));
}

TEST(MetricsTest, FMeasureMeasuredZeroStaysZero) {
  // Counts exist but nothing was ever right: a real 0, never NaN (and the
  // count form must not inherit NaN from the empty precision).
  FMeasure fm;
  fm.AddFalsePositive(3);
  fm.AddFalseNegative(2);
  EXPECT_DOUBLE_EQ(fm.Percent(), 0.0);
}

TEST(MetricsTest, OnlineStatsMeanVariance) {
  OnlineStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.Add(x);
  EXPECT_DOUBLE_EQ(st.Mean(), 5.0);
  EXPECT_NEAR(st.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(st.Stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(MetricsTest, OnlineStatsMinMaxSummary) {
  OnlineStats st;
  EXPECT_TRUE(std::isnan(st.Min()));
  EXPECT_TRUE(std::isnan(st.Max()));
  EXPECT_EQ(st.Summary(), "n=0");
  for (double x : {1.5, 1.0, 1.2}) st.Add(x);
  EXPECT_DOUBLE_EQ(st.Min(), 1.0);
  EXPECT_DOUBLE_EQ(st.Max(), 1.5);
  EXPECT_EQ(st.Summary(), "n=3 mean=1.233 min=1.000 max=1.500");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"xxxx", "1"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("xxxx"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
}

// The collapsed-state migration path (Section 4.1) layers the serde wire
// format under zlib: a payload must survive the full
// encode -> deflate -> inflate -> decode pipeline bit-exactly.
TEST(MigrationPayloadTest, CollapsedStateCompressRoundTripIsBitExact) {
  std::vector<ObjectMigrationState> states(3);
  for (size_t i = 0; i < states.size(); ++i) {
    ObjectMigrationState& s = states[i];
    s.object = TagId::Item(100 + i);
    s.container = TagId::Case(7 + i);
    s.barrier = static_cast<Epoch>(40 * i) - 1;
    if (i % 2 == 0) {
      s.critical_region = EpochInterval{Epoch(10 + i), Epoch(90 + i)};
    }
    for (int k = 0; k < 5; ++k) {
      // Weights ship at float resolution; use float-exact values so the
      // round trip can be compared bit for bit.
      s.weights.emplace_back(TagId::Case(k),
                             static_cast<double>(static_cast<float>(
                                 -3.25f * static_cast<float>(k + 1))));
    }
  }
  states[1].readings.push_back(RawReading{120, TagId::Item(101), 4});
  states[1].readings.push_back(RawReading{121, TagId::Case(8), 4});

  const std::vector<uint8_t> encoded = EncodeMigrationStates(states);
  std::vector<uint8_t> deflated;
  ASSERT_TRUE(Compress(encoded, &deflated, /*level=*/6).ok());
  ASSERT_LT(deflated.size(), encoded.size() + 32);  // sane, not bloated
  std::vector<uint8_t> inflated;
  ASSERT_TRUE(Decompress(deflated, &inflated).ok());
  ASSERT_EQ(inflated, encoded);  // bit-exact through the compressor

  auto decoded = DecodeMigrationStates(inflated);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    const ObjectMigrationState& in = states[i];
    const ObjectMigrationState& out = (*decoded)[i];
    EXPECT_EQ(out.object, in.object);
    EXPECT_EQ(out.container, in.container);
    EXPECT_EQ(out.barrier, in.barrier);
    EXPECT_EQ(out.critical_region, in.critical_region);
    EXPECT_EQ(out.weights, in.weights);
    EXPECT_EQ(out.readings, in.readings);
  }
  // And re-encoding the decoded states reproduces the exact wire bytes.
  EXPECT_EQ(EncodeMigrationStates(*decoded), encoded);
}

TEST(MigrationPayloadTest, CompressRejectsBadLevelAndGarbage) {
  std::vector<uint8_t> out;
  EXPECT_FALSE(Compress({1, 2, 3}, &out, /*level=*/0).ok());
  EXPECT_FALSE(Compress({1, 2, 3}, &out, /*level=*/10).ok());
  std::vector<uint8_t> garbage{0xde, 0xad, 0xbe, 0xef};
  EXPECT_FALSE(Decompress(garbage, &out).ok());
}

// ---- Arena (the per-window bump allocator of the replay hot path) ----

TEST(ArenaTest, AlignmentAndNonOverlap) {
  Arena arena;
  // A zero-byte request on a fresh (blockless) arena must still yield a
  // valid aligned pointer, per the never-nullptr contract.
  EXPECT_NE(arena.Allocate(0), nullptr);
  for (size_t align : {size_t{1}, size_t{8}, size_t{64}, size_t{256}}) {
    void* p = arena.Allocate(24, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u) << align;
  }
  // Consecutive allocations never alias: fill each region after
  // allocating the next and check the first survives.
  uint8_t* a = static_cast<uint8_t*>(arena.Allocate(100));
  uint8_t* b = static_cast<uint8_t*>(arena.Allocate(100));
  std::fill(a, a + 100, 0xAA);
  std::fill(b, b + 100, 0xBB);
  EXPECT_EQ(a[0], 0xAA);
  EXPECT_EQ(a[99], 0xAA);
}

TEST(ArenaTest, ResetRetainsAndReusesBlocks) {
  Arena arena(/*min_block_bytes=*/256);
  // Force several geometric blocks.
  for (int i = 0; i < 64; ++i) arena.Allocate(64);
  const size_t blocks = arena.block_count();
  const size_t reserved = arena.bytes_reserved();
  EXPECT_GT(blocks, 1u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Steady state: the same allocation pattern reuses the retained blocks
  // and never grows the arena again.
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int i = 0; i < 64; ++i) arena.Allocate(64);
    arena.Reset();
    EXPECT_EQ(arena.block_count(), blocks) << cycle;
    EXPECT_EQ(arena.bytes_reserved(), reserved) << cycle;
  }
}

TEST(ArenaTest, OversizeRequestsGetDedicatedBlocksFreedOnReset) {
  Arena arena(/*min_block_bytes=*/256);
  const size_t big = 64 * 1024;
  uint8_t* p = static_cast<uint8_t*>(arena.Allocate(big));
  ASSERT_NE(p, nullptr);
  // Touch every byte: under ASan this proves the whole region is live.
  std::fill(p, p + big, 0x5A);
  EXPECT_EQ(p[big - 1], 0x5A);
  EXPECT_GE(arena.bytes_reserved(), big);
  const size_t reserved_with_large = arena.bytes_reserved();
  arena.Reset();
  // The dedicated block is released; retained capacity shrinks.
  EXPECT_LT(arena.bytes_reserved(), reserved_with_large);
}

TEST(ArenaTest, AllocateArrayIsTypedAndWritable) {
  Arena arena;
  constexpr size_t kN = 1000;
  int64_t* xs = arena.AllocateArray<int64_t>(kN);
  ASSERT_NE(xs, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(xs) % alignof(int64_t), 0u);
  for (size_t i = 0; i < kN; ++i) xs[i] = static_cast<int64_t>(i);
  EXPECT_EQ(xs[0], 0);
  EXPECT_EQ(xs[kN - 1], static_cast<int64_t>(kN - 1));
  EXPECT_GE(arena.bytes_allocated(), kN * sizeof(int64_t));
}

}  // namespace
}  // namespace rfid
