// Tests for the simulator substrate: the DES engine, world state, layout,
// reader simulation, the supply-chain workload, and the lab emulation.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/des.h"
#include "sim/lab.h"
#include "sim/layout.h"
#include "sim/reader_sim.h"
#include "sim/supply_chain.h"
#include "sim/world.h"

namespace rfid {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(5, [&] { order.push_back(5); });
  q.Schedule(1, [&] { order.push_back(1); });
  q.Schedule(3, [&] { order.push_back(3); });
  q.RunUntil(10);
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(q.now(), 10);
}

TEST(EventQueueTest, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(2, [&] { order.push_back(1); });
  q.Schedule(2, [&] { order.push_back(2); });
  q.Schedule(2, [&] { order.push_back(3); });
  q.RunUntil(2);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, CallbacksCanScheduleMore) {
  EventQueue q;
  std::vector<Epoch> fired;
  std::function<void()> recur = [&] {
    fired.push_back(q.now());
    if (q.now() < 30) q.ScheduleAfter(10, recur);
  };
  q.Schedule(0, recur);
  q.RunUntil(100);
  EXPECT_EQ(fired, (std::vector<Epoch>{0, 10, 20, 30}));
}

TEST(EventQueueTest, RunUntilStopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.Schedule(5, [&] { ++fired; });
  q.Schedule(15, [&] { ++fired; });
  q.RunUntil(10);
  EXPECT_EQ(fired, 1);
  q.RunUntil(20);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue q;
  Epoch fired_at = -1;
  q.Schedule(10, [&] {
    q.Schedule(3, [&] { fired_at = q.now(); });  // in the past
  });
  q.RunUntil(20);
  EXPECT_EQ(fired_at, 10);
}

TEST(WorldTest, PlaceGroupMovesContents) {
  World w;
  TagId c = w.NewCase();
  TagId i1 = w.NewItem();
  TagId i2 = w.NewItem();
  w.SetContainer(i1, c, 0);
  w.SetContainer(i2, c, 0);
  w.PlaceGroup(c, 3, 0);
  EXPECT_EQ(w.LocationOf(c), 3);
  EXPECT_EQ(w.LocationOf(i1), 3);
  EXPECT_EQ(w.LocationOf(i2), 3);
  EXPECT_EQ(w.TagsAt(3).size(), 3u);
}

TEST(WorldTest, SetContainerReparents) {
  World w;
  TagId a = w.NewCase();
  TagId b = w.NewCase();
  TagId item = w.NewItem();
  w.SetContainer(item, a, 0);
  EXPECT_EQ(w.ContainerOf(item), a);
  EXPECT_EQ(w.ContentsOf(a).size(), 1u);
  w.SetContainer(item, b, 5);
  EXPECT_EQ(w.ContainerOf(item), b);
  EXPECT_TRUE(w.ContentsOf(a).empty());
  EXPECT_EQ(w.ContentsOf(b).size(), 1u);
}

TEST(WorldTest, RemoveGroupClosesTruth) {
  World w;
  TagId c = w.NewCase();
  TagId item = w.NewItem();
  w.SetContainer(item, c, 0);
  w.PlaceGroup(c, 1, 0);
  w.RemoveGroup(c, 10);
  EXPECT_FALSE(w.Exists(c));
  EXPECT_FALSE(w.Exists(item));
  EXPECT_TRUE(w.TagsAt(1).empty());
  w.Finish(20);
  EXPECT_EQ(w.truth().LocationAt(item, 5), 1);
}

TEST(WorldTest, TruthTracksMoves) {
  World w;
  TagId c = w.NewCase();
  w.Place(c, 0, 0);
  w.Place(c, 1, 10);
  w.Place(c, 2, 20);
  w.Finish(30);
  EXPECT_EQ(w.truth().LocationAt(c, 0), 0);
  EXPECT_EQ(w.truth().LocationAt(c, 9), 0);
  EXPECT_EQ(w.truth().LocationAt(c, 10), 1);
  EXPECT_EQ(w.truth().LocationAt(c, 25), 2);
}

TEST(LayoutTest, LocationNumberingContiguous) {
  Layout layout(3, 4);
  EXPECT_EQ(layout.num_sites(), 3);
  EXPECT_EQ(layout.num_locations(), 3 * (4 + 3));
  std::set<LocationId> all;
  for (SiteId s = 0; s < 3; ++s) {
    for (LocationId loc : layout.site(s).AllLocations()) {
      EXPECT_EQ(layout.SiteOfLocation(loc), s);
      all.insert(loc);
    }
  }
  EXPECT_EQ(static_cast<int>(all.size()), layout.num_locations());
}

TEST(LayoutTest, RolesAssigned) {
  Layout layout(1, 2);
  const SiteLayout& s = layout.site(0);
  EXPECT_EQ(layout.RoleOfLocation(s.entry), ReaderRole::kEntry);
  EXPECT_EQ(layout.RoleOfLocation(s.belt), ReaderRole::kBelt);
  EXPECT_EQ(layout.RoleOfLocation(s.exit), ReaderRole::kExit);
  for (LocationId sh : s.shelves) {
    EXPECT_EQ(layout.RoleOfLocation(sh), ReaderRole::kShelf);
  }
}

TEST(LayoutTest, ReadRateModelHasOverlapOnAdjacentShelves) {
  Layout layout(1, 4);
  ReadRateParams p;
  p.main = 0.8;
  p.overlap = 0.5;
  Rng rng(1);
  auto m = layout.BuildReadRateModel(p, rng);
  const SiteLayout& s = layout.site(0);
  EXPECT_DOUBLE_EQ(m.Rate(s.shelves[0], s.shelves[1]), 0.5);
  EXPECT_DOUBLE_EQ(m.Rate(s.shelves[1], s.shelves[0]), 0.5);
  EXPECT_DOUBLE_EQ(m.Rate(s.shelves[0], s.shelves[2]), 0.0);
  EXPECT_DOUBLE_EQ(m.Rate(s.entry, s.belt), 0.0);
  EXPECT_DOUBLE_EQ(m.Rate(s.entry, s.entry), 0.8);
}

TEST(LayoutTest, SampledRatesWithinBounds) {
  Layout layout(1, 4);
  ReadRateParams p;
  p.sample_main = true;
  p.main_lo = 0.6;
  p.main_hi = 1.0;
  Rng rng(2);
  auto m = layout.BuildReadRateModel(p, rng);
  for (LocationId loc : layout.site(0).AllLocations()) {
    EXPECT_GE(m.Rate(loc, loc), 0.6);
    EXPECT_LE(m.Rate(loc, loc), 1.0);
  }
}

TEST(LayoutTest, ScheduleRoles) {
  Layout layout(1, 3);
  ReadRateParams p;
  Rng rng(3);
  auto m = layout.BuildReadRateModel(p, rng);
  ScheduleParams sp;
  auto sched = layout.BuildSchedule(sp, m);
  const SiteLayout& s = layout.site(0);
  EXPECT_TRUE(sched.ActiveAt(s.entry, 7));      // non-shelf: every epoch
  EXPECT_TRUE(sched.ActiveAt(s.shelves[0], 0));  // shelf: every 10
  EXPECT_FALSE(sched.ActiveAt(s.shelves[0], 7));
}

TEST(LayoutTest, MobileScheduleSweepsShelves) {
  Layout layout(1, 3);
  ReadRateParams p;
  Rng rng(3);
  auto m = layout.BuildReadRateModel(p, rng);
  ScheduleParams sp;
  sp.mobile_dwell = 10;
  auto sched = layout.BuildSchedule(sp, m);
  const SiteLayout& s = layout.site(0);
  // Sweep cycle = 3 shelves * 10 epochs.
  EXPECT_TRUE(sched.ActiveAt(s.shelves[0], 5));
  EXPECT_FALSE(sched.ActiveAt(s.shelves[0], 15));
  EXPECT_TRUE(sched.ActiveAt(s.shelves[1], 15));
  EXPECT_TRUE(sched.ActiveAt(s.shelves[2], 25));
  EXPECT_TRUE(sched.ActiveAt(s.shelves[0], 35));  // next sweep
}

TEST(LayoutTest, SiteModelExtractsLocalBlock) {
  Layout layout(2, 2);
  ReadRateParams p;
  p.main = 0.9;
  p.overlap = 0.4;
  Rng rng(4);
  auto global = layout.BuildReadRateModel(p, rng);
  auto local = layout.SiteModel(1, global);
  EXPECT_EQ(local.num_locations(), 5);
  const auto locs = layout.site(1).AllLocations();
  for (size_t r = 0; r < locs.size(); ++r) {
    for (size_t a = 0; a < locs.size(); ++a) {
      EXPECT_DOUBLE_EQ(local.Rate(static_cast<LocationId>(r),
                                  static_cast<LocationId>(a)),
                       global.Rate(locs[r], locs[a]));
    }
  }
}

TEST(ReaderSimTest, GeneratesOnlyScheduledReads) {
  Layout layout(1, 2);
  ReadRateParams p;
  p.main = 1.0;  // deterministic reads
  p.overlap = 0.0;
  Rng rng(5);
  auto m = layout.BuildReadRateModel(p, rng);
  ScheduleParams sp;
  auto sched = layout.BuildSchedule(sp, m);
  World w;
  TagId c = w.NewCase();
  w.Place(c, layout.site(0).shelves[0], 0);
  ReaderSim sim(&m, &sched, 6);
  Trace trace;
  CallbackSink sink([&](const RawReading& r) { trace.Add(r); });
  for (Epoch t = 0; t < 20; ++t) sim.ScanEpoch(w, t, &sink);
  trace.Seal();
  // Shelf reader scans at t=0 and t=10 only; read rate 1 -> 2 readings.
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.readings()[0].time, 0);
  EXPECT_EQ(trace.readings()[1].time, 10);
}

class SupplyChainTest : public testing::Test {
 protected:
  SupplyChainConfig SmallConfig() {
    SupplyChainConfig cfg;
    cfg.num_warehouses = 1;
    cfg.shelves_per_warehouse = 4;
    cfg.cases_per_pallet = 2;
    cfg.items_per_case = 5;
    cfg.pallet_injection_interval = 60;
    cfg.shelf_stay = 120;
    cfg.horizon = 600;
    cfg.seed = 42;
    return cfg;
  }
};

TEST_F(SupplyChainTest, ProducesReadingsAndTruth) {
  SupplyChainSim sim(SmallConfig());
  sim.Run();
  EXPECT_GT(sim.total_readings(), 0);
  EXPECT_FALSE(sim.all_cases().empty());
  EXPECT_FALSE(sim.all_items().empty());
  EXPECT_EQ(sim.all_items().size(),
            sim.all_cases().size() * 5u);  // items_per_case
  const Trace& trace = sim.site_trace(0);
  EXPECT_EQ(static_cast<int64_t>(trace.size()), sim.total_readings());
  EXPECT_LE(trace.MaxEpoch(), 600);
}

TEST_F(SupplyChainTest, GroundTruthConsistentWithReadings) {
  SupplyChainSim sim(SmallConfig());
  sim.Run();
  // Every reading must come from a reader that covers the tag's true
  // location (same location or adjacent-shelf overlap).
  for (const RawReading& r : sim.site_trace(0).readings()) {
    LocationId truth = sim.truth().LocationAt(r.tag, r.time);
    ASSERT_NE(truth, kNoLocation)
        << "reading of " << r.tag.ToString() << " at " << r.time;
    EXPECT_GT(sim.model().Rate(r.reader, truth), 0.0);
  }
}

TEST_F(SupplyChainTest, ItemsStayWithCasesWithoutAnomalies) {
  SupplyChainSim sim(SmallConfig());
  sim.Run();
  EXPECT_TRUE(sim.anomalies().empty());
  // The only item-level containment changes are departure tombstones
  // (container -> none) when a group leaves the supply chain.
  for (const TruthChange& ch : sim.truth().changes()) {
    if (ch.tag.is_item()) {
      EXPECT_EQ(ch.to, kNoTag) << ch.tag.ToString() << " at " << ch.time;
    }
  }
  // While resident, every item has exactly one case container.
  for (TagId item : sim.all_items()) {
    TagId seen = kNoTag;
    for (const TruthInterval& iv : sim.truth().IntervalsOf(item)) {
      if (!iv.container.valid()) continue;
      if (!seen.valid()) seen = iv.container;
      EXPECT_EQ(iv.container, seen);
      EXPECT_TRUE(iv.container.is_case());
    }
    EXPECT_TRUE(seen.valid());
  }
}

TEST_F(SupplyChainTest, AnomaliesChangeContainment) {
  auto cfg = SmallConfig();
  cfg.anomaly_interval = 50;
  cfg.horizon = 500;
  SupplyChainSim sim(cfg);
  sim.Run();
  EXPECT_FALSE(sim.anomalies().empty());
  for (const AnomalyRecord& a : sim.anomalies()) {
    EXPECT_NE(a.from_case, a.to_case);
    EXPECT_EQ(sim.truth().ContainerAt(a.item, a.time), a.to_case);
    // The item physically moved to the destination case's location.
    EXPECT_EQ(sim.truth().LocationAt(a.item, a.time),
              sim.truth().LocationAt(a.to_case, a.time));
  }
  // Anomalies are recorded as ground-truth containment changes too.
  EXPECT_GE(sim.truth().changes().size(), sim.anomalies().size());
}

TEST_F(SupplyChainTest, MultiWarehouseTransfers) {
  auto cfg = SmallConfig();
  cfg.num_warehouses = 3;
  cfg.shelf_stay = 60;
  cfg.horizon = 900;
  cfg.max_pallets = 3;
  SupplyChainSim sim(cfg);
  sim.Run();
  ASSERT_FALSE(sim.transfers().empty());
  bool cross_site = false;
  for (const ObjectTransfer& tr : sim.transfers()) {
    if (tr.to != kNoSite) {
      EXPECT_EQ(tr.to, tr.from + 1);  // linear chain
      EXPECT_EQ(tr.arrive, tr.depart + cfg.transit_time);
      cross_site = true;
      EXPECT_FALSE(tr.cases.empty());
      EXPECT_FALSE(tr.items.empty());
    }
  }
  EXPECT_TRUE(cross_site);
  // Site 1 must have observed readings after transfers arrive.
  EXPECT_GT(sim.site_trace(1).size(), 0u);
}

TEST_F(SupplyChainTest, DagLayersRoundRobin) {
  auto cfg = SmallConfig();
  cfg.num_warehouses = 4;
  cfg.dag_layers = {1, 3};
  cfg.shelf_stay = 60;
  cfg.horizon = 900;
  cfg.max_pallets = 6;
  SupplyChainSim sim(cfg);
  sim.Run();
  std::set<SiteId> destinations;
  for (const ObjectTransfer& tr : sim.transfers()) {
    if (tr.from == 0 && tr.to != kNoSite) destinations.insert(tr.to);
  }
  // Round-robin over the 3 second-layer warehouses.
  EXPECT_EQ(destinations.size(), 3u);
}

TEST_F(SupplyChainTest, DeterministicForSameSeed) {
  SupplyChainSim a(SmallConfig());
  SupplyChainSim b(SmallConfig());
  a.Run();
  b.Run();
  EXPECT_EQ(a.site_trace(0).readings(), b.site_trace(0).readings());
}

TEST_F(SupplyChainTest, SeedChangesTrace) {
  auto cfg = SmallConfig();
  SupplyChainSim a(cfg);
  cfg.seed = 43;
  SupplyChainSim b(cfg);
  a.Run();
  b.Run();
  EXPECT_NE(a.site_trace(0).readings(), b.site_trace(0).readings());
}

TEST_F(SupplyChainTest, ExternalSinkReceivesEverything) {
  int64_t count = 0;
  CallbackSink sink([&](const RawReading&) { ++count; });
  SupplyChainSim sim(SmallConfig());
  sim.Run(&sink);
  EXPECT_EQ(count, sim.total_readings());
  EXPECT_TRUE(sim.site_trace(0).empty());  // not materialized
}

TEST(LabTest, SpecGrid) {
  EXPECT_DOUBLE_EQ(LabSpecFor(1).read_rate, 0.85);
  EXPECT_DOUBLE_EQ(LabSpecFor(1).overlap, 0.25);
  EXPECT_FALSE(LabSpecFor(1).with_changes);
  EXPECT_DOUBLE_EQ(LabSpecFor(4).read_rate, 0.70);
  EXPECT_DOUBLE_EQ(LabSpecFor(4).overlap, 0.50);
  EXPECT_TRUE(LabSpecFor(5).with_changes);
  EXPECT_DOUBLE_EQ(LabSpecFor(8).read_rate, 0.70);
  EXPECT_DOUBLE_EQ(LabSpecFor(8).overlap, 0.50);
}

TEST(LabTest, StableTraceHasNoChanges) {
  LabConfig cfg;
  cfg.spec = LabSpecFor(1);
  cfg.horizon = 900;
  LabDeployment lab(cfg);
  lab.Run();
  EXPECT_TRUE(lab.changes().empty());
  EXPECT_EQ(lab.cases().size(), 20u);
  EXPECT_EQ(lab.items().size(), 100u);
  EXPECT_GT(lab.trace().size(), 0u);
}

TEST(LabTest, ChangeTraceMovesThreeAndRemovesOne) {
  LabConfig cfg;
  cfg.spec = LabSpecFor(5);
  cfg.horizon = 900;
  LabDeployment lab(cfg);
  lab.Run();
  ASSERT_EQ(lab.changes().size(), 4u);
  int moved = 0, removed = 0;
  for (const LabChange& ch : lab.changes()) {
    if (ch.to_case.valid()) {
      ++moved;
      EXPECT_EQ(lab.truth().ContainerAt(ch.item, ch.time), ch.to_case);
    } else {
      ++removed;
      EXPECT_FALSE(lab.truth().PresentAt(ch.item, cfg.horizon));
    }
  }
  EXPECT_EQ(moved, 3);
  EXPECT_EQ(removed, 1);
}

TEST(LabTest, SevenReaderLayout) {
  LabConfig cfg;
  cfg.spec = LabSpecFor(2);
  LabDeployment lab(cfg);
  EXPECT_EQ(lab.layout().num_locations(), 7);  // entry, belt, 4 shelf, exit
}

}  // namespace
}  // namespace rfid
