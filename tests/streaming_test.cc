// Tests for the streaming inference driver: periodic runs, truncation
// policies, change handling across runs, buffer compaction, and the state
// migration hooks.
#include <gtest/gtest.h>

#include "inference/evaluate.h"
#include "inference/streaming.h"
#include "sim/supply_chain.h"

namespace rfid {
namespace {

SupplyChainConfig SmallConfig(Epoch horizon = 900, Epoch anomaly = 0) {
  SupplyChainConfig cfg;
  cfg.num_warehouses = 1;
  cfg.shelves_per_warehouse = 4;
  cfg.cases_per_pallet = 2;
  cfg.items_per_case = 8;
  cfg.shelf_stay = 500;
  cfg.horizon = horizon;
  cfg.anomaly_interval = anomaly;
  cfg.seed = 11;
  return cfg;
}

StreamingOptions FastOptions(TruncationMethod method) {
  StreamingOptions opts;
  opts.inference_period = 300;
  opts.truncation = method;
  opts.recent_history = 400;
  opts.window_size = 600;
  return opts;
}

TEST(StreamingTest, RunsOncePerPeriod) {
  SupplyChainSim sim(SmallConfig());
  sim.Run();
  StreamingInference si(&sim.model(), &sim.schedule(),
                        FastOptions(TruncationMethod::kAll));
  for (const RawReading& r : sim.site_trace(0).readings()) si.Observe(r);
  int ran = si.AdvanceTo(900);
  EXPECT_EQ(ran, 3);  // t=300, 600, 900
  EXPECT_EQ(si.runs(), 3);
  EXPECT_GT(si.total_inference_seconds(), 0.0);
}

TEST(StreamingTest, AccurateWithAllMethods) {
  SupplyChainSim sim(SmallConfig());
  sim.Run();
  for (TruncationMethod m :
       {TruncationMethod::kAll, TruncationMethod::kWindow,
        TruncationMethod::kCriticalRegion}) {
    StreamingInference si(&sim.model(), &sim.schedule(), FastOptions(m));
    for (const RawReading& r : sim.site_trace(0).readings()) si.Observe(r);
    si.AdvanceTo(900);
    double err = ContainmentErrorPercentOf(
        [&](TagId o) { return si.ContainerOf(o); }, sim.truth(),
        sim.all_items(), 899);
    EXPECT_LT(err, 25.0) << "method " << static_cast<int>(m);
  }
}

TEST(StreamingTest, CompactionBoundsBuffer) {
  SupplyChainSim sim(SmallConfig(1500));
  sim.Run();
  StreamingInference all(&sim.model(), &sim.schedule(),
                         FastOptions(TruncationMethod::kAll));
  StreamingInference cr(&sim.model(), &sim.schedule(),
                        FastOptions(TruncationMethod::kCriticalRegion));
  for (const RawReading& r : sim.site_trace(0).readings()) {
    all.Observe(r);
    cr.Observe(r);
  }
  all.AdvanceTo(1500);
  cr.AdvanceTo(1500);
  EXPECT_LT(cr.buffered_readings(), all.buffered_readings());
}

TEST(StreamingTest, DetectsInjectedAnomalies) {
  SupplyChainSim sim(SmallConfig(1200, /*anomaly=*/200));
  sim.Run();
  ASSERT_FALSE(sim.anomalies().empty());

  StreamingOptions opts = FastOptions(TruncationMethod::kCriticalRegion);
  opts.detect_changes = true;
  opts.change_threshold = 30.0;
  StreamingInference si(&sim.model(), &sim.schedule(), opts);
  for (const RawReading& r : sim.site_trace(0).readings()) si.Observe(r);
  si.AdvanceTo(1200);

  std::vector<TrueChange> truth;
  for (const AnomalyRecord& a : sim.anomalies()) {
    truth.push_back(TrueChange{a.time, a.item, a.to_case});
  }
  FMeasure fm = ScoreChangeDetection(si.all_changes(), truth, 400);
  EXPECT_GT(fm.Percent(), 40.0)
      << "P=" << fm.Precision() << " R=" << fm.Recall();
}

TEST(StreamingTest, ExportImportContextRoundTrip) {
  SupplyChainSim sim(SmallConfig());
  sim.Run();
  StreamingInference si(&sim.model(), &sim.schedule(),
                        FastOptions(TruncationMethod::kCriticalRegion));
  for (const RawReading& r : sim.site_trace(0).readings()) si.Observe(r);
  si.AdvanceTo(900);

  TagId item = sim.all_items().front();
  ObjectContext ctx = si.ExportObjectContext(item);
  EXPECT_FALSE(ctx.prior_weights.empty());

  // Import into a fresh driver; the prior steers the initial belief.
  StreamingInference fresh(&sim.model(), &sim.schedule(),
                           FastOptions(TruncationMethod::kCriticalRegion));
  fresh.ImportObjectContext(item, ctx);
  ObjectContext merged = fresh.ExportObjectContext(item);
  EXPECT_EQ(merged.prior_weights.size(), ctx.prior_weights.size());
}

TEST(StreamingTest, ImportMergesWeightsAdditively) {
  auto model = ReadRateModel::Uniform(2, 0.8);
  auto sched = InterrogationSchedule::AlwaysOn(2);
  sched.Finalize(model);
  StreamingInference si(&model, &sched, {});
  ObjectContext a, b;
  a.prior_weights = {{TagId::Case(1), -10.0}};
  b.prior_weights = {{TagId::Case(1), -5.0}, {TagId::Case(2), -3.0}};
  si.ImportObjectContext(TagId::Item(1), a);
  si.ImportObjectContext(TagId::Item(1), b);
  ObjectContext merged = si.ExportObjectContext(TagId::Item(1));
  ASSERT_EQ(merged.prior_weights.size(), 2u);
  EXPECT_DOUBLE_EQ(merged.prior_weights[0].second, -15.0);
}

TEST(StreamingTest, ExportReadingsCoversCriticalRegionAndRecent) {
  SupplyChainSim sim(SmallConfig());
  sim.Run();
  StreamingInference si(&sim.model(), &sim.schedule(),
                        FastOptions(TruncationMethod::kCriticalRegion));
  for (const RawReading& r : sim.site_trace(0).readings()) si.Observe(r);
  si.AdvanceTo(900);
  TagId item = sim.all_items().front();
  TagId case_tag = sim.truth().ContainerAt(item, 600);
  auto readings = si.ExportReadings({item, case_tag}, item);
  EXPECT_FALSE(readings.empty());
  for (const RawReading& r : readings) {
    EXPECT_TRUE(r.tag == item || r.tag == case_tag);
  }
}

}  // namespace
}  // namespace rfid
