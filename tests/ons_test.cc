// Tests for the sharded ONS directory: shard ownership stability, the
// per-site resolver cache (hits and invalidation on moves), per-shard load
// counters matching the former single-node aggregate, and the sharded
// accounting of the distributed replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "dist/distributed.h"
#include "dist/network.h"
#include "dist/ons.h"
#include "sim/supply_chain.h"

namespace rfid {
namespace {

OnsOptions ShardedOptions(int num_shards, int num_sites, bool cache) {
  OnsOptions opts;
  opts.num_shards = num_shards;
  opts.num_sites = num_sites;
  opts.resolver_cache = cache;
  return opts;
}

TEST(OnsShardingTest, OwnershipStableAndInRange) {
  Ons a(ShardedOptions(4, 4, /*cache=*/true));
  Ons b(ShardedOptions(4, 8, /*cache=*/false));
  std::vector<int> population(4, 0);
  for (uint64_t serial = 0; serial < 1000; ++serial) {
    for (TagId tag : {TagId::Item(serial), TagId::Case(serial),
                      TagId::Pallet(serial)}) {
      const int shard = a.ShardOf(tag);
      ASSERT_GE(shard, 0);
      ASSERT_LT(shard, 4);
      // Ownership depends only on the tag and the shard count, never on
      // the instance, its site count, or its registration history.
      EXPECT_EQ(shard, b.ShardOf(tag));
      EXPECT_EQ(shard, Ons::ShardOfTag(tag, 4));
      ++population[static_cast<size_t>(shard)];
    }
    a.Register(TagId::Item(serial), static_cast<SiteId>(serial % 4));
    EXPECT_EQ(a.ShardOf(TagId::Item(serial)),
              Ons::ShardOfTag(TagId::Item(serial), 4));
  }
  // The hash partition actually spreads the population.
  for (int count : population) EXPECT_GT(count, 0);
}

TEST(OnsShardingTest, ShardHostsRoundRobinAcrossSites) {
  Ons ons(ShardedOptions(6, 4, /*cache=*/true));
  for (int s = 0; s < 6; ++s) {
    EXPECT_EQ(ons.ShardHost(s), static_cast<SiteId>(s % 4));
  }
  // With no hosting sites the synthetic directory node is charged.
  Ons standalone;
  EXPECT_EQ(standalone.num_shards(), 1);
  EXPECT_EQ(standalone.ShardHost(0), kDirectorySite);
}

TEST(OnsCacheTest, RepeatResolutionsAreFreeUntilTheMappingChanges) {
  Network net;
  Ons ons(ShardedOptions(2, 3, /*cache=*/true));
  ons.AttachNetwork(&net);
  const TagId tag = TagId::Pallet(7);

  ons.Register(tag, 1);
  const int64_t after_register = net.total_bytes();
  EXPECT_GT(after_register, 0);

  // First resolution from site 2: charged (request + response).
  EXPECT_EQ(ons.Resolve(tag, 2), 1);
  const int64_t after_first = net.total_bytes();
  EXPECT_GT(after_first, after_register);
  EXPECT_EQ(ons.charged_lookups(), 1);
  EXPECT_EQ(ons.cache_hits(), 0);

  // Repeat from the same site: served from its resolver cache, zero wire
  // bytes.
  EXPECT_EQ(ons.Resolve(tag, 2), 1);
  EXPECT_EQ(net.total_bytes(), after_first);
  EXPECT_EQ(ons.charged_lookups(), 1);
  EXPECT_EQ(ons.cache_hits(), 1);

  // A different site holds its own cache and pays its own first lookup.
  EXPECT_EQ(ons.Resolve(tag, 0), 1);
  EXPECT_GT(net.total_bytes(), after_first);
  EXPECT_EQ(ons.charged_lookups(), 2);

  // Re-registering at the same site is not a move: caches stay warm.
  ons.Register(tag, 1);
  const int64_t before_warm = net.total_bytes();
  EXPECT_EQ(ons.Resolve(tag, 2), 1);
  EXPECT_EQ(net.total_bytes(), before_warm);
  EXPECT_EQ(ons.cache_hits(), 2);

  // A move invalidates every site's cached answer.
  ons.Register(tag, 2);
  const int64_t before_moved = net.total_bytes();
  EXPECT_EQ(ons.Resolve(tag, 0), 2);
  EXPECT_GT(net.total_bytes(), before_moved);
  EXPECT_EQ(ons.charged_lookups(), 3);

  // Unregister invalidates too; the (charged) miss is a negative answer
  // that itself becomes cacheable until the next registration.
  ons.Unregister(tag);
  EXPECT_EQ(ons.Resolve(tag, 0), kNoSite);
  EXPECT_EQ(ons.charged_lookups(), 4);
  const int64_t after_negative = net.total_bytes();
  EXPECT_EQ(ons.Resolve(tag, 0), kNoSite);
  EXPECT_EQ(net.total_bytes(), after_negative);
  EXPECT_EQ(ons.cache_hits(), 3);
  // ...and the next registration invalidates the negative entry.
  ons.Register(tag, 0);
  EXPECT_EQ(ons.Resolve(tag, 0), 0);
  EXPECT_EQ(ons.charged_lookups(), 5);
}

TEST(OnsCacheTest, TtlExpiryServesStaleAnswersUntilRefetch) {
  // DNS fidelity mode (OnsOptions::cache_ttl > 0): cached answers are NOT
  // invalidated when the mapping moves -- they are served stale until the
  // TTL runs out, and the next Resolve is charged and re-fetches.
  Network net;
  OnsOptions opts = ShardedOptions(2, 3, /*cache=*/true);
  opts.cache_ttl = 100;
  Ons ons(opts);
  ons.AttachNetwork(&net);
  const TagId tag = TagId::Pallet(7);

  ons.AdvanceClock(0);
  ons.Register(tag, 1);
  EXPECT_EQ(ons.Resolve(tag, 2), 1);  // charged fetch, cached at epoch 0
  EXPECT_EQ(ons.charged_lookups(), 1);

  // The pallet moves. Exact mode would invalidate site 2's cache; TTL
  // mode serves the stale answer for free until the entry expires.
  ons.Register(tag, 2);
  ons.AdvanceClock(50);
  const int64_t bytes_before_stale = net.total_bytes();
  EXPECT_EQ(ons.Resolve(tag, 2), 1);  // stale hit: the *old* owner
  EXPECT_EQ(net.total_bytes(), bytes_before_stale);
  EXPECT_EQ(ons.cache_hits(), 1);
  EXPECT_EQ(ons.charged_lookups(), 1);

  // At cached_at + ttl the entry has expired: re-resolution is charged
  // and returns the current owner.
  ons.AdvanceClock(100);
  EXPECT_EQ(ons.Resolve(tag, 2), 2);
  EXPECT_EQ(ons.charged_lookups(), 2);
  EXPECT_GT(net.total_bytes(), bytes_before_stale);

  // The refreshed entry serves hits again for its own TTL window.
  ons.AdvanceClock(150);
  EXPECT_EQ(ons.Resolve(tag, 2), 2);
  EXPECT_EQ(ons.cache_hits(), 2);

  // Other sites' first resolutions are unaffected by site 2's cache.
  EXPECT_EQ(ons.Resolve(tag, 0), 2);
  EXPECT_EQ(ons.charged_lookups(), 3);
}

TEST(OnsCacheTest, ZeroTtlKeepsExactInvalidation) {
  // cache_ttl = 0 is today's behavior: a move invalidates immediately and
  // no answer is ever stale, regardless of how far the clock advances.
  Network net;
  OnsOptions opts = ShardedOptions(2, 3, /*cache=*/true);
  opts.cache_ttl = 0;
  Ons ons(opts);
  ons.AttachNetwork(&net);
  const TagId tag = TagId::Pallet(7);

  ons.AdvanceClock(0);
  ons.Register(tag, 1);
  EXPECT_EQ(ons.Resolve(tag, 2), 1);
  ons.AdvanceClock(1000000);  // an eternity: exact entries never expire
  EXPECT_EQ(ons.Resolve(tag, 2), 1);
  EXPECT_EQ(ons.cache_hits(), 1);
  ons.Register(tag, 2);  // move invalidates at once
  EXPECT_EQ(ons.Resolve(tag, 2), 2);
  EXPECT_EQ(ons.charged_lookups(), 2);
}

TEST(OnsCacheTest, DisabledCacheChargesEveryResolve) {
  Network net;
  Ons ons(ShardedOptions(2, 3, /*cache=*/false));
  ons.AttachNetwork(&net);
  ons.Register(TagId::Pallet(1), 0);
  EXPECT_EQ(ons.Resolve(TagId::Pallet(1), 2), 0);
  const int64_t first = net.total_bytes();
  EXPECT_EQ(ons.Resolve(TagId::Pallet(1), 2), 0);
  EXPECT_GT(net.total_bytes(), first);
  EXPECT_EQ(ons.cache_hits(), 0);
  EXPECT_EQ(ons.charged_lookups(), 2);
}

TEST(OnsShardingTest, PerShardCountersSumToSingleNodeAggregate) {
  // The same operation stream against a single-shard directory (the
  // pre-sharding accounting) and a four-shard one: per-shard counters and
  // bytes must sum to the former aggregate -- routing redistributes load,
  // it never creates or destroys it.
  Network net_single, net_sharded;
  Ons single(ShardedOptions(1, 5, /*cache=*/false));
  Ons sharded(ShardedOptions(4, 5, /*cache=*/false));
  single.AttachNetwork(&net_single);
  sharded.AttachNetwork(&net_sharded);

  auto drive = [](Ons& ons) {
    for (uint64_t serial = 0; serial < 200; ++serial) {
      ons.Register(TagId::Pallet(serial), 0);
    }
    for (uint64_t serial = 0; serial < 200; ++serial) {
      ons.Resolve(TagId::Pallet(serial), 1);
      ons.Register(TagId::Pallet(serial),
                   static_cast<SiteId>(1 + serial % 4));
      ons.Resolve(TagId::Pallet(serial), 2);
    }
    for (uint64_t serial = 0; serial < 100; ++serial) {
      ons.Unregister(TagId::Pallet(serial));
    }
  };
  drive(single);
  drive(sharded);

  EXPECT_EQ(single.num_shards(), 1);
  EXPECT_EQ(sharded.num_shards(), 4);
  EXPECT_EQ(sharded.updates(), single.updates());
  EXPECT_EQ(sharded.unregisters(), single.unregisters());
  EXPECT_EQ(sharded.charged_lookups(), single.charged_lookups());
  EXPECT_EQ(sharded.size(), single.size());

  int64_t sharded_bytes = 0;
  bool multiple_shards_loaded = false;
  for (int s = 0; s < sharded.num_shards(); ++s) {
    sharded_bytes += sharded.shard_stats(s).bytes;
    if (s > 0 && sharded.shard_stats(s).bytes > 0) {
      multiple_shards_loaded = true;
    }
  }
  EXPECT_EQ(sharded_bytes, single.shard_stats(0).bytes);
  EXPECT_EQ(net_sharded.total_bytes(), net_single.total_bytes());
  EXPECT_EQ(net_sharded.total_messages(), net_single.total_messages());
  EXPECT_EQ(net_sharded.BytesOfKind(MessageKind::kDirectory),
            net_single.BytesOfKind(MessageKind::kDirectory));
  EXPECT_TRUE(multiple_shards_loaded);
  // Single-shard traffic all rides the one host link; sharded traffic is
  // spread over the per-host links but sums to the same totals.
  int64_t sharded_msgs_to_hosts = 0;
  for (SiteId site = 0; site < 5; ++site) {
    for (SiteId host = 0; host < 5; ++host) {
      sharded_msgs_to_hosts += net_sharded.MessagesOnLink(site, host);
    }
  }
  EXPECT_EQ(sharded_msgs_to_hosts, net_sharded.total_messages());
}

TEST(OnsShardingTest, DistributedReplayShardTotalsAndCacheSavings) {
  SupplyChainConfig cfg;
  cfg.num_warehouses = 3;
  cfg.shelves_per_warehouse = 4;
  cfg.cases_per_pallet = 2;
  cfg.items_per_case = 6;
  cfg.shelf_stay = 250;
  cfg.transit_time = 30;
  cfg.horizon = 1200;
  cfg.seed = 21;
  SupplyChainSim sim(cfg);
  sim.Run();
  ASSERT_FALSE(sim.transfers().empty());

  auto run = [&](int shards, bool cache) {
    DistributedOptions opts;
    opts.site.migration = MigrationMode::kCollapsed;
    opts.site.streaming.inference_period = 300;
    opts.site.streaming.recent_history = 400;
    opts.directory_shards = shards;
    opts.directory_cache = cache;
    auto sys = std::make_unique<DistributedSystem>(&sim, opts);
    sys->Run();
    return sys;
  };

  auto single_nc = run(/*shards=*/1, /*cache=*/false);
  auto sharded_nc = run(/*shards=*/0, /*cache=*/false);  // one per site
  auto sharded = run(/*shards=*/0, /*cache=*/true);

  const auto dir_bytes = [](const DistributedSystem& sys) {
    return sys.network().BytesOfKind(MessageKind::kDirectory);
  };
  const auto shard_sum = [](const DistributedSystem& sys) {
    int64_t sum = 0;
    for (int s = 0; s < sys.ons().num_shards(); ++s) {
      sum += sys.ons().shard_stats(s).bytes;
    }
    return sum;
  };

  EXPECT_EQ(sharded_nc->ons().num_shards(), 3);
  // Per-shard bytes sum to the kDirectory kind total in every config.
  EXPECT_EQ(shard_sum(*single_nc), dir_bytes(*single_nc));
  EXPECT_EQ(shard_sum(*sharded_nc), dir_bytes(*sharded_nc));
  EXPECT_EQ(shard_sum(*sharded), dir_bytes(*sharded));
  // Sharding alone redistributes the former single-node total.
  EXPECT_EQ(dir_bytes(*sharded_nc), dir_bytes(*single_nc));
  // The resolver cache strictly reduces it (transfers repeat-resolve at
  // arrival, and nothing moves in transit).
  EXPECT_LT(dir_bytes(*sharded), dir_bytes(*sharded_nc));
  EXPECT_GT(sharded->ons().cache_hits(), 0);
  EXPECT_EQ(sharded_nc->ons().cache_hits(), 0);
  // Cache hits replace charged lookups one for one.
  EXPECT_EQ(sharded->ons().charged_lookups() + sharded->ons().cache_hits(),
            sharded_nc->ons().charged_lookups());
  // Non-directory traffic is untouched by directory deployment knobs.
  EXPECT_EQ(
      sharded->network().BytesOfKind(MessageKind::kInferenceState),
      single_nc->network().BytesOfKind(MessageKind::kInferenceState));
}

}  // namespace
}  // namespace rfid
