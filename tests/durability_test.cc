// Tests for per-site durability (dist/durability.h) and the durable
// crash/recovery path of the distributed replay (dist/distributed.h):
//
//   - the crash-point sweep: a site killed at every inference boundary, at
//     every kill phase (mid-window / post-drain / mid-flush), under every
//     checkpoint cadence (every boundary / sparse / WAL-only), restarted
//     from its own disk -- final alerts, accuracy series, beliefs, and
//     byte totals bit-identical to the uncrashed run, with zero
//     kRecoveryRequest traffic;
//   - a transfer departing DURING the outage (the state the non-durable
//     path honestly loses) exported exactly by the catch-up replay;
//   - corruption handling: every single-byte flip of a checkpoint falls
//     back to the previous cut, WAL truncation at every offset yields the
//     longest complete-record prefix (torn tail counted) or fails loudly
//     when the hole is mid-stream;
//   - the tamper-evident audit log: golden hash chain, and a tamper
//     matrix (edit every byte, swap adjacent records, drop an interior
//     record) that pinpoints the first broken link.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/serde.h"
#include "common/sha256.h"
#include "dist/distributed.h"
#include "dist/durability.h"
#include "dist/frame.h"
#include "sim/sensors.h"
#include "sim/supply_chain.h"

namespace rfid {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory, removed on destruction.
class ScratchDir {
 public:
  ScratchDir() {
    std::string tmpl = ::testing::TempDir() + "rfid_durability_XXXXXX";
    char* got = mkdtemp(tmpl.data());
    EXPECT_NE(got, nullptr);
    path_ = got != nullptr ? got : tmpl;
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

DurabilityOptions QuietDurability(const std::string& dir) {
  DurabilityOptions o;
  o.dir = dir;
  o.fsync = DurabilityOptions::FsyncPolicy::kOff;  // tests don't need disk
                                                   // barriers, just layout
  return o;
}

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> xs) {
  return std::vector<uint8_t>(xs);
}

Status ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("open " + path);
  out->clear();
  uint8_t buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  std::fclose(f);
  return Status::OK();
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// The single file under `dir` whose name starts with `prefix`.
std::string FindFile(const std::string& dir, const std::string& prefix) {
  std::string found;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind(prefix, 0) == 0) {
      EXPECT_TRUE(found.empty()) << "multiple " << prefix << "* files";
      found = e.path().string();
    }
  }
  EXPECT_FALSE(found.empty()) << "no " << prefix << "* file in " << dir;
  return found;
}

// ---- Options / env knobs ----

TEST(DurabilityOptionsTest, EnvKnobsSelectDirectoryAndFsyncPolicy) {
  unsetenv("RFID_DURABILITY_DIR");
  unsetenv("RFID_DURABILITY_FSYNC");
  EXPECT_FALSE(DurabilityOptions().enabled());

  setenv("RFID_DURABILITY_DIR", "/tmp/rfid_dur_env_test", 1);
  setenv("RFID_DURABILITY_FSYNC", "off", 1);
  const DurabilityOptions o;
  EXPECT_TRUE(o.enabled());
  EXPECT_EQ(o.dir, "/tmp/rfid_dur_env_test");
  EXPECT_EQ(o.fsync, DurabilityOptions::FsyncPolicy::kOff);
  unsetenv("RFID_DURABILITY_DIR");
  unsetenv("RFID_DURABILITY_FSYNC");
  EXPECT_EQ(DurabilityOptions().fsync, DurabilityOptions::FsyncPolicy::kData);
}

// ---- Frame WAL: truncation sweep ----

TEST(WalTest, TruncationAtEveryOffsetRecoversLongestPrefix) {
  ScratchDir dir;
  std::vector<Frame> expected;
  {
    SiteDurability d(QuietDurability(dir.str()), /*site=*/3);
    ASSERT_TRUE(d.Open().ok());
    for (int i = 0; i < 5; ++i) {
      std::vector<uint8_t> payload;
      for (int b = 0; b <= i * 7; ++b) {
        payload.push_back(static_cast<uint8_t>(b * 13 + i));
      }
      ASSERT_TRUE(d.AppendFrame(static_cast<SiteId>(i),
                                MessageKind::kInferenceState, payload,
                                /*delivery_epoch=*/100 + i)
                      .ok());
    }
    ASSERT_TRUE(d.Flush().ok());
    ASSERT_TRUE(d.ReadWalSince(0, &expected).ok());
    ASSERT_EQ(expected.size(), 5u);
  }

  const std::string wal = FindFile(dir.str() + "/site_3", "wal_");
  std::vector<uint8_t> full;
  ASSERT_TRUE(ReadFile(wal, &full).ok());

  // Record end offsets, from a clean sequential decode.
  std::vector<size_t> ends;
  size_t off = 0;
  while (off < full.size()) {
    Frame f;
    size_t consumed = 0;
    ASSERT_TRUE(
        DecodeFrame(full.data() + off, full.size() - off, &f, &consumed)
            .ok());
    off += consumed;
    ends.push_back(off);
  }
  ASSERT_EQ(ends.size(), 5u);

  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteFile(wal, std::vector<uint8_t>(full.begin(),
                                        full.begin() +
                                            static_cast<ptrdiff_t>(cut)));
    SiteDurability r(QuietDurability(dir.str()), /*site=*/3);
    ASSERT_TRUE(r.Open().ok()) << "cut " << cut;
    std::vector<Frame> got;
    ASSERT_TRUE(r.ReadWalSince(0, &got).ok()) << "cut " << cut;
    size_t complete = 0;
    while (complete < ends.size() && ends[complete] <= cut) ++complete;
    ASSERT_EQ(got.size(), complete) << "cut " << cut;
    for (size_t i = 0; i < complete; ++i) {
      EXPECT_EQ(got[i], expected[i]) << "cut " << cut << " record " << i;
    }
    // A cut strictly inside a record leaves a torn tail; a cut on a record
    // boundary leaves a clean log.
    const bool torn = complete < ends.size() &&
                      cut > (complete == 0 ? 0 : ends[complete - 1]);
    EXPECT_EQ(r.stats().torn_tail_records, torn ? 1 : 0) << "cut " << cut;
  }
  WriteFile(wal, full);
}

TEST(WalTest, MidStreamHoleInAnOldSegmentFailsLoudly) {
  ScratchDir dir;
  SiteDurability d(QuietDurability(dir.str()), /*site=*/0);
  ASSERT_TRUE(d.Open().ok());
  // Two checkpoints keep WAL coverage back to the OLDER cut, so the
  // segment rotated in at 300 is retained but is no longer the final one:
  // a hole in it cannot be a legal torn tail.
  ASSERT_TRUE(d.WriteCheckpoint(300, Bytes({9, 9, 9})).ok());
  ASSERT_TRUE(d.AppendFrame(1, MessageKind::kQueryState,
                            Bytes({1, 2, 3, 4}), 310)
                  .ok());
  ASSERT_TRUE(d.Flush().ok());
  ASSERT_TRUE(d.WriteCheckpoint(600, Bytes({8, 8, 8})).ok());
  ASSERT_TRUE(d.AppendFrame(1, MessageKind::kQueryState,
                            Bytes({5, 6, 7, 8}), 610)
                  .ok());
  ASSERT_TRUE(d.Flush().ok());

  const std::string old_seg = dir.str() + "/site_0/wal_" +
                              std::string(17, '0') + "300.log";
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFile(old_seg, &bytes).ok());
  ASSERT_GT(bytes.size(), 4u);
  bytes.resize(bytes.size() - 3);  // tear the non-final segment
  WriteFile(old_seg, bytes);

  std::vector<Frame> got;
  const Status st = d.ReadWalSince(300, &got);
  EXPECT_FALSE(st.ok());
  // Reading only from the clean newest segment still works: recovery from
  // the checkpoint at 600 does not touch the damaged history.
  got.clear();
  EXPECT_TRUE(d.ReadWalSince(600, &got).ok());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, Bytes({5, 6, 7, 8}));
}

// ---- Checkpoints: corruption fallback ----

TEST(CheckpointTest, EveryByteFlipFallsBackToThePreviousCut) {
  ScratchDir dir;
  SiteDurability d(QuietDurability(dir.str()), /*site=*/2);
  ASSERT_TRUE(d.Open().ok());
  const std::vector<uint8_t> older = Bytes({10, 20, 30, 40, 50});
  const std::vector<uint8_t> newer = Bytes({11, 22, 33, 44, 55, 66});
  ASSERT_TRUE(d.WriteCheckpoint(300, older).ok());
  ASSERT_TRUE(d.WriteCheckpoint(600, newer).ok());

  Epoch epoch = 0;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(d.LoadCheckpoint(&epoch, &payload).ok());
  EXPECT_EQ(epoch, 600);
  EXPECT_EQ(payload, newer);

  const std::string newest =
      dir.str() + "/site_2/checkpoint_" + std::string(17, '0') + "600.ckpt";
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFile(newest, &bytes).ok());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> flipped = bytes;
    flipped[i] ^= 0x5a;
    WriteFile(newest, flipped);
    epoch = -1;
    payload.clear();
    ASSERT_TRUE(d.LoadCheckpoint(&epoch, &payload).ok()) << "byte " << i;
    EXPECT_EQ(epoch, 300) << "byte " << i;
    EXPECT_EQ(payload, older) << "byte " << i;
  }
  EXPECT_GE(d.stats().checkpoint_fallbacks,
            static_cast<int64_t>(bytes.size()));
  WriteFile(newest, bytes);

  // Both cuts corrupt: recovery starts from scratch (epoch 0, empty).
  const std::string oldest =
      dir.str() + "/site_2/checkpoint_" + std::string(17, '0') + "300.ckpt";
  std::vector<uint8_t> old_bytes;
  ASSERT_TRUE(ReadFile(oldest, &old_bytes).ok());
  old_bytes[old_bytes.size() / 2] ^= 0xff;
  WriteFile(oldest, old_bytes);
  std::vector<uint8_t> new_bytes = bytes;
  new_bytes[1] ^= 0xff;
  WriteFile(newest, new_bytes);
  ASSERT_TRUE(d.LoadCheckpoint(&epoch, &payload).ok());
  EXPECT_EQ(epoch, 0);
  EXPECT_TRUE(payload.empty());
}

TEST(CheckpointTest, RotationKeepsWalCoverageBackToTheOlderCut) {
  ScratchDir dir;
  SiteDurability d(QuietDurability(dir.str()), /*site=*/1);
  ASSERT_TRUE(d.Open().ok());
  for (Epoch c = 300; c <= 1500; c += 300) {
    ASSERT_TRUE(d.AppendFrame(0, MessageKind::kInferenceState,
                              Bytes({static_cast<uint8_t>(c / 300)}), c - 1)
                    .ok());
    ASSERT_TRUE(
        d.WriteCheckpoint(c, Bytes({static_cast<uint8_t>(c / 100)})).ok());
  }
  // Only the newest two checkpoints survive...
  int checkpoints = 0;
  for (const fs::directory_entry& e :
       fs::directory_iterator(dir.str() + "/site_1")) {
    const std::string name = e.path().filename().string();
    if (name.rfind("checkpoint_", 0) == 0) ++checkpoints;
  }
  EXPECT_EQ(checkpoints, 2);
  // ...and the WAL still covers everything after the OLDER one, so a
  // corrupt newest checkpoint can fall back and replay through.
  std::vector<Frame> frames;
  ASSERT_TRUE(d.ReadWalSince(1200, &frames).ok());
  frames.clear();
  ASSERT_TRUE(d.ReadWalSince(1500, &frames).ok());
  EXPECT_TRUE(frames.empty());  // nothing drained after the final cut
}

// ---- Audit log: golden chain + tamper matrix ----

/// Deterministic six-record log for site 4.
void WriteGoldenAuditLog(const std::string& dir) {
  SiteDurability d(QuietDurability(dir), /*site=*/4);
  ASSERT_TRUE(d.Open().ok());
  for (int i = 0; i < 6; ++i) {
    std::vector<uint8_t> payload;
    for (int b = 0; b < 4 + i; ++b) {
      payload.push_back(static_cast<uint8_t>(i * 16 + b));
    }
    ASSERT_TRUE(d.AppendAudit(i % 2 == 0 ? AuditRecord::Kind::kAlert
                                         : AuditRecord::Kind::kMovement,
                              /*epoch=*/500 + i, payload)
                    .ok());
  }
  ASSERT_TRUE(d.Flush().ok());
}

/// Byte extent [begin, end) of each record in an audit log.
std::vector<std::pair<size_t, size_t>> AuditExtents(
    const std::vector<uint8_t>& bytes) {
  std::vector<std::pair<size_t, size_t>> extents;
  size_t off = 0;
  while (off < bytes.size()) {
    BufferReader r(bytes.data() + off, bytes.size() - off);
    uint64_t body_len = 0;
    EXPECT_TRUE(r.GetVarint(&body_len).ok());
    const size_t end = off + r.position() + body_len + 64;
    EXPECT_LE(end, bytes.size());
    extents.emplace_back(off, end);
    off = end;
  }
  return extents;
}

TEST(AuditLogTest, GoldenChainVerifiesAndSurvivesReopen) {
  ScratchDir dir;
  WriteGoldenAuditLog(dir.str());
  const std::string path = dir.str() + "/site_4/audit.log";

  const AuditVerifyResult result =
      VerifyAuditLog(path, SiteDurability::SiteKey(4));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.records, 6);
  EXPECT_EQ(result.first_bad_record, -1);
  // Golden: the chain value pins the record encoding, the genesis value,
  // and SHA-256 itself -- any accidental format change breaks this.
  EXPECT_EQ(
      ToHex(result.final_chain),
      "654a9550f8303b96789fded3ee53ee8531ff9edc8a592e1cc39c2e4d2b057a5a");

  std::vector<AuditRecord> records;
  ASSERT_TRUE(ReadAuditLog(path, &records).ok());
  ASSERT_EQ(records.size(), 6u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i);
    EXPECT_EQ(records[i].site, 4);
    EXPECT_EQ(records[i].epoch, 500 + static_cast<Epoch>(i));
  }

  // A new incarnation continues the chain instead of restarting it.
  {
    SiteDurability d(QuietDurability(dir.str()), /*site=*/4);
    ASSERT_TRUE(d.Open().ok());
    ASSERT_TRUE(
        d.AppendAudit(AuditRecord::Kind::kAlert, 900, Bytes({1})).ok());
    ASSERT_TRUE(d.Flush().ok());
  }
  const AuditVerifyResult extended =
      VerifyAuditLog(path, SiteDurability::SiteKey(4));
  ASSERT_TRUE(extended.ok) << extended.error;
  EXPECT_EQ(extended.records, 7);

  // The wrong site's key rejects at the first record.
  const AuditVerifyResult wrong_key =
      VerifyAuditLog(path, SiteDurability::SiteKey(5));
  EXPECT_FALSE(wrong_key.ok);
  EXPECT_EQ(wrong_key.first_bad_record, 0);
}

TEST(AuditLogTest, TamperMatrixPinpointsTheFirstBrokenLink) {
  ScratchDir dir;
  WriteGoldenAuditLog(dir.str());
  const std::string path = dir.str() + "/site_4/audit.log";
  const std::vector<uint8_t> key = SiteDurability::SiteKey(4);
  std::vector<uint8_t> clean;
  ASSERT_TRUE(ReadFile(path, &clean).ok());
  const auto extents = AuditExtents(clean);
  ASSERT_EQ(extents.size(), 6u);
  const std::string tampered = dir.str() + "/tampered.log";

  // Edit: every single-byte flip is detected, at the record it lives in.
  for (size_t i = 0; i < clean.size(); ++i) {
    std::vector<uint8_t> bytes = clean;
    bytes[i] ^= 0x01;
    WriteFile(tampered, bytes);
    const AuditVerifyResult r = VerifyAuditLog(tampered, key);
    ASSERT_FALSE(r.ok) << "flipped byte " << i;
    int64_t record = -1;
    for (size_t e = 0; e < extents.size(); ++e) {
      if (i >= extents[e].first && i < extents[e].second) {
        record = static_cast<int64_t>(e);
      }
    }
    EXPECT_EQ(r.first_bad_record, record) << "flipped byte " << i;
  }

  // Reorder: swapping adjacent records breaks the chain at the first.
  for (size_t e = 0; e + 1 < extents.size(); ++e) {
    std::vector<uint8_t> bytes(clean.begin(),
                               clean.begin() +
                                   static_cast<ptrdiff_t>(extents[e].first));
    bytes.insert(bytes.end(),
                 clean.begin() + static_cast<ptrdiff_t>(extents[e + 1].first),
                 clean.begin() + static_cast<ptrdiff_t>(extents[e + 1].second));
    bytes.insert(bytes.end(),
                 clean.begin() + static_cast<ptrdiff_t>(extents[e].first),
                 clean.begin() + static_cast<ptrdiff_t>(extents[e].second));
    bytes.insert(bytes.end(),
                 clean.begin() + static_cast<ptrdiff_t>(extents[e + 1].second),
                 clean.end());
    WriteFile(tampered, bytes);
    const AuditVerifyResult r = VerifyAuditLog(tampered, key);
    ASSERT_FALSE(r.ok) << "swapped records " << e << "," << e + 1;
    EXPECT_EQ(r.first_bad_record, static_cast<int64_t>(e));
  }

  // Drop: removing any interior record breaks the chain where it stood.
  for (size_t e = 0; e + 1 < extents.size(); ++e) {
    std::vector<uint8_t> bytes(clean.begin(),
                               clean.begin() +
                                   static_cast<ptrdiff_t>(extents[e].first));
    bytes.insert(bytes.end(),
                 clean.begin() + static_cast<ptrdiff_t>(extents[e].second),
                 clean.end());
    WriteFile(tampered, bytes);
    const AuditVerifyResult r = VerifyAuditLog(tampered, key);
    ASSERT_FALSE(r.ok) << "dropped record " << e;
    EXPECT_EQ(r.first_bad_record, static_cast<int64_t>(e));
  }

  // Truncating the FINAL record is the chain's documented blind spot: the
  // remaining prefix still verifies. External anchoring of the latest
  // chain value (which log_verify prints) is what closes it.
  std::vector<uint8_t> bytes(clean.begin(),
                             clean.begin() +
                                 static_cast<ptrdiff_t>(extents[5].first));
  WriteFile(tampered, bytes);
  const AuditVerifyResult r = VerifyAuditLog(tampered, key);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.records, 5);
}

// ---- Durable replay: crash-point sweep + departed-transfer exactness ----

SupplyChainConfig SweepConfig() {
  SupplyChainConfig cfg;
  cfg.num_warehouses = 3;
  cfg.shelves_per_warehouse = 3;
  cfg.cases_per_pallet = 2;
  cfg.items_per_case = 4;
  cfg.shelf_stay = 300;
  cfg.transit_time = 30;
  cfg.horizon = 1500;
  cfg.seed = 77;
  return cfg;
}

DistributedOptions SweepOptions() {
  DistributedOptions opts;
  opts.site.migration = MigrationMode::kFullReadings;
  opts.site.streaming.inference_period = 300;
  opts.site.streaming.recent_history = 400;
  opts.attach_queries = true;
  opts.q1 = ExposureQuery::Q1Config(/*duration=*/300);
  opts.q1.max_gap = 400;
  opts.q2 = ExposureQuery::Q2Config(/*duration=*/300);
  opts.q2.max_gap = 400;
  opts.num_threads = 0;
  opts.network.faults = FaultModel{};  // explicit; never ambient env
  opts.trace = false;
  return opts;
}

struct SweepFixture {
  SweepFixture() : sim(SweepConfig()) {
    sim.Run();
    for (TagId item : sim.all_items()) {
      catalog.RegisterProduct(item,
                              ProductInfo{"frozen_food", true, false, false});
    }
    for (TagId c : sim.all_cases()) {
      catalog.RegisterContainer(c, ContainerInfo{ContainerClass::kPlain});
    }
    SensorConfig scfg;
    Rng rng(5);
    sensors = GenerateSensorStream(scfg, sim.layout().num_locations(),
                                   sim.config().horizon, rng);
  }
  SupplyChainSim sim;
  ProductCatalog catalog;
  std::vector<SensorReading> sensors;
};

void ExpectSameAlerts(const std::vector<ExposureAlert>& a,
                      const std::vector<ExposureAlert>& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tag, b[i].tag) << label << " alert " << i;
    EXPECT_EQ(a[i].first_time, b[i].first_time) << label << " alert " << i;
    EXPECT_EQ(a[i].last_time, b[i].last_time) << label << " alert " << i;
    EXPECT_EQ(a[i].n_events, b[i].n_events) << label << " alert " << i;
  }
}

/// The headline contract: results AND byte accounting bit-identical, and
/// not a single recovery-request byte on the wire.
void ExpectDurableBitIdentity(const DistributedSystem& reference,
                              const DistributedSystem& durable,
                              const SupplyChainSim& sim,
                              const std::string& label) {
  EXPECT_EQ(reference.snapshots(), durable.snapshots()) << label;
  EXPECT_EQ(reference.case_snapshots(), durable.case_snapshots()) << label;
  ExpectSameAlerts(reference.AllAlerts(0), durable.AllAlerts(0), label);
  ExpectSameAlerts(reference.AllAlerts(1), durable.AllAlerts(1), label);
  EXPECT_EQ(reference.network().total_bytes(),
            durable.network().total_bytes())
      << label;
  EXPECT_EQ(reference.network().total_messages(),
            durable.network().total_messages())
      << label;
  for (int k = 0; k < kNumMessageKinds; ++k) {
    const MessageKind kind = static_cast<MessageKind>(k);
    EXPECT_EQ(reference.network().BytesOfKind(kind),
              durable.network().BytesOfKind(kind))
        << label << " " << ToString(kind);
  }
  EXPECT_EQ(durable.network().BytesOfKind(MessageKind::kRecoveryRequest), 0)
      << label;
  for (TagId item : sim.all_items()) {
    EXPECT_EQ(reference.BelievedContainer(item),
              durable.BelievedContainer(item))
        << label;
  }
  for (TagId c : sim.all_cases()) {
    EXPECT_EQ(reference.BelievedContainer(c), durable.BelievedContainer(c))
        << label;
  }
}

TEST(DurableReplayTest, CrashPointSweepIsBitIdenticalWithZeroPeerTraffic) {
  SweepFixture fx;
  ASSERT_FALSE(fx.sim.transfers().empty());

  DistributedOptions base = SweepOptions();
  DistributedSystem reference(&fx.sim, base, &fx.catalog, &fx.sensors);
  reference.Run();
  ASSERT_GT(reference.network().BytesOfKind(MessageKind::kInferenceState), 0);

  const struct {
    CrashPhase phase;
    const char* name;
  } kPhases[] = {{CrashPhase::kMidWindow, "mid-window"},
                 {CrashPhase::kPostDrain, "post-drain"},
                 {CrashPhase::kMidFlush, "mid-flush"}};
  for (const int cadence : {1, 5, 0}) {
    for (Epoch at = 300; at <= 1200; at += 300) {
      for (const auto& [phase, name] : kPhases) {
        const std::string label = "cadence=" + std::to_string(cadence) +
                                  " at=" + std::to_string(at) + " " + name;
        ScratchDir dir;
        DistributedOptions opts = SweepOptions();
        opts.durability = QuietDurability(dir.str());
        opts.site.checkpoint_every = cadence;
        // The sweep's sharpest cell: the process dies and restarts within
        // the same epoch, entirely from its own disk.
        opts.crashes.push_back(CrashEvent{1, at, at, phase});
        DistributedSystem durable(&fx.sim, opts, &fx.catalog, &fx.sensors);
        durable.Run();
        ExpectDurableBitIdentity(reference, durable, fx.sim, label);
        const DurabilityStats totals = durable.DurabilityTotals();
        EXPECT_GT(totals.wal_appends, 0) << label;
        if (cadence != 0) {
          EXPECT_GT(totals.checkpoints, 0) << label;
        } else {
          EXPECT_EQ(totals.checkpoints, 0) << label;
        }
      }
    }
  }
}

TEST(DurableReplayTest, WindowedOutageRecoversFromDiskBitIdentically) {
  SweepFixture fx;
  // A real outage window (crash strictly before recovery) with no
  // departure inside it: the durable site restores checkpoint + WAL with
  // zero peer traffic and converges exactly, byte totals included.
  Epoch at = 0;
  Epoch recover_at = 0;
  for (Epoch start = 610; start + 60 < 1400 && at == 0; start += 5) {
    bool quiet = true;
    for (const ObjectTransfer& tr : fx.sim.transfers()) {
      if (tr.from == 1 && tr.depart >= start && tr.depart < start + 60) {
        quiet = false;
        break;
      }
    }
    if (quiet) {
      at = start;
      recover_at = start + 60;
    }
  }
  ASSERT_GT(at, 0);

  DistributedOptions base = SweepOptions();
  DistributedSystem reference(&fx.sim, base, &fx.catalog, &fx.sensors);
  reference.Run();

  ScratchDir dir;
  DistributedOptions opts = SweepOptions();
  opts.durability = QuietDurability(dir.str());
  opts.site.checkpoint_every = 0;  // WAL-only: restart refeeds the full log
  opts.crashes.push_back(CrashEvent{1, at, recover_at});
  DistributedSystem durable(&fx.sim, opts, &fx.catalog, &fx.sensors);
  durable.Run();
  ExpectDurableBitIdentity(reference, durable, fx.sim, "windowed outage");
  EXPECT_GT(durable.DurabilityTotals().replayed_frames, 0);
}

TEST(DurableReplayTest, DepartureDuringOutageIsExportedByCatchUpReplay) {
  SweepFixture fx;
  // Pick a transfer and wrap the crash window around its departure: the
  // dead process never sent the envelope, so only the catch-up replay
  // can. recover_at stays strictly before the arrival epoch, so the
  // destination still installs the state at its original boundary.
  const ObjectTransfer* victim = nullptr;
  for (const ObjectTransfer& tr : fx.sim.transfers()) {
    if (tr.from > 0 && tr.to != kNoSite && tr.depart >= 400 &&
        tr.arrive > tr.depart + 20 && tr.arrive <= 1400) {
      victim = &tr;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  const Epoch at = victim->depart > 5 ? victim->depart - 5 : 1;
  const Epoch recover_at = victim->depart + 15;
  ASSERT_LT(recover_at, victim->arrive);

  DistributedOptions base = SweepOptions();
  DistributedSystem reference(&fx.sim, base, &fx.catalog, &fx.sensors);
  reference.Run();

  ScratchDir dir;
  DistributedOptions opts = SweepOptions();
  opts.durability = QuietDurability(dir.str());
  opts.crashes.push_back(CrashEvent{victim->from, at, recover_at});
  DistributedSystem durable(&fx.sim, opts, &fx.catalog, &fx.sensors);
  durable.Run();
  ExpectDurableBitIdentity(reference, durable, fx.sim,
                           "departed during outage");
}

TEST(DurableReplayTest, AuditLogsVerifyAndCountTheRunsAlertsAndMovements) {
  SweepFixture fx;
  ScratchDir dir;
  DistributedOptions opts = SweepOptions();
  opts.durability = QuietDurability(dir.str());
  DistributedSystem sys(&fx.sim, opts, &fx.catalog, &fx.sensors);
  sys.Run();

  int64_t alerts = 0;
  int64_t movements = 0;
  for (SiteId s = 0; s < sys.num_processors(); ++s) {
    const std::string path =
        dir.str() + "/site_" + std::to_string(s) + "/audit.log";
    const AuditVerifyResult r =
        VerifyAuditLog(path, SiteDurability::SiteKey(s));
    ASSERT_TRUE(r.ok) << "site " << s << ": " << r.error;
    std::vector<AuditRecord> records;
    ASSERT_TRUE(ReadAuditLog(path, &records).ok());
    for (const AuditRecord& rec : records) {
      EXPECT_EQ(rec.site, s);
      (rec.kind == AuditRecord::Kind::kAlert ? alerts : movements) += 1;
    }
  }
  EXPECT_EQ(alerts, static_cast<int64_t>(sys.AllAlerts(0).size() +
                                         sys.AllAlerts(1).size()));
  int64_t exported = 0;
  for (const ObjectTransfer& tr : fx.sim.transfers()) {
    if (tr.to != kNoSite && tr.depart <= fx.sim.config().horizon) ++exported;
  }
  EXPECT_EQ(movements, exported);
  EXPECT_EQ(sys.DurabilityTotals().audit_records, alerts + movements);
}

TEST(DurableReplayTest, AuditChainStaysContinuousAcrossCrashRecovery) {
  SweepFixture fx;
  ScratchDir dir;
  DistributedOptions opts = SweepOptions();
  opts.durability = QuietDurability(dir.str());
  opts.crashes.push_back(CrashEvent{1, 500, 650});
  DistributedSystem sys(&fx.sim, opts, &fx.catalog, &fx.sensors);
  sys.Run();

  for (SiteId s = 0; s < sys.num_processors(); ++s) {
    const std::string path =
        dir.str() + "/site_" + std::to_string(s) + "/audit.log";
    const AuditVerifyResult r =
        VerifyAuditLog(path, SiteDurability::SiteKey(s));
    ASSERT_TRUE(r.ok) << "site " << s << ": " << r.error;
  }
}

}  // namespace
}  // namespace rfid
