// Property-style parameterized tests: algebraic and structural invariants
// that must hold for every seed, not just hand-picked examples.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/serde.h"
#include "inference/rfinfer.h"
#include "inference/state.h"
#include "model/generative.h"
#include "model/read_rate.h"
#include "model/schedule.h"
#include "query/state_sharing.h"
#include "sim/supply_chain.h"
#include "trace/trace_io.h"

namespace rfid {
namespace {

class SeededTest : public testing::TestWithParam<uint64_t> {};

// --- Serialization: random payloads always round-trip exactly. ---

TEST_P(SeededTest, SerdeRandomRoundTrip) {
  Rng rng(GetParam());
  BufferWriter w;
  std::vector<uint64_t> varints;
  std::vector<int64_t> signeds;
  std::vector<double> doubles;
  for (int i = 0; i < 200; ++i) {
    uint64_t v = rng.NextU64() >> rng.NextBounded(64);
    int64_t s = static_cast<int64_t>(rng.NextU64());
    double d = rng.NextUniform(-1e12, 1e12);
    varints.push_back(v);
    signeds.push_back(s);
    doubles.push_back(d);
    w.PutVarint(v);
    w.PutSignedVarint(s);
    w.PutDouble(d);
  }
  auto bytes = w.Release();
  BufferReader r(bytes);
  for (int i = 0; i < 200; ++i) {
    uint64_t v = 0;
    int64_t s = 0;
    double d = 0;
    ASSERT_TRUE(r.GetVarint(&v).ok());
    ASSERT_TRUE(r.GetSignedVarint(&s).ok());
    ASSERT_TRUE(r.GetDouble(&d).ok());
    EXPECT_EQ(v, varints[static_cast<size_t>(i)]);
    EXPECT_EQ(s, signeds[static_cast<size_t>(i)]);
    EXPECT_DOUBLE_EQ(d, doubles[static_cast<size_t>(i)]);
  }
  EXPECT_TRUE(r.exhausted());
}

TEST_P(SeededTest, CompactTagRoundTrip) {
  Rng rng(GetParam());
  BufferWriter w;
  std::vector<TagId> tags{kNoTag};
  for (int i = 0; i < 100; ++i) {
    auto kind = static_cast<TagKind>(rng.NextBounded(3));
    tags.push_back(TagId::Make(kind, rng.NextU64() >> 8));
  }
  for (TagId t : tags) w.PutCompactTag(t);
  auto bytes = w.Release();
  BufferReader r(bytes);
  for (TagId expected : tags) {
    TagId t;
    ASSERT_TRUE(r.GetCompactTag(&t).ok());
    EXPECT_EQ(t, expected);
  }
}

TEST_P(SeededTest, TraceEncodingRoundTripsRandomTraces) {
  Rng rng(GetParam());
  Trace trace;
  for (int i = 0; i < 500; ++i) {
    trace.Add(RawReading{static_cast<Epoch>(rng.NextBounded(1000)),
                         TagId::Item(rng.NextBounded(50)),
                         static_cast<LocationId>(rng.NextBounded(12))});
  }
  trace.Seal();
  auto decoded = DecodeTrace(EncodeTrace(trace));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->readings(), trace.readings());
}

// --- Diff codec: arbitrary base/target pairs reconstruct exactly. ---

TEST_P(SeededTest, DiffCodecArbitraryPairs) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    std::vector<uint8_t> base(rng.NextBounded(200));
    std::vector<uint8_t> target(rng.NextBounded(200));
    for (auto& b : base) b = static_cast<uint8_t>(rng.NextBounded(256));
    for (auto& b : target) b = static_cast<uint8_t>(rng.NextBounded(256));
    auto diff = DiffEncode(base, target);
    auto restored = DiffApply(base, diff);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(*restored, target);
  }
}

TEST_P(SeededTest, ShareUnshareArbitraryGroups) {
  Rng rng(GetParam());
  std::vector<std::pair<TagId, std::vector<uint8_t>>> states;
  const int n = 2 + static_cast<int>(rng.NextBounded(10));
  for (int i = 0; i < n; ++i) {
    std::vector<uint8_t> s(20 + rng.NextBounded(100));
    for (auto& b : s) b = static_cast<uint8_t>(rng.NextBounded(8));
    states.emplace_back(TagId::Item(static_cast<uint64_t>(i)), std::move(s));
  }
  auto bundle = ShareStates(states);
  auto restored = UnshareStates(bundle);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    EXPECT_EQ((*restored)[i], states[i]);
  }
}

// --- Schedules: class decomposition always partitions time. ---

TEST_P(SeededTest, ScheduleClassesPartitionEpochs) {
  Rng rng(GetParam());
  const int R = 4 + static_cast<int>(rng.NextBounded(4));
  auto model = ReadRateModel::Uniform(R, 0.8);
  InterrogationSchedule sched(R);
  for (LocationId r = 0; r < R; ++r) {
    if (rng.NextBernoulli(0.5)) {
      Epoch period = 1 + static_cast<Epoch>(rng.NextBounded(12));
      sched.SetPeriodic(r, period, rng.NextBounded(
                                       static_cast<uint64_t>(period)));
    } else {
      Epoch cycle = 2 + static_cast<Epoch>(rng.NextBounded(20));
      Epoch len = 1 + static_cast<Epoch>(
                          rng.NextBounded(static_cast<uint64_t>(cycle)));
      sched.SetWindowed(r, cycle, rng.NextBounded(
                                      static_cast<uint64_t>(cycle)),
                        len);
    }
  }
  sched.Finalize(model);
  // Class counts over any interval sum to its length.
  for (int round = 0; round < 10; ++round) {
    Epoch a = static_cast<Epoch>(rng.NextBounded(500));
    Epoch b = a + static_cast<Epoch>(rng.NextBounded(500));
    int64_t total = 0;
    for (int cls = 0; cls < sched.num_classes(); ++cls) {
      total += sched.CountClassInRange(cls, a, b);
    }
    EXPECT_EQ(total, b - a + 1);
  }
  // ActiveAt is periodic with the schedule cycle, and LogMissAllClass
  // reflects exactly the readers active in that class.
  for (Epoch t = 0; t < sched.cycle(); ++t) {
    for (LocationId r = 0; r < R; ++r) {
      EXPECT_EQ(sched.ActiveAt(r, t), sched.ActiveAt(r, t + sched.cycle()));
    }
    double expect = 0;
    for (LocationId r = 0; r < R; ++r) {
      if (sched.ActiveAt(r, t)) expect += model.LogMiss(r, 0);
    }
    EXPECT_NEAR(sched.LogMissAllClass(0, sched.ClassOf(t)), expect, 1e-9);
  }
}

// --- Simulator invariants across seeds. ---

TEST_P(SeededTest, SimulatorInvariants) {
  SupplyChainConfig cfg;
  cfg.num_warehouses = 2;
  cfg.shelves_per_warehouse = 3;
  cfg.cases_per_pallet = 2;
  cfg.items_per_case = 4;
  cfg.shelf_stay = 150;
  cfg.horizon = 500;
  cfg.anomaly_interval = 60;
  cfg.seed = GetParam();
  SupplyChainSim sim(cfg);
  sim.Run();

  // (1) Readings only from covered locations.
  for (SiteId s = 0; s < 2; ++s) {
    for (const RawReading& r : sim.site_trace(s).readings()) {
      LocationId truth = sim.truth().LocationAt(r.tag, r.time);
      ASSERT_NE(truth, kNoLocation);
      EXPECT_GT(sim.model().Rate(r.reader, truth), 0.0);
      // Reader belongs to the site whose trace recorded it.
      EXPECT_EQ(sim.layout().SiteOfLocation(r.reader), s);
    }
  }
  // (2) An item is always co-located with its true container.
  for (TagId item : sim.all_items()) {
    for (Epoch t = 0; t <= cfg.horizon; t += 37) {
      if (!sim.truth().PresentAt(item, t)) continue;
      TagId c = sim.truth().ContainerAt(item, t);
      if (!c.valid() || !sim.truth().PresentAt(c, t)) continue;
      EXPECT_EQ(sim.truth().LocationAt(item, t),
                sim.truth().LocationAt(c, t))
          << item.ToString() << " at " << t;
    }
  }
  // (3) Transfers partition: arrival follows departure by transit time.
  for (const ObjectTransfer& tr : sim.transfers()) {
    if (tr.to != kNoSite) {
      EXPECT_EQ(tr.arrive - tr.depart, cfg.transit_time);
      EXPECT_NE(tr.from, tr.to);
    }
    std::set<TagId> unique(tr.items.begin(), tr.items.end());
    EXPECT_EQ(unique.size(), tr.items.size());
  }
  // (4) Anomaly records agree with ground-truth changes.
  for (const AnomalyRecord& a : sim.anomalies()) {
    EXPECT_EQ(sim.truth().ContainerAt(a.item, a.time), a.to_case);
    EXPECT_NE(a.from_case, a.to_case);
  }
}

// --- Inference invariants across seeds. ---

TEST_P(SeededTest, InferenceInvariants) {
  const uint64_t seed = GetParam();
  auto model = ReadRateModel::Uniform(4, 0.75);
  auto sched = InterrogationSchedule::AlwaysOn(4);
  sched.Finalize(model);
  Rng rng(seed);
  Trace trace;
  std::vector<TagId> containers, objects;
  for (int c = 0; c < 3; ++c) {
    GenerativeScenario scenario;
    scenario.container = TagId::Case(static_cast<uint64_t>(c));
    containers.push_back(scenario.container);
    for (int o = 0; o < 4; ++o) {
      TagId obj = TagId::Item(static_cast<uint64_t>(c * 4 + o));
      scenario.objects.push_back(obj);
      objects.push_back(obj);
    }
    scenario.location_path =
        RandomLocationPath(4, 250, /*move_prob=*/0.005, rng);
    SampleReadings(model, scenario, rng, &trace);
  }
  trace.Seal();
  if (trace.empty()) GTEST_SKIP();

  RFInfer engine(&model, &sched);
  ASSERT_TRUE(engine.Run(trace, 0, 249).ok());

  // (1) EM likelihood is monotone non-decreasing.
  const auto& hist = engine.likelihood_history();
  for (size_t i = 1; i < hist.size(); ++i) {
    EXPECT_GE(hist[i], hist[i - 1] - 1e-6);
  }
  // (2) The assignment is the weight argmax among candidates.
  for (TagId o : objects) {
    TagId assigned = engine.ContainerOf(o);
    if (!assigned.valid()) continue;
    double w_assigned = engine.WeightOf(o, assigned);
    for (TagId c : engine.CandidatesOf(o)) {
      EXPECT_LE(engine.WeightOf(o, c), w_assigned + 1e-9);
    }
  }
  // (3) ObjectsOf is the inverse of ContainerOf.
  for (TagId c : containers) {
    for (TagId o : engine.ObjectsOf(c)) {
      EXPECT_EQ(engine.ContainerOf(o), c);
    }
  }
  // (4) Change statistics are non-negative (two-segment fit cannot be
  //     worse than one segment evaluated at the best split).
  for (TagId o : objects) {
    EXPECT_GE(engine.ChangeStatistic(o), -1e-6);
  }
  // (5) Exported weights round-trip through the migration codec.
  std::vector<ObjectMigrationState> states;
  for (TagId o : objects) {
    ObjectMigrationState s;
    s.object = o;
    s.container = engine.ContainerOf(o);
    s.weights = engine.ExportWeights(o);
    states.push_back(s);
  }
  auto decoded = DecodeMigrationStates(EncodeMigrationStates(states));
  ASSERT_TRUE(decoded.ok());
  for (size_t i = 0; i < states.size(); ++i) {
    EXPECT_EQ((*decoded)[i].object, states[i].object);
    EXPECT_EQ((*decoded)[i].container, states[i].container);
    ASSERT_EQ((*decoded)[i].weights.size(), states[i].weights.size());
    for (size_t j = 0; j < states[i].weights.size(); ++j) {
      EXPECT_EQ((*decoded)[i].weights[j].first, states[i].weights[j].first);
      // float32 on the wire: relative error bounded.
      EXPECT_NEAR((*decoded)[i].weights[j].second,
                  states[i].weights[j].second,
                  std::abs(states[i].weights[j].second) * 1e-6 + 1e-3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace rfid
