// Distributed supply-chain tracking: three warehouses in a chain, pallets
// flowing between them, per-site inference with collapsed-state migration,
// and an ONS locating each object -- Figure 3 of the paper end to end.
//
// Demonstrates: the dist layer (sites, network byte accounting, ONS),
// migration of inference state when pallets cross sites, and the accuracy
// benefit over processing each site in isolation.
#include <cstdio>

#include "dist/distributed.h"
#include "sim/supply_chain.h"

int main() {
  using namespace rfid;

  SupplyChainConfig config;
  config.num_warehouses = 3;
  config.shelves_per_warehouse = 4;
  config.cases_per_pallet = 3;
  config.items_per_case = 8;
  config.shelf_stay = 300;
  config.transit_time = 60;
  config.horizon = 1800;
  config.read_rate.main = 0.6;
  config.seed = 33;
  SupplyChainSim sim(config);
  sim.Run();
  std::printf("simulated %zu cross-site transfers, %lld readings total\n",
              sim.transfers().size(),
              static_cast<long long>(sim.total_readings()));

  // Distributed processing with the paper's CR/collapsed migration. The
  // sites talk over the real socket transport here (framed messages
  // through loopback sockets); RFID_TRANSPORT / DistributedOptions can
  // flip any run between backends with bit-identical results.
  DistributedOptions migrate;
  migrate.site.migration = MigrationMode::kCollapsed;
  migrate.transport = TransportKind::kSocket;
  DistributedSystem with_migration(&sim, migrate);
  with_migration.Run();

  // The same workload with no state transfer ("None").
  DistributedOptions cold;
  cold.site.migration = MigrationMode::kNone;
  DistributedSystem without_migration(&sim, cold);
  without_migration.Run();

  std::printf(
      "containment error (averaged over inference boundaries):\n"
      "  with collapsed-state migration: %.2f%%\n"
      "  without migration (cold sites): %.2f%%\n",
      with_migration.AverageContainmentErrorPercent(),
      without_migration.AverageContainmentErrorPercent());
  std::printf(
      "migration traffic over the %s transport: %lld framed bytes in "
      "%lld messages (%lld bytes inference state, %lld still in flight)\n",
      ToString(with_migration.network().transport_kind()).c_str(),
      static_cast<long long>(with_migration.network().total_bytes()),
      static_cast<long long>(with_migration.network().total_messages()),
      static_cast<long long>(with_migration.network().BytesOfKind(
          MessageKind::kInferenceState)),
      static_cast<long long>(with_migration.network().in_flight_messages()));

  // Where is everything right now? Ask the ONS, then the owning site.
  int shown = 0;
  for (TagId item : sim.all_items()) {
    if (!sim.truth().PresentAt(item, config.horizon - 1)) continue;
    SiteId site = with_migration.ons().Lookup(item);
    if (site == kNoSite) continue;
    TagId believed = with_migration.BelievedContainer(item);
    std::printf("  %s -> site %d, container %s\n", item.ToString().c_str(),
                site, believed.ToString().c_str());
    if (++shown == 5) break;
  }
  std::printf("(%d items shown; ONS holds %zu registrations)\n", shown,
              with_migration.ons().size());
  return 0;
}
