// Quickstart: simulate a small RFID-tagged warehouse, run RFINFER over the
// noisy readings, and print what the system believes about each case.
//
//   $ ./build/examples/quickstart
//
// Walks through the core API in ~60 lines: configure a workload, run the
// simulator, hand the trace to the inference engine, query containment and
// location estimates, and compare against the simulator's ground truth.
#include <cstdio>

#include "inference/evaluate.h"
#include "inference/rfinfer.h"
#include "sim/supply_chain.h"

int main() {
  using namespace rfid;

  // 1. A small warehouse: 4 pallets of 3 cases x 8 items, readers at the
  //    entry door, conveyor belt, 4 shelves, and exit door.
  SupplyChainConfig config;
  config.num_warehouses = 1;
  config.shelves_per_warehouse = 4;
  config.cases_per_pallet = 3;
  config.items_per_case = 8;
  config.max_pallets = 4;
  config.shelf_stay = 500;
  config.horizon = 700;
  config.read_rate.main = 0.75;  // each reader misses 1 in 4 interrogations
  config.seed = 2026;

  SupplyChainSim sim(config);
  sim.Run();
  std::printf("simulated %lld raw readings from %d readers\n",
              static_cast<long long>(sim.total_readings()),
              sim.layout().num_locations());

  // 2. Inference: the engine needs the (calibrated) read-rate model and the
  //    reader interrogation schedule, both provided by the simulator here.
  RFInfer engine(&sim.model(), &sim.schedule());
  Status st = engine.Run(sim.site_trace(0), 0, config.horizon);
  if (!st.ok()) {
    std::fprintf(stderr, "inference failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("EM converged in %d iterations (log-likelihood %.1f)\n",
              engine.iterations_used(), engine.log_likelihood());

  // 3. Ask questions: what does each case contain, and where is it?
  for (TagId case_tag : sim.all_cases()) {
    auto members = engine.ObjectsOf(case_tag);
    LocationId loc = engine.LocationOf(case_tag, config.horizon - 1);
    std::printf("%s at location %d holds %zu items\n",
                case_tag.ToString().c_str(), loc, members.size());
  }

  // 4. Score against ground truth (only possible in simulation, of course).
  double containment_err = ContainmentErrorPercent(
      engine, sim.truth(), sim.all_items(), config.horizon - 1);
  double location_err =
      LocationErrorPercent(engine, sim.truth(), sim.all_cases(),
                           config.horizon / 2, config.horizon - 1);
  std::printf("containment error: %.2f%%   location error: %.2f%%\n",
              containment_err, location_err);
  return 0;
}
