// Lab-deployment replay: regenerate the paper's T1..T8 lab traces
// (Section 5.2 / Appendix C.2) and watch RFINFER's containment estimates
// evolve run by run, including the T5..T8 mid-trace containment changes
// caught by change-point detection.
//
// Demonstrates: the lab workload generator, streaming inference with change
// detection, and per-run introspection of the engine's beliefs.
#include <cstdio>

#include "inference/streaming.h"
#include "sim/lab.h"

int main(int argc, char** argv) {
  using namespace rfid;

  // Pick a trace (default T6: high read rate, high overlap, with changes).
  int trace_index = 6;
  if (argc > 1) {
    trace_index = std::atoi(argv[1]);
    if (trace_index < 1 || trace_index > 8) {
      std::fprintf(stderr, "usage: %s [1..8]\n", argv[0]);
      return 1;
    }
  }
  LabConfig config;
  config.spec = LabSpecFor(trace_index);
  config.horizon = 1500;
  config.seed = 42;
  LabDeployment lab(config);
  lab.Run();
  std::printf(
      "trace T%d: read rate %.2f, overlap %.2f, %s; %zu readings\n",
      trace_index, config.spec.read_rate, config.spec.overlap,
      config.spec.with_changes ? "with containment changes" : "stable",
      lab.trace().size());

  StreamingOptions opts;
  opts.inference_period = 300;          // every 5 minutes, as in the paper
  opts.recent_history = 600;            // over a 10-minute history
  opts.detect_changes = config.spec.with_changes;
  opts.change_threshold = 25.0;
  StreamingInference inference(&lab.model(), &lab.schedule(), opts);

  size_t cursor = 0;
  const auto& readings = lab.trace().readings();
  for (Epoch t = 0; t <= config.horizon; ++t) {
    while (cursor < readings.size() && readings[cursor].time == t) {
      inference.Observe(readings[cursor++]);
    }
    if (inference.AdvanceTo(t) > 0) {
      // Score this run's beliefs against ground truth.
      int correct = 0, total = 0;
      for (TagId item : lab.items()) {
        if (!lab.truth().PresentAt(item, t)) continue;
        ++total;
        if (inference.ContainerOf(item) == lab.truth().ContainerAt(item, t)) {
          ++correct;
        }
      }
      std::printf("run@%-5lld containment %d/%d correct",
                  static_cast<long long>(t), correct, total);
      if (!inference.last_changes().empty()) {
        std::printf(", %zu change point(s):",
                    inference.last_changes().size());
        for (const ChangePointResult& cp : inference.last_changes()) {
          std::printf(" %s@%lld->%s", cp.object.ToString().c_str(),
                      static_cast<long long>(cp.time),
                      cp.new_container.ToString().c_str());
        }
      }
      std::printf("\n");
    }
  }

  if (config.spec.with_changes) {
    std::printf("ground-truth changes were:\n");
    for (const LabChange& ch : lab.changes()) {
      std::printf("  %s left %s at t=%lld (%s)\n",
                  ch.item.ToString().c_str(),
                  ch.from_case.ToString().c_str(),
                  static_cast<long long>(ch.time),
                  ch.to_case.valid() ? ch.to_case.ToString().c_str()
                                     : "removed");
    }
  }
  return 0;
}
