// Hospital cold-chain monitoring: the paper's motivating hybrid-query
// scenario. Temperature-sensitive drug products are tracked through a
// hospital storage wing; a continuous query (Q1 from the paper, with a
// scaled time bound) raises an alert whenever a drug product sits outside a
// freezer case at room temperature for too long.
//
// Demonstrates: streaming inference (periodic RFINFER runs), the inferred
// event stream feeding the CQL-subset query processor, hybrid join with a
// temperature sensor stream, and pattern matching per object.
#include <cstdio>

#include "inference/streaming.h"
#include "query/queries.h"
#include "sim/sensors.h"
#include "sim/supply_chain.h"

int main() {
  using namespace rfid;

  // The "hospital wing": one site, 4 storage areas (shelves), readers at
  // the receiving dock (entry), sorting table (belt), and dispatch (exit).
  SupplyChainConfig config;
  config.num_warehouses = 1;
  config.shelves_per_warehouse = 4;
  config.cases_per_pallet = 4;
  config.items_per_case = 6;
  config.max_pallets = 5;
  config.shelf_stay = 900;
  config.horizon = 1200;
  config.read_rate.main = 0.8;
  config.seed = 11;
  SupplyChainSim sim(config);
  sim.Run();

  // Manufacturer catalog: every item is a frozen drug product; half the
  // cases are freezer containers, the rest plain totes.
  ProductCatalog catalog;
  for (TagId item : sim.all_items()) {
    catalog.RegisterProduct(item, ProductInfo{"drug", /*frozen=*/true,
                                              /*flammable=*/false,
                                              /*has_peanuts=*/false});
  }
  for (size_t i = 0; i < sim.all_cases().size(); ++i) {
    catalog.RegisterContainer(
        sim.all_cases()[i],
        ContainerInfo{i % 2 == 0 ? ContainerClass::kFreezer
                                 : ContainerClass::kPlain});
  }

  // Room-temperature sensors at every reader location.
  SensorConfig sensor_cfg;
  Rng sensor_rng(5);
  auto sensors = GenerateSensorStream(
      sensor_cfg, sim.layout().num_locations(), config.horizon, sensor_rng);

  // Q1, scaled: alert after 300 s of exposure instead of 6 hours.
  ExposureQueryConfig q1 = ExposureQuery::Q1Config(/*duration=*/300);
  q1.max_gap = 400;  // shelf scans are sparse; don't lapse between them
  ExposureQuery query(&catalog, q1);

  // Streaming pipeline: buffer raw readings, run inference every 300 s,
  // forward the inferred events (in time order with the sensor stream).
  StreamingOptions stream_opts;
  stream_opts.inference_period = 300;
  StreamingInference inference(&sim.model(), &sim.schedule(), stream_opts);

  size_t reading_cursor = 0;
  size_t sensor_cursor = 0;
  Epoch emitted_to = -1;
  const auto& readings = sim.site_trace(0).readings();
  for (Epoch t = 0; t <= config.horizon; ++t) {
    while (reading_cursor < readings.size() &&
           readings[reading_cursor].time == t) {
      inference.Observe(readings[reading_cursor++]);
    }
    if (inference.AdvanceTo(t) > 0) {
      // New inference results: push events and sensors in time order.
      auto events = inference.engine().EmitEvents();
      for (const ObjectEvent& e : events) {
        if (e.time <= emitted_to || e.time > t) continue;
        while (sensor_cursor < sensors.size() &&
               sensors[sensor_cursor].time <= e.time) {
          query.OnSensor(sensors[sensor_cursor++]);
        }
        query.OnEvent(e);
      }
      emitted_to = t;
    }
  }

  std::printf("cold-chain alerts raised: %zu\n", query.alerts().size());
  for (const ExposureAlert& alert : query.alerts()) {
    TagId believed_case = inference.ContainerOf(alert.tag);
    std::printf(
        "  ALERT %s exposed from t=%lld to t=%lld (%lld readings), "
        "believed container %s\n",
        alert.tag.ToString().c_str(),
        static_cast<long long>(alert.first_time),
        static_cast<long long>(alert.last_time),
        static_cast<long long>(alert.n_events),
        believed_case.ToString().c_str());
    if (query.alerts().size() > 8 &&
        &alert - query.alerts().data() >= 7) {
      std::printf("  ... (%zu more)\n", query.alerts().size() - 8);
      break;
    }
  }

  // Sanity: alerts should name products whose true case is NOT a freezer.
  int consistent = 0;
  for (const ExposureAlert& alert : query.alerts()) {
    TagId true_case = sim.truth().ContainerAt(alert.tag, alert.last_time);
    if (!catalog.IsA(true_case, ContainerClass::kFreezer)) ++consistent;
  }
  std::printf("%d of %zu alerts match ground truth exposure\n", consistent,
              query.alerts().size());
  return 0;
}
