// Section 5.4's table: distributed inference + query processing. For Q1
// (containment + location + temperature) and Q2 (location + temperature
// only), reports the F-measure of query results against an oracle that runs
// the same query over ground-truth events, and the total query-state bytes
// migrated without and with centroid-based sharing.
//
// Paper's result: accuracy > 89% everywhere, rising with read rate; sharing
// cuts state size by up to 10x; Q1 scores below Q2 because it also depends
// on inferred containment.
#include <cstdio>

#include "bench/bench_common.h"
#include "dist/distributed.h"
#include "sim/sensors.h"

namespace rfid {
namespace {

// Scaled query horizons: Q1's 6 hours -> 400 s, Q2's 10 hours -> 600 s.
constexpr Epoch kQ1Duration = 400;
constexpr Epoch kQ2Duration = 600;

struct OracleAlerts {
  std::vector<ExposureAlert> q1;
  std::vector<ExposureAlert> q2;
};

// Runs Q1/Q2 over ground-truth events: the answer key.
OracleAlerts ComputeOracle(const SupplyChainSim& sim,
                           const ProductCatalog& catalog,
                           const std::vector<SensorReading>& sensors,
                           const DistributedOptions& opts) {
  ExposureQuery q1(&catalog, opts.q1);
  ExposureQuery q2(&catalog, opts.q2);
  size_t si = 0;
  for (Epoch t = 0; t <= sim.config().horizon; t += 10) {
    while (si < sensors.size() && sensors[si].time <= t) {
      q1.OnSensor(sensors[si]);
      q2.OnSensor(sensors[si]);
      ++si;
    }
    for (TagId item : sim.all_items()) {
      if (!sim.truth().PresentAt(item, t)) continue;
      LocationId loc = sim.truth().LocationAt(item, t);
      if (loc == kNoLocation) continue;
      ObjectEvent e{t, item, loc, sim.truth().ContainerAt(item, t)};
      q1.OnEvent(e);
      q2.OnEvent(e);
    }
  }
  return OracleAlerts{q1.alerts(), q2.alerts()};
}

double AlertFMeasure(const std::vector<ExposureAlert>& reported,
                     const std::vector<ExposureAlert>& oracle,
                     Epoch tolerance = 300) {
  FMeasure fm;
  std::vector<bool> matched(oracle.size(), false);
  for (const ExposureAlert& a : reported) {
    bool hit = false;
    for (size_t i = 0; i < oracle.size(); ++i) {
      if (matched[i] || oracle[i].tag != a.tag) continue;
      if (std::abs(oracle[i].last_time - a.last_time) > tolerance) continue;
      matched[i] = true;
      hit = true;
      break;
    }
    if (hit) {
      fm.AddTruePositive();
    } else {
      fm.AddFalsePositive();
    }
  }
  for (size_t i = 0; i < oracle.size(); ++i) {
    if (!matched[i]) fm.AddFalseNegative();
  }
  return fm.Percent();
}

int Main() {
  bench::PrintHeader("Section 5.4: distributed inference and querying",
                     "Q1/Q2 F-measure and query-state size w/ and w/o "
                     "centroid sharing");
  TablePrinter table({"RR", "Q1 F-m.(%)", "Q1 state w/o share",
                      "Q1+Q2 state w. share", "Q2 F-m.(%)",
                      "Q2 state w/o share"});

  for (double rr : {0.6, 0.7, 0.8, 0.9}) {
    SupplyChainConfig cfg = bench::MultiWarehouse(
        rr, /*anomaly_interval=*/0, /*horizon=*/1800,
        /*seed=*/8000 + static_cast<uint64_t>(rr * 10));
    cfg.num_warehouses = 4;  // keep the query bench quick
    cfg.dag_layers = {1, 3};
    cfg.shelf_stay = 800;
    SupplyChainSim sim(cfg);
    sim.Run();

    // Catalog: every item is frozen food; half the cases are freezer-class.
    ProductCatalog catalog;
    for (TagId item : sim.all_items()) {
      catalog.RegisterProduct(item,
                              ProductInfo{"frozen_food", true, false, false});
    }
    for (size_t i = 0; i < sim.all_cases().size(); ++i) {
      catalog.RegisterContainer(
          sim.all_cases()[i],
          ContainerInfo{i % 2 == 0 ? ContainerClass::kFreezer
                                   : ContainerClass::kPlain});
    }
    // Half the shelves are cold rooms (matters for Q2).
    SensorConfig scfg;
    for (SiteId s = 0; s < cfg.num_warehouses; ++s) {
      const auto& shelves = sim.layout().site(s).shelves;
      for (size_t i = 0; i < shelves.size(); i += 2) {
        scfg.cold_locations.push_back(shelves[i]);
      }
    }
    Rng srng(99);
    auto sensors = GenerateSensorStream(scfg, sim.layout().num_locations(),
                                        cfg.horizon, srng);

    DistributedOptions opts;
    opts.attach_queries = true;
    opts.q1 = ExposureQuery::Q1Config(kQ1Duration);
    opts.q1.max_gap = 350;
    opts.q2 = ExposureQuery::Q2Config(kQ2Duration);
    opts.q2.max_gap = 350;

    OracleAlerts oracle = ComputeOracle(sim, catalog, sensors, opts);

    auto run = [&](bool share) {
      DistributedOptions o = opts;
      o.site.share_query_state = share;
      DistributedSystem sys(&sim, o, &catalog, &sensors);
      sys.Run();
      struct R {
        double q1_fm, q2_fm;
        int64_t qbytes;
      } r;
      r.q1_fm = AlertFMeasure(sys.AllAlerts(0), oracle.q1);
      r.q2_fm = AlertFMeasure(sys.AllAlerts(1), oracle.q2);
      r.qbytes = sys.network().BytesOfKind(MessageKind::kQueryState);
      return r;
    };
    auto raw = run(/*share=*/false);
    auto shared = run(/*share=*/true);

    table.AddRow({TablePrinter::Fmt(rr, 1), TablePrinter::Fmt(raw.q1_fm, 1),
                  std::to_string(raw.qbytes / 2),  // per query, approx.
                  std::to_string(shared.qbytes),
                  TablePrinter::Fmt(raw.q2_fm, 1),
                  std::to_string(raw.qbytes / 2)});
  }
  table.Print();
  std::printf(
      "expected shape: F-measure high and rising with read rate; Q2 above\n"
      "Q1 (Q1 additionally depends on inferred containment); sharing\n"
      "shrinks migrated query-state bytes severalfold.\n\n");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
