// Figure 4: point and cumulative evidence of co-location for three
// candidate containers of one object -- the real container (R, travels with
// the object through door, belt, and shelf), a false container co-located
// at the door and shelf but not at the belt (NRC), and a false container
// not co-located after the door (NRNC). The belt span, where only R
// accompanies the object, is the critical region history truncation hunts
// for.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "inference/rfinfer.h"
#include "model/read_rate.h"
#include "model/schedule.h"
#include "trace/trace.h"

namespace rfid {
namespace {

void SamplePath(const ReadRateModel& model, TagId tag,
                const std::vector<LocationId>& path, Rng& rng, Trace* trace) {
  for (Epoch t = 0; t < static_cast<Epoch>(path.size()); ++t) {
    if (path[static_cast<size_t>(t)] == kNoLocation) continue;
    for (LocationId r = 0; r < model.num_locations(); ++r) {
      if (rng.NextBernoulli(model.Rate(r, path[static_cast<size_t>(t)]))) {
        trace->Add(RawReading{t, tag, r});
      }
    }
  }
}

int Main() {
  bench::PrintHeader("Figure 4: evidence of co-location",
                     "Fig 4(a) cumulative, Fig 4(b) point evidence");

  // Locations: 0 = entry door, 1 = belt, 2 = shelf (paper narrative:
  // object at door from 0, belt around t=100, shelf from t=150).
  auto model = ReadRateModel::Uniform(3, 0.8);
  auto sched = InterrogationSchedule::AlwaysOn(3);
  sched.Finalize(model);
  const Epoch T = 200;
  auto path_of = [&](bool at_belt, bool after_belt) {
    std::vector<LocationId> p(static_cast<size_t>(T));
    for (Epoch t = 0; t < T; ++t) {
      LocationId loc;
      if (t < 100) {
        loc = 0;
      } else if (t < 150) {
        loc = at_belt ? 1 : 2;
      } else {
        loc = after_belt ? 2 : 0;
      }
      p[static_cast<size_t>(t)] = loc;
    }
    return p;
  };

  Rng rng(404);
  Trace trace;
  TagId object = TagId::Item(1);
  TagId real = TagId::Case(1);      // R: always with the object
  TagId nrc = TagId::Case(2);       // NRC: door + shelf, skips the belt
  TagId nrnc = TagId::Case(3);      // NRNC: door only
  SamplePath(model, object, path_of(true, true), rng, &trace);
  SamplePath(model, real, path_of(true, true), rng, &trace);
  SamplePath(model, nrc, path_of(false, true), rng, &trace);
  SamplePath(model, nrnc, path_of(false, false), rng, &trace);
  trace.Seal();

  RFInfer engine(&model, &sched);
  RFID_CHECK_OK(engine.Run(trace, 0, T - 1));
  std::printf("inferred container of %s: %s (expect %s)\n",
              object.ToString().c_str(),
              engine.ContainerOf(object).ToString().c_str(),
              real.ToString().c_str());

  auto series_r = engine.EvidenceSeries(object, real);
  auto series_nrc = engine.EvidenceSeries(object, nrc);
  auto series_nrnc = engine.EvidenceSeries(object, nrnc);

  TablePrinter table({"t", "point(R)", "point(NRC)", "point(NRNC)",
                      "cum(R)", "cum(NRC)", "cum(NRNC)"});
  auto value_at = [](const std::vector<EvidencePoint>& s, Epoch t,
                     bool cumulative) {
    double last_cum = 0.0;
    for (const EvidencePoint& p : s) {
      if (p.time > t) break;
      last_cum = cumulative ? p.cumulative : p.point;
      if (!cumulative && p.time == t) return p.point;
      if (!cumulative && p.time < t) last_cum = p.point;
    }
    return last_cum;
  };
  for (Epoch t = 40; t <= 200; t += 10) {
    table.AddRow({std::to_string(t),
                  TablePrinter::Fmt(value_at(series_r, t, false)),
                  TablePrinter::Fmt(value_at(series_nrc, t, false)),
                  TablePrinter::Fmt(value_at(series_nrnc, t, false)),
                  TablePrinter::Fmt(value_at(series_r, t, true)),
                  TablePrinter::Fmt(value_at(series_nrc, t, true)),
                  TablePrinter::Fmt(value_at(series_nrnc, t, true))});
  }
  table.Print();
  std::printf(
      "expected shape: during the belt span [100,150) the real container's\n"
      "point evidence dominates and the false containers' cumulative\n"
      "evidence drops fast; afterwards NRC recovers (co-located on the\n"
      "shelf) while NRNC keeps falling.\n\n");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
