// Figure 6(b): containment error of the truncation methods as the trace
// length grows (600-3600 s). The window method degrades on long traces
// because the discriminative belt readings age out of the window; All and
// CR stay flat, CR slightly better from noise removal.
#include <cstdio>

#include "bench/bench_common.h"

namespace rfid {
namespace {

int Main() {
  bench::PrintHeader("Figure 6(b): truncation error vs trace length",
                     "Containment(All) / Containment(CR) / "
                     "Containment(W1200)");
  TablePrinter table(
      {"TraceLen(s)", "Cont(All)%", "Cont(CR)%", "Cont(W1200)%"});
  for (Epoch len : {600, 1200, 1800, 2400, 3000, 3600}) {
    SupplyChainConfig cfg = bench::SingleWarehouse(0.8, len, /*seed=*/600);
    // Fixed population: the figure isolates the effect of history length,
    // so the same items are watched for longer rather than more items
    // accumulating (the paper's steady state holds population constant).
    cfg.max_pallets = 10 * bench::Scale();
    SupplyChainSim sim(cfg);
    sim.Run();
    auto all = bench::RunSingleSite(sim, TruncationMethod::kAll);
    auto cr = bench::RunSingleSite(sim, TruncationMethod::kCriticalRegion,
                                   1200, 600);
    auto w = bench::RunSingleSite(sim, TruncationMethod::kWindow, 1200);
    table.AddRow({std::to_string(len), TablePrinter::Fmt(all.containment_error),
                  TablePrinter::Fmt(cr.containment_error),
                  TablePrinter::Fmt(w.containment_error)});
  }
  table.Print();
  std::printf(
      "expected shape: W1200's error rises on longer traces; All and CR\n"
      "stay flat and close.\n\n");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
