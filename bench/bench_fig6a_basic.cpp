// Figure 6(a): the basic inference algorithm's containment and location
// error rates as the read rate varies from 0.6 to 1.0 (1500-second traces,
// inference over all readings obtained thus far).
//
// Paper's result: location error < 0.5% throughout; containment error < 7%
// at RR 0.6, falling toward 0 as RR -> 1.
#include <cstdio>

#include "bench/bench_common.h"

namespace rfid {
namespace {

int Main() {
  bench::PrintHeader("Figure 6(a): basic algorithm vs read rate",
                     "error rate for containment and location inference");
  // Two initialization variants: the paper's plain co-occurrence counts,
  // and this library's exclusivity-weighted counts (ablation; see
  // EXPERIMENTS.md). The paper-faithful rows track Figure 6(a)'s curve;
  // the weighted init removes the residual group lock-in errors.
  TablePrinter table({"ReadRate", "Cont(paper-init)%", "Loc(paper-init)%",
                      "Cont(weighted)%", "Loc(weighted)%", "Time(s)"});
  for (double rr : {0.6, 0.7, 0.8, 0.9, 1.0}) {
    SupplyChainSim sim(bench::SingleWarehouse(rr, /*horizon=*/1500,
                                              /*seed=*/100));
    sim.Run();
    StreamingOptions faithful;
    faithful.truncation = TruncationMethod::kAll;
    faithful.inference.exclusivity_weighted_init = false;
    auto paper = bench::RunSingleSiteWith(sim, faithful);
    auto weighted = bench::RunSingleSite(sim, TruncationMethod::kAll);
    table.AddRow({TablePrinter::Fmt(rr, 1),
                  TablePrinter::Fmt(paper.containment_error),
                  TablePrinter::Fmt(paper.location_error),
                  TablePrinter::Fmt(weighted.containment_error),
                  TablePrinter::Fmt(weighted.location_error),
                  TablePrinter::Fmt(weighted.seconds)});
  }
  table.Print();
  std::printf(
      "expected shape: paper-init containment error falls with RR (<~7%% at\n"
      "0.6, matching Figure 6(a)); the weighted init drives it near zero;\n"
      "location error stays near zero at every read rate.\n\n");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
