// Figure 5(b): total inference time as the trace length grows from 600 to
// 3600 seconds, for All-history, fixed-window (W=1200), and critical-region
// truncation.
//
// Paper's result: All-history cost grows steeply with trace length; the
// window method sits in the middle; CR is cheapest and insensitive to trace
// length.
#include <cstdio>

#include "bench/bench_common.h"

namespace rfid {
namespace {

int Main() {
  bench::PrintHeader("Figure 5(b): inference time vs trace length",
                     "Inference(W1200) / Inference(All) / Inference(CR)");
  TablePrinter table({"TraceLen(s)", "Time(W1200)s", "Time(All)s",
                      "Time(CR)s", "Buffered(All)", "Buffered(CR)"});
  for (Epoch len : {600, 1200, 1800, 2400, 3000, 3600}) {
    SupplyChainConfig cfg = bench::SingleWarehouse(0.8, len, /*seed=*/300);
    // Fixed population, as in Figure 6(b): cost growth must come from the
    // lengthening history, not from population accumulation.
    cfg.max_pallets = 10 * bench::Scale();
    SupplyChainSim sim(cfg);
    sim.Run();
    auto w = bench::RunSingleSite(sim, TruncationMethod::kWindow, 1200);
    auto all = bench::RunSingleSite(sim, TruncationMethod::kAll);
    auto cr = bench::RunSingleSite(sim, TruncationMethod::kCriticalRegion,
                                   1200, 600);
    table.AddRow({std::to_string(len), TablePrinter::Fmt(w.seconds),
                  TablePrinter::Fmt(all.seconds),
                  TablePrinter::Fmt(cr.seconds),
                  std::to_string(all.buffered),
                  std::to_string(cr.buffered)});
  }
  table.Print();
  std::printf(
      "expected shape: Time(All) grows superlinearly with trace length;\n"
      "W1200 intermediate; CR flattest (its buffered-readings column shows\n"
      "the bounded history behind that).\n\n");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
