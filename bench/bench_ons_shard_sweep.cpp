// ONS shard-count sweep (Figure 5(e)-style driver over the directory):
// how the Section 5.2 "similar to a DNS service" load spreads as the
// tag->site directory is hash partitioned across more shards.
//
// No figure in the paper plots this directly; it quantifies the ROADMAP
// "ONS as a service" claim behind Table 5's Dir column: the former single
// synthetic directory node was a hotspot artifact, and sharding the map
// across the sites divides the per-node load by roughly the shard count
// without changing the total wire bytes. The per-site resolver cache
// removes the repeat-resolution traffic entirely (hits cost zero bytes);
// its savings are independent of the shard count.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "dist/distributed.h"

namespace rfid {
namespace {

int Main() {
  bench::PrintHeader(
      "ONS shard sweep: directory load vs shard count",
      "Section 5.2 directory as a sharded service, 10 warehouses");

  SupplyChainSim sim(bench::MultiWarehouse(
      /*read_rate=*/0.8, /*anomaly_interval=*/0, /*horizon=*/2400,
      /*seed=*/7600));
  sim.Run();

  auto run = [&](int shards, bool cache) {
    DistributedOptions opts;
    opts.site.migration = MigrationMode::kCollapsed;
    opts.directory_shards = shards;
    opts.directory_cache = cache;
    auto sys = std::make_unique<DistributedSystem>(&sim, opts);
    sys->Run();
    return sys;
  };

  // Cache off, one shard: the former single-node directory total. The
  // shard count redistributes these bytes but never changes them.
  auto baseline = run(/*shards=*/1, /*cache=*/false);
  const int64_t nocache_bytes =
      baseline->network().BytesOfKind(MessageKind::kDirectory);

  TablePrinter table({"Shards", "Dir(bytes)", "MaxShard", "MinShard",
                      "Imbalance", "Hit%", "Saved_vs_nocache%"});
  for (int shards : {1, 2, 5, 10, 20}) {
    auto sys = run(shards, /*cache=*/true);
    const Ons& ons = sys->ons();
    int64_t max_bytes = 0;
    int64_t min_bytes = ons.num_shards() > 0
                            ? ons.shard_stats(0).bytes
                            : 0;
    int64_t sum = 0;
    for (int s = 0; s < ons.num_shards(); ++s) {
      const int64_t b = ons.shard_stats(s).bytes;
      max_bytes = std::max(max_bytes, b);
      min_bytes = std::min(min_bytes, b);
      sum += b;
    }
    const double avg = ons.num_shards() > 0
                           ? static_cast<double>(sum) / ons.num_shards()
                           : 0.0;
    const int64_t charged = ons.charged_lookups();
    const int64_t hits = ons.cache_hits();
    const double hit_pct =
        charged + hits > 0
            ? 100.0 * static_cast<double>(hits) /
                  static_cast<double>(charged + hits)
            : 0.0;
    const double saved_pct =
        nocache_bytes > 0
            ? 100.0 * static_cast<double>(nocache_bytes - sum) /
                  static_cast<double>(nocache_bytes)
            : 0.0;
    table.AddRow({std::to_string(shards), std::to_string(sum),
                  std::to_string(max_bytes), std::to_string(min_bytes),
                  TablePrinter::Fmt(
                      avg > 0.0 ? static_cast<double>(max_bytes) / avg
                                : 0.0,
                      2),
                  TablePrinter::Fmt(hit_pct, 1),
                  TablePrinter::Fmt(saved_pct, 1)});
  }
  table.Print();
  std::printf(
      "single-node, no-cache directory total: %lld bytes (the former\n"
      "kDirectory hotspot). expected shape: Dir(bytes) is constant across\n"
      "shard counts (routing moves bytes, it does not create them) and\n"
      "below the no-cache total by the cache-hit savings; MaxShard falls\n"
      "roughly as 1/shards with Imbalance (max/avg) near 1 -- the hash\n"
      "partition has no hotspot.\n\n",
      static_cast<long long>(nocache_bytes));
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
