// Appendix C.4's textual results: sensitivity of the basic algorithm to
// (i) the overlap rate between adjacent shelf readers (paper: containment
// error flat at ~2.3%, location at ~0.08%, RR fixed at 0.7) and (ii) the
// container capacity, 5-100 items per case (paper: accuracy unchanged).
#include <cstdio>

#include "bench/bench_common.h"

namespace rfid {
namespace {

int Main() {
  bench::PrintHeader("Appendix C.4: overlap-rate and capacity sweeps",
                     "containment/location error flat in OR and capacity");

  std::printf("-- overlap rate sweep (RR = 0.7) --\n");
  TablePrinter overlap({"OverlapRate", "Containment(%)", "Location(%)"});
  for (double orate : {0.2, 0.35, 0.5, 0.65, 0.8}) {
    SupplyChainConfig cfg = bench::SingleWarehouse(
        0.7, /*horizon=*/1500, /*seed=*/1100 + static_cast<uint64_t>(
                                            orate * 100));
    cfg.read_rate.overlap = orate;
    SupplyChainSim sim(cfg);
    sim.Run();
    auto score = bench::RunSingleSite(sim, TruncationMethod::kAll);
    overlap.AddRow({TablePrinter::Fmt(orate, 2),
                    TablePrinter::Fmt(score.containment_error),
                    TablePrinter::Fmt(score.location_error)});
  }
  overlap.Print();

  std::printf("\n-- container capacity sweep (RR = 0.8, OR = 0.5) --\n");
  TablePrinter capacity({"ItemsPerCase", "Containment(%)", "Location(%)"});
  for (int items : {5, 20, 50, 100}) {
    SupplyChainConfig cfg = bench::SingleWarehouse(
        0.8, /*horizon=*/1500, /*seed=*/1200 + static_cast<uint64_t>(items));
    cfg.items_per_case = items;
    // Keep total item count comparable across capacities.
    cfg.cases_per_pallet = std::max(1, 100 / items);
    SupplyChainSim sim(cfg);
    sim.Run();
    auto score = bench::RunSingleSite(sim, TruncationMethod::kAll);
    capacity.AddRow({std::to_string(items),
                     TablePrinter::Fmt(score.containment_error),
                     TablePrinter::Fmt(score.location_error)});
  }
  capacity.Print();
  std::printf(
      "expected shape: both sweeps essentially flat -- co-location weights\n"
      "are computed per (object, container) pair, so neither reader overlap\n"
      "nor case capacity moves the error materially.\n\n");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
