// Table 4: the accuracy/efficiency trade-off of the recent-history size
// H-bar: change-detection F-measure and inference time cost for H-bar in
// {300..900} at read rates 0.6-0.9.
//
// Paper's result: longer recent history improves F-measure (especially at
// low read rates) but costs more time; H-bar = 500 keeps >90% accuracy at
// stream speed for RR in [0.7, 0.9].
#include <cstdio>

#include "bench/bench_common.h"

namespace rfid {
namespace {

int Main() {
  bench::PrintHeader("Table 4: recent-history size sweep",
                     "F-measure (%) and time (s) per H-bar and read rate");
  std::vector<Epoch> sizes{300, 400, 500, 600, 700, 800, 900};
  std::vector<std::string> header{"RR", "metric"};
  for (Epoch h : sizes) header.push_back("H=" + std::to_string(h));
  TablePrinter table(header);

  for (double rr : {0.6, 0.7, 0.8, 0.9}) {
    SupplyChainConfig cfg =
        bench::SingleWarehouse(rr, /*horizon=*/1500,
                               /*seed=*/4000 + static_cast<uint64_t>(rr * 10));
    // A lighter warehouse keeps the threshold sweep quick; the sweep's
    // shape, not its absolute population, is the target here.
    cfg.shelves_per_warehouse = 6;
    cfg.cases_per_pallet = 3;
    cfg.items_per_case = 10;
    cfg.anomaly_interval = 20;
    SupplyChainSim sim(cfg);
    sim.Run();
    // Detection threshold: the plateau value of Table 3's fixed-delta
    // sweep. (Our offline calibration undershoots on this workload; see
    // EXPERIMENTS.md "Known deviations".)
    const double delta = 50.0;
    std::vector<std::string> frow{TablePrinter::Fmt(rr, 1), "F-m.(%)"};
    std::vector<std::string> trow{"", "Time(s)"};
    for (Epoch h : sizes) {
      auto score = bench::RunChangeDetection(sim, h, delta);
      frow.push_back(TablePrinter::Fmt(score.f_measure, 0));
      trow.push_back(TablePrinter::Fmt(score.seconds, 2));
    }
    table.AddRow(frow);
    table.AddRow(trow);
  }
  table.Print();
  std::printf(
      "expected shape: F-measure rises with H-bar (biggest gains at low\n"
      "read rates); time grows with H-bar roughly linearly. \"Keeping up\n"
      "with stream speed\" means time below the 300 s inference period\n"
      "(trivially true in C++ at bench scale; the paper's Java prototype\n"
      "saturated around H=500-600).\n\n");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
