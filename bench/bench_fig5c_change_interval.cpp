// Figure 5(c): change-point detection F-measure as the containment-change
// interval varies from 10 to 120 seconds, for RFINFER (recent history
// H=500) at read rates 0.7/0.8 versus SMURF* at the same read rates.
//
// Paper's result: RFINFER stays accurate (~85-95%) and is insensitive to
// the change interval; SMURF* is far worse because it lacks the principled
// iterative feedback between location and containment estimates.
#include <cstdio>

#include "bench/bench_common.h"

namespace rfid {
namespace {

SupplyChainConfig ChangeWorkload(double rr, Epoch interval, uint64_t seed) {
  SupplyChainConfig cfg = bench::SingleWarehouse(rr, /*horizon=*/1800, seed);
  cfg.anomaly_interval = interval;
  return cfg;
}

int Main() {
  bench::PrintHeader(
      "Figure 5(c): change detection vs change interval",
      "F-measure, RFINFER(H=500) vs SMURF*, RR in {0.7, 0.8}");
  // Calibrate delta once per read rate (offline, before data; Section 3.3).
  TablePrinter table({"Interval(s)", "RFINFER RR=0.8", "RFINFER RR=0.7",
                      "SMURF* RR=0.8", "SMURF* RR=0.7"});
  // Detection threshold: Table 3's plateau (delta ~= 50). The offline
  // sampler's threshold is printed for reference; it undershoots on this
  // workload (see EXPERIMENTS.md "Known deviations").
  const double delta_08 = 50.0, delta_07 = 50.0;
  {
    SupplyChainSim probe8(ChangeWorkload(0.8, 0, 1));
    std::printf("offline-sampled delta (reference): RR=0.8 -> %.1f\n",
                bench::CalibratedThreshold(probe8));
  }
  for (Epoch interval : {10, 20, 40, 60, 90, 120}) {
    SupplyChainSim sim8(ChangeWorkload(0.8, interval, 500 + interval));
    sim8.Run();
    SupplyChainSim sim7(ChangeWorkload(0.7, interval, 700 + interval));
    sim7.Run();
    auto rf8 = bench::RunChangeDetection(sim8, /*recent_history=*/500,
                                         delta_08);
    auto rf7 = bench::RunChangeDetection(sim7, /*recent_history=*/500,
                                         delta_07);
    auto ss8 = bench::RunSmurfStarChanges(sim8);
    auto ss7 = bench::RunSmurfStarChanges(sim7);
    table.AddRow({std::to_string(interval),
                  TablePrinter::Fmt(rf8.f_measure, 1),
                  TablePrinter::Fmt(rf7.f_measure, 1),
                  TablePrinter::Fmt(ss8.f_measure, 1),
                  TablePrinter::Fmt(ss7.f_measure, 1)});
  }
  table.Print();
  std::printf(
      "expected shape: RFINFER well above SMURF* at every interval and not\n"
      "very sensitive to it; RR=0.8 above RR=0.7.\n\n");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
