// Section 5.3 scalability, two views.
//
// 1. Per-inference-run time as the number of resident items per warehouse
//    grows, for the static-shelf-reader deployment and the mobile-reader
//    deployment (one reader sweeping the aisle, 10 s per shelf). A
//    deployment "keeps up with stream speed" when one inference run
//    completes within the 300 s inference period. Paper's result: 150,000
//    items/warehouse sustainable with static readers (1.5M over 10
//    warehouses); 1.21M items/warehouse with a mobile reader (12.1M over
//    10), because mobile scanning thins the shelf readings.
//
// 2. The distributed replay itself: wall-clock of the bulk-synchronous
//    DistributedSystem::Run as worker threads grow, for several site
//    counts. Per-site inference between transfer boundaries is
//    embarrassingly parallel, so epochs/sec should scale with threads up
//    to the site count (on sufficiently many cores) while alerts, accuracy
//    and byte accounting stay bit-identical to the serial replay. Each run
//    rewrites BENCH_scalability.json with its machine-readable sweep;
//    per-machine snapshots accumulate into a trajectory in EXPERIMENTS.md.
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "dist/distributed.h"

namespace rfid {
namespace {

SupplyChainConfig ScaledWarehouse(int pallets_per_injection, bool mobile,
                                  uint64_t seed) {
  SupplyChainConfig cfg = bench::SingleWarehouse(0.8, /*horizon=*/1200, seed);
  cfg.shelves_per_warehouse = 12;
  cfg.pallets_per_injection = pallets_per_injection;
  if (mobile) {
    cfg.schedule.mobile_dwell = 10;  // 10 s per shelf, one sweeping reader
  }
  return cfg;
}

/// Linear chain of `sites` warehouses with steady cross-site pallet flow:
/// the workload of the threads-vs-sites replay sweep.
SupplyChainConfig ChainOfSites(int sites, uint64_t seed) {
  SupplyChainConfig cfg;
  cfg.num_warehouses = sites;
  cfg.shelves_per_warehouse = 6;
  cfg.cases_per_pallet = 5;
  cfg.items_per_case = 10;
  cfg.pallets_per_injection = bench::Scale();
  cfg.shelf_stay = 600;
  cfg.transit_time = 60;
  cfg.read_rate.main = 0.8;
  cfg.read_rate.overlap = 0.5;
  cfg.horizon = bench::CapHorizon(2400);
  cfg.seed = seed;
  return cfg;
}

struct ReplayResult {
  double seconds = 0.0;
  int64_t total_bytes = 0;
  double avg_error = 0.0;
};

ReplayResult RunReplay(const SupplyChainSim& sim, int num_threads,
                       bool collect_metrics = true) {
  DistributedOptions opts;
  opts.site.migration = MigrationMode::kCollapsed;
  opts.site.streaming.inference_period = 300;
  opts.site.streaming.recent_history = 400;
  opts.num_threads = num_threads;
  // The sweep runs dozens of replays; none of them should fight over one
  // RFID_TRACE file (bench_table5 owns the representative trace).
  opts.trace = false;
  opts.collect_metrics = collect_metrics;
  DistributedSystem sys(&sim, opts);
  Stopwatch timer;
  sys.Run();
  ReplayResult r;
  r.seconds = timer.ElapsedSeconds();
  r.total_bytes = sys.network().total_bytes();
  r.avg_error = sys.AverageContainmentErrorPercent();
  return r;
}

int Main() {
  bench::PrintHeader("Section 5.3: scalability",
                     "per-run inference time vs resident items; replay "
                     "wall-clock vs worker threads");
  TablePrinter table({"Deployment", "Items", "Readings", "Time/run(s)",
                      "Keeps up (<300s)"});
  for (bool mobile : {false, true}) {
    for (int ppi : {1, 2, 4}) {
      SupplyChainSim sim(
          ScaledWarehouse(ppi * bench::Scale(), mobile,
                          9000 + static_cast<uint64_t>(ppi)));
      sim.Run();
      StreamingOptions opts;
      opts.truncation = TruncationMethod::kCriticalRegion;
      opts.recent_history = 500;
      StreamingInference si(&sim.model(), &sim.schedule(), opts);
      for (const RawReading& r : sim.site_trace(0).readings()) si.Observe(r);
      si.AdvanceTo(sim.config().horizon);
      const double per_run =
          si.runs() > 0 ? si.total_inference_seconds() / si.runs() : 0.0;
      table.AddRow({mobile ? "mobile" : "static",
                    std::to_string(sim.all_items().size()),
                    std::to_string(sim.total_readings()),
                    TablePrinter::Fmt(per_run, 3),
                    per_run < 300.0 ? "yes" : "no"});
    }
  }
  table.Print();
  std::printf(
      "expected shape: time per run grows roughly linearly with items;\n"
      "the mobile deployment produces far fewer shelf readings per item,\n"
      "so it sustains a larger population at the same per-run budget\n"
      "(the paper: 150k items/warehouse static vs 1.21M mobile).\n\n");

  // ---- Distributed replay: threads x sites ----
  std::printf("--- distributed replay: wall-clock vs worker threads ---\n");
  std::printf("hardware concurrency: %u\n",
              std::thread::hardware_concurrency());
  TablePrinter dist_table({"Sites", "Threads", "Wall(s)", "Epochs/s",
                           "Speedup", "Bytes", "Deterministic"});
  // The replay sweep honors RFID_TRANSPORT, so the same binary measures
  // the in-process fabric or the loopback socket backend.
  const std::string transport = ToString(TransportKindFromEnv());
  std::printf("transport backend: %s\n", transport.c_str());
  obs::RunReport report = bench::MakeReport("scalability");
  for (int sites : {4, 8}) {
    SupplyChainSim sim(ChainOfSites(sites, 9100 + static_cast<uint64_t>(
                                               sites)));
    sim.Run();
    const Epoch horizon = sim.config().horizon;
    const ReplayResult serial = RunReplay(sim, /*num_threads=*/0);
    for (int threads : {0, 1, 2, 4, 8}) {
      const ReplayResult r =
          threads == 0 ? serial : RunReplay(sim, threads);
      const double eps = r.seconds > 0.0 ? horizon / r.seconds : 0.0;
      const double speedup =
          r.seconds > 0.0 ? serial.seconds / r.seconds : 0.0;
      // avg_error is NaN when a run recorded no accuracy samples; NaN !=
      // NaN, so compare it as "both NaN or bitwise equal".
      const bool same_error =
          r.avg_error == serial.avg_error ||
          (std::isnan(r.avg_error) && std::isnan(serial.avg_error));
      const bool deterministic =
          r.total_bytes == serial.total_bytes && same_error;
      dist_table.AddRow({std::to_string(sites), std::to_string(threads),
                         TablePrinter::Fmt(r.seconds, 3),
                         TablePrinter::Fmt(eps, 1),
                         TablePrinter::Fmt(speedup, 2),
                         std::to_string(r.total_bytes),
                         deterministic ? "yes" : "NO"});
      obs::JsonValue row = obs::JsonValue::Object();
      row.Set("sites", sites);
      row.Set("threads", threads);
      row.Set("seconds", r.seconds);
      row.Set("epochs_per_sec", eps);
      row.Set("speedup_vs_serial", speedup);
      row.Set("total_bytes", r.total_bytes);
      row.Set("bytes_match_serial", r.total_bytes == serial.total_bytes);
      row.Set("matches_serial", deterministic);
      report.AddRow("replay", std::move(row));
    }
  }
  dist_table.Print();
  std::printf(
      "expected shape: epochs/s grows with threads up to min(cores, sites)\n"
      "-- per-site windows run concurrently and join at transfer/flush\n"
      "boundaries -- while bytes and error stay bit-identical (the\n"
      "determinism contract; enforced by executor_test).\n\n");

  // ---- Telemetry overhead: collect_metrics on vs off ----
  // The instrumentation budget is "<2% when off, low single digits when
  // on"; measure both against the larger sweep workload so EXPERIMENTS.md
  // can report a number instead of a promise. Alternating on/off reps
  // spreads thermal/cache drift across both sides.
  std::printf("--- telemetry overhead (8 sites, 4 threads) ---\n");
  {
    SupplyChainSim sim(ChainOfSites(8, 9108));
    sim.Run();
    constexpr int kReps = 3;
    OnlineStats on_s, off_s;
    for (int rep = 0; rep < kReps; ++rep) {
      on_s.Add(RunReplay(sim, 4, /*collect_metrics=*/true).seconds);
      off_s.Add(RunReplay(sim, 4, /*collect_metrics=*/false).seconds);
    }
    const double overhead_pct =
        off_s.Mean() > 0.0
            ? 100.0 * (on_s.Mean() - off_s.Mean()) / off_s.Mean()
            : 0.0;
    std::printf("telemetry on:  %s\n", on_s.Summary().c_str());
    std::printf("telemetry off: %s\n", off_s.Summary().c_str());
    std::printf("overhead with collection on: %.2f%%\n\n", overhead_pct);
    obs::JsonValue overhead = obs::JsonValue::Object();
    overhead.Set("reps", kReps);
    overhead.Set("telemetry_on_mean_seconds", on_s.Mean());
    overhead.Set("telemetry_off_mean_seconds", off_s.Mean());
    overhead.Set("overhead_percent", overhead_pct);
    report.AddRow("telemetry_overhead", std::move(overhead));
  }
  bench::FinishReport(report, "scalability");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
