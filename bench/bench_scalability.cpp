// Section 5.3 scalability: per-inference-run time as the number of resident
// items per warehouse grows, for the static-shelf-reader deployment and the
// mobile-reader deployment (one reader sweeping the aisle, 10 s per shelf).
// A deployment "keeps up with stream speed" when one inference run
// completes within the 300 s inference period.
//
// Paper's result: 150,000 items/warehouse sustainable with static readers
// (1.5M over 10 warehouses); 1.21M items/warehouse with a mobile reader
// (12.1M over 10), because mobile scanning thins the shelf readings.
#include <cstdio>

#include "bench/bench_common.h"

namespace rfid {
namespace {

SupplyChainConfig ScaledWarehouse(int pallets_per_injection, bool mobile,
                                  uint64_t seed) {
  SupplyChainConfig cfg = bench::SingleWarehouse(0.8, /*horizon=*/1200, seed);
  cfg.shelves_per_warehouse = 12;
  cfg.pallets_per_injection = pallets_per_injection;
  if (mobile) {
    cfg.schedule.mobile_dwell = 10;  // 10 s per shelf, one sweeping reader
  }
  return cfg;
}

int Main() {
  bench::PrintHeader("Section 5.3: scalability",
                     "per-run inference time vs resident items, static vs "
                     "mobile shelf readers");
  TablePrinter table({"Deployment", "Items", "Readings", "Time/run(s)",
                      "Keeps up (<300s)"});
  for (bool mobile : {false, true}) {
    for (int ppi : {1, 2, 4}) {
      SupplyChainSim sim(
          ScaledWarehouse(ppi * bench::Scale(), mobile,
                          9000 + static_cast<uint64_t>(ppi)));
      sim.Run();
      StreamingOptions opts;
      opts.truncation = TruncationMethod::kCriticalRegion;
      opts.recent_history = 500;
      StreamingInference si(&sim.model(), &sim.schedule(), opts);
      for (const RawReading& r : sim.site_trace(0).readings()) si.Observe(r);
      si.AdvanceTo(sim.config().horizon);
      const double per_run =
          si.runs() > 0 ? si.total_inference_seconds() / si.runs() : 0.0;
      table.AddRow({mobile ? "mobile" : "static",
                    std::to_string(sim.all_items().size()),
                    std::to_string(sim.total_readings()),
                    TablePrinter::Fmt(per_run, 3),
                    per_run < 300.0 ? "yes" : "no"});
    }
  }
  table.Print();
  std::printf(
      "expected shape: time per run grows roughly linearly with items;\n"
      "the mobile deployment produces far fewer shelf readings per item,\n"
      "so it sustains a larger population at the same per-run budget\n"
      "(the paper: 150k items/warehouse static vs 1.21M mobile).\n\n");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
