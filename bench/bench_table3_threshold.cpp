// Table 3: change-detection F-measure for fixed thresholds delta in
// {10..100} and for the offline-calibrated threshold (Section 3.3), across
// read rates 0.6-0.9.
//
// Paper's result: the best fixed threshold varies with the read rate, but
// the sampled threshold always lands within ~2% of the optimum.
#include <cstdio>

#include "bench/bench_common.h"

namespace rfid {
namespace {

int Main() {
  bench::PrintHeader("Table 3: change-detection threshold sweep",
                     "F-measure per fixed delta vs calibrated delta");
  std::vector<double> deltas{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  std::vector<std::string> header{"RR"};
  for (double d : deltas) header.push_back("d=" + TablePrinter::Fmt(d, 0));
  header.push_back("calibrated");
  header.push_back("F(calib)");
  TablePrinter table(header);

  for (double rr : {0.6, 0.7, 0.8, 0.9}) {
    SupplyChainConfig cfg =
        bench::SingleWarehouse(rr, /*horizon=*/1500,
                               /*seed=*/3000 + static_cast<uint64_t>(rr * 10));
    // A lighter warehouse keeps the threshold sweep quick; the sweep's
    // shape, not its absolute population, is the target here.
    cfg.shelves_per_warehouse = 6;
    cfg.cases_per_pallet = 3;
    cfg.items_per_case = 10;
    cfg.anomaly_interval = 20;  // paper default FA
    SupplyChainSim sim(cfg);
    sim.Run();
    std::vector<std::string> row{TablePrinter::Fmt(rr, 1)};
    for (double d : deltas) {
      auto score = bench::RunChangeDetection(sim, /*recent_history=*/600, d);
      row.push_back(TablePrinter::Fmt(score.f_measure, 0));
    }
    const double calibrated = bench::CalibratedThreshold(sim);
    auto score =
        bench::RunChangeDetection(sim, /*recent_history=*/600, calibrated);
    row.push_back(TablePrinter::Fmt(calibrated, 1));
    row.push_back(TablePrinter::Fmt(score.f_measure, 0));
    table.AddRow(row);
  }
  table.Print();
  std::printf(
      "expected shape: small deltas lose precision, large deltas lose\n"
      "recall; the calibrated threshold's F-measure tracks the best fixed\n"
      "value within a few percent at every read rate.\n\n");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
