// Figure 5(f): distributed inference error versus the containment-change
// interval (20-120 s) for None / CR / Centralized at read rate 0.8.
//
// Paper's result: same ordering as Figure 5(e) -- None worst, CR close to
// centralized -- across all change frequencies.
#include <cstdio>

#include "bench/bench_common.h"
#include "dist/distributed.h"

namespace rfid {
namespace {

int Main() {
  bench::PrintHeader(
      "Figure 5(f): distributed inference vs change interval",
      "error rate of None / CR / Centralized, 10 warehouses, RR=0.8");
  TablePrinter table({"Interval(s)", "None%", "CR%", "Centralized%"});
  for (Epoch interval : {20, 60, 120}) {
    SupplyChainSim sim(bench::MultiWarehouse(
        0.8, interval, /*horizon=*/2400,
        /*seed=*/6000 + static_cast<uint64_t>(interval)));
    sim.Run();

    auto run = [&](MigrationMode mode, ProcessingMode pmode) {
      DistributedOptions opts;
      opts.mode = pmode;
      opts.site.migration = mode;
      opts.site.streaming.detect_changes = true;
      opts.site.streaming.change_threshold = 40.0;
      DistributedSystem sys(&sim, opts);
      sys.Run();
      return sys.AverageContainmentErrorPercent(600);
    };
    table.AddRow({std::to_string(interval),
                  TablePrinter::Fmt(run(MigrationMode::kNone,
                                        ProcessingMode::kDistributed)),
                  TablePrinter::Fmt(run(MigrationMode::kCollapsed,
                                        ProcessingMode::kDistributed)),
                  TablePrinter::Fmt(run(MigrationMode::kCollapsed,
                                        ProcessingMode::kCentralized))});
  }
  table.Print();
  std::printf(
      "expected shape: error rises slightly as changes become more\n"
      "frequent (smaller interval); None worst, CR tracks Centralized.\n\n");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
