// Epoch-rate offensive (PR 9): end-to-end replay throughput of the
// bulk-synchronous driver, measured as simulated epochs per wall-clock
// second, with the hot-path machinery toggled on and off:
//
//   - arena/SoA hot path   (StreamingOptions::arena_index / soa_columns):
//     per-window readings index built in a bump arena over contiguous
//     columns instead of per-tag heap vectors;
//   - pipelined flush      (DistributedOptions::pipeline_flush):
//     centralized mode overlaps the boundary delta+gzip encodes with the
//     server's window compute on the executor pool.
//
// Every configuration must agree with the serial baseline on bytes and
// accuracy (the determinism contract); the bench verifies that while it
// times, so a row that got faster by diverging says "NO" instead of
// lying. RFID_BENCH_SCALE grows the workload toward the offensive's
// headline shape (sites ~ 8x scale, tags ~ thousands x scale: scale 16
// is ~128 sites, scale ~40 reaches hundreds of sites and millions of
// readings). The run_benchmarks.py orchestrator wraps this binary with
// warmup + repeat-N-take-median and tracks the trajectory in
// bench/results/.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dist/distributed.h"

namespace rfid {
namespace {

/// Linear chain of `sites` warehouses with steady cross-site pallet flow.
SupplyChainConfig ChainWorkload(int sites, uint64_t seed) {
  SupplyChainConfig cfg;
  cfg.num_warehouses = sites;
  cfg.shelves_per_warehouse = 6;
  cfg.cases_per_pallet = 5;
  cfg.items_per_case = 10;
  cfg.pallets_per_injection = bench::Scale();
  cfg.shelf_stay = 600;
  cfg.transit_time = 60;
  cfg.read_rate.main = 0.8;
  cfg.read_rate.overlap = 0.5;
  cfg.horizon = bench::CapHorizon(2400);
  cfg.seed = seed;
  return cfg;
}

struct Config {
  ProcessingMode mode = ProcessingMode::kCentralized;
  int threads = 0;
  bool arena = true;
  bool soa = true;
  bool pipeline = true;
  bool durable = false;
};

struct RunResult {
  double seconds = 0.0;
  int64_t total_bytes = 0;
  double avg_error = 0.0;
  int64_t wal_bytes = 0;
  int64_t wal_fsyncs = 0;
};

RunResult RunOnce(const SupplyChainSim& sim, const Config& cfg) {
  DistributedOptions opts;
  opts.mode = cfg.mode;
  opts.site.migration = MigrationMode::kCollapsed;
  opts.site.streaming.inference_period = 300;
  opts.site.streaming.recent_history = 400;
  opts.site.streaming.arena_index = cfg.arena;
  opts.site.streaming.soa_columns = cfg.soa;
  opts.pipeline_flush = cfg.pipeline;
  opts.num_threads = cfg.threads;
  opts.trace = false;
  // Timed rows run without telemetry so the numbers measure the replay,
  // not the instrumentation.
  opts.collect_metrics = false;
  // Each run decides durability itself: ambient RFID_DURABILITY_DIR must
  // not silently turn every row durable (the baseline rows ARE the
  // overhead comparison).
  opts.durability.dir.clear();
  std::string scratch;
  if (cfg.durable) {
    std::string tmpl = std::filesystem::temp_directory_path().string() +
                       "/rfid_bench_durable_XXXXXX";
    if (char* got = mkdtemp(tmpl.data())) scratch = got;
    opts.durability.dir = scratch;
    // Timed with the default (kData) fsync policy: the honest cost of a
    // WAL append + one fdatasync per site per event.
    opts.durability.fsync = DurabilityOptions::FsyncPolicy::kData;
  }
  DistributedSystem sys(&sim, opts);
  Stopwatch timer;
  sys.Run();
  RunResult r;
  r.seconds = timer.ElapsedSeconds();
  r.total_bytes = sys.network().total_bytes();
  r.avg_error = sys.AverageContainmentErrorPercent();
  if (cfg.durable) {
    const DurabilityStats totals = sys.DurabilityTotals();
    r.wal_bytes = totals.wal_bytes + totals.checkpoint_bytes;
    r.wal_fsyncs = totals.wal_fsyncs;
    std::error_code ec;
    std::filesystem::remove_all(scratch, ec);
  }
  return r;
}

int Main() {
  bench::PrintHeader("epoch rate: arena/SoA hot path + pipelined flush",
                     "replay epochs/sec with the PR 9 hot-path machinery "
                     "toggled");
  const int sites = 8 * bench::Scale();
  SupplyChainSim sim(ChainWorkload(sites, 9901));
  sim.Run();
  const Epoch horizon = sim.config().horizon;
  std::printf("sites=%d horizon=%lld readings=%zu transport=%s\n", sites,
              static_cast<long long>(horizon), sim.total_readings(),
              ToString(TransportKindFromEnv()).c_str());

  struct Row {
    const char* label;
    Config cfg;
  };
  const std::vector<Row> rows = {
      {"cent serial hot-off",
       {ProcessingMode::kCentralized, 0, false, false, false}},
      {"cent serial hot-on",
       {ProcessingMode::kCentralized, 0, true, true, false}},
      {"cent serial pipelined",
       {ProcessingMode::kCentralized, 0, true, true, true}},
      {"cent 4t pipelined",
       {ProcessingMode::kCentralized, 4, true, true, true}},
      {"dist serial hot-off",
       {ProcessingMode::kDistributed, 0, false, false, false}},
      {"dist serial hot-on",
       {ProcessingMode::kDistributed, 0, true, true, true}},
      {"dist 4t hot-on",
       {ProcessingMode::kDistributed, 4, true, true, true}},
      // Durable sites (checkpoints + frame WAL + audit log, default fsync
      // policy): all disk-side, so bytes and accuracy must still match
      // the baseline exactly -- the row prices the WAL, it cannot change
      // the run. EXPERIMENTS.md tracks this row's overhead vs hot-on
      // (<5% target).
      {"dist serial durable",
       {ProcessingMode::kDistributed, 0, true, true, true, true}},
  };

  obs::RunReport report = bench::MakeReport("epoch_rate");
  report.Set("sites", sites);
  report.Set("horizon", static_cast<int64_t>(horizon));
  report.Set("readings", static_cast<int64_t>(sim.total_readings()));

  TablePrinter table({"Config", "Wall(s)", "Epochs/s", "Readings/s",
                      "Speedup", "Deterministic"});
  // Baseline per mode: the serial hot-off row is both the speedup
  // denominator and the determinism reference.
  RunResult base[2];
  RunResult dist_hot_on;
  RunResult dist_durable;
  for (const Row& row : rows) {
    const RunResult r = RunOnce(sim, row.cfg);
    if (std::string(row.label) == "dist serial hot-on") dist_hot_on = r;
    if (std::string(row.label) == "dist serial durable") dist_durable = r;
    const size_t mode_i = row.cfg.mode == ProcessingMode::kCentralized ? 0 : 1;
    if (!row.cfg.arena && !row.cfg.soa && !row.cfg.pipeline &&
        row.cfg.threads == 0) {
      base[mode_i] = r;
    }
    const RunResult& b = base[mode_i];
    const double eps = r.seconds > 0.0 ? horizon / r.seconds : 0.0;
    const double rps = r.seconds > 0.0
                           ? static_cast<double>(sim.total_readings()) /
                                 r.seconds
                           : 0.0;
    const double speedup = r.seconds > 0.0 ? b.seconds / r.seconds : 0.0;
    const bool same_error =
        r.avg_error == b.avg_error ||
        (std::isnan(r.avg_error) && std::isnan(b.avg_error));
    const bool deterministic = r.total_bytes == b.total_bytes && same_error;
    table.AddRow({row.label, TablePrinter::Fmt(r.seconds, 3),
                  TablePrinter::Fmt(eps, 1), TablePrinter::Fmt(rps, 0),
                  TablePrinter::Fmt(speedup, 2),
                  deterministic ? "yes" : "NO"});
    obs::JsonValue j = obs::JsonValue::Object();
    j.Set("label", row.label);
    j.Set("mode", ToString(row.cfg.mode));
    j.Set("threads", row.cfg.threads);
    j.Set("arena", row.cfg.arena);
    j.Set("soa", row.cfg.soa);
    j.Set("pipeline", row.cfg.pipeline);
    j.Set("durable", row.cfg.durable);
    if (row.cfg.durable) {
      j.Set("durable_bytes", r.wal_bytes);
      j.Set("wal_fsyncs", r.wal_fsyncs);
    }
    j.Set("seconds", r.seconds);
    j.Set("epochs_per_sec", eps);
    j.Set("readings_per_sec", rps);
    j.Set("speedup_vs_hot_off", speedup);
    j.Set("total_bytes", r.total_bytes);
    j.Set("matches_baseline", deterministic);
    report.AddRow("epoch_rate", std::move(j));
  }
  table.Print();
  if (dist_hot_on.seconds > 0.0 && dist_durable.seconds > 0.0) {
    const double overhead_pct =
        100.0 * (dist_durable.seconds / dist_hot_on.seconds - 1.0);
    std::printf(
        "durability overhead: %+.1f%% wall vs dist serial hot-on "
        "(%lld durable bytes, %lld fsyncs)\n",
        overhead_pct, static_cast<long long>(dist_durable.wal_bytes),
        static_cast<long long>(dist_durable.wal_fsyncs));
    report.Set("durable_overhead_pct", overhead_pct);
  }
  std::printf(
      "expected shape: hot-on beats hot-off at every thread count (the\n"
      "arena/SoA index removes per-reading heap traffic); pipelined +\n"
      "threads beats serial centralized (flush encodes overlap server\n"
      "compute); every row stays deterministic vs the hot-off baseline,\n"
      "including the durable row (the WAL is disk-side only).\n");
  bench::FinishReport(report, "epoch_rate");
  return 0;
}

}  // namespace
}  // namespace rfid

int main() { return rfid::Main(); }
